(** Plan interpreter: compiles a {!Plan.t} into a pull cursor against a
    catalog. Heap fetches and index node visits are charged to the
    catalog's buffer pool, so {!Minirel_storage.Io_stats} diffs around a
    cursor drain give the simulated I/O cost of a query.

    Passing [profile] registers one {!Exec_stats} node per plan operator
    and counts rows/time through each; omitting it leaves the cursors
    uninstrumented. *)

(** @raise Invalid_argument on plans naming unknown indexes;
    @raise Not_found on unknown relations. *)
val cursor :
  ?profile:Exec_stats.t ->
  Minirel_index.Catalog.t ->
  Plan.t ->
  Minirel_storage.Tuple.t Cursor.t

val run_to_list :
  ?profile:Exec_stats.t -> Minirel_index.Catalog.t -> Plan.t -> Minirel_storage.Tuple.t list

val count : ?profile:Exec_stats.t -> Minirel_index.Catalog.t -> Plan.t -> int

(** Register the catalog's executor counters (root cursors opened,
    tuples produced at plan roots against that catalog) as telemetry
    source [name] (default ["exec"]). Counters are kept per catalog, so
    scoped engines report and reset independently. *)
val register_telemetry :
  ?registry:Minirel_telemetry.Registry.t ->
  ?name:string ->
  Minirel_index.Catalog.t ->
  unit
