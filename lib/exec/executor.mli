(** Plan interpreter: compiles a {!Plan.t} into a pull cursor against a
    catalog. Heap fetches and index node visits are charged to the
    catalog's buffer pool, so {!Minirel_storage.Io_stats} diffs around a
    cursor drain give the simulated I/O cost of a query.

    Passing [profile] registers one {!Exec_stats} node per plan operator
    and counts rows/time through each; omitting it leaves the cursors
    uninstrumented.

    Passing [par] enables morsel-driven parallelism: heap scans and
    hash-join build/probe phases split their page range into morsels
    executed on the Domain pool. Results are tuple-for-tuple identical
    to the sequential cursor (morsels merge in page order). Ignored
    when [profile] is also given — {!Exec_stats} trees are
    single-owner — or when the pool has fewer than 2 workers. *)

(** @raise Invalid_argument on plans naming unknown indexes;
    @raise Not_found on unknown relations. *)
val cursor :
  ?par:Minirel_parallel.Pool.t ->
  ?profile:Exec_stats.t ->
  Minirel_index.Catalog.t ->
  Plan.t ->
  Minirel_storage.Tuple.t Cursor.t

val run_to_list :
  ?par:Minirel_parallel.Pool.t ->
  ?profile:Exec_stats.t ->
  Minirel_index.Catalog.t ->
  Plan.t ->
  Minirel_storage.Tuple.t list

val count :
  ?par:Minirel_parallel.Pool.t ->
  ?profile:Exec_stats.t ->
  Minirel_index.Catalog.t ->
  Plan.t ->
  int

(** Register the catalog's executor counters (root cursors opened,
    tuples produced at plan roots against that catalog) as telemetry
    source [name] (default ["exec"]). Counters are kept per catalog, so
    scoped engines report and reset independently. *)
val register_telemetry :
  ?registry:Minirel_telemetry.Registry.t ->
  ?name:string ->
  Minirel_index.Catalog.t ->
  unit
