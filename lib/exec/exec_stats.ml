(* Per-operator executor counters. A profile is created per traced
   query; building a cursor with one registers a node per plan operator
   (pre-order), and every pull through that operator is counted and
   timed. Times are inclusive: an operator's ns contains its children's,
   so the root row approximates the whole drain.

   Profiles are opt-in — the executor adds no instrumentation when no
   profile is supplied — so the hot path pays nothing for them. *)

type node = {
  id : int;  (* pre-order position in the plan *)
  label : string;  (* operator name, e.g. "inlj(lineitem.lineitem_orderkey)" *)
  mutable rows_out : int;  (* tuples this operator produced *)
  mutable ns : int64;  (* inclusive wall time spent inside pulls *)
}

type t = { mutable rev_nodes : node list; mutable next_id : int }

let create () = { rev_nodes = []; next_id = 0 }

let register t label =
  let node = { id = t.next_id; label; rows_out = 0; ns = 0L } in
  t.next_id <- t.next_id + 1;
  t.rev_nodes <- node :: t.rev_nodes;
  node

(* Nodes in plan pre-order. *)
let nodes t = List.rev t.rev_nodes

let clear t =
  t.rev_nodes <- [];
  t.next_id <- 0

(* Wrap a cursor so every pull updates [node]. *)
let instrument node (cursor : unit -> 'a option) : unit -> 'a option =
 fun () ->
  let t0 = Monotonic_clock.now () in
  let result = cursor () in
  node.ns <- Int64.add node.ns (Int64.sub (Monotonic_clock.now ()) t0);
  (match result with Some _ -> node.rows_out <- node.rows_out + 1 | None -> ());
  result

let pp_node ppf n =
  Fmt.pf ppf "#%-3d %-40s %8d rows %10.1f us" n.id n.label n.rows_out
    (Int64.to_float n.ns /. 1e3)

let pp ppf t =
  Fmt.pf ppf "%-4s %-40s %13s %13s@." "op" "operator" "rows out" "time (incl)";
  List.iter (fun n -> Fmt.pf ppf "%a@." pp_node n) (nodes t)
