(* Namespaced entry points for executor instrumentation: [Exec.Stats]
   is the per-operator profile collected by [Executor.cursor ~profile]. *)

module Stats = Exec_stats
