(** Plan construction for template queries.

    Queries drive from an indexed selection condition (the paper's
    plans: fetch from R via the index on R.f, probe S via the index on
    S.d per outer tuple), chain index-nested-loop joins across the
    template's join graph — falling back to naive nested loops where an
    index is missing — apply every remaining selection at its
    relation's access point, and project the expanded select list Ls'.

    The template-constant part of those plans is reified as a
    {!skeleton} with parameter slots: {!compile_skeleton} runs the full
    planner once per (template, driver, statistics, indexes), and
    {!bind} fills the slots from an instance's disjuncts in O(params).
    {!plan_query} is compile-then-bind. {!Plan_cache} keeps skeletons
    across queries.

    The same machinery plans maintenance delta joins and the containing
    view's full join. *)

(** Plan a template query; the cursor yields Ls' result tuples. With
    [stats], the driving selection is the indexed condition expected to
    fetch the fewest base rows; without, the first indexed one. *)
val plan_query : ?stats:Stats.t -> Minirel_index.Catalog.t -> Minirel_query.Instance.t -> Plan.t

(** {1 Plan skeletons} *)

(** A compiled plan shape with parameter slots: driver access path, join
    order, per-relation predicate structure and projection positions are
    baked in; only parameter values are missing. *)
type skeleton

(** The driving selection's index number for this instance's template,
    or [None] when no index is usable. Depends only on the parameter
    form (fixed per template) and the given statistics, so it is a
    cache-key component, not a per-query property. *)
val driver_index :
  ?stats:Stats.t -> Minirel_index.Catalog.t -> Minirel_query.Instance.t -> int option

(** Compile the template-constant plan shape for [instance]'s template.
    The skeleton binds any instance of the same template. With
    [~fast:true], join edges whose inner relation lacks an index become
    hash joins instead of naive nested loops. *)
val compile_skeleton :
  ?stats:Stats.t ->
  ?fast:bool ->
  Minirel_index.Catalog.t ->
  Minirel_query.Instance.t ->
  skeleton

(** Bind an instance's parameters into a skeleton: O(params), no
    catalog or statistics access. [bind (compile_skeleton c i)
    (Instance.params i)] equals [plan_query c i]. *)
val bind : skeleton -> Minirel_query.Instance.disjuncts array -> Plan.t

(** Delta join for view maintenance: join the changed relation's
    [deltas] (passed literally) with the other base relations; Cselect
    is not applied (Section 3.4). Yields Ls' tuples. *)
val plan_delta_join :
  Minirel_index.Catalog.t ->
  Minirel_query.Template.compiled ->
  delta_rel:int ->
  Minirel_storage.Tuple.t list ->
  Plan.t

(** Full join of the template — the containing MV's contents. *)
val plan_full_join : Minirel_index.Catalog.t -> Minirel_query.Template.compiled -> Plan.t
