(* Plan interpreter: compiles a [Plan.t] into a pull cursor against a
   catalog. Heap fetches and index node visits are charged to the
   catalog's buffer pool, so [Io_stats] diffs around a cursor drain give
   the simulated I/O cost of the query.

   The drains avoid intermediate lists: Scan refills a reusable array
   batch per page, and the index access paths stream rids straight into
   heap fetches. Passing [profile] wraps every operator with row/time
   counters (Exec_stats); without it the cursors are uninstrumented. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module Index = Minirel_index.Index

let find_index catalog ~rel ~name =
  match List.find_opt (fun ix -> Index.name ix = name) (Catalog.indexes catalog rel) with
  | Some ix -> ix
  | None -> invalid_arg (Fmt.str "Executor: no index %s on %s" name rel)

(* --- aggregate machinery for the Aggregate node --- *)

type agg_state = {
  spec : Plan.agg;
  mutable cnt : int;
  mutable sum : float;
  mutable min_a : Value.t option;
  mutable max_a : Value.t option;
}

let new_agg_state spec = { spec; cnt = 0; sum = 0.0; min_a = None; max_a = None }

let agg_input_value spec (t : Tuple.t) =
  match spec with
  | Plan.Count_star -> None
  | Plan.Sum_of i | Plan.Avg_of i | Plan.Min_of i | Plan.Max_of i -> Some t.(i)

let float_of_num = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | Value.Null -> 0.0
  | Value.Str _ -> invalid_arg "Executor: cannot aggregate a string attribute"

let agg_step st t =
  st.cnt <- st.cnt + 1;
  match agg_input_value st.spec t with
  | None -> ()
  | Some v ->
      st.sum <- st.sum +. float_of_num v;
      (match st.min_a with
      | None -> st.min_a <- Some v
      | Some m -> if Value.compare v m < 0 then st.min_a <- Some v);
      (match st.max_a with
      | None -> st.max_a <- Some v
      | Some m -> if Value.compare v m > 0 then st.max_a <- Some v)

let agg_finish st =
  match st.spec with
  | Plan.Count_star -> Value.Int st.cnt
  | Plan.Sum_of _ -> Value.Float st.sum
  | Plan.Avg_of _ ->
      if st.cnt = 0 then Value.Null else Value.Float (st.sum /. float_of_int st.cnt)
  | Plan.Min_of _ -> Option.value ~default:Value.Null st.min_a
  | Plan.Max_of _ -> Option.value ~default:Value.Null st.max_a

let label = function
  | Plan.Literal ts -> Fmt.str "literal(%d)" (List.length ts)
  | Plan.Scan { rel; _ } -> Fmt.str "scan(%s)" rel
  | Plan.Index_lookup { rel; index; _ } -> Fmt.str "ixlookup(%s.%s)" rel index
  | Plan.Index_range { rel; index; _ } -> Fmt.str "ixrange(%s.%s)" rel index
  | Plan.Inlj { rel; index; _ } -> Fmt.str "inlj(%s.%s)" rel index
  | Plan.Nlj { rel; _ } -> Fmt.str "nlj(%s)" rel
  | Plan.Hash_join { rel; _ } -> Fmt.str "hashjoin(%s)" rel
  | Plan.Filter _ -> "filter"
  | Plan.Project _ -> "project"
  | Plan.Sort _ -> "sort"
  | Plan.Limit (n, _) -> Fmt.str "limit(%d)" n
  | Plan.Aggregate _ -> "aggregate"

(* Executor telemetry: cursors opened and tuples produced at plan
   roots. The executor itself is stateless, so the counters are keyed
   by catalog (physical identity) — each engine's registry reports only
   the queries run against that engine's catalog, and resetting one
   scope leaves the others alone. *)
type telemetry_counters = { cursors : int Atomic.t; root_tuples : int Atomic.t }

let telemetry_by_catalog :
    (Minirel_index.Catalog.t * telemetry_counters) list ref =
  ref []

(* Guards the list above; morsel tasks on the pool open cursors
   concurrently. The counters themselves are atomic, so only the
   get-or-create lookup needs the lock. *)
let telemetry_lock = Mutex.create ()

let telemetry_for catalog =
  Mutex.lock telemetry_lock;
  let t =
    match
      List.find_opt (fun (c, _) -> c == catalog) !telemetry_by_catalog
    with
    | Some (_, t) -> t
    | None ->
        let t = { cursors = Atomic.make 0; root_tuples = Atomic.make 0 } in
        telemetry_by_catalog := (catalog, t) :: !telemetry_by_catalog;
        t
  in
  Mutex.unlock telemetry_lock;
  t

let register_telemetry ?(registry = Minirel_telemetry.Registry.default)
    ?(name = "exec") catalog =
  let module R = Minirel_telemetry.Registry in
  let t = telemetry_for catalog in
  R.register_source registry ~name
    ~reset:(fun () ->
      Atomic.set t.cursors 0;
      Atomic.set t.root_tuples 0)
    (fun () ->
      [
        ("cursors", R.Counter (Atomic.get t.cursors));
        ("root_tuples", R.Counter (Atomic.get t.root_tuples));
      ])

(* --- morsel-driven parallel scans ---

   When the executor owns a Domain pool (and profiling is off —
   Exec_stats trees are single-owner), heap scans split their page
   range into morsels executed on the pool. Work product order is
   morsel order = page order, so every parallel stream below is
   tuple-for-tuple identical to its sequential counterpart. *)

module Pool = Minirel_parallel.Pool

(* Morsel *batches* are the steal unit: ~8 batches per domain gives
   thieves slack against uneven predicate selectivity (a domain stuck
   on a dense range sheds whole batches, not single pages), while a
   2-page floor keeps each batch coarse enough that a steal pays for
   more than its CAS. The work-stealing pool made dispatch cheap
   (deque push/pop instead of a global mutexed FIFO), which is what
   affords a finer split than the old 4-per-domain one. *)
let morsel_min_pages = 2

let morsel_ranges ~n_pages ~domains =
  if n_pages <= 0 then [||]
  else begin
    let target = max 1 (min (max 1 (n_pages / morsel_min_pages)) (8 * domains)) in
    let per = (n_pages + target - 1) / target in
    let n = (n_pages + per - 1) / per in
    Array.init n (fun i -> (i * per, min n_pages (succ i * per)))
  end

(* A pool is only worth dispatching to with >= 2 workers. *)
let par_active = function
  | Some pool when Pool.size pool >= 2 -> Some pool
  | _ -> None

(* Scan pages [lo, hi), filter, keep page order. Runs on a pool worker;
   buffer-pool I/O is charged from the worker (the pool is locked). *)
let scan_morsel heap pred (lo, hi) =
  let acc = ref [] in
  for p = lo to hi - 1 do
    Heap_file.iter_page heap p (fun _rid t ->
        if Predicate.eval pred t then acc := t :: !acc)
  done;
  List.rev !acc

(* Parallel hash-join build: per-morsel partial tables (buckets in
   reversed page order, as in the sequential build), merged in morsel
   order so every bucket ends up in global heap order. Falls back to
   the sequential single-pass build without a pool. *)
let join_table ?par heap pred inner_key : Tuple.t list ref Tuple.Table.t =
  let bucket_add tbl inner_t =
    let key = Tuple.project inner_t inner_key in
    match Tuple.Table.find_opt tbl key with
    | Some bucket -> bucket := inner_t :: !bucket
    | None -> Tuple.Table.replace tbl key (ref [ inner_t ])
  in
  match par_active par with
  | Some pool when Heap_file.n_pages heap >= 2 ->
      let ranges =
        morsel_ranges ~n_pages:(Heap_file.n_pages heap) ~domains:(Pool.size pool)
      in
      let partials =
        Pool.map pool
          (fun (lo, hi) ->
            let tbl : Tuple.t list ref Tuple.Table.t = Tuple.Table.create 256 in
            for p = lo to hi - 1 do
              Heap_file.iter_page heap p (fun _rid inner_t ->
                  if Predicate.eval pred inner_t then bucket_add tbl inner_t)
            done;
            tbl)
          ranges
      in
      let tbl : Tuple.t list ref Tuple.Table.t = Tuple.Table.create 1024 in
      Array.iter
        (fun part ->
          Tuple.Table.iter
            (fun key bucket ->
              let items = List.rev !bucket in
              match Tuple.Table.find_opt tbl key with
              | Some b -> b := !b @ items
              | None -> Tuple.Table.replace tbl key (ref items))
            part)
        partials;
      tbl
  | _ ->
      let tbl : Tuple.t list ref Tuple.Table.t = Tuple.Table.create 1024 in
      Heap_file.iter heap (fun _rid inner_t ->
          if Predicate.eval pred inner_t then bucket_add tbl inner_t);
      Tuple.Table.iter (fun _ bucket -> bucket := List.rev !bucket) tbl;
      tbl

(* A cursor over a list materialised on the first pull, so upstream
   I/O keeps being charged when the consumer actually runs. *)
let lazy_list_cursor produce =
  let state = ref None in
  fun () ->
    let cur =
      match !state with
      | Some cur -> cur
      | None ->
          let cur = Cursor.of_list (produce ()) in
          state := Some cur;
          cur
    in
    cur ()

let rec op_cursor ?par ?profile catalog (plan : Plan.t) : Tuple.t Cursor.t =
  (* register before recursing so profile nodes appear in plan pre-order *)
  let node = Option.map (fun p -> Exec_stats.register p (label plan)) profile in
  let c = build ?par ?profile catalog plan in
  match node with None -> c | Some n -> Exec_stats.instrument n c

and build ?par ?profile catalog (plan : Plan.t) : Tuple.t Cursor.t =
  match plan with
  | Plan.Literal ts -> Cursor.of_list ts
  | Plan.Scan { rel; pred } when par_active par <> None ->
      let pool = Option.get (par_active par) in
      let heap = Catalog.heap catalog rel in
      let n_pages = Heap_file.n_pages heap in
      lazy_list_cursor (fun () ->
          let ranges = morsel_ranges ~n_pages ~domains:(Pool.size pool) in
          let parts = Pool.map pool (scan_morsel heap pred) ranges in
          List.concat (Array.to_list parts))
  | Plan.Scan { rel; pred } ->
      let heap = Catalog.heap catalog rel in
      (* page by page through a reusable array batch; the page count
         snapshot keeps the cursor insensitive to pages appended while
         it is drained *)
      let n_pages = Heap_file.n_pages heap in
      let page = ref 0 in
      let buf = ref (Array.make 64 ([||] : Tuple.t)) in
      let len = ref 0 and pos = ref 0 in
      let stash t =
        if !len >= Array.length !buf then begin
          let bigger = Array.make (2 * Array.length !buf) ([||] : Tuple.t) in
          Array.blit !buf 0 bigger 0 !len;
          buf := bigger
        end;
        !buf.(!len) <- t;
        incr len
      in
      let rec next () =
        if !pos < !len then begin
          let t = !buf.(!pos) in
          incr pos;
          if Predicate.eval pred t then Some t else next ()
        end
        else if !page >= n_pages then None
        else begin
          let p = !page in
          incr page;
          len := 0;
          pos := 0;
          Heap_file.iter_page heap p (fun _rid t -> stash t);
          next ()
        end
      in
      next
  | Plan.Index_lookup { rel; index; keys; pred } ->
      let heap = Catalog.heap catalog rel in
      let ix = find_index catalog ~rel ~name:index in
      let remaining = ref keys in
      let pending = ref [] in
      let rec next () =
        match !pending with
        | rid :: rest -> (
            pending := rest;
            match Heap_file.fetch heap rid with
            | Some t when Predicate.eval pred t -> Some t
            | Some _ | None -> next ())
        | [] -> (
            match !remaining with
            | [] -> None
            | key :: rest ->
                remaining := rest;
                pending := Index.find ix key;
                next ())
      in
      next
  | Plan.Index_range { rel; index; ranges; pred } ->
      let heap = Catalog.heap catalog rel in
      let ix = find_index catalog ~rel ~name:index in
      let remaining = ref ranges in
      let pending = ref [] in
      let rec next () =
        match !pending with
        | rid :: rest -> (
            pending := rest;
            match Heap_file.fetch heap rid with
            | Some t when Predicate.eval pred t -> Some t
            | Some _ | None -> next ())
        | [] -> (
            match !remaining with
            | [] -> None
            | (lo, hi) :: rest ->
                remaining := rest;
                let rids = ref [] in
                Index.range ix ~lo ~hi (fun _key krids -> rids := krids :: !rids);
                pending := List.concat (List.rev !rids);
                next ())
      in
      next
  | Plan.Inlj { outer; rel; index; outer_key; pred } ->
      let heap = Catalog.heap catalog rel in
      let ix = find_index catalog ~rel ~name:index in
      let out = op_cursor ?par ?profile catalog outer in
      let current = ref ([||] : Tuple.t) in
      let pending = ref [] in
      let rec next () =
        match !pending with
        | rid :: rest -> (
            pending := rest;
            match Heap_file.fetch heap rid with
            | Some inner_t when Predicate.eval pred inner_t ->
                Some (Tuple.concat !current inner_t)
            | Some _ | None -> next ())
        | [] -> (
            match out () with
            | None -> None
            | Some outer_t ->
                current := outer_t;
                pending := Index.find ix (Tuple.project outer_t outer_key);
                next ())
      in
      next
  | Plan.Nlj { outer; rel; eq; pred } ->
      let heap = Catalog.heap catalog rel in
      op_cursor ?par ?profile catalog outer
      |> Cursor.concat_map_list (fun outer_t ->
             let matches = ref [] in
             Heap_file.iter heap (fun _rid inner_t ->
                 if
                   Predicate.eval pred inner_t
                   && List.for_all
                        (fun (op, ip) -> Value.equal outer_t.(op) inner_t.(ip))
                        eq
                 then matches := Tuple.concat outer_t inner_t :: !matches);
             List.rev !matches)
  | Plan.Hash_join
      { outer = Plan.Scan { rel = orel; pred = opred }; rel; outer_key; inner_key; pred }
    when par_active par <> None ->
      (* both join phases morsel-parallel: build the shared table from
         inner morsels, then probe outer morsels against it. After the
         build the table is read-only, so concurrent probes need no
         lock; output concatenates in morsel order = page order, so the
         stream matches the sequential join tuple for tuple. *)
      let pool = Option.get (par_active par) in
      let heap = Catalog.heap catalog rel in
      let oheap = Catalog.heap catalog orel in
      lazy_list_cursor (fun () ->
          let table = join_table ?par heap pred inner_key in
          let ranges =
            morsel_ranges ~n_pages:(Heap_file.n_pages oheap)
              ~domains:(Pool.size pool)
          in
          let parts =
            Pool.map pool
              (fun (lo, hi) ->
                let acc = ref [] in
                for p = lo to hi - 1 do
                  Heap_file.iter_page oheap p (fun _rid outer_t ->
                      if Predicate.eval opred outer_t then
                        match
                          Tuple.Table.find_opt table
                            (Tuple.project outer_t outer_key)
                        with
                        | Some bucket ->
                            List.iter
                              (fun inner_t ->
                                acc := Tuple.concat outer_t inner_t :: !acc)
                              !bucket
                        | None -> ())
                done;
                List.rev !acc)
              ranges
          in
          List.concat (Array.to_list parts))
  | Plan.Hash_join { outer; rel; outer_key; inner_key; pred } ->
      let heap = Catalog.heap catalog rel in
      (* build side hashed once per cursor open, on the first pull so
         upstream I/O is charged when the join runs; buckets keep heap
         order, so results match the Nlj fallback exactly. The build
         itself morsel-parallelises when a pool is present. *)
      let table = lazy (join_table ?par heap pred inner_key) in
      let out = op_cursor ?par ?profile catalog outer in
      let current = ref ([||] : Tuple.t) in
      let pending = ref [] in
      let rec next () =
        match !pending with
        | inner_t :: rest ->
            pending := rest;
            Some (Tuple.concat !current inner_t)
        | [] -> (
            match out () with
            | None -> None
            | Some outer_t ->
                current := outer_t;
                (pending :=
                   match
                     Tuple.Table.find_opt (Lazy.force table)
                       (Tuple.project outer_t outer_key)
                   with
                   | Some bucket -> !bucket
                   | None -> []);
                next ())
      in
      next
  | Plan.Filter (pred, inner) ->
      Cursor.filter (Predicate.eval pred) (op_cursor ?par ?profile catalog inner)
  | Plan.Project (positions, inner) ->
      Cursor.map
        (fun t -> Tuple.project t positions)
        (op_cursor ?par ?profile catalog inner)
  | Plan.Sort { keys; desc; input } ->
      (* blocking: drain, sort, stream. Materialisation is delayed until
         the first pull so upstream I/O is charged when the sort runs. *)
      let sorted = ref None in
      let cmp a b =
        let c = Tuple.compare (Tuple.project a keys) (Tuple.project b keys) in
        if desc then -c else c
      in
      let inner = op_cursor ?par ?profile catalog input in
      fun () ->
        let cur =
          match !sorted with
          | Some cur -> cur
          | None ->
              let cur = Cursor.of_list (List.stable_sort cmp (Cursor.to_list inner)) in
              sorted := Some cur;
              cur
        in
        cur ()
  | Plan.Limit (n, input) ->
      let remaining = ref n in
      let inner = op_cursor ?par ?profile catalog input in
      fun () ->
        if !remaining <= 0 then None
        else begin
          decr remaining;
          inner ()
        end
  | Plan.Aggregate { group_by; aggs; input } ->
      let inner = op_cursor ?par ?profile catalog input in
      let materialized = ref None in
      fun () ->
        let cur =
          match !materialized with
          | Some cur -> cur
          | None ->
              let groups : (Tuple.t * agg_state list) Tuple.Table.t =
                Tuple.Table.create 64
              in
              let order = ref [] in
              Cursor.iter
                (fun t ->
                  let key = Tuple.project t group_by in
                  let _, states =
                    match Tuple.Table.find_opt groups key with
                    | Some entry -> entry
                    | None ->
                        let entry = (key, List.map new_agg_state aggs) in
                        Tuple.Table.replace groups key entry;
                        order := key :: !order;
                        entry
                  in
                  List.iter (fun st -> agg_step st t) states)
                inner;
              let rows =
                List.rev_map
                  (fun key ->
                    let _, states = Option.get (Tuple.Table.find_opt groups key) in
                    Tuple.concat key (Array.of_list (List.map agg_finish states)))
                  !order
              in
              let cur = Cursor.of_list rows in
              materialized := Some cur;
              cur
        in
        cur ()

(* Public entry: the root cursor additionally feeds the catalog's
   executor counters. The per-tuple wrapper is built only while
   telemetry is enabled, so the disabled mode pays nothing per pull. *)
let cursor ?par ?profile catalog plan =
  (* profiled runs stay sequential: Exec_stats trees are single-owner *)
  let par = if profile = None then par else None in
  let c = op_cursor ?par ?profile catalog plan in
  if not (Minirel_telemetry.Telemetry.is_enabled ()) then c
  else begin
    let t = telemetry_for catalog in
    ignore (Atomic.fetch_and_add t.cursors 1);
    fun () ->
      match c () with
      | Some _ as r ->
          ignore (Atomic.fetch_and_add t.root_tuples 1);
          r
      | None -> None
  end

let run_to_list ?par ?profile catalog plan =
  Cursor.to_list (cursor ?par ?profile catalog plan)

let count ?par ?profile catalog plan = Cursor.count (cursor ?par ?profile catalog plan)
