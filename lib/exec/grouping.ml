(* Grouped-hash and bounded top-k heap operators (see the .mli). *)

open Minirel_storage
open Minirel_query

let group_hash ~key ~aggs cursor =
  let tbl = Tuple.Table.create 64 in
  Cursor.iter
    (fun t ->
      let k = Tuple.project t key in
      let accs =
        match Tuple.Table.find_opt tbl k with
        | Some accs -> accs
        | None ->
            let accs = Array.map (fun _ -> Aggregate.create ()) aggs in
            Tuple.Table.add tbl k accs;
            accs
      in
      Array.iteri (fun i spec -> Aggregate.add spec accs.(i) t) aggs)
    cursor;
  Tuple.Table.fold (fun k accs acc -> (k, accs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

(* Size-k max-heap over [cmp]: heap.(0) is the worst kept tuple, so one
   comparison rejects most of the stream once the heap is warm. *)
let top_k ~cmp ~k cursor =
  if k <= 0 then []
  else
    let heap = Array.make k [||] in
    let size = ref 0 in
    let swap i j =
      let t = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- t
    in
    let rec sift_up i =
      if i > 0 then
        let p = (i - 1) / 2 in
        if cmp heap.(p) heap.(i) < 0 then (
          swap p i;
          sift_up p)
    in
    let rec sift_down i n =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let largest = ref i in
      if l < n && cmp heap.(l) heap.(!largest) > 0 then largest := l;
      if r < n && cmp heap.(r) heap.(!largest) > 0 then largest := r;
      if !largest <> i then (
        swap i !largest;
        sift_down !largest n)
    in
    Cursor.iter
      (fun t ->
        if !size < k then (
          heap.(!size) <- t;
          incr size;
          sift_up (!size - 1))
        else if cmp t heap.(0) < 0 then (
          heap.(0) <- t;
          sift_down 0 k))
      cursor;
    let out = Array.sub heap 0 !size in
    Array.sort cmp out;
    Array.to_list out
