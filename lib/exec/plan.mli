(** Physical query plans. Leaf accesses filter with a relation-local
    predicate; join nodes concatenate outer ++ inner tuples, so
    positions in downstream nodes refer to the concatenated layout. *)

open Minirel_storage
open Minirel_query

type range = Minirel_index.Btree.bound * Minirel_index.Btree.bound

type t =
  | Literal of Tuple.t list  (** in-memory delta tuples *)
  | Scan of { rel : string; pred : Predicate.t }
  | Index_lookup of { rel : string; index : string; keys : Tuple.t list; pred : Predicate.t }
  | Index_range of { rel : string; index : string; ranges : range list; pred : Predicate.t }
  | Inlj of {
      outer : t;
      rel : string;  (** inner relation *)
      index : string;  (** index on the inner join attribute(s) *)
      outer_key : int array;  (** join-key positions in the outer tuple *)
      pred : Predicate.t;  (** inner-relation-local filter *)
    }
  | Nlj of {
      outer : t;
      rel : string;
      eq : (int * int) list;  (** (outer position, inner position) equalities *)
      pred : Predicate.t;
    }
  | Hash_join of {
      outer : t;
      rel : string;  (** inner relation; hashed once per cursor open *)
      outer_key : int array;  (** join-key positions in the outer tuple *)
      inner_key : int array;  (** join-key positions in the inner relation *)
      pred : Predicate.t;  (** inner-relation-local filter, applied at build *)
    }
  | Filter of Predicate.t * t
  | Project of int array * t
  | Sort of { keys : int array; desc : bool; input : t }  (** blocking *)
  | Limit of int * t
  | Aggregate of {
      group_by : int array;  (** positions forming the group key *)
      aggs : agg list;  (** one output column per aggregate, after the key *)
      input : t;
    }  (** blocking; output = group key ++ aggregate values *)

and agg = Count_star | Sum_of of int | Avg_of of int | Min_of of int | Max_of of int

val pp_agg : agg Fmt.t
val pp : t Fmt.t
