(** Grouped-hash aggregation and bounded top-k heap operators for the
    §3.6 query shapes. Both consume a tuple cursor; both are used by
    the shell, the PMV extensions, and the shard router so every layer
    aggregates and orders the same way. *)

open Minirel_storage
open Minirel_query

val group_hash :
  key:int array ->
  aggs:Aggregate.spec array ->
  Tuple.t Cursor.t ->
  (Tuple.t * Aggregate.acc array) list
(** Hash-group the stream by the projected [key] positions, folding
    each tuple into that group's accumulators. Returns groups sorted
    by key tuple so results compare structurally. *)

val top_k : cmp:(Tuple.t -> Tuple.t -> int) -> k:int -> Tuple.t Cursor.t -> Tuple.t list
(** Keep the k smallest tuples under [cmp] in a bounded binary heap
    (size-k max-heap: the root is evicted whenever a better candidate
    arrives). Returns them sorted ascending under [cmp]. *)
