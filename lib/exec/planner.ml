(* Plan construction for template queries.

   Queries drive from an indexed selection condition (the paper's plans:
   "fetch tuples from R using the index on R.f; for each retrieved tuple
   use the index on S.d to search S"), then chain index-nested-loop
   joins across the template's join graph, applying every remaining
   selection at its relation's access point, and finally project the
   expanded select list Ls'.

   Everything about those plans except the parameter values — driver
   access path, join order, per-relation predicate structure, projection
   positions — is a function of (template, driver, statistics, indexes)
   alone. That template-constant part is reified as a [skeleton] with
   parameter slots; [bind] fills the slots from an instance's disjuncts
   in O(params). [plan_query] is compile-then-bind, so a skeleton cached
   across queries of one template yields exactly the plan a fresh call
   would. Compiling with [~fast:true] upgrades the index-less join
   fallback from naive nested loops to a hash join.

   The same machinery plans delta joins for view maintenance: the
   changed relation's delta tuples replace its access path. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module Index = Minirel_index.Index
module Btree = Minirel_index.Btree

(* A layout tracks which template relations compose the current joined
   tuple, in visit order. *)
type layout = { order : int list; compiled : Template.compiled }

let layout_offset layout rel =
  let rec go acc = function
    | [] -> invalid_arg "Planner: relation not in layout"
    | r :: rest ->
        if r = rel then acc
        else go (acc + Schema.arity layout.compiled.Template.schemas.(r)) rest
  in
  go 0 layout.order

let layout_pos layout { Template.rel; attr } =
  layout_offset layout rel + Schema.pos layout.compiled.Template.schemas.(rel) attr

let interval_to_range (iv : Interval.t) : Plan.range =
  let lo =
    match iv.Interval.lo with
    | Interval.Neg_inf -> Btree.Unbounded
    | Interval.L_incl v -> Btree.Inclusive [| v |]
    | Interval.L_excl v -> Btree.Exclusive [| v |]
  in
  let hi =
    match iv.Interval.hi with
    | Interval.Pos_inf -> Btree.Unbounded
    | Interval.U_incl v -> Btree.Inclusive [| v |]
    | Interval.U_excl v -> Btree.Exclusive [| v |]
  in
  (lo, hi)

(* --- parameter slots --------------------------------------------------- *)

(* The template-constant shape of a relation-local predicate: fixed
   (parameter-free) filters plus, for each selection condition on this
   relation, the selection index and the attribute's position — the
   parameter value itself is bound later. *)
type pred_slot = {
  ps_fixed : Predicate.t list;
  ps_sels : (int * int) list;  (* (selection index, position in relation tuple) *)
}

let pred_slot ?(skip = -1) compiled rel =
  let spec = compiled.Template.spec in
  let fixed =
    List.filter_map (fun (r, p) -> if r = rel then Some p else None) spec.Template.fixed
  in
  let sels =
    Array.to_list spec.Template.selections
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           let a = Template.selection_attr s in
           if a.Template.rel = rel && i <> skip then
             Some (i, Schema.pos compiled.Template.schemas.(rel) a.Template.attr)
           else None)
  in
  { ps_fixed = fixed; ps_sels = sels }

let bind_pred slot (params : Instance.disjuncts array) =
  Predicate.conj
    (slot.ps_fixed
    @ List.map (fun (i, pos) -> Instance.condition_pred pos params.(i)) slot.ps_sels)

let index_on_attr catalog compiled (a : Template.attr_ref) =
  let rel_name = compiled.Template.spec.Template.relations.(a.Template.rel) in
  Catalog.index_on catalog ~rel:rel_name ~attrs:[ a.Template.attr ]

(* Pick the driving selection among the Ci whose attribute carries a
   usable index (interval form needs a B-tree): without statistics, the
   first such Ci; with statistics, the one expected to fetch the fewest
   base rows. *)
let choose_driver ?stats catalog compiled (params : Instance.disjuncts array) =
  let sels = compiled.Template.spec.Template.selections in
  let usable i =
    let a = Template.selection_attr sels.(i) in
    match index_on_attr catalog compiled a with
    | Some ix -> (
        match (params.(i), Index.kind ix) with
        | Instance.Dvalues _, _ -> Some (i, a, ix)
        | Instance.Dintervals _, Index.Btree_kind -> Some (i, a, ix)
        | Instance.Dintervals _, Index.Hash_kind -> None)
    | None -> None
  in
  let candidates = List.filter_map usable (List.init (Array.length sels) Fun.id) in
  match (candidates, stats) with
  | [], _ -> None
  | first :: _, None -> Some first
  | _, Some st ->
      let cost (i, (a : Template.attr_ref), _) =
        Stats.condition_cardinality st
          ~rel:compiled.Template.spec.Template.relations.(a.Template.rel)
          ~attr:a.Template.attr params.(i)
      in
      List.fold_left
        (fun best c ->
          match best with
          | None -> Some c
          | Some b -> if cost c < cost b then Some c else best)
        None candidates

(* The driving selection's index number, or None when no index is
   usable. The driver depends only on the parameter FORM (values vs
   intervals), which [Instance.make] fixes per template — so for given
   statistics it is a pure template property, usable as a cache key. *)
let driver_index ?stats catalog instance =
  let compiled = Instance.compiled instance in
  Option.map
    (fun (i, _, _) -> i)
    (choose_driver ?stats catalog compiled (Instance.params instance))

(* --- skeletons --------------------------------------------------------- *)

type base_skel =
  | B_indexed of { rel : string; index : string; driver : int; pred : pred_slot }
      (* Index_lookup or Index_range depending on the driver's form *)
  | B_scan of { rel : string; pred : pred_slot }

type step_skel =
  | J_inlj of { rel : string; index : string; outer_key : int array; pred : pred_slot }
  | J_hash of { rel : string; outer_key : int array; inner_key : int array; pred : pred_slot }
  | J_nlj of { rel : string; eq : (int * int) list; pred : pred_slot }

type skeleton = { base : base_skel; steps : step_skel list; project : int array }

(* Expected tuples of [rel] matching one join key: n_tuples / n_distinct
   of the join attribute. Used to greedily keep intermediate results
   small when statistics are available. *)
let join_fanout stats compiled (to_ref : Template.attr_ref) =
  let rel_name = compiled.Template.spec.Template.relations.(to_ref.Template.rel) in
  match Stats.attr stats ~rel:rel_name ~attr:to_ref.Template.attr with
  | Some a when a.Stats.n_distinct > 0 ->
      float_of_int a.Stats.n_values /. float_of_int a.Stats.n_distinct
  | Some _ | None -> 1e9

(* Chain the not-yet-visited relations along join edges. Returns the
   join steps and final layout. Without statistics, edges are taken in
   template order; with statistics, the edge with the smallest expected
   join fanout goes first. An edge whose inner relation lacks an index
   becomes a naive nested loop — or a hash join under [~fast:true]. *)
let chain_steps ?stats ?(fast = false) catalog compiled start_rel =
  let spec = compiled.Template.spec in
  let n = Array.length spec.Template.relations in
  let visited = Array.make n false in
  visited.(start_rel) <- true;
  let layout = ref { order = [ start_rel ]; compiled } in
  let steps = ref [] in
  let remaining = ref (n - 1) in
  while !remaining > 0 do
    (* join edges from the visited set to a new relation *)
    let candidates =
      List.filter_map
        (fun (a, b) ->
          if visited.(a.Template.rel) && not (visited.(b.Template.rel)) then Some (a, b)
          else if visited.(b.Template.rel) && not (visited.(a.Template.rel)) then
            Some (b, a)
          else None)
        spec.Template.joins
    in
    let edge =
      match (candidates, stats) with
      | [], _ -> None
      | first :: _, None -> Some first
      | _, Some st ->
          List.fold_left
            (fun best ((_, to_ref) as c) ->
              match best with
              | None -> Some c
              | Some (_, best_to) ->
                  if join_fanout st compiled to_ref < join_fanout st compiled best_to then
                    Some c
                  else best)
            None candidates
    in
    match edge with
    | Some (from_ref, to_ref) ->
        let inner_rel = to_ref.Template.rel in
        let inner_name = spec.Template.relations.(inner_rel) in
        let pred = pred_slot compiled inner_rel in
        let outer_pos = layout_pos !layout from_ref in
        let inner_pos =
          Schema.pos compiled.Template.schemas.(inner_rel) to_ref.Template.attr
        in
        let step =
          match index_on_attr catalog compiled to_ref with
          | Some ix ->
              J_inlj
                { rel = inner_name; index = Index.name ix; outer_key = [| outer_pos |]; pred }
          | None ->
              if fast then
                J_hash
                  {
                    rel = inner_name;
                    outer_key = [| outer_pos |];
                    inner_key = [| inner_pos |];
                    pred;
                  }
              else J_nlj { rel = inner_name; eq = [ (outer_pos, inner_pos) ]; pred }
        in
        steps := step :: !steps;
        visited.(inner_rel) <- true;
        layout := { !layout with order = !layout.order @ [ inner_rel ] };
        decr remaining
    | None ->
        (* disconnected join graph: cross product with the first
           unvisited relation (legal but never produced by our
           workloads) *)
        let inner_rel =
          let rec first i = if visited.(i) then first (i + 1) else i in
          first 0
        in
        steps :=
          J_nlj
            { rel = spec.Template.relations.(inner_rel); eq = []; pred = pred_slot compiled inner_rel }
          :: !steps;
        visited.(inner_rel) <- true;
        layout := { !layout with order = !layout.order @ [ inner_rel ] };
        decr remaining
  done;
  (List.rev !steps, !layout)

let bind_step params plan = function
  | J_inlj { rel; index; outer_key; pred } ->
      Plan.Inlj { outer = plan; rel; index; outer_key; pred = bind_pred pred params }
  | J_hash { rel; outer_key; inner_key; pred } ->
      Plan.Hash_join { outer = plan; rel; outer_key; inner_key; pred = bind_pred pred params }
  | J_nlj { rel; eq; pred } -> Plan.Nlj { outer = plan; rel; eq; pred = bind_pred pred params }

(* Compile the template-constant plan shape for [instance]'s template.
   The instance supplies only the parameter form (for driver choice);
   the resulting skeleton binds any instance of the same template. *)
let compile_skeleton ?stats ?fast catalog instance =
  let compiled = Instance.compiled instance in
  let params = Instance.params instance in
  let spec = compiled.Template.spec in
  let base, start_rel =
    match choose_driver ?stats catalog compiled params with
    | Some (i, a, ix) ->
        let rel = a.Template.rel in
        ( B_indexed
            {
              rel = spec.Template.relations.(rel);
              index = Index.name ix;
              driver = i;
              pred = pred_slot ~skip:i compiled rel;
            },
          rel )
    | None ->
        (* no usable index: scan the first selection's relation *)
        let rel = (Template.selection_attr spec.Template.selections.(0)).Template.rel in
        (B_scan { rel = spec.Template.relations.(rel); pred = pred_slot compiled rel }, rel)
  in
  let steps, layout = chain_steps ?stats ?fast catalog compiled start_rel in
  let project =
    Array.of_list (List.map (layout_pos layout) compiled.Template.expanded_select)
  in
  { base; steps; project }

(* Bind an instance's parameters into a skeleton: O(params), no catalog
   or statistics access. *)
let bind skeleton (params : Instance.disjuncts array) =
  let base =
    match skeleton.base with
    | B_indexed { rel; index; driver; pred } -> (
        let pred = bind_pred pred params in
        match params.(driver) with
        | Instance.Dvalues vs ->
            Plan.Index_lookup { rel; index; keys = List.map (fun v -> [| v |]) vs; pred }
        | Instance.Dintervals ivs ->
            Plan.Index_range
              { rel; index; ranges = List.map interval_to_range ivs; pred })
    | B_scan { rel; pred } -> Plan.Scan { rel; pred = bind_pred pred params }
  in
  let plan = List.fold_left (bind_step params) base skeleton.steps in
  Plan.Project (skeleton.project, plan)

(* Chain the not-yet-visited relations onto [base] (plan form). *)
let join_rest ?stats catalog compiled params base start_rel =
  let steps, layout = chain_steps ?stats catalog compiled start_rel in
  (List.fold_left (bind_step params) base steps, layout)

(* Final projection: Ls' positions within the produced layout. *)
let project_expanded compiled layout plan =
  let positions =
    Array.of_list
      (List.map (fun a -> layout_pos layout a) compiled.Template.expanded_select)
  in
  Plan.Project (positions, plan)

(* Plan a template query; the cursor yields Ls' result tuples.
   Compile-then-bind: identical plans to the pre-skeleton planner. *)
let plan_query ?stats catalog instance =
  bind (compile_skeleton ?stats catalog instance) (Instance.params instance)

(* Plan the delta join for maintenance: join the changed relation's
   delta tuples with the other base relations; Cselect is NOT applied
   (maintenance concerns the containing view; Section 3.4). The cursor
   yields Ls' tuples. *)
let plan_delta_join catalog compiled ~delta_rel deltas =
  let fixed_only rel =
    Predicate.conj
      (List.filter_map
         (fun (r, p) -> if r = rel then Some p else None)
         compiled.Template.spec.Template.fixed)
  in
  let base =
    Plan.Literal (List.filter (Predicate.eval (fixed_only delta_rel)) deltas)
  in
  (* join with fixed predicates only: Cselect has no parameters here, so
     hand join_rest a spec stripped of its selections *)
  let stripped =
    { compiled with Template.spec = { compiled.Template.spec with Template.selections = [||] } }
  in
  let plan, layout = join_rest catalog stripped [||] base delta_rel in
  let layout = { layout with compiled } in
  project_expanded compiled layout plan

(* Full join of the template (the containing MV's contents): drive from
   relation 0 with a scan. *)
let plan_full_join catalog compiled =
  let spec = compiled.Template.spec in
  let empty_params = Array.make (Array.length spec.Template.selections) (Instance.Dvalues []) in
  let base =
    Plan.Scan
      {
        rel = spec.Template.relations.(0);
        pred =
          Predicate.conj
            (List.filter_map (fun (r, p) -> if r = 0 then Some p else None) spec.Template.fixed);
      }
  in
  let plan, layout =
    join_rest catalog
      { compiled with Template.spec = { spec with Template.selections = [||] } }
      empty_params base 0
  in
  let layout = { layout with compiled } in
  project_expanded compiled layout plan
