(** Template plan cache: skeletons keyed by (template, driver index),
    revalidated against {!Minirel_index.Catalog.version} (bumped by
    index DDL and vacuum) and a statistics epoch (bumped by
    {!set_stats}). A hit binds parameters in O(params); cached skeletons
    are compiled with the fast path ([~fast:true]), so index-less join
    edges run as hash joins instead of naive nested loops. Any error
    falls back to the uncached planner.

    Each domain additionally keeps a bounded domain-local shadow of
    the skeletons it bound recently (keyed by cache identity), so a
    shard task stolen onto another domain revalidates and binds from
    its own shadow instead of probing the engine-owned table across
    domains. Shadow entries obey the same catalog-version and
    stats-epoch invalidation; {!shadow_hits} counts them. *)

type t

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;  (** stale entries recompiled *)
  mutable fallbacks : int;  (** bind failures routed to the full planner *)
}

val create : ?stats:Stats.t -> Minirel_index.Catalog.t -> t

(** Plan via the cache; equivalent results to {!Planner.plan_query}
    (plan shape may use hash joins where the uncached planner emits
    naive nested loops). When disabled, delegates straight to
    {!Planner.plan_query}. *)
val plan : t -> Minirel_query.Instance.t -> Plan.t

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val stats : t -> Stats.t option

(** Install (or clear) table statistics and bump the statistics epoch,
    invalidating every cached skeleton. *)
val set_stats : t -> Stats.t option -> unit

(** Drop all cached skeletons (counters are kept). *)
val clear : t -> unit

val counters : t -> counters

(** Hits served from the calling-domain shadow (no shared-table
    probe); steady-state total hits = [counters.hits + shadow_hits].
    Exported as the [shadow_hits] counter of the telemetry source. *)
val shadow_hits : t -> int

(** Stable name/value pairs for telemetry registration. *)
val counters_to_list : counters -> (string * int) list

(** Zero the hit/miss/invalidation/fallback counters (including
    {!shadow_hits}). *)
val reset_counters : t -> unit

(** Register this cache as telemetry source [name] (default
    ["plancache"]). *)
val register_telemetry :
  ?registry:Minirel_telemetry.Registry.t -> ?name:string -> t -> unit

val size : t -> int
val pp_counters : counters Fmt.t
val pp : t Fmt.t
