(* Template plan cache.

   Planning a template query decomposes into a template-constant part
   (driver choice, join order, predicate structure, projection — see
   Planner.skeleton) and an O(params) binding step. This cache keys
   skeletons by (template name, driver index) and revalidates them
   against the catalog's index-DDL version and a statistics epoch, so a
   steady-state query answers with one Hashtbl probe plus a bind instead
   of a full planning pass — and, more importantly, gets the fast-path
   plan shapes (hash joins for index-less edges, stats-informed join
   order) that only compiled skeletons carry.

   On any error the cache falls back to the uncached planner, so a
   cache bug can cost performance but never correctness. *)

open Minirel_query
module Catalog = Minirel_index.Catalog

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;  (* stale entries recompiled *)
  mutable fallbacks : int;  (* bind failures routed to the full planner *)
}

type entry = {
  skeleton : Planner.skeleton;
  catalog_version : int;  (* Catalog.version at compile time *)
  stats_epoch : int;  (* cache stats epoch at compile time *)
}

type t = {
  id : int;  (* distinguishes caches in the domain-local shadow *)
  catalog : Catalog.t;
  mutable stats : Stats.t option;
  mutable stats_epoch : int;
  mutable enabled : bool;
  table : (string * int, entry) Hashtbl.t;  (* (template, driver) -> entry *)
  counters : counters;
  shadow_hits : int Atomic.t;  (* hits served from a domain-local shadow *)
}

(* Domain-local shadow of recently-bound skeletons, keyed by (cache id,
   template, driver). A stolen shard task landing on a new domain
   re-validates against the same catalog version and stats epoch as
   the shared table — the DDL/epoch bump *is* the invalidation — but a
   warm shadow answers without touching the engine-owned Hashtbl from
   another domain. Skeletons are immutable once compiled, so sharing
   them across domains is safe. Only pool worker domains use the
   shadow (that is where cross-domain traffic exists; the owning
   caller's sequential path keeps its exact counter semantics).
   Bounded: the whole shadow resets when it would outgrow
   [shadow_cap] (a domain touches a handful of (engine, template)
   pairs; the reset is a cold-start, not a leak). *)
let shadow : (int * string * int, entry) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let shadow_cap = 256

let next_id = Atomic.make 0

let create ?stats catalog =
  {
    id = Atomic.fetch_and_add next_id 1;
    catalog;
    stats;
    stats_epoch = 0;
    enabled = true;
    table = Hashtbl.create 16;
    counters = { hits = 0; misses = 0; invalidations = 0; fallbacks = 0 };
    shadow_hits = Atomic.make 0;
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let stats t = t.stats

let set_stats t stats =
  t.stats <- stats;
  t.stats_epoch <- t.stats_epoch + 1

let clear t = Hashtbl.reset t.table
let counters t = t.counters
let size t = Hashtbl.length t.table

let compile t instance =
  {
    skeleton = Planner.compile_skeleton ?stats:t.stats ~fast:true t.catalog instance;
    catalog_version = Catalog.version t.catalog;
    stats_epoch = t.stats_epoch;
  }

let plan t instance =
  if not t.enabled then Planner.plan_query ?stats:t.stats t.catalog instance
  else
    try
      let key =
        let compiled = Instance.compiled instance in
        ( compiled.Template.spec.Template.name,
          Option.value ~default:(-1) (Planner.driver_index ?stats:t.stats t.catalog instance)
        )
      in
      let on_worker = Minirel_parallel.Pool.worker_index () <> None in
      let skey = (t.id, fst key, snd key) in
      let sh = if on_worker then Some (Domain.DLS.get shadow) else None in
      let shadow_entry =
        match sh with
        | None -> None
        | Some sh -> (
            match Hashtbl.find_opt sh skey with
            | Some e
              when e.catalog_version = Catalog.version t.catalog
                   && e.stats_epoch = t.stats_epoch ->
                (* domain-local hit: no shared-table touch at all *)
                Atomic.incr t.shadow_hits;
                Some e
            | _ -> None)
      in
      let entry =
        match shadow_entry with
        | Some e -> e
        | None ->
            let e =
              match Hashtbl.find_opt t.table key with
              | Some e
                when e.catalog_version = Catalog.version t.catalog
                     && e.stats_epoch = t.stats_epoch ->
                  t.counters.hits <- t.counters.hits + 1;
                  e
              | Some _ ->
                  (* indexes or statistics changed since compilation *)
                  t.counters.invalidations <- t.counters.invalidations + 1;
                  let e = compile t instance in
                  Hashtbl.replace t.table key e;
                  e
              | None ->
                  t.counters.misses <- t.counters.misses + 1;
                  let e = compile t instance in
                  Hashtbl.replace t.table key e;
                  e
            in
            Option.iter
              (fun sh ->
                if Hashtbl.length sh >= shadow_cap then Hashtbl.reset sh;
                Hashtbl.replace sh skey e)
              sh;
            e
      in
      Planner.bind entry.skeleton (Instance.params instance)
    with _ ->
      t.counters.fallbacks <- t.counters.fallbacks + 1;
      Planner.plan_query ?stats:t.stats t.catalog instance

let counters_to_list c =
  [
    ("hits", c.hits);
    ("misses", c.misses);
    ("invalidations", c.invalidations);
    ("fallbacks", c.fallbacks);
  ]

let shadow_hits t = Atomic.get t.shadow_hits

let reset_counters t =
  t.counters.hits <- 0;
  t.counters.misses <- 0;
  t.counters.invalidations <- 0;
  t.counters.fallbacks <- 0;
  Atomic.set t.shadow_hits 0

let register_telemetry ?(registry = Minirel_telemetry.Registry.default)
    ?(name = "plancache") t =
  let module R = Minirel_telemetry.Registry in
  R.register_source registry ~name
    ~reset:(fun () -> reset_counters t)
    (fun () ->
      List.map (fun (k, v) -> (k, R.Counter v)) (counters_to_list t.counters)
      @ [
          ("shadow_hits", R.Counter (Atomic.get t.shadow_hits));
          ("entries", R.Gauge (float_of_int (size t)));
          ("enabled", R.Gauge (if t.enabled then 1.0 else 0.0));
        ])

let pp_counters ppf c =
  Fmt.pf ppf "hits %d  misses %d  invalidations %d  fallbacks %d" c.hits c.misses
    c.invalidations c.fallbacks

let pp ppf t =
  Fmt.pf ppf "plan cache: %d entries, %a%s" (size t) pp_counters t.counters
    (if t.enabled then "" else " (disabled)")
