(* Template plan cache.

   Planning a template query decomposes into a template-constant part
   (driver choice, join order, predicate structure, projection — see
   Planner.skeleton) and an O(params) binding step. This cache keys
   skeletons by (template name, driver index) and revalidates them
   against the catalog's index-DDL version and a statistics epoch, so a
   steady-state query answers with one Hashtbl probe plus a bind instead
   of a full planning pass — and, more importantly, gets the fast-path
   plan shapes (hash joins for index-less edges, stats-informed join
   order) that only compiled skeletons carry.

   On any error the cache falls back to the uncached planner, so a
   cache bug can cost performance but never correctness. *)

open Minirel_query
module Catalog = Minirel_index.Catalog

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;  (* stale entries recompiled *)
  mutable fallbacks : int;  (* bind failures routed to the full planner *)
}

type entry = {
  skeleton : Planner.skeleton;
  catalog_version : int;  (* Catalog.version at compile time *)
  stats_epoch : int;  (* cache stats epoch at compile time *)
}

type t = {
  catalog : Catalog.t;
  mutable stats : Stats.t option;
  mutable stats_epoch : int;
  mutable enabled : bool;
  table : (string * int, entry) Hashtbl.t;  (* (template, driver) -> entry *)
  counters : counters;
}

let create ?stats catalog =
  {
    catalog;
    stats;
    stats_epoch = 0;
    enabled = true;
    table = Hashtbl.create 16;
    counters = { hits = 0; misses = 0; invalidations = 0; fallbacks = 0 };
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let stats t = t.stats

let set_stats t stats =
  t.stats <- stats;
  t.stats_epoch <- t.stats_epoch + 1

let clear t = Hashtbl.reset t.table
let counters t = t.counters
let size t = Hashtbl.length t.table

let compile t instance =
  {
    skeleton = Planner.compile_skeleton ?stats:t.stats ~fast:true t.catalog instance;
    catalog_version = Catalog.version t.catalog;
    stats_epoch = t.stats_epoch;
  }

let plan t instance =
  if not t.enabled then Planner.plan_query ?stats:t.stats t.catalog instance
  else
    try
      let key =
        let compiled = Instance.compiled instance in
        ( compiled.Template.spec.Template.name,
          Option.value ~default:(-1) (Planner.driver_index ?stats:t.stats t.catalog instance)
        )
      in
      let entry =
        match Hashtbl.find_opt t.table key with
        | Some e
          when e.catalog_version = Catalog.version t.catalog
               && e.stats_epoch = t.stats_epoch ->
            t.counters.hits <- t.counters.hits + 1;
            e
        | Some _ ->
            (* indexes or statistics changed since compilation *)
            t.counters.invalidations <- t.counters.invalidations + 1;
            let e = compile t instance in
            Hashtbl.replace t.table key e;
            e
        | None ->
            t.counters.misses <- t.counters.misses + 1;
            let e = compile t instance in
            Hashtbl.replace t.table key e;
            e
      in
      Planner.bind entry.skeleton (Instance.params instance)
    with _ ->
      t.counters.fallbacks <- t.counters.fallbacks + 1;
      Planner.plan_query ?stats:t.stats t.catalog instance

let counters_to_list c =
  [
    ("hits", c.hits);
    ("misses", c.misses);
    ("invalidations", c.invalidations);
    ("fallbacks", c.fallbacks);
  ]

let reset_counters t =
  t.counters.hits <- 0;
  t.counters.misses <- 0;
  t.counters.invalidations <- 0;
  t.counters.fallbacks <- 0

let register_telemetry ?(registry = Minirel_telemetry.Registry.default)
    ?(name = "plancache") t =
  let module R = Minirel_telemetry.Registry in
  R.register_source registry ~name
    ~reset:(fun () -> reset_counters t)
    (fun () ->
      List.map (fun (k, v) -> (k, R.Counter v)) (counters_to_list t.counters)
      @ [
          ("entries", R.Gauge (float_of_int (size t)));
          ("enabled", R.Gauge (if t.enabled then 1.0 else 0.0));
        ])

let pp_counters ppf c =
  Fmt.pf ppf "hits %d  misses %d  invalidations %d  fallbacks %d" c.hits c.misses
    c.invalidations c.fallbacks

let pp ppf t =
  Fmt.pf ppf "plan cache: %d entries, %a%s" (size t) pp_counters t.counters
    (if t.enabled then "" else " (disabled)")
