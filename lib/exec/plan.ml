(* Physical query plans. Leaf accesses filter with a relation-local
   predicate; join nodes concatenate outer ++ inner tuples, so positions
   in downstream nodes refer to the concatenated layout. *)

open Minirel_storage
open Minirel_query

type range = Minirel_index.Btree.bound * Minirel_index.Btree.bound

type t =
  | Literal of Tuple.t list  (* in-memory delta tuples *)
  | Scan of { rel : string; pred : Predicate.t }
  | Index_lookup of { rel : string; index : string; keys : Tuple.t list; pred : Predicate.t }
  | Index_range of { rel : string; index : string; ranges : range list; pred : Predicate.t }
  | Inlj of {
      outer : t;
      rel : string;  (* inner relation *)
      index : string;  (* index on the inner join attribute(s) *)
      outer_key : int array;  (* positions of the join key in the outer tuple *)
      pred : Predicate.t;  (* inner-relation-local filter *)
    }
  | Nlj of {
      outer : t;
      rel : string;
      eq : (int * int) list;  (* (outer position, inner position) equalities *)
      pred : Predicate.t;
    }
  | Hash_join of {
      outer : t;
      rel : string;  (* inner relation; hashed once per cursor open *)
      outer_key : int array;  (* join-key positions in the outer tuple *)
      inner_key : int array;  (* join-key positions in the inner relation *)
      pred : Predicate.t;  (* inner-relation-local filter, applied at build *)
    }
  | Filter of Predicate.t * t
  | Project of int array * t
  | Sort of { keys : int array; desc : bool; input : t }  (* blocking *)
  | Limit of int * t
  | Aggregate of {
      group_by : int array;  (* positions forming the group key *)
      aggs : agg list;  (* one output column per aggregate, after the key *)
      input : t;
    }  (* blocking; output = group key ++ aggregate values *)

and agg = Count_star | Sum_of of int | Avg_of of int | Min_of of int | Max_of of int

let pp_agg ppf = function
  | Count_star -> Fmt.string ppf "count(*)"
  | Sum_of i -> Fmt.pf ppf "sum(#%d)" i
  | Avg_of i -> Fmt.pf ppf "avg(#%d)" i
  | Min_of i -> Fmt.pf ppf "min(#%d)" i
  | Max_of i -> Fmt.pf ppf "max(#%d)" i

let rec pp ppf = function
  | Literal ts -> Fmt.pf ppf "literal(%d)" (List.length ts)
  | Scan { rel; pred } -> Fmt.pf ppf "scan(%s | %a)" rel Predicate.pp pred
  | Index_lookup { rel; index; keys; pred } ->
      Fmt.pf ppf "ixlookup(%s.%s, %d keys | %a)" rel index (List.length keys) Predicate.pp pred
  | Index_range { rel; index; ranges; pred } ->
      Fmt.pf ppf "ixrange(%s.%s, %d ranges | %a)" rel index (List.length ranges) Predicate.pp
        pred
  | Inlj { outer; rel; index; _ } -> Fmt.pf ppf "inlj(%a ⋈ %s.%s)" pp outer rel index
  | Nlj { outer; rel; _ } -> Fmt.pf ppf "nlj(%a ⋈ %s)" pp outer rel
  | Hash_join { outer; rel; _ } -> Fmt.pf ppf "hashjoin(%a ⋈ %s)" pp outer rel
  | Filter (p, t) -> Fmt.pf ppf "filter(%a | %a)" pp t Predicate.pp p
  | Project (ps, t) -> Fmt.pf ppf "project([%a] | %a)" Fmt.(array ~sep:semi int) ps pp t
  | Sort { keys; desc; input } ->
      Fmt.pf ppf "sort([%a]%s | %a)"
        Fmt.(array ~sep:semi int)
        keys
        (if desc then " desc" else "")
        pp input
  | Limit (n, t) -> Fmt.pf ppf "limit(%d | %a)" n pp t
  | Aggregate { group_by; aggs; input } ->
      Fmt.pf ppf "aggregate([%a] | %a | %a)"
        Fmt.(array ~sep:semi int)
        group_by
        Fmt.(list ~sep:comma pp_agg)
        aggs pp input
