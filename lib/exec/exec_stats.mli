(** Per-operator executor counters (rows out, inclusive ns), collected
    when a profile is passed to {!Executor.cursor}. Without a profile
    the executor is uninstrumented and pays nothing. *)

type node = {
  id : int;  (** pre-order position in the plan *)
  label : string;  (** operator name *)
  mutable rows_out : int;  (** tuples produced *)
  mutable ns : int64;  (** inclusive wall time inside pulls *)
}

type t

val create : unit -> t

(** Add a node for one plan operator; the executor calls this while
    building cursors. *)
val register : t -> string -> node

(** Nodes in plan pre-order. *)
val nodes : t -> node list

val clear : t -> unit

(** Wrap a cursor so every pull updates [node]. *)
val instrument : node -> (unit -> 'a option) -> unit -> 'a option

val pp_node : node Fmt.t
val pp : t Fmt.t
