(* Associative aggregate accumulators (see the .mli for the merge and
   exactness contracts). *)

open Minirel_storage

type spec =
  | Count
  | Count_of of int
  | Sum of int
  | Avg of int
  | Min of int
  | Max of int

let arg_pos = function
  | Count -> None
  | Count_of p | Sum p | Avg p | Min p | Max p -> Some p

let name = function
  | Count | Count_of _ -> "count"
  | Sum _ -> "sum"
  | Avg _ -> "avg"
  | Min _ -> "min"
  | Max _ -> "max"

type acc = {
  mutable n : int;
  mutable sum_int : int;
  mutable sum_float : float;
  mutable saw_float : bool;
  mutable mn : Value.t option;
  mutable mx : Value.t option;
}

let create () =
  { n = 0; sum_int = 0; sum_float = 0.0; saw_float = false; mn = None; mx = None }

let copy a = { a with n = a.n }

let add_value acc = function
  | Value.Null -> ()
  | v ->
      acc.n <- acc.n + 1;
      (match v with
      | Value.Int i -> acc.sum_int <- acc.sum_int + i
      | Value.Float f ->
          acc.sum_float <- acc.sum_float +. f;
          acc.saw_float <- true
      | _ -> ());
      (match acc.mn with
      | Some m when Value.compare m v <= 0 -> ()
      | _ -> acc.mn <- Some v);
      match acc.mx with
      | Some m when Value.compare m v >= 0 -> ()
      | _ -> acc.mx <- Some v

let add spec acc tuple =
  match spec with
  | Count -> acc.n <- acc.n + 1
  | Count_of p | Sum p | Avg p | Min p | Max p -> add_value acc tuple.(p)

let merge dst src =
  dst.n <- dst.n + src.n;
  dst.sum_int <- dst.sum_int + src.sum_int;
  dst.sum_float <- dst.sum_float +. src.sum_float;
  dst.saw_float <- dst.saw_float || src.saw_float;
  (match src.mn with
  | None -> ()
  | Some v -> (
      match dst.mn with
      | Some m when Value.compare m v <= 0 -> ()
      | _ -> dst.mn <- Some v));
  match src.mx with
  | None -> ()
  | Some v -> (
      match dst.mx with
      | Some m when Value.compare m v >= 0 -> ()
      | _ -> dst.mx <- Some v)

(* COUNT/SUM are invertible; MIN/MAX can only be subtracted when the
   removed value is strictly inside the current extrema. *)
let remove spec acc tuple =
  match spec with
  | Count ->
      acc.n <- acc.n - 1;
      `Ok
  | Count_of p | Sum p | Avg p | Min p | Max p -> (
      match tuple.(p) with
      | Value.Null -> `Ok
      | v ->
          acc.n <- acc.n - 1;
          (match v with
          | Value.Int i -> acc.sum_int <- acc.sum_int - i
          | Value.Float f -> acc.sum_float <- acc.sum_float -. f
          | _ -> ());
          let ties = function Some m -> Value.compare m v = 0 | None -> true in
          let extremum_matters = match spec with Min _ | Max _ -> true | _ -> false in
          if acc.n = 0 then (
            acc.mn <- None;
            acc.mx <- None;
            `Ok)
          else if extremum_matters && (ties acc.mn || ties acc.mx) then `Rebuild
          else `Ok)

let sum_value acc =
  if acc.saw_float then Value.Float (acc.sum_float +. float_of_int acc.sum_int)
  else Value.Int acc.sum_int

let finalize spec acc =
  match spec with
  | Count | Count_of _ -> Value.Int acc.n
  | Sum _ -> if acc.n = 0 then Value.Null else sum_value acc
  | Avg _ ->
      if acc.n = 0 then Value.Null
      else
        let s =
          match sum_value acc with
          | Value.Int i -> float_of_int i
          | Value.Float f -> f
          | _ -> 0.0
        in
        Value.Float (s /. float_of_int acc.n)
  | Min _ -> ( match acc.mn with Some v -> v | None -> Value.Null)
  | Max _ -> ( match acc.mx with Some v -> v | None -> Value.Null)

let of_tuples specs tuples =
  let accs = Array.map (fun _ -> create ()) specs in
  List.iter (fun t -> Array.iteri (fun i spec -> add spec accs.(i) t) specs) tuples;
  accs

let equal_acc spec a b =
  match spec with
  | Count | Count_of _ -> a.n = b.n
  | Sum _ | Avg _ ->
      a.n = b.n
      && a.sum_int = b.sum_int
      && a.saw_float = b.saw_float
      && (not a.saw_float || Float.abs (a.sum_float -. b.sum_float) < 1e-9)
  | Min _ -> Option.equal Value.equal a.mn b.mn
  | Max _ -> Option.equal Value.equal a.mx b.mx
