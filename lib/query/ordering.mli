(** The one total order shared by every ORDER BY ... LIMIT k path.

    Top-k across shards is only well-defined when every producer and
    the oracle sort by the same comparator, including under duplicate
    order keys — so after the order keys the full tuple breaks ties.
    With that, first-k answers are prefix-exact regardless of arrival
    order, which is what the differential harness checks. *)

open Minirel_storage

type key = int * bool
(** Expanded result position and [desc] flag. *)

val cmp : order:key array -> Tuple.t -> Tuple.t -> int
(** Compare by each order key in turn (descending keys negate), then
    by the full tuple ascending. Total and deterministic. *)

val sort : order:key array -> Tuple.t list -> Tuple.t list

val first_k : order:key array -> k:int -> Tuple.t list -> Tuple.t list
(** [sort] then take the first [k] — the oracle's ground truth. *)
