(** Associative aggregate accumulators for the §3.6 grouped query
    shapes.

    An accumulator is a partial aggregate that merges associatively:
    per-entry caches in the PMV store, per-shard partials in the
    router, and the brute-force oracle all fold tuples into the same
    representation, so streamed and ground-truth results can be
    compared for exact equality after {!finalize}.

    AVG is never finalized early — the accumulator carries SUM and
    COUNT separately (averaging two per-shard averages is wrong unless
    the group sizes match), and the division happens only in
    {!finalize}. Integer SUM/COUNT stay exact [int]s so oracle
    equality is not at the mercy of float rounding. *)

open Minirel_storage

type spec =
  | Count  (** [count] over all rows *)
  | Count_of of int  (** [count] of one attribute at an expanded result position *)
  | Sum of int
  | Avg of int  (** carried as SUM + COUNT; divided only at finalize *)
  | Min of int
  | Max of int

val arg_pos : spec -> int option
(** The expanded-result position the aggregate reads, if any. *)

val name : spec -> string
(** Short name ("count", "sum", ...) for headers and telemetry. *)

type acc = {
  mutable n : int;  (** non-null inputs folded in *)
  mutable sum_int : int;
  mutable sum_float : float;
  mutable saw_float : bool;
  mutable mn : Value.t option;
  mutable mx : Value.t option;
}

val create : unit -> acc

val add : spec -> acc -> Tuple.t -> unit
(** Fold one expanded result tuple into the accumulator. *)

val merge : acc -> acc -> unit
(** [merge dst src] folds [src] into [dst]. Associative and
    commutative, so shard partials merge in any order. *)

val copy : acc -> acc

val remove : spec -> acc -> Tuple.t -> [ `Ok | `Rebuild ]
(** Subtract one tuple (incremental maintenance). [`Rebuild] means the
    accumulator cannot answer exactly any more (a MIN/MAX extremum was
    deleted) and must be recomputed from the backing tuples. *)

val finalize : spec -> acc -> Value.t
(** Count -> [Int n]; Sum -> exact [Int] unless a float was folded in;
    Avg -> [Float (sum / n)] or [Null] on an empty group; Min/Max ->
    the extremum or [Null]. *)

val of_tuples : spec array -> Tuple.t list -> acc array
(** Fresh accumulators folded over a tuple list — the oracle path and
    the per-group rebuild path. *)

val equal_acc : spec -> acc -> acc -> bool
(** Equality of the observable state (what {!finalize} depends on). *)
