(* Deterministic total order for ORDER BY (see the .mli). *)

open Minirel_storage

type key = int * bool

let cmp ~order a b =
  let n = Array.length order in
  let rec keys i =
    if i >= n then Tuple.compare a b
    else
      let pos, desc = order.(i) in
      let c = Value.compare a.(pos) b.(pos) in
      if c <> 0 then if desc then -c else c else keys (i + 1)
  in
  keys 0

let sort ~order tuples = List.sort (cmp ~order) tuples

let first_k ~order ~k tuples =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take k (sort ~order tuples)
