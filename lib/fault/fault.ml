(* Deterministic fault injection: named sites armed with firing
   policies. Registries are instantiable so every engine can own an
   independent fault scope; a process-global [default] registry backs
   the original API, which is kept as thin shims. A registry is off by
   default; while disabled every probe reduces to one boolean load so
   hot paths can keep probes unconditionally.

   Determinism: probabilistic policies draw from SplitMix64 streams
   seeded by (registry seed, site name hash, arming generation). Each
   engine owns its registry and executes its workload sequentially, so
   hit ordering — and therefore every firing decision — is a pure
   function of the seed and the workload; a mutex serialises the rare
   case of domains sharing one registry. *)

module Sm = Minirel_prng.Split_mix

type policy = Always | Once | Nth of int | First of int | Prob of float

let policy_to_string = function
  | Always -> "always"
  | Once -> "once"
  | Nth n -> Printf.sprintf "nth=%d" n
  | First n -> Printf.sprintf "first=%d" n
  | Prob p -> Printf.sprintf "prob=%g" p

exception Injected of string

type site = {
  policy : policy;
  mutable hits : int;
  mutable fired : int;
  mutable rng : Sm.t;  (* SplitMix64 stream for [Prob] *)
}

type reg = {
  mutable enabled : bool;
  mutable seed : int;
  mutable generation : int;
  table : (string, site) Hashtbl.t;
  (* Serialises arming and site mutation once domains share a registry.
     [enabled] is read outside the lock on purpose: the disabled hot
     path must stay a single boolean load. *)
  lock : Mutex.t;
}

let create () =
  {
    enabled = false;
    seed = 0;
    generation = 0;
    table = Hashtbl.create 16;
    lock = Mutex.create ();
  }
let default = create ()

let derive_state reg name gen =
  Int64.logxor
    (Int64.of_int ((reg.seed * 0x01000193) lxor Hashtbl.hash name))
    (Int64.shift_left (Int64.of_int (gen + 1)) 32)

let is_enabled_in reg = reg.enabled

let locked reg f =
  Mutex.lock reg.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.lock) f

let enable_in ?(seed = 0) reg =
  locked reg (fun () ->
      reg.seed <- seed;
      reg.enabled <- true;
      (* rebase every armed site's stream on the new seed *)
      Hashtbl.iter
        (fun name site ->
          site.rng <- Sm.of_int64 (derive_state reg name reg.generation))
        reg.table)

let disable_in reg = reg.enabled <- false

let arm_in reg name policy =
  locked reg (fun () ->
      reg.generation <- reg.generation + 1;
      Hashtbl.replace reg.table name
        {
          policy;
          hits = 0;
          fired = 0;
          rng = Sm.of_int64 (derive_state reg name reg.generation);
        })

let disarm_in reg name = locked reg (fun () -> Hashtbl.remove reg.table name)

let reset_in reg =
  locked reg (fun () ->
      Hashtbl.reset reg.table;
      reg.generation <- 0)

(* Policy decision for one recorded hit (1-based). *)
let decide site =
  match site.policy with
  | Always -> true
  | Once -> site.hits = 1
  | Nth n -> site.hits = n
  | First n -> site.hits <= n
  | Prob p -> Sm.float site.rng < p

let fire_armed site =
  site.hits <- site.hits + 1;
  let f = decide site in
  if f then site.fired <- site.fired + 1;
  f

let fire_in reg name =
  (* [enabled] read unlocked: the disabled path stays one boolean load. *)
  reg.enabled
  && locked reg (fun () ->
         match Hashtbl.find_opt reg.table name with
         | None -> false
         | Some site ->
             let f = fire_armed site in
             if f then
               Minirel_telemetry.Flight.record Fault_hit
                 ~a:(Minirel_telemetry.Flight.intern name)
                 ~b:site.fired;
             f)

let hit_in reg name = if fire_in reg name then raise (Injected name)

let hits_in reg name =
  locked reg (fun () ->
      match Hashtbl.find_opt reg.table name with None -> 0 | Some s -> s.hits)

let fired_in reg name =
  locked reg (fun () ->
      match Hashtbl.find_opt reg.table name with None -> 0 | Some s -> s.fired)

let sites_in reg =
  locked reg (fun () ->
      Hashtbl.fold
        (fun name s acc -> (name, s.policy, s.hits, s.fired) :: acc)
        reg.table [])
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

(* Process-global shims over [default], preserving the original API for
   existing call sites (tests, torture, pmvctl). *)

let is_enabled () = is_enabled_in default
let enable ?seed () = enable_in ?seed default
let disable () = disable_in default
let arm name policy = arm_in default name policy
let disarm name = disarm_in default name
let reset () = reset_in default
let fire name = fire_in default name
let hit name = hit_in default name
let hits name = hits_in default name
let fired name = fired_in default name
let sites () = sites_in default
