(* Deterministic fault injection: named sites armed with firing
   policies. The registry is process-global, off by default; while
   disabled every probe reduces to one boolean load so hot paths can
   keep probes unconditionally.

   Determinism: probabilistic policies draw from SplitMix64 streams
   seeded by (global seed, site name hash, arming generation). The
   engine is single-threaded, so hit ordering — and therefore every
   firing decision — is a pure function of the seed and the workload. *)

type policy = Always | Once | Nth of int | First of int | Prob of float

let policy_to_string = function
  | Always -> "always"
  | Once -> "once"
  | Nth n -> Printf.sprintf "nth=%d" n
  | First n -> Printf.sprintf "first=%d" n
  | Prob p -> Printf.sprintf "prob=%g" p

exception Injected of string

type site = {
  policy : policy;
  mutable hits : int;
  mutable fired : int;
  mutable rng : int64;  (* SplitMix64 state for [Prob] *)
}

let enabled = ref false
let global_seed = ref 0
let generation = ref 0
let table : (string, site) Hashtbl.t = Hashtbl.create 16

(* SplitMix64, self-contained: this library sits below the workload
   layer and must not depend on it. *)
let sm_next state =
  let z = Int64.add state 0x9E3779B97F4A7C15L in
  let x = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
  (z, Int64.logxor x (Int64.shift_right_logical x 31))

let sm_float site =
  let state, out = sm_next site.rng in
  site.rng <- state;
  Int64.to_float (Int64.shift_right_logical out 11) /. 9007199254740992.0 (* 2^53 *)

let derive_state name gen =
  Int64.logxor
    (Int64.of_int ((!global_seed * 0x01000193) lxor Hashtbl.hash name))
    (Int64.shift_left (Int64.of_int (gen + 1)) 32)

let is_enabled () = !enabled

let enable ?(seed = 0) () =
  global_seed := seed;
  enabled := true;
  (* rebase every armed site's stream on the new seed *)
  Hashtbl.iter (fun name site -> site.rng <- derive_state name !generation) table

let disable () = enabled := false

let arm name policy =
  incr generation;
  Hashtbl.replace table name
    { policy; hits = 0; fired = 0; rng = derive_state name !generation }

let disarm name = Hashtbl.remove table name

let reset () =
  Hashtbl.reset table;
  generation := 0

(* Policy decision for one recorded hit (1-based). *)
let decide site =
  match site.policy with
  | Always -> true
  | Once -> site.hits = 1
  | Nth n -> site.hits = n
  | First n -> site.hits <= n
  | Prob p -> sm_float site < p

let fire_armed site =
  site.hits <- site.hits + 1;
  let f = decide site in
  if f then site.fired <- site.fired + 1;
  f

let fire name =
  !enabled
  &&
  match Hashtbl.find_opt table name with
  | None -> false
  | Some site -> fire_armed site

let hit name = if fire name then raise (Injected name)

let hits name =
  match Hashtbl.find_opt table name with None -> 0 | Some s -> s.hits

let fired name =
  match Hashtbl.find_opt table name with None -> 0 | Some s -> s.fired

let sites () =
  Hashtbl.fold (fun name s acc -> (name, s.policy, s.hits, s.fired) :: acc) table []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)
