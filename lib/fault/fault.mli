(** Deterministic fault injection. A {e failpoint} is a named site in
    engine code ([Buffer_pool.access], [Wal.log_delta],
    [Lock_manager.acquire], [Maintain.on_delta], ...) that normally does
    nothing; a test or the torture driver {e arms} it with a firing
    policy, and the site then fails on the hits the policy selects.

    Everything is deterministic: probabilistic policies draw from a
    SplitMix64 stream derived from the global seed, the site name and
    the arming generation, so a run is reproducible from its seed alone.

    The registry is process-global and off by default. While disabled,
    a probe is a single boolean load — no allocation, no hashing — so
    production code paths can keep their probes unconditionally. *)

(** When an armed site fires, counted from 1 at arming time. *)
type policy =
  | Always  (** every hit *)
  | Once  (** the first hit only *)
  | Nth of int  (** exactly the [n]-th hit (1-based) *)
  | First of int  (** the first [n] hits *)
  | Prob of float  (** each hit independently with probability [p] *)

val policy_to_string : policy -> string

(** Raised by {!hit} (and by convention by call sites acting on
    {!fire}) with the site name. *)
exception Injected of string

(** Turn the registry on. [seed] (default 0) rebases every derived
    per-site stream; armed sites and counters are kept. *)
val enable : ?seed:int -> unit -> unit

(** Turn every probe back into a plain boolean load. Armed sites stay
    armed for a later {!enable}. *)
val disable : unit -> unit

val is_enabled : unit -> bool

(** Arm (or re-arm) a site. Re-arming resets its hit/fired counters and
    advances its arming generation, giving [Prob] a fresh — still
    deterministic — stream. *)
val arm : string -> policy -> unit

(** Disarm one site; its probes return to no-ops. Unknown sites are
    ignored. *)
val disarm : string -> unit

(** Disarm every site and drop all counters (the seed and enabled flag
    survive). *)
val reset : unit -> unit

(** [fire site] records one hit when the registry is enabled and the
    site is armed, and reports whether the policy selects this hit.
    Call sites that need to clean up before failing (e.g. flush a
    partial WAL append) branch on this and raise {!Injected}
    themselves. Disabled or unarmed: [false]. *)
val fire : string -> bool

(** Probe that raises [Injected site] whenever {!fire} is true — the
    common wiring. *)
val hit : string -> unit

(** Hits recorded at an armed site since arming (0 for unknown sites). *)
val hits : string -> int

(** Times the site actually fired since arming. *)
val fired : string -> int

(** Armed sites as [(name, policy, hits, fired)], sorted by name. *)
val sites : unit -> (string * policy * int * int) list
