(** Deterministic fault injection. A {e failpoint} is a named site in
    engine code ([Buffer_pool.access], [Wal.log_delta],
    [Lock_manager.acquire], [Maintain.on_delta], ...) that normally does
    nothing; a test or the torture driver {e arms} it with a firing
    policy, and the site then fails on the hits the policy selects.

    Everything is deterministic: probabilistic policies draw from a
    SplitMix64 stream derived from the registry seed, the site name and
    the arming generation, so a run is reproducible from its seed alone.

    Registries are instantiable ({!create}) so each engine instance can
    own an independent fault scope; the process-global {!default}
    registry backs the original un-suffixed API, kept as thin shims for
    existing call sites. A registry is off by default. While disabled,
    a probe is a single boolean load — no allocation, no hashing — so
    production code paths can keep their probes unconditionally. *)

(** When an armed site fires, counted from 1 at arming time. *)
type policy =
  | Always  (** every hit *)
  | Once  (** the first hit only *)
  | Nth of int  (** exactly the [n]-th hit (1-based) *)
  | First of int  (** the first [n] hits *)
  | Prob of float  (** each hit independently with probability [p] *)

val policy_to_string : policy -> string

(** Raised by {!hit} (and by convention by call sites acting on
    {!fire}) with the site name. *)
exception Injected of string

(** A fault registry: an independent set of armed sites, seed and
    enabled flag. *)
type reg

(** A fresh, disabled registry with no armed sites. *)
val create : unit -> reg

(** The process-global registry the un-suffixed API operates on. *)
val default : reg

(** Turn the registry on. [seed] (default 0) rebases every derived
    per-site stream; armed sites and counters are kept. *)
val enable_in : ?seed:int -> reg -> unit

(** Turn every probe back into a plain boolean load. Armed sites stay
    armed for a later {!enable_in}. *)
val disable_in : reg -> unit

val is_enabled_in : reg -> bool

(** Arm (or re-arm) a site. Re-arming resets its hit/fired counters and
    advances its arming generation, giving [Prob] a fresh — still
    deterministic — stream. *)
val arm_in : reg -> string -> policy -> unit

(** Disarm one site; its probes return to no-ops. Unknown sites are
    ignored. *)
val disarm_in : reg -> string -> unit

(** Disarm every site and drop all counters (the seed and enabled flag
    survive). *)
val reset_in : reg -> unit

(** [fire_in reg site] records one hit when the registry is enabled and
    the site is armed, and reports whether the policy selects this hit.
    Call sites that need to clean up before failing (e.g. flush a
    partial WAL append) branch on this and raise {!Injected}
    themselves. Disabled or unarmed: [false]. *)
val fire_in : reg -> string -> bool

(** Probe that raises [Injected site] whenever {!fire_in} is true — the
    common wiring. *)
val hit_in : reg -> string -> unit

(** Hits recorded at an armed site since arming (0 for unknown sites). *)
val hits_in : reg -> string -> int

(** Times the site actually fired since arming. *)
val fired_in : reg -> string -> int

(** Armed sites as [(name, policy, hits, fired)], sorted by name. *)
val sites_in : reg -> (string * policy * int * int) list

(** {2 Process-global shims over {!default}} *)

val enable : ?seed:int -> unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool
val arm : string -> policy -> unit
val disarm : string -> unit
val reset : unit -> unit
val fire : string -> bool
val hit : string -> unit
val hits : string -> int
val fired : string -> int
val sites : unit -> (string * policy * int * int) list
