(* The catalog: relation name -> heap file + secondary indexes, sharing
   one buffer pool. All index maintenance for base-table mutations is
   centralised here so the executor and the transaction layer cannot
   leave indexes stale. *)

type rel = {
  mutable heap : Minirel_storage.Heap_file.t;
  mutable indexes : Index.t list;
}

type t = {
  pool : Minirel_storage.Buffer_pool.t;
  rels : (string, rel) Hashtbl.t;
  mutable version : int;  (* bumped on index DDL; plan caches validate against it *)
}

let create pool = { pool; rels = Hashtbl.create 16; version = 0 }

let pool t = t.pool
let version t = t.version

let create_relation t ?slots_per_page schema =
  let name = schema.Minirel_storage.Schema.name in
  if Hashtbl.mem t.rels name then
    invalid_arg (Fmt.str "Catalog.create_relation: %s already exists" name);
  let heap = Minirel_storage.Heap_file.create ?slots_per_page t.pool schema in
  Hashtbl.replace t.rels name { heap; indexes = [] };
  heap

(* @raise Not_found on unknown relation. *)
let find_rel t name =
  match Hashtbl.find_opt t.rels name with
  | Some r -> r
  | None -> raise Not_found

let heap t name = (find_rel t name).heap
let schema t name = Minirel_storage.Heap_file.schema (heap t name)
let mem t name = Hashtbl.mem t.rels name
let relations t = Hashtbl.fold (fun name _ acc -> name :: acc) t.rels []

(* Create an index on [attrs] of [rel] and backfill it from the heap. *)
let create_index t ?(kind = Index.Btree_kind) ~rel ~name ~attrs () =
  let r = find_rel t rel in
  if List.exists (fun ix -> Index.name ix = name) r.indexes then
    invalid_arg (Fmt.str "Catalog.create_index: index %s already exists" name);
  let sch = Minirel_storage.Heap_file.schema r.heap in
  let key_positions =
    Array.of_list (List.map (fun a -> Minirel_storage.Schema.pos sch a) attrs)
  in
  let file_id = Minirel_storage.Buffer_pool.register_file t.pool in
  (* backfill from the heap at creation (B-trees bulk-load) *)
  let prefill =
    List.rev
      (Minirel_storage.Heap_file.fold r.heap (fun acc rid tuple -> (tuple, rid) :: acc) [])
  in
  let ix = Index.create ~kind ~prefill ~name ~key_positions ~file_id () in
  Index.attach_pool ix t.pool;
  r.indexes <- ix :: r.indexes;
  t.version <- t.version + 1;
  ix

(* Drop an index by name, releasing its buffer-pool pages.
   @raise Invalid_argument when [rel] has no index called [name]. *)
let drop_index t ~rel ~name =
  let r = find_rel t rel in
  let doomed, kept = List.partition (fun ix -> Index.name ix = name) r.indexes in
  match doomed with
  | [] -> invalid_arg (Fmt.str "Catalog.drop_index: no index %s on %s" name rel)
  | ix :: _ ->
      Minirel_storage.Buffer_pool.invalidate_file t.pool ~file:(Index.file_id ix);
      r.indexes <- kept;
      t.version <- t.version + 1

let indexes t rel = (find_rel t rel).indexes

(* First index whose key is exactly [attrs] (in order), if any. *)
let index_on t ~rel ~attrs =
  let r = find_rel t rel in
  let sch = Minirel_storage.Heap_file.schema r.heap in
  let want = List.map (fun a -> Minirel_storage.Schema.pos sch a) attrs in
  List.find_opt
    (fun ix -> Array.to_list (Index.key_positions ix) = want)
    r.indexes

(* --- mutations that keep heap and indexes consistent --- *)

let insert t ~rel tuple =
  let r = find_rel t rel in
  let rid = Minirel_storage.Heap_file.insert r.heap tuple in
  List.iter (fun ix -> Index.insert ix tuple rid) r.indexes;
  rid

(* @raise Not_found if [rid] is empty. *)
let delete t ~rel rid =
  let r = find_rel t rel in
  let tuple = Minirel_storage.Heap_file.delete r.heap rid in
  List.iter (fun ix -> ignore (Index.delete ix tuple rid)) r.indexes;
  tuple

(* Compact a relation: rewrite its tuples into a fresh heap file with
   no holes and rebuild every index (bulk-loaded). Frees the space of
   deleted slots; RIDs change, so this must not run while cursors are
   open. Returns the number of pages reclaimed. *)
let vacuum t ~rel =
  let r = find_rel t rel in
  let old_heap = r.heap in
  let old_pages = Minirel_storage.Heap_file.n_pages old_heap in
  let tuples =
    List.rev (Minirel_storage.Heap_file.fold old_heap (fun acc _ tuple -> tuple :: acc) [])
  in
  Minirel_storage.Buffer_pool.invalidate_file t.pool
    ~file:(Minirel_storage.Heap_file.file_id old_heap);
  let fresh =
    Minirel_storage.Heap_file.create t.pool (Minirel_storage.Heap_file.schema old_heap)
  in
  let prefill = List.map (fun tuple -> (tuple, Minirel_storage.Heap_file.insert fresh tuple)) tuples in
  r.heap <- fresh;
  r.indexes <-
    List.map
      (fun ix ->
        let file_id = Minirel_storage.Buffer_pool.register_file t.pool in
        let fresh_ix =
          Index.create ~kind:(Index.kind ix) ~prefill ~name:(Index.name ix)
            ~key_positions:(Index.key_positions ix) ~file_id ()
        in
        Index.attach_pool fresh_ix t.pool;
        fresh_ix)
      r.indexes;
  t.version <- t.version + 1;
  max 0 (old_pages - Minirel_storage.Heap_file.n_pages fresh)

exception Inconsistent of string

(* Integrity check ("fsck"): every index of every relation must mirror
   its heap exactly — same entry count, every tuple findable under its
   key at its rid — and satisfy its structural invariants.
   @raise Inconsistent describing the first violation. *)
let validate t =
  let fail fmt = Fmt.kstr (fun s -> raise (Inconsistent s)) fmt in
  Hashtbl.iter
    (fun rel r ->
      List.iter
        (fun ix ->
          (try Index.validate ix
           with Btree.Invalid msg -> fail "%s.%s: %s" rel (Index.name ix) msg);
          let heap_tuples = Minirel_storage.Heap_file.n_tuples r.heap in
          if Index.n_entries ix <> heap_tuples then
            fail "%s.%s: %d entries vs %d heap tuples" rel (Index.name ix)
              (Index.n_entries ix) heap_tuples;
          Minirel_storage.Heap_file.iter r.heap (fun rid tuple ->
              let key = Index.key_of_tuple ix tuple in
              if
                not
                  (List.exists
                     (fun r2 -> Minirel_storage.Rid.equal r2 rid)
                     (Index.find ix key))
              then fail "%s.%s: tuple at %a missing from the index" rel (Index.name ix)
                  Minirel_storage.Rid.pp rid))
        r.indexes)
    t.rels

(* Returns the old tuple. @raise Not_found if [rid] is empty. *)
let update t ~rel rid tuple =
  let r = find_rel t rel in
  let old =
    match Minirel_storage.Heap_file.fetch r.heap rid with
    | Some old -> old
    | None -> raise Not_found
  in
  Minirel_storage.Heap_file.update r.heap rid tuple;
  List.iter
    (fun ix ->
      ignore (Index.delete ix old rid);
      Index.insert ix tuple rid)
    r.indexes;
  old
