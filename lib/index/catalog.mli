(** The catalog: relation name -> heap file + secondary indexes,
    sharing one buffer pool. All index maintenance for base-table
    mutations is centralised here so the executor and the transaction
    layer cannot leave indexes stale. *)

type t

val create : Minirel_storage.Buffer_pool.t -> t
val pool : t -> Minirel_storage.Buffer_pool.t

(** Monotonic counter bumped by every index DDL operation
    ([create_index], [drop_index], [vacuum]). Plan caches compare it to
    decide whether a compiled skeleton still matches the physical
    design. *)
val version : t -> int

(** Create an empty relation named by the schema.
    @raise Invalid_argument when the name is taken. *)
val create_relation :
  t -> ?slots_per_page:int -> Minirel_storage.Schema.t -> Minirel_storage.Heap_file.t

(** @raise Not_found on unknown relations. *)
val heap : t -> string -> Minirel_storage.Heap_file.t

(** @raise Not_found on unknown relations. *)
val schema : t -> string -> Minirel_storage.Schema.t

val mem : t -> string -> bool
val relations : t -> string list

(** Create an index on the named attributes and backfill it from the
    heap. @raise Invalid_argument when the index name is taken;
    @raise Not_found on unknown relations or attributes. *)
val create_index :
  t -> ?kind:Index.kind -> rel:string -> name:string -> attrs:string list -> unit -> Index.t

(** Drop an index by name, releasing its buffer-pool pages.
    @raise Invalid_argument when [rel] has no index called [name];
    @raise Not_found on unknown relations. *)
val drop_index : t -> rel:string -> name:string -> unit

val indexes : t -> string -> Index.t list

(** First index whose key is exactly [attrs], in order. *)
val index_on : t -> rel:string -> attrs:string list -> Index.t option

(** Insert into the heap and every index. *)
val insert : t -> rel:string -> Minirel_storage.Tuple.t -> Minirel_storage.Rid.t

(** Delete from the heap and every index, returning the old tuple.
    @raise Not_found when the rid is empty. *)
val delete : t -> rel:string -> Minirel_storage.Rid.t -> Minirel_storage.Tuple.t

(** Compact a relation: rewrite tuples into a fresh hole-free heap and
    rebuild every index (bulk-loaded). RIDs change — do not run while
    cursors are open. Returns the pages reclaimed.
    @raise Not_found on unknown relations. *)
val vacuum : t -> rel:string -> int

exception Inconsistent of string

(** Integrity check ("fsck"): every index must mirror its heap exactly
    and satisfy its structural invariants.
    @raise Inconsistent describing the first violation. *)
val validate : t -> unit

(** In-place update keeping all indexes consistent; returns the old
    tuple. @raise Not_found when the rid is empty. *)
val update :
  t -> rel:string -> Minirel_storage.Rid.t -> Minirel_storage.Tuple.t -> Minirel_storage.Tuple.t
