(** A first-class engine instance: one catalog plus everything wired to
    it — buffer pool, transaction manager (and its lock manager), PMV
    manager (and its plan cache), SQL session, optional WAL — and the
    fault/telemetry scopes they all report into.

    {!create} wires the engine against the process-global scopes, a
    drop-in for the ad-hoc wiring the shell, [pmvctl] and the test
    helpers used to repeat; {!scoped} gives it fresh private scopes so
    any number of engines coexist in one process with independent
    failpoints, seeds and metrics — the building block
    {!Shard_router} fans out over. *)

type t

(** Build an engine. With [catalog], adopt an existing catalog (note:
    its buffer pool keeps the fault scope it was created with);
    otherwise create a fresh pool ([pool_capacity], default 4000 pages;
    [pool_policy]) and an empty catalog in [fault]'s scope. [registry]
    receives every component's telemetry source; [fault] scopes the
    lock manager, WAL and maintenance failpoints. Defaults are the
    process-global scopes. *)
val create :
  ?name:string ->
  ?fault:Minirel_fault.Fault.reg ->
  ?registry:Minirel_telemetry.Registry.t ->
  ?tracer:Minirel_telemetry.Tracer.t ->
  ?pool_capacity:int ->
  ?pool_policy:Minirel_cache.Policies.kind ->
  ?default_f_max:int ->
  ?default_policy:Minirel_cache.Policies.kind ->
  ?catalog:Minirel_index.Catalog.t ->
  unit ->
  t

(** Like {!create} but with fresh, private fault/telemetry/tracer
    scopes: nothing this engine does shows up globally, and nothing
    armed or recorded globally reaches it. *)
val scoped :
  ?name:string ->
  ?pool_capacity:int ->
  ?pool_policy:Minirel_cache.Policies.kind ->
  ?default_f_max:int ->
  ?default_policy:Minirel_cache.Policies.kind ->
  ?catalog:Minirel_index.Catalog.t ->
  unit ->
  t

val name : t -> string
val catalog : t -> Minirel_index.Catalog.t
val pool : t -> Minirel_storage.Buffer_pool.t
val txn_mgr : t -> Minirel_txn.Txn.t
val locks : t -> Minirel_txn.Lock_manager.t
val manager : t -> Pmv.Manager.t
val session : t -> Minirel_sql.Session.t
val plan_cache : t -> Minirel_exec.Plan_cache.t
val fault : t -> Minirel_fault.Fault.reg
val registry : t -> Minirel_telemetry.Registry.t
val tracer : t -> Minirel_telemetry.Tracer.t
val wal : t -> Minirel_txn.Wal.t option

(** The attached Domain pool, if any. *)
val parallel : t -> Minirel_parallel.Pool.t option

(** Attach (or detach, with [None]) a Domain pool for morsel-parallel
    O3 execution. The pool stays externally owned — shut it down where
    it was created. *)
val set_parallel : t -> Minirel_parallel.Pool.t option -> unit

(** Default read path for {!answer} (initially
    {!Pmv.Answer.Locked}); a per-call [probe_path] argument wins. *)
val probe_path : t -> Pmv.Answer.probe_path

val set_probe_path : t -> Pmv.Answer.probe_path -> unit

(** Open a WAL in this engine's fault scope, subscribe it to the
    transaction manager and register its telemetry. *)
val attach_wal : t -> filename:string -> Minirel_txn.Wal.t

(** Unsubscribe and close the attached WAL, if any. *)
val detach_wal : t -> unit

(** Run a transaction through the engine: locks, WAL (when attached)
    and deferred PMV maintenance all fire.
    @raise Failure on a lock conflict. *)
val run : t -> Minirel_txn.Txn.change list -> Minirel_txn.Txn.delta list

(** The template's view, creating it on first use ({!Pmv.Manager.create_view}
    semantics: pass [capacity] or [ub_bytes]). *)
val ensure_view :
  ?policy:Minirel_cache.Policies.kind ->
  ?f_max:int ->
  ?capacity:int ->
  ?ub_bytes:int ->
  t ->
  Minirel_query.Template.compiled ->
  Pmv.View.t

val find_view : t -> template:string -> Pmv.View.t option

(** Answer under the Section 3.6 S-lock protocol through the engine's
    manager — PMV when the template has one, plain otherwise; the
    boolean reports whether a view was used. [par] overrides the
    attached pool ({!set_parallel}) for this query; either way, O3
    heap scans and hash joins run morsel-parallel on the pool.
    [probe_path] overrides the engine default ({!set_probe_path});
    [trace] propagates a caller-owned trace context so the whole
    pipeline records into one stitched span tree (see
    {!Pmv.Answer.answer}). *)
val answer :
  ?par:Minirel_parallel.Pool.t ->
  ?profile:Minirel_exec.Exec_stats.t ->
  ?probe_path:Pmv.Answer.probe_path ->
  ?trace:Minirel_telemetry.Span.trace ->
  t ->
  Minirel_query.Instance.t ->
  on_tuple:(Pmv.Answer.phase -> Minirel_storage.Tuple.t -> unit) ->
  Pmv.Answer.stats * bool

(** Root-trace lifecycle on this engine's tracer (subject to its
    stratified sampling; [None] when sampled out or telemetry is
    disabled). The serving surface opens the root span here, threads
    the trace through {!answer} or the router, then closes it with
    {!trace_finish} to land it in the retained ring. [at] reuses a
    monotonic timestamp the surface already read for its own latency
    accounting, sparing always-on tracing a second clock read. *)
val trace_start : ?at:int64 -> t -> string -> Minirel_telemetry.Span.trace option

val trace_finish : ?at:int64 -> t -> Minirel_telemetry.Span.trace -> unit
val last_trace : t -> Minirel_telemetry.Span.trace option
val force_next_trace : t -> unit

(** This engine's telemetry snapshot. *)
val snapshot : t -> (string * Minirel_telemetry.Registry.value) list

(** Zero this engine's metrics and retained traces (registrations
    survive). *)
val reset_telemetry : t -> unit

(** Close the WAL and drain every view's retired version chains. The
    engine must not answer queries afterwards; repeated
    {!scoped}-create/shutdown cycles then leak no version history. *)
val shutdown : t -> unit
