(* A first-class engine instance: one catalog plus everything wired to
   it — buffer pool, transaction manager (with its lock manager),
   PMV manager (with its plan cache), SQL session, optional WAL — and
   the fault and telemetry scopes they all report into.

   Before this module, pmvctl, the shell, the torture driver and the
   test helpers each rebuilt this wiring by hand against the
   process-global fault/telemetry registries, so two engines could not
   coexist in one process. Now the scopes are injected: [create] wires
   everything against the (default, process-global) scopes for drop-in
   compatibility, while [scoped] gives the engine fresh private scopes
   — the building block the shard router fans out over. *)

module Catalog = Minirel_index.Catalog
module Fault = Minirel_fault.Fault
module Registry = Minirel_telemetry.Registry
module Tracer = Minirel_telemetry.Tracer
module Txn = Minirel_txn.Txn
module Wal = Minirel_txn.Wal
module Template = Minirel_query.Template

type t = {
  name : string;
  catalog : Catalog.t;
  txn_mgr : Txn.t;
  manager : Pmv.Manager.t;
  session : Minirel_sql.Session.t;
  fault : Fault.reg;
  registry : Registry.t;
  tracer : Tracer.t;
  mutable wal : Wal.t option;
  (* Domain pool for morsel-parallel O3 execution. Externally owned:
     attaching does not transfer shutdown responsibility. *)
  mutable par : Minirel_parallel.Pool.t option;
  (* Default read path for [answer]; per-call override wins. *)
  mutable probe_path : Pmv.Answer.probe_path;
}

let create ?(name = "engine") ?(fault = Fault.default) ?(registry = Registry.default)
    ?(tracer = Tracer.default) ?(pool_capacity = 4_000) ?pool_policy ?default_f_max
    ?default_policy ?catalog () =
  let catalog =
    match catalog with
    | Some c -> c
    | None ->
        Catalog.create
          (Minirel_storage.Buffer_pool.create ?policy:pool_policy ~fault
             ~capacity:pool_capacity ())
  in
  let txn_mgr = Txn.create ~fault catalog in
  let manager = Pmv.Manager.create ?default_f_max ?default_policy ~registry catalog in
  Pmv.Manager.attach_maintenance manager txn_mgr;
  Minirel_txn.Lock_manager.register_telemetry ~registry (Txn.locks txn_mgr);
  {
    name;
    catalog;
    txn_mgr;
    manager;
    session = Minirel_sql.Session.create catalog;
    fault;
    registry;
    tracer;
    wal = None;
    par = None;
    probe_path = Pmv.Answer.Locked;
  }

(* An engine with fresh, private fault and telemetry scopes: nothing it
   does is visible in the process-global registries, and nothing armed
   or recorded globally reaches it. *)
let scoped ?name ?pool_capacity ?pool_policy ?default_f_max ?default_policy ?catalog () =
  create ?name ~fault:(Fault.create ()) ~registry:(Registry.create ())
    ~tracer:(Tracer.create ()) ?pool_capacity ?pool_policy ?default_f_max ?default_policy
    ?catalog ()

let name t = t.name
let catalog t = t.catalog
let pool t = Catalog.pool t.catalog
let txn_mgr t = t.txn_mgr
let locks t = Txn.locks t.txn_mgr
let manager t = t.manager
let session t = t.session
let plan_cache t = Pmv.Manager.plan_cache t.manager
let fault t = t.fault
let registry t = t.registry
let tracer t = t.tracer
let wal t = t.wal
let parallel t = t.par
let set_parallel t pool = t.par <- pool
let probe_path t = t.probe_path
let set_probe_path t path = t.probe_path <- path

(* Open a WAL in this engine's fault scope, subscribe it to the
   transaction manager and register its telemetry. *)
let attach_wal t ~filename =
  let wal = Wal.open_log ~fault:t.fault ~filename () in
  Wal.attach wal t.txn_mgr;
  Wal.register_telemetry ~registry:t.registry wal;
  t.wal <- Some wal;
  wal

let detach_wal t =
  match t.wal with
  | None -> ()
  | Some wal ->
      Wal.detach wal t.txn_mgr;
      Wal.close wal;
      t.wal <- None

(* Run a transaction through the engine's manager: locks, WAL (when
   attached) and deferred PMV maintenance all fire. *)
let run t changes = Txn.run t.txn_mgr changes

(* The view registered for the template, creating it on first use when
   a sizing argument is given. *)
let ensure_view ?policy ?f_max ?capacity ?ub_bytes t compiled =
  let template = compiled.Template.spec.Template.name in
  match Pmv.Manager.find t.manager ~template with
  | Some view -> view
  | None -> Pmv.Manager.create_view ?policy ?f_max ?capacity ?ub_bytes t.manager compiled

let find_view t ~template = Pmv.Manager.find t.manager ~template

(* Answer under the Section 3.6 S-lock protocol through the engine's
   manager (PMV when the template has one, plain otherwise). [par]
   overrides the attached pool for this query. *)
let answer ?par ?profile ?probe_path ?trace t instance ~on_tuple =
  let par = match par with Some _ -> par | None -> t.par in
  let probe_path = Option.value ~default:t.probe_path probe_path in
  Pmv.Manager.answer ~locks:(locks t) ?par ?profile ~probe_path ?trace t.manager
    instance ~on_tuple

(* Root-trace lifecycle on this engine's (possibly scoped) tracer: the
   serving surface (shell, pmvctl) opens the root here, threads the
   trace through [answer]/the router, and closes it so the stitched
   tree lands in the tracer's retained ring. *)
let trace_start ?at t name =
  if Minirel_telemetry.Telemetry.is_enabled () then Tracer.start ?at t.tracer name
  else None

let trace_finish ?at t trace = Tracer.finish ?at t.tracer trace
let last_trace t = Tracer.last t.tracer
let force_next_trace t = Tracer.force_next t.tracer

let snapshot t = Registry.snapshot t.registry

let reset_telemetry t =
  Registry.reset t.registry;
  Tracer.clear t.tracer

(* Tear the engine down: close the WAL and drain every view's retired
   version chains, so repeated scoped create/destroy cycles (tests,
   torture rebuilds) do not accumulate version history. The engine must
   not answer queries afterwards. *)
let shutdown t =
  detach_wal t;
  List.iter Pmv.View.shutdown (Pmv.Manager.views t.manager)
