(** Hash-partitioned sharding of the PMV pipeline across N scoped
    {!Engine} instances. Base relations are either hash-partitioned by
    one attribute (in the intended layout the join key, so
    co-partitioned relations join shard-locally) or replicated to every
    shard. DML routes to the owning shard; queries fan out and the
    partial/remaining streams merge with the DS exactly-once identity
    intact under summation. Each shard has private fault and telemetry
    scopes. *)

type t

(** [create ~shards ()] builds [shards] scoped engines named
    [shard0..]. [pool_capacity] etc. apply per shard.
    @raise Invalid_argument when [shards <= 0]. *)
val create :
  ?pool_capacity:int ->
  ?default_f_max:int ->
  ?default_policy:Minirel_cache.Policies.kind ->
  shards:int ->
  unit ->
  t

val n_shards : t -> int
val shard : t -> int -> Engine.t
val shards : t -> Engine.t list

(** The attached Domain pool, if any. *)
val parallel : t -> Minirel_parallel.Pool.t option

(** Attach (or detach, with [None]) a Domain pool: {!answer} then
    fans per-shard answers out to the pool's worker domains. The pool
    also threads down to every shard engine ({!Engine.set_parallel}),
    so a shard task forks its O3 morsel batches into its worker's
    deque for idle domains to steal. The pool stays externally owned —
    shut it down where it was created. *)
val set_parallel : t -> Minirel_parallel.Pool.t option -> unit

(** Default read path for {!answer} (initially {!Pmv.Answer.Locked});
    a per-call [probe_path] argument wins. *)
val probe_path : t -> Pmv.Answer.probe_path

(** Switch the default read path. [Epoch] also threads down to every
    shard engine's own probe fast path ({!Engine.set_probe_path}). *)
val set_probe_path : t -> Pmv.Answer.probe_path -> unit

(** Deterministic router-owned fast-path counters, also exported as the
    process-global [router.probe] telemetry source. *)
type probe_stats = {
  mutable fast_hits : int;  (** queries served without fan-out *)
  mutable fallbacks : int;  (** epoch queries that missed and fanned out *)
  mutable probes : int;  (** per-bcp segment probes *)
  mutable probe_hits : int;  (** probes returning a trusted version *)
  probe_ns : Minirel_telemetry.Histogram.t;
      (** probe-phase latency, hit or miss *)
}

val probe_stats : t -> probe_stats

(** Summary (count/p50/p99...) of the probe-phase latency histogram. *)
val probe_summary : t -> Minirel_telemetry.Histogram.summary

val reset_probe_stats : t -> unit

(** Per-segment [(hits, misses, installs)] of the template's router
    probe cache, in shard order; [[||]] when the template has no
    routed view. Also exported as
    [router.probe.<template>.s<i>.{hits,misses,installs}] and, in
    {!prometheus_string}, as [router_probe_cache_*] series with
    [{shard,template}] labels. *)
val probe_cache_counters : t -> template:string -> (int * int * int) array

(** Engine-affinity cache counters [(hits, misses, invalidations)]:
    how often a parallel fan-out checked out a warm per-shard harness
    (SPSC stream, tuple batch buffer, span label) left by a previous
    fan-out, built a cold one, or discarded a slot stranded by a DDL
    epoch bump. Also exported as the [router.affinity] telemetry
    source, both process-global and in {!snapshot_merged}. *)
val affinity_stats : t -> int * int * int

(** Monotonic schema-shape epoch: bumped by {!declare},
    {!create_relation}, {!create_index}, {!create_view} and
    {!load_from}; every affinity slot built under an older epoch is
    invalidated. *)
val ddl_epoch : t -> int

type part = Hash of int  (** partition-key position *) | Replicated

val partitioning : t -> rel:string -> part option

(** Owning shard of a partition-key value (integers hash to
    themselves, keeping co-partitioned integer keys together). *)
val shard_of_value : t -> Minirel_storage.Value.t -> int

(** Record the relation's partitioning without creating it — for
    relations already present in a catalog that {!load_from} will
    partition.
    @raise Invalid_argument when [`Hash attr] names no attribute. *)
val declare :
  t ->
  Minirel_storage.Schema.t ->
  part:[ `Hash of string | `Replicated ] ->
  unit

(** Create the relation on every shard and record its partitioning.
    @raise Invalid_argument when [`Hash attr] names no attribute. *)
val create_relation :
  t ->
  Minirel_storage.Schema.t ->
  part:[ `Hash of string | `Replicated ] ->
  unit

val create_index :
  t ->
  ?kind:Minirel_index.Index.kind ->
  rel:string ->
  name:string ->
  attrs:string list ->
  unit ->
  unit

(** Shards a change must run on: the owner for inserts and for
    deletes/updates whose predicate pins the partition key; every
    shard otherwise (correct — shards hold disjoint rows).
    @raise Invalid_argument when an update would modify a partition
    key. *)
val targets : t -> Minirel_txn.Txn.change -> int list

(** Run a transaction, routing each change per {!targets}. Returns
    [(shard index, deltas)] for the shards that ran anything; each
    shard's locks, WAL and deferred PMV maintenance fire locally. *)
val run :
  t -> Minirel_txn.Txn.change list -> (int * Minirel_txn.Txn.delta list) list

(** Create the template's PMV on every shard ([capacity]/[ub_bytes]
    are per shard — aggregate cache budget scales with the shard
    count). Returns the views in shard order. *)
val create_view :
  ?policy:Minirel_cache.Policies.kind ->
  ?f_max:int ->
  ?capacity:int ->
  ?ub_bytes:int ->
  ?adaptive:bool ->
  t ->
  Minirel_query.Template.compiled ->
  Pmv.View.t array

(** Shards a template's answer consults: all when any base relation is
    hash-partitioned, just shard 0 when everything is replicated. *)
val template_shards : t -> Minirel_query.Template.compiled -> int list

(** Sum per-shard answer stats: counters and times add, first-tuple
    latencies take the min; the DS identity survives summation. *)
val merge_stats : Pmv.Answer.stats -> Pmv.Answer.stats -> Pmv.Answer.stats

(** Tuples carried per SPSC message on the parallel fan-out path: each
    worker hands its stream to the merger in chunks of this size, so
    the queue's mutex/condvar round-trips amortize across a batch. *)
val tuple_batch : int

(** Answer across the template's shards, streaming every shard's O2
    partials and O3 remainder through [on_tuple]; returns the summed
    stats and whether every consulted shard used a view.

    With a pool attached ({!set_parallel}) or passed ([par]) and at
    least two target shards, per-shard answers run concurrently on the
    pool, each streaming through a bounded per-shard queue; the merge
    consumes the queues in shard order, so the delivered stream is
    tuple-for-tuple identical to the sequential one and the DS
    identity still sums exactly. The in-order merge cannot starve
    under the pool's work-stealing dispatch: shard tasks are claimed
    off the injector in submission order, so the earliest undrained
    shard's task is always completed, running, or the next claim (see
    pool.mli). Profiled runs stay sequential. When [on_tuple] raises
    in parallel mode, in-flight shards finish with their output
    discarded before the exception re-raises.

    Under [probe_path = Epoch] (per call, or the {!set_probe_path}
    default) the router first tries the shard-local probe fast path:
    a query whose every bcp holds a trusted complete version in the
    template's router-level probe cache answers straight from the
    owning segments — no fan-out, no merge, no pool dispatch. Misses
    fall back to the full fan-out on the shards' classic locked path
    (the router-level cache subsumes per-shard fast paths) and install
    what the fallback's stale-purge count proves complete.

    [trace] propagates a caller-owned trace context: the router stitches
    one span tree per query — a [router.probe] span under [Epoch], then
    either the cache-hit stream or per-shard [shard<i>] subtrees (built
    task-locally on the pool and grafted back in shard order) each
    annotated with shard/domain/worker and the shard's own probe-path
    spans. *)
val answer :
  ?par:Minirel_parallel.Pool.t ->
  ?profile:Minirel_exec.Exec_stats.t ->
  ?probe_path:Pmv.Answer.probe_path ->
  ?trace:Minirel_telemetry.Span.trace ->
  t ->
  Minirel_query.Instance.t ->
  on_tuple:(Pmv.Answer.phase -> Minirel_storage.Tuple.t -> unit) ->
  Pmv.Answer.stats * bool

(** First [k] result tuples across the shards (hot cached tuples
    first per shard), terminating all execution once [k] are in hand.
    @raise Invalid_argument if [k <= 0]. *)
val answer_first_k :
  t -> Minirel_query.Instance.t -> k:int -> Minirel_storage.Tuple.t list

(** {2 Section 3.6 query shapes across shards} *)

(** Sharded GROUP BY: each target shard folds its own delivered stream
    into shard-local accumulators; only those — one unfinalized
    accumulator array per group — cross the shard boundary, merged per
    group by [Extensions.merge_groups] (no per-shard full recompute;
    AVG merges because it travels as SUM+COUNT). Returns the merged
    exact/partial groups with summed stats, and whether every shard
    answered through a view. With a pool attached or passed the shard
    folds run concurrently. *)
val answer_grouped :
  ?par:Minirel_parallel.Pool.t ->
  ?probe_path:Pmv.Answer.probe_path ->
  t ->
  Minirel_query.Instance.t ->
  key:int array ->
  aggs:Minirel_query.Aggregate.spec array ->
  Pmv.Extensions.grouped_exact * bool

(** Router-cache grouped fast path: folds the grouped answer straight
    out of the template's router-level probe-cache segments when every
    bcp holds a trusted complete version; [None] on any miss. *)
val probe_grouped :
  t ->
  Minirel_query.Instance.t ->
  key:int array ->
  aggs:Minirel_query.Aggregate.spec array ->
  Pmv.Extensions.group_acc option

(** Sharded ORDER BY ... LIMIT k: per-shard bounded top-k (at most [k]
    candidates surrendered per shard), merged and cut to the global
    first [k] under the shared total order — prefix-exact.
    @raise Invalid_argument if [k <= 0]. *)
val answer_ordered_k :
  ?probe_path:Pmv.Answer.probe_path ->
  t ->
  Minirel_query.Instance.t ->
  order:Minirel_query.Ordering.key array ->
  k:int ->
  Minirel_storage.Tuple.t list * Pmv.Answer.stats

(** Sharded EXISTS: any target shard's cached witness settles the
    question as [`From_pmv] with no engine work; otherwise executes
    shard by shard, stopping at the first tuple. *)
val exists_ :
  ?probe_path:Pmv.Answer.probe_path ->
  t ->
  Minirel_query.Instance.t ->
  bool * [ `From_pmv | `Executed ]

(** Apply queued (lock-deferred) deltas on every shard's views. *)
val flush_pending : t -> unit

(** Partition an existing catalog into the shards: relations without a
    recorded partitioning replicate; tuples route by the partition
    rule; secondary indexes are recreated per shard. *)
val load_from : t -> Minirel_index.Catalog.t -> unit

(** Per-shard telemetry snapshots, in shard order. *)
val snapshots :
  t -> (string * (string * Minirel_telemetry.Registry.value) list) list

(** One aggregated snapshot (counters/gauges add, histogram summaries
    merge), including the router-level [router.probe] and
    [router.affinity] sources. *)
val snapshot_merged : t -> (string * Minirel_telemetry.Registry.value) list

(** Prometheus exposition of every shard with a [shard="i"] label on
    each series, followed by the router probe-cache counter families
    ([router_probe_cache_{hits,misses,installs}]) labelled with both
    [shard] and [template]. *)
val prometheus_string : t -> string

val reset_telemetry : t -> unit

(** Shut every shard engine down ({!Engine.shutdown}) and drain the
    router probe caches' retired version chains. The router must not
    answer queries afterwards. *)
val shutdown : t -> unit
