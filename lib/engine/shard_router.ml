(* Hash-partitioned sharding of the PMV pipeline across N engine
   instances (the scale-out the paper's sizing discussion anticipates:
   each shard budgets its own PMV memory, so aggregate cache capacity
   grows with the shard count).

   Partitioning model:
   - a {e hash-partitioned} relation is split by one partition-key
     attribute — in the intended layout the join key, so co-partitioned
     relations join entirely shard-locally;
   - a {e replicated} relation is copied to every shard (the usual
     treatment for small dimension tables).

   Routing:
   - inserts go to the owning shard (hash of the key), replicated
     inserts to every shard;
   - deletes/updates whose predicate pins the partition key (an [=] or
     singleton [IN] in the top-level conjunction) go to the owner;
     otherwise they are broadcast — correct because the shards hold
     disjoint row sets, so each shard only touches its own rows. An
     update may not modify the partition key (it would have to migrate
     the row across shards); this raises [Invalid_argument].
   - deferred maintenance needs no extra routing: a delta is only ever
     produced on the shard that owns the changed rows, and that shard's
     transaction manager drives its own views' maintenance.

   Answering: a query fans out to every shard holding a partitioned
   base relation of its template (shard 0 alone when the template
   touches only replicated relations — every shard would return the
   identical answer). The partial (O2) and remaining (O3) streams
   concatenate; because the shards partition the data, the per-shard
   result multisets are disjoint pieces of the global answer, and the
   DS exactly-once identity survives summation:
     Σ delivered_i = Σ (total_i + stale_purged_i). *)

module Catalog = Minirel_index.Catalog
module Schema = Minirel_storage.Schema
module Value = Minirel_storage.Value
module Template = Minirel_query.Template
module Predicate = Minirel_query.Predicate
module Condition_part = Minirel_query.Condition_part
module Bcp = Minirel_query.Bcp
module Txn = Minirel_txn.Txn
module Export = Minirel_telemetry.Export
module Histogram = Minirel_telemetry.Histogram
module Span = Minirel_telemetry.Span
module Flight = Minirel_telemetry.Flight

module Pool = Minirel_parallel.Pool
module Spsc = Minirel_parallel.Spsc

type part = Hash of int (* partition-key position *) | Replicated

(* Router-level probe cache for one template: complete per-bcp answers
   to the *merged* (cross-shard) query, segmented by bcp hash so the
   aggregate fast-path capacity scales with the shard count — the
   shard-local probe fast path. A hit answers straight out of the
   owning segment: no fan-out, no merge, no pool dispatch. *)
type probe_cache = {
  pc_compiled : Template.compiled;
  pc_segments : Pmv.Entry_store.t array;  (* one per shard, disjoint bcp sets *)
  (* Per-segment fast-path counters, atomic because pool-driven callers
     may race a concurrent reader; indexed like [pc_segments]. Exported
     per (template, shard) through the [router.probe] source and with
     {shard,template} labels in {!prometheus_string}. *)
  pc_hits : int Atomic.t array;  (* probes returning a trusted version *)
  pc_misses : int Atomic.t array;  (* probes finding nothing trusted *)
  pc_installs : int Atomic.t array;  (* complete answers installed *)
}

(* Deterministic, router-owned fast-path counters (the per-run numbers
   the bench embeds); also exported as the [router.probe] source. *)
type probe_stats = {
  mutable fast_hits : int;  (* queries served without fan-out *)
  mutable fallbacks : int;  (* queries that missed and fanned out *)
  mutable probes : int;  (* per-bcp segment probes *)
  mutable probe_hits : int;  (* probes returning a trusted complete version *)
  probe_ns : Histogram.t;  (* latency of the probe phase, hit or miss *)
}

(* One recycled fan-out harness for a shard: the SPSC stream, the
   tuple batch buffer and the interned span label a shard task needs.
   Building these per query was measurable allocation on the fan-out
   path; a slot keyed by shard id hands a stolen shard task the warm
   state the previous fan-out already built. Slots are validated
   against the router's [ddl_epoch] — any DDL (declare/create/index/
   view/load) bumps it and strands every older slot, so a recycled
   queue can never straddle a schema change. *)
type aff_slot = {
  aff_queue : msg Spsc.t;
  aff_buf : (Pmv.Answer.phase * Minirel_storage.Tuple.t) array;
  aff_label : string;  (* "shard%d", precomputed *)
  aff_epoch : int;  (* ddl_epoch the slot was built under *)
}

and msg =
  | Batch of (Pmv.Answer.phase * Minirel_storage.Tuple.t) array
  | Done of Pmv.Answer.stats * bool * Span.t option
  | Fail of exn

(* Engine-affinity counters: how often a fan-out found a warm slot. *)
type aff_stats = {
  aff_hits : int Atomic.t;
  aff_misses : int Atomic.t;  (* slot empty or taken by a racing query *)
  aff_invalidations : int Atomic.t;  (* slot discarded: stale ddl_epoch *)
}

type t = {
  shards : Engine.t array;
  parts : (string, part) Hashtbl.t;  (* relation -> partitioning *)
  probe_caches : (string, probe_cache) Hashtbl.t;  (* template name -> cache *)
  pstats : probe_stats;
  mutable probe_path : Pmv.Answer.probe_path;  (* default for [answer] *)
  (* Domain pool for parallel shard fan-out; externally owned, see
     [set_parallel]. *)
  mutable par : Pool.t option;
  (* Engine-affinity cache: one recyclable fan-out harness per shard,
     taken with an atomic exchange (concurrent queries miss rather
     than share), invalidated by [ddl_epoch]. *)
  aff_slots : aff_slot option Atomic.t array;
  ddl_epoch : int Atomic.t;
  astats : aff_stats;
  (* Router-owned scoped registry holding the router-level sources
     (probe fast path, engine affinity) so [snapshot_merged] carries
     them next to the summed per-shard series. *)
  registry : Minirel_telemetry.Registry.t;
}

let empty_probe_stats () =
  { fast_hits = 0; fallbacks = 0; probes = 0; probe_hits = 0; probe_ns = Histogram.create () }

(* The router-level sources register twice: in the process-global
   registry (visible to [pmvctl metrics] next to engine-level series; a
   newer router takes the name over, following the live instance) and
   in the router's own scoped [registry], which [snapshot_merged] folds
   in so sharded snapshots carry them too. *)
let probe_cache_templates t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.probe_caches [])

(* Per-(template, shard) cache counter rows, template-sorted so
   snapshots and exports stay deterministic. *)
let probe_cache_rows t =
  List.concat_map
    (fun template ->
      let pc = Hashtbl.find t.probe_caches template in
      List.concat
        (List.init (Array.length pc.pc_segments) (fun i ->
             [
               (template, i, "hits", Atomic.get pc.pc_hits.(i));
               (template, i, "misses", Atomic.get pc.pc_misses.(i));
               (template, i, "installs", Atomic.get pc.pc_installs.(i));
             ])))
    (probe_cache_templates t)

let probe_cache_counters t ~template =
  match Hashtbl.find_opt t.probe_caches template with
  | None -> [||]
  | Some pc ->
      Array.init (Array.length pc.pc_segments) (fun i ->
          (Atomic.get pc.pc_hits.(i), Atomic.get pc.pc_misses.(i),
           Atomic.get pc.pc_installs.(i)))

let reset_probe_cache_counters t =
  Hashtbl.iter
    (fun _ pc ->
      let zero = Array.iter (fun c -> Atomic.set c 0) in
      zero pc.pc_hits;
      zero pc.pc_misses;
      zero pc.pc_installs)
    t.probe_caches

let register_probe_telemetry ?(registry = Minirel_telemetry.Registry.default) t =
  let module R = Minirel_telemetry.Registry in
  let ps = t.pstats in
  R.register_source registry ~name:"router.probe"
    ~reset:(fun () ->
      ps.fast_hits <- 0;
      ps.fallbacks <- 0;
      ps.probes <- 0;
      ps.probe_hits <- 0;
      Histogram.reset ps.probe_ns;
      reset_probe_cache_counters t)
    (fun () ->
      [
        ("fast_hits", R.Counter ps.fast_hits);
        ("fallbacks", R.Counter ps.fallbacks);
        ("probes", R.Counter ps.probes);
        ("probe_hits", R.Counter ps.probe_hits);
        ("probe_ns", R.Histogram (Histogram.summary ps.probe_ns));
      ]
      @ List.map
          (fun (template, i, kind, n) ->
            (Printf.sprintf "%s.s%d.%s" template i kind, R.Counter n))
          (probe_cache_rows t))

let register_affinity_telemetry ?(registry = Minirel_telemetry.Registry.default) t =
  let module R = Minirel_telemetry.Registry in
  let a = t.astats in
  R.register_source registry ~name:"router.affinity"
    ~reset:(fun () ->
      Atomic.set a.aff_hits 0;
      Atomic.set a.aff_misses 0;
      Atomic.set a.aff_invalidations 0)
    (fun () ->
      [
        ("aff_hits", R.Counter (Atomic.get a.aff_hits));
        ("aff_misses", R.Counter (Atomic.get a.aff_misses));
        ("aff_invalidations", R.Counter (Atomic.get a.aff_invalidations));
        ("ddl_epoch", R.Counter (Atomic.get t.ddl_epoch));
      ])

let affinity_stats t =
  ( Atomic.get t.astats.aff_hits,
    Atomic.get t.astats.aff_misses,
    Atomic.get t.astats.aff_invalidations )

let ddl_epoch t = Atomic.get t.ddl_epoch

(* Any schema-shape change strands every outstanding affinity slot:
   bump the epoch and drop what is parked right now (slots checked out
   by in-flight queries age out on their put-back epoch check). *)
let bump_ddl_epoch t =
  Atomic.incr t.ddl_epoch;
  Array.iter (fun slot -> Atomic.set slot None) t.aff_slots

let create ?pool_capacity ?default_f_max ?default_policy ~shards () =
  if shards <= 0 then invalid_arg "Shard_router.create: shards must be positive";
  let t =
    {
      shards =
        Array.init shards (fun i ->
            Engine.scoped
              ~name:(Printf.sprintf "shard%d" i)
              ?pool_capacity ?default_f_max ?default_policy ());
      parts = Hashtbl.create 8;
      probe_caches = Hashtbl.create 8;
      pstats = empty_probe_stats ();
      probe_path = Pmv.Answer.Locked;
      par = None;
      aff_slots = Array.init shards (fun _ -> Atomic.make None);
      ddl_epoch = Atomic.make 0;
      astats =
        {
          aff_hits = Atomic.make 0;
          aff_misses = Atomic.make 0;
          aff_invalidations = Atomic.make 0;
        };
      registry = Minirel_telemetry.Registry.create ();
    }
  in
  register_probe_telemetry t;
  register_affinity_telemetry t;
  register_probe_telemetry ~registry:t.registry t;
  register_affinity_telemetry ~registry:t.registry t;
  t

let parallel t = t.par
(* The pool threads down to every shard engine: a shard task running
   on a pool worker then forks its O3 morsel batches into that
   worker's deque (Pool.map fork-join), where idle domains steal them
   — the morsel path is stealable end to end instead of running
   inline inside one shard task. *)
let set_parallel t pool =
  t.par <- pool;
  Array.iter (fun e -> Engine.set_parallel e pool) t.shards
let probe_path t = t.probe_path

(* Switch the default read path for [answer]; [Epoch] also threads down
   to each consulted shard's own probe fast path. *)
let set_probe_path t path =
  t.probe_path <- path;
  Array.iter (fun e -> Engine.set_probe_path e path) t.shards

let probe_stats t = t.pstats
let probe_summary t = Histogram.summary t.pstats.probe_ns

let reset_probe_stats t =
  let ps = t.pstats in
  ps.fast_hits <- 0;
  ps.fallbacks <- 0;
  ps.probes <- 0;
  ps.probe_hits <- 0;
  Histogram.reset ps.probe_ns;
  reset_probe_cache_counters t

let n_shards t = Array.length t.shards
let shard t i = t.shards.(i)
let shards t = Array.to_list t.shards

let partitioning t ~rel = Hashtbl.find_opt t.parts rel

(* Owning shard of one partition-key value. Ints hash to themselves so
   co-partitioned relations sharing integer keys land together. *)
let shard_of_value t v =
  let h =
    match (v : Value.t) with Value.Int i -> i land max_int | v -> Hashtbl.hash v
  in
  h mod Array.length t.shards

(* --- DDL --------------------------------------------------------------- *)

(* Record how [schema]'s relation partitions without creating it — for
   relations that already live in a catalog about to be [load_from]'d.
   [part] is [`Hash attr] (partition by that attribute) or
   [`Replicated]. *)
let declare t schema ~part =
  let rel = Schema.name schema in
  let part =
    match part with
    | `Replicated -> Replicated
    | `Hash attr -> (
        match Schema.pos_opt schema attr with
        | Some pos -> Hash pos
        | None ->
            invalid_arg
              (Printf.sprintf "Shard_router: %s has no attribute %s" rel attr))
  in
  Hashtbl.replace t.parts rel part;
  bump_ddl_epoch t

(* Create [schema]'s relation on every shard under [part]. *)
let create_relation t schema ~part =
  declare t schema ~part;
  Array.iter (fun e -> ignore (Catalog.create_relation (Engine.catalog e) schema)) t.shards

let create_index t ?kind ~rel ~name ~attrs () =
  Array.iter
    (fun e -> ignore (Catalog.create_index (Engine.catalog e) ?kind ~rel ~name ~attrs ()))
    t.shards;
  bump_ddl_epoch t

(* --- DML routing ------------------------------------------------------- *)

let all_shards t = List.init (Array.length t.shards) Fun.id

(* The partition-key value a predicate pins, if its top-level
   conjunction fixes it with [=] or a singleton [IN]. *)
let rec pinned_value key_pos = function
  | Predicate.Cmp (Predicate.Eq, pos, v) when pos = key_pos -> Some v
  | Predicate.In_set (pos, [ v ]) when pos = key_pos -> Some v
  | Predicate.And ps -> List.find_map (pinned_value key_pos) ps
  | _ -> None

(* Shards a change must run on. *)
let targets t (change : Txn.change) =
  match change with
  | Txn.Insert { rel; tuple } -> (
      match Hashtbl.find_opt t.parts rel with
      | Some (Hash pos) -> [ shard_of_value t tuple.(pos) ]
      | Some Replicated | None -> all_shards t)
  | Txn.Delete { rel; pred } -> (
      match Hashtbl.find_opt t.parts rel with
      | Some (Hash pos) -> (
          match pinned_value pos pred with
          | Some v -> [ shard_of_value t v ]
          | None -> all_shards t)
      | Some Replicated | None -> all_shards t)
  | Txn.Update { rel; pred; set } -> (
      match Hashtbl.find_opt t.parts rel with
      | Some (Hash pos) ->
          if List.mem_assoc pos set then
            invalid_arg
              (Printf.sprintf
                 "Shard_router: update may not modify the partition key of %s" rel);
          (match pinned_value pos pred with
          | Some v -> [ shard_of_value t v ]
          | None -> all_shards t)
      | Some Replicated | None -> all_shards t)

(* Untrust router-level complete answers for every template ranging
   over a changed relation; one atomic bump per affected segment. *)
let invalidate_probe_caches t changes =
  let rels =
    List.sort_uniq String.compare
      (List.map
         (function
           | Txn.Insert { rel; _ } | Txn.Delete { rel; _ } | Txn.Update { rel; _ } -> rel)
         changes)
  in
  Hashtbl.iter
    (fun _ pc ->
      let trels = pc.pc_compiled.Template.spec.Template.relations in
      if List.exists (fun r -> Array.exists (String.equal r) trels) rels then
        Array.iter Pmv.Entry_store.invalidate_complete pc.pc_segments)
    t.probe_caches

(* Run a transaction, routing each change to its owning shard(s).
   Returns the per-shard deltas as [(shard index, deltas)] for the
   shards that ran anything. Router probe caches are invalidated even
   when a shard fails mid-transaction (shard-local faults may have
   committed sibling shards' changes already). *)
let run t changes =
  Fun.protect ~finally:(fun () -> invalidate_probe_caches t changes) @@ fun () ->
  let n = Array.length t.shards in
  let per = Array.make n [] in
  List.iter
    (fun change -> List.iter (fun s -> per.(s) <- change :: per.(s)) (targets t change))
    changes;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if per.(i) <> [] then out := (i, Engine.run t.shards.(i) (List.rev per.(i))) :: !out
  done;
  !out

(* --- views ------------------------------------------------------------- *)

(* Create the template's PMV on every shard. [capacity]/[ub_bytes] are
   per shard: the aggregate cache budget scales with the shard count,
   which is precisely the scale-out lever. *)
let create_view ?policy ?f_max ?capacity ?ub_bytes ?adaptive t compiled =
  let views =
    Array.map
      (fun e ->
        Pmv.Manager.create_view ?policy ?f_max ?capacity ?ub_bytes ?adaptive
          (Engine.manager e) compiled)
      t.shards
  in
  (* Router-level probe cache: one segment per shard, each sized like a
     shard view's probe store (4x its paper store — see View.create),
     holding complete merged answers bounded at 64 tuples per bcp.
     Aggregate fast-path capacity therefore scales with the shard
     count, while the 1-shard router matches the engine's own probe
     store entry for entry. *)
  let seg_capacity = Pmv.Entry_store.capacity (Pmv.View.probe_store views.(0)) in
  let n = Array.length t.shards in
  let counters () = Array.init n (fun _ -> Atomic.make 0) in
  Hashtbl.replace t.probe_caches compiled.Template.spec.Template.name
    {
      pc_compiled = compiled;
      pc_segments =
        Array.init n (fun _ -> Pmv.Entry_store.create ~capacity:seg_capacity ~f_max:64 ());
      pc_hits = counters ();
      pc_misses = counters ();
      pc_installs = counters ();
    };
  bump_ddl_epoch t;
  views

(* Shards a template's answer must consult: all of them as soon as any
   base relation is hash-partitioned, only shard 0 when every relation
   is replicated (each shard holds the identical copy). *)
let template_shards t compiled =
  let rels = compiled.Template.spec.Template.relations in
  let partitioned =
    Array.exists
      (fun rel ->
        match Hashtbl.find_opt t.parts rel with Some (Hash _) -> true | _ -> false)
      rels
  in
  if partitioned then all_shards t else [ 0 ]

(* --- answering --------------------------------------------------------- *)

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (if Int64.compare x y <= 0 then x else y)

(* Sum per-shard answer stats. Counters and times add (the single-core
   interpretation: total work); first-tuple latencies take the min —
   the user saw the first tuple when the first shard produced one. The
   DS identity is preserved: summing delivered = total + purged over
   shards keeps the equation exact. *)
let merge_stats (a : Pmv.Answer.stats) (b : Pmv.Answer.stats) =
  {
    Pmv.Answer.h = max a.Pmv.Answer.h b.Pmv.Answer.h;
    probes = a.Pmv.Answer.probes + b.Pmv.Answer.probes;
    probe_hits = a.Pmv.Answer.probe_hits + b.Pmv.Answer.probe_hits;
    partial_count = a.Pmv.Answer.partial_count + b.Pmv.Answer.partial_count;
    total_count = a.Pmv.Answer.total_count + b.Pmv.Answer.total_count;
    filled = a.Pmv.Answer.filled + b.Pmv.Answer.filled;
    overhead_ns = Int64.add a.Pmv.Answer.overhead_ns b.Pmv.Answer.overhead_ns;
    exec_ns = Int64.add a.Pmv.Answer.exec_ns b.Pmv.Answer.exec_ns;
    first_partial_ns = min_opt a.Pmv.Answer.first_partial_ns b.Pmv.Answer.first_partial_ns;
    first_exec_ns = min_opt a.Pmv.Answer.first_exec_ns b.Pmv.Answer.first_exec_ns;
    io_reads = a.Pmv.Answer.io_reads + b.Pmv.Answer.io_reads;
    io_writes = a.Pmv.Answer.io_writes + b.Pmv.Answer.io_writes;
    stale_purged = a.Pmv.Answer.stale_purged + b.Pmv.Answer.stale_purged;
  }

(* Per-shard stream messages ([msg], declared with the affinity slot
   type above) flow producer (shard task) to consumer (the merging
   caller) over a bounded SPSC queue. Tuples travel in morsel batches,
   not singly: the producer coalesces up to [tuple_batch] of them per
   message, so the queue's mutex/condvar handshake is paid once per
   chunk instead of once per tuple. [Done] carries the shard task's
   finished span subtree when the query is traced: spans are built
   shard-locally (each task owns its private trace, so no cross-domain
   mutation) and grafted onto the caller's trace in shard order by the
   consumer — one stitched tree per query. *)

(* Tuples per [Batch] message. *)
let tuple_batch = 64

(* Bounds how far any shard can run ahead of the merge (backpressure),
   in messages — up to [shard_stream_capacity * tuple_batch] buffered
   tuples per shard; roomy enough that shards rarely stall on the
   consumer. *)
let shard_stream_capacity = 64

(* Check out shard [i]'s fan-out harness, or build a cold one. The
   atomic exchange means two concurrent queries over the same shard
   never share a slot — the loser takes a fresh harness and counts a
   miss. A hit hands the (possibly stolen) shard task the queue,
   batch buffer and span label the previous fan-out warmed up. *)
let aff_take t i =
  let epoch = Atomic.get t.ddl_epoch in
  match Atomic.exchange t.aff_slots.(i) None with
  | Some slot when slot.aff_epoch = epoch ->
      Atomic.incr t.astats.aff_hits;
      slot
  | prior ->
      if Option.is_some prior then Atomic.incr t.astats.aff_invalidations
      else Atomic.incr t.astats.aff_misses;
      {
        aff_queue = Spsc.create ~capacity:shard_stream_capacity;
        aff_buf = Array.make tuple_batch (Pmv.Answer.Partial, [||]);
        aff_label = Printf.sprintf "shard%d" i;
        aff_epoch = epoch;
      }

(* Park the harness for the next fan-out — only once its queue is
   fully drained (the consumer always pops through [Done]/[Fail], so
   recycling never observes a non-empty queue). A slot that aged past
   a DDL bump is dropped; a slot already re-parked by a racing query
   is simply discarded. *)
let aff_put t i slot =
  if slot.aff_epoch = Atomic.get t.ddl_epoch then
    ignore (Atomic.compare_and_set t.aff_slots.(i) None (Some slot))

(* Parallel fan-out: one pool task per target shard, each answering on
   its own single-owner engine and streaming through its own SPSC
   queue. The consumer drains the queues in shard order, so the merged
   stream is tuple-for-tuple the sequential one.

   The merge cannot starve under work stealing — the argument that
   replaced the old "pool dispatch is FIFO" invariant: shard tasks
   enter the pool's injector in shard order and are *claimed* in that
   order (a worker only takes injector work when its own deque is
   empty, and deques hold only finite descendants of already-running
   tasks), so when the consumer blocks on shard i every earlier
   shard's task has already completed and shard i's task is running
   or is the next external claim; thieves steal the oldest fork
   first, so stolen morsel work inside a shard task finishes in fork
   order too. Property-tested in test_parallel.ml (steal storms never
   change the merged stream).

   Early termination changes shape here: when [on_tuple] raises, shard
   tasks cannot be cancelled, so remaining queues are drained and
   discarded until every producer settles (a blocked producer would
   otherwise poison the pool), then the first exception re-raises. *)
let answer_parallel ?trace pool ~probe_path t targets instance ~on_tuple =
  let traced = Option.is_some trace in
  let queues = List.map (fun i -> (i, aff_take t i)) targets in
  List.iter
    (fun (i, slot) ->
      let q = slot.aff_queue in
      Pool.submit pool (fun () ->
          (* Task-private span subtree: started on the worker domain,
             finished before shipment, attached by the consumer. *)
          let sub =
            if not traced then None
            else begin
              let s = Span.start slot.aff_label in
              Span.kv s "shard" (string_of_int i);
              Span.kv s "domain" (string_of_int (Domain.self () :> int));
              (match Pool.worker_index () with
              | Some w -> Span.kv s "worker" (string_of_int w)
              | None -> ());
              Some s
            end
          in
          let buf = slot.aff_buf in
          let bn = ref 0 in
          let flush () =
            if !bn > 0 then begin
              Spsc.push q (Batch (Array.sub buf 0 !bn));
              bn := 0
            end
          in
          let finished () =
            Option.map
              (fun s ->
                Span.finish s;
                Span.root s)
              sub
          in
          match
            Engine.answer ~probe_path ?trace:sub t.shards.(i) instance
              ~on_tuple:(fun phase tuple ->
                buf.(!bn) <- (phase, tuple);
                incr bn;
                if !bn = tuple_batch then flush ())
          with
          | stats, used ->
              flush ();
              Spsc.push q (Done (stats, used, finished ()))
          | exception exn ->
              (* tuples already delivered before the failure still
                 reach the consumer, exactly as unbatched pushes did *)
              ignore (finished ());
              flush ();
              Spsc.push q (Fail exn)))
    queues;
  let failure = ref None in
  let note exn = if Option.is_none !failure then failure := Some exn in
  let results =
    List.map
      (fun (i, slot) ->
        let q = slot.aff_queue in
        let rec drain () =
          match Spsc.pop q with
          | Batch items ->
              Array.iter
                (fun (phase, tuple) ->
                  if Option.is_none !failure then
                    try on_tuple phase tuple with exn -> note exn)
                items;
              drain ()
          | Done (stats, used, sub) ->
              (match (trace, sub) with
              | Some tr, Some s -> Span.attach tr s
              | _ -> ());
              Some (stats, used)
          | Fail exn ->
              note exn;
              None
        in
        let r = drain () in
        (* producer settled (it pushed Done/Fail last) and the queue is
           drained: safe to park the harness for the next fan-out *)
        aff_put t i slot;
        r)
      queues
  in
  match !failure with
  | Some exn -> raise exn
  | None ->
      List.fold_left
        (fun acc r ->
          match (acc, r) with
          | None, r -> r
          | acc, None -> acc
          | Some (s, u), Some (s', u') -> Some (merge_stats s s', u && u'))
        None results
      |> Option.get

(* Fan out to the target shards: parallel when a pool with >= 2 workers
   is attached (or passed), >= 2 targets, no profile (Exec_stats trees
   are single-owner) and the caller is not itself a pool worker (a
   worker-side [submit] runs inline, so a worker-driven fan-out would
   produce into its own un-drained SPSC queues); sequential otherwise.
   Either way the merged stream is identical to the sequential one. *)
let answer_fanout ?par ?profile ?trace ~probe_path t targets instance ~on_tuple =
  let pool = match par with Some _ -> par | None -> t.par in
  match pool with
  | Some pool
    when Pool.size pool >= 2 && List.length targets >= 2 && Option.is_none profile
         && Pool.worker_index () = None ->
      answer_parallel ?trace pool ~probe_path t targets instance ~on_tuple
  | _ -> (
      List.fold_left
        (fun acc i ->
          (* sequential fan-out: the shard span opens inline on the
             caller's trace, same shape as the grafted parallel one *)
          (match trace with
          | Some tr ->
              Span.enter tr (Printf.sprintf "shard%d" i);
              Span.kv tr "shard" (string_of_int i);
              Span.kv tr "domain" (string_of_int (Domain.self () :> int))
          | None -> ());
          let stats, used =
            match Engine.answer ?profile ?trace ~probe_path t.shards.(i) instance ~on_tuple with
            | r ->
                Option.iter Span.leave trace;
                r
            | exception exn ->
                Option.iter Span.leave trace;
                raise exn
          in
          match acc with
          | None -> Some (stats, used)
          | Some (acc_stats, acc_used) ->
              Some (merge_stats acc_stats stats, acc_used && used))
        None targets
      |> function
      | Some r -> r
      | None -> assert false (* targets is never empty *))

(* The shard-local probe fast path: serve the whole query from the
   template's router-level probe cache when every bcp holds a trusted
   (complete, stamp-current) version in its owning segment. A hit
   streams straight out of the segments — no fan-out, no merge, no pool
   dispatch. A miss falls back to the full fan-out while capturing each
   exact bcp's merged delivered stream; when the summed stats prove the
   stream exact ([stale_purged = 0]), the captures install as complete
   answers stamped with the segments' pre-query stamps — a delta racing
   the query bumps a stamp first, so a losing install publishes
   already-untrusted. *)
let answer_epoch ?par ?profile ?trace t pc instance ~on_tuple =
  let compiled = pc.pc_compiled in
  let ps = t.pstats in
  let nseg = Array.length pc.pc_segments in
  let seg_idx bcp = (Bcp.hash bcp land max_int) mod nseg in
  let t0 = Pmv.Answer.now () in
  let stamps = Array.map Pmv.Entry_store.current_stamp pc.pc_segments in
  let cps = Condition_part.decompose instance in
  let h = List.length cps in
  (* probe each distinct bcp once, memoising the trusted version *)
  let memo = Bcp.Table.create (2 * h) in
  let n_probed = ref 0 and n_hits = ref 0 in
  Option.iter (fun tr -> Span.enter tr "router.probe") trace;
  let all_hit =
    List.for_all
      (fun cp ->
        let bcp = Condition_part.bcp cp in
        Bcp.Table.mem memo bcp
        ||
        begin
          incr n_probed;
          let si = seg_idx bcp in
          let seg = pc.pc_segments.(si) in
          match Pmv.Entry_store.probe seg bcp with
          | Some v when Pmv.Entry_store.version_trusted seg v ->
              incr n_hits;
              Atomic.incr pc.pc_hits.(si);
              Flight.record Flight.Probe_hit ~a:si ~b:(Bcp.hash bcp land 0xffff);
              Bcp.Table.replace memo bcp v;
              true
          | Some _ | None ->
              Atomic.incr pc.pc_misses.(si);
              Flight.record Flight.Probe_miss ~a:si ~b:(Bcp.hash bcp land 0xffff);
              false
        end)
      cps
  in
  Histogram.record ps.probe_ns (Int64.sub (Pmv.Answer.now ()) t0);
  ps.probes <- ps.probes + !n_probed;
  ps.probe_hits <- ps.probe_hits + !n_hits;
  Option.iter
    (fun tr ->
      Span.kv tr "probes" (string_of_int !n_probed);
      Span.kv tr "probe_hits" (string_of_int !n_hits);
      Span.kv tr "path" (if all_hit then "router_cache" else "router_fallback");
      Span.leave tr)
    trace;
  if all_hit then begin
    ps.fast_hits <- ps.fast_hits + 1;
    let delivered = ref 0 in
    let first = ref None in
    (* stream per condition part, mirroring O2's delivery multiset *)
    List.iter
      (fun cp ->
        let v = Bcp.Table.find memo (Condition_part.bcp cp) in
        List.iter
          (fun tuple ->
            if Condition_part.is_exact cp || Condition_part.check compiled cp tuple
            then begin
              on_tuple Pmv.Answer.Partial tuple;
              incr delivered;
              if !first = None then first := Some (Int64.sub (Pmv.Answer.now ()) t0)
            end)
          v.Pmv.Entry_store.v_tuples)
      cps;
    ( {
        Pmv.Answer.h;
        probes = !n_probed;
        probe_hits = !n_hits;
        partial_count = !delivered;
        total_count = !delivered;
        filled = 0;
        overhead_ns = Int64.sub (Pmv.Answer.now ()) t0;
        exec_ns = 0L;
        first_partial_ns = !first;
        first_exec_ns = None;
        io_reads = 0;
        io_writes = 0;
        stale_purged = 0;
      },
      true )
  end
  else begin
    ps.fallbacks <- ps.fallbacks + 1;
    (* Capture the merged delivered stream per exact bcp (an exact cp is
       its bcp's only cp, the cps being non-overlapping, so the capture
       is the bcp's whole merged answer). Cells are pre-created so empty
       answers install too; one-over the segment bound marks overflow. *)
    let seg_fmax = Pmv.Entry_store.f_max pc.pc_segments.(0) in
    let captures = Bcp.Table.create (2 * h) in
    List.iter
      (fun cp ->
        if Condition_part.is_exact cp then begin
          let bcp = Condition_part.bcp cp in
          if not (Bcp.Table.mem captures bcp) then
            Bcp.Table.replace captures bcp (ref [], ref 0)
        end)
      cps;
    let capturing phase tuple =
      on_tuple phase tuple;
      match
        Bcp.Table.find_opt captures (Condition_part.bcp_of_result compiled tuple)
      with
      | Some (lst, n) ->
          if !n <= seg_fmax then begin
            lst := tuple :: !lst;
            incr n
          end
      | None -> ()
    in
    let targets = template_shards t compiled in
    (* the shards answer on the classic locked path: the router-level
       cache subsumes their per-view probe stores for routed templates,
       and stacking both epoch layers would pay O1 and the capture
       bookkeeping twice per miss *)
    Option.iter (fun tr -> Span.enter tr "router.fallback") trace;
    let ((stats, _) as result) =
      match
        answer_fanout ?par ?profile ?trace ~probe_path:Pmv.Answer.Locked t targets
          instance ~on_tuple:capturing
      with
      | r ->
          Option.iter Span.leave trace;
          r
      | exception exn ->
          Option.iter Span.leave trace;
          raise exn
    in
    if stats.Pmv.Answer.stale_purged = 0 then
      Bcp.Table.iter
        (fun bcp (lst, n) ->
          if !n <= seg_fmax then begin
            let si = seg_idx bcp in
            if Pmv.Entry_store.install_complete pc.pc_segments.(si) bcp !lst
                 ~stamp:stamps.(si)
            then Atomic.incr pc.pc_installs.(si)
          end)
        captures;
    result
  end

(* Answer [instance] across the template's shards, streaming each
   shard's O2 partials and O3 remainder through [on_tuple]. Returns the
   summed stats and whether every consulted shard answered through a
   view. With a pool attached ([set_parallel]) or passed ([par]) and at
   least two target shards, the per-shard answers run concurrently;
   profiled runs stay sequential (Exec_stats trees are single-owner).
   Either way the merged stream is identical to the sequential one.
   Under [probe_path = Epoch] (per call, or the [set_probe_path]
   default) the router first tries the shard-local probe fast path. *)
let answer ?par ?profile ?probe_path ?trace t instance ~on_tuple =
  let compiled = Minirel_query.Instance.compiled instance in
  let path = match probe_path with Some p -> p | None -> t.probe_path in
  Option.iter
    (fun tr -> Span.kv tr "probe_path" (Pmv.Answer.probe_path_to_string path))
    trace;
  match
    (path, Hashtbl.find_opt t.probe_caches compiled.Template.spec.Template.name)
  with
  | Pmv.Answer.Epoch, Some pc -> answer_epoch ?par ?profile ?trace t pc instance ~on_tuple
  | _ ->
      answer_fanout ?par ?profile ?trace ~probe_path:path t (template_shards t compiled)
        instance ~on_tuple

exception Enough

(* First [k] result tuples across the shards (each shard's hot cached
   tuples first), stopping all execution as soon as k are in hand. *)
let answer_first_k t instance ~k =
  if k <= 0 then invalid_arg "Shard_router.answer_first_k: k must be positive";
  let targets = template_shards t (Minirel_query.Instance.compiled instance) in
  let acc = ref [] and got = ref 0 in
  (try
     List.iter
       (fun i ->
         let e = t.shards.(i) in
         let template =
           (Minirel_query.Instance.compiled instance).Template.spec.Template.name
         in
         let want = k - !got in
         let rows =
           match Engine.find_view e ~template with
           | Some view ->
               Pmv.Extensions.answer_first_k ~locks:(Engine.locks e) ~view
                 (Engine.catalog e) instance ~k:want
           | None ->
               (* no view on this shard: plain answer, stopped early *)
               let rows = ref [] and n = ref 0 in
               (try
                  ignore
                    (Engine.answer e instance ~on_tuple:(fun _ tuple ->
                         rows := tuple :: !rows;
                         incr n;
                         if !n >= want then raise Pmv.Extensions.Stop))
                with Pmv.Extensions.Stop -> ());
               List.rev !rows
         in
         acc := !acc @ rows;
         got := !got + List.length rows;
         if !got >= k then raise Enough)
       targets
   with Enough -> ());
  !acc

(* --- §3.6 query shapes across shards ----------------------------------- *)

module Tuple = Minirel_storage.Tuple
module Aggregate = Minirel_query.Aggregate
module Ordering = Minirel_query.Ordering

(* Sharded GROUP BY: each target shard folds its own delivered stream
   into shard-local accumulators, and only those — one unfinalized
   accumulator array per group, not tuples — cross the shard boundary;
   the router merges them per group with [Extensions.merge_groups].
   Nothing is recomputed over the union: the per-shard streams are
   disjoint pieces of the global answer, the accumulators are
   associative, and AVG stays mergeable because it travels as
   SUM+COUNT. With a pool attached the shard folds run concurrently
   (group merging is order-insensitive, unlike the streamed tuple
   order, so no in-order queue discipline is needed). *)
let answer_grouped ?par ?probe_path t instance ~key ~aggs =
  Pmv.Extensions.note_shape `Grouped;
  let compiled = Minirel_query.Instance.compiled instance in
  let path = match probe_path with Some p -> p | None -> t.probe_path in
  let targets = Array.of_list (template_shards t compiled) in
  (* Under the epoch path a grouped miss warms the router cache exactly
     like a plain epoch miss: each shard captures its own delivered
     stream per exact bcp, bounded at the segment f_max, so what
     crosses the shard boundary on top of the accumulator arrays stays
     small. When the merged stats prove the stream exact the per-shard
     captures concatenate into complete merged answers stamped with the
     segments' pre-query stamps — subsequent grouped (and plain) probes
     of those bcps take the fast path. *)
  let install_ctx =
    match path with
    | Pmv.Answer.Locked -> None
    | Pmv.Answer.Epoch -> (
        match
          Hashtbl.find_opt t.probe_caches compiled.Template.spec.Template.name
        with
        | None -> None
        | Some pc ->
            let stamps = Array.map Pmv.Entry_store.current_stamp pc.pc_segments in
            let seen = Bcp.Table.create 8 in
            let exact_bcps =
              List.filter_map
                (fun cp ->
                  let bcp = Condition_part.bcp cp in
                  if Condition_part.is_exact cp && not (Bcp.Table.mem seen bcp)
                  then begin
                    Bcp.Table.replace seen bcp ();
                    Some bcp
                  end
                  else None)
                (Condition_part.decompose instance)
            in
            Some (pc, stamps, exact_bcps, Pmv.Entry_store.f_max pc.pc_segments.(0)))
  in
  let shard_fold i =
    let partial_tbl = Tuple.Table.create 32 and exact_tbl = Tuple.Table.create 32 in
    let captures =
      match install_ctx with
      | None -> None
      | Some (_, _, exact_bcps, seg_fmax) ->
          let tbl = Bcp.Table.create (2 * List.length exact_bcps + 1) in
          List.iter (fun bcp -> Bcp.Table.replace tbl bcp (ref [], ref 0)) exact_bcps;
          Some (tbl, seg_fmax)
    in
    let stats, used =
      Engine.answer ~probe_path:path t.shards.(i) instance ~on_tuple:(fun phase tuple ->
          (match phase with
          | Pmv.Answer.Partial -> Pmv.Extensions.fold_group partial_tbl ~key ~aggs tuple
          | Pmv.Answer.Remaining -> ());
          Pmv.Extensions.fold_group exact_tbl ~key ~aggs tuple;
          match captures with
          | None -> ()
          | Some (tbl, seg_fmax) -> (
              match
                Bcp.Table.find_opt tbl (Condition_part.bcp_of_result compiled tuple)
              with
              | Some (lst, n) ->
                  (* one-over the segment bound marks overflow *)
                  if !n <= seg_fmax then begin
                    lst := tuple :: !lst;
                    incr n
                  end
              | None -> ()))
    in
    ( Pmv.Extensions.collect_groups partial_tbl,
      Pmv.Extensions.collect_groups exact_tbl,
      stats,
      used,
      captures )
  in
  let pool = match par with Some _ -> par | None -> t.par in
  let per_shard =
    match pool with
    | Some pool when Pool.size pool >= 2 && Array.length targets >= 2 ->
        Pool.map pool shard_fold targets
    | _ -> Array.map shard_fold targets
  in
  Array.fold_left
    (fun acc (p, g, s, u, _) ->
      match acc with
      | None -> Some (p, g, s, u)
      | Some (ap, ag, astats, aused) ->
          Some
            ( Pmv.Extensions.merge_groups ap p,
              Pmv.Extensions.merge_groups ag g,
              merge_stats astats s,
              aused && u ))
    None per_shard
  |> function
  | Some (g_partial, g_groups, g_stats, used) ->
      (match install_ctx with
      | Some (pc, stamps, exact_bcps, seg_fmax)
        when g_stats.Pmv.Answer.stale_purged = 0 ->
          let nseg = Array.length pc.pc_segments in
          let seg_idx bcp = (Bcp.hash bcp land max_int) mod nseg in
          List.iter
            (fun bcp ->
              let total = ref 0 and tuples = ref [] in
              Array.iter
                (fun (_, _, _, _, captures) ->
                  match captures with
                  | Some (tbl, _) -> (
                      match Bcp.Table.find_opt tbl bcp with
                      | Some (lst, n) ->
                          total := !total + !n;
                          tuples := List.rev_append !lst !tuples
                      | None -> ())
                  | None -> ())
                per_shard;
              if !total <= seg_fmax then begin
                let si = seg_idx bcp in
                if
                  Pmv.Entry_store.install_complete pc.pc_segments.(si) bcp !tuples
                    ~stamp:stamps.(si)
                then Atomic.incr pc.pc_installs.(si)
              end)
            exact_bcps
      | _ -> ());
      ({ Pmv.Extensions.g_partial; g_groups; g_stats }, used)
  | None -> assert false (* targets is never empty *)

(* Router-cache grouped fast path: when every bcp of the instance holds
   a trusted complete version in the template's router-level probe
   cache, the grouped answer folds straight out of the owning segments
   — no fan-out, no execution. [None] on any miss (fall back to
   {!answer_grouped}). *)
let probe_grouped t instance ~key ~aggs =
  let compiled = Minirel_query.Instance.compiled instance in
  match Hashtbl.find_opt t.probe_caches compiled.Template.spec.Template.name with
  | None -> None
  | Some pc ->
      let nseg = Array.length pc.pc_segments in
      let seg_idx bcp = (Bcp.hash bcp land max_int) mod nseg in
      let tbl = Tuple.Table.create 32 in
      let rec go = function
        | [] -> Some (Pmv.Extensions.collect_groups tbl)
        | cp :: rest -> (
            let bcp = Condition_part.bcp cp in
            let seg = pc.pc_segments.(seg_idx bcp) in
            match Pmv.Entry_store.probe seg bcp with
            | Some v when Pmv.Entry_store.version_trusted seg v ->
                List.iter
                  (fun tuple ->
                    if
                      Condition_part.is_exact cp
                      || Condition_part.check compiled cp tuple
                    then Pmv.Extensions.fold_group tbl ~key ~aggs tuple)
                  v.Pmv.Entry_store.v_tuples;
                go rest
            | Some _ | None -> None)
      in
      go (Condition_part.decompose instance)

(* Sharded ORDER BY ... LIMIT k: each shard surrenders at most k
   candidates (its own bounded top-k under the shared total order), so
   what crosses the shard boundary is k*S tuples instead of the full
   per-shard results; the router cuts the merged candidates back to
   the global first k. Prefix-exact: the shared comparator is a total
   order, so the global first k are contained in the union of the
   per-shard first k. *)
let answer_ordered_k ?probe_path t instance ~order ~k =
  if k <= 0 then invalid_arg "Shard_router.answer_ordered_k: k must be positive";
  Pmv.Extensions.note_shape `Ordered;
  let compiled = Minirel_query.Instance.compiled instance in
  let path = match probe_path with Some p -> p | None -> t.probe_path in
  let template = compiled.Template.spec.Template.name in
  let targets = template_shards t compiled in
  let candidates = ref [] and stats_acc = ref None in
  List.iter
    (fun i ->
      let e = t.shards.(i) in
      let rows, stats =
        match Engine.find_view e ~template with
        | Some view ->
            Pmv.Extensions.answer_ordered_k ~locks:(Engine.locks e) ~probe_path:path
              ~view (Engine.catalog e) instance ~order ~k
        | None ->
            (* no view on this shard: bounded heap over the plain answer *)
            let all = ref [] in
            let stats, _ =
              Engine.answer ~probe_path:path e instance ~on_tuple:(fun _ tuple ->
                  all := tuple :: !all)
            in
            ( Minirel_exec.Grouping.top_k ~cmp:(Ordering.cmp ~order) ~k
                (Minirel_exec.Cursor.of_list !all),
              stats )
      in
      candidates := rows :: !candidates;
      stats_acc :=
        Some (match !stats_acc with None -> stats | Some s -> merge_stats s stats))
    targets;
  (Ordering.first_k ~order ~k (List.concat !candidates), Option.get !stats_acc)

(* Sharded EXISTS: probe every target shard's view for a cached witness
   first — any one cached satisfying tuple settles the question with no
   engine work anywhere. Only when no shard holds a witness does the
   router execute, shard by shard, stopping at the first tuple. *)
let exists_ ?probe_path t instance =
  Pmv.Extensions.note_shape `Exists;
  let compiled = Minirel_query.Instance.compiled instance in
  let path = match probe_path with Some p -> p | None -> t.probe_path in
  let template = compiled.Template.spec.Template.name in
  let targets = template_shards t compiled in
  let witness =
    List.exists
      (fun i ->
        match Engine.find_view t.shards.(i) ~template with
        | Some view -> Pmv.Extensions.cached_witness ~probe_path:path ~view instance
        | None -> false)
      targets
  in
  if witness then (true, `From_pmv)
  else (answer_first_k t instance ~k:1 <> [], `Executed)

(* --- maintenance ------------------------------------------------------- *)

(* Apply any queued (lock-deferred) deltas on every shard's views. *)
let flush_pending t =
  Array.iter
    (fun e ->
      List.iter
        (fun view -> Pmv.Maintain.flush_pending view (Engine.txn_mgr e))
        (Pmv.Manager.views (Engine.manager e)))
    t.shards

(* --- data loading ------------------------------------------------------ *)

(* Partition an existing catalog's contents into the shards: every
   relation is created per its [parts] entry (relations without one are
   replicated), tuples are routed by the partition rule, and secondary
   indexes are recreated on every shard. Inserts go through the plain
   catalog (no transactions): loading precedes view creation. *)
let load_from t source =
  List.iter
    (fun rel ->
      let schema = Catalog.schema source rel in
      if not (Hashtbl.mem t.parts rel) then Hashtbl.replace t.parts rel Replicated;
      Array.iter
        (fun e -> ignore (Catalog.create_relation (Engine.catalog e) schema))
        t.shards;
      let insert_into i tuple =
        ignore (Catalog.insert (Engine.catalog t.shards.(i)) ~rel tuple)
      in
      let heap = Catalog.heap source rel in
      Minirel_storage.Heap_file.iter heap (fun _rid tuple ->
          match Hashtbl.find t.parts rel with
          | Hash pos -> insert_into (shard_of_value t tuple.(pos)) tuple
          | Replicated -> List.iter (fun i -> insert_into i tuple) (all_shards t));
      List.iter
        (fun idx ->
          let attrs =
            Array.to_list
              (Array.map (Schema.attr_name schema) (Minirel_index.Index.key_positions idx))
          in
          create_index t ~rel ~name:(Minirel_index.Index.name idx) ~attrs ())
        (Catalog.indexes source rel))
    (Catalog.relations source);
  bump_ddl_epoch t

(* --- telemetry --------------------------------------------------------- *)

(* Per-shard snapshots, in shard order. *)
let snapshots t =
  Array.to_list (Array.map (fun e -> (Engine.name e, Engine.snapshot e)) t.shards)

(* One aggregated snapshot (counters/gauges add, histogram summaries
   merge), plus the router-level sources from the router's own scoped
   registry — disjoint names, so the merge just concatenates them. *)
let snapshot_merged t =
  Export.merge_snapshots
    (List.map snd (snapshots t)
    @ [ Minirel_telemetry.Registry.snapshot t.registry ])

(* Router probe-cache counters as Prometheus series carrying both a
   [shard] and a [template] label, one series family per counter kind
   (type comments emitted once per family). *)
let probe_cache_prometheus_string t =
  let rows = probe_cache_rows t in
  let buf = Buffer.create 256 in
  List.iter
    (fun kind ->
      let series = List.filter (fun (_, _, k, _) -> String.equal k kind) rows in
      if series <> [] then begin
        let family = "router_probe_cache_" ^ kind in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" family);
        List.iter
          (fun (template, i, _, n) ->
            Buffer.add_string buf
              (Printf.sprintf "%s{shard=%S,template=%S} %d\n" family (string_of_int i)
                 template n))
          series
      end)
    [ "hits"; "misses"; "installs" ];
  Buffer.contents buf

(* Prometheus exposition with a [shard="i"] label on every series, plus
   the router probe-cache families labelled by shard and template. *)
let prometheus_string t =
  String.concat ""
    (List.mapi
       (fun i (_, snap) ->
         Export.prometheus_string ~labels:[ ("shard", string_of_int i) ] snap)
       (snapshots t))
  ^ probe_cache_prometheus_string t

let reset_telemetry t =
  Array.iter Engine.reset_telemetry t.shards;
  Minirel_telemetry.Registry.reset t.registry

(* --- shutdown ---------------------------------------------------------- *)

(* Tear the router down: shut every shard engine down and drain the
   probe caches' retired version chains. The router must not answer
   queries afterwards. *)
let shutdown t =
  Array.iter Engine.shutdown t.shards;
  Hashtbl.iter
    (fun _ pc -> Array.iter Pmv.Entry_store.shutdown pc.pc_segments)
    t.probe_caches
