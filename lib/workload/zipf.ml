(* Zipfian sampler over ranks 0..n-1 with P(i) proportional to
   1/(i+1)^alpha — the paper's query-pattern model (Section 4.1:
   alpha = 1.07 is "high skew", 1.01 "moderate skew").

   Sampling inverts the cumulative distribution with binary search;
   build is O(n), draw is O(log n). *)

type t = { cum : float array; alpha : float }

let create ~n ~alpha =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) alpha);
    cum.(i) <- !total
  done;
  let z = !total in
  for i = 0 to n - 1 do
    cum.(i) <- cum.(i) /. z
  done;
  { cum; alpha }

let n t = Array.length t.cum
let alpha t = t.alpha

let pmf t i =
  if i = 0 then t.cum.(0) else t.cum.(i) -. t.cum.(i - 1)

(* Rank sampled according to the distribution. *)
let sample t rng =
  let u = Minirel_prng.Split_mix.float rng in
  let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* Smallest number of top ranks holding at least [mass] probability;
   e.g. the paper: with alpha=1.07, 10% of 1M ranks hold 90% of mass. *)
let ranks_holding t ~mass =
  let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) < mass then lo := mid + 1 else hi := mid
  done;
  !lo + 1
