(* TPC-R-style data generator (the paper's Section 4.2 test data,
   Table 1). Schema and key distribution follow the paper:

     customer (custkey, nationkey, ...)        0.15M x s rows, ~153 B/row
     orders   (orderkey, custkey, orderdate, ...)  1.5M x s rows, ~76 B/row
     lineitem (orderkey, suppkey, ...)         6M x s rows, ~126 B/row

   On average each customer matches 10 orders on custkey and each order
   matches 4 lineitems on orderkey (exactly, in this generator). The
   absolute scale is a CLI knob; shapes depend on the ratios, not the
   row counts (DESIGN.md Section 2). *)

open Minirel_storage
module Catalog = Minirel_index.Catalog

type params = {
  scale : float;  (* the paper's s *)
  seed : int;
  n_dates : int;  (* orderdate domain: 1..n_dates *)
  n_suppliers : int;  (* suppkey domain: 1..n_suppliers *)
  n_nations : int;  (* nationkey domain: 0..n_nations-1 *)
  nation_alpha : float;
      (* customers per nation follow a Zipfian with this skew (real
         populations are heavily skewed); keeps hot T2 basic condition
         parts dense enough to hold > F result tuples *)
  pad : bool;  (* attach padding strings to realise Table 1 byte sizes *)
}

let default_params =
  {
    scale = 0.02;
    seed = 42;
    n_dates = 2405;
    n_suppliers = 1000;
    n_nations = 25;
    nation_alpha = 1.5;
    pad = true;
  }

(* Parameters whose selection-value domains scale with the data so that
   each (orderdate, suppkey) basic condition part keeps more than F
   matching lineitems — the paper's Section 4.2 setup ("for each basic
   condition part, the number of query result tuples that belong to it
   is greater than F"). Density target: ~8 lineitems per (date, supp)
   pair, split 4:1 between the two domains. *)
let params_for_scale ?(seed = 42) ?(pad = true) scale =
  let customers = max 1 (int_of_float (Float.round (150_000.0 *. scale))) in
  let lineitems = 40 * customers in
  let pairs = max 4 (lineitems / 8) in
  let n_dates = max 4 (int_of_float (2.0 *. sqrt (float_of_int pairs))) in
  let n_suppliers = max 2 (pairs / n_dates) in
  { scale; seed; n_dates; n_suppliers; n_nations = 25; nation_alpha = 1.5; pad }

type counts = { customers : int; orders : int; lineitems : int }

let counts_of_scale scale =
  let customers = max 1 (int_of_float (Float.round (150_000.0 *. scale))) in
  { customers; orders = 10 * customers; lineitems = 40 * customers }

let customer_schema =
  Schema.create "customer"
    [
      ("custkey", Schema.Tint);
      ("nationkey", Schema.Tint);
      ("acctbal", Schema.Tfloat);
      ("pad", Schema.Tstr);
    ]

let orders_schema =
  Schema.create "orders"
    [
      ("orderkey", Schema.Tint);
      ("custkey", Schema.Tint);
      ("orderdate", Schema.Tint);
      ("totalprice", Schema.Tfloat);
      ("pad", Schema.Tstr);
    ]

let lineitem_schema =
  Schema.create "lineitem"
    [
      ("orderkey", Schema.Tint);
      ("suppkey", Schema.Tint);
      ("linenumber", Schema.Tint);
      ("quantity", Schema.Tint);
      ("extendedprice", Schema.Tfloat);
      ("pad", Schema.Tstr);
    ]

let pad_string params n = if params.pad then String.make n 'x' else ""

(* Populate the three relations plus the paper's indexes ("an index on
   each selection/join attribute"). Returns the row counts. *)
let generate catalog params =
  let rng = Minirel_prng.Split_mix.create ~seed:params.seed in
  let c = counts_of_scale params.scale in
  let nation_zipf = Zipf.create ~n:params.n_nations ~alpha:params.nation_alpha in
  let _ = Catalog.create_relation catalog customer_schema in
  let _ = Catalog.create_relation catalog orders_schema in
  let _ = Catalog.create_relation catalog lineitem_schema in
  let cust_pad = Value.Str (pad_string params 120) in
  for custkey = 1 to c.customers do
    ignore
      (Catalog.insert catalog ~rel:"customer"
         [|
           Value.Int custkey;
           Value.Int (Zipf.sample nation_zipf rng);
           Value.Float (float_of_int (Minirel_prng.Split_mix.int rng ~bound:1_000_000) /. 100.0);
           cust_pad;
         |])
  done;
  let ord_pad = Value.Str (pad_string params 45) in
  let li_pad = Value.Str (pad_string params 90) in
  let orderkey = ref 0 in
  for custkey = 1 to c.customers do
    for _ = 1 to 10 do
      incr orderkey;
      let ok = !orderkey in
      ignore
        (Catalog.insert catalog ~rel:"orders"
           [|
             Value.Int ok;
             Value.Int custkey;
             Value.Int (Minirel_prng.Split_mix.int_range rng ~lo:1 ~hi:params.n_dates);
             Value.Float (float_of_int (Minirel_prng.Split_mix.int rng ~bound:50_000_000) /. 100.0);
             ord_pad;
           |]);
      for linenumber = 1 to 4 do
        ignore
          (Catalog.insert catalog ~rel:"lineitem"
             [|
               Value.Int ok;
               Value.Int (Minirel_prng.Split_mix.int_range rng ~lo:1 ~hi:params.n_suppliers);
               Value.Int linenumber;
               Value.Int (Minirel_prng.Split_mix.int_range rng ~lo:1 ~hi:50);
               Value.Float (float_of_int (Minirel_prng.Split_mix.int rng ~bound:10_000_000) /. 100.0);
               li_pad;
             |])
      done
    done
  done;
  (* indexes on every selection/join attribute (Section 4.2) *)
  let ix rel name attrs = ignore (Catalog.create_index catalog ~rel ~name ~attrs ()) in
  ix "customer" "customer_custkey" [ "custkey" ];
  ix "customer" "customer_nationkey" [ "nationkey" ];
  ix "orders" "orders_orderkey" [ "orderkey" ];
  ix "orders" "orders_custkey" [ "custkey" ];
  ix "orders" "orders_orderdate" [ "orderdate" ];
  ix "lineitem" "lineitem_orderkey" [ "orderkey" ];
  ix "lineitem" "lineitem_suppkey" [ "suppkey" ];
  c

(* Table 1 rows: tuple counts and relation sizes for a scale factor,
   using the paper's nominal MB-per-scale figures alongside the sizes
   this generator actually materialises. *)
type table1_row = {
  relation : string;
  tuples : int;
  nominal_mb : float;  (* the paper's formula: 23s / 114s / 755s *)
  actual_bytes : int option;  (* measured, when the data was generated *)
}

let table1 ?catalog ~scale () =
  let c = counts_of_scale scale in
  let actual rel =
    Option.map (fun cat -> Heap_file.size_bytes (Catalog.heap cat rel)) catalog
  in
  [
    {
      relation = "customer";
      tuples = c.customers;
      nominal_mb = 23.0 *. scale;
      actual_bytes = actual "customer";
    };
    {
      relation = "orders";
      tuples = c.orders;
      nominal_mb = 114.0 *. scale;
      actual_bytes = actual "orders";
    };
    {
      relation = "lineitem";
      tuples = c.lineitems;
      nominal_mb = 755.0 *. scale;
      actual_bytes = actual "lineitem";
    };
  ]
