(** Zipfian sampler over ranks [0..n-1] with P(i) proportional to
    [1/(i+1)^alpha] — the paper's query-pattern model (Section 4.1:
    alpha = 1.07 is "high skew", 1.01 "moderate"). Build is O(n),
    sampling inverts the CDF in O(log n). *)

type t

(** @raise Invalid_argument if [n <= 0]. *)
val create : n:int -> alpha:float -> t

val n : t -> int
val alpha : t -> float
val pmf : t -> int -> float
val sample : t -> Minirel_prng.Split_mix.t -> int

(** Smallest number of top ranks holding at least [mass] probability
    (e.g. the paper: alpha=1.07 -> 10% of 1M ranks hold 90%). *)
val ranks_holding : t -> mass:float -> int
