(* Re-export of the shared leaf PRNG so existing
   [Minirel_workload.Split_mix] call sites keep working. *)
include Minirel_prng.Split_mix
