(** Query templates and query streams for the paper's experiments:
    T1 (orders ⋈ lineitem with orderdate/suppkey disjunctions,
    h = e*f) and T2 (plus customer with a nationkey disjunction,
    h = e*f*g), with Zipf-hot parameter draws. *)

open Minirel_storage
open Minirel_query

val t1_spec : Template.spec
val t2_spec : Template.spec

(** Zipf rank -> selection value (rank 0, the hottest, maps to 1). *)
val value_of_rank : int -> Value.t

(** [count] distinct Zipf-skewed values. *)
val draw_values : Zipf.t -> Minirel_prng.Split_mix.t -> count:int -> Value.t list

(** A T1 query with [e] dates and [f] suppliers. *)
val gen_t1 :
  Template.compiled -> dates_zipf:Zipf.t -> supp_zipf:Zipf.t -> e:int -> f:int ->
  Minirel_prng.Split_mix.t -> Instance.t

(** A T2 query with [e] dates, [f] suppliers, [g] nations. *)
val gen_t2 :
  Template.compiled -> dates_zipf:Zipf.t -> supp_zipf:Zipf.t -> nation_zipf:Zipf.t ->
  e:int -> f:int -> g:int -> Minirel_prng.Split_mix.t -> Instance.t

(** Zipf-anchored disjoint interval chunks over a grid: [count] chunks
    of [span] consecutive basic intervals each. *)
val draw_intervals :
  Discretize.t -> Zipf.t -> Minirel_prng.Split_mix.t -> count:int -> span:int -> Interval.t list

(** {2 Section 3.6 query shapes}

    A shape wraps how a generated instance is asked — plain, DISTINCT,
    grouped (key + associative accumulator specs), ordered first-k, or
    as an EXISTS witness check. Positions index the expanded Ls'
    result tuple. *)
type shape =
  | Plain
  | Distinct
  | Grouped of { key : int array; aggs : Aggregate.spec array }
  | Ordered of { order : Ordering.key array; k : int }
  | Exists

val shape_name : shape -> string

(** The shape classes [compiled] supports, deterministically derived
    from its select list (campaigns index into this list). [k] bounds
    the ordered shape's first-k cut. *)
val shapes_for : Template.compiled -> k:int -> shape list

(** One query for any compiled template: [counts.(i)] values (equality
    form) or single-basic-interval pieces (interval form) per Ci, drawn
    from [zipfs.(i)]. *)
val gen_generic :
  Template.compiled -> zipfs:Zipf.t array -> counts:int array -> Minirel_prng.Split_mix.t -> Instance.t
