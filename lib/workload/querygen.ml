(* Query templates and query streams for the paper's experiments.

   T1 (Section 4.2): lineitems of certain suppliers sold on certain days
       select ... from orders o, lineitem l
       where o.orderkey = l.orderkey
         and (o.orderdate = d1 or ... or o.orderdate = de)
         and (l.suppkey = s1 or ... or l.suppkey = sf)

   T2: T1 plus customer with a nationkey disjunction; combination
   factor h = e*f (T1) or e*f*g (T2).

   Hot/cold structure comes from Zipfian draws over the selection-value
   domains; rank r maps to value r+1, so low values are the hot ones. *)

open Minirel_storage
open Minirel_query

let t1_spec =
  {
    Template.name = "t1";
    relations = [| "orders"; "lineitem" |];
    joins =
      [ (Template.attr_ref ~rel:0 ~attr:"orderkey", Template.attr_ref ~rel:1 ~attr:"orderkey") ];
    fixed = [];
    select_list =
      [
        Template.attr_ref ~rel:0 ~attr:"orderkey";
        Template.attr_ref ~rel:0 ~attr:"totalprice";
        Template.attr_ref ~rel:1 ~attr:"linenumber";
        Template.attr_ref ~rel:1 ~attr:"quantity";
        Template.attr_ref ~rel:1 ~attr:"extendedprice";
      ];
    selections =
      [|
        Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"orderdate");
        Template.Eq_sel (Template.attr_ref ~rel:1 ~attr:"suppkey");
      |];
  }

let t2_spec =
  {
    Template.name = "t2";
    relations = [| "orders"; "lineitem"; "customer" |];
    joins =
      [
        (Template.attr_ref ~rel:0 ~attr:"orderkey", Template.attr_ref ~rel:1 ~attr:"orderkey");
        (Template.attr_ref ~rel:0 ~attr:"custkey", Template.attr_ref ~rel:2 ~attr:"custkey");
      ];
    fixed = [];
    select_list =
      [
        Template.attr_ref ~rel:0 ~attr:"orderkey";
        Template.attr_ref ~rel:0 ~attr:"totalprice";
        Template.attr_ref ~rel:1 ~attr:"quantity";
        Template.attr_ref ~rel:1 ~attr:"extendedprice";
        Template.attr_ref ~rel:2 ~attr:"acctbal";
      ];
    selections =
      [|
        Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"orderdate");
        Template.Eq_sel (Template.attr_ref ~rel:1 ~attr:"suppkey");
        Template.Eq_sel (Template.attr_ref ~rel:2 ~attr:"nationkey");
      |];
  }

(* Zipf rank -> selection value. Rank 0 is the hottest. *)
let value_of_rank r = Value.Int (r + 1)

(* [count] distinct values drawn Zipf-skewed from [zipf]. *)
let draw_values zipf rng ~count =
  List.map value_of_rank (Minirel_prng.Split_mix.distinct rng ~n:count (Zipf.sample zipf))

(* A T1 query with e dates and f suppliers (h = e*f). *)
let gen_t1 compiled ~dates_zipf ~supp_zipf ~e ~f rng =
  Instance.make compiled
    [|
      Instance.Dvalues (draw_values dates_zipf rng ~count:e);
      Instance.Dvalues (draw_values supp_zipf rng ~count:f);
    |]

(* A T2 query with e dates, f suppliers, g nations (h = e*f*g). *)
let gen_t2 compiled ~dates_zipf ~supp_zipf ~nation_zipf ~e ~f ~g rng =
  Instance.make compiled
    [|
      Instance.Dvalues (draw_values dates_zipf rng ~count:e);
      Instance.Dvalues (draw_values supp_zipf rng ~count:f);
      Instance.Dvalues
        (List.map (fun v ->
             (* nationkey domain starts at 0 *)
             match v with Value.Int i -> Value.Int (i - 1) | other -> other)
            (draw_values nation_zipf rng ~count:g));
    |]

(* Zipf-skewed disjoint intervals over a grid: [count] chunks of [span]
   consecutive basic intervals each, anchored at Zipf-chosen ids. *)
let draw_intervals grid zipf rng ~count ~span =
  let n = Discretize.n_intervals grid in
  let taken = Hashtbl.create 16 in
  let overlaps start =
    let rec check i = i < span && (Hashtbl.mem taken (start + i) || check (i + 1)) in
    check 0
  in
  let rec pick acc found tries =
    if found >= count || tries > 1000 * count then List.rev acc
    else
      let start = min (Zipf.sample zipf rng) (n - span) in
      if start < 0 || overlaps start then pick acc found (tries + 1)
      else begin
        for i = 0 to span - 1 do
          Hashtbl.replace taken (start + i) ()
        done;
        let first = Discretize.interval_of_id grid start in
        let last = Discretize.interval_of_id grid (start + span - 1) in
        let iv = Interval.make first.Interval.lo last.Interval.hi in
        pick (iv :: acc) (found + 1) (tries + 1)
      end
  in
  pick [] 0 0

(* --- Section 3.6 query-shape descriptors --------------------------- *)

(* A shape wraps how a generated instance is ASKED, not what it matches:
   the same template instance can run plain, DISTINCT, grouped, ordered
   first-k or as an EXISTS witness check. Positions are expanded Ls'
   positions of the template's own select-list attributes, so the
   descriptors work for any compiled template. *)
type shape =
  | Plain
  | Distinct
  | Grouped of { key : int array; aggs : Aggregate.spec array }
  | Ordered of { order : Ordering.key array; k : int }
  | Exists

let shape_name = function
  | Plain -> "plain"
  | Distinct -> "distinct"
  | Grouped _ -> "grouped"
  | Ordered _ -> "ordered"
  | Exists -> "exists"

(* The shape classes a template supports: group by the first select
   attribute aggregating over the tail, order by the second attribute
   descending (first ascending as tiebreak), plus DISTINCT and EXISTS.
   Deterministic — campaigns draw from this list by rng index. *)
let shapes_for compiled ~k =
  let pos a = Template.expanded_pos compiled a in
  match compiled.Template.spec.Template.select_list with
  | [] -> [ Plain ]
  | [ a ] ->
      [
        Plain;
        Distinct;
        Grouped { key = [| pos a |]; aggs = [| Aggregate.Count |] };
        Ordered { order = [| (pos a, false) |]; k };
        Exists;
      ]
  | [ a; b ] ->
      [
        Plain;
        Distinct;
        Grouped
          { key = [| pos a |]; aggs = [| Aggregate.Count; Aggregate.Sum (pos b) |] };
        Ordered { order = [| (pos b, true); (pos a, false) |]; k };
        Exists;
      ]
  | a :: b :: c :: _ ->
      [
        Plain;
        Distinct;
        Grouped
          {
            key = [| pos a |];
            aggs =
              [|
                Aggregate.Count;
                Aggregate.Sum (pos c);
                Aggregate.Min (pos b);
                Aggregate.Max (pos b);
                Aggregate.Avg (pos c);
              |];
          };
        Ordered { order = [| (pos b, true); (pos a, false) |]; k };
        Exists;
      ]

(* Generic instance generator: one Zipf source per selection condition;
   equality conditions get [counts.(i)] distinct values, interval
   conditions get [counts.(i)] disjoint single-basic-interval pieces. *)
let gen_generic compiled ~zipfs ~counts rng =
  let sels = compiled.Template.spec.Template.selections in
  let params =
    Array.mapi
      (fun i sel ->
        match sel with
        | Template.Eq_sel _ -> Instance.Dvalues (draw_values zipfs.(i) rng ~count:counts.(i))
        | Template.Range_sel (_, grid) ->
            Instance.Dintervals (draw_intervals grid zipfs.(i) rng ~count:counts.(i) ~span:1))
      sels
  in
  Instance.make compiled params
