(** The shell: a statement interpreter tying the SQL frontend to the
    engine and the PMV layer. One shell owns a catalog, a SQL session
    (template cache + grids), a transaction manager, and a
    {!Pmv.Manager} with one budgeted view per query template, created
    on first use.

    SELECTs route through the template's PMV; GROUP BY aggregates are
    evaluated over the answer stream with an early partial-groups
    preview; ORDER BY and LIMIT apply at the end (LIMIT without ORDER
    BY terminates execution early). DDL/DML statements run through the
    transaction manager, so deferred PMV maintenance fires. *)

open Minirel_storage

type t

(** Interpret statements against an existing engine — its catalog,
    session, transaction manager, PMV manager and fault/telemetry
    scopes. *)
val of_engine : ?view_ub_bytes:int -> ?auto_views:bool -> Minirel_engine.Engine.t -> t

(** Interpret statements against a shard router: queries fan out and
    merge across the shards, DML routes to owning shards, CREATE TABLE
    replicates (declare hash-partitioned relations through
    {!Minirel_engine.Shard_router.create_relation} first), and METRICS
    reports the merged per-shard telemetry. The accessors below then
    refer to shard 0, which also serves parsing/binding/EXPLAIN. *)
val of_router :
  ?view_ub_bytes:int -> ?auto_views:bool -> Minirel_engine.Shard_router.t -> t

(** [create catalog] is {!of_engine} over an engine adopting [catalog]
    with the process-global scopes. *)
val create : ?view_ub_bytes:int -> ?auto_views:bool -> Minirel_index.Catalog.t -> t

val engine : t -> Minirel_engine.Engine.t
val catalog : t -> Minirel_index.Catalog.t
val session : t -> Minirel_sql.Session.t
val manager : t -> Pmv.Manager.t
val txn_mgr : t -> Minirel_txn.Txn.t

type result =
  | Rows of {
      header : string list;
      rows : Tuple.t list;  (** user-visible shape, ordered/limited *)
      from_pmv : int;  (** tuples that arrived via O2 *)
      total : int;  (** result tuples before LIMIT *)
      overhead_ns : int64;
    }
  | Grouped of {
      header : string list;
      groups : (Tuple.t * Value.t list) list;  (** key, aggregate values *)
      partial_groups : (Tuple.t * Value.t list) list;
          (** early preview over the PMV-cached subset *)
    }
  | Table_created of string
  | Index_created of string
  | Inserted of int
  | Updated of int
  | Deleted of int
  | Explained of string  (** physical plan text *)
  | Traced of string
      (** per-operator executor profile, telemetry span tree, and
          plan-cache counters for one answered query *)
  | Metrics of string
      (** [METRICS]: a telemetry snapshot; [METRICS RESET]:
          confirmation that counters were zeroed *)
  | Slo_report of string
      (** [SLO]: the tail-latency watchdog report (per-template
          quantiles, breach count, slow-query span trees); [SLO RESET]
          and [SLO THRESHOLD <µs>] confirm their action *)
  | Flight_dump of string
      (** [FLIGHT [DUMP]]: the merged, time-ordered flight-recorder
          event log with its digest; [FLIGHT RESET|ON|OFF] confirm
          their action *)
  | Maint_report of string
      (** [MAINT [STATUS]]: per-template heavy-light maintenance
          counters (heavy/light classifications, lapsed and recomputed
          entries) summed across shards; [MAINT ON|OFF] confirm their
          action *)
  | Budget_report of string
      (** [BUDGET [STATUS]]: the UB budget arbiter's armed total,
          rebalance count and current footprint; [BUDGET TOTAL <bytes>]
          and [BUDGET REBALANCE] confirm / report the new per-template
          capacities *)

exception Error of string

(** Execute one statement (SELECT [DISTINCT] / EXPLAIN / TRACE /
    METRICS / SLO / FLIGHT / CREATE TABLE / CREATE INDEX / INSERT /
    UPDATE / DELETE). Every SELECT opens a root span on the engine's
    tracer (subject to sampling), threads it through the pipeline, and
    accounts its end-to-end latency to {!Minirel_telemetry.Slo.default}.
    @raise Error, the frontend's Lexer/Parser/Binder errors, or
    Invalid_argument on bad input. *)
val exec : t -> string -> result

(** Observe every successfully executed statement (e.g. into a
    {!Trace}). *)
val set_recorder : t -> (string -> unit) -> unit

(** Which {!Pmv.Answer.probe_path} routed queries take (default
    [Locked]). The state lives on the backend: the router default when
    sharded, the engine default otherwise. *)
val probe_path : t -> Pmv.Answer.probe_path

val set_probe_path : t -> Pmv.Answer.probe_path -> unit

val pp_result : result Fmt.t
