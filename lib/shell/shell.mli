(** The shell: a statement interpreter tying the SQL frontend to the
    engine and the PMV layer. One shell owns a catalog, a SQL session
    (template cache + grids), a transaction manager, and a
    {!Pmv.Manager} with one budgeted view per query template, created
    on first use.

    SELECTs route through the template's PMV; GROUP BY aggregates are
    evaluated over the answer stream with an early partial-groups
    preview; ORDER BY and LIMIT apply at the end (LIMIT without ORDER
    BY terminates execution early). DDL/DML statements run through the
    transaction manager, so deferred PMV maintenance fires. *)

open Minirel_storage

type t

val create : ?view_ub_bytes:int -> ?auto_views:bool -> Minirel_index.Catalog.t -> t

val catalog : t -> Minirel_index.Catalog.t
val session : t -> Minirel_sql.Session.t
val manager : t -> Pmv.Manager.t
val txn_mgr : t -> Minirel_txn.Txn.t

type result =
  | Rows of {
      header : string list;
      rows : Tuple.t list;  (** user-visible shape, ordered/limited *)
      from_pmv : int;  (** tuples that arrived via O2 *)
      total : int;  (** result tuples before LIMIT *)
      overhead_ns : int64;
    }
  | Grouped of {
      header : string list;
      groups : (Tuple.t * Value.t list) list;  (** key, aggregate values *)
      partial_groups : (Tuple.t * Value.t list) list;
          (** early preview over the PMV-cached subset *)
    }
  | Table_created of string
  | Index_created of string
  | Inserted of int
  | Updated of int
  | Deleted of int
  | Explained of string  (** physical plan text *)
  | Traced of string
      (** per-operator executor profile, telemetry span tree, and
          plan-cache counters for one answered query *)
  | Metrics of string
      (** [METRICS]: a telemetry snapshot; [METRICS RESET]:
          confirmation that counters were zeroed *)

exception Error of string

(** Execute one statement (SELECT [DISTINCT] / EXPLAIN / TRACE / CREATE
    TABLE / CREATE INDEX / INSERT / UPDATE / DELETE).
    @raise Error, the frontend's Lexer/Parser/Binder errors, or
    Invalid_argument on bad input. *)
val exec : t -> string -> result

(** Observe every successfully executed statement (e.g. into a
    {!Trace}). *)
val set_recorder : t -> (string -> unit) -> unit

val pp_result : result Fmt.t
