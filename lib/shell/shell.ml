(* The shell: a complete statement interpreter tying the SQL frontend to
   the engine and the PMV layer. One shell owns a catalog, a SQL
   session (template cache + grids), a transaction manager, and a
   Pmv.Manager with one budgeted view per query template.

   SELECTs route through the template's PMV (partial results counted);
   GROUP BY aggregates are evaluated over the answer stream with an
   early partial-groups preview; ORDER BY and LIMIT are applied at the
   end (LIMIT without ORDER BY terminates execution early through the
   PMV's first-k path). DDL and DML statements run through the
   transaction manager so deferred PMV maintenance fires. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module Session = Minirel_sql.Session
module Ast = Minirel_sql.Ast
module Parser = Minirel_sql.Parser
module Binder = Minirel_sql.Binder
module Engine = Minirel_engine.Engine
module Router = Minirel_engine.Shard_router
module Telemetry = Minirel_telemetry.Telemetry
module Span = Minirel_telemetry.Span
module Slo = Minirel_telemetry.Slo
module Flight = Minirel_telemetry.Flight

type t = {
  engine : Engine.t;
  router : Router.t option;
      (* sharded backend: [engine] is then shard 0, used for parsing /
         binding / EXPLAIN (schemas are identical on every shard), while
         answering and DML route through the router *)
  view_ub_bytes : int;  (* budget per automatically created view *)
  auto_views : bool;
  mutable recorder : (string -> unit) option;  (* successful statements *)
}

(* Interpret statements against an existing engine (its catalog,
   session, transaction manager and PMV manager — and therefore its
   fault/telemetry scopes). *)
let of_engine ?(view_ub_bytes = 262_144) ?(auto_views = true) engine =
  { engine; router = None; view_ub_bytes; auto_views; recorder = None }

(* Interpret statements against a shard router: queries fan out and
   merge, DML routes to owning shards, CREATE TABLE replicates (SQL has
   no partitioning syntax — partitioned relations are declared through
   {!Router.create_relation} before the shell takes over). *)
let of_router ?(view_ub_bytes = 262_144) ?(auto_views = true) router =
  {
    engine = Router.shard router 0;
    router = Some router;
    view_ub_bytes;
    auto_views;
    recorder = None;
  }

let create ?view_ub_bytes ?auto_views catalog =
  of_engine ?view_ub_bytes ?auto_views (Engine.create ~catalog ())

(* Observe every successfully executed statement (e.g. into a Trace). *)
let set_recorder t f = t.recorder <- Some f

(* Which read path routed queries take; the state lives on the backend
   (router default, or the engine default when unsharded). *)
let probe_path t =
  match t.router with
  | Some router -> Router.probe_path router
  | None -> Engine.probe_path t.engine

let set_probe_path t path =
  match t.router with
  | Some router -> Router.set_probe_path router path
  | None -> Engine.set_probe_path t.engine path

let engine t = t.engine
let catalog t = Engine.catalog t.engine
let session t = Engine.session t.engine
let manager t = Engine.manager t.engine
let txn_mgr t = Engine.txn_mgr t.engine

type result =
  | Rows of {
      header : string list;
      rows : Tuple.t list;  (* user-visible shape, ordered/limited *)
      from_pmv : int;  (* tuples that arrived via O2 *)
      total : int;  (* result tuples before LIMIT *)
      overhead_ns : int64;
    }
  | Grouped of {
      header : string list;
      groups : (Tuple.t * Value.t list) list;  (* key, aggregate values *)
      partial_groups : (Tuple.t * Value.t list) list;
          (* early preview over the PMV-cached subset *)
    }
  | Table_created of string
  | Index_created of string
  | Inserted of int
  | Updated of int
  | Deleted of int
  | Explained of string  (* physical plan text *)
  | Traced of string  (* per-operator profile, span tree, plan-cache counters *)
  | Metrics of string  (* METRICS [RESET]: telemetry snapshot text *)
  | Slo_report of string  (* SLO [...]: tail-latency watchdog report *)
  | Flight_dump of string  (* FLIGHT [...]: flight-recorder dump / status *)
  | Maint_report of string  (* MAINT [...]: heavy-light maintenance status *)
  | Budget_report of string  (* BUDGET [...]: UB budget arbiter status *)

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* --- Section 3.6 shape machinery over the bound clauses --- *)

(* Aggregate select items as associative accumulator specs; positions
   index the expanded Ls' result tuple. *)
let agg_specs compiled (bound : Binder.bound) =
  Array.of_list
    (List.map
       (fun (f, arg) ->
         let pos = Option.map (Template.expanded_pos compiled) arg in
         match (f, pos) with
         | Ast.F_count, None -> Aggregate.Count
         | Ast.F_count, Some p -> Aggregate.Count_of p
         | Ast.F_sum, Some p -> Aggregate.Sum p
         | Ast.F_avg, Some p -> Aggregate.Avg p
         | Ast.F_min, Some p -> Aggregate.Min p
         | Ast.F_max, Some p -> Aggregate.Max p
         | _, None -> fail "aggregate needs an attribute argument")
       bound.Binder.aggregates)

let group_key compiled (bound : Binder.bound) =
  Array.of_list (List.map (Template.expanded_pos compiled) bound.Binder.group_by)

let order_keys compiled (bound : Binder.bound) =
  Array.of_list
    (List.map
       (fun (a, desc) -> (Template.expanded_pos compiled a, desc))
       bound.Binder.order_by)

(* ORDER BY over grouped results: every order attribute is a GROUP BY
   key (binder-enforced), located by its index in the key tuple. *)
let sort_groups (bound : Binder.bound) groups =
  match bound.Binder.order_by with
  | [] -> groups
  | order ->
      let keys =
        List.map
          (fun (a, desc) ->
            let rec idx i = function
              | [] -> fail "ORDER BY attribute is not a GROUP BY key"
              | b :: tl -> if a = b then i else idx (i + 1) tl
            in
            (idx 0 bound.Binder.group_by, desc))
          order
      in
      List.sort
        (fun ((ka : Tuple.t), _) (kb, _) ->
          let rec go = function
            | [] -> Tuple.compare ka kb
            | (p, desc) :: rest ->
                let c = Value.compare ka.(p) kb.(p) in
                if c <> 0 then if desc then -c else c else go rest
          in
          go keys)
        groups

let agg_name (f, arg) =
  let fname =
    match f with
    | Ast.F_count -> "count"
    | Ast.F_sum -> "sum"
    | Ast.F_avg -> "avg"
    | Ast.F_min -> "min"
    | Ast.F_max -> "max"
  in
  match arg with
  | None -> fname ^ "(*)"
  | Some (r : Template.attr_ref) -> Fmt.str "%s(%s)" fname r.Template.attr

(* --- SELECT --- *)

(* Every routed query runs under the Section 3.6 S-lock protocol, so
   the lock-manager telemetry reflects real query traffic. *)
let answer_locked ?profile ?trace t instance ~on_tuple =
  match t.router with
  | Some router -> Router.answer ?profile ?trace router instance ~on_tuple
  | None ->
      Pmv.Manager.answer
        ~locks:(Minirel_txn.Txn.locks (txn_mgr t))
        ?profile
        ~probe_path:(Engine.probe_path t.engine)
        ?trace (manager t) instance ~on_tuple

let ensure_view t compiled =
  let template = compiled.Template.spec.Template.name in
  if t.auto_views && Pmv.Manager.find (manager t) ~template = None then
    match t.router with
    | Some router ->
        ignore (Router.create_view ~ub_bytes:t.view_ub_bytes ~f_max:3 router compiled)
    | None ->
        ignore
          (Pmv.Manager.create_view ~ub_bytes:t.view_ub_bytes ~f_max:3 (manager t) compiled)

(* --- EXISTS: per-row witness checks through the subquery's PMV --- *)

(* One checker per EXISTS clause. The sub template compiles through the
   session's signature cache (so repeated queries share its PMV) and
   gets its own auto-created view; per outer row the correlated
   selection slots fill with the row's values, then the witness check
   short-circuits through the subquery's PMV — sharded or not — and
   only executes (to the first tuple) on a miss. *)
let exists_checkers t compiled (bound : Binder.bound) =
  List.map
    (fun (c : Binder.exists_clause) ->
      let sub_compiled = Session.compile_exists (session t) c in
      ensure_view t sub_compiled;
      let corr =
        List.map
          (fun (slot, outer) -> (slot, Template.expanded_pos compiled outer))
          c.Binder.ex_correlated
      in
      fun (row : Tuple.t) ->
        let params =
          Array.map
            (function Some d -> d | None -> Instance.Dvalues [ Value.Null ])
            c.Binder.ex_params
        in
        List.iter
          (fun (slot, pos) -> params.(slot) <- Instance.Dvalues [ row.(pos) ])
          corr;
        let sub = Instance.make sub_compiled params in
        match t.router with
        | Some router -> fst (Router.exists_ router sub)
        | None -> (
            match
              Pmv.Manager.find (manager t)
                ~template:sub_compiled.Template.spec.Template.name
            with
            | Some view ->
                fst
                  (Pmv.Extensions.exists_ ~probe_path:(Engine.probe_path t.engine)
                     ~view (catalog t) sub)
            | None ->
                (* no PMV (auto views off): execute to the first tuple *)
                let plan = Minirel_exec.Planner.plan_query (catalog t) sub in
                let cursor = Minirel_exec.Executor.cursor (catalog t) plan in
                cursor () <> None))
    bound.Binder.exists_

(* Exact grouped accumulators — the partial (O2 preview) and final
   group lists — through the sharded or single-view path; falls back
   to folding the answer stream when no PMV exists. *)
let grouped_answer ?trace t instance ~key ~aggs =
  let template = (Instance.compiled instance).Template.spec.Template.name in
  match t.router with
  | Some router ->
      let g, _ = Router.answer_grouped router instance ~key ~aggs in
      (g.Pmv.Extensions.g_partial, g.Pmv.Extensions.g_groups)
  | None -> (
      match Pmv.Manager.find (manager t) ~template with
      | Some view ->
          let g =
            Pmv.Extensions.answer_groups
              ~locks:(Minirel_txn.Txn.locks (txn_mgr t))
              ~probe_path:(Engine.probe_path t.engine)
              ~view (catalog t) instance ~key ~aggs
          in
          (g.Pmv.Extensions.g_partial, g.Pmv.Extensions.g_groups)
      | None ->
          let partial_tbl = Tuple.Table.create 32
          and exact_tbl = Tuple.Table.create 32 in
          let _ =
            answer_locked ?trace t instance ~on_tuple:(fun phase tuple ->
                (match phase with
                | Pmv.Answer.Partial ->
                    Pmv.Extensions.fold_group partial_tbl ~key ~aggs tuple
                | Pmv.Answer.Remaining -> ());
                Pmv.Extensions.fold_group exact_tbl ~key ~aggs tuple)
          in
          ( Pmv.Extensions.collect_groups partial_tbl,
            Pmv.Extensions.collect_groups exact_tbl ))

let run_select_body ?trace t compiled instance bound =
  if bound.Binder.distinct then Pmv.Extensions.note_shape `Distinct;
  let checkers = exists_checkers t compiled bound in
  let keep row = List.for_all (fun chk -> chk row) checkers in
  if bound.Binder.aggregates = [] then begin
    let all = ref [] and partial = ref 0 in
    let collect phase tuple =
      all := tuple :: !all;
      if phase = Pmv.Answer.Partial then incr partial
    in
    let stats_overhead = ref 0L and total = ref 0 in
    (* short-circuit paths deliver their final Ls' rows directly *)
    let served = ref None in
    let template = compiled.Template.spec.Template.name in
    (* first-k / top-k fast paths only apply when each delivered tuple
       is final as-is: no EXISTS filtering, no DISTINCT collapsing *)
    let plain_shape = checkers = [] && not bound.Binder.distinct in
    (match (bound.Binder.limit, bound.Binder.order_by) with
    | Some 0, _ -> served := Some []
    | Some k, [] when plain_shape -> (
        (* no ordering: stop execution after k tuples (Benefit 2) *)
        match (t.router, Pmv.Manager.find (manager t) ~template) with
        | Some router, _ ->
            let rows = Router.answer_first_k router instance ~k in
            served := Some rows;
            total := List.length rows
        | None, Some view ->
            let rows = Pmv.Extensions.answer_first_k ~view (catalog t) instance ~k in
            served := Some rows;
            total := List.length rows
        | None, None ->
            let stats, _ = answer_locked ?trace t instance ~on_tuple:collect in
            stats_overhead := stats.Pmv.Answer.overhead_ns;
            total := stats.Pmv.Answer.total_count)
    | Some k, _ :: _ when plain_shape -> (
        (* ORDER BY ... LIMIT k: bounded top-k under the shared total
           order — sharded, at most k candidates cross per shard *)
        let order = order_keys compiled bound in
        let answered =
          match (t.router, Pmv.Manager.find (manager t) ~template) with
          | Some router, _ -> Some (Router.answer_ordered_k router instance ~order ~k)
          | None, Some view ->
              Some
                (Pmv.Extensions.answer_ordered_k
                   ~locks:(Minirel_txn.Txn.locks (txn_mgr t))
                   ~probe_path:(Engine.probe_path t.engine)
                   ~view (catalog t) instance ~order ~k)
          | None, None -> None
        in
        match answered with
        | Some (rows, stats) ->
            served := Some rows;
            stats_overhead := stats.Pmv.Answer.overhead_ns;
            total := stats.Pmv.Answer.total_count;
            partial := stats.Pmv.Answer.partial_count
        | None ->
            let stats, _ = answer_locked ?trace t instance ~on_tuple:collect in
            stats_overhead := stats.Pmv.Answer.overhead_ns;
            total := stats.Pmv.Answer.total_count)
    | _ ->
        let stats, _ = answer_locked ?trace t instance ~on_tuple:collect in
        stats_overhead := stats.Pmv.Answer.overhead_ns;
        total := stats.Pmv.Answer.total_count);
    let base =
      match !served with
      | Some rows -> rows (* already ordered and cut *)
      | None ->
          let delivered = List.rev !all in
          let delivered =
            if checkers = [] then delivered
            else begin
              (* EXISTS filters before ordering/limiting; [total]
                 reports surviving rows *)
              let kept = List.filter keep delivered in
              total := List.length kept;
              kept
            end
          in
          let sorted =
            match bound.Binder.order_by with
            | [] -> delivered
            | _ -> Ordering.sort ~order:(order_keys compiled bound) delivered
          in
          (* under DISTINCT the limit cuts distinct rows, below *)
          if bound.Binder.distinct then sorted
          else
            match bound.Binder.limit with
            | Some k -> List.filteri (fun i _ -> i < k) sorted
            | None -> sorted
    in
    (* the user-visible shape: exactly the written select attributes —
       the Ls' tuple may carry more (order keys, EXISTS correlation
       attrs) *)
    let vis_pos =
      Array.of_list (List.map (Template.expanded_pos compiled) bound.Binder.visible)
    in
    let header =
      List.map (fun (a : Template.attr_ref) -> a.Template.attr) bound.Binder.visible
    in
    let visible = List.map (fun row -> Tuple.project row vis_pos) base in
    let visible =
      if not bound.Binder.distinct then visible
      else begin
        (* set semantics over the user-visible rows, first occurrence
           kept (so ORDER BY order survives); LIMIT cuts after *)
        let seen = Tuple.Table.create 64 in
        let deduped =
          List.filter
            (fun row ->
              if Tuple.Table.mem seen row then false
              else begin
                Tuple.Table.replace seen row ();
                true
              end)
            visible
        in
        match bound.Binder.limit with
        | Some k -> List.filteri (fun i _ -> i < k) deduped
        | None -> deduped
      end
    in
    Rows
      {
        header;
        rows = visible;
        from_pmv = !partial;
        total = !total;
        overhead_ns = !stats_overhead;
      }
  end
  else begin
    let key = group_key compiled bound in
    let aggs = agg_specs compiled bound in
    let partial_acc, exact_acc =
      if checkers = [] then grouped_answer ?trace t instance ~key ~aggs
      else begin
        (* EXISTS filters rows before they fold into their groups *)
        let all = ref [] and partial_rows = ref [] in
        let _ =
          answer_locked ?trace t instance ~on_tuple:(fun phase tuple ->
              all := tuple :: !all;
              if phase = Pmv.Answer.Partial then partial_rows := tuple :: !partial_rows)
        in
        let fold rows =
          let tbl = Tuple.Table.create 32 in
          List.iter
            (fun tu -> if keep tu then Pmv.Extensions.fold_group tbl ~key ~aggs tu)
            rows;
          Pmv.Extensions.collect_groups tbl
        in
        (fold (List.rev !partial_rows), fold (List.rev !all))
      end
    in
    let to_result acc =
      Pmv.Extensions.finalize_groups ~aggs acc
      |> List.map (fun (k, vs) -> (k, Array.to_list vs))
      |> sort_groups bound
    in
    let limit gs =
      match bound.Binder.limit with
      | Some k -> List.filteri (fun i _ -> i < k) gs
      | None -> gs
    in
    let header =
      List.map (fun (a : Template.attr_ref) -> a.Template.attr) bound.Binder.group_by
      @ List.map agg_name bound.Binder.aggregates
    in
    Grouped
      {
        header;
        groups = limit (to_result exact_acc);
        partial_groups = limit (to_result partial_acc);
      }
  end

(* Serve one SELECT end to end: open the root span on the engine's
   tracer (subject to its sampling), thread the trace through the
   router/manager so the whole pipeline stitches into one tree, then
   account the end-to-end latency to the SLO watchdog — breaches keep
   the span tree in the slow-query log and may snapshot the flight
   recorder. *)
let run_select t sql =
  let compiled, instance, bound = Session.query_bound (session t) sql in
  ensure_view t compiled;
  let template = compiled.Template.spec.Template.name in
  (* one clock read serves both the SLO latency sample and the root
     span's endpoints (~at) — always-on tracing must not double them *)
  let t0 = Telemetry.now_ns () in
  let trace = Engine.trace_start ~at:t0 t.engine ("select:" ^ template) in
  match run_select_body ?trace t compiled instance bound with
  | result ->
      let t1 = Telemetry.now_ns () in
      Option.iter (Engine.trace_finish ~at:t1 t.engine) trace;
      Slo.note_query Slo.default ~template
        ?trace:(Option.map Span.root trace)
        (Int64.sub t1 t0);
      result
  | exception exn ->
      Option.iter (Engine.trace_finish t.engine) trace;
      raise exn

(* --- DDL / DML --- *)

let col_ty = function
  | Ast.T_int -> Schema.Tint
  | Ast.T_float -> Schema.Tfloat
  | Ast.T_string -> Schema.Tstr

let typed_value schema pos lit =
  let v = Ast.lit_to_value lit in
  match (Schema.attr_ty schema pos, v) with
  | Schema.Tfloat, Value.Int i -> Value.Float (float_of_int i)
  | ty, v ->
      if Schema.ty_matches ty v then v
      else fail "value %a has the wrong type for column %s" Value.pp v (Schema.attr_name schema pos)

(* conjunctive WHERE of a DELETE as a predicate over the relation *)
let delete_pred schema atoms =
  let resolve (a : Ast.qattr) =
    match Schema.pos_opt schema a.Ast.q_attr with
    | Some p -> p
    | None -> fail "unknown column %s" a.Ast.q_attr
  in
  Predicate.conj
    (List.map
       (function
         | Ast.A_join _ -> fail "DELETE supports only column-vs-literal conditions"
         | Ast.A_cmp (a, op, lit) ->
             let pos = resolve a in
             let v = typed_value schema pos lit in
             let cmp =
               match op with
               | Ast.Ceq -> Predicate.Eq
               | Ast.Cne -> Predicate.Ne
               | Ast.Clt -> Predicate.Lt
               | Ast.Cle -> Predicate.Le
               | Ast.Cgt -> Predicate.Gt
               | Ast.Cge -> Predicate.Ge
             in
             Predicate.Cmp (cmp, pos, v)
         | Ast.A_between (a, lo, hi) ->
             let pos = resolve a in
             Predicate.In_interval
               (pos, Interval.closed ~lo:(typed_value schema pos lo) ~hi:(typed_value schema pos hi))
         | Ast.A_in (a, lits) ->
             let pos = resolve a in
             Predicate.In_set (pos, List.map (typed_value schema pos) lits))
       atoms)

(* DML goes through every owning shard's transaction manager (deferred
   PMV maintenance fires shard-locally), or the single engine's. *)
let run_changes t changes =
  match t.router with
  | Some router -> List.concat_map snd (Router.run router changes)
  | None -> Minirel_txn.Txn.run (txn_mgr t) changes

let exec_statement t sql =
  match Parser.parse_statement sql with
  | Ast.St_select _ -> run_select t sql
  | Ast.St_create_table { table; cols } ->
      let schema = Schema.create table (List.map (fun (n, ty) -> (n, col_ty ty)) cols) in
      (match t.router with
      | Some router ->
          (* SQL has no partitioning syntax: tables created through the
             shell replicate. Hash-partitioned relations are declared
             via Shard_router.create_relation before the shell runs. *)
          Router.create_relation router schema ~part:`Replicated
      | None -> ignore (Catalog.create_relation (catalog t) schema));
      Table_created table
  | Ast.St_create_index { index; table; attrs } ->
      if not (Catalog.mem (catalog t) table) then fail "unknown relation %s" table;
      (match t.router with
      | Some router -> Router.create_index router ~rel:table ~name:index ~attrs ()
      | None -> ignore (Catalog.create_index (catalog t) ~rel:table ~name:index ~attrs ()));
      Index_created index
  | Ast.St_insert { table; values } ->
      if not (Catalog.mem (catalog t) table) then fail "unknown relation %s" table;
      let schema = Catalog.schema (catalog t) table in
      if List.length values <> Schema.arity schema then
        fail "%s expects %d values" table (Schema.arity schema);
      let tuple = Array.of_list (List.mapi (fun i l -> typed_value schema i l) values) in
      ignore (run_changes t [ Minirel_txn.Txn.Insert { rel = table; tuple } ]);
      Inserted 1
  | Ast.St_update { table; set; where } ->
      if not (Catalog.mem (catalog t) table) then fail "unknown relation %s" table;
      let schema = Catalog.schema (catalog t) table in
      let pred = delete_pred schema where in
      let assignments =
        List.map
          (fun (col, lit) ->
            match Schema.pos_opt schema col with
            | Some pos -> (pos, typed_value schema pos lit)
            | None -> fail "unknown column %s" col)
          set
      in
      let deltas =
        run_changes t [ Minirel_txn.Txn.Update { rel = table; pred; set = assignments } ]
      in
      Updated
        (List.fold_left
           (fun acc d -> acc + List.length d.Minirel_txn.Txn.updated)
           0 deltas)
  | Ast.St_explain _ ->
      (* strip the EXPLAIN keyword and bind the query itself *)
      let sql_body =
        let trimmed = String.trim sql in
        match String.index_opt trimmed ' ' with
        | Some i -> String.sub trimmed i (String.length trimmed - i)
        | None -> fail "EXPLAIN needs a query"
      in
      let compiled, instance, bound = Session.query_bound (session t) sql_body in
      let plan = Minirel_exec.Planner.plan_query (catalog t) instance in
      let h = Minirel_query.Condition_part.combination_factor instance in
      Explained
        (Fmt.str "template %s (h = %d)%s@.%a"
           compiled.Template.spec.Template.name h
           (if bound.Binder.aggregates <> [] then ", aggregated" else "")
           Minirel_exec.Plan.pp plan)
  | Ast.St_trace _ ->
      (* strip the TRACE keyword, answer the query with per-operator
         profiling, and report the profile plus plan-cache counters *)
      let sql_body =
        let trimmed = String.trim sql in
        match String.index_opt trimmed ' ' with
        | Some i -> String.sub trimmed i (String.length trimmed - i)
        | None -> fail "TRACE needs a query"
      in
      let compiled, instance, _bound = Session.query_bound (session t) sql_body in
      ensure_view t compiled;
      let template = compiled.Template.spec.Template.name in
      let profile = Minirel_exec.Exec_stats.create () in
      (* record this query's span tree regardless of sampling, on the
         engine's own (possibly scoped) tracer; the shell opens the
         root and the trace threads through the whole pipeline *)
      Engine.force_next_trace t.engine;
      let trace = Engine.trace_start t.engine ("select:" ^ template) in
      let stats, used_view =
        match answer_locked ~profile ?trace t instance ~on_tuple:(fun _ _ -> ()) with
        | r ->
            Option.iter (Engine.trace_finish t.engine) trace;
            r
        | exception exn ->
            Option.iter (Engine.trace_finish t.engine) trace;
            raise exn
      in
      let spans =
        match Engine.last_trace t.engine with
        | Some trace -> Fmt.str "@.%a" Minirel_telemetry.Span.pp_trace trace
        | None -> ""
      in
      Traced
        (Fmt.str "template %s%s@.%a%a@.%d tuples (%d from the PMV), exec %.1f µs, overhead %.1f µs%s"
           compiled.Template.spec.Template.name
           (if used_view then " (answered through its PMV)" else "")
           Minirel_exec.Exec_stats.pp profile Minirel_exec.Plan_cache.pp
           (Pmv.Manager.plan_cache (manager t))
           stats.Pmv.Answer.total_count stats.Pmv.Answer.partial_count
           (Int64.to_float stats.Pmv.Answer.exec_ns /. 1e3)
           (Int64.to_float stats.Pmv.Answer.overhead_ns /. 1e3)
           spans)
  | Ast.St_metrics { reset } -> (
      (* the engine's own registry: a scoped shell reports (and resets)
         only its engine's metrics; a sharded shell shows the merged
         view across every shard's registry *)
      match t.router with
      | Some router ->
          if reset then begin
            Router.reset_telemetry router;
            Metrics "telemetry counters reset on every shard (registrations kept)"
          end
          else
            Metrics
              (Fmt.str "merged over %d shards@.%a" (Router.n_shards router)
                 Minirel_telemetry.Registry.pp_snapshot
                 (Router.snapshot_merged router))
      | None ->
          if reset then begin
            Engine.reset_telemetry t.engine;
            Metrics "telemetry counters reset (registrations kept)"
          end
          else
            Metrics
              (Fmt.str "%a" Minirel_telemetry.Registry.pp_snapshot
                 (Engine.snapshot t.engine)))
  | Ast.St_slo { arg } -> (
      match arg with
      | Ast.Slo_report -> Slo_report (Slo.report Slo.default)
      | Ast.Slo_reset ->
          Slo.reset Slo.default;
          Slo_report "slo histograms, breaches and slow-query log reset"
      | Ast.Slo_threshold us ->
          Slo.set_threshold Slo.default (Int64.mul (Int64.of_int us) 1_000L);
          Slo_report (Fmt.str "slo threshold set to %d µs" us))
  | Ast.St_flight { arg } -> (
      match arg with
      | Ast.Flight_dump ->
          Flight.record Flight.Dump_trigger ~a:(Flight.intern "shell.dump");
          Flight_dump (Fmt.str "%a" Flight.pp_dump (Flight.dump ()))
      | Ast.Flight_reset ->
          Flight.reset ();
          Flight_dump "flight recorder rings cleared"
      | Ast.Flight_on ->
          Flight.set_enabled true;
          Flight_dump "flight recorder enabled"
      | Ast.Flight_off ->
          Flight.set_enabled false;
          Flight_dump "flight recorder disabled")
  | Ast.St_maint { arg } -> (
      (* heavy-light adaptive maintenance (DESIGN.md Section 17); a
         sharded shell applies to / reports over every shard's manager *)
      let managers =
        match t.router with
        | Some router -> List.map Engine.manager (Router.shards router)
        | None -> [ manager t ]
      in
      match arg with
      | Ast.Maint_on ->
          List.iter (fun m -> Pmv.Manager.set_adaptive_all m true) managers;
          Maint_report "heavy-light adaptive maintenance enabled on every view"
      | Ast.Maint_off ->
          List.iter (fun m -> Pmv.Manager.set_adaptive_all m false) managers;
          Maint_report "heavy-light adaptive maintenance disabled (pure eager)"
      | Ast.Maint_status ->
          (* sum per template across shards *)
          let rows = Hashtbl.create 8 in
          let order = ref [] in
          List.iter
            (fun m ->
              List.iter
                (fun view ->
                  let name = Pmv.View.name view in
                  let store = Pmv.View.store view in
                  let on, heavy, light =
                    match Pmv.View.adaptive view with
                    | Some ad -> (true, Pmv.Adaptive.n_heavy ad, Pmv.Adaptive.n_light ad)
                    | None -> (false, 0, 0)
                  in
                  let lapsed = Pmv.Entry_store.n_lapse_marked store in
                  let recomputed = Pmv.Entry_store.n_lapse_recomputed store in
                  match Hashtbl.find_opt rows name with
                  | Some (o, h, l, la, re) ->
                      Hashtbl.replace rows name
                        (o || on, h + heavy, l + light, la + lapsed, re + recomputed)
                  | None ->
                      order := name :: !order;
                      Hashtbl.replace rows name (on, heavy, light, lapsed, recomputed))
                (Pmv.Manager.views m))
            managers;
          let b = Buffer.create 256 in
          Buffer.add_string b
            (Fmt.str "%-16s %-9s %-8s %-8s %-8s %-10s" "template" "adaptive" "heavy"
               "light" "lapsed" "recomputed");
          List.iter
            (fun name ->
              let on, h, l, la, re = Hashtbl.find rows name in
              Buffer.add_string b
                (Fmt.str "@.%-16s %-9s %-8d %-8d %-8d %-10d" name
                   (if on then "on" else "off")
                   h l la re))
            (List.rev !order);
          if !order = [] then Buffer.add_string b "\n(no views)";
          Maint_report (Buffer.contents b))
  | Ast.St_budget { arg } -> (
      (* global UB budget arbitration (DESIGN.md Section 17). With a
         router, TOTAL is per shard — consistent with create_view's
         per-shard ub_bytes, the scale-out lever. *)
      let managers =
        match t.router with
        | Some router -> List.map Engine.manager (Router.shards router)
        | None -> [ manager t ]
      in
      match arg with
      | Ast.Budget_total bytes ->
          List.iter (fun m -> Pmv.Manager.set_global_budget ~auto_every:256 m bytes) managers;
          Budget_report
            (Fmt.str
               "global UB budget set to %d bytes%s, auto-rebalance every 256 queries"
               bytes
               (if List.length managers > 1 then " per shard" else ""))
      | Ast.Budget_rebalance ->
          let moves = List.concat_map Pmv.Manager.rebalance managers in
          if moves = [] then
            Budget_report "no budget armed (BUDGET TOTAL <bytes> first) or no views"
          else
            Budget_report
              (String.concat ", "
                 (List.map (fun (name, l) -> Fmt.str "%s -> L=%d" name l) moves))
      | Ast.Budget_status ->
          let b = Buffer.create 128 in
          List.iteri
            (fun i m ->
              if i > 0 then Buffer.add_string b "\n";
              let budget =
                match Pmv.Manager.global_budget m with
                | Some total -> Fmt.str "%d bytes" total
                | None -> "not armed"
              in
              Buffer.add_string b
                (Fmt.str "%sbudget %s, %d rebalances, %d views holding %d bytes"
                   (if List.length managers > 1 then Fmt.str "shard %d: " i else "")
                   budget (Pmv.Manager.rebalances m) (Pmv.Manager.n_views m)
                   (Pmv.Manager.total_bytes m)))
            managers;
          Budget_report (Buffer.contents b))
  | Ast.St_delete { table; where } ->
      if not (Catalog.mem (catalog t) table) then fail "unknown relation %s" table;
      let schema = Catalog.schema (catalog t) table in
      let pred = delete_pred schema where in
      let deltas = run_changes t [ Minirel_txn.Txn.Delete { rel = table; pred } ] in
      Deleted
        (List.fold_left
           (fun acc d -> acc + List.length d.Minirel_txn.Txn.deleted)
           0 deltas)

(* Execute one statement.
   @raise Error (plus the frontend's Lexer/Parser/Binder errors and
   Invalid_argument) on bad input. *)
let exec t sql =
  let result = exec_statement t sql in
  (match t.recorder with Some f -> f sql | None -> ());
  result

let pp_result ppf = function
  | Rows { header; rows; from_pmv; total; overhead_ns } ->
      Fmt.pf ppf "%s@." (String.concat " | " header);
      List.iter (fun row -> Fmt.pf ppf "%a@." Tuple.pp row) rows;
      Fmt.pf ppf "%d rows (%d from the PMV, %d before limit), overhead %.1f µs"
        (List.length rows) from_pmv total
        (Int64.to_float overhead_ns /. 1e3)
  | Grouped { header; groups; partial_groups } ->
      Fmt.pf ppf "%s@." (String.concat " | " header);
      List.iter
        (fun (key, aggs) ->
          Fmt.pf ppf "%a -> %a@." Tuple.pp key Fmt.(list ~sep:comma Value.pp) aggs)
        groups;
      Fmt.pf ppf "%d groups (%d previewed early from the PMV)" (List.length groups)
        (List.length partial_groups)
  | Table_created name -> Fmt.pf ppf "table %s created" name
  | Index_created name -> Fmt.pf ppf "index %s created" name
  | Inserted n -> Fmt.pf ppf "%d row inserted" n
  | Updated n -> Fmt.pf ppf "%d rows updated" n
  | Deleted n -> Fmt.pf ppf "%d rows deleted" n
  | Explained text -> Fmt.pf ppf "%s" text
  | Traced text -> Fmt.pf ppf "%s" text
  | Metrics text -> Fmt.pf ppf "%s" text
  | Slo_report text -> Fmt.pf ppf "%s" text
  | Flight_dump text -> Fmt.pf ppf "%s" text
  | Maint_report text -> Fmt.pf ppf "%s" text
  | Budget_report text -> Fmt.pf ppf "%s" text
