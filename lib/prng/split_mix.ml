(* SplitMix64: a tiny, fast, deterministic PRNG. Every experiment and
   fault-injection campaign is seeded so that paper-figure regeneration
   and torture replays are reproducible run to run.

   This is the leaf copy: both the workload generators and the fault
   registry depend on it, so it must not depend on any other minirel
   library. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* Seed from a raw 64-bit state, e.g. a stream derived by hashing. *)
let of_int64 state = { state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(* Uniform int in [0, bound). @raise Invalid_argument if bound <= 0. *)
let int t ~bound =
  if bound <= 0 then invalid_arg "Split_mix.int: bound must be positive";
  (* mask the native sign bit: Int64.to_int keeps the low 63 bits, whose
     top bit would otherwise make the result negative *)
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

(* Uniform int in [lo, hi]. *)
let int_range t ~lo ~hi =
  if hi < lo then invalid_arg "Split_mix.int_range";
  lo + int t ~bound:(hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* An independent child stream, SplitMix-style: the parent advances one
   step and the (already avalanche-mixed) output seeds the child, so
   repeated splits yield decorrelated streams and the whole tree of
   streams is a pure function of the root seed — per-domain determinism
   for parallel workloads. *)
let split t = of_int64 (next_int64 t)

(* [n] distinct ints sampled by [draw]; gives up (returns fewer) only if
   the domain is too small after many retries. *)
let distinct t ~n draw =
  let seen = Hashtbl.create (2 * n) in
  let rec go acc count tries =
    if count >= n || tries > 1000 * n then List.rev acc
    else
      let x = draw t in
      if Hashtbl.mem seen x then go acc count (tries + 1)
      else begin
        Hashtbl.replace seen x ();
        go (x :: acc) (count + 1) (tries + 1)
      end
  in
  go [] 0 0

(* Fisher-Yates shuffle, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
