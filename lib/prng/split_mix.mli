(** SplitMix64: a tiny, fast, deterministic PRNG. Every experiment and
    fault-injection campaign is seeded so paper-figure regeneration and
    torture replays are reproducible run to run. Leaf library: no
    minirel dependencies. *)

type t

val create : seed:int -> t

(** Seed from a raw 64-bit state (e.g. a derived per-site stream). *)
val of_int64 : int64 -> t

val next_int64 : t -> int64

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [0, bound). @raise Invalid_argument if [bound <= 0]. *)
val int : t -> bound:int -> int

(** Uniform in [lo, hi]. @raise Invalid_argument if [hi < lo]. *)
val int_range : t -> lo:int -> hi:int -> int

val bool : t -> bool

(** An independent child stream seeded from the parent's next (mixed)
    output; the parent advances one step. Deterministic: the tree of
    split streams is a pure function of the root seed, giving each
    domain of a parallel run its own reproducible stream. *)
val split : t -> t

(** [distinct t ~n draw]: up to [n] distinct samples of [draw]; fewer
    only when the effective domain is too small after many retries. *)
val distinct : t -> n:int -> (t -> 'a) -> 'a list

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
