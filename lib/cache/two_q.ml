(* Simplified 2Q [Johnson & Shasha, VLDB'94] exactly as specialised in
   Section 4.1 of the paper:

   - [Am]: N entries, managed by CLOCK, each holding a basic condition
     part and its data (the resident set).
   - [A1]: a FIFO ghost queue of N' = 50% x N entries holding keys only.

   The first reference of a cold key stages it in A1 ([`Rejected]). A
   second reference while it is still staged promotes it to Am
   ([`Admitted]). References of Am keys behave like CLOCK hits. *)

type 'k state = {
  am : 'k Policy.t;
  a1 : 'k Queue.t;  (* FIFO of staged keys; may hold stale entries *)
  a1_mem : ('k, unit) Hashtbl.t;  (* live staged keys *)
  mutable a1_capacity : int;
  stats : Cache_stats.t;
}

(* Drop stale queue heads (keys promoted or explicitly removed). *)
let rec compact st =
  match Queue.peek_opt st.a1 with
  | Some k when not (Hashtbl.mem st.a1_mem k) ->
      ignore (Queue.pop st.a1);
      compact st
  | _ -> ()

(* Drop the oldest live ghost. *)
let rec pop_live st =
  match Queue.pop st.a1 with
  | victim when Hashtbl.mem st.a1_mem victim -> Hashtbl.remove st.a1_mem victim
  | _ -> pop_live st
  | exception Queue.Empty -> ()

let stage st k =
  compact st;
  if Hashtbl.length st.a1_mem >= st.a1_capacity then pop_live st;
  Queue.push k st.a1;
  Hashtbl.replace st.a1_mem k ()

let create ~capacity : 'k Policy.t =
  if capacity <= 0 then invalid_arg "Two_q.create: capacity must be positive";
  let a1_capacity = max 1 (capacity / 2) in
  let st =
    {
      am = Clock.create ~capacity;
      a1 = Queue.create ();
      a1_mem = Hashtbl.create (4 * a1_capacity);
      a1_capacity;
      stats = Cache_stats.create ();
    }
  in
  let mem k = Policy.mem st.am k in
  let reference k =
    st.stats.Cache_stats.references <- st.stats.Cache_stats.references + 1;
    if Policy.mem st.am k then begin
      (match Policy.reference st.am k with
      | `Resident -> ()
      | `Admitted | `Rejected -> assert false);
      st.stats.Cache_stats.hits <- st.stats.Cache_stats.hits + 1;
      `Resident
    end
    else if Hashtbl.mem st.a1_mem k then begin
      Hashtbl.remove st.a1_mem k;
      Policy.admit st.am k;
      st.stats.Cache_stats.admissions <- st.stats.Cache_stats.admissions + 1;
      `Admitted
    end
    else begin
      stage st k;
      st.stats.Cache_stats.rejections <- st.stats.Cache_stats.rejections + 1;
      `Rejected
    end
  in
  let admit k =
    if not (Policy.mem st.am k) then begin
      Hashtbl.remove st.a1_mem k;
      Policy.admit st.am k;
      st.stats.Cache_stats.admissions <- st.stats.Cache_stats.admissions + 1
    end
  in
  let remove k =
    Policy.remove st.am k;
    Hashtbl.remove st.a1_mem k
  in
  let size () = Policy.size st.am in
  let iter f = Policy.iter st.am f in
  let set_on_evict f =
    Policy.set_on_evict st.am (fun k ->
        st.stats.Cache_stats.evictions <- st.stats.Cache_stats.evictions + 1;
        f k)
  in
  let resize n =
    (* Am carries the residents; A1 rescales to 50% and sheds its
       oldest ghosts (keys only, so no eviction reports) *)
    Policy.resize st.am n;
    st.a1_capacity <- max 1 (n / 2);
    while Hashtbl.length st.a1_mem > st.a1_capacity do
      pop_live st
    done
  in
  {
    Policy.name = "2q";
    capacity;
    admit_on_fill = false;
    mem;
    reference;
    admit;
    remove;
    size;
    iter;
    set_on_evict;
    resize;
    stats = st.stats;
  }
