(** Counters shared by every replacement policy. *)

type t = {
  mutable references : int;  (** total [reference] calls *)
  mutable hits : int;  (** references that found the key resident *)
  mutable admissions : int;  (** keys made resident *)
  mutable rejections : int;  (** references recorded without residency *)
  mutable evictions : int;  (** resident keys pushed out *)
}

val create : unit -> t
val reset : t -> unit

(** Stable name/value pairs for telemetry registration. *)
val to_list : t -> (string * int) list

val hit_ratio : t -> float
val pp : t Fmt.t
