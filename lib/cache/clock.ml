(* CLOCK (second-chance) replacement, the paper's default manager for the
   basic condition parts stored in a PMV (Section 3.2).

   Resident keys live in a circular array of slots, each with a reference
   bit. A hit sets the bit; admission fills a free slot if one exists,
   otherwise sweeps the hand, clearing bits, and evicts the first slot
   found with a clear bit. *)

type 'k slot = { mutable key : 'k option; mutable refbit : bool }

type 'k state = {
  mutable slots : 'k slot array;
  pos : ('k, int) Hashtbl.t;  (* key -> slot index *)
  mutable hand : int;
  mutable free : int list;  (* empty slot indexes *)
  mutable on_evict : 'k -> unit;
  stats : Cache_stats.t;
}

(* Sweep the hand until a slot with a clear reference bit is found,
   clearing bits on the way. Terminates: after one full revolution every
   bit is clear. Only called when no slot is free, so every slot holds a
   key. *)
let find_victim st =
  let n = Array.length st.slots in
  let rec sweep () =
    let i = st.hand in
    st.hand <- (st.hand + 1) mod n;
    let s = st.slots.(i) in
    if s.refbit then begin
      s.refbit <- false;
      sweep ()
    end
    else i
  in
  sweep ()

let evict_at st i =
  let s = st.slots.(i) in
  match s.key with
  | None -> ()
  | Some k ->
      s.key <- None;
      s.refbit <- false;
      Hashtbl.remove st.pos k;
      st.stats.Cache_stats.evictions <- st.stats.Cache_stats.evictions + 1;
      st.on_evict k

let admit st k =
  let i =
    match st.free with
    | i :: rest ->
        st.free <- rest;
        i
    | [] ->
        let i = find_victim st in
        evict_at st i;
        i
  in
  let s = st.slots.(i) in
  s.key <- Some k;
  s.refbit <- true;
  Hashtbl.replace st.pos k i

(* Rebuild the circular array at the new size. Shrinking first evicts
   by the normal hand sweep until the survivors fit; the rebuild packs
   surviving slots in hand order (so second-chance order is preserved)
   and resets the hand to the front. *)
let resize st n =
  let old_n = Array.length st.slots in
  if n <> old_n then begin
    while Hashtbl.length st.pos > n do
      evict_at st (find_victim st)
    done;
    let slots = Array.init n (fun _ -> { key = None; refbit = false }) in
    let filled = ref 0 in
    for d = 0 to old_n - 1 do
      let s = st.slots.((st.hand + d) mod old_n) in
      match s.key with
      | Some k ->
          slots.(!filled).key <- Some k;
          slots.(!filled).refbit <- s.refbit;
          Hashtbl.replace st.pos k !filled;
          incr filled
      | None -> ()
    done;
    st.slots <- slots;
    st.hand <- 0;
    st.free <- List.init (n - !filled) (fun i -> n - 1 - i)
  end

let create ~capacity : 'k Policy.t =
  if capacity <= 0 then invalid_arg "Clock.create: capacity must be positive";
  let st =
    {
      slots = Array.init capacity (fun _ -> { key = None; refbit = false });
      pos = Hashtbl.create (2 * capacity);
      hand = 0;
      free = List.init capacity (fun i -> i);
      on_evict = ignore;
      stats = Cache_stats.create ();
    }
  in
  let mem k = Hashtbl.mem st.pos k in
  let reference k =
    st.stats.Cache_stats.references <- st.stats.Cache_stats.references + 1;
    match Hashtbl.find_opt st.pos k with
    | Some i ->
        st.slots.(i).refbit <- true;
        st.stats.Cache_stats.hits <- st.stats.Cache_stats.hits + 1;
        `Resident
    | None ->
        st.stats.Cache_stats.rejections <- st.stats.Cache_stats.rejections + 1;
        `Rejected
  in
  let admit k =
    if not (Hashtbl.mem st.pos k) then begin
      admit st k;
      st.stats.Cache_stats.admissions <- st.stats.Cache_stats.admissions + 1
    end
  in
  let remove k =
    match Hashtbl.find_opt st.pos k with
    | None -> ()
    | Some i ->
        let s = st.slots.(i) in
        s.key <- None;
        s.refbit <- false;
        Hashtbl.remove st.pos k;
        st.free <- i :: st.free
  in
  let size () = Hashtbl.length st.pos in
  let iter f = Hashtbl.iter (fun k _ -> f k) st.pos in
  let set_on_evict f = st.on_evict <- f in
  {
    Policy.name = "clock";
    capacity;
    admit_on_fill = true;
    mem;
    reference;
    admit;
    remove;
    size;
    iter;
    set_on_evict;
    resize = (fun n -> resize st n);
    stats = st.stats;
  }
