(* LRU replacement via an intrusive doubly-linked list plus a hash table.
   Included for the policy ablation (the paper uses CLOCK and 2Q). *)

type 'k node = {
  key : 'k;
  mutable prev : 'k node option;
  mutable next : 'k node option;
}

type 'k state = {
  tbl : ('k, 'k node) Hashtbl.t;
  mutable head : 'k node option;  (* most recently used *)
  mutable tail : 'k node option;  (* least recently used *)
  mutable capacity : int;
  mutable on_evict : 'k -> unit;
  stats : Cache_stats.t;
}

let unlink st n =
  (match n.prev with Some p -> p.next <- n.next | None -> st.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> st.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front st n =
  n.next <- st.head;
  n.prev <- None;
  (match st.head with Some h -> h.prev <- Some n | None -> st.tail <- Some n);
  st.head <- Some n

let evict_lru st =
  match st.tail with
  | None -> ()
  | Some n ->
      unlink st n;
      Hashtbl.remove st.tbl n.key;
      st.stats.Cache_stats.evictions <- st.stats.Cache_stats.evictions + 1;
      st.on_evict n.key

let create ~capacity : 'k Policy.t =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  let st =
    {
      tbl = Hashtbl.create (2 * capacity);
      head = None;
      tail = None;
      capacity;
      on_evict = ignore;
      stats = Cache_stats.create ();
    }
  in
  let mem k = Hashtbl.mem st.tbl k in
  let reference k =
    st.stats.Cache_stats.references <- st.stats.Cache_stats.references + 1;
    match Hashtbl.find_opt st.tbl k with
    | Some n ->
        unlink st n;
        push_front st n;
        st.stats.Cache_stats.hits <- st.stats.Cache_stats.hits + 1;
        `Resident
    | None ->
        st.stats.Cache_stats.rejections <- st.stats.Cache_stats.rejections + 1;
        `Rejected
  in
  let admit k =
    if not (Hashtbl.mem st.tbl k) then begin
      if Hashtbl.length st.tbl >= st.capacity then evict_lru st;
      let n = { key = k; prev = None; next = None } in
      push_front st n;
      Hashtbl.replace st.tbl k n;
      st.stats.Cache_stats.admissions <- st.stats.Cache_stats.admissions + 1
    end
  in
  let remove k =
    match Hashtbl.find_opt st.tbl k with
    | None -> ()
    | Some n ->
        unlink st n;
        Hashtbl.remove st.tbl k
  in
  let size () = Hashtbl.length st.tbl in
  let iter f = Hashtbl.iter (fun k _ -> f k) st.tbl in
  let set_on_evict f = st.on_evict <- f in
  let resize n =
    st.capacity <- n;
    while Hashtbl.length st.tbl > st.capacity do
      evict_lru st
    done
  in
  {
    Policy.name = "lru";
    capacity;
    admit_on_fill = true;
    mem;
    reference;
    admit;
    remove;
    size;
    iter;
    set_on_evict;
    resize;
    stats = st.stats;
  }
