(* Uniform interface over replacement policies.

   A policy manages a bounded set of *resident* keys. Residency is what
   entitles the owner (buffer pool, PMV entry store) to hold data for
   the key. Two operations mutate the recency state:

   [reference k] records one access without forcing residency:
   - [`Resident]: already resident; recency updated (e.g. CLOCK refbit).
   - [`Admitted]: the reference itself made the key resident — only 2Q
     does this, promoting a ghost-staged key from A1 to Am (Section 4.1
     of the paper). Victims are reported through the eviction callback.
   - [`Rejected]: not resident. CLOCK/LRU/FIFO leave the state
     untouched; 2Q stages the key in its ghost queue A1.

   [admit k] forces residency, evicting as needed; a no-op when already
   resident. Owners with [admit_on_fill = true] (CLOCK/LRU/FIFO) call
   it when data to cache actually materialises — the paper's Operation
   O3, where a new bcp enters the PMV only once a result tuple arrives.
   2Q sets [admit_on_fill = false]: residency is earned by a second
   query-time reference, never by fill. *)

type outcome = [ `Resident | `Admitted | `Rejected ]

type 'k t = {
  name : string;
  mutable capacity : int;
  admit_on_fill : bool;
  mem : 'k -> bool;
  reference : 'k -> outcome;
  admit : 'k -> unit;
  remove : 'k -> unit;  (** drop the key if resident (or staged); no-op otherwise *)
  size : unit -> int;  (** number of resident keys *)
  iter : ('k -> unit) -> unit;  (** over resident keys, unspecified order *)
  set_on_evict : ('k -> unit) -> unit;
  resize : int -> unit;  (** change the resident bound; shrink evicts *)
  stats : Cache_stats.t;
}

let name t = t.name
let capacity t = t.capacity

(* Change the resident-key bound in place. Shrinking evicts victims in
   the policy's own replacement order, reported through the eviction
   callback; growing only raises the bound (ghost/stage areas rescale
   with it). *)
let resize t n =
  if n <= 0 then invalid_arg "Policy.resize: capacity must be positive";
  if n <> t.capacity then begin
    t.resize n;
    t.capacity <- n
  end
let admit_on_fill t = t.admit_on_fill
let mem t k = t.mem k
let reference t k = t.reference k
let admit t k = t.admit k
let remove t k = t.remove k
let size t = t.size ()
let iter t f = t.iter f
let set_on_evict t f = t.set_on_evict f
let stats t = t.stats
