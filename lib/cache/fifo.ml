(* FIFO replacement: evict in admission order, ignore recency. Included
   as the weakest baseline for the policy ablation. *)

type 'k state = {
  order : 'k Queue.t;  (* admission order; may hold stale entries *)
  tbl : ('k, unit) Hashtbl.t;
  mutable capacity : int;
  mutable on_evict : 'k -> unit;
  stats : Cache_stats.t;
}

let evict_oldest st =
  let rec pop () =
    match Queue.pop st.order with
    | k when Hashtbl.mem st.tbl k ->
        Hashtbl.remove st.tbl k;
        st.stats.Cache_stats.evictions <- st.stats.Cache_stats.evictions + 1;
        st.on_evict k
    | _ -> pop ()
    | exception Queue.Empty -> ()
  in
  pop ()

let create ~capacity : 'k Policy.t =
  if capacity <= 0 then invalid_arg "Fifo.create: capacity must be positive";
  let st =
    {
      order = Queue.create ();
      tbl = Hashtbl.create (2 * capacity);
      capacity;
      on_evict = ignore;
      stats = Cache_stats.create ();
    }
  in
  let mem k = Hashtbl.mem st.tbl k in
  let reference k =
    st.stats.Cache_stats.references <- st.stats.Cache_stats.references + 1;
    if Hashtbl.mem st.tbl k then begin
      st.stats.Cache_stats.hits <- st.stats.Cache_stats.hits + 1;
      `Resident
    end
    else begin
      st.stats.Cache_stats.rejections <- st.stats.Cache_stats.rejections + 1;
      `Rejected
    end
  in
  let admit k =
    if not (Hashtbl.mem st.tbl k) then begin
      if Hashtbl.length st.tbl >= st.capacity then evict_oldest st;
      Queue.push k st.order;
      Hashtbl.replace st.tbl k ();
      st.stats.Cache_stats.admissions <- st.stats.Cache_stats.admissions + 1
    end
  in
  let remove k = Hashtbl.remove st.tbl k in
  let size () = Hashtbl.length st.tbl in
  let iter f = Hashtbl.iter (fun k _ -> f k) st.tbl in
  let set_on_evict f = st.on_evict <- f in
  let resize n =
    st.capacity <- n;
    while Hashtbl.length st.tbl > st.capacity do
      evict_oldest st
    done
  in
  {
    Policy.name = "fifo";
    capacity;
    admit_on_fill = true;
    mem;
    reference;
    admit;
    remove;
    size;
    iter;
    set_on_evict;
    resize;
    stats = st.stats;
  }
