(** Uniform interface over replacement policies (CLOCK, 2Q, LRU, FIFO).

    A policy manages a bounded set of {e resident} keys. Residency is
    what entitles the owner (buffer pool, PMV entry store) to hold data
    for the key. Two operations mutate the recency state:

    [reference k] records one access without forcing residency:
    - [`Resident]: already resident; recency updated (CLOCK refbit,
      LRU move-to-front).
    - [`Admitted]: the reference itself made the key resident — only 2Q
      does this, promoting a key from its ghost queue A1 to Am (the
      paper's Section 4.1 behaviour). Victims are reported through the
      eviction callback first.
    - [`Rejected]: not resident. CLOCK/LRU/FIFO leave the state
      untouched; 2Q stages the key in A1.

    [admit k] forces residency, evicting as needed; a no-op when the
    key is already resident. Owners consult [admit_on_fill]: CLOCK,
    LRU and FIFO admit when data to cache materialises (the paper's
    Operation O3); 2Q never admits on fill — residency is earned by a
    second query-time reference. *)

type outcome = [ `Resident | `Admitted | `Rejected ]

type 'k t = {
  name : string;
  mutable capacity : int;
  admit_on_fill : bool;
  mem : 'k -> bool;
  reference : 'k -> outcome;
  admit : 'k -> unit;
  remove : 'k -> unit;
  size : unit -> int;
  iter : ('k -> unit) -> unit;
  set_on_evict : ('k -> unit) -> unit;
  resize : int -> unit;
  stats : Cache_stats.t;
}

val name : 'k t -> string
val capacity : 'k t -> int

(** Change the resident-key bound in place (the budget arbiter's
    rebalance). Shrinking evicts victims in the policy's own
    replacement order through the eviction callback; growing only
    raises the bound. @raise Invalid_argument when [n <= 0]. *)
val resize : 'k t -> int -> unit

val admit_on_fill : 'k t -> bool

(** Whether the key is resident (data-holding). *)
val mem : 'k t -> 'k -> bool

val reference : 'k t -> 'k -> outcome
val admit : 'k t -> 'k -> unit

(** Drop the key if resident or staged; no-op otherwise. The eviction
    callback is {e not} invoked for explicit removals. *)
val remove : 'k t -> 'k -> unit

(** Number of resident keys. *)
val size : 'k t -> int

(** Iterate resident keys, unspecified order. *)
val iter : 'k t -> ('k -> unit) -> unit

val set_on_evict : 'k t -> ('k -> unit) -> unit
val stats : 'k t -> Cache_stats.t
