(* Full 2Q [Johnson & Shasha, VLDB'94], as opposed to the simplified
   variant the paper's Section 4.1 uses:

   - [A1in]: a FIFO of recently admitted, data-holding entries
     (Kin = 25% of the capacity);
   - [A1out]: a ghost FIFO of keys recently evicted from A1in
     (Kout = 50% of the capacity, keys only);
   - [Am]: an LRU of proven-hot entries (the remaining 75%).

   A cold key is admitted into A1in immediately (unlike simplified 2Q);
   a reference while ghost-staged in A1out promotes to Am; A1in hits do
   not promote. [admit_on_fill] is false: [reference] already admits. *)

type 'k state = {
  am : 'k Policy.t;  (* LRU *)
  a1in : 'k Queue.t;
  a1in_mem : ('k, unit) Hashtbl.t;
  mutable a1in_capacity : int;
  a1out : 'k Queue.t;  (* ghosts; may hold stale entries *)
  a1out_mem : ('k, unit) Hashtbl.t;
  mutable a1out_capacity : int;
  mutable on_evict : 'k -> unit;
  stats : Cache_stats.t;
}

let rec ghost_compact st =
  match Queue.peek_opt st.a1out with
  | Some k when not (Hashtbl.mem st.a1out_mem k) ->
      ignore (Queue.pop st.a1out);
      ghost_compact st
  | _ -> ()

(* Drop the oldest live ghost. *)
let rec ghost_pop_live st =
  match Queue.pop st.a1out with
  | victim when Hashtbl.mem st.a1out_mem victim -> Hashtbl.remove st.a1out_mem victim
  | _ -> ghost_pop_live st
  | exception Queue.Empty -> ()

let ghost_stage st k =
  ghost_compact st;
  if Hashtbl.length st.a1out_mem >= st.a1out_capacity then ghost_pop_live st;
  Queue.push k st.a1out;
  Hashtbl.replace st.a1out_mem k ()

(* Evict A1in's oldest resident to the ghost queue. *)
let rec a1in_pop_live st =
  match Queue.pop st.a1in with
  | victim when Hashtbl.mem st.a1in_mem victim ->
      Hashtbl.remove st.a1in_mem victim;
      st.stats.Cache_stats.evictions <- st.stats.Cache_stats.evictions + 1;
      st.on_evict victim;
      ghost_stage st victim
  | _ -> a1in_pop_live st
  | exception Queue.Empty -> ()

(* Admit into A1in, spilling its oldest resident to the ghost queue. *)
let a1in_admit st k =
  if Hashtbl.length st.a1in_mem >= st.a1in_capacity then a1in_pop_live st;
  Queue.push k st.a1in;
  Hashtbl.replace st.a1in_mem k ()

let create ~capacity : 'k Policy.t =
  if capacity <= 0 then invalid_arg "Two_q_full.create: capacity must be positive";
  (* capacity 1 degenerates to a pure LRU: no room for a separate A1in *)
  let a1in_capacity = if capacity < 2 then 0 else max 1 (capacity / 4) in
  let am_capacity = max 1 (capacity - a1in_capacity) in
  let st =
    {
      am = Lru.create ~capacity:am_capacity;
      a1in = Queue.create ();
      a1in_mem = Hashtbl.create (4 * a1in_capacity);
      a1in_capacity;
      a1out = Queue.create ();
      a1out_mem = Hashtbl.create capacity;
      a1out_capacity = max 1 (capacity / 2);
      on_evict = ignore;
      stats = Cache_stats.create ();
    }
  in
  Policy.set_on_evict st.am (fun k ->
      st.stats.Cache_stats.evictions <- st.stats.Cache_stats.evictions + 1;
      st.on_evict k);
  let mem k = Policy.mem st.am k || Hashtbl.mem st.a1in_mem k in
  let admit_cold k =
    if Hashtbl.mem st.a1out_mem k then begin
      (* proven hot: straight into Am *)
      Hashtbl.remove st.a1out_mem k;
      Policy.admit st.am k
    end
    else if st.a1in_capacity = 0 then Policy.admit st.am k
    else a1in_admit st k
  in
  let reference k =
    st.stats.Cache_stats.references <- st.stats.Cache_stats.references + 1;
    if Policy.mem st.am k then begin
      (match Policy.reference st.am k with
      | `Resident -> ()
      | `Admitted | `Rejected -> assert false);
      st.stats.Cache_stats.hits <- st.stats.Cache_stats.hits + 1;
      `Resident
    end
    else if Hashtbl.mem st.a1in_mem k then begin
      (* classic 2Q: an A1in hit does not promote *)
      st.stats.Cache_stats.hits <- st.stats.Cache_stats.hits + 1;
      `Resident
    end
    else begin
      admit_cold k;
      st.stats.Cache_stats.admissions <- st.stats.Cache_stats.admissions + 1;
      `Admitted
    end
  in
  let admit k = if not (mem k) then admit_cold k in
  let remove k =
    Policy.remove st.am k;
    Hashtbl.remove st.a1in_mem k;
    Hashtbl.remove st.a1out_mem k
  in
  let size () = Policy.size st.am + Hashtbl.length st.a1in_mem in
  let iter f =
    Policy.iter st.am f;
    Hashtbl.iter (fun k () -> f k) st.a1in_mem
  in
  let set_on_evict f = st.on_evict <- f in
  let resize n =
    (* recompute all three areas from the new total, spilling A1in
       overflow to the ghost queue before Am shrinks *)
    st.a1in_capacity <- (if n < 2 then 0 else max 1 (n / 4));
    st.a1out_capacity <- max 1 (n / 2);
    while Hashtbl.length st.a1in_mem > st.a1in_capacity do
      a1in_pop_live st
    done;
    Policy.resize st.am (max 1 (n - st.a1in_capacity));
    while Hashtbl.length st.a1out_mem > st.a1out_capacity do
      ghost_pop_live st
    done
  in
  {
    Policy.name = "2q-full";
    capacity;
    admit_on_fill = false;
    mem;
    reference;
    admit;
    remove;
    size;
    iter;
    set_on_evict;
    resize;
    stats = st.stats;
  }
