(* Counters shared by every replacement policy. *)

type t = {
  mutable references : int;  (** total [reference] calls *)
  mutable hits : int;        (** references that found the key resident *)
  mutable admissions : int;  (** references that made the key resident *)
  mutable rejections : int;  (** references recorded but not admitted (ghost stage) *)
  mutable evictions : int;   (** resident keys pushed out to make room *)
}

let create () =
  { references = 0; hits = 0; admissions = 0; rejections = 0; evictions = 0 }

let reset t =
  t.references <- 0;
  t.hits <- 0;
  t.admissions <- 0;
  t.rejections <- 0;
  t.evictions <- 0

(* Stable name/value pairs for telemetry registration; the same names
   appear under every policy-backed source (buffer pool, PMV store). *)
let to_list t =
  [
    ("references", t.references);
    ("hits", t.hits);
    ("admissions", t.admissions);
    ("rejections", t.rejections);
    ("evictions", t.evictions);
  ]

let hit_ratio t =
  if t.references = 0 then 0.0
  else float_of_int t.hits /. float_of_int t.references

let pp ppf t =
  Fmt.pf ppf "refs=%d hits=%d adm=%d rej=%d evict=%d (hit ratio %.4f)"
    t.references t.hits t.admissions t.rejections t.evictions (hit_ratio t)
