(** Bind a parsed query against a catalog: resolve relations and
    attributes, split WHERE into Cjoin (joins + fixed predicates,
    unparenthesised) and Cselect (the parenthesised groups, one Ci
    each), and extract this query's parameters. Queries with the same
    structure but different literals share a canonical [signature]. *)

open Minirel_query

exception Error of string

type exists_clause = {
  ex_spec : Template.spec;  (** the subquery's own template *)
  ex_params : Instance.disjuncts option array;
      (** [None] marks a correlated slot, filled per outer row *)
  ex_correlated : (int * Template.attr_ref) list;
      (** selection slot -> OUTER attribute supplying the equality *)
  ex_signature : string;
}

type bound = {
  spec : Template.spec;
  params : Instance.disjuncts array;
  signature : string;  (** canonical template identity *)
  distinct : bool;
  visible : Template.attr_ref list;
      (** the user's plain select attributes, in written order — the
          columns a result row shows (the template's [select_list] may
          carry more: order keys, EXISTS correlation attrs) *)
  aggregates : (Ast.agg_fun * Template.attr_ref option) list;
      (** aggregate select items, in order; empty for plain queries *)
  group_by : Template.attr_ref list;
  order_by : (Template.attr_ref * bool) list;  (** attr, descending *)
  limit : int option;
  exists_ : exists_clause list;
}

(** Interval grids for interval-form selection attributes, keyed by
    (relation name, attribute name); attributes without one get a
    single full-domain basic interval. *)
type grids = (string * string) * Discretize.t

(** @raise Error on unresolvable or ill-formed queries. *)
val bind : ?grids:grids list -> Minirel_index.Catalog.t -> Ast.query -> bound
