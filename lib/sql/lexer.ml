(* Hand-written lexer for the SQL subset. Case-insensitive keywords,
   single-quoted strings with '' escapes, ints and floats, and the
   operator set the template grammar needs. *)

type token =
  | SELECT
  | FROM
  | WHERE
  | AND
  | OR
  | BETWEEN
  | IN
  | CREATE
  | TABLE
  | INDEX
  | ON
  | INSERT
  | INTO
  | VALUES
  | DELETE
  | UPDATE
  | SET
  | DISTINCT
  | EXISTS
  | EXPLAIN
  | TRACE
  | METRICS
  | SLO
  | FLIGHT
  | MAINT
  | BUDGET
  | GROUP
  | ORDER
  | BY
  | ASC
  | DESC
  | LIMIT
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | COMMA
  | DOT
  | LPAREN
  | RPAREN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | STAR
  | EOF

let token_to_string = function
  | SELECT -> "SELECT"
  | FROM -> "FROM"
  | WHERE -> "WHERE"
  | AND -> "AND"
  | OR -> "OR"
  | BETWEEN -> "BETWEEN"
  | IN -> "IN"
  | CREATE -> "CREATE"
  | TABLE -> "TABLE"
  | INDEX -> "INDEX"
  | ON -> "ON"
  | INSERT -> "INSERT"
  | INTO -> "INTO"
  | VALUES -> "VALUES"
  | DELETE -> "DELETE"
  | UPDATE -> "UPDATE"
  | SET -> "SET"
  | DISTINCT -> "DISTINCT"
  | EXISTS -> "EXISTS"
  | EXPLAIN -> "EXPLAIN"
  | TRACE -> "TRACE"
  | METRICS -> "METRICS"
  | SLO -> "SLO"
  | FLIGHT -> "FLIGHT"
  | MAINT -> "MAINT"
  | BUDGET -> "BUDGET"
  | GROUP -> "GROUP"
  | ORDER -> "ORDER"
  | BY -> "BY"
  | ASC -> "ASC"
  | DESC -> "DESC"
  | LIMIT -> "LIMIT"
  | IDENT s -> Fmt.str "identifier %S" s
  | INT i -> Fmt.str "integer %d" i
  | FLOAT f -> Fmt.str "float %g" f
  | STRING s -> Fmt.str "string %S" s
  | COMMA -> "','"
  | DOT -> "'.'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | EQ -> "'='"
  | NE -> "'<>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | STAR -> "'*'"
  | EOF -> "end of input"

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keyword_of_string s =
  match String.lowercase_ascii s with
  | "select" -> Some SELECT
  | "from" -> Some FROM
  | "where" -> Some WHERE
  | "and" -> Some AND
  | "or" -> Some OR
  | "between" -> Some BETWEEN
  | "in" -> Some IN
  | "create" -> Some CREATE
  | "table" -> Some TABLE
  | "index" -> Some INDEX
  | "on" -> Some ON
  | "insert" -> Some INSERT
  | "into" -> Some INTO
  | "values" -> Some VALUES
  | "delete" -> Some DELETE
  | "update" -> Some UPDATE
  | "set" -> Some SET
  | "distinct" -> Some DISTINCT
  | "exists" -> Some EXISTS
  | "explain" -> Some EXPLAIN
  | "trace" -> Some TRACE
  | "metrics" -> Some METRICS
  | "slo" -> Some SLO
  | "flight" -> Some FLIGHT
  | "maint" -> Some MAINT
  | "budget" -> Some BUDGET
  | "group" -> Some GROUP
  | "order" -> Some ORDER
  | "by" -> Some BY
  | "asc" -> Some ASC
  | "desc" -> Some DESC
  | "limit" -> Some LIMIT
  | _ -> None

(* Tokenise the whole input. @raise Error on malformed input. *)
let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      emit (match keyword_of_string word with Some kw -> kw | None -> IDENT word)
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1]) then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      let is_float = ref false in
      if !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1] then begin
        is_float := true;
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      (* optional exponent: e or E, optional sign, digits *)
      if
        !i < n
        && (input.[!i] = 'e' || input.[!i] = 'E')
        &&
        let j = if !i + 1 < n && (input.[!i + 1] = '+' || input.[!i + 1] = '-') then !i + 2 else !i + 1 in
        j < n && is_digit input.[j]
      then begin
        is_float := true;
        incr i;
        if input.[!i] = '+' || input.[!i] = '-' then incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      let text = String.sub input start (!i - start) in
      if !is_float then emit (FLOAT (float_of_string text)) else emit (INT (int_of_string text))
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then fail "unterminated string literal";
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<=" ->
          emit LE;
          i := !i + 2
      | ">=" ->
          emit GE;
          i := !i + 2
      | "<>" | "!=" ->
          emit NE;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | ',' -> emit COMMA
          | '.' -> emit DOT
          | '(' -> emit LPAREN
          | ')' -> emit RPAREN
          | '=' -> emit EQ
          | '<' -> emit LT
          | '>' -> emit GT
          | '*' -> emit STAR
          | ';' -> ()  (* trailing semicolons are permitted and ignored *)
          | _ -> fail "unexpected character %C" c)
    end
  done;
  emit EOF;
  List.rev !tokens
