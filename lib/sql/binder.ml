(* Bind a parsed query against a catalog: resolve relations and
   attributes, split WHERE into Cjoin (joins + fixed predicates) and
   Cselect (the parenthesised groups, in order), and extract this
   query's parameters.

   Two queries with the same template structure but different literals
   bind to the same canonical signature, so PMVs built for the template
   serve them all — the paper's form-based-application setting.

   EXISTS subqueries bind to their own template: correlated join atoms
   (one side in the subquery scope, the other in the outer scope)
   become extra equality selections of the sub template whose
   parameter slot is filled per outer row at execution time. *)

open Minirel_storage
open Minirel_query
open Ast

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type exists_clause = {
  ex_spec : Template.spec;
  ex_params : Instance.disjuncts option array;
      (* None marks a correlated slot, filled per outer row *)
  ex_correlated : (int * Template.attr_ref) list;
      (* selection slot -> OUTER attr supplying the equality value *)
  ex_signature : string;
}

type bound = {
  spec : Template.spec;
  params : Instance.disjuncts array;
  signature : string;  (* canonical template identity *)
  distinct : bool;
  visible : Template.attr_ref list;
      (* the user's plain select attributes, in written order *)
  aggregates : (Ast.agg_fun * Template.attr_ref option) list;
      (* aggregate select items, in order; empty for plain queries *)
  group_by : Template.attr_ref list;
  order_by : (Template.attr_ref * bool) list;  (* attr, descending *)
  limit : int option;
  exists_ : exists_clause list;
}

(* Interval grids for interval-form selection attributes, keyed by
   (relation name, attribute name). *)
type grids = (string * string) * Discretize.t

let resolve_from catalog from =
  let relations = Array.of_list (List.map fst from) in
  Array.iter
    (fun rel ->
      if not (Minirel_index.Catalog.mem catalog rel) then fail "unknown relation %s" rel)
    relations;
  let alias_map = Hashtbl.create 8 in
  List.iteri
    (fun i (rel, alias) ->
      let add name =
        if Hashtbl.mem alias_map name then fail "ambiguous relation name or alias %s" name;
        Hashtbl.replace alias_map name i
      in
      add (match alias with Some a -> a | None -> rel);
      match alias with Some _ when not (Hashtbl.mem alias_map rel) -> add rel | _ -> ())
    from;
  (relations, alias_map)

(* Name-resolution scope for one FROM list (the outer query and each
   EXISTS subquery each get their own). *)
type scope = {
  relations : string array;
  alias_map : (string, int) Hashtbl.t;
  schema_of : int -> Schema.t;
  grids : grids list;
}

let make_scope catalog grids from =
  let relations, alias_map = resolve_from catalog from in
  let schema_of i = Minirel_index.Catalog.schema catalog relations.(i) in
  { relations; alias_map; schema_of; grids }

let in_scope sc (a : qattr) = Hashtbl.mem sc.alias_map a.q_rel

let resolve sc (a : qattr) : Template.attr_ref =
  match Hashtbl.find_opt sc.alias_map a.q_rel with
  | None -> fail "unknown relation or alias %s in %a" a.q_rel pp_qattr a
  | Some rel ->
      if not (Schema.mem (sc.schema_of rel) a.q_attr) then
        fail "relation %s has no attribute %s" sc.relations.(rel) a.q_attr;
      Template.attr_ref ~rel ~attr:a.q_attr

let local_pos sc (r : Template.attr_ref) =
  Schema.pos (sc.schema_of r.Template.rel) r.Template.attr

let attr_ty sc (r : Template.attr_ref) = Schema.attr_ty (sc.schema_of r.Template.rel) (local_pos sc r)

(* SQL-style literal coercion: integer literals against a float
   column become floats; anything else must match the column type. *)
let typed_value sc (r : Template.attr_ref) lit =
  let ty = attr_ty sc r in
  match (lit, ty) with
  | L_int i, Schema.Tfloat -> Value.Float (float_of_int i)
  | _ ->
      let v = lit_to_value lit in
      if Schema.ty_matches ty v then v
      else
        fail "literal %a has the wrong type for %s.%s" Value.pp v
          sc.relations.(r.Template.rel) r.Template.attr

let grid_for sc (r : Template.attr_ref) =
  match List.assoc_opt (sc.relations.(r.Template.rel), r.Template.attr) sc.grids with
  | Some g -> g
  | None -> Discretize.of_cuts []  (* single full-domain basic interval *)

(* Cjoin: a plain atom is a join edge or a fixed predicate. *)
let plain_atom sc joins fixed = function
  | A_join (a, b) ->
      let ra = resolve sc a and rb = resolve sc b in
      joins := (ra, rb) :: !joins
  | A_cmp (a, op, lit) ->
      let r = resolve sc a in
      let v = typed_value sc r lit in
      let cmp =
        match op with
        | Ceq -> Predicate.Eq
        | Cne -> Predicate.Ne
        | Clt -> Predicate.Lt
        | Cle -> Predicate.Le
        | Cgt -> Predicate.Gt
        | Cge -> Predicate.Ge
      in
      fixed := (r.Template.rel, Predicate.Cmp (cmp, local_pos sc r, v)) :: !fixed
  | A_between (a, lo, hi) ->
      let r = resolve sc a in
      fixed :=
        ( r.Template.rel,
          Predicate.In_interval
            (local_pos sc r, Interval.closed ~lo:(typed_value sc r lo) ~hi:(typed_value sc r hi))
        )
        :: !fixed
  | A_in (a, lits) ->
      let r = resolve sc a in
      fixed :=
        (r.Template.rel, Predicate.In_set (local_pos sc r, List.map (typed_value sc r) lits))
        :: !fixed

(* Cselect: one parenthesised group = one Ci over a single attribute. *)
let group_condition sc atoms =
  let atom_attr = function
    | A_join (a, _) -> fail "join condition %a = ... inside a selection group" pp_qattr a
    | A_cmp (a, _, _) | A_between (a, _, _) | A_in (a, _) -> a
  in
  let attrs = List.map atom_attr atoms in
  let r =
    match attrs with
    | [] -> fail "empty selection group"
    | first :: rest ->
        let fr = resolve sc first in
        List.iter
          (fun a ->
            if resolve sc a <> fr then
              fail "a selection group must range over one attribute (saw %a and %a)"
                pp_qattr first pp_qattr a)
          rest;
        fr
  in
  let values = ref [] and intervals = ref [] in
  let tv = typed_value sc r in
  List.iter
    (function
      | A_cmp (_, Ceq, lit) -> values := tv lit :: !values
      | A_in (_, lits) -> values := List.rev_map tv lits @ !values
      | A_between (_, lo, hi) ->
          intervals := Interval.closed ~lo:(tv lo) ~hi:(tv hi) :: !intervals
      | A_cmp (_, Clt, lit) -> intervals := Interval.below (tv lit) :: !intervals
      | A_cmp (_, Cle, lit) ->
          intervals := Interval.make Interval.Neg_inf (Interval.U_incl (tv lit)) :: !intervals
      | A_cmp (_, Cgt, lit) ->
          intervals := Interval.make (Interval.L_excl (tv lit)) Interval.Pos_inf :: !intervals
      | A_cmp (_, Cge, lit) -> intervals := Interval.at_least (tv lit) :: !intervals
      | A_cmp (_, Cne, _) -> fail "<> is not allowed in a selection group"
      | A_join _ -> assert false (* ruled out by atom_attr *))
    atoms;
  match (List.rev !values, List.rev !intervals) with
  | vs, [] -> (Template.Eq_sel r, Instance.Dvalues vs)
  | [], ivs -> (Template.Range_sel (r, grid_for sc r), Instance.Dintervals ivs)
  | _ -> fail "a selection group cannot mix equalities and ranges"

let attr_sig (r : Template.attr_ref) = Fmt.str "%d.%s" r.Template.rel r.Template.attr

let template_signature ~relations ~joins ~fixed ~select_list ~selections =
  Fmt.str "from[%s]|join[%s]|fixed[%s]|sel[%s]|cs[%s]"
    (String.concat "," (Array.to_list relations))
    (String.concat "," (List.map (fun (a, b) -> attr_sig a ^ "=" ^ attr_sig b) joins))
    (String.concat ","
       (List.map (fun (rel, p) -> Fmt.str "%d:%a" rel Predicate.pp p) fixed))
    (String.concat "," (List.map attr_sig select_list))
    (String.concat ","
       (List.map
          (function
            | Template.Eq_sel r -> "eq:" ^ attr_sig r
            | Template.Range_sel (r, _) -> "rng:" ^ attr_sig r)
          (Array.to_list selections)))

(* Bind one EXISTS subquery. [outer] resolves correlated join sides
   that do not name a subquery alias. Correlated equalities become
   trailing Eq_sel selections of the sub template with a [None]
   parameter slot. *)
let bind_exists catalog grids outer (sub : query) =
  if sub.distinct then fail "EXISTS subquery cannot use DISTINCT";
  if sub.group_by <> [] || List.exists (function S_agg _ -> true | _ -> false) sub.select
  then fail "EXISTS subquery cannot aggregate";
  if sub.order_by <> [] || sub.limit <> None then
    fail "EXISTS subquery cannot use ORDER BY or LIMIT";
  let sc = make_scope catalog grids sub.from in
  let joins = ref [] and fixed = ref [] and selections = ref [] in
  let correlated = ref [] in
  List.iter
    (function
      | W_exists _ -> fail "nested EXISTS is not supported"
      | W_group atoms -> selections := group_condition sc atoms :: !selections
      | W_plain (A_join (a, b)) -> (
          match (in_scope sc a, in_scope sc b) with
          | true, true -> plain_atom sc joins fixed (A_join (a, b))
          | true, false -> correlated := (resolve sc a, outer b) :: !correlated
          | false, true -> correlated := (resolve sc b, outer a) :: !correlated
          | false, false ->
              fail "neither side of %a = %a names the EXISTS subquery" pp_qattr a pp_qattr b)
      | W_plain atom -> plain_atom sc joins fixed atom)
    sub.where;
  let correlated = List.rev !correlated in
  if correlated = [] then
    fail "an EXISTS subquery must correlate with the outer query via a join condition";
  let selections = List.rev !selections in
  let n_own = List.length selections in
  let ex_correlated =
    List.mapi (fun i (_, outer_ref) -> (n_own + i, outer_ref)) correlated
  in
  let all_selections =
    Array.of_list
      (List.map fst selections
      @ List.map (fun (inner, _) -> Template.Eq_sel inner) correlated)
  in
  let ex_params =
    Array.of_list
      (List.map (fun (_, d) -> Some d) selections @ List.map (fun _ -> None) correlated)
  in
  let select_list =
    let plain =
      List.concat_map
        (function
          | S_attr a -> [ resolve sc a ]
          | S_star ->
              List.concat
                (List.init (Array.length sc.relations) (fun rel ->
                     let sch = sc.schema_of rel in
                     List.init (Schema.arity sch) (fun i ->
                         Template.attr_ref ~rel ~attr:(Schema.attr_name sch i))))
          | S_agg _ -> [])
        sub.select
    in
    match plain with [] -> List.map (fun (inner, _) -> inner) correlated | l -> l
  in
  let joins = List.rev !joins and fixed = List.rev !fixed in
  let ex_signature =
    template_signature ~relations:sc.relations ~joins ~fixed ~select_list
      ~selections:all_selections
    ^ Fmt.str "|corr[%s]"
        (String.concat ","
           (List.map (fun (slot, r) -> Fmt.str "%d<-%s" slot (attr_sig r)) ex_correlated))
  in
  let ex_spec =
    {
      Template.name = Fmt.str "sql_ex_%08x" (Hashtbl.hash ex_signature land 0xFFFFFFFF);
      relations = sc.relations;
      joins;
      fixed;
      select_list;
      selections = all_selections;
    }
  in
  { ex_spec; ex_params; ex_correlated; ex_signature }

let bind ?(grids : grids list = []) catalog (q : query) =
  let sc = make_scope catalog grids q.from in
  (* select list: plain attributes and aggregate items *)
  let aggregates = ref [] in
  let plain_select =
    List.concat_map
      (function
        | S_attr a -> [ resolve sc a ]
        | S_star ->
            List.concat
              (List.init (Array.length sc.relations) (fun rel ->
                   let sch = sc.schema_of rel in
                   List.init (Schema.arity sch) (fun i ->
                       Template.attr_ref ~rel ~attr:(Schema.attr_name sch i))))
        | S_agg (f, arg) ->
            (match (f, arg) with
            | F_count, None -> aggregates := (f, None) :: !aggregates
            | F_count, Some a | (F_min | F_max), Some a ->
                aggregates := (f, Some (resolve sc a)) :: !aggregates
            | (F_sum | F_avg), Some a ->
                let r = resolve sc a in
                (match attr_ty sc r with
                | Schema.Tint | Schema.Tfloat -> ()
                | Schema.Tstr -> fail "sum/avg need a numeric column, %a is a string" pp_qattr a);
                aggregates := (f, Some r) :: !aggregates
            | (F_sum | F_avg | F_min | F_max), None ->
                fail "this aggregate needs an attribute argument");
            [])
      q.select
  in
  let aggregates = List.rev !aggregates in
  let group_by = List.map (resolve sc) q.group_by in
  let order_by = List.map (fun (a, desc) -> (resolve sc a, desc)) q.order_by in
  (* SQL grouping and ordering rules *)
  if aggregates <> [] && List.exists (fun a -> not (List.mem a group_by)) plain_select then
    fail "plain select attributes must appear in GROUP BY when aggregating";
  if group_by <> [] && aggregates = [] then
    fail "GROUP BY needs at least one aggregate in the select list";
  if q.distinct && aggregates <> [] then
    fail "DISTINCT cannot be combined with aggregates";
  if
    q.distinct
    && List.exists (fun (a, _) -> not (List.mem a plain_select)) order_by
  then fail "with DISTINCT, ORDER BY attributes must appear in the select list";
  if
    aggregates <> []
    && List.exists (fun (a, _) -> not (List.mem a group_by)) order_by
  then fail "with aggregates, ORDER BY attributes must be GROUP BY keys";
  (* the template's Ls must carry every attribute the shell reads back:
     plain attrs, group keys, aggregate arguments, order keys, and the
     outer side of each EXISTS correlation *)
  let exists_ =
    List.filter_map
      (function W_exists sub -> Some (bind_exists catalog grids (resolve sc) sub) | _ -> None)
      q.where
  in
  let exists_outer_attrs =
    List.concat_map (fun ex -> List.map snd ex.ex_correlated) exists_
  in
  let agg_args = List.filter_map snd aggregates in
  let select_list =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (a : Template.attr_ref) ->
        if Hashtbl.mem seen a then false
        else begin
          Hashtbl.replace seen a ();
          true
        end)
      (plain_select @ group_by @ agg_args @ List.map fst order_by @ exists_outer_attrs)
  in
  let select_list =
    if select_list <> [] then select_list
    else
      (* e.g. a bare count star: fall back to the selection conditions'
         attributes, which always exist *)
      List.filter_map
        (function
          | W_group (atom :: _) -> (
              match atom with
              | A_cmp (a, _, _) | A_between (a, _, _) | A_in (a, _) -> Some (resolve sc a)
              | A_join _ -> None)
          | _ -> None)
        q.where
  in
  if select_list = [] then fail "nothing to select";
  let joins = ref [] and fixed = ref [] and selections = ref [] in
  List.iter
    (function
      | W_plain a -> plain_atom sc joins fixed a
      | W_group atoms -> selections := group_condition sc atoms :: !selections
      | W_exists _ -> ()  (* bound above *))
    q.where;
  let selections = List.rev !selections in
  if selections = [] then
    fail "the query needs at least one parenthesised selection condition";
  let spec_selections = Array.of_list (List.map fst selections) in
  let params = Array.of_list (List.map snd selections) in
  let joins = List.rev !joins and fixed = List.rev !fixed in
  (* canonical template identity: everything except the parameters *)
  let signature =
    template_signature ~relations:sc.relations ~joins ~fixed ~select_list
      ~selections:spec_selections
    ^
    match exists_ with
    | [] -> ""
    | exs ->
        Fmt.str "|exists[%s]" (String.concat ";" (List.map (fun e -> e.ex_signature) exs))
  in
  let spec =
    {
      Template.name = Fmt.str "sql_%08x" (Hashtbl.hash signature land 0xFFFFFFFF);
      relations = sc.relations;
      joins;
      fixed;
      select_list;
      selections = spec_selections;
    }
  in
  let visible =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (a : Template.attr_ref) ->
        if Hashtbl.mem seen a then false
        else begin
          Hashtbl.replace seen a ();
          true
        end)
      plain_select
  in
  {
    spec;
    params;
    signature;
    distinct = q.distinct;
    visible;
    aggregates;
    group_by;
    order_by;
    limit = q.limit;
    exists_;
  }
