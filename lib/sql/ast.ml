(* Abstract syntax for the SQL subset: the paper's template grammar
   (Section 2.1) expressed as text.

     select r.a, s.e from r, s
     where r.c = s.d                     -- join edge (Cjoin)
       and r.b = 100                     -- fixed predicate (Cjoin)
       and (r.f = 1 or r.f = 3)          -- equality-form Ci (Cselect)
       and (s.g between 10 and 20)       -- interval-form Ci (Cselect)
       and (s.h in (1, 2, 5))            -- equality-form Ci, IN sugar

   Convention: a parenthesised condition is a *parameterised* selection
   condition of the template (its literals are this query's
   parameters); unparenthesised conditions belong to Cjoin. *)

type lit = L_int of int | L_float of float | L_str of string

type qattr = { q_rel : string; q_attr : string }  (* q_rel = table or alias *)

type cmp_op = Ceq | Cne | Clt | Cle | Cgt | Cge

type atom =
  | A_join of qattr * qattr  (* attr = attr *)
  | A_cmp of qattr * cmp_op * lit  (* attr op literal *)
  | A_between of qattr * lit * lit  (* closed interval *)
  | A_in of qattr * lit list

type agg_fun = F_count | F_sum | F_avg | F_min | F_max

type select_item =
  | S_attr of qattr
  | S_star
  | S_agg of agg_fun * qattr option  (* count star has no argument *)

type where_item =
  | W_plain of atom  (* part of Cjoin *)
  | W_group of atom list  (* parenthesised OR-disjunction: one Ci *)
  | W_exists of query  (* EXISTS (select ...), correlated via join atoms *)

and query = {
  distinct : bool;
  select : select_item list;
  from : (string * string option) list;  (* relation, alias *)
  where : where_item list;
  group_by : qattr list;
  order_by : (qattr * bool) list;  (* attr, descending *)
  limit : int option;
}

(* top-level statements, for the shell *)
type col_ty = T_int | T_float | T_string

type statement =
  | St_select of query
  | St_create_table of { table : string; cols : (string * col_ty) list }
  | St_create_index of { index : string; table : string; attrs : string list }
  | St_insert of { table : string; values : lit list }
  | St_update of {
      table : string;
      set : (string * lit) list;  (* column = literal assignments *)
      where : atom list;  (* conjunctive *)
    }
  | St_delete of { table : string; where : atom list }  (* conjunctive *)
  | St_explain of query
  | St_trace of query  (* run with per-operator executor profiling *)
  | St_metrics of { reset : bool }  (* METRICS [RESET]: telemetry snapshot *)
  | St_slo of { arg : slo_arg }  (* SLO [RESET | THRESHOLD <us>]: tail-latency watchdog *)
  | St_flight of { arg : flight_arg }  (* FLIGHT [DUMP | RESET | ON | OFF] *)
  | St_maint of { arg : maint_arg }  (* MAINT [STATUS | ON | OFF]: heavy-light maintenance *)
  | St_budget of { arg : budget_arg }  (* BUDGET [STATUS | REBALANCE | TOTAL <bytes>] *)

and slo_arg = Slo_report | Slo_reset | Slo_threshold of int  (* microseconds *)
and flight_arg = Flight_dump | Flight_reset | Flight_on | Flight_off
and maint_arg = Maint_status | Maint_on | Maint_off
and budget_arg = Budget_status | Budget_rebalance | Budget_total of int  (* bytes *)

let lit_to_value = function
  | L_int i -> Minirel_storage.Value.Int i
  | L_float f -> Minirel_storage.Value.Float f
  | L_str s -> Minirel_storage.Value.Str s

let pp_qattr ppf { q_rel; q_attr } = Fmt.pf ppf "%s.%s" q_rel q_attr
