(* Recursive-descent parser over {!Lexer} tokens producing {!Ast}. *)

open Ast

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type state = { mutable tokens : Lexer.token list }

let peek st = match st.tokens with [] -> Lexer.EOF | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else fail "expected %s but found %s" (Lexer.token_to_string tok) (Lexer.token_to_string got)

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> fail "expected an identifier, found %s" (Lexer.token_to_string t)

(* rel.attr *)
let qattr st =
  let q_rel = ident st in
  expect st Lexer.DOT;
  let q_attr = ident st in
  { q_rel; q_attr }

let literal st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      L_int i
  | Lexer.FLOAT f ->
      advance st;
      L_float f
  | Lexer.STRING s ->
      advance st;
      L_str s
  | t -> fail "expected a literal, found %s" (Lexer.token_to_string t)

let cmp_of_token = function
  | Lexer.EQ -> Some Ceq
  | Lexer.NE -> Some Cne
  | Lexer.LT -> Some Clt
  | Lexer.LE -> Some Cle
  | Lexer.GT -> Some Cgt
  | Lexer.GE -> Some Cge
  | _ -> None

(* attr (= attr | op lit | BETWEEN lit AND lit | IN (lits)) *)
let atom st =
  let a = qattr st in
  match peek st with
  | Lexer.BETWEEN ->
      advance st;
      let lo = literal st in
      expect st Lexer.AND;
      let hi = literal st in
      A_between (a, lo, hi)
  | Lexer.IN ->
      advance st;
      expect st Lexer.LPAREN;
      let rec lits acc =
        let l = literal st in
        match peek st with
        | Lexer.COMMA ->
            advance st;
            lits (l :: acc)
        | _ -> List.rev (l :: acc)
      in
      let ls = lits [] in
      expect st Lexer.RPAREN;
      A_in (a, ls)
  | t -> (
      match cmp_of_token t with
      | None -> fail "expected a comparison after %a" pp_qattr a
      | Some op -> (
          advance st;
          match (op, peek st) with
          | Ceq, Lexer.IDENT _ ->
              let b = qattr st in
              A_join (a, b)
          | _, _ -> A_cmp (a, op, literal st)))

(* ( atom OR atom OR ... ) *)
let group st =
  expect st Lexer.LPAREN;
  let rec atoms acc =
    let x = atom st in
    match peek st with
    | Lexer.OR ->
        advance st;
        atoms (x :: acc)
    | _ -> List.rev (x :: acc)
  in
  let xs = atoms [] in
  expect st Lexer.RPAREN;
  W_group xs

let agg_fun_of_name name =
  match String.lowercase_ascii name with
  | "count" -> Some F_count
  | "sum" -> Some F_sum
  | "avg" -> Some F_avg
  | "min" -> Some F_min
  | "max" -> Some F_max
  | _ -> None

let select_item st =
  match peek st with
  | Lexer.STAR ->
      advance st;
      S_star
  | Lexer.IDENT name when agg_fun_of_name name <> None && (
      match st.tokens with _ :: Lexer.LPAREN :: _ -> true | _ -> false) -> (
      let f = Option.get (agg_fun_of_name name) in
      advance st;
      expect st Lexer.LPAREN;
      match peek st with
      | Lexer.STAR ->
          advance st;
          expect st Lexer.RPAREN;
          if f <> F_count then fail "only count may take *";
          S_agg (F_count, None)
      | _ ->
          let a = qattr st in
          expect st Lexer.RPAREN;
          S_agg (f, Some a))
  | _ -> S_attr (qattr st)

let from_item st =
  let rel = ident st in
  match peek st with
  | Lexer.IDENT alias ->
      advance st;
      (rel, Some alias)
  | _ -> (rel, None)

let comma_list st parse =
  let rec go acc =
    let x = parse st in
    match peek st with
    | Lexer.COMMA ->
        advance st;
        go (x :: acc)
    | _ -> List.rev (x :: acc)
  in
  go []

let rec where_item st =
  match peek st with
  | Lexer.LPAREN -> group st
  | Lexer.EXISTS ->
      advance st;
      expect st Lexer.LPAREN;
      let q = select_query st in
      expect st Lexer.RPAREN;
      W_exists q
  | _ -> W_plain (atom st)

and select_query st =
  expect st Lexer.SELECT;
  let distinct =
    match peek st with
    | Lexer.DISTINCT ->
        advance st;
        true
    | _ -> false
  in
  let select = comma_list st select_item in
  expect st Lexer.FROM;
  let from = comma_list st from_item in
  expect st Lexer.WHERE;
  let rec wheres acc =
    let w = where_item st in
    match peek st with
    | Lexer.AND ->
        advance st;
        wheres (w :: acc)
    | _ -> List.rev (w :: acc)
  in
  let where = wheres [] in
  let group_by =
    match peek st with
    | Lexer.GROUP ->
        advance st;
        expect st Lexer.BY;
        comma_list st qattr
    | _ -> []
  in
  let order_by =
    match peek st with
    | Lexer.ORDER ->
        advance st;
        expect st Lexer.BY;
        comma_list st (fun st ->
            let a = qattr st in
            match peek st with
            | Lexer.ASC ->
                advance st;
                (a, false)
            | Lexer.DESC ->
                advance st;
                (a, true)
            | _ -> (a, false))
    | _ -> []
  in
  let limit =
    match peek st with
    | Lexer.LIMIT -> (
        advance st;
        match peek st with
        | Lexer.INT n when n >= 0 ->
            advance st;
            Some n
        | t -> fail "LIMIT needs a non-negative integer, found %s" (Lexer.token_to_string t))
    | _ -> None
  in
  { distinct; select; from; where; group_by; order_by; limit }

(* Parse one query. @raise Error (or Lexer.Error) on malformed input. *)
let parse input =
  let st = { tokens = Lexer.tokenize input } in
  let q = select_query st in
  expect st Lexer.EOF;
  q

let col_ty st =
  match ident st with
  | s -> (
      match String.lowercase_ascii s with
      | "int" | "integer" -> T_int
      | "float" | "real" | "double" -> T_float
      | "string" | "text" | "varchar" -> T_string
      | other -> fail "unknown column type %S" other)

let conjunctive_atoms st =
  let rec atoms acc =
    let a = atom st in
    match peek st with
    | Lexer.AND ->
        advance st;
        atoms (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  atoms []

(* Parse one top-level statement (select / explain / create table /
   create index / insert / update / delete).
   @raise Error or Lexer.Error on malformed input. *)
let parse_statement input =
  let st = { tokens = Lexer.tokenize input } in
  let statement =
    match peek st with
    | Lexer.SELECT -> St_select (select_query st)
    | Lexer.CREATE -> (
        advance st;
        match peek st with
        | Lexer.TABLE ->
            advance st;
            let table = ident st in
            expect st Lexer.LPAREN;
            let cols =
              comma_list st (fun st ->
                  let name = ident st in
                  let ty = col_ty st in
                  (name, ty))
            in
            expect st Lexer.RPAREN;
            St_create_table { table; cols }
        | Lexer.INDEX ->
            advance st;
            let index = ident st in
            expect st Lexer.ON;
            let table = ident st in
            expect st Lexer.LPAREN;
            let attrs = comma_list st ident in
            expect st Lexer.RPAREN;
            St_create_index { index; table; attrs }
        | t -> fail "expected TABLE or INDEX after CREATE, found %s" (Lexer.token_to_string t))
    | Lexer.INSERT ->
        advance st;
        expect st Lexer.INTO;
        let table = ident st in
        expect st Lexer.VALUES;
        expect st Lexer.LPAREN;
        let values = comma_list st literal in
        expect st Lexer.RPAREN;
        St_insert { table; values }
    | Lexer.DELETE -> (
        advance st;
        expect st Lexer.FROM;
        let table = ident st in
        match peek st with
        | Lexer.WHERE ->
            advance st;
            St_delete { table; where = conjunctive_atoms st }
        | _ -> St_delete { table; where = [] })
    | Lexer.UPDATE ->
        advance st;
        let table = ident st in
        expect st Lexer.SET;
        let set =
          comma_list st (fun st ->
              let col = ident st in
              expect st Lexer.EQ;
              let lit = literal st in
              (col, lit))
        in
        let where =
          match peek st with
          | Lexer.WHERE ->
              advance st;
              conjunctive_atoms st
          | _ -> []
        in
        St_update { table; set; where }
    | Lexer.EXPLAIN ->
        advance st;
        St_explain (select_query st)
    | Lexer.TRACE ->
        advance st;
        St_trace (select_query st)
    | Lexer.METRICS ->
        advance st;
        let reset =
          (* RESET is deliberately not a keyword (a column may be named
             "reset"); accept it as a bare identifier here. *)
          match peek st with
          | Lexer.IDENT id when String.lowercase_ascii id = "reset" ->
              advance st;
              true
          | _ -> false
        in
        St_metrics { reset }
    | Lexer.SLO ->
        advance st;
        (* arguments are bare identifiers, not keywords, for the same
           reason as METRICS RESET *)
        let arg =
          match peek st with
          | Lexer.IDENT id when String.lowercase_ascii id = "reset" ->
              advance st;
              Slo_reset
          | Lexer.IDENT id when String.lowercase_ascii id = "threshold" -> (
              advance st;
              match peek st with
              | Lexer.INT us when us >= 0 ->
                  advance st;
                  Slo_threshold us
              | t ->
                  fail "expected a non-negative microsecond count after SLO THRESHOLD, found %s"
                    (Lexer.token_to_string t))
          | _ -> Slo_report
        in
        St_slo { arg }
    | Lexer.FLIGHT ->
        advance st;
        let arg =
          match peek st with
          | Lexer.IDENT id when String.lowercase_ascii id = "dump" ->
              advance st;
              Flight_dump
          | Lexer.IDENT id when String.lowercase_ascii id = "reset" ->
              advance st;
              Flight_reset
          | Lexer.ON ->
              (* ON is already a keyword (CREATE INDEX ... ON) *)
              advance st;
              Flight_on
          | Lexer.IDENT id when String.lowercase_ascii id = "off" ->
              advance st;
              Flight_off
          | _ -> Flight_dump
        in
        St_flight { arg }
    | Lexer.MAINT ->
        advance st;
        let arg =
          match peek st with
          | Lexer.ON ->
              (* ON is already a keyword (CREATE INDEX ... ON) *)
              advance st;
              Maint_on
          | Lexer.IDENT id when String.lowercase_ascii id = "off" ->
              advance st;
              Maint_off
          | Lexer.IDENT id when String.lowercase_ascii id = "status" ->
              advance st;
              Maint_status
          | _ -> Maint_status
        in
        St_maint { arg }
    | Lexer.BUDGET ->
        advance st;
        let arg =
          match peek st with
          | Lexer.IDENT id when String.lowercase_ascii id = "rebalance" ->
              advance st;
              Budget_rebalance
          | Lexer.IDENT id when String.lowercase_ascii id = "total" -> (
              advance st;
              match peek st with
              | Lexer.INT bytes when bytes > 0 ->
                  advance st;
                  Budget_total bytes
              | t ->
                  fail "expected a positive byte count after BUDGET TOTAL, found %s"
                    (Lexer.token_to_string t))
          | Lexer.IDENT id when String.lowercase_ascii id = "status" ->
              advance st;
              Budget_status
          | _ -> Budget_status
        in
        St_budget { arg }
    | t -> fail "expected a statement, found %s" (Lexer.token_to_string t)
  in
  expect st Lexer.EOF;
  statement
