(** A SQL session: parse + bind queries against one catalog, caching
    compiled templates by canonical signature. All queries from one
    form-based template share one {!Minirel_query.Template.compiled} —
    and therefore one PMV when routed through {!Pmv.Manager}. *)

open Minirel_query

type t

val create : Minirel_index.Catalog.t -> t
val catalog : t -> Minirel_index.Catalog.t

(** Register dividing values for an interval-form attribute (Section
    3.1); affects templates bound afterwards. *)
val set_grid : t -> rel:string -> attr:string -> Discretize.t -> unit

(** Derive the grid from an equi-depth scan of the attribute's data. *)
val set_grid_from_data : t -> rel:string -> attr:string -> bins:int -> unit

(** Parse, bind and compile one query.
    @raise Lexer.Error, Parser.Error or Binder.Error on bad input;
    @raise Invalid_argument on malformed parameters. *)
val query : t -> string -> Template.compiled * Instance.t

(** Like {!query} but also returns the bound clauses the template
    itself does not carry (aggregates, group by, order by, limit). *)
val query_bound : t -> string -> Template.compiled * Instance.t * Binder.bound

(** Compile an EXISTS clause's subquery template through the same
    signature cache (so repeated queries share its PMV). *)
val compile_exists : t -> Binder.exists_clause -> Template.compiled

val n_templates : t -> int
val signature_of_name : t -> string -> string option
