(* A SQL session: parse + bind queries against one catalog, caching
   compiled templates by canonical signature so that all queries from
   one form-based template share a single Template.compiled — and
   therefore a single PMV when used with Pmv.Manager. *)

open Minirel_query

type t = {
  catalog : Minirel_index.Catalog.t;
  mutable grids : Binder.grids list;
  templates : (string, Template.compiled) Hashtbl.t;  (* signature -> compiled *)
  names : (string, string) Hashtbl.t;  (* template name -> signature *)
}

let create catalog =
  { catalog; grids = []; templates = Hashtbl.create 16; names = Hashtbl.create 16 }

let catalog t = t.catalog

(* Register the dividing values for an interval-form attribute
   (Section 3.1); affects templates bound afterwards. *)
let set_grid t ~rel ~attr grid =
  t.grids <- ((rel, attr), grid) :: List.remove_assoc (rel, attr) t.grids

(* Derive a grid from an equi-depth sample of the attribute's data. *)
let set_grid_from_data t ~rel ~attr ~bins =
  let heap = Minirel_index.Catalog.heap t.catalog rel in
  let schema = Minirel_storage.Heap_file.schema heap in
  let pos = Minirel_storage.Schema.pos schema attr in
  let values = ref [] in
  Minirel_storage.Heap_file.iter heap (fun _ tuple -> values := tuple.(pos) :: !values);
  set_grid t ~rel ~attr (Discretize.equi_depth ~bins !values)

(* Parse, bind and compile a query. Queries sharing a template (same
   structure, different literals) return the same [Template.compiled].
   @raise Lexer.Error, Parser.Error or Binder.Error on bad input;
   Invalid_argument on malformed parameters (e.g. overlapping
   intervals). *)
let compile_bound t (bound : Binder.bound) =
  let compiled =
    match Hashtbl.find_opt t.templates bound.Binder.signature with
    | Some compiled -> compiled
    | None ->
        let compiled = Template.compile t.catalog bound.Binder.spec in
        Hashtbl.replace t.templates bound.Binder.signature compiled;
        Hashtbl.replace t.names bound.Binder.spec.Template.name bound.Binder.signature;
        compiled
  in
  (compiled, Instance.make compiled bound.Binder.params)

(* Compile an EXISTS clause's subquery template through the same
   signature cache: repeated outer queries (and distinct outer
   templates sharing a subquery shape) reuse one compiled template —
   and therefore one PMV when routed through Pmv.Manager. *)
let compile_exists t (c : Binder.exists_clause) =
  match Hashtbl.find_opt t.templates c.Binder.ex_signature with
  | Some compiled -> compiled
  | None ->
      let compiled = Template.compile t.catalog c.Binder.ex_spec in
      Hashtbl.replace t.templates c.Binder.ex_signature compiled;
      Hashtbl.replace t.names c.Binder.ex_spec.Template.name c.Binder.ex_signature;
      compiled

let query t sql =
  let ast = Parser.parse sql in
  compile_bound t (Binder.bind ~grids:t.grids t.catalog ast)

(* Like [query] but also returns the bound clauses the template itself
   does not carry (aggregates, group by, order by, limit). *)
let query_bound t sql =
  let ast = Parser.parse sql in
  let bound = Binder.bind ~grids:t.grids t.catalog ast in
  let compiled, instance = compile_bound t bound in
  (compiled, instance, bound)

(* Number of distinct templates seen so far. *)
let n_templates t = Hashtbl.length t.templates

let signature_of_name t name = Hashtbl.find_opt t.names name
