(** Hand-written lexer for the SQL subset: case-insensitive keywords,
    single-quoted strings with [''] escapes, ints, floats, and the
    operator set the template grammar needs. Semicolons are ignored. *)

type token =
  | SELECT
  | FROM
  | WHERE
  | AND
  | OR
  | BETWEEN
  | IN
  | CREATE
  | TABLE
  | INDEX
  | ON
  | INSERT
  | INTO
  | VALUES
  | DELETE
  | UPDATE
  | SET
  | DISTINCT
  | EXISTS
  | EXPLAIN
  | TRACE
  | METRICS
  | SLO
  | FLIGHT
  | MAINT
  | BUDGET
  | GROUP
  | ORDER
  | BY
  | ASC
  | DESC
  | LIMIT
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | COMMA
  | DOT
  | LPAREN
  | RPAREN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | STAR
  | EOF

val token_to_string : token -> string

exception Error of string

(** Tokenise the whole input (ending with [EOF]).
    @raise Error on malformed input. *)
val tokenize : string -> token list
