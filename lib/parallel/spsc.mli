(** Bounded single-producer single-consumer queue (mutex + condvars
    over a ring buffer). The producer blocks while full — backpressure
    toward the consumer — and the consumer blocks while empty. *)

type 'a t

(** @raise Invalid_argument when [capacity < 1]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** Blocks while the queue is full. *)
val push : 'a t -> 'a -> unit

(** Blocks while the queue is empty. *)
val pop : 'a t -> 'a
