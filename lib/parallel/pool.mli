(** A fixed-size Domain pool with work-stealing dispatch: [domains]
    worker domains spawned once at {!create}. External tasks enter a
    strict-FIFO injector; worker-forked tasks (nested {!map}) go onto
    the forking worker's own bounded Chase–Lev-style deque — owner
    LIFO push/pop at the bottom, thieves steal the oldest entry off
    the top with a CAS. Idle workers drain their own deque, then the
    injector front, then steal; finding nothing, they park on a
    wake-on-submit parking lot (a generation counter re-checked under
    the lot mutex makes lost wakeups impossible).

    Non-starvation (what replaced the old "dispatch is FIFO"
    guarantee the shard router's streaming merge relied on): injector
    tasks are still {e claimed} in submission order — a worker only
    takes injector work when its own deque is empty, deques only hold
    finite descendants of already-running tasks, and thieves steal
    oldest-first — so the earliest undrained shard's task is always
    completed, running, or the next external claim. See the
    non-starvation argument in pool.ml and DESIGN.md §16. *)

type t

(** The work-stealing deque used per worker. Exposed for property
    tests (owner/thief protocol must never lose or duplicate a task);
    not part of the stable API. [push]/[pop] are owner-only;
    [steal] is safe from any domain. *)
module Deque : sig
  type 'a t

  (** [create ~capacity] rounds [capacity] up to a power of two.
      @raise Invalid_argument when [capacity < 1]. *)
  val create : capacity:int -> 'a t

  val capacity : 'a t -> int

  (** Snapshot size (racy under concurrency, >= 0). *)
  val length : 'a t -> int

  (** Owner only. [false] when full. *)
  val push : 'a t -> 'a -> bool

  (** Owner only: newest entry (LIFO). *)
  val pop : 'a t -> 'a option

  (** Any domain: oldest entry (FIFO). *)
  val steal : 'a t -> 'a option
end

(** Scheduler counters since creation (or the last reset). *)
type stats = {
  submitted : int;  (** tasks enqueued: injector + forked + inline *)
  local_hits : int;  (** own-deque pops *)
  injector_hits : int;  (** global FIFO takes *)
  steals : int;  (** successful steals from another worker *)
  parks : int;  (** times a worker slept on the parking lot *)
  task_exns : int;  (** fire-and-forget tasks that raised *)
}

(** Spawn [domains] worker domains (>= 1).
    @raise Invalid_argument when [domains < 1]. *)
val create : domains:int -> t

(** Worker count (0 after {!shutdown}). *)
val size : t -> int

(** The calling worker's index within its pool, [None] outside any
    pool worker — span trees use it for domain attribution. *)
val worker_index : unit -> int option

(** Enqueue a fire-and-forget task. Tasks must handle their own
    exceptions — anything escaping is counted ([task_exns], flight
    event [Task_exn]) but not re-raised. Called from inside a pool
    worker, the task runs inline immediately (a nested submit must
    never wait on scheduling only the calling worker could provide).
    @raise Invalid_argument after {!shutdown}. *)
val submit : t -> (unit -> unit) -> unit

(** [map t f arr] applies [f] to every element on the pool, blocking
    until all complete; results keep their index. If any task raised,
    the lowest-index exception re-raises after every task has settled.
    From an external caller, tasks are batched into the FIFO injector.
    From inside one of [t]'s own workers (nested fan-out), tasks fork
    onto the calling worker's deque: the worker drains them LIFO while
    idle workers steal the oldest forks — morsel batches inside a
    shard task actually parallelize instead of running inline. From a
    {e different} pool's worker, runs inline sequentially (cross-pool
    blocking is how nested fan-out deadlocks). *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [run_all t thunks]: {!map} over thunks, results discarded. *)
val run_all : t -> (unit -> unit) list -> unit

(** Scheduler counters snapshot. *)
val stats : t -> stats

(** Zero all scheduler counters. *)
val reset_stats : t -> unit

(** Export the scheduler counters ([pool.sched.*], [pool.task_exn])
    as a registry source named ["pool"]. *)
val register_telemetry : t -> Minirel_telemetry.Registry.t -> unit

(** Graceful teardown: already-queued tasks finish, workers exit and
    are joined. Idempotent; {!submit}/{!map} afterwards raise. *)
val shutdown : t -> unit
