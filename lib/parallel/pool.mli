(** A fixed-size Domain pool: [domains] worker domains spawned once at
    {!create}, executing closures off one FIFO queue. FIFO dispatch is
    guaranteed — the shard router's in-order streaming merge relies on
    it. Leaf library: no minirel dependencies. *)

type t

(** Spawn [domains] worker domains (>= 1).
    @raise Invalid_argument when [domains < 1]. *)
val create : domains:int -> t

(** Worker count (0 after {!shutdown}). *)
val size : t -> int

(** The calling worker's index within its pool, [None] outside any
    pool worker — span trees use it for domain attribution. *)
val worker_index : unit -> int option

(** Enqueue a fire-and-forget task. Tasks must handle their own
    exceptions — anything escaping is dropped, not re-raised.
    @raise Invalid_argument after {!shutdown}. *)
val submit : t -> (unit -> unit) -> unit

(** [map t f arr] applies [f] to every element on the pool, blocking
    until all complete; results keep their index. If any task raised,
    the lowest-index exception re-raises after every task has settled.
    Called from inside a pool worker (nested fan-out), runs inline and
    sequentially instead — blocking a worker on subtasks only other
    workers could run is a deadlock. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [run_all t thunks]: {!map} over thunks, results discarded. *)
val run_all : t -> (unit -> unit) list -> unit

(** Graceful teardown: already-queued tasks finish, workers exit and
    are joined. Idempotent; {!submit}/{!map} afterwards raise. *)
val shutdown : t -> unit
