(** Epoch-based reclamation for lock-free readers.

    Readers bracket access to atomically-published data with
    [enter]/[leave]; writers pass superseded versions to [retire]. A
    retired version is released only once every reader active at
    retirement time has left, so a reader never observes a version being
    torn down under it. Under OCaml's GC this bounds memory (the retire
    list is what keeps old versions alive) and, more importantly, makes
    the deferral observable: [stats] lets tests and shutdown paths prove
    that version chains neither get released early nor leak. *)

type t

type guard
(** Proof of an active reader section; returned by [enter], consumed by
    [leave]. *)

type stats = {
  retired : int;  (** lifetime count of versions handed to [retire] *)
  reclaimed : int;  (** lifetime count of versions released *)
  in_flight : int;  (** retired but not yet released *)
  active_readers : int;  (** readers currently inside a section *)
}

val create : ?slots:int -> unit -> t
(** [create ()] makes an epoch domain with [slots] reader slots
    (default 64). More concurrent readers than slots is safe — excess
    readers spin for a free slot. *)

val enter : t -> guard
(** Begin a reader section: claims a slot and publishes the current
    epoch. Lock-free (one CAS plus a confirming re-publish). *)

val leave : t -> guard -> unit
(** End the reader section begun by [enter]. The guard must not be
    reused. *)

val retire : t -> (unit -> unit) -> unit
(** [retire t release] defers [release] until every currently active
    reader has left. Advances the global epoch; periodically runs an
    opportunistic reclaim pass. Callers serialize retirement per store
    (it is the mutation path); a mutex inside keeps concurrent retirers
    safe regardless. *)

val reclaim : t -> int
(** Release every retired version no active reader can still observe;
    returns how many were released. *)

val drain : t -> int
(** Shutdown: release {e all} retired versions unconditionally. The
    caller asserts no reader is active or can re-enter. Returns how many
    were released. *)

val stats : t -> stats
val active_readers : t -> int

val current_epoch : t -> int
(** The global epoch value; monotonically increasing from 1. Exposed for
    tests. *)
