(* Epoch-based reclamation for lock-free readers.

   Readers publish the global epoch in a slot around their critical
   section ([enter]/[leave]); writers hand retired objects to [retire],
   which stamps them with the epoch current at retirement and advances
   the global epoch. A retired object is released (its callback run and
   its reference dropped) only once every active reader has published a
   strictly later epoch than its stamp — a reader that entered before
   the retirement can therefore never observe the release.

   The OCaml GC makes use-after-free impossible regardless; what the
   protocol buys is a *bounded, observable* deferral: the retire list is
   the version chain the entry store keeps alive for in-flight readers,
   and its counters let tests prove that nothing is released early and
   that nothing leaks past [drain].

   Writer-side state (the retire list) is mutex-protected: retirement is
   the store's mutation path, which is single-writer by engine design,
   but the mutex keeps the stats and list coherent even if two stores'
   writers share a domain pool. Reader slots are plain atomics — enter
   and leave are a CAS and a store, never a lock. *)

type t = {
  global : int Atomic.t;  (* current epoch; starts at 1, 0 marks a free slot *)
  slots : int Atomic.t array;  (* per-reader published epoch; 0 = quiescent *)
  mutex : Mutex.t;  (* guards the retire list and writer-side counters *)
  mutable retired : (int * (unit -> unit)) list;  (* (stamp, release), newest first *)
  mutable n_retired : int;  (* lifetime retirements *)
  mutable n_reclaimed : int;  (* lifetime releases *)
}

type guard = int  (* index of the slot the reader claimed *)

type stats = {
  retired : int;
  reclaimed : int;
  in_flight : int;  (* retired versions still awaiting release *)
  active_readers : int;
}

(* How many retired versions may accumulate before a retirement also
   attempts a reclaim pass; amortises the slot scan. *)
let reclaim_every = 64

let create ?(slots = 64) () =
  if slots < 1 then invalid_arg "Epoch.create: slots must be >= 1";
  {
    global = Atomic.make 1;
    slots = Array.init slots (fun _ -> Atomic.make 0);
    mutex = Mutex.create ();
    retired = [];
    n_retired = 0;
    n_reclaimed = 0;
  }

(* Claim a free slot and publish the current epoch in it. The publish
   loop re-reads the global epoch until the published value is current:
   a writer that advanced the epoch concurrently is then guaranteed to
   see this reader (or the reader sees the newer epoch), so the
   min-active computation below can never skip an entered reader. *)
let enter t =
  let n = Array.length t.slots in
  let rec claim i =
    if i = n then begin
      (* every slot busy: readers outnumber slots; yield and rescan *)
      Domain.cpu_relax ();
      claim 0
    end
    else if
      Atomic.get t.slots.(i) = 0
      && Atomic.compare_and_set t.slots.(i) 0 (Atomic.get t.global)
    then i
    else claim (i + 1)
  in
  let i = claim 0 in
  let rec publish () =
    let g = Atomic.get t.global in
    if Atomic.get t.slots.(i) <> g then begin
      Atomic.set t.slots.(i) g;
      publish ()
    end
  in
  publish ();
  i

let leave t guard = Atomic.set t.slots.(guard) 0

(* Smallest epoch any active reader has published; [max_int] when all
   slots are quiescent. *)
let min_active t =
  Array.fold_left
    (fun acc slot ->
      let e = Atomic.get slot in
      if e = 0 then acc else min acc e)
    max_int t.slots

let reclaim_locked t =
  let horizon = min_active t in
  let keep, free = List.partition (fun (stamp, _) -> stamp >= horizon) t.retired in
  t.retired <- keep;
  t.n_reclaimed <- t.n_reclaimed + List.length free;
  List.iter (fun (_, release) -> release ()) free;
  List.length free

(* Release every retired object no active reader can still observe;
   returns how many were released. *)
let reclaim t =
  Mutex.lock t.mutex;
  let n = reclaim_locked t in
  Mutex.unlock t.mutex;
  n

(* Retire one object: it stays on the list (keeping whatever [release]
   captured alive) until every reader active at this moment has left.
   Advances the global epoch so later readers are distinguishable from
   the ones that may still hold the object. *)
let retire t release =
  Mutex.lock t.mutex;
  t.retired <- (Atomic.get t.global, release) :: t.retired;
  t.n_retired <- t.n_retired + 1;
  ignore (Atomic.fetch_and_add t.global 1);
  if t.n_retired - t.n_reclaimed >= reclaim_every then ignore (reclaim_locked t);
  Mutex.unlock t.mutex

(* Shutdown path: release everything still on the list, regardless of
   reader slots — the caller asserts quiescence (no reader can re-enter
   a store being torn down). Returns how many were released. *)
let drain t =
  Mutex.lock t.mutex;
  let free = t.retired in
  t.retired <- [];
  t.n_reclaimed <- t.n_reclaimed + List.length free;
  List.iter (fun (_, release) -> release ()) free;
  Mutex.unlock t.mutex;
  List.length free

let active_readers t =
  Array.fold_left
    (fun acc slot -> if Atomic.get slot = 0 then acc else acc + 1)
    0 t.slots

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      retired = t.n_retired;
      reclaimed = t.n_reclaimed;
      in_flight = t.n_retired - t.n_reclaimed;
      active_readers = active_readers t;
    }
  in
  Mutex.unlock t.mutex;
  s

let current_epoch t = Atomic.get t.global
