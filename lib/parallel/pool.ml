(* A fixed-size Domain pool. [create ~domains] spawns that many worker
   domains once; tasks are closures pushed onto one FIFO and executed
   by whichever worker frees up first, so fan-out callers (the shard
   router, the morsel scanner) pay domain-spawn cost never and
   task-dispatch cost per batch, not per domain.

   Scheduling is FIFO. That is load-bearing for the shard router's
   streaming merge: the consumer drains per-shard queues in shard
   order, and FIFO dispatch guarantees the earliest undrained shard's
   task is always already running or the next one picked, so a full
   queue can never starve the task the consumer is waiting on.

   Calls into the pool from inside one of its own workers (a shard
   task whose engine owns the same pool, say) run inline and
   sequentially — blocking a worker on work only other workers could
   steal is how nested fan-out deadlocks. *)

type task = unit -> unit

type t = {
  mutex : Mutex.t;
  has_work : Condition.t;  (* workers: queue non-empty or stopping *)
  settled : Condition.t;  (* map callers: one of my tasks finished *)
  queue : task Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

(* Domain-local flag marking pool workers; [map]/[run_all] from inside
   any pool's worker fall back to inline sequential execution. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Domain-local worker index (-1 outside a pool worker), so tracing can
   attribute a task's spans to the domain that ran it. *)
let worker_ix : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let worker_index () =
  match Domain.DLS.get worker_ix with -1 -> None | i -> Some i

let worker_loop t ix =
  Domain.DLS.set in_worker true;
  Domain.DLS.set worker_ix ix;
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.has_work t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopping: drained *)
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      (* tasks own their exceptions ([map] funnels them to the caller;
         [submit] tasks must catch); never let one kill a worker *)
      (try task () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      has_work = Condition.create ();
      settled = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
    }
  in
  t.workers <- Array.init domains (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let size t = Array.length t.workers

let submit t task =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.has_work;
  Mutex.unlock t.mutex

(* Run [f] on every element, workers executing tasks concurrently; the
   caller blocks until all settle. Exceptions re-raise in index order
   (the lowest-index failure wins, matching what a sequential
   [Array.map] would have raised first); later tasks still run. *)
let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if n = 1 || Domain.DLS.get in_worker then Array.map f arr
  else begin
    let results = Array.make n None in
    let exns = Array.make n None in
    let remaining = ref n in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.push
        (fun () ->
          (match f arr.(i) with
          | r -> results.(i) <- Some r
          | exception e -> exns.(i) <- Some e);
          Mutex.lock t.mutex;
          decr remaining;
          Condition.broadcast t.settled;
          Mutex.unlock t.mutex)
        t.queue
    done;
    Condition.broadcast t.has_work;
    while !remaining > 0 do
      Condition.wait t.settled t.mutex
    done;
    Mutex.unlock t.mutex;
    Array.iteri (fun _ e -> match e with Some e -> raise e | None -> ()) exns;
    Array.map (fun r -> Option.get r) results
  end

let run_all t thunks = ignore (map t (fun f -> f ()) (Array.of_list thunks))

(* Graceful teardown: queued tasks drain, then every worker exits and
   is joined. Idempotent. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]
