(* A fixed-size Domain pool with work-stealing dispatch. [create
   ~domains] spawns that many worker domains once. External callers
   (the shard router, benches, pmvctl) enqueue into one FIFO injector;
   each worker also owns a bounded Chase-Lev-style deque for tasks it
   forks itself (nested [map] fan-out: morsel batches inside a shard
   task). Owners push/pop the bottom of their deque LIFO for cache
   locality; idle workers steal the oldest task off another worker's
   top, so a long shard task's morsels spread across domains instead
   of queueing behind it.

   Non-starvation (replaces the old "FIFO is load-bearing" invariant):
   the shard router's streaming merge drains per-shard queues in shard
   order, so the task for the earliest undrained shard must never be
   buried. Three properties keep it runnable:
     1. the injector is a strict FIFO and idle workers always drain it
        before stealing, so external tasks are *claimed* in submission
        order (the claimed set is always a prefix);
     2. deques only ever hold descendants of a task that is already
        running (nested fan-out), and every such task tree is finite,
        so a busy worker returns to the injector after finitely many
        local pops;
     3. thieves steal the *oldest* deque entry, so even stolen work
        preserves fork order within a tree.
   Hence whenever the merge consumer is blocked on shard i, every
   earlier shard's task has already completed (prefix claiming), and
   shard i's task is either running or at the injector front — the
   next claim anywhere. Property-tested in test_parallel.ml.

   Parking: instead of one global condvar guarding the queue, idle
   workers park on a parking lot keyed by a [work_seq] generation
   counter. A worker that finds nothing re-reads [work_seq] under the
   lot's mutex before sleeping; every enqueue bumps [work_seq] before
   signalling, so the "scanned empty, then work arrived, then slept"
   lost-wakeup interleaving is impossible. Workers do not spin before
   parking — on a 1-core host a spinning worker only steals the
   timeslice of the caller that is about to feed it.

   Calls into the pool from inside one of its own workers run on the
   worker's own deque ([map]: fork-join, thieves may help) or inline
   ([submit]) — blocking a worker on work only other workers could
   take is how nested fan-out deadlocks. *)

type task = unit -> unit

(* Bounded work-stealing deque. The owner pushes and pops [bottom];
   thieves CAS [top] forward. Slot values are [option] atomics so a
   thief can pre-read the value *before* claiming it with the CAS —
   claiming first and exchanging after loses tasks when the owner
   wraps the ring between the two steps. While [top = t], the physical
   slot [t land mask] can only hold index [t]'s value (a push reusing
   it would need [bottom - top >= capacity], which push rejects), so a
   pre-read value confirmed by a successful CAS is owned exactly once.
   Thieves never clear stolen slots (a late clear could destroy a
   value the owner re-published after wraparound), so up to [capacity]
   consumed closures stay reachable until overwritten — bounded
   retention, accepted. *)
module Deque = struct
  type 'a t = {
    slots : 'a option Atomic.t array;
    mask : int;
    top : int Atomic.t;  (* next index to steal; never decreases *)
    bottom : int Atomic.t;  (* next index to push; owner-written *)
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Deque.create: capacity must be >= 1";
    let cap = ref 1 in
    while !cap < capacity do
      cap := !cap * 2
    done;
    {
      slots = Array.init !cap (fun _ -> Atomic.make None);
      mask = !cap - 1;
      top = Atomic.make 0;
      bottom = Atomic.make 0;
    }

  let capacity t = Array.length t.slots
  let length t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

  (* Owner only. [false] when full — callers run the task inline. *)
  let push t v =
    let b = Atomic.get t.bottom and tp = Atomic.get t.top in
    if b - tp >= Array.length t.slots then false
    else begin
      Atomic.set t.slots.(b land t.mask) (Some v);
      Atomic.set t.bottom (b + 1);  (* publishes the slot to thieves *)
      true
    end

  (* Owner only: LIFO pop of the newest entry. *)
  let pop t =
    let b = Atomic.get t.bottom - 1 in
    Atomic.set t.bottom b;  (* announce intent before reading top *)
    let tp = Atomic.get t.top in
    if b < tp then begin
      Atomic.set t.bottom tp;  (* empty: restore canonical state *)
      None
    end
    else if b > tp then begin
      (* >= 2 entries: index [b] is out of thieves' reach *)
      let v = Atomic.get t.slots.(b land t.mask) in
      Atomic.set t.slots.(b land t.mask) None;
      v
    end
    else begin
      (* last entry: race any thief for index [tp] via the top CAS *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      let v =
        if won then begin
          let v = Atomic.get t.slots.(b land t.mask) in
          Atomic.set t.slots.(b land t.mask) None;
          v
        end
        else None
      in
      Atomic.set t.bottom (tp + 1);
      v
    end

  (* Any domain: FIFO steal of the oldest entry. *)
  let rec steal t =
    let tp = Atomic.get t.top in
    let b = Atomic.get t.bottom in
    if b - tp <= 0 then None
    else
      match Atomic.get t.slots.(tp land t.mask) with
      | None ->
          (* the slot was consumed between our top/bottom reads; if top
             moved someone raced us, retry against the new state *)
          if Atomic.get t.top = tp then None else steal t
      | Some v -> if Atomic.compare_and_set t.top tp (tp + 1) then Some v else steal t
end

type stats = {
  submitted : int;  (* tasks enqueued (injector + forked + inline) *)
  local_hits : int;  (* worker popped its own deque *)
  injector_hits : int;  (* worker took the global FIFO front *)
  steals : int;  (* worker stole from another worker's deque *)
  parks : int;  (* worker went to sleep on the parking lot *)
  task_exns : int;  (* fire-and-forget tasks that raised (satellite fix:
                       these used to vanish in [try task () with _ -> ()]) *)
}

type t = {
  id : int;  (* distinguishes pools for the worker-of-this-pool check *)
  injector : task Queue.t;  (* external submissions, strict FIFO *)
  inj_lock : Mutex.t;
  deques : task Deque.t array;  (* one per worker, worker-forked tasks *)
  work_seq : int Atomic.t;  (* bumped after every enqueue anywhere *)
  park_lock : Mutex.t;
  park_cv : Condition.t;
  mutable n_parked : int;  (* guarded by park_lock *)
  stopping : bool Atomic.t;
  mutable workers : unit Domain.t array;
  (* scheduler counters, exported via [stats]/[register_telemetry] *)
  c_submitted : int Atomic.t;
  c_local : int Atomic.t;
  c_injector : int Atomic.t;
  c_steals : int Atomic.t;
  c_parks : int Atomic.t;
  c_task_exns : int Atomic.t;
}

let next_pool_id = Atomic.make 0

(* Domain-local flag marking pool workers; [map]/[run_all] from inside
   any pool's worker use the worker-side (fork-join or inline) path. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Domain-local worker index (-1 outside a pool worker), so tracing can
   attribute a task's spans to the domain that ran it. *)
let worker_ix : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

(* Domain-local id of the pool this worker belongs to (-1 outside), so
   a worker of pool A calling into pool B is treated as an external
   caller of B, not an owner of one of B's deques. *)
let worker_pool : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let worker_index () =
  match Domain.DLS.get worker_ix with -1 -> None | i -> Some i

let my_worker_slot t =
  if Domain.DLS.get worker_pool = t.id then Domain.DLS.get worker_ix else -1

let note_task_exn t =
  Atomic.incr t.c_task_exns;
  Minirel_telemetry.Flight.record Minirel_telemetry.Flight.Task_exn
    ~a:(max 0 (Domain.DLS.get worker_ix))

(* Wake parked workers after an enqueue. [work_seq] must already be
   bumped: a worker that scanned empty re-checks it under [park_lock]
   before sleeping, so either it sees the bump and rescans, or it is
   already parked and this signal reaches it. *)
let wake t ~all =
  Mutex.lock t.park_lock;
  if t.n_parked > 0 then
    if all then Condition.broadcast t.park_cv else Condition.signal t.park_cv;
  Mutex.unlock t.park_lock

let take_injector t =
  Mutex.lock t.inj_lock;
  let v = Queue.take_opt t.injector in
  Mutex.unlock t.inj_lock;
  v

(* One full scan for work, in non-starvation priority order: own deque
   (LIFO, cache-warm), then the injector front (FIFO claim keeps the
   shard-merge prefix property), then steal the oldest entry from
   another worker, starting after ourselves so victims rotate. *)
let find_task t ix =
  match Deque.pop t.deques.(ix) with
  | Some task ->
      Atomic.incr t.c_local;
      Some task
  | None -> (
      match take_injector t with
      | Some task ->
          Atomic.incr t.c_injector;
          Some task
      | None ->
          let n = Array.length t.deques in
          let rec try_victim k =
            if k >= n then None
            else
              let v = (ix + k) mod n in
              match Deque.steal t.deques.(v) with
              | Some task ->
                  Atomic.incr t.c_steals;
                  Minirel_telemetry.Flight.record
                    Minirel_telemetry.Flight.Sched_steal ~a:ix ~b:v;
                  Some task
              | None -> try_victim (k + 1)
          in
          try_victim 1)

let worker_loop t ix =
  Domain.DLS.set in_worker true;
  Domain.DLS.set worker_ix ix;
  Domain.DLS.set worker_pool t.id;
  let rec loop () =
    let seen = Atomic.get t.work_seq in
    match find_task t ix with
    | Some task ->
        (* tasks own their exceptions ([map] funnels them to the
           caller); never let one kill a worker — but count the escape
           and leave a flight event instead of dropping it silently *)
        (try task () with _ -> note_task_exn t);
        loop ()
    | None ->
        if Atomic.get t.stopping then ()  (* stopping and drained: exit *)
        else begin
          Mutex.lock t.park_lock;
          if Atomic.get t.work_seq = seen && not (Atomic.get t.stopping) then begin
            t.n_parked <- t.n_parked + 1;
            Atomic.incr t.c_parks;
            Condition.wait t.park_cv t.park_lock;
            t.n_parked <- t.n_parked - 1
          end;
          Mutex.unlock t.park_lock;
          loop ()
        end
  in
  loop ()

(* Worker deques are sized for nested fan-out (morsel batches per
   shard task: tens, not thousands); overflow runs inline, which is
   always safe. *)
let deque_capacity = 256

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      id = Atomic.fetch_and_add next_pool_id 1;
      injector = Queue.create ();
      inj_lock = Mutex.create ();
      deques = Array.init domains (fun _ -> Deque.create ~capacity:deque_capacity);
      work_seq = Atomic.make 0;
      park_lock = Mutex.create ();
      park_cv = Condition.create ();
      n_parked = 0;
      stopping = Atomic.make false;
      workers = [||];
      c_submitted = Atomic.make 0;
      c_local = Atomic.make 0;
      c_injector = Atomic.make 0;
      c_steals = Atomic.make 0;
      c_parks = Atomic.make 0;
      c_task_exns = Atomic.make 0;
    }
  in
  t.workers <- Array.init domains (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let size t = Array.length t.workers

let stats t =
  {
    submitted = Atomic.get t.c_submitted;
    local_hits = Atomic.get t.c_local;
    injector_hits = Atomic.get t.c_injector;
    steals = Atomic.get t.c_steals;
    parks = Atomic.get t.c_parks;
    task_exns = Atomic.get t.c_task_exns;
  }

let reset_stats t =
  List.iter
    (fun c -> Atomic.set c 0)
    [ t.c_submitted; t.c_local; t.c_injector; t.c_steals; t.c_parks; t.c_task_exns ]

(* the registry prefixes the source name, so the exported series are
   pool.sched.{submitted,...} and pool.task_exn *)
let register_telemetry t reg =
  Minirel_telemetry.Registry.register_source reg ~name:"pool"
    ~reset:(fun () -> reset_stats t)
    (fun () ->
      let s = stats t in
      let c v = Minirel_telemetry.Registry.Counter v in
      [
        ("sched.submitted", c s.submitted);
        ("sched.local_hits", c s.local_hits);
        ("sched.injector_hits", c s.injector_hits);
        ("sched.steals", c s.steals);
        ("sched.parks", c s.parks);
        ("task_exn", c s.task_exns);
      ])

let check_open t name =
  if Atomic.get t.stopping then
    invalid_arg (Printf.sprintf "Pool.%s: pool is shut down" name)

(* Enqueue externally-submitted tasks. The [stopping] check happens
   under [inj_lock] and [shutdown] flips [stopping] under the same
   lock, so a push that passed the check is visible to the workers'
   stopping-time drain — no task can slip in after the drain. *)
let inject t name tasks =
  Mutex.lock t.inj_lock;
  if Atomic.get t.stopping then begin
    Mutex.unlock t.inj_lock;
    invalid_arg (Printf.sprintf "Pool.%s: pool is shut down" name)
  end;
  List.iter (fun task -> Queue.push task t.injector) tasks;
  Mutex.unlock t.inj_lock;
  Atomic.incr t.work_seq;
  wake t ~all:(match tasks with _ :: _ :: _ -> true | _ -> false)

(* Fire-and-forget. From inside one of this pool's own workers (or any
   other pool's worker) the task runs inline — a nested submit must
   not wait on queue space or scheduling that only this very worker
   could provide. *)
let submit t task =
  check_open t "submit";
  Atomic.incr t.c_submitted;
  if Domain.DLS.get in_worker then (try task () with _ -> note_task_exn t)
  else inject t "submit" [ task ]

(* Fork-join [map] from inside one of this pool's own workers: fork
   every subtask onto the caller's own deque (reverse order, so LIFO
   pops run them in index order), then drain the deque; idle workers
   steal the oldest forks meanwhile. When the deque runs dry but
   stolen subtasks are still in flight, wait on the per-call latch —
   every completion signals it, and a fork sitting in our own deque
   can only be popped by us or stolen, so the wait cannot deadlock. *)
let map_fork_join t ix f arr =
  let n = Array.length arr in
  let dq = t.deques.(ix) in
  let results = Array.make n None in
  let exns = Array.make n None in
  let lock = Mutex.create () in
  let settled = Condition.create () in
  let remaining = ref n in
  let subtask i () =
    (match f arr.(i) with
    | r -> results.(i) <- Some r
    | exception e -> exns.(i) <- Some e);
    Mutex.lock lock;
    decr remaining;
    if !remaining = 0 then Condition.signal settled;
    Mutex.unlock lock
  in
  ignore (Atomic.fetch_and_add t.c_submitted n);
  let forked = ref false in
  for i = n - 1 downto 0 do
    if Deque.push dq (subtask i) then forked := true else subtask i ()
  done;
  if !forked then begin
    Atomic.incr t.work_seq;
    wake t ~all:true
  end;
  let unsettled () =
    Mutex.lock lock;
    let r = !remaining > 0 in
    Mutex.unlock lock;
    r
  in
  let rec drain () =
    if unsettled () then
      match Deque.pop dq with
      | Some task ->
          (* ours, or an outer fork-join's subtask on this worker —
             either way running it makes progress *)
          Atomic.incr t.c_local;
          (try task () with _ -> note_task_exn t);
          drain ()
      | None ->
          (* all our remaining forks were stolen and are running
             elsewhere; their completions signal the latch *)
          Mutex.lock lock;
          while !remaining > 0 do
            Condition.wait settled lock
          done;
          Mutex.unlock lock
  in
  drain ();
  Array.iter (function Some e -> raise e | None -> ()) exns;
  Array.map (fun r -> Option.get r) results

(* [map] from an external caller: batch the tasks into the injector
   under one lock acquisition and block on a per-call latch (the old
   pool woke every waiter through one shared condvar per settle). *)
let map_external t f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  let exns = Array.make n None in
  let lock = Mutex.create () in
  let settled = Condition.create () in
  let remaining = ref n in
  let task i () =
    (match f arr.(i) with
    | r -> results.(i) <- Some r
    | exception e -> exns.(i) <- Some e);
    Mutex.lock lock;
    decr remaining;
    if !remaining = 0 then Condition.signal settled;
    Mutex.unlock lock
  in
  ignore (Atomic.fetch_and_add t.c_submitted n);
  inject t "map" (List.init n (fun i -> task i));
  Mutex.lock lock;
  while !remaining > 0 do
    Condition.wait settled lock
  done;
  Mutex.unlock lock;
  Array.iter (function Some e -> raise e | None -> ()) exns;
  Array.map (fun r -> Option.get r) results

(* Run [f] on every element, workers executing tasks concurrently; the
   caller blocks until all settle. Exceptions re-raise in index order
   (the lowest-index failure wins, matching what a sequential
   [Array.map] would have raised first); later tasks still run. *)
let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if n = 1 then Array.map f arr
  else begin
    check_open t "map";
    let slot = my_worker_slot t in
    if slot >= 0 then map_fork_join t slot f arr
    else if Domain.DLS.get in_worker then
      (* a *different* pool's worker: run inline — parking this worker
         on another pool's scheduling is how cross-pool waits deadlock *)
      Array.map f arr
    else map_external t f arr
  end

let run_all t thunks = ignore (map t (fun f -> f ()) (Array.of_list thunks))

(* Graceful teardown: queued tasks drain (workers keep scanning the
   injector and every deque until both are empty), then every worker
   exits and is joined. Idempotent. *)
let shutdown t =
  Mutex.lock t.inj_lock;
  Atomic.set t.stopping true;
  Mutex.unlock t.inj_lock;
  Atomic.incr t.work_seq;
  Mutex.lock t.park_lock;
  Condition.broadcast t.park_cv;
  Mutex.unlock t.park_lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]
