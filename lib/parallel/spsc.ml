(* A bounded single-producer single-consumer queue: one shard task
   streams (phase, tuple) items in, the merging caller drains them.
   Bounded so a fast producer shard cannot balloon memory ahead of the
   consumer — it blocks (backpressure) until the consumer catches up.

   A mutex + two condvars over a ring buffer: items move one lock
   acquisition per push/pop, and blocked sides sleep instead of
   spinning (on an oversubscribed host, spinning producers would
   starve the very consumer they wait for). *)

type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* next slot to read *)
  mutable tail : int;  (* next slot to write *)
  mutable len : int;
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  {
    buf = Array.make capacity None;
    head = 0;
    tail = 0;
    len = 0;
    mutex = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
  }

let capacity t = Array.length t.buf

let length t =
  Mutex.lock t.mutex;
  let n = t.len in
  Mutex.unlock t.mutex;
  n

(* Blocks while full. *)
let push t x =
  Mutex.lock t.mutex;
  while t.len = Array.length t.buf do
    Condition.wait t.not_full t.mutex
  done;
  t.buf.(t.tail) <- Some x;
  t.tail <- (t.tail + 1) mod Array.length t.buf;
  t.len <- t.len + 1;
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex

(* Blocks while empty. *)
let pop t =
  Mutex.lock t.mutex;
  while t.len = 0 do
    Condition.wait t.not_empty t.mutex
  done;
  let x = Option.get t.buf.(t.head) in
  t.buf.(t.head) <- None;
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.len <- t.len - 1;
  Condition.signal t.not_full;
  Mutex.unlock t.mutex;
  x
