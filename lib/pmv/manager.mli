(** Managing many PMVs at once — one per frequently used query
    template, as the paper's sizing example anticipates ("the memory
    can hold many PMVs"). The manager sizes views from per-view storage
    budgets via the Section 3.2 rule, routes queries to the right view,
    and attaches deferred maintenance for all of them. *)

open Minirel_query

type t

(** [registry] receives the engine-level telemetry sources (buffer
    pool, plan cache, executor) and every per-view [pmv.<template>]
    source; default: the process-global registry. [default_adaptive]
    (default false) gives every new view a heavy-light maintenance
    classifier (DESIGN.md Section 17). *)
val create :
  ?default_f_max:int ->
  ?default_policy:Minirel_cache.Policies.kind ->
  ?default_adaptive:bool ->
  ?registry:Minirel_telemetry.Registry.t ->
  Minirel_index.Catalog.t ->
  t

val catalog : t -> Minirel_index.Catalog.t

(** The telemetry registry this manager registers its sources in. *)
val registry : t -> Minirel_telemetry.Registry.t

(** The template plan cache every routed query answers through. *)
val plan_cache : t -> Minirel_exec.Plan_cache.t

val views : t -> View.t list
val n_views : t -> int

(** The view registered for a template name, if any. *)
val find : t -> template:string -> View.t option

(** Create and register a PMV for the template. Size it either directly
    ([capacity]) or from a storage budget ([ub_bytes], with [sample]
    result tuples refining the paper's At). If maintenance is attached,
    the new view subscribes immediately.
    [adaptive] (default: the manager's [default_adaptive]) attaches a
    heavy-light maintenance classifier to the new view.
    @raise Invalid_argument when the template already has a view or
    when neither [capacity] nor [ub_bytes] is given. *)
val create_view :
  ?policy:Minirel_cache.Policies.kind ->
  ?f_max:int ->
  ?capacity:int ->
  ?ub_bytes:int ->
  ?sample:Minirel_storage.Tuple.t list ->
  ?adaptive:bool ->
  t ->
  Template.compiled ->
  View.t

(** Turn heavy-light maintenance on or off for every registered view;
    turning it on keeps an already-trained classifier in place. *)
val set_adaptive_all : t -> bool -> unit

(** {2 Global UB budget arbitration (DESIGN.md Section 17)}

    Instead of freezing each template's UB at creation, the manager can
    own one global byte budget: {!rebalance} re-splits it across
    templates in proportion to their EMA-smoothed measured
    hit-value-per-byte (hits + shaped answers + 1% of partial tuples,
    per byte of footprint), floors every share at half the equal share,
    and resizes each view's entry store (and 4x probe store) through
    the Section 3.2 rule. *)

(** [set_global_budget ?auto_every t total] arms the arbiter with
    [total] bytes across all views; when [auto_every] is given,
    {!answer} triggers a rebalance every that many view-answered
    queries. @raise Invalid_argument on non-positive arguments. *)
val set_global_budget : ?auto_every:int -> t -> int -> unit

val global_budget : t -> int option

(** Re-split the global budget now; returns the new (template, L) pairs
    ([] when no budget is armed or no views exist). *)
val rebalance : t -> (string * int) list

(** Rebalances performed since creation. *)
val rebalances : t -> int

(** Attach deferred maintenance for every current and future view. *)
val attach_maintenance : t -> Minirel_txn.Txn.t -> unit

val drop_view : t -> template:string -> unit

(** Answer through the template's view when one exists, plainly
    otherwise; the boolean reports whether a view was used. Plans come
    from the manager's plan cache; [profile] collects per-operator
    executor counters; [par] runs O3 scans and hash joins
    morsel-parallel on the Domain pool; [probe_path] selects the
    {!Answer.probe_path} (default [Locked]); [trace] propagates a
    caller-owned trace context (see {!Answer.answer}). *)
val answer :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  ?par:Minirel_parallel.Pool.t ->
  ?profile:Minirel_exec.Exec_stats.t ->
  ?probe_path:Answer.probe_path ->
  ?trace:Minirel_telemetry.Span.trace ->
  t ->
  Instance.t ->
  on_tuple:(Answer.phase -> Minirel_storage.Tuple.t -> unit) ->
  Answer.stats * bool

val total_bytes : t -> int

type report_row = {
  template : string;
  entries : int;
  tuples : int;
  bytes : int;
  hit_ratio : float;
  queries : int;
}

val report : t -> report_row list
val pp_report : t Fmt.t
