(** Heavy-light classifier for adaptive deferred maintenance (DESIGN.md
    Section 17). Classifies per-relation update keys (base-tuple
    projections onto a relation's Ls' attributes) by recent update
    frequency: heavy keys keep eager victim maintenance, light keys
    only lapse the affected entries. The sketch never under-counts, so
    a key truly at or above the threshold is never classified light. *)

type t

(** Sketch dimensions as in {!Freq_sketch.create}; a key is heavy when
    its estimate reaches [heavy_share] of the decayed observation
    total, floored at [heavy_min]. *)
val create :
  ?rows:int ->
  ?width:int ->
  ?decay_every:int ->
  ?heavy_min:int ->
  ?heavy_share:float ->
  unit ->
  t

(** Count one update of [key] and return whether it is heavy. *)
val observe : t -> 'a -> bool

(** Current heavy threshold (adapts with observed volume). *)
val threshold : t -> int

val sketch : t -> Freq_sketch.t

(** Classification counters since creation (or [reset_counters]). *)
val n_heavy : t -> int

val n_light : t -> int
val reset_counters : t -> unit
