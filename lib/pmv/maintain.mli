(** Deferred PMV maintenance (Section 3.4). On a change to a base
    relation of the view:
    {ul
    {- insert: nothing — future queries fill new results lazily;}
    {- delete: remove affected cached tuples, either by delta join (the
       paper's base algorithm) or through the auxiliary indexes (the
       full version's optimisation, conservative but join-free);}
    {- update: skipped entirely when no attribute in Ls' or Cjoin
       changed, otherwise the old versions are handled as deletions.}} *)

type strategy =
  | Delta_join  (** ΔR ⋈ other relations, then bcp-index lookups *)
  | Aux_index  (** join-free victim lookup; falls back to [Delta_join]
                   when the view has no auxiliary indexes *)

val strategy_to_string : strategy -> string

(** Positions in relation [i]'s schema that matter to the view (Ls',
    join and fixed-predicate attributes). *)
val relevant_positions : Minirel_query.Template.compiled -> int -> int list

(** Whether an (old, new) update pair touches a relevant position. *)
val update_is_relevant :
  Minirel_query.Template.compiled ->
  int ->
  Minirel_storage.Tuple.t * Minirel_storage.Tuple.t ->
  bool

(** Process one transaction delta against the view. [fault] scopes the
    [maintain.apply] failpoint (default: the process-global registry;
    the lock-aware paths use the transaction manager's scope). *)
val on_delta :
  ?strategy:strategy ->
  ?fault:Minirel_fault.Fault.reg ->
  View.t ->
  Minirel_index.Catalog.t ->
  Minirel_txn.Txn.delta ->
  unit

(** Subscribe the view to a transaction manager. With [use_locks]
    (default true), maintenance takes an X lock on the view (Section
    3.6); if a reader holds its S lock across O2-O3, the delta queues
    and is applied at the next grantable opportunity — the answering
    layer's stale purge keeps answers exact in the interim. *)
val attach : ?strategy:strategy -> ?use_locks:bool -> View.t -> Minirel_txn.Txn.t -> unit

(** Deltas waiting for the view's X lock. *)
val n_pending : View.t -> int

(** Apply queued deltas now (e.g. after the blocking reader finished). *)
val flush_pending : ?strategy:strategy -> View.t -> Minirel_txn.Txn.t -> unit

val detach : View.t -> Minirel_txn.Txn.t -> unit
