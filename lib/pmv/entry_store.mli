(** Bounded storage for PMV entries (Section 3.2): a hash table from
    basic condition part to its cached result tuples — the paper's
    "index I on bcp" — with residency governed by a pluggable
    replacement policy (CLOCK by default, 2Q per Section 3.5) and at
    most F tuples per bcp. The entry table and the policy stay in lock
    step: an entry exists iff its bcp is resident; evictions drop the
    entry and report each dropped tuple through [on_change].

    Every entry additionally publishes an immutable {!version} through
    an atomic pointer (DESIGN.md Section 13): writers mutate under the
    engine's X discipline and swap in fresh versions, retiring old ones
    to an epoch domain; {!probe} reads the current version under an
    epoch guard, lock-free and tear-free against concurrent
    maintenance. *)

open Minirel_storage
open Minirel_query

type version = {
  v_tuples : Tuple.t list;  (** immutable snapshot, most recent first *)
  v_n : int;
  v_complete : bool;
      (** the whole result multiset for the bcp, not a partial fill *)
  v_stamp : int;  (** data stamp at publication; see {!version_trusted} *)
}

(** Memoized per-group aggregate accumulators over one entry's cached
    tuples (the §3.6 aggregate bcp entries). Maintained incrementally
    at the tuple choke points: additions fold in, deletions subtract
    (COUNT/SUM invert; a deleted MIN/MAX extremum triggers a bounded
    per-group rebuild from the <= F cached tuples). *)
type agg_cache

type entry = {
  e_bcp : Bcp.t;
  mutable tuples : Tuple.t list;  (** most recently cached first; length <= F *)
  mutable n : int;
  mutable refs : int;  (** lifetime references; feeds popularity ranking *)
  published : version Atomic.t;  (** current immutable snapshot *)
  mutable e_agg : agg_cache option;
      (** grouped-aggregate memo; [None] until a grouped probe *)
  mutable e_lapsed : bool;
      (** a light-key delta skipped this entry's maintenance; purged
          before its next serve (DESIGN.md Section 17) *)
}

type change = Added | Removed

type t

(** @raise Invalid_argument if [f_max <= 0] or [capacity <= 0]. *)
val create :
  ?policy:Minirel_cache.Policies.kind -> capacity:int -> f_max:int -> unit -> t

(** Observe every cached-tuple addition and removal (fills, deferred
    maintenance, evictions); used to maintain auxiliary indexes. *)
val set_on_change : t -> (change -> Bcp.t -> Tuple.t -> unit) -> unit

val f_max : t -> int
val capacity : t -> int

(** Change the entry capacity in place (the global-budget arbiter's
    rebalance, DESIGN.md Section 17). Shrinking evicts victims through
    the normal eviction route, so [on_change] observes every dropped
    tuple. *)
val resize : t -> capacity:int -> unit

val n_entries : t -> int
val n_tuples : t -> int

(** Current bytes of cached tuples (excluding the bcp index side). *)
val tuple_bytes : t -> int

val policy_name : t -> string
val policy_stats : t -> Minirel_cache.Cache_stats.t

(** Pure lookup: no recency update, no admission. Writer-side only. *)
val find : t -> Bcp.t -> entry option

(** {2 Lock-free read side} *)

(** Lock-free probe from any domain: the bcp's currently published
    version, or [None] when the bcp is not resident. Runs under an
    epoch guard; never blocks on or tears under concurrent writers. *)
val probe : t -> Bcp.t -> version option

(** Bracket a multi-probe section in a single epoch guard. Escaped
    versions stay valid (immutable, GC-kept); the guard bounds how long
    the store must retain superseded versions. *)
val read : t -> (unit -> 'a) -> 'a

(** The data staleness clock: bumped by {!invalidate_complete} on every
    relevant base delta. *)
val current_stamp : t -> int

(** Untrust every complete version published before now (one atomic
    increment; versions are untouched). *)
val invalidate_complete : t -> unit

(** A version may be served as the bcp's whole answer iff it was
    installed complete and no relevant delta committed since. *)
val version_trusted : t -> version -> bool

(** Install the complete result multiset for [bcp] as captured against
    data state [stamp]; [false] if it exceeds F. Racing deltas are
    safe: they bump the stamp, so a late install publishes
    already-untrusted. *)
val install_complete : t -> Bcp.t -> Tuple.t list -> stamp:int -> bool

val epoch_stats : t -> Minirel_parallel.Epoch.stats

(** Release retired versions no active probe can still observe. *)
val reclaim : t -> int

(** Engine shutdown: drain the whole retire chain (caller guarantees no
    probe in flight) so create/destroy cycles do not leak versions. *)
val shutdown : t -> unit

(** {2 Write side (engine-serialized)} *)

(** One query-time reference (Operation O2): [`Resident entry] serves;
    [`Admitted entry] is 2Q's ghost promotion (empty entry, to be
    filled by this query's O3); [`Rejected storable] is a miss —
    [storable] tells whether O3 may admit the bcp when a result tuple
    materialises ({!admit_for_fill}). *)
val reference : t -> Bcp.t -> [ `Resident of entry | `Admitted of entry | `Rejected of bool ]

(** Operation O3 admission: make the bcp resident (possibly purging a
    victim) and return its (possibly fresh, empty) entry. *)
val admit_for_fill : t -> Bcp.t -> entry

(** Cache one result tuple, respecting the per-bcp bound F; [false]
    when the entry is full. *)
val add_tuple : t -> entry -> Tuple.t -> bool

(** Remove one occurrence from the bcp's entry (deferred maintenance);
    entries may become empty but keep their slot until evicted. *)
val remove_tuple : t -> Bcp.t -> Tuple.t -> bool

(** Remove every cached tuple satisfying the predicate; returns the
    count. Conservative auxiliary-maintenance path. *)
val remove_matching : t -> (Tuple.t -> bool) -> int

(** Drop an entry and its residency entirely. *)
val drop_entry : t -> Bcp.t -> unit

(** {2 Lapse protocol (heavy-light adaptive maintenance)} *)

(** Mark [bcp]'s entry lapsed instead of removing its victims: the
    entry keeps its slot but its cached tuples may be stale, and they
    are purged (through [on_change]) the next time the entry is
    referenced or refilled — recompute-on-probe. [true] on a fresh
    mark, [false] when absent or already lapsed. *)
val mark_lapsed : t -> Bcp.t -> bool

val is_lapsed : entry -> bool

(** Lifetime lapse marks / reference-time recomputes (the
    [maint.lapsed] / [maint.recompute] telemetry). *)
val n_lapse_marked : t -> int

val n_lapse_recomputed : t -> int

val iter : t -> (entry -> unit) -> unit
val fold : t -> ('a -> entry -> 'a) -> 'a -> 'a

(** Per-group accumulators over the entry's cached tuples, grouped by
    the projected [key] positions. Creates (or rebuilds, when the
    memo's key/agg signature differs) the entry's {!agg_cache}; later
    tuple additions and removals keep it fresh incrementally. Returned
    accumulators are copies — callers may merge into them freely.
    Writer-side only (the memo is not safe to read lock-free). *)
val entry_groups :
  t ->
  entry ->
  key:int array ->
  aggs:Minirel_query.Aggregate.spec array ->
  (Tuple.t * Minirel_query.Aggregate.acc array) list

(** The Section 3.2 bounds: entries <= L, tuples <= L*F, every entry
    consistent with its published version. *)
val invariants_ok : t -> bool
