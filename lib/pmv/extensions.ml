(* Extensions from Section 3.6: DISTINCT queries, aggregate queries, and
   EXISTS-style nested queries, plus small conveniences built on the
   same O1/O2/O3 machinery. *)

open Minirel_storage
open Minirel_query

(* Per-shape answer counters: how often each §3.6 query shape is
   served, mirroring answer.ml's process-wide metric handles. *)
module Tm = Minirel_telemetry.Telemetry

let c_shape_distinct = Tm.counter "answer.shape.distinct"
let c_shape_grouped = Tm.counter "answer.shape.grouped"
let c_shape_ordered = Tm.counter "answer.shape.ordered"
let c_shape_exists = Tm.counter "answer.shape.exists"

let count_shape c = if Tm.is_enabled () then Minirel_telemetry.Registry.incr c

(* For answer paths assembled outside this module (the shard router):
   count the query once at the routing layer, not once per shard. *)
let note_shape = function
  | `Distinct -> count_shape c_shape_distinct
  | `Grouped -> count_shape c_shape_grouped
  | `Ordered -> count_shape c_shape_ordered
  | `Exists -> count_shape c_shape_exists

(* Per-view shaped-answer count: the budget arbiter's value measure
   weighs shaped traffic alongside plain probe hits (DESIGN.md
   Section 17). *)
let note_view_shape view =
  let s = View.stats view in
  s.View.shaped_queries <- s.View.shaped_queries + 1

(* --- DISTINCT --- *)

(* Answer with set semantics: each distinct result tuple is delivered
   exactly once; partial (PMV-served) tuples keep their early-delivery
   advantage. Implemented as the paper prescribes: only distinct tuples
   from O2 are surfaced, and O3 suppresses anything already delivered. *)
let answer_distinct ?locks ?txn ?probe_path ~view catalog instance ~on_tuple =
  count_shape c_shape_distinct;
  note_view_shape view;
  let seen = Tuple.Table.create 256 in
  let dedup phase tuple =
    if not (Tuple.Table.mem seen tuple) then begin
      Tuple.Table.replace seen tuple ();
      on_tuple phase tuple
    end
  in
  let stats = Answer.answer ?locks ?txn ?probe_path ~view catalog instance ~on_tuple:dedup in
  (stats, Tuple.Table.length seen)

(* --- aggregates (group by) --- *)

type agg = Count | Sum of int | Avg of int | Min_agg of int | Max_agg of int

type accumulator = { mutable count : int; mutable sum : float; mutable min : float; mutable max : float }

let new_acc () = { count = 0; sum = 0.0; min = Float.infinity; max = Float.neg_infinity }

let acc_add acc v =
  acc.count <- acc.count + 1;
  acc.sum <- acc.sum +. v;
  if v < acc.min then acc.min <- v;
  if v > acc.max then acc.max <- v

let float_of_value = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | Value.Null -> 0.0
  | Value.Str _ -> invalid_arg "Extensions: cannot aggregate a string attribute"

let finish agg acc =
  match agg with
  | Count -> float_of_int acc.count
  | Sum _ -> acc.sum
  | Avg _ -> if acc.count = 0 then 0.0 else acc.sum /. float_of_int acc.count
  | Min_agg _ -> acc.min
  | Max_agg _ -> acc.max

let measured_value agg tuple =
  match agg with
  | Count -> 1.0
  | Sum pos | Avg pos | Min_agg pos | Max_agg pos -> float_of_value tuple.(pos)

type grouped = {
  partial_groups : (Tuple.t * float) list;
      (* early, approximate: aggregates over the PMV-cached subset *)
  exact_groups : (Tuple.t * float) list;  (* final answer *)
  answer_stats : Answer.stats;
}

(* Group-by aggregation with early partial aggregates. [group_by] and
   the aggregate's position index into the Ls' result tuple. The partial
   groups summarise only the hot cached tuples — they are delivered
   immediately and marked approximate, per the paper's changed user
   interface for aggregate queries. *)
let answer_grouped ?locks ?txn ~view catalog instance ~group_by ~agg =
  let partial_tbl = Tuple.Table.create 64 in
  let exact_tbl = Tuple.Table.create 64 in
  let add tbl key v =
    let acc =
      match Tuple.Table.find_opt tbl key with
      | Some acc -> acc
      | None ->
          let acc = new_acc () in
          Tuple.Table.replace tbl key acc;
          acc
    in
    acc_add acc v
  in
  let on_tuple phase tuple =
    let key = Tuple.project tuple group_by in
    let v = measured_value agg tuple in
    (match phase with Answer.Partial -> add partial_tbl key v | Answer.Remaining -> ());
    add exact_tbl key v
  in
  let answer_stats = Answer.answer ?locks ?txn ~view catalog instance ~on_tuple in
  let collect tbl =
    Tuple.Table.fold (fun key acc out -> (key, finish agg acc) :: out) tbl []
    |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)
  in
  { partial_groups = collect partial_tbl; exact_groups = collect exact_tbl; answer_stats }

(* --- ORDER BY --- *)

let order_compare ~order_by ~desc a b =
  let c = Tuple.compare (Tuple.project a order_by) (Tuple.project b order_by) in
  if desc then -c else c

type ordered = {
  early_sorted : Tuple.t list;
      (* the PMV-served subset, sorted: shown to the user immediately,
         marked as a hot preview (its elements need not be a prefix of
         the final order) *)
  final_sorted : Tuple.t list;  (* the full sorted answer *)
  ordered_stats : Answer.stats;
}

(* Answer a query with an ORDER BY clause (Section 3.6: "with minor
   changes in the user interface"). Sorting is blocking, so the early
   value of the PMV here is a sorted preview of the hot tuples,
   delivered before execution; the exact sorted result follows. *)
let answer_ordered ?locks ?txn ~view catalog instance ~order_by ?(desc = false) () =
  let partial = ref [] and all = ref [] in
  let stats =
    Answer.answer ?locks ?txn ~view catalog instance ~on_tuple:(fun phase t ->
        all := t :: !all;
        match phase with Answer.Partial -> partial := t :: !partial | Answer.Remaining -> ())
  in
  let cmp = order_compare ~order_by ~desc in
  {
    early_sorted = List.sort cmp !partial;
    final_sorted = List.sort cmp !all;
    ordered_stats = stats;
  }

(* --- early termination (Benefit 2) --- *)

exception Stop

(* The first [k] result tuples (hot ones first, since O2 streams before
   execution), terminating the query early once they are in hand. *)
let answer_first_k ?locks ?txn ~view catalog instance ~k =
  if k <= 0 then invalid_arg "Extensions.answer_first_k: k must be positive";
  let acc = ref [] and n = ref 0 in
  (try
     ignore
       (Answer.answer ?locks ?txn ~view catalog instance ~on_tuple:(fun _ t ->
            acc := t :: !acc;
            incr n;
            if !n >= k then raise Stop))
   with Stop -> ());
  List.rev !acc

(* --- exact grouped aggregation (associative accumulators) --- *)

(* Groups keyed by the projected key tuple, each carrying unfinalized
   accumulators, sorted by key. Kept unfinalized so per-shard partials
   merge associatively (DESIGN.md Section 15); finalize only at the
   very end. *)
type group_acc = (Tuple.t * Aggregate.acc array) list

type grouped_exact = {
  g_partial : group_acc;  (* accumulated over the O2 (PMV-served) phase *)
  g_groups : group_acc;  (* over the whole delivered stream *)
  g_stats : Answer.stats;
}

let collect_groups tbl =
  Tuple.Table.fold (fun key accs out -> (key, accs) :: out) tbl []
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let fold_group tbl ~key ~aggs tuple =
  let k = Tuple.project tuple key in
  let accs =
    match Tuple.Table.find_opt tbl k with
    | Some accs -> accs
    | None ->
        let accs = Array.map (fun _ -> Aggregate.create ()) aggs in
        Tuple.Table.add tbl k accs;
        accs
  in
  Array.iteri (fun i spec -> Aggregate.add spec accs.(i) tuple) aggs

(* Exact grouped answer through the O1/O2/O3 pipeline: every delivered
   tuple (exactly once, by the DS identity) folds into its group, so
   the accumulators inherit exactly-once too. *)
let answer_groups ?locks ?txn ?probe_path ~view catalog instance ~key ~aggs =
  count_shape c_shape_grouped;
  note_view_shape view;
  let partial_tbl = Tuple.Table.create 64 and exact_tbl = Tuple.Table.create 64 in
  let on_tuple phase tuple =
    (match phase with
    | Answer.Partial -> fold_group partial_tbl ~key ~aggs tuple
    | Answer.Remaining -> ());
    fold_group exact_tbl ~key ~aggs tuple
  in
  let g_stats = Answer.answer ?locks ?txn ?probe_path ~view catalog instance ~on_tuple in
  { g_partial = collect_groups partial_tbl; g_groups = collect_groups exact_tbl; g_stats }

(* Merge two sorted group lists; on a shared key the right operand's
   accumulators fold into the left's (the left is mutated — call sites
   own their operands). Associative, so shard partials merge in any
   order. *)
let rec merge_groups a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, aa) :: ta, (kb, ab) :: tb ->
      let c = Tuple.compare ka kb in
      if c < 0 then (ka, aa) :: merge_groups ta b
      else if c > 0 then (kb, ab) :: merge_groups a tb
      else begin
        Array.iteri (fun i acc -> Aggregate.merge aa.(i) acc) ab;
        (ka, aa) :: merge_groups ta tb
      end

let finalize_groups ~aggs groups =
  List.map
    (fun (k, accs) -> (k, Array.mapi (fun i acc -> Aggregate.finalize aggs.(i) acc) accs))
    groups

(* O2-only grouped fast path: when every condition part's bcp holds a
   trusted complete version, the grouped answer is assembled from the
   cache alone, with no O3 execution. Exact condition parts use the
   entry's memoized per-group accumulators (kept fresh through the
   maintenance choke points); inexact ones filter the cached tuples by
   the residual predicate. [None] on any miss or untrusted version. *)
let probe_groups ?(probe_path = Answer.Locked) ~view instance ~key ~aggs =
  let compiled = Instance.compiled instance in
  let store =
    match probe_path with
    | Answer.Locked -> View.store view
    | Answer.Epoch -> View.probe_store view
  in
  let cps = Condition_part.decompose instance in
  let rec go acc = function
    | [] -> Some acc
    | cp :: rest -> (
        let bcp = Condition_part.bcp cp in
        match probe_path with
        | Answer.Locked -> (
            match Entry_store.find store bcp with
            | None -> None
            | Some entry ->
                if
                  Entry_store.is_lapsed entry
                  || not
                       (Entry_store.version_trusted store (Atomic.get entry.published))
                then None
                else
                  let part =
                    if Condition_part.is_exact cp then
                      Entry_store.entry_groups store entry ~key ~aggs
                    else
                      let tbl = Tuple.Table.create 8 in
                      List.iter
                        (fun t ->
                          if Condition_part.check compiled cp t then
                            fold_group tbl ~key ~aggs t)
                        entry.tuples;
                      collect_groups tbl
                  in
                  go (merge_groups acc part) rest)
        | Answer.Epoch -> (
            match Entry_store.probe store bcp with
            | None -> None
            | Some v ->
                if not (Entry_store.version_trusted store v) then None
                else
                  let tbl = Tuple.Table.create 8 in
                  List.iter
                    (fun t ->
                      if
                        Condition_part.is_exact cp
                        || Condition_part.check compiled cp t
                      then fold_group tbl ~key ~aggs t)
                    v.v_tuples;
                  go (merge_groups acc (collect_groups tbl)) rest))
  in
  go [] cps

(* --- ORDER BY ... LIMIT k (top-k heap) --- *)

(* The first [k] tuples of the total order [Ordering.cmp ~order] — a
   bounded heap over the whole delivered stream (sorting is blocking,
   so unlike [answer_first_k] the scan cannot stop early; the heap
   bounds memory to k and the result is prefix-exact under the shared
   comparator). *)
let answer_ordered_k ?locks ?txn ?probe_path ~view catalog instance ~order ~k =
  count_shape c_shape_ordered;
  note_view_shape view;
  if k <= 0 then invalid_arg "Extensions.answer_ordered_k: k must be positive";
  let all = ref [] in
  let stats =
    Answer.answer ?locks ?txn ?probe_path ~view catalog instance ~on_tuple:(fun _ t ->
        all := t :: !all)
  in
  let sorted =
    Minirel_exec.Grouping.top_k ~cmp:(Ordering.cmp ~order) ~k
      (Minirel_exec.Cursor.of_list !all)
  in
  (sorted, stats)

(* --- EXISTS nested queries --- *)

(* Witness check for an EXISTS subquery: if the subquery's PMV caches
   any tuple satisfying it, EXISTS is true without touching the engine
   ("a PMV can be used to quickly generate partial results of the
   subquery... the process of checking the EXISTS condition can be sped
   up"). Falls back to executing the subquery until the first tuple.
   Probing uses pure lookups: no recency update, no admission. *)
let cached_witness ?(probe_path = Answer.Locked) ~view instance =
  let compiled = Instance.compiled instance in
  let cps = Condition_part.decompose instance in
  match probe_path with
    | Answer.Locked ->
        (* a cached tuple is a valid witness only while no relevant
           delta is waiting in deferred maintenance and its entry has
           not lapsed (a lapsed entry's tuples may be stale) *)
        let store = View.store view in
        View.pending_deltas view = []
        && List.exists
             (fun cp ->
               match Entry_store.find store (Condition_part.bcp cp) with
               | None -> false
               | Some entry ->
                   (not (Entry_store.is_lapsed entry))
                   && List.exists
                        (fun tuple -> Condition_part.check compiled cp tuple)
                        entry.Entry_store.tuples)
             cps
    | Answer.Epoch ->
        (* lock-free: only a trusted complete version proves freshness *)
        let store = View.probe_store view in
        List.exists
          (fun cp ->
            match Entry_store.probe store (Condition_part.bcp cp) with
            | None -> false
            | Some v ->
                Entry_store.version_trusted store v
                && List.exists
                     (fun tuple -> Condition_part.check compiled cp tuple)
                     v.Entry_store.v_tuples)
          cps

let exists_ ?(probe_path = Answer.Locked) ~view catalog instance =
  count_shape c_shape_exists;
  note_view_shape view;
  if cached_witness ~probe_path ~view instance then (true, `From_pmv)
  else
    let plan = Minirel_exec.Planner.plan_query catalog instance in
    let cursor = Minirel_exec.Executor.cursor catalog plan in
    ((match cursor () with Some _ -> true | None -> false), `Executed)

(* Main query with an EXISTS subquery template: for each candidate
   tuple, build the subquery instance and short-circuit through the
   subquery's PMV. Returns the accepted candidates and how many EXISTS
   checks the PMV answered. *)
let filter_exists ~view catalog ~candidates ~subquery_of =
  let hits = ref 0 in
  let kept =
    List.filter
      (fun candidate ->
        let sub = subquery_of candidate in
        match exists_ ~view catalog sub with
        | true, `From_pmv ->
            incr hits;
            true
        | true, `Executed -> true
        | false, _ -> false)
      candidates
  in
  (kept, !hits)
