(* The partial materialized view object (Section 3.2):

     create partial materialized view V_PM as subset of
       select Ls' from R1, ..., Rn where Cjoin
       with selection condition template Cselect;

   A view bundles the compiled template, the bounded entry store, and —
   when enabled — auxiliary in-memory indexes over the Ls' attributes of
   each base relation, the full version's device for maintaining the
   PMV on deletes without recomputing the delta join (Section 3.4).

   Auxiliary index correctness: a PMV is *any* subset of its containing
   MV, so removing too much is always safe. On a delete from base
   relation R_i we drop every cached tuple that agrees with the deleted
   tuple on R_i's Ls' attributes — a superset of the tuples that
   actually lost a derivation. *)

open Minirel_storage
open Minirel_query

type aux = {
  aux_rel : int;  (* template relation index *)
  base_positions : int array;  (* in the base relation's schema *)
  result_positions : int array;  (* in the Ls' tuple *)
  buckets : (Bcp.t * Tuple.t) list ref Tuple.Table.t;  (* key -> occupants *)
}

type stats = {
  mutable queries : int;  (* answered through this view *)
  mutable query_hits : int;  (* queries served >= 1 partial tuple source bcp *)
  mutable partial_tuples : int;  (* tuples served from the view *)
  mutable fills : int;  (* tuples cached during O3 *)
  mutable skipped_inserts : int;  (* base inserts needing no maintenance *)
  mutable maint_removed : int;  (* tuples dropped by deferred maintenance *)
  mutable maint_skipped_updates : int;  (* updates not touching Ls'/Cjoin *)
  mutable shaped_queries : int;  (* §3.6 shaped answers (distinct/grouped/...) *)
}

type t = {
  name : string;
  compiled : Template.compiled;
  store : Entry_store.t;
  probe_store : Entry_store.t;
      (* epoch fast path: complete per-bcp answers installed by fallback
         queries and served lock-free; separate from [store] so the
         paper's F bound on partial fills stays untouched *)
  aux : aux array option;
  stats : stats;
  relevant : int list array;  (* per relation: positions that matter to the view *)
  mutable pending_deltas : Minirel_txn.Txn.delta list;
      (* maintenance deferred past a reader's S lock (newest first) *)
  mutable adaptive : Adaptive.t option;
      (* heavy-light classifier; None = pure eager maintenance *)
}

let empty_stats () =
  {
    queries = 0;
    query_hits = 0;
    partial_tuples = 0;
    fills = 0;
    skipped_inserts = 0;
    maint_removed = 0;
    maint_skipped_updates = 0;
    shaped_queries = 0;
  }

(* Positions (in relation [i]'s schema) that matter to the view: Ls'
   attributes, join attributes, fixed-predicate attributes. An update
   leaving all of them unchanged cannot affect cached tuples. *)
let relevant_positions_of compiled i =
  let spec = compiled.Template.spec in
  let schema = compiled.Template.schemas.(i) in
  let of_ref (a : Template.attr_ref) =
    if a.Template.rel = i then [ Schema.pos schema a.Template.attr ] else []
  in
  let ls' = List.concat_map of_ref compiled.Template.expanded_select in
  let joins = List.concat_map (fun (a, b) -> of_ref a @ of_ref b) spec.Template.joins in
  let fixed =
    List.concat_map (fun (r, p) -> if r = i then Predicate.positions p else []) spec.Template.fixed
  in
  List.sort_uniq Int.compare (ls' @ joins @ fixed)

let build_aux compiled =
  let spec = compiled.Template.spec in
  Array.init (Array.length spec.Template.relations) (fun rel ->
      let pairs =
        compiled.Template.expanded_select
        |> List.mapi (fun i a -> (i, a))
        |> List.filter_map (fun (i, (a : Template.attr_ref)) ->
               if a.Template.rel = rel then
                 Some (Schema.pos compiled.Template.schemas.(rel) a.Template.attr, i)
               else None)
      in
      {
        aux_rel = rel;
        base_positions = Array.of_list (List.map fst pairs);
        result_positions = Array.of_list (List.map snd pairs);
        buckets = Tuple.Table.create 1024;
      })

let aux_key_of_result aux result = Tuple.project result aux.result_positions
let aux_key_of_base aux base = Tuple.project base aux.base_positions

let aux_add aux bcp tuple =
  let key = aux_key_of_result aux tuple in
  match Tuple.Table.find_opt aux.buckets key with
  | Some bucket -> bucket := (bcp, tuple) :: !bucket
  | None -> Tuple.Table.replace aux.buckets key (ref [ (bcp, tuple) ])

let aux_remove aux bcp tuple =
  let key = aux_key_of_result aux tuple in
  match Tuple.Table.find_opt aux.buckets key with
  | None -> ()
  | Some bucket ->
      let removed = ref false in
      bucket :=
        List.filter
          (fun (b, cached) ->
            if (not !removed) && Bcp.equal b bcp && Tuple.equal cached tuple then begin
              removed := true;
              false
            end
            else true)
          !bucket;
      if !bucket = [] then Tuple.Table.remove aux.buckets key

(* Cached (bcp, tuple) pairs that agree with [base] on relation [rel]'s
   Ls' attributes. *)
let aux_victims t ~rel base =
  match t.aux with
  | None -> invalid_arg "View.aux_victims: auxiliary indexes disabled"
  | Some auxes ->
      let aux = auxes.(rel) in
      let key = aux_key_of_base aux base in
      (match Tuple.Table.find_opt aux.buckets key with
      | Some bucket -> !bucket
      | None -> [])

let create ?(policy = Minirel_cache.Policies.Clock) ?(f_max = 2) ?(aux_maintenance = true)
    ~capacity ~name compiled =
  let store = Entry_store.create ~policy ~capacity ~f_max () in
  (* The probe store caches whole answers, so it lives or dies by its
     residency: a query fast-hits only when every one of its bcps is
     trusted, which decays as hit_ratio^h. Give it 4x the paper store's
     entry count (tuples are shared with the result stream, and each
     answer is capped at 64 tuples per bcp, so the footprint stays
     bounded) to keep the joint hit probability useful. *)
  let probe_store = Entry_store.create ~capacity:(4 * capacity) ~f_max:(max 64 f_max) () in
  let aux =
    if aux_maintenance then begin
      let auxes = build_aux compiled in
      (* refuse the aux strategy if some relation contributes no Ls'
         attribute: its deletes could not locate victims *)
      if Array.exists (fun a -> Array.length a.base_positions = 0) auxes then None
      else Some auxes
    end
    else None
  in
  let relevant =
    Array.init
      (Array.length compiled.Template.spec.Template.relations)
      (relevant_positions_of compiled)
  in
  let t =
    {
      name;
      compiled;
      store;
      probe_store;
      aux;
      stats = empty_stats ();
      relevant;
      pending_deltas = [];
      adaptive = None;
    }
  in
  Entry_store.set_on_change store (fun change bcp tuple ->
      match (t.aux, change) with
      | Some auxes, Entry_store.Added -> Array.iter (fun a -> aux_add a bcp tuple) auxes
      | Some auxes, Entry_store.Removed -> Array.iter (fun a -> aux_remove a bcp tuple) auxes
      | None, _ -> ());
  t

let pending_deltas t = t.pending_deltas
let set_pending_deltas t ds = t.pending_deltas <- ds

(* Heavy-light adaptive maintenance (DESIGN.md Section 17). The light
   (lapse) path needs the auxiliary indexes to locate affected entries,
   so a view without them classifies every key heavy — pure eager. *)
let adaptive t = t.adaptive
let set_adaptive t ad = t.adaptive <- ad

(* The update key of [base] under relation [rel]: its projection onto
   the relation's Ls' attributes — the same key the auxiliary index
   buckets by, and the key the heavy-light classifier observes. *)
let aux_base_key t ~rel base =
  match t.aux with
  | None -> None
  | Some auxes -> Some (aux_key_of_base auxes.(rel) base)

let name t = t.name
let compiled t = t.compiled
let store t = t.store
let probe_store t = t.probe_store

(* A relevant base delta is being applied (or was lost/deferred): every
   complete fast-path answer published before it is now untrusted. *)
let invalidate_probe t = Entry_store.invalidate_complete t.probe_store

(* Release both stores' retired version chains; part of engine
   shutdown, after which no probe may run against this view. *)
let shutdown t =
  Entry_store.shutdown t.store;
  Entry_store.shutdown t.probe_store

let stats t = t.stats
let relevant_positions t i = t.relevant.(i)
let has_aux t = t.aux <> None
let lock_object t = "pmv:" ^ t.name

let n_entries t = Entry_store.n_entries t.store
let n_tuples t = Entry_store.n_tuples t.store

(* Total footprint: cached tuples plus the paper's 4%-of-entry estimate
   for the bcp index side (Section 4.1's accounting). *)
let size_bytes t =
  let tuple_bytes = Entry_store.tuple_bytes t.store in
  tuple_bytes + (tuple_bytes * 4 / 100)

let hit_ratio t =
  if t.stats.queries = 0 then 0.0
  else float_of_int t.stats.query_hits /. float_of_int t.stats.queries

(* Every cached tuple must belong to the bcp whose entry holds it, and
   the store bounds must hold; the qcheck suites call this after random
   workloads. *)
let invariants_ok t =
  Entry_store.invariants_ok t.store
  && Entry_store.fold t.store
       (fun ok entry ->
         ok
         && List.for_all
              (fun tuple ->
                Bcp.equal (Condition_part.bcp_of_result t.compiled tuple) entry.Entry_store.e_bcp)
              entry.Entry_store.tuples)
       true
