(** The partial materialized view object (Section 3.2):

    {v create partial materialized view V_PM as subset of
         select Ls' from R1, ..., Rn where Cjoin
         with selection condition template Cselect v}

    A view bundles the compiled template, the bounded entry store, and
    (when enabled) auxiliary in-memory indexes over each base relation's
    Ls' attributes — the full version's device for delete/update
    maintenance without delta joins. The auxiliary path removes every
    cached tuple agreeing with the deleted base tuple on that relation's
    Ls' attributes: a superset of the true victims, which is always safe
    because a PMV is {e any} subset of its containing MV. *)

open Minirel_storage
open Minirel_query

type stats = {
  mutable queries : int;  (** queries answered through this view *)
  mutable query_hits : int;  (** queries whose probe found >= 1 resident bcp *)
  mutable partial_tuples : int;  (** tuples served from the view *)
  mutable fills : int;  (** tuples cached during O3 *)
  mutable skipped_inserts : int;  (** base inserts needing no maintenance *)
  mutable maint_removed : int;  (** tuples dropped by deferred maintenance *)
  mutable maint_skipped_updates : int;  (** updates not touching Ls'/Cjoin *)
  mutable shaped_queries : int;
      (** §3.6 shaped answers (DISTINCT/grouped/ordered/EXISTS) served
          through this view; feeds the budget arbiter's value measure *)
}

type t

(** Maintenance deltas deferred past a reader's S lock; managed by
    {!Maintain}. *)
val pending_deltas : t -> Minirel_txn.Txn.delta list

val set_pending_deltas : t -> Minirel_txn.Txn.delta list -> unit

(** [create ~capacity ~name compiled] builds an empty view holding at
    most [capacity] basic condition parts with at most [f_max] (default
    2, the paper's example) result tuples each, managed by [policy]
    (default CLOCK). [aux_maintenance] (default true) builds the
    auxiliary indexes when every relation contributes at least one Ls'
    attribute; otherwise maintenance falls back to delta joins. *)
val create :
  ?policy:Minirel_cache.Policies.kind ->
  ?f_max:int ->
  ?aux_maintenance:bool ->
  capacity:int ->
  name:string ->
  Template.compiled ->
  t

val name : t -> string
val compiled : t -> Template.compiled
val store : t -> Entry_store.t

(** Lock-free fast-path store of complete per-bcp answers (DESIGN.md
    Section 13); filled by fallback queries, probed without locks. *)
val probe_store : t -> Entry_store.t

(** Untrust every complete fast-path answer (a relevant base delta is
    about to be applied, deferred, or was lost to a fault). *)
val invalidate_probe : t -> unit

(** Drain both stores' retired version chains at engine shutdown. *)
val shutdown : t -> unit

val stats : t -> stats
val has_aux : t -> bool

(** Positions in relation [i]'s schema that matter to the view (Ls',
    join and fixed-predicate attributes); pure, uncached form. *)
val relevant_positions_of : Template.compiled -> int -> int list

(** Memoized {!relevant_positions_of} — computed once per (view,
    relation) at creation, O(1) thereafter. *)
val relevant_positions : t -> int -> int list

(** Lock-manager object name for the Section 3.6 protocol. *)
val lock_object : t -> string

val n_entries : t -> int
val n_tuples : t -> int

(** Approximate footprint: cached tuples plus the paper's 4%-of-entry
    accounting for the bcp index side. *)
val size_bytes : t -> int

(** Fraction of answered queries that hit the view. *)
val hit_ratio : t -> float

(** Cached (bcp, tuple) pairs agreeing with [base] on relation [rel]'s
    Ls' attributes. @raise Invalid_argument when aux indexes are off. *)
val aux_victims : t -> rel:int -> Tuple.t -> (Bcp.t * Tuple.t) list

(** {2 Heavy-light adaptive maintenance (DESIGN.md Section 17)} *)

(** The view's heavy-light classifier; [None] (the default) keeps
    maintenance pure eager. The light (lapse) path needs the auxiliary
    indexes to locate affected entries, so {!Maintain} treats every key
    as heavy on views without them even when a classifier is set. *)
val adaptive : t -> Adaptive.t option

val set_adaptive : t -> Adaptive.t option -> unit

(** [base]'s update key under relation [rel]: its projection onto the
    relation's Ls' attributes (the auxiliary-index bucket key, and what
    the classifier observes); [None] when aux indexes are off. *)
val aux_base_key : t -> rel:int -> Tuple.t -> Tuple.t option

(** Store bounds hold and every cached tuple belongs to the bcp whose
    entry holds it. *)
val invariants_ok : t -> bool
