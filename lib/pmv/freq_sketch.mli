(** Count-min frequency sketch with periodic decay, used by heavy-light
    adaptive maintenance (DESIGN.md Section 17) to classify per-bcp
    update keys by recent update frequency in bounded space.

    Estimates never under-count (min over [rows] over-approximating
    counters), so a key whose true observation count reaches a
    threshold always estimates at or above it; [decay] halves every
    counter so estimates track the recent distribution and never
    increase across a decay. *)

type t

(** [rows] hash rows of [width] counters each; counters and the total
    halve after every [decay_every] observations.
    @raise Invalid_argument unless all parameters are positive. *)
val create : ?rows:int -> ?width:int -> ?decay_every:int -> unit -> t

(** Count one observation of [key] (any hashable value) and return its
    updated estimate. May trigger a decay after updating. *)
val observe : t -> 'a -> int

(** Estimate [key]'s observation count without counting. *)
val estimate : t -> 'a -> int

(** Halve all counters and the total now. *)
val decay : t -> unit

(** Decayed total number of observations. *)
val total : t -> int

val width : t -> int
val n_rows : t -> int
