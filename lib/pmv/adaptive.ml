(* Heavy-light classification of maintenance keys (DESIGN.md Section
   17, after Abo-Khamis/Olteanu's heavy-light partitioning): a view's
   deferred maintenance observes the update key of every deleted or
   updated base tuple (its projection onto the relation's Ls'
   attributes — the same key the auxiliary indexes bucket by) in a
   decaying count-min sketch. Keys whose recent update frequency
   clears an adaptive threshold are heavy: their victims are removed
   eagerly, keeping the hot entries exact. The long tail is light:
   its deltas only mark the affected entries lapsed, to be purged and
   refilled on next probe, making maintenance cost track the heavy
   head instead of the full update volume.

   The threshold adapts with volume: a key is heavy when its estimate
   reaches [heavy_share] of the decayed total, floored at
   [heavy_min]. Because the sketch never under-counts, a key at or
   above the threshold by true frequency is never classified light;
   misclassifying cannot affect answers either way (lapse keeps
   answers exact), only where the maintenance work happens. *)

type t = {
  sketch : Freq_sketch.t;
  heavy_min : int;  (* absolute estimate floor for heavy *)
  heavy_share : float;  (* fraction of the decayed total *)
  mutable heavy : int;  (* classification counters *)
  mutable light : int;
}

let create ?(rows = 4) ?(width = 1024) ?(decay_every = 8192) ?(heavy_min = 4)
    ?(heavy_share = 0.01) () =
  if heavy_min <= 0 then invalid_arg "Adaptive.create: heavy_min must be positive";
  if heavy_share <= 0.0 || heavy_share > 1.0 then
    invalid_arg "Adaptive.create: heavy_share must be in (0, 1]";
  {
    sketch = Freq_sketch.create ~rows ~width ~decay_every ();
    heavy_min;
    heavy_share;
    heavy = 0;
    light = 0;
  }

let threshold t =
  max t.heavy_min
    (int_of_float (Float.ceil (t.heavy_share *. float_of_int (Freq_sketch.total t.sketch))))

(* Observe one update of [key] and classify it against the
   post-observation threshold. *)
let observe t key =
  let est = Freq_sketch.observe t.sketch key in
  let heavy = est >= threshold t in
  if heavy then t.heavy <- t.heavy + 1 else t.light <- t.light + 1;
  heavy

let sketch t = t.sketch
let n_heavy t = t.heavy
let n_light t = t.light

let reset_counters t =
  t.heavy <- 0;
  t.light <- 0
