(** Extensions from Section 3.6: DISTINCT, aggregates, early
    termination, and EXISTS-style nested queries, built on the same
    O1/O2/O3 machinery. *)

open Minirel_storage
open Minirel_query

(** {1 DISTINCT} *)

(** Answer with set semantics: each distinct result tuple is delivered
    exactly once, cached tuples first. Returns the answer statistics
    and the number of distinct tuples delivered. *)
val answer_distinct :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  ?probe_path:Answer.probe_path ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  on_tuple:(Answer.phase -> Tuple.t -> unit) ->
  Answer.stats * int

(** {1 Aggregates (group by)} *)

type agg =
  | Count
  | Sum of int  (** position within the Ls' tuple *)
  | Avg of int
  | Min_agg of int
  | Max_agg of int

type grouped = {
  partial_groups : (Tuple.t * float) list;
      (** early, approximate: aggregated over the PMV-cached subset *)
  exact_groups : (Tuple.t * float) list;  (** the final answer *)
  answer_stats : Answer.stats;
}

(** Group-by aggregation with early partial aggregates; [group_by] and
    the aggregate position index into the Ls' result tuple. The partial
    groups summarise only the hot cached tuples and are delivered as
    approximate, per the paper's adjusted user interface. *)
val answer_grouped :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  group_by:int array ->
  agg:agg ->
  grouped

(** {1 ORDER BY} *)

type ordered = {
  early_sorted : Tuple.t list;
      (** the PMV-served subset, sorted — an immediate hot preview *)
  final_sorted : Tuple.t list;  (** the full sorted answer *)
  ordered_stats : Answer.stats;
}

(** Answer a query with an ORDER BY over the Ls'-tuple positions
    [order_by] (Section 3.6's adjusted interface): a sorted preview of
    the cached tuples is available before execution; the exact sorted
    result follows. *)
val answer_ordered :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  order_by:int array ->
  ?desc:bool ->
  unit ->
  ordered

(** {1 Early termination (Benefit 2)} *)

exception Stop

(** The first [k] result tuples (hot ones first), terminating the query
    early once they are in hand. @raise Invalid_argument if [k <= 0]. *)
val answer_first_k :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  k:int ->
  Tuple.t list

(** {1 Exact grouped aggregation}

    Unfinalized associative accumulators per group, sorted by the
    projected key tuple. Kept unfinalized so per-shard partials merge
    exactly ({!merge_groups}); {!finalize_groups} only at the end —
    which is why AVG ships as SUM+COUNT. *)

type group_acc = (Tuple.t * Aggregate.acc array) list

(** Fold one delivered tuple into its group's accumulators (creating
    the group on first sight). The building block shared by
    {!answer_groups} and external fan-out paths (the shard router). *)
val fold_group :
  Aggregate.acc array Tuple.Table.t ->
  key:int array ->
  aggs:Aggregate.spec array ->
  Tuple.t ->
  unit

(** Drain a fold table into a {!group_acc}, sorted by key. *)
val collect_groups : Aggregate.acc array Tuple.Table.t -> group_acc

(** Bump the per-shape answer counter for a query answered by an
    external assembly of this module's building blocks (one count per
    query, at the routing layer). *)
val note_shape : [ `Distinct | `Grouped | `Ordered | `Exists ] -> unit

type grouped_exact = {
  g_partial : group_acc;
      (** accumulated over the O2 (PMV-served) phase — the early
          approximate preview *)
  g_groups : group_acc;  (** over the whole delivered stream: exact *)
  g_stats : Answer.stats;
}

(** Exact grouped answer through the O1/O2/O3 pipeline: each delivered
    tuple folds into its group exactly once (the DS identity), so the
    accumulators are exact. [key] and every aggregate position index
    into the Ls' result tuple. *)
val answer_groups :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  ?probe_path:Answer.probe_path ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  key:int array ->
  aggs:Aggregate.spec array ->
  grouped_exact

(** Merge two sorted group lists; shared keys fold the right operand's
    accumulators into the left's (mutating the left). Associative and
    commutative up to the shared total key order. *)
val merge_groups : group_acc -> group_acc -> group_acc

val finalize_groups :
  aggs:Aggregate.spec array -> group_acc -> (Tuple.t * Value.t array) list

(** O2-only grouped fast path: assemble the grouped answer from the
    cache alone when every condition part's bcp holds a trusted
    complete version (exact parts via the entry's memoized per-group
    accumulators, inexact ones by filtering cached tuples). [None] on
    any miss — fall back to {!answer_groups}. *)
val probe_groups :
  ?probe_path:Answer.probe_path ->
  view:View.t ->
  Instance.t ->
  key:int array ->
  aggs:Aggregate.spec array ->
  group_acc option

(** {1 ORDER BY ... LIMIT k}

    The first [k] tuples of the total order [Ordering.cmp ~order] via a
    bounded top-k heap over the delivered stream. Prefix-exact under
    the shared comparator. @raise Invalid_argument if [k <= 0]. *)
val answer_ordered_k :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  ?probe_path:Answer.probe_path ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  order:Ordering.key array ->
  k:int ->
  Tuple.t list * Answer.stats

(** {1 EXISTS nested queries} *)

(** [true] when the view caches a tuple that would satisfy the
    instance — a valid EXISTS witness. Pure lookups (no recency update,
    no admission). On the locked path the witness only counts while no
    deferred maintenance is pending; on the epoch path only a trusted
    complete version serves. *)
val cached_witness :
  ?probe_path:Answer.probe_path -> view:View.t -> Instance.t -> bool

(** Witness check for an EXISTS subquery: [true, `From_pmv] when the
    subquery's PMV caches a satisfying tuple (pure lookups, no engine
    work); otherwise executes just far enough to find one tuple. On the
    locked path cached witnesses are only used while no deferred
    maintenance is pending; on the epoch path only trusted complete
    versions serve. *)
val exists_ :
  ?probe_path:Answer.probe_path ->
  view:View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  bool * [ `From_pmv | `Executed ]

(** Filter [candidates] by an EXISTS subquery built per candidate,
    short-circuiting through the subquery's PMV. Returns the kept
    candidates and how many checks the PMV answered. *)
val filter_exists :
  view:View.t ->
  Minirel_index.Catalog.t ->
  candidates:'a list ->
  subquery_of:('a -> Instance.t) ->
  'a list * int
