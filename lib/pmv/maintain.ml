(* Deferred PMV maintenance (Section 3.4). Upon a change ΔR_i to a base
   relation of V_PM:

   - insert: nothing. New result tuples are filled in lazily by future
     queries' Operation O3.
   - delete: the affected cached tuples must go. Two strategies:
       [Delta_join]  compute ΔR_i ⋈ (other base relations), look each
                     join result up through the bcp index, remove it —
                     the paper's base algorithm;
       [Aux_index]   skip the join: auxiliary in-memory indexes over the
                     Ls' attributes of each relation locate (a conserva-
                     tive superset of) the victims directly — the full
                     version's optimisation ("we can avoid this join
                     computation by building indices on some attributes
                     of V_PM").
   - update: if no attribute of R_i appearing in Ls' or Cjoin changed,
     nothing; otherwise the old versions are handled like deletions. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog

type strategy = Delta_join | Aux_index

let strategy_to_string = function Delta_join -> "delta-join" | Aux_index -> "aux-index"

(* Template-relation index of a catalog relation name, if the view
   ranges over it. *)
let template_rel compiled rel =
  let rels = compiled.Template.spec.Template.relations in
  let rec find i =
    if i >= Array.length rels then None else if rels.(i) = rel then Some i else find (i + 1)
  in
  find 0

(* Positions in relation [i]'s schema that matter to the view: Ls',
   join and fixed-predicate attributes. An update leaving all of them
   unchanged cannot affect cached tuples. *)
let relevant_positions = View.relevant_positions_of

let update_touches positions (old_t, new_t) =
  List.exists (fun pos -> not (Value.equal old_t.(pos) new_t.(pos))) positions

let update_is_relevant compiled i pair = update_touches (relevant_positions compiled i) pair

let remove_via_delta_join view catalog ~delta_rel removed_tuples =
  let compiled = View.compiled view in
  let store = View.store view in
  let plan = Minirel_exec.Planner.plan_delta_join catalog compiled ~delta_rel removed_tuples in
  let removed = ref 0 in
  Minirel_exec.Cursor.iter
    (fun result ->
      let bcp = Condition_part.bcp_of_result compiled result in
      if Entry_store.remove_tuple store bcp result then incr removed)
    (Minirel_exec.Executor.cursor catalog plan);
  !removed

let remove_via_aux view ~delta_rel removed_tuples =
  let store = View.store view in
  let removed = ref 0 in
  List.iter
    (fun base ->
      let victims = View.aux_victims view ~rel:delta_rel base in
      List.iter
        (fun (bcp, cached) ->
          if Entry_store.remove_tuple store bcp cached then incr removed)
        victims)
    removed_tuples;
  !removed

let handle_removal view catalog strategy ~delta_rel tuples =
  if tuples = [] then 0
  else
    match strategy with
    | Aux_index when View.has_aux view -> remove_via_aux view ~delta_rel tuples
    | Aux_index | Delta_join -> remove_via_delta_join view catalog ~delta_rel tuples

(* ---- Heavy-light adaptive maintenance (DESIGN.md Section 17) ----- *)

module Tm = Minirel_telemetry.Telemetry

let c_heavy = Tm.counter "maint.heavy"
let c_light = Tm.counter "maint.light"

(* Light path: no victim removal at all — one auxiliary-index lookup
   per deleted base tuple marks the (conservative superset of)
   affected entries lapsed; they purge and refill on next probe. A
   light key with nothing cached costs exactly one hash lookup. *)
let lapse_via_aux view ~delta_rel tuples =
  let store = View.store view in
  List.iter
    (fun base ->
      View.aux_victims view ~rel:delta_rel base
      |> List.iter (fun (bcp, _) -> ignore (Entry_store.mark_lapsed store bcp)))
    tuples

(* Removal with heavy-light classification: each deleted base tuple's
   update key (its Ls' projection) is observed in the view's sketch;
   heavy keys keep the eager path, light keys only lapse. Views
   without auxiliary indexes cannot locate entries to lapse, so all
   their keys stay heavy regardless of the classifier. *)
let handle_removal_classified view catalog strategy ~delta_rel tuples =
  match View.adaptive view with
  | Some ad when View.has_aux view && tuples <> [] ->
      let heavy, light =
        List.partition
          (fun base ->
            match View.aux_base_key view ~rel:delta_rel base with
            | Some key -> Adaptive.observe ad (delta_rel, key)
            | None -> true)
          tuples
      in
      if Tm.is_enabled () then begin
        let module R = Minirel_telemetry.Registry in
        R.add c_heavy (List.length heavy);
        R.add c_light (List.length light)
      end;
      lapse_via_aux view ~delta_rel light;
      handle_removal view catalog strategy ~delta_rel heavy
  | Some _ | None -> handle_removal view catalog strategy ~delta_rel tuples

(* Process one transaction delta against the view.

   Failpoint [maintain.apply] fires before a relevant delta is applied:
   the view then misses this maintenance step entirely — the classic
   stale-view drift — and the owner must rebuild or drop the view to
   restore consistency (the torture driver does exactly that). *)
let on_delta ?(strategy = Aux_index) ?(fault = Minirel_fault.Fault.default) view
    catalog (delta : Minirel_txn.Txn.delta) =
  let compiled = View.compiled view in
  let stats = View.stats view in
  match template_rel compiled delta.Minirel_txn.Txn.rel with
  | None -> ()
  | Some i ->
      Minirel_fault.Fault.hit_in fault "maintain.apply";
      Minirel_telemetry.Flight.record Maint_apply
        ~a:(Minirel_telemetry.Flight.intern (View.name view))
        ~b:i;
      let { Minirel_txn.Txn.inserted; deleted; updated; _ } = delta in
      stats.View.skipped_inserts <- stats.View.skipped_inserts + List.length inserted;
      let removed =
        ref (handle_removal_classified view catalog strategy ~delta_rel:i deleted)
      in
      (* positions memoized on the view: once per (view, relation), not
         per updated tuple *)
      let positions = View.relevant_positions view i in
      let relevant, irrelevant = List.partition (update_touches positions) updated in
      stats.View.maint_skipped_updates <-
        stats.View.maint_skipped_updates + List.length irrelevant;
      removed :=
        !removed
        + handle_removal_classified view catalog strategy ~delta_rel:i
            (List.map fst relevant);
      stats.View.maint_removed <- stats.View.maint_removed + !removed

(* Pending deltas: when maintenance cannot take the X lock because a
   query holds its S lock across O2-O3 (Section 3.6), the delta is
   queued on the view — maintenance is deferred a little further — and
   applied at the next lock-grantable opportunity. Correctness holds
   meanwhile: the answering layer's stale check purges any cached tuple
   that execution no longer produces. *)

(* Number of deltas waiting for the view's X lock. *)
let n_pending view = List.length (View.pending_deltas view)

let process_with_lock ~strategy view txn_mgr delta_opt =
  let catalog = Minirel_txn.Txn.catalog txn_mgr in
  let locks = Minirel_txn.Txn.locks txn_mgr in
  let fault = Minirel_txn.Txn.fault txn_mgr in
  let txn = -1 in
  match
    (* failpoint [maintain.defer] simulates a reader holding its S lock:
       the delta takes the pending-queue path and is applied at the
       next grantable opportunity (flush_pending) *)
    if Minirel_fault.Fault.fire_in fault "maintain.defer" then
      Error
        {
          Minirel_txn.Lock_manager.obj = View.lock_object view;
          holders = [];
          held = Minirel_txn.Lock_manager.X;
          requested = Minirel_txn.Lock_manager.X;
        }
    else
      Minirel_txn.Lock_manager.acquire locks ~txn ~obj:(View.lock_object view)
        Minirel_txn.Lock_manager.X
  with
  | Error _ ->
      (* a reader holds its S lock: defer further *)
      Minirel_telemetry.Flight.record Maint_defer
        ~a:(Minirel_telemetry.Flight.intern (View.name view))
        ~b:(n_pending view + 1);
      (match delta_opt with
      | Some delta -> View.set_pending_deltas view (delta :: View.pending_deltas view)
      | None -> ())
  | Ok () ->
      Fun.protect
        ~finally:(fun () ->
          Minirel_txn.Lock_manager.release locks ~txn ~obj:(View.lock_object view))
        (fun () ->
          (* Take ownership of the queue before applying: the pending
             counter must clear exactly once per queued delta, even
             when the adaptive path resolves a delta purely by lapsing
             entries (no victim removal) or a later application
             raises. Re-running a queued delta would double-remove. *)
          let queued = List.rev (View.pending_deltas view) in
          View.set_pending_deltas view [];
          List.iter (on_delta ~strategy ~fault view catalog) queued;
          match delta_opt with
          | Some delta -> on_delta ~strategy ~fault view catalog delta
          | None -> ())

(* Apply any queued deltas now (e.g. after the blocking reader ends). *)
let flush_pending ?(strategy = Aux_index) view txn_mgr =
  process_with_lock ~strategy view txn_mgr None

(* Subscribe the view to a transaction manager. Maintenance takes an X
   lock on the view when [use_locks] (Section 3.6); if a reader holds
   its S lock, the delta queues and is applied at the next grantable
   opportunity. *)
let attach ?(strategy = Aux_index) ?(use_locks = true) view txn_mgr =
  let catalog = Minirel_txn.Txn.catalog txn_mgr in
  let fault = Minirel_txn.Txn.fault txn_mgr in
  Minirel_txn.Txn.register_hook txn_mgr ~name:("pmv:" ^ View.name view) (fun delta ->
      (* Untrust the epoch fast path's complete answers *before* any
         apply/defer/fault decision: whether this delta is applied now,
         queued, or lost to an injected fault, complete versions
         published against the pre-delta data state may no longer be
         served whole (DESIGN.md Section 13). *)
      (match template_rel (View.compiled view) delta.Minirel_txn.Txn.rel with
      | Some _ -> View.invalidate_probe view
      | None -> ());
      if use_locks then process_with_lock ~strategy view txn_mgr (Some delta)
      else on_delta ~strategy ~fault view catalog delta)

let detach view txn_mgr =
  View.set_pending_deltas view [];
  Minirel_txn.Txn.unregister_hook txn_mgr ~name:("pmv:" ^ View.name view)
