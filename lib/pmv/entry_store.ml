(* Bounded storage for PMV entries (Section 3.2): a hash table from
   basic condition part to its cached result tuples — the "index I on
   bcp" — with residency governed by a pluggable replacement policy
   (CLOCK by default, 2Q per Section 3.5) and at most F tuples per bcp.

   The entry table and the policy are kept in lock step: an entry exists
   iff its bcp is resident in the policy; eviction drops the entry (and
   reports each dropped tuple through [on_change], so auxiliary
   maintenance indexes stay consistent).

   Read side (DESIGN.md Section 13): every entry additionally publishes
   an immutable [version] through an atomic pointer. Writers (O3 fills,
   deferred maintenance, evictions) mutate the entry under the engine's
   existing X discipline and then swap in a fresh version, retiring the
   old one to an epoch domain; probes read the current version under an
   epoch guard and therefore never block on, or tear under, concurrent
   maintenance. A hash array of atomic bucket heads over immutable
   chains ([rindex]) gives probes a lock-free bcp -> version route:
   membership changes swap one bucket's chain in a single store, so a
   reader always sees a consistent index. *)

open Minirel_storage
open Minirel_query

type version = {
  v_tuples : Tuple.t list;  (* immutable snapshot, most recent first *)
  v_n : int;
  v_complete : bool;  (* whole result multiset for the bcp, not a partial fill *)
  v_stamp : int;  (* data stamp at publication; trusted iff still current *)
}

(* Memoized per-group aggregate accumulators over one entry's cached
   tuples, keyed by the projected group-key tuple. [ac_key]/[ac_aggs]
   identify the grouping the memo answers; a grouped probe with a
   different signature rebuilds it. *)
type agg_cache = {
  ac_key : int array;
  ac_aggs : Aggregate.spec array;
  ac_groups : Aggregate.acc array Tuple.Table.t;
}

type entry = {
  e_bcp : Bcp.t;
  mutable tuples : Tuple.t list;  (* most recently cached first; <= f_max *)
  mutable n : int;
  mutable refs : int;  (* lifetime references; feeds popularity ranking *)
  published : version Atomic.t;
  mutable e_agg : agg_cache option;
  mutable e_lapsed : bool;
      (* a light-key delta skipped this entry's maintenance: its cached
         tuples may be stale and must be purged before the next serve
         (DESIGN.md Section 17) *)
}

let agg_fold ac tuple =
  let k = Tuple.project tuple ac.ac_key in
  let accs =
    match Tuple.Table.find_opt ac.ac_groups k with
    | Some accs -> accs
    | None ->
        let accs = Array.map (fun _ -> Aggregate.create ()) ac.ac_aggs in
        Tuple.Table.add ac.ac_groups k accs;
        accs
  in
  Array.iteri (fun i spec -> Aggregate.add spec accs.(i) tuple) ac.ac_aggs

(* Subtract one removed tuple from its group; called after the entry's
   tuple list already dropped it. COUNT/SUM invert; when a MIN/MAX
   extremum leaves (or the group empties), the group is recomputed from
   the entry's remaining tuples — bounded by F, the paper's per-bcp
   cap. *)
let agg_unfold entry ac tuple =
  let k = Tuple.project tuple ac.ac_key in
  match Tuple.Table.find_opt ac.ac_groups k with
  | None -> ()
  | Some accs ->
      let rebuild = ref false in
      Array.iteri
        (fun i spec ->
          match Aggregate.remove spec accs.(i) tuple with
          | `Ok -> ()
          | `Rebuild -> rebuild := true)
        ac.ac_aggs;
      let members =
        List.filter (fun t -> Tuple.equal (Tuple.project t ac.ac_key) k) entry.tuples
      in
      if members = [] then Tuple.Table.remove ac.ac_groups k
      else if !rebuild then
        Tuple.Table.replace ac.ac_groups k (Aggregate.of_tuples ac.ac_aggs members)

let agg_on_add entry tuple =
  match entry.e_agg with None -> () | Some ac -> agg_fold ac tuple

let agg_on_remove entry tuple =
  match entry.e_agg with None -> () | Some ac -> agg_unfold entry ac tuple

type change = Added | Removed

type t = {
  table : entry Bcp.Table.t;
  policy : Bcp.t Minirel_cache.Policy.t;
  f_max : int;
  mutable n_tuples : int;
  mutable tuple_bytes : int;
  mutable lapse_marked : int;  (* entries marked lapsed by light-key deltas *)
  mutable lapse_recomputed : int;  (* lapsed entries purged at reference time *)
  mutable on_change : change -> Bcp.t -> Tuple.t -> unit;
  (* Lock-free read side. [stamp] is the data staleness clock: any
     relevant base delta bumps it, untrusting every complete version
     published before the delta. [rindex] maps bcp -> the entry's
     published-version atom through copy-on-write buckets. *)
  stamp : int Atomic.t;
  epoch : Minirel_parallel.Epoch.t;
  rindex : (Bcp.t * version Atomic.t) list Atomic.t array;
}

let bucket_index buckets bcp = (Bcp.hash bcp land max_int) mod Array.length buckets

(* Writer-side membership updates swap one bucket's immutable chain
   behind its atomic head, so a concurrent probe sees either the old or
   the new chain, never a half-updated one. The array itself is fixed
   at creation; writers are serialized by the engine's X discipline, so
   the read-modify-write on a bucket head cannot lose an update. *)
let rindex_add t entry =
  let slot = t.rindex.(bucket_index t.rindex entry.e_bcp) in
  Atomic.set slot ((entry.e_bcp, entry.published) :: Atomic.get slot)

let rindex_remove t bcp =
  let slot = t.rindex.(bucket_index t.rindex bcp) in
  Atomic.set slot (List.filter (fun (b, _) -> not (Bcp.equal b bcp)) (Atomic.get slot))

(* Swap in a fresh immutable snapshot of the entry's state and retire
   the superseded version: it stays alive (on the epoch's retire list)
   until every probe active at this moment has left. *)
let publish ?stamp ~complete t entry =
  let v_stamp = match stamp with Some s -> s | None -> Atomic.get t.stamp in
  let old = Atomic.get entry.published in
  Atomic.set entry.published
    { v_tuples = entry.tuples; v_n = entry.n; v_complete = complete; v_stamp };
  Minirel_telemetry.Flight.record Version_publish ~a:v_stamp ~b:entry.n;
  Minirel_parallel.Epoch.retire t.epoch (fun () -> ignore (Sys.opaque_identity old));
  Minirel_telemetry.Flight.record Epoch_advance
    ~a:(Minirel_parallel.Epoch.current_epoch t.epoch)

let new_entry t bcp =
  let entry =
    {
      e_bcp = bcp;
      tuples = [];
      n = 0;
      refs = 1;
      published =
        Atomic.make
          { v_tuples = []; v_n = 0; v_complete = false; v_stamp = Atomic.get t.stamp };
      e_agg = None;
      e_lapsed = false;
    }
  in
  Bcp.Table.replace t.table bcp entry;
  rindex_add t entry;
  entry

let create ?(policy = Minirel_cache.Policies.Clock) ~capacity ~f_max () =
  if f_max <= 0 then invalid_arg "Entry_store.create: f_max must be positive";
  let t =
    {
      table = Bcp.Table.create (2 * capacity);
      policy = Minirel_cache.Policies.make policy ~capacity;
      f_max;
      n_tuples = 0;
      tuple_bytes = 0;
      lapse_marked = 0;
      lapse_recomputed = 0;
      on_change = (fun _ _ _ -> ());
      stamp = Atomic.make 1;
      epoch = Minirel_parallel.Epoch.create ();
      rindex = Array.init (max 16 (2 * capacity)) (fun _ -> Atomic.make []);
    }
  in
  Minirel_cache.Policy.set_on_evict t.policy (fun bcp ->
      match Bcp.Table.find_opt t.table bcp with
      | None -> ()
      | Some entry ->
          Bcp.Table.remove t.table bcp;
          rindex_remove t bcp;
          t.n_tuples <- t.n_tuples - entry.n;
          List.iter
            (fun tuple ->
              t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
              t.on_change Removed bcp tuple)
            entry.tuples);
  t

let set_on_change t f = t.on_change <- f

let f_max t = t.f_max
let capacity t = Minirel_cache.Policy.capacity t.policy

(* Budget-arbiter capacity change (DESIGN.md Section 17): delegate to
   the replacement policy. Shrinking evicts through the normal
   [on_evict] route, so entries drop, [rindex] membership updates, and
   the auxiliary indexes stay in step; growing only raises the bound. *)
let resize t ~capacity = Minirel_cache.Policy.resize t.policy capacity
let n_entries t = Bcp.Table.length t.table
let n_tuples t = t.n_tuples
let tuple_bytes t = t.tuple_bytes
let policy_name t = Minirel_cache.Policy.name t.policy
let policy_stats t = Minirel_cache.Policy.stats t.policy

(* Pure lookup: no recency update, no admission. *)
let find t bcp = Bcp.Table.find_opt t.table bcp

(* ---- Lock-free read side ---------------------------------------- *)

let current_stamp t = Atomic.get t.stamp

(* A relevant base delta happened: every complete version published
   before it can no longer be served as the whole answer for its bcp.
   One atomic increment; the versions themselves are untouched. *)
let invalidate_complete t =
  let s = Atomic.fetch_and_add t.stamp 1 in
  Minirel_telemetry.Flight.record Version_distrust ~a:(s + 1)

let version_trusted t v = v.v_complete && v.v_stamp = Atomic.get t.stamp

(* Bracket a multi-probe read section in one epoch guard. Versions that
   escape the guard stay valid (they are immutable and GC-kept); the
   guard is what bounds how long the store's retire chain must keep
   superseded versions for concurrent readers. *)
let read t f =
  let g = Minirel_parallel.Epoch.enter t.epoch in
  Fun.protect ~finally:(fun () -> Minirel_parallel.Epoch.leave t.epoch g) f

(* Lock-free probe: route through the current bucket array to the
   entry's published version. No recency update, no admission, no lock
   — safe from any domain while a writer fills or retires entries. *)
let probe t bcp =
  read t (fun () ->
      let rec scan = function
        | [] -> None
        | (b, v) :: rest -> if Bcp.equal b bcp then Some (Atomic.get v) else scan rest
      in
      scan (Atomic.get t.rindex.(bucket_index t.rindex bcp)))

let epoch_stats t = Minirel_parallel.Epoch.stats t.epoch

let reclaim t =
  let n = Minirel_parallel.Epoch.reclaim t.epoch in
  if n > 0 then Minirel_telemetry.Flight.record Epoch_reclaim ~a:n;
  n

(* Engine shutdown: release the whole retire chain so repeated
   create/destroy cycles (Engine.scoped in tests) do not accumulate
   version chains. Callers guarantee no probe is in flight. *)
let shutdown t = ignore (Minirel_parallel.Epoch.drain t.epoch)

(* ---- Write side (engine-serialized, behind the X discipline) ----- *)

(* ---- Lapse protocol (DESIGN.md Section 17) ----------------------- *)

let c_lapsed = Minirel_telemetry.Telemetry.counter "maint.lapsed"
let c_recompute = Minirel_telemetry.Telemetry.counter "maint.recompute"

(* A light-key delta elected to skip victim maintenance for [bcp]: mark
   its entry lapsed instead of removing tuples. The entry keeps its
   residency slot (and its auxiliary-index postings, still a
   conservative victim superset) but may no longer serve cached tuples
   until purged. Returns whether a fresh mark happened. *)
let mark_lapsed t bcp =
  match Bcp.Table.find_opt t.table bcp with
  | None -> false
  | Some entry ->
      if entry.e_lapsed then false
      else begin
        entry.e_lapsed <- true;
        t.lapse_marked <- t.lapse_marked + 1;
        if Minirel_telemetry.Telemetry.is_enabled () then
          Minirel_telemetry.Registry.incr c_lapsed;
        Minirel_telemetry.Flight.record Maint_lapse ~a:entry.n;
        true
      end

(* Recompute-on-probe: before a lapsed entry is served or refilled, its
   possibly-stale tuples are dropped (through [on_change], keeping the
   auxiliary indexes in step) and the entry starts over empty — the
   following Operation O3 refills it from base truth. Runs under the
   same engine serialization as every other entry mutation. *)
let purge_lapsed t entry =
  if entry.e_lapsed then begin
    t.n_tuples <- t.n_tuples - entry.n;
    List.iter
      (fun tuple ->
        t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
        t.on_change Removed entry.e_bcp tuple)
      entry.tuples;
    let dropped = entry.n in
    entry.tuples <- [];
    entry.n <- 0;
    entry.e_agg <- None;
    entry.e_lapsed <- false;
    t.lapse_recomputed <- t.lapse_recomputed + 1;
    if Minirel_telemetry.Telemetry.is_enabled () then
      Minirel_telemetry.Registry.incr c_recompute;
    Minirel_telemetry.Flight.record Maint_recompute ~a:dropped;
    publish ~complete:false t entry
  end

let is_lapsed entry = entry.e_lapsed
let n_lapse_marked t = t.lapse_marked
let n_lapse_recomputed t = t.lapse_recomputed

(* One query-time reference of [bcp] (Operation O2).

   - [`Resident]: the entry is in the PMV; serve its tuples.
   - [`Admitted]: 2Q promoted the bcp from its ghost queue; an empty
     entry was created, to be filled with this query's O3 results.
   - [`Rejected storable]: not resident. With a fill-admitting policy
     (CLOCK/LRU/FIFO) [storable] is true and Operation O3 may admit the
     bcp when its first result tuple materialises ([admit_for_fill]);
     under 2Q the reference was only recorded in A1 and no tuples may
     be stored this time. *)
let reference t bcp =
  match Minirel_cache.Policy.reference t.policy bcp with
  | `Resident -> (
      match Bcp.Table.find_opt t.table bcp with
      | Some entry ->
          entry.refs <- entry.refs + 1;
          (* recompute-on-probe: a lapsed entry must never serve its
             possibly-stale tuples; it restarts empty and O3 refills *)
          purge_lapsed t entry;
          `Resident entry
      | None ->
          (* policy and table out of sync: impossible by construction *)
          assert false)
  | `Admitted -> `Admitted (new_entry t bcp)
  | `Rejected -> `Rejected (Minirel_cache.Policy.admit_on_fill t.policy)

(* Operation O3 admission: a result tuple belonging to a non-resident
   bcp arrived and the policy admits on fill — "a new basic condition
   part bcp_j is added into V_PM", possibly purging a victim. *)
let admit_for_fill t bcp =
  Minirel_cache.Policy.admit t.policy bcp;
  match Bcp.Table.find_opt t.table bcp with
  | Some entry ->
      purge_lapsed t entry;
      entry
  | None -> new_entry t bcp

(* Cache one result tuple under [entry] (Operation O3), respecting the
   per-bcp bound F. *)
let add_tuple t entry tuple =
  if entry.n >= t.f_max then false
  else begin
    entry.tuples <- tuple :: entry.tuples;
    entry.n <- entry.n + 1;
    t.n_tuples <- t.n_tuples + 1;
    t.tuple_bytes <- t.tuple_bytes + Tuple.size_bytes tuple;
    agg_on_add entry tuple;
    t.on_change Added entry.e_bcp tuple;
    publish ~complete:false t entry;
    true
  end

(* Remove one occurrence of [tuple] from the entry of [bcp] (deferred
   maintenance). Entries may legitimately become empty; they keep their
   slot until evicted, mirroring a bcp whose hot tuples were deleted. *)
let remove_tuple t bcp tuple =
  match Bcp.Table.find_opt t.table bcp with
  | None -> false
  | Some entry ->
      let removed = ref false in
      entry.tuples <-
        List.filter
          (fun cached ->
            if (not !removed) && Tuple.equal cached tuple then begin
              removed := true;
              false
            end
            else true)
          entry.tuples;
      if !removed then begin
        entry.n <- entry.n - 1;
        t.n_tuples <- t.n_tuples - 1;
        t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
        agg_on_remove entry tuple;
        t.on_change Removed bcp tuple;
        publish ~complete:false t entry
      end;
      !removed

(* Remove every cached tuple satisfying [victim]; returns the count.
   Used by the conservative auxiliary-index maintenance path. *)
let remove_matching t victim =
  let removed = ref 0 in
  let entries = Bcp.Table.fold (fun _ e acc -> e :: acc) t.table [] in
  List.iter
    (fun entry ->
      let keep, drop = List.partition (fun tuple -> not (victim tuple)) entry.tuples in
      if drop <> [] then begin
        entry.tuples <- keep;
        entry.n <- List.length keep;
        List.iter
          (fun tuple ->
            incr removed;
            t.n_tuples <- t.n_tuples - 1;
            t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
            agg_on_remove entry tuple;
            t.on_change Removed entry.e_bcp tuple)
          drop;
        publish ~complete:false t entry
      end)
    entries;
  !removed

let drop_entry t bcp =
  (match Bcp.Table.find_opt t.table bcp with
  | None -> ()
  | Some entry ->
      Bcp.Table.remove t.table bcp;
      rindex_remove t bcp;
      t.n_tuples <- t.n_tuples - entry.n;
      List.iter
        (fun tuple ->
          t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
          t.on_change Removed bcp tuple)
        entry.tuples);
  Minirel_cache.Policy.remove t.policy bcp

(* Install the {e complete} result multiset for [bcp], captured by a
   fallback query whose delivered stream was proven exact (no stale
   purge) against the data state [stamp]. If a relevant delta committed
   since the capture, the store's stamp has moved past [stamp] and the
   installed version is published already-untrusted — soundness never
   depends on winning that race. *)
let install_complete t bcp tuples ~stamp =
  let n = List.length tuples in
  if n > t.f_max then false
  else begin
    let entry = admit_for_fill t bcp in
    List.iter
      (fun tuple ->
        t.tuple_bytes <- t.tuple_bytes - Tuple.size_bytes tuple;
        t.on_change Removed bcp tuple)
      entry.tuples;
    t.n_tuples <- t.n_tuples - entry.n;
    entry.tuples <- [];
    entry.n <- 0;
    (* wholesale replacement: cheaper to drop the memo than replay it *)
    entry.e_agg <- None;
    List.iter
      (fun tuple ->
        entry.tuples <- tuple :: entry.tuples;
        entry.n <- entry.n + 1;
        t.n_tuples <- t.n_tuples + 1;
        t.tuple_bytes <- t.tuple_bytes + Tuple.size_bytes tuple;
        t.on_change Added bcp tuple)
      (List.rev tuples);
    publish ~stamp ~complete:true t entry;
    true
  end

let iter t f = Bcp.Table.iter (fun _ entry -> f entry) t.table

let fold t f init =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

(* Per-group accumulators over the entry's cached tuples. The memo is
   (re)built when absent or when the requested grouping differs from
   the memoized one; afterwards the add/remove choke points keep it
   fresh. Copies are returned so callers can merge without aliasing
   the memo. *)
let entry_groups _t entry ~key ~aggs =
  let ac =
    match entry.e_agg with
    | Some ac when ac.ac_key = key && ac.ac_aggs = aggs -> ac
    | _ ->
        let ac = { ac_key = key; ac_aggs = aggs; ac_groups = Tuple.Table.create 8 } in
        List.iter (agg_fold ac) entry.tuples;
        entry.e_agg <- Some ac;
        ac
  in
  Tuple.Table.fold
    (fun k accs out -> (k, Array.map Aggregate.copy accs) :: out)
    ac.ac_groups []
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

(* Paper invariant (Section 3.2): L*F*At bounds the PMV footprint. The
   published version must agree with the writer-visible entry state at
   any writer-quiescent point. *)
let invariants_ok t =
  n_entries t <= capacity t
  && t.n_tuples <= capacity t * t.f_max
  && fold t
       (fun ok e ->
         let v = Atomic.get e.published in
         ok
         && e.n <= t.f_max
         && e.n = List.length e.tuples
         && v.v_n = List.length v.v_tuples
         && v.v_n = e.n)
       true
