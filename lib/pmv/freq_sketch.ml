(* Space-bounded update-frequency sketch for heavy-light maintenance
   (DESIGN.md Section 17): a count-min sketch [d rows x w counters]
   with periodic decay. Each observed key increments one counter per
   row (seeded-hash indexed); the estimate is the minimum over rows,
   so it never under-counts — a key whose true frequency clears the
   heavy threshold can never be classified light (the property the
   qcheck suite pins down). Every [decay_every] observations all
   counters and the running total halve, so the classification tracks
   the recent update distribution instead of all history. *)

type t = {
  rows : int array array;  (* d x w counters *)
  seeds : int array;  (* one hash seed per row *)
  width : int;
  decay_every : int;
  mutable total : int;  (* decayed observation count *)
  mutable since_decay : int;
}

let create ?(rows = 4) ?(width = 1024) ?(decay_every = 8192) () =
  if rows <= 0 || width <= 0 || decay_every <= 0 then
    invalid_arg "Freq_sketch.create: all parameters must be positive";
  {
    rows = Array.init rows (fun _ -> Array.make width 0);
    (* fixed seeds: deterministic across runs, distinct across rows *)
    seeds = Array.init rows (fun i -> (i * 0x9e3779b1) lxor 0x5bd1e995);
    width;
    decay_every;
    total = 0;
    since_decay = 0;
  }

let cell t i key = Hashtbl.seeded_hash t.seeds.(i) key mod t.width

(* Halve every counter and the total: old observations fade
   geometrically, and no estimate ever increases (decay
   monotonicity). *)
let decay t =
  Array.iter (fun row -> Array.iteri (fun j c -> row.(j) <- c / 2) row) t.rows;
  t.total <- t.total / 2;
  t.since_decay <- 0

(* Count one observation of [key]; returns the key's updated estimate
   (the min over rows, read during the increment pass). *)
let observe t key =
  let est = ref max_int in
  Array.iteri
    (fun i row ->
      let j = cell t i key in
      let c = row.(j) + 1 in
      row.(j) <- c;
      if c < !est then est := c)
    t.rows;
  t.total <- t.total + 1;
  t.since_decay <- t.since_decay + 1;
  let e = !est in
  if t.since_decay >= t.decay_every then decay t;
  e

(* Read-only estimate: min over rows, no count. *)
let estimate t key =
  let est = ref max_int in
  Array.iteri
    (fun i row ->
      let c = row.(cell t i key) in
      if c < !est then est := c)
    t.rows;
  !est

let total t = t.total
let width t = t.width
let n_rows t = Array.length t.rows
