(* Managing many PMVs at once: the paper argues the RDBMS "can afford
   storing many PMVs" (Section 3.2's sizing example) — one per
   frequently used query template. The manager owns a set of views
   keyed by template name, sizes each one from a per-view storage
   budget UB via the Section 3.2 rule, routes queries to the right
   view, and attaches deferred maintenance for all of them.

   Views live in a hash table so routing stays O(1) however many
   templates are registered; a separate creation-order list keeps
   reports deterministic. The manager also owns the template plan
   cache every routed query answers through. *)

open Minirel_query
module Catalog = Minirel_index.Catalog
module Plan_cache = Minirel_exec.Plan_cache

type entry = {
  view : View.t;
  mutable ub_bytes : int option;
  (* budget-arbiter state (DESIGN.md Section 17): cumulative stat
     snapshots at the last rebalance and the EMA-smoothed measured
     hit-value-per-byte since *)
  mutable ema_value : float;
  mutable last_hits : int;
  mutable last_partials : int;
  mutable last_shaped : int;
}

type t = {
  catalog : Catalog.t;
  views : (string, entry) Hashtbl.t;  (* template name -> entry *)
  mutable order : string list;  (* template names, most recently created first *)
  plan_cache : Plan_cache.t;
  registry : Minirel_telemetry.Registry.t;
  mutable txn_mgr : Minirel_txn.Txn.t option;
  default_f_max : int;
  default_policy : Minirel_cache.Policies.kind;
  default_adaptive : bool;  (* new views get a heavy-light classifier *)
  mutable budget_total : int option;  (* global UB across all views *)
  mutable rebalance_every : int option;  (* auto-rebalance period, in answers *)
  mutable answers_since_rebalance : int;
  mutable rebalances : int;
}

(* Register a view as telemetry source [pmv.<template>]: query/fill
   counters, replacement-policy counters, and residency gauges. *)
let register_view_telemetry ?(registry = Minirel_telemetry.Registry.default) view =
  let module R = Minirel_telemetry.Registry in
  let vstats = View.stats view in
  R.register_source registry
    ~name:("pmv." ^ View.name view)
    ~reset:(fun () ->
      vstats.View.queries <- 0;
      vstats.View.query_hits <- 0;
      vstats.View.partial_tuples <- 0;
      vstats.View.fills <- 0;
      vstats.View.skipped_inserts <- 0;
      vstats.View.maint_removed <- 0;
      vstats.View.maint_skipped_updates <- 0;
      vstats.View.shaped_queries <- 0;
      (match View.adaptive view with
      | Some ad -> Adaptive.reset_counters ad
      | None -> ());
      Minirel_cache.Cache_stats.reset (Entry_store.policy_stats (View.store view)))
    (fun () ->
      [
        ("queries", R.Counter vstats.View.queries);
        ("query_hits", R.Counter vstats.View.query_hits);
        ("partial_tuples", R.Counter vstats.View.partial_tuples);
        ("fills", R.Counter vstats.View.fills);
        ("skipped_inserts", R.Counter vstats.View.skipped_inserts);
        ("maint_removed", R.Counter vstats.View.maint_removed);
        ("maint_skipped_updates", R.Counter vstats.View.maint_skipped_updates);
        ("shaped_queries", R.Counter vstats.View.shaped_queries);
        ("entries", R.Gauge (float_of_int (View.n_entries view)));
        ("tuples", R.Gauge (float_of_int (View.n_tuples view)));
        ("bytes", R.Gauge (float_of_int (View.size_bytes view)));
        ("hit_ratio", R.Gauge (View.hit_ratio view));
      ]
      @ (let store = View.store view in
         ("maint.lapsed", R.Counter (Entry_store.n_lapse_marked store))
         :: ("maint.recomputed", R.Counter (Entry_store.n_lapse_recomputed store))
         ::
         (match View.adaptive view with
         | Some ad ->
             [
               ("maint.heavy", R.Counter (Adaptive.n_heavy ad));
               ("maint.light", R.Counter (Adaptive.n_light ad));
             ]
         | None -> []))
      @ (let ps = View.probe_store view in
         let es = Entry_store.epoch_stats ps in
         [
           ("probe.entries", R.Gauge (float_of_int (Entry_store.n_entries ps)));
           ("probe.tuples", R.Gauge (float_of_int (Entry_store.n_tuples ps)));
           ("probe.versions_retired", R.Counter es.Minirel_parallel.Epoch.retired);
           ("probe.versions_reclaimed", R.Counter es.Minirel_parallel.Epoch.reclaimed);
           ("probe.versions_in_flight", R.Counter es.Minirel_parallel.Epoch.in_flight);
         ])
      @ List.map
          (fun (k, v) -> ("policy." ^ k, R.Counter v))
          (Minirel_cache.Cache_stats.to_list
             (Entry_store.policy_stats (View.store view))))

let create ?(default_f_max = 2) ?(default_policy = Minirel_cache.Policies.Clock)
    ?(default_adaptive = false) ?(registry = Minirel_telemetry.Registry.default)
    catalog =
  let t =
    {
      catalog;
      views = Hashtbl.create 16;
      order = [];
      plan_cache = Plan_cache.create catalog;
      registry;
      txn_mgr = None;
      default_f_max;
      default_policy;
      default_adaptive;
      budget_total = None;
      rebalance_every = None;
      answers_since_rebalance = 0;
      rebalances = 0;
    }
  in
  (* A manager is the engine's chokepoint, so creating one (re)binds its
     registry's engine-level sources to this instance's components. *)
  Minirel_storage.Buffer_pool.register_telemetry ~registry (Catalog.pool catalog);
  Plan_cache.register_telemetry ~registry t.plan_cache;
  Minirel_exec.Executor.register_telemetry ~registry catalog;
  t

let catalog t = t.catalog
let plan_cache t = t.plan_cache
let registry t = t.registry

let entries t = List.filter_map (Hashtbl.find_opt t.views) t.order
let views t = List.map (fun e -> e.view) (entries t)
let n_views t = Hashtbl.length t.views

let find t ~template = Option.map (fun e -> e.view) (Hashtbl.find_opt t.views template)

(* Average tuple size used when no result sample is available. *)
let default_avg_tuple_bytes = 64

(* Create (and register) a PMV for the template. [ub_bytes] sizes the
   view by the Section 3.2 rule L = UB / (F * At * 1.04); [sample]
   refines At from representative result tuples. Alternatively pass
   [capacity] directly. @raise Invalid_argument when the template
   already has a view or when neither capacity nor budget is given. *)
let create_view ?policy ?f_max ?capacity ?ub_bytes ?(sample = []) ?adaptive t compiled =
  let name = compiled.Template.spec.Template.name in
  if Hashtbl.mem t.views name then
    invalid_arg (Fmt.str "Manager.create_view: template %s already has a view" name);
  let f_max = Option.value ~default:t.default_f_max f_max in
  let policy = Option.value ~default:t.default_policy policy in
  let adaptive = Option.value ~default:t.default_adaptive adaptive in
  let capacity =
    match (capacity, ub_bytes) with
    | Some c, _ -> c
    | None, Some ub ->
        let avg =
          match Template.avg_result_bytes sample with 0 -> default_avg_tuple_bytes | n -> n
        in
        let l = Sizing.max_entries { Sizing.ub_bytes = ub; f_max; avg_tuple_bytes = avg } in
        if policy = Minirel_cache.Policies.Two_q then Sizing.two_q_am_of_clock_l l else l
    | None, None ->
        invalid_arg "Manager.create_view: pass either ~capacity or ~ub_bytes"
  in
  let view = View.create ~policy ~f_max ~capacity ~name compiled in
  if adaptive then View.set_adaptive view (Some (Adaptive.create ()));
  Hashtbl.replace t.views name
    { view; ub_bytes; ema_value = 0.0; last_hits = 0; last_partials = 0; last_shaped = 0 };
  t.order <- name :: t.order;
  register_view_telemetry ~registry:t.registry view;
  (match t.txn_mgr with Some mgr -> Maintain.attach view mgr | None -> ());
  view

(* Turn heavy-light maintenance on or off for every registered view.
   Turning it on keeps an already-trained classifier in place. *)
let set_adaptive_all t on =
  List.iter
    (fun e ->
      if not on then View.set_adaptive e.view None
      else if View.adaptive e.view = None then
        View.set_adaptive e.view (Some (Adaptive.create ())))
    (entries t)

(* Attach deferred maintenance for every current and future view. *)
let attach_maintenance t mgr =
  t.txn_mgr <- Some mgr;
  List.iter (fun e -> Maintain.attach e.view mgr) (entries t)

let drop_view t ~template =
  (match (Hashtbl.find_opt t.views template, t.txn_mgr) with
  | Some e, Some mgr -> Maintain.detach e.view mgr
  | _ -> ());
  if Hashtbl.mem t.views template then
    Minirel_telemetry.Registry.unregister_source t.registry ~name:("pmv." ^ template);
  Hashtbl.remove t.views template;
  t.order <- List.filter (fun n -> n <> template) t.order

(* ---- Global UB budget arbitration (DESIGN.md Section 17) ----

   Instead of freezing each template's UB at creation, the manager can
   own one global byte budget and periodically re-split it by measured
   value: since the last rebalance each view earned

     value = d(query_hits) + d(shaped_queries) + 0.01 * d(partial_tuples)

   (a shaped or plain hit each count 1; raw partial tuples count at 1%
   so a view streaming many tuples per hit doesn't drown the others).
   Value per byte is EMA-smoothed (alpha 0.5) so one quiet interval
   doesn't zero a previously useful template, each view's share is
   floored at half its equal share to keep starvation bounded, and the
   new per-view UB feeds the same Section 3.2 rule (L = UB/(F*At*1.04),
   2Q's Am correction included) used at creation. *)

module Tm = Minirel_telemetry.Telemetry

let c_rebalance = Tm.counter "budget.rebalance"

let set_global_budget ?auto_every t total =
  if total <= 0 then invalid_arg "Manager.set_global_budget: total must be positive";
  (match auto_every with
  | Some n when n <= 0 -> invalid_arg "Manager.set_global_budget: auto_every must be positive"
  | _ -> ());
  t.budget_total <- Some total;
  t.rebalance_every <- auto_every;
  t.answers_since_rebalance <- 0

let global_budget t = t.budget_total
let rebalances t = t.rebalances

let rebalance t =
  match t.budget_total with
  | None -> []
  | Some total ->
      let es = entries t in
      let n = List.length es in
      if n = 0 then []
      else begin
        (* measured hit-value-per-byte since the last rebalance, EMA-smoothed *)
        List.iter
          (fun e ->
            let vstats = View.stats e.view in
            let hits = vstats.View.query_hits in
            let partials = vstats.View.partial_tuples in
            let shaped = vstats.View.shaped_queries in
            let value =
              float_of_int (hits - e.last_hits)
              +. float_of_int (shaped - e.last_shaped)
              +. (0.01 *. float_of_int (partials - e.last_partials))
            in
            e.last_hits <- hits;
            e.last_partials <- partials;
            e.last_shaped <- shaped;
            let vpb = value /. float_of_int (max 1 (View.size_bytes e.view)) in
            e.ema_value <- (if e.ema_value = 0.0 then vpb else (0.5 *. e.ema_value) +. (0.5 *. vpb)))
          es;
        let sum = List.fold_left (fun acc e -> acc +. e.ema_value) 0.0 es in
        let equal = 1.0 /. float_of_int n in
        let raw_share e = if sum <= 0.0 then equal else e.ema_value /. sum in
        (* floor at half the equal share so no template starves outright *)
        let shares = List.map (fun e -> (e, Float.max (0.5 *. equal) (raw_share e))) es in
        let norm = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 shares in
        t.rebalances <- t.rebalances + 1;
        if Tm.is_enabled () then Minirel_telemetry.Registry.incr c_rebalance;
        List.map
          (fun (e, share) ->
            let ub = int_of_float (float_of_int total *. share /. norm) in
            e.ub_bytes <- Some ub;
            let store = View.store e.view in
            let avg =
              let nt = Entry_store.n_tuples store in
              if nt > 0 then max 1 (Entry_store.tuple_bytes store / nt)
              else default_avg_tuple_bytes
            in
            let l =
              Sizing.max_entries
                { Sizing.ub_bytes = ub; f_max = Entry_store.f_max store; avg_tuple_bytes = avg }
            in
            let l =
              if Entry_store.policy_name store = "2q" then Sizing.two_q_am_of_clock_l l else l
            in
            Entry_store.resize store ~capacity:l;
            Entry_store.resize (View.probe_store e.view) ~capacity:(4 * l);
            Minirel_telemetry.Flight.record Minirel_telemetry.Flight.Budget_rebalance
              ~a:(Minirel_telemetry.Flight.intern (View.name e.view))
              ~b:l;
            (View.name e.view, l))
          shares
      end

(* Answer through the template's view when one exists, plainly
   otherwise. Returns the stats and whether a view was used. Plans come
   from the manager's template plan cache. *)
let answer ?locks ?txn ?par ?profile ?probe_path ?trace t instance ~on_tuple =
  let name = (Instance.compiled instance).Template.spec.Template.name in
  match find t ~template:name with
  | Some view ->
      let r =
        Answer.answer ?locks ?txn ~plan_cache:t.plan_cache ?par ?profile ?probe_path
          ?trace ~view t.catalog instance ~on_tuple
      in
      (match t.rebalance_every with
      | Some every ->
          t.answers_since_rebalance <- t.answers_since_rebalance + 1;
          if t.answers_since_rebalance >= every then begin
            t.answers_since_rebalance <- 0;
            ignore (rebalance t)
          end
      | None -> ());
      (r, true)
  | None ->
      ( Answer.answer_plain ~plan_cache:t.plan_cache ?par ?profile ?trace t.catalog
          instance ~on_tuple,
        false )

(* Total approximate bytes across all views. *)
let total_bytes t =
  List.fold_left (fun acc e -> acc + View.size_bytes e.view) 0 (entries t)

type report_row = {
  template : string;
  entries : int;
  tuples : int;
  bytes : int;
  hit_ratio : float;
  queries : int;
}

let report t =
  List.map
    (fun (e : entry) ->
      {
        template = View.name e.view;
        entries = View.n_entries e.view;
        tuples = View.n_tuples e.view;
        bytes = View.size_bytes e.view;
        hit_ratio = View.hit_ratio e.view;
        queries = (View.stats e.view).View.queries;
      })
    (entries t)

let pp_report ppf t =
  Fmt.pf ppf "%-16s %-8s %-8s %-10s %-8s %-8s@." "template" "bcps" "tuples" "bytes" "hit"
    "queries";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-16s %-8d %-8d %-10d %-8.2f %-8d@." r.template r.entries r.tuples r.bytes
        r.hit_ratio r.queries)
    (report t);
  Fmt.pf ppf "total: %d bytes across %d views@." (total_bytes t) (n_views t)
