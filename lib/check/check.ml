(* Consistency oracle: ground truth by full scan, multiset diffs
   against the streamed answer, and deep PMV invariants. This is the
   reference implementation every optimised path is judged against, so
   it uses nothing from the planner, executor, plan cache or entry
   store beyond plain iteration. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog

(* --- ground truth ----------------------------------------------------- *)

(* Left-deep hash join in template relation order over full heap scans,
   then fixed-predicate filtering and the Ls' projection. *)
let full_mv catalog (compiled : Template.compiled) =
  let spec = compiled.Template.spec in
  let n = Array.length spec.Template.relations in
  let all_tuples i =
    Heap_file.fold
      (Catalog.heap catalog spec.Template.relations.(i))
      (fun acc _ t -> t :: acc)
      []
  in
  let local_pos i (a : Template.attr_ref) =
    Schema.pos compiled.Template.schemas.(i) a.Template.attr
  in
  (* extend the partial join (over relations 0..i-1) with relation i *)
  let extend partials i =
    let edges =
      List.filter_map
        (fun (a, b) ->
          if a.Template.rel = i && b.Template.rel < i then
            Some (Template.joined_pos compiled b, local_pos i a)
          else if b.Template.rel = i && a.Template.rel < i then
            Some (Template.joined_pos compiled a, local_pos i b)
          else None)
        spec.Template.joins
    in
    let rows = all_tuples i in
    match edges with
    | [] ->
        (* no edge to earlier relations: cross product *)
        List.concat_map (fun p -> List.map (fun t -> Tuple.concat p t) rows) partials
    | _ ->
        let tbl = Tuple.Table.create (2 * List.length rows) in
        List.iter
          (fun t ->
            let key = Array.of_list (List.map (fun (_, ip) -> t.(ip)) edges) in
            let cur = Option.value ~default:[] (Tuple.Table.find_opt tbl key) in
            Tuple.Table.replace tbl key (t :: cur))
          rows;
        List.concat_map
          (fun p ->
            let key = Array.of_list (List.map (fun (op, _) -> p.(op)) edges) in
            match Tuple.Table.find_opt tbl key with
            | Some matches -> List.map (fun t -> Tuple.concat p t) matches
            | None -> [])
          partials
  in
  let joined = ref (all_tuples 0) in
  for i = 1 to n - 1 do
    joined := extend !joined i
  done;
  let fixed_ok t =
    List.for_all
      (fun (i, p) -> Predicate.eval (Predicate.shift compiled.Template.offsets.(i) p) t)
      spec.Template.fixed
  in
  !joined |> List.filter fixed_ok |> List.map (Template.result_of_joined compiled)

let ground_truth catalog instance =
  full_mv catalog (Instance.compiled instance)
  |> List.filter (Instance.accepts_result instance)

(* --- §3.6 shape ground truths (same full-scan independence) ----------- *)

let ground_truth_distinct catalog instance =
  let seen = Tuple.Table.create 64 in
  List.filter
    (fun t ->
      if Tuple.Table.mem seen t then false
      else begin
        Tuple.Table.replace seen t ();
        true
      end)
    (ground_truth catalog instance)

(* Finalized per-group aggregate values, sorted by the projected key
   tuple — computed by plain folding over the ground-truth multiset,
   sharing only [Aggregate.finalize] with the streamed path. *)
let ground_truth_grouped catalog instance ~key ~aggs =
  let tbl = Tuple.Table.create 64 in
  List.iter
    (fun t ->
      let k = Tuple.project t key in
      let members = Option.value ~default:[] (Tuple.Table.find_opt tbl k) in
      Tuple.Table.replace tbl k (t :: members))
    (ground_truth catalog instance);
  Tuple.Table.fold
    (fun k members out ->
      let accs = Aggregate.of_tuples aggs (List.rev members) in
      (k, Array.mapi (fun i acc -> Aggregate.finalize aggs.(i) acc) accs) :: out)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> Tuple.compare a b)

let ground_truth_ordered catalog instance ~order ?limit () =
  let sorted = Ordering.sort ~order (ground_truth catalog instance) in
  match limit with
  | None -> sorted
  | Some k ->
      let rec take n = function
        | [] -> []
        | _ when n <= 0 -> []
        | x :: tl -> x :: take (n - 1) tl
      in
      take k sorted

let ground_truth_exists catalog instance = ground_truth catalog instance <> []

(* --- multiset diff ---------------------------------------------------- *)

type diff = { missing : Tuple.t list; extra : Tuple.t list }

let diff_is_empty d = d.missing = [] && d.extra = []

let counts_of tuples =
  let tbl = Tuple.Table.create (2 * List.length tuples + 1) in
  List.iter
    (fun t ->
      Tuple.Table.replace tbl t (1 + Option.value ~default:0 (Tuple.Table.find_opt tbl t)))
    tuples;
  tbl

let diff_multiset ~expected ~actual =
  let want = counts_of expected in
  let extra = ref [] in
  List.iter
    (fun t ->
      match Tuple.Table.find_opt want t with
      | Some n when n > 0 -> Tuple.Table.replace want t (n - 1)
      | Some _ | None -> extra := t :: !extra)
    actual;
  let missing = ref [] in
  Tuple.Table.iter
    (fun t n ->
      for _ = 1 to n do
        missing := t :: !missing
      done)
    want;
  {
    missing = List.sort Tuple.compare !missing;
    extra = List.sort Tuple.compare !extra;
  }

let pp_diff ppf d =
  let side name ppf = function
    | [] -> Fmt.pf ppf "%s=0" name
    | ts -> Fmt.pf ppf "%s=%d %a" name (List.length ts) Fmt.(Dump.list Tuple.pp) ts
  in
  Fmt.pf ppf "%a %a" (side "missing") d.missing (side "extra") d.extra

(* --- answer oracle ---------------------------------------------------- *)

type report = {
  diff : diff;
  delivered : int;
  partials : int;
  ds_identity_ok : bool;
  stats : Pmv.Answer.stats;
  template : string option;  (* which template the query instantiated *)
  shape : string option;  (* query-shape class: plain/distinct/grouped/... *)
}

let report_ok r = diff_is_empty r.diff && r.ds_identity_ok

let report_ok_allowing_stale r =
  r.diff.missing = []
  && List.length r.diff.extra = r.stats.Pmv.Answer.stale_purged
  && r.ds_identity_ok

(* Name the template and shape up front: a sharded mismatch that prints
   only the tuple diff is slow to triage. *)
let pp_report ppf r =
  let label name = function
    | None -> ()
    | Some s -> Fmt.pf ppf "%s=%s " name s
  in
  label "template" r.template;
  label "shape" r.shape;
  Fmt.pf ppf "delivered=%d partials=%d stale=%d ds_identity=%b %a" r.delivered r.partials
    r.stats.Pmv.Answer.stale_purged r.ds_identity_ok pp_diff r.diff

(* Judge an arbitrary answer source against a precomputed expected
   multiset. [answer] drives the source (a single view, a sharded
   router, ...) through the supplied [on_tuple] and returns the final
   answer statistics; the DS exactly-once identity is checked on those
   — for merged shard streams the summed stats must satisfy it just as
   a single engine's do. *)
let check_answer_via ?template ?shape ~expected answer =
  let delivered = ref [] and partials = ref 0 in
  let stats =
    answer ~on_tuple:(fun phase t ->
        delivered := t :: !delivered;
        if phase = Pmv.Answer.Partial then incr partials)
  in
  let n_delivered = List.length !delivered in
  {
    diff = diff_multiset ~expected ~actual:!delivered;
    delivered = n_delivered;
    partials = !partials;
    ds_identity_ok =
      n_delivered = stats.Pmv.Answer.total_count + stats.Pmv.Answer.stale_purged;
    stats;
    template;
    shape;
  }

let check_answer ?locks ?txn ?probe_path ~view catalog instance =
  let template = (Instance.compiled instance).Template.spec.Template.name in
  check_answer_via ~template ~shape:"plain"
    ~expected:(ground_truth catalog instance)
    (fun ~on_tuple ->
      Pmv.Answer.answer ?locks ?txn ?probe_path ~view catalog instance ~on_tuple)

(* --- deep view invariants --------------------------------------------- *)

let check_view ?ub_bytes view catalog =
  let compiled = Pmv.View.compiled view in
  let store = Pmv.View.store view in
  let violations = ref [] in
  let bad fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  if not (Pmv.View.invariants_ok view) then
    bad "store bounds violated: entries=%d capacity=%d f_max=%d"
      (Pmv.View.n_entries view)
      (Pmv.Entry_store.capacity store)
      (Pmv.Entry_store.f_max store);
  (match ub_bytes with
  | Some ub when Pmv.View.size_bytes view > ub ->
      bad "storage budget exceeded: %d bytes > UB=%d" (Pmv.View.size_bytes view) ub
  | Some _ | None -> ());
  (* containment: each cached tuple must appear in the full MV at least
     as often as it is cached, under the bcp the pipeline assigns it *)
  let mv_counts = counts_of (full_mv catalog compiled) in
  Pmv.Entry_store.iter store (fun entry ->
      let bcp = entry.Pmv.Entry_store.e_bcp in
      if entry.Pmv.Entry_store.n <> List.length entry.Pmv.Entry_store.tuples then
        bad "entry %a: n=%d but %d tuples" Bcp.pp bcp entry.Pmv.Entry_store.n
          (List.length entry.Pmv.Entry_store.tuples);
      (* a lapsed entry legitimately holds stale tuples: a light-key
         delta skipped its maintenance and the store purges it before
         the next serve, so its cache is semantically empty here *)
      if not entry.Pmv.Entry_store.e_lapsed then begin
      let cached = counts_of entry.Pmv.Entry_store.tuples in
      Tuple.Table.iter
        (fun t k ->
          (match Tuple.Table.find_opt mv_counts t with
          | Some m when m >= k -> ()
          | Some m ->
              bad "tuple %a cached %d times but only %d in the MV" Tuple.pp t k m
          | None -> bad "stale cached tuple %a not in the MV" Tuple.pp t);
          let home = Condition_part.bcp_of_result compiled t in
          if not (Bcp.equal home bcp) then
            bad "tuple %a filed under bcp %a, belongs to %a" Tuple.pp t Bcp.pp bcp Bcp.pp
              home)
        cached
      end);
  List.rev !violations
