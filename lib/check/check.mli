(** Consistency oracle for the PMV pipeline. Ground truth is computed
    by a full-scan join, independent of the planner, executor, plan
    cache and views, and diffed — as a multiset — against what the
    O1/O2/O3 answering pipeline actually streamed. On top sit two
    deeper checks: the DS exactly-once accounting identity and the
    containment of every cached PMV tuple in its containing MV. *)

open Minirel_storage
open Minirel_query

(** The full materialized view by full scan: every Ls' tuple of the
    template's join satisfying Cjoin and the fixed predicates, as a
    multiset. Independent of the planner/executor. *)
val full_mv : Minirel_index.Catalog.t -> Template.compiled -> Tuple.t list

(** Ground truth for one query: {!full_mv} filtered by the instance's
    Cselect. *)
val ground_truth : Minirel_index.Catalog.t -> Instance.t -> Tuple.t list

(** {!ground_truth} with set semantics (first occurrence kept). *)
val ground_truth_distinct : Minirel_index.Catalog.t -> Instance.t -> Tuple.t list

(** Finalized per-group aggregate values over {!ground_truth}, sorted
    by the projected key tuple. Shares only [Aggregate.finalize] with
    the streamed path. *)
val ground_truth_grouped :
  Minirel_index.Catalog.t ->
  Instance.t ->
  key:int array ->
  aggs:Aggregate.spec array ->
  (Tuple.t * Value.t array) list

(** {!ground_truth} under the shared total order [Ordering.cmp ~order],
    optionally cut to the first [limit] tuples (prefix-exact target for
    first-k answers). *)
val ground_truth_ordered :
  Minirel_index.Catalog.t ->
  Instance.t ->
  order:Ordering.key array ->
  ?limit:int ->
  unit ->
  Tuple.t list

val ground_truth_exists : Minirel_index.Catalog.t -> Instance.t -> bool

(** Multiset difference, both directions. *)
type diff = {
  missing : Tuple.t list;  (** expected but not delivered *)
  extra : Tuple.t list;  (** delivered but not expected *)
}

val diff_is_empty : diff -> bool
val diff_multiset : expected:Tuple.t list -> actual:Tuple.t list -> diff
val pp_diff : diff Fmt.t

(** Oracle verdict for one answered query. *)
type report = {
  diff : diff;
  delivered : int;  (** on_tuple invocations *)
  partials : int;  (** of which phase [Partial] *)
  ds_identity_ok : bool;
      (** the DS exactly-once accounting identity
          [delivered = total_count + stale_purged]: every executed
          tuple reaches the user exactly once, plus the stale cached
          tuples O2 already streamed *)
  stats : Pmv.Answer.stats;
  template : string option;
      (** which template the query instantiated — printed first by
          {!pp_report} so sharded mismatches triage fast *)
  shape : string option;  (** query-shape class (plain/distinct/grouped/...) *)
}

(** No diff and the DS identity holds. *)
val report_ok : report -> bool

(** When pending maintenance may legitimately have left stale cached
    tuples: nothing missing, every extra accounted for by the stale
    purge, DS identity intact. *)
val report_ok_allowing_stale : report -> bool

val pp_report : report Fmt.t

(** Judge an arbitrary answer source — a single view, a sharded router,
    anything that streams tuples and returns {!Pmv.Answer.stats} —
    against a precomputed [expected] multiset. The DS exactly-once
    identity is checked on the returned stats, so merged shard streams
    must satisfy it under summation just as a single engine does. *)
val check_answer_via :
  ?template:string ->
  ?shape:string ->
  expected:Tuple.t list ->
  (on_tuple:(Pmv.Answer.phase -> Tuple.t -> unit) -> Pmv.Answer.stats) ->
  report

(** Answer [instance] through [view] and diff the streamed result
    against {!ground_truth}. *)
val check_answer :
  ?locks:Minirel_txn.Lock_manager.t ->
  ?txn:int ->
  ?probe_path:Pmv.Answer.probe_path ->
  view:Pmv.View.t ->
  Minirel_index.Catalog.t ->
  Instance.t ->
  report

(** Deep view invariants, [] when consistent: the Section 3.2 store
    bounds (entries <= L, per-entry tuples <= F), entry/bcp agreement,
    optionally the storage budget [ub_bytes], and containment — every
    cached tuple must appear in {!full_mv} at least as often as it is
    cached, filed under the bcp {!Condition_part.bcp_of_result}
    assigns it. Entries marked lapsed by the adaptive-maintenance
    light-key path are exempt from containment: their cache is
    semantically empty and is purged before the next serve. *)
val check_view :
  ?ub_bytes:int -> Pmv.View.t -> Minirel_index.Catalog.t -> string list
