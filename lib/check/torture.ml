(* Deterministic torture driver. One seeded SplitMix64 stream drives
   everything: event selection, query parameters, transaction contents
   and — through {!Minirel_fault.Fault.enable}'s derived streams — the
   fault firing decisions. The driver keeps a per-relation shadow
   multiset updated only on acknowledged deltas; after every injected
   WAL crash it recovers from snapshot + log replay and diffs the
   recovered heaps against the shadow, classified by crash site:

     wal.pre_append   nothing of the crashed change is durable —
                      recovered state equals the shadow exactly;
     wal.mid_flush    a durable prefix — every surplus tuple must be
                      one the change inserted, every deficit one it
                      deleted;
     wal.post_commit  fully durable — the diff equals the change's
                      whole effect.

   Query answers are oracle-checked on every query event; while
   deferred maintenance is pending the lenient verdict (extras exactly
   accounted for by the stale purge) applies, otherwise the strict one.
   A lost maintenance step (maintain.apply) leaves the view stale
   beyond what the stale purge repairs, so the driver rebuilds the
   view — the documented owner obligation. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module Snapshot = Minirel_index.Snapshot
module Txn = Minirel_txn.Txn
module Wal = Minirel_txn.Wal
module Lock_manager = Minirel_txn.Lock_manager
module Fault = Minirel_fault.Fault
module SM = Minirel_prng.Split_mix
module Zipf = Minirel_workload.Zipf
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen

type cfg = {
  seed : int;
  events : int;
  scale : float;
  check_every : int;
  shards : int;  (* engine count for {!run_sharded}; {!run} ignores it *)
  domains : int;  (* pool workers for {!run_sharded}'s fan-out; 1 = sequential *)
  probe_path : Pmv.Answer.probe_path;
      (* read path queries take; Locked keeps the lockmgr fault sites hot *)
  adaptive : bool;
      (* heavy-light adaptive maintenance on every view: light-key
         deltas lapse entries instead of eager victim removal, and the
         oracle checks must stay exact either way *)
  dir : string option;
  log : (string -> unit) option;
}

let default_cfg ~seed =
  {
    seed;
    events = 400;
    scale = 0.002;
    check_every = 40;
    shards = 1;
    domains = 1;
    probe_path = Pmv.Answer.Locked;
    adaptive = false;
    dir = None;
    log = None;
  }

type outcome = {
  events : int;
  queries : int;
  txns : int;
  crashes : int;
  recoveries : int;
  deferrals : int;
  lock_rejects : int;
  io_faults : int;
  rebuilds : int;
  deep_checks : int;
  failures : string list;
  digest : string;
}

let ok o = o.failures = []

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>events=%d queries=%d txns=%d crashes=%d recoveries=%d deferrals=%d@ \
     lock_rejects=%d io_faults=%d rebuilds=%d deep_checks=%d digest=%s@ %a@]"
    o.events o.queries o.txns o.crashes o.recoveries o.deferrals o.lock_rejects
    o.io_faults o.rebuilds o.deep_checks o.digest
    (fun ppf -> function
      | [] -> Fmt.string ppf "verdict: clean"
      | fs ->
          Fmt.pf ppf "verdict: %d FAILURES@ %a" (List.length fs)
            Fmt.(list ~sep:cut string)
            fs)
    o.failures

(* --- event digest (FNV-1a 64) ------------------------------------------ *)

let fnv_prime = 0x100000001b3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* --- seeded workload context ------------------------------------------- *)

(* The PRNG and data-shape parameters every event generator draws from,
   shared by the single-engine and sharded drivers. *)
type wctx = {
  rng : SM.t;
  counts : Tpcr.counts;
  dates_zipf : Zipf.t;
  supp_zipf : Zipf.t;
  mutable next_orderkey : int;
}

let make_wctx ~seed ~params ~counts =
  {
    rng = SM.create ~seed;
    counts;
    dates_zipf = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07;
    supp_zipf = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07;
    next_orderkey = counts.Tpcr.orders + 1;
  }

(* --- driver state ------------------------------------------------------ *)

type st = {
  cfg : cfg;
  w : wctx;
  snapshot_file : string;
  wal_file : string;
  mutable catalog : Catalog.t;
  mutable t1 : Template.compiled;
  mutable mgr : Txn.t;
  mutable wal : Wal.t;
  mutable view : Pmv.View.t;
  (* relation name -> tuple multiset, updated only on acknowledged
     deltas: the recovery oracle's notion of committed state *)
  mutable shadow : (string * int Tuple.Table.t) list;
  mutable digest : int64;
  mutable qid : int;
  mutable queries : int;
  mutable txns : int;
  mutable crashes : int;
  mutable recoveries : int;
  mutable deferrals : int;
  mutable lock_rejects : int;
  mutable io_faults : int;
  mutable rebuilds : int;
  mutable deep_checks : int;
  mutable failures : string list;
}

let note st line =
  st.digest <- fnv_string st.digest line;
  match st.cfg.log with Some f -> f line | None -> ()

let fail st fmt =
  Fmt.kstr
    (fun s ->
      st.failures <- s :: st.failures;
      note st ("FAIL: " ^ s))
    fmt

let defer_prob = 0.08
let rels = [ "customer"; "orders"; "lineitem" ]

(* --- shadow multisets -------------------------------------------------- *)

let bump tbl t k =
  let n = k + Option.value ~default:0 (Tuple.Table.find_opt tbl t) in
  if n = 0 then Tuple.Table.remove tbl t else Tuple.Table.replace tbl t n

let snapshot_shadow catalog =
  List.map
    (fun rel ->
      let tbl = Tuple.Table.create 1024 in
      Heap_file.iter (Catalog.heap catalog rel) (fun _ t -> bump tbl t 1);
      (rel, tbl))
    rels

let shadow_tbl st rel = List.assoc rel st.shadow

let shadow_tuples tbl =
  let out = ref [] in
  Tuple.Table.iter
    (fun t k ->
      for _ = 1 to k do
        out := t :: !out
      done)
    tbl;
  !out

let shadow_apply_delta st (d : Txn.delta) =
  let tbl = shadow_tbl st d.Txn.rel in
  List.iter (fun t -> bump tbl t 1) d.Txn.inserted;
  List.iter (fun t -> bump tbl t (-1)) d.Txn.deleted;
  List.iter
    (fun (o, n) ->
      bump tbl o (-1);
      bump tbl n 1)
    d.Txn.updated

(* The full effect a change would have, evaluated against the shadow
   (which mirrors the catalog at transaction start): the tuples it
   inserts and the tuples it deletes, as multisets. *)
let change_effect st = function
  | Txn.Insert { rel; tuple } -> (rel, [ tuple ], [])
  | Txn.Delete { rel; pred } ->
      let victims = ref [] in
      Tuple.Table.iter
        (fun t k ->
          if Predicate.eval pred t then
            for _ = 1 to k do
              victims := t :: !victims
            done)
        (shadow_tbl st rel);
      (rel, [], !victims)
  | Txn.Update { rel; pred; set } ->
      let olds = ref [] and news = ref [] in
      Tuple.Table.iter
        (fun t k ->
          if Predicate.eval pred t then begin
            let nt = Array.copy t in
            List.iter (fun (pos, v) -> nt.(pos) <- v) set;
            for _ = 1 to k do
              olds := t :: !olds;
              news := nt :: !news
            done
          end)
        (shadow_tbl st rel);
      (rel, !news, !olds)

let shadow_apply_change st change =
  let rel, ins, del = change_effect st change in
  let tbl = shadow_tbl st rel in
  List.iter (fun t -> bump tbl t (-1)) del;
  List.iter (fun t -> bump tbl t 1) ins

(* --- workload generation ----------------------------------------------- *)

let rand_price w = Value.Float (float_of_int (SM.int w.rng ~bound:1_000_000) /. 100.0)
let zipf_date w = Querygen.value_of_rank (Zipf.sample w.dates_zipf w.rng)
let zipf_supp w = Querygen.value_of_rank (Zipf.sample w.supp_zipf w.rng)
let rand_orderkey w = 1 + SM.int w.rng ~bound:(w.next_orderkey - 1)
let orderkey_pred k = Predicate.Cmp (Predicate.Eq, 0, Value.Int k)

let gen_change w =
  let r = SM.int w.rng ~bound:100 in
  if r < 18 then begin
    let ok = w.next_orderkey in
    w.next_orderkey <- w.next_orderkey + 1;
    Txn.Insert
      {
        rel = "orders";
        tuple =
          [|
            Value.Int ok;
            Value.Int (1 + SM.int w.rng ~bound:w.counts.Tpcr.customers);
            zipf_date w;
            rand_price w;
            Value.Str "";
          |];
      }
  end
  else if r < 38 then
    Txn.Insert
      {
        rel = "lineitem";
        tuple =
          [|
            Value.Int (rand_orderkey w);
            zipf_supp w;
            Value.Int (1 + SM.int w.rng ~bound:10);
            Value.Int (1 + SM.int w.rng ~bound:50);
            rand_price w;
            Value.Str "";
          |];
      }
  else if r < 52 then
    Txn.Delete { rel = "lineitem"; pred = orderkey_pred (rand_orderkey w) }
  else if r < 62 then Txn.Delete { rel = "orders"; pred = orderkey_pred (rand_orderkey w) }
  else if r < 76 then
    (* relevant update: suppkey is a selection attribute (in Ls') *)
    Txn.Update
      {
        rel = "lineitem";
        pred = orderkey_pred (rand_orderkey w);
        set = [ (1, zipf_supp w) ];
      }
  else if r < 86 then
    (* relevant update: quantity is in the select list *)
    Txn.Update
      {
        rel = "lineitem";
        pred = orderkey_pred (rand_orderkey w);
        set = [ (3, Value.Int (1 + SM.int w.rng ~bound:50)) ];
      }
  else if r < 94 then
    (* relevant update: orderdate is a selection attribute *)
    Txn.Update { rel = "orders"; pred = orderkey_pred (rand_orderkey w); set = [ (2, zipf_date w) ] }
  else
    (* irrelevant update: lineitem pad touches neither Ls' nor Cjoin *)
    Txn.Update
      {
        rel = "lineitem";
        pred = orderkey_pred (rand_orderkey w);
        set = [ (5, Value.Str "x") ];
      }

let describe_change = function
  | Txn.Insert { rel; tuple } -> Fmt.str "ins %s %a" rel Tuple.pp tuple
  | Txn.Delete { rel; pred } -> Fmt.str "del %s where %a" rel Predicate.pp pred
  | Txn.Update { rel; pred; set } ->
      Fmt.str "upd %s where %a set %a" rel Predicate.pp pred
        Fmt.(Dump.list (Dump.pair int Value.pp))
        set

let describe_inst inst =
  Instance.params inst |> Array.to_list
  |> List.map (function
       | Instance.Dvalues vs -> Fmt.str "{%a}" Fmt.(list ~sep:comma Value.pp) vs
       | Instance.Dintervals is -> Fmt.str "[%d intervals]" (List.length is))
  |> String.concat " & "

(* --- view / hook lifecycle --------------------------------------------- *)

let make_view st =
  let v = Pmv.View.create ~capacity:96 ~name:"torture" st.t1 in
  if st.cfg.adaptive then Pmv.View.set_adaptive v (Some (Pmv.Adaptive.create ()));
  v

(* Maintenance first, WAL second: {!Txn.register_hook} prepends, so the
   WAL hook runs before maintenance and an injected maintenance fault
   can never lose an already-applied-but-unlogged delta. *)
let attach_hooks st =
  Pmv.Maintain.attach st.view st.mgr;
  Wal.attach st.wal st.mgr

let detach_hooks st =
  Pmv.Maintain.detach st.view st.mgr;
  Wal.detach st.wal st.mgr

let rebuild_view st =
  detach_hooks st;
  st.view <- make_view st;
  attach_hooks st;
  st.rebuilds <- st.rebuilds + 1;
  note st "view rebuilt after lost maintenance"

(* Apply queued maintenance with the defer failpoint suspended, so the
   queue really drains; re-arming gives Prob a fresh derived stream
   (still seed-deterministic). *)
let flush_pending_hard st =
  if Pmv.Maintain.n_pending st.view > 0 then begin
    Fault.disarm "maintain.defer";
    (match Pmv.Maintain.flush_pending st.view st.mgr with
    | () -> ()
    | exception Fault.Injected "maintain.apply" -> rebuild_view st);
    Fault.arm "maintain.defer" (Fault.Prob defer_prob)
  end

(* --- transactions ------------------------------------------------------ *)

let wal_site = function
  | "wal.pre_append" | "wal.mid_flush" | "wal.post_commit" -> true
  | _ -> false

let lock_conflict msg =
  String.length msg >= 13 && String.sub msg 0 13 = "lock conflict"

let run_txn st change =
  match Txn.run st.mgr [ change ] with
  | deltas ->
      List.iter (shadow_apply_delta st) deltas;
      st.txns <- st.txns + 1;
      `Committed
  | exception Fault.Injected site when wal_site site -> `Crashed site
  | exception Fault.Injected "maintain.apply" ->
      (* the WAL hook ran first: catalog and log hold the change, only
         the view missed its maintenance *)
      shadow_apply_change st change;
      st.txns <- st.txns + 1;
      `Lost_maintenance
  | exception Failure msg when lock_conflict msg -> `Lock_reject

(* --- crash + recovery -------------------------------------------------- *)

let crash_sites = [| "wal.pre_append"; "wal.mid_flush"; "wal.post_commit" |]

let heap_tuples catalog rel =
  Heap_file.fold (Catalog.heap catalog rel) (fun acc _ t -> t :: acc) []

(* Diff the recovered heaps against the shadow, accepting exactly what
   the crash site permits of the crashed change's effect. *)
let verify_recovery st ~site ~rel ~would_ins ~would_del recovered =
  List.iter
    (fun (r, tbl) ->
      let d =
        Check.diff_multiset ~expected:(shadow_tuples tbl) ~actual:(heap_tuples recovered r)
      in
      if r <> rel then begin
        if not (Check.diff_is_empty d) then
          fail st "recovery(%s): untouched relation %s diverged: %a" site r Check.pp_diff d
      end
      else
        match site with
        | "wal.pre_append" ->
            if not (Check.diff_is_empty d) then
              fail st "recovery(pre-append): %s must equal the pre-crash state: %a" r
                Check.pp_diff d
        | "wal.post_commit" ->
            (* fully durable: the heap diff equals the change's NET
               effect — a no-op update pair (old = new, e.g. setting
               suppkey to its current value) cancels out and must not
               be expected in the diff *)
            let net = Check.diff_multiset ~expected:would_del ~actual:would_ins in
            let dm = Check.diff_multiset ~expected:net.Check.missing ~actual:d.Check.missing in
            let di = Check.diff_multiset ~expected:net.Check.extra ~actual:d.Check.extra in
            if not (Check.diff_is_empty dm && Check.diff_is_empty di) then
              fail st
                "recovery(post-commit): %s must reflect the whole change: del-side %a, \
                 ins-side %a"
                r Check.pp_diff dm Check.pp_diff di
        | _ ->
            (* mid-flush: a durable prefix — surplus within the inserts,
               deficit within the deletes *)
            let dm = Check.diff_multiset ~expected:would_del ~actual:d.Check.missing in
            let di = Check.diff_multiset ~expected:would_ins ~actual:d.Check.extra in
            if dm.Check.extra <> [] || di.Check.extra <> [] then
              fail st "recovery(mid-flush): %s prefix outside the crashed change: %a" r
                Check.pp_diff d)
    st.shadow

let recover st ~site ~change =
  st.crashes <- st.crashes + 1;
  note st (Fmt.str "CRASH at %s during [%s]; recovering" site (describe_change change));
  let rel, would_ins, would_del = change_effect st change in
  (* the failpoint flushed the channel before raising, so closing loses
     nothing *)
  (try Wal.close st.wal with _ -> ());
  let pool = Buffer_pool.create ~capacity:20_000 () in
  let catalog = Snapshot.load ~pool ~filename:st.snapshot_file in
  let replayed =
    try Wal.replay catalog ~filename:st.wal_file
    with Wal.Corrupt msg ->
      fail st "recovery(%s): corrupt log: %s" site msg;
      0
  in
  (try Catalog.validate catalog
   with Catalog.Inconsistent msg -> fail st "recovery(%s): catalog inconsistent: %s" site msg);
  verify_recovery st ~site ~rel ~would_ins ~would_del catalog;
  (* adopt the recovered state and checkpoint: fresh snapshot, empty
     log, fresh (empty, trivially consistent) view *)
  st.catalog <- catalog;
  st.t1 <- Template.compile catalog Querygen.t1_spec;
  st.mgr <- Txn.create catalog;
  st.shadow <- snapshot_shadow catalog;
  Snapshot.save catalog ~filename:st.snapshot_file;
  if Sys.file_exists st.wal_file then Sys.remove st.wal_file;
  st.wal <- Wal.open_log ~filename:st.wal_file ();
  st.view <- make_view st;
  attach_hooks st;
  st.recoveries <- st.recoveries + 1;
  note st (Fmt.str "recovered: %d changes replayed" replayed)

(* --- events ------------------------------------------------------------ *)

let finish_txn st change = function
  | `Committed -> ()
  | `Lost_maintenance -> rebuild_view st
  | `Lock_reject ->
      st.lock_rejects <- st.lock_rejects + 1;
      note st "txn: lock rejected"
  | `Crashed site -> recover st ~site ~change

let txn_event st =
  let change = gen_change st.w in
  note st (Fmt.str "txn: %s" (describe_change change));
  finish_txn st change (run_txn st change)

(* --- Section 3.6 shape oracles ----------------------------------------- *)

(* Finalized aggregate values may sum floats in different orders on the
   streamed and oracle sides: compare with a relative epsilon. *)
let value_close a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Float.abs (x -. y)
      <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> Value.compare a b = 0

let groups_agree expected actual =
  List.length expected = List.length actual
  && List.for_all2
       (fun (ek, evs) (ak, avs) ->
         Tuple.compare ek ak = 0
         && Array.length evs = Array.length avs
         && Array.for_all2 value_close evs avs)
       expected actual

let rows_equal expected actual =
  List.length expected = List.length actual
  && List.for_all2 (fun a b -> Tuple.compare a b = 0) expected actual

(* Draw this query's shape from the seeded stream: plain stays dominant
   (the classic oracle exercises the DS identity), the Section 3.6
   shapes cover the rest. Non-plain shapes only run while no
   maintenance is pending — their oracles have no allowing-stale
   verdict. *)
let draw_shape w compiled ~pending =
  let k = 1 + SM.int w.rng ~bound:8 in
  let shapes = Querygen.shapes_for compiled ~k in
  let r = SM.int w.rng ~bound:10 in
  if pending || r < 6 then Querygen.Plain
  else
    match shapes with
    | _ :: (_ :: _ as rest) -> List.nth rest ((r - 6) mod List.length rest)
    | _ -> Querygen.Plain

(* Oracle-check one non-plain shape against the single-engine view;
   every mismatch names the template and shape class. *)
let shape_query st shape inst =
  let sname = Querygen.shape_name shape in
  let tname = st.t1.Template.spec.Template.name in
  let txn = 1_000_000 + st.qid in
  let locks = Txn.locks st.mgr in
  let shape_fail fmt =
    Fmt.kstr
      (fun s ->
        fail st "query %d template=%s shape=%s (%s): %s" st.qid tname sname
          (describe_inst inst) s)
      fmt
  in
  (match shape with
  | Querygen.Plain -> assert false (* routed through check_answer *)
  | Querygen.Distinct ->
      let delivered = ref [] in
      let _stats, n =
        Pmv.Extensions.answer_distinct ~locks ~txn ~probe_path:st.cfg.probe_path
          ~view:st.view st.catalog inst ~on_tuple:(fun _ t ->
            delivered := t :: !delivered)
      in
      let d =
        Check.diff_multiset
          ~expected:(Check.ground_truth_distinct st.catalog inst)
          ~actual:(List.rev !delivered)
      in
      if not (Check.diff_is_empty d) then shape_fail "%a" Check.pp_diff d
      else if n <> List.length !delivered then
        shape_fail "reported %d distinct, delivered %d" n (List.length !delivered)
      else note st (Fmt.str "query %d (%s) %s: %d rows" st.qid (describe_inst inst) sname n)
  | Querygen.Grouped { key; aggs } ->
      let g =
        Pmv.Extensions.answer_groups ~locks ~txn ~probe_path:st.cfg.probe_path
          ~view:st.view st.catalog inst ~key ~aggs
      in
      (* shadow accumulators: the oracle folds its own rows through the
         same associative specs, sharing only Aggregate.finalize *)
      let expected = Check.ground_truth_grouped st.catalog inst ~key ~aggs in
      let actual = Pmv.Extensions.finalize_groups ~aggs g.Pmv.Extensions.g_groups in
      if not (groups_agree expected actual) then
        shape_fail "%d groups vs %d oracle groups" (List.length actual)
          (List.length expected)
      else
        note st
          (Fmt.str "query %d (%s) %s: %d groups" st.qid (describe_inst inst) sname
             (List.length actual))
  | Querygen.Ordered { order; k } ->
      let rows, _stats =
        Pmv.Extensions.answer_ordered_k ~locks ~txn ~probe_path:st.cfg.probe_path
          ~view:st.view st.catalog inst ~order ~k
      in
      let expected = Check.ground_truth_ordered st.catalog inst ~order ~limit:k () in
      if not (rows_equal expected rows) then
        shape_fail "first-%d prefix diverges from the oracle order" k
      else
        note st
          (Fmt.str "query %d (%s) %s: first %d of %d" st.qid (describe_inst inst) sname
             (List.length rows) k)
  | Querygen.Exists ->
      let got, how = Pmv.Extensions.exists_ ~probe_path:st.cfg.probe_path ~view:st.view st.catalog inst in
      let want = Check.ground_truth_exists st.catalog inst in
      if got <> want then shape_fail "answered %b, oracle says %b" got want
      else
        note st
          (Fmt.str "query %d (%s) %s: %b (%s)" st.qid (describe_inst inst) sname got
             (match how with `From_pmv -> "witness" | `Executed -> "executed")));
  st.queries <- st.queries + 1

let run_checked_query st =
  let e = 1 + SM.int st.w.rng ~bound:3 and f = 1 + SM.int st.w.rng ~bound:2 in
  let inst =
    Querygen.gen_t1 st.t1 ~dates_zipf:st.w.dates_zipf ~supp_zipf:st.w.supp_zipf ~e ~f st.w.rng
  in
  st.qid <- st.qid + 1;
  let txn = 1_000_000 + st.qid in
  let pending = Pmv.Maintain.n_pending st.view > 0 in
  match draw_shape st.w st.t1 ~pending with
  | Querygen.Plain -> (
      match
        Check.check_answer ~locks:(Txn.locks st.mgr) ~txn ~probe_path:st.cfg.probe_path
          ~view:st.view st.catalog inst
      with
      | r ->
          st.queries <- st.queries + 1;
          let verdict =
            if pending then Check.report_ok_allowing_stale r else Check.report_ok r
          in
          if not verdict then
            fail st "query %d (%s)%s: %a" st.qid (describe_inst inst)
              (if pending then " [pending maintenance]" else "")
              Check.pp_report r
          else
            note st
              (Fmt.str "query %d (%s): %d rows, %d partial, %d stale" st.qid
                 (describe_inst inst) r.Check.delivered r.Check.partials
                 r.Check.stats.Pmv.Answer.stale_purged)
      | exception Failure msg when lock_conflict msg ->
          st.lock_rejects <- st.lock_rejects + 1;
          note st (Fmt.str "query %d: lock rejected" st.qid)
      | exception Fault.Injected site ->
          st.io_faults <- st.io_faults + 1;
          note st (Fmt.str "query %d: injected %s" st.qid site))
  | shape -> (
      match shape_query st shape inst with
      | () -> ()
      | exception Failure msg when lock_conflict msg ->
          st.lock_rejects <- st.lock_rejects + 1;
          note st (Fmt.str "query %d: lock rejected" st.qid)
      | exception Fault.Injected site ->
          st.io_faults <- st.io_faults + 1;
          note st (Fmt.str "query %d: injected %s" st.qid site))

let crash_event st =
  let site = crash_sites.(SM.int st.w.rng ~bound:(Array.length crash_sites)) in
  let policy =
    if site = "wal.mid_flush" then Fault.Nth (1 + SM.int st.w.rng ~bound:3) else Fault.Once
  in
  Fault.arm site policy;
  let change = gen_change st.w in
  note st (Fmt.str "crash attempt at %s: %s" site (describe_change change));
  (match run_txn st change with
  | `Committed ->
      (* mid-flush armed past the record count, or an empty delta *)
      note st "crash did not fire; txn committed"
  | outcome -> finish_txn st change outcome);
  Fault.disarm site

let lock_fault_event st =
  Fault.arm "lockmgr.acquire" Fault.Once;
  (if SM.bool st.w.rng then
     (* the query's S acquire on the view is refused *)
     run_checked_query st
   else begin
     let change = gen_change st.w in
     note st (Fmt.str "lock-fault txn: %s" (describe_change change));
     finish_txn st change (run_txn st change)
   end);
  Fault.disarm "lockmgr.acquire"

let io_fault_event st =
  Fault.arm "bufferpool.read" (Fault.Nth (1 + SM.int st.w.rng ~bound:300));
  let e = 1 + SM.int st.w.rng ~bound:3 and f = 1 + SM.int st.w.rng ~bound:2 in
  let inst =
    Querygen.gen_t1 st.t1 ~dates_zipf:st.w.dates_zipf ~supp_zipf:st.w.supp_zipf ~e ~f st.w.rng
  in
  st.qid <- st.qid + 1;
  (match
     Pmv.Answer.answer ~locks:(Txn.locks st.mgr) ~txn:(1_000_000 + st.qid)
       ~probe_path:st.cfg.probe_path ~view:st.view st.catalog inst
       ~on_tuple:(fun _ _ -> ())
   with
  | _ -> note st (Fmt.str "io-fault query %d completed before the fault" st.qid)
  | exception Fault.Injected site ->
      st.io_faults <- st.io_faults + 1;
      note st (Fmt.str "query %d: injected %s mid-answer" st.qid site)
  | exception Failure msg when lock_conflict msg -> st.lock_rejects <- st.lock_rejects + 1);
  Fault.disarm "bufferpool.read";
  (* an aborted answer must not have corrupted the view: re-check *)
  run_checked_query st

let maint_fault_event st =
  Fault.arm "maintain.apply" Fault.Once;
  let change = gen_change st.w in
  note st (Fmt.str "maint-fault txn: %s" (describe_change change));
  match run_txn st change with
  | `Committed ->
      (* the delta took the deferred path; the armed fault fires at the
         next application and is handled there *)
      note st "maintain.apply pending past this txn"
  | outcome -> finish_txn st change outcome

let defer_event st =
  Fault.arm "maintain.defer" Fault.Always;
  let change = gen_change st.w in
  note st (Fmt.str "defer txn: %s" (describe_change change));
  (match run_txn st change with
  | `Committed ->
      st.deferrals <- st.deferrals + 1;
      note st (Fmt.str "deferred; pending=%d" (Pmv.Maintain.n_pending st.view));
      (* answer under pending maintenance: the lenient verdict applies *)
      run_checked_query st
  | outcome -> finish_txn st change outcome);
  Fault.arm "maintain.defer" (Fault.Prob defer_prob);
  flush_pending_hard st

let deep_check st =
  st.deep_checks <- st.deep_checks + 1;
  flush_pending_hard st;
  (try Catalog.validate st.catalog
   with Catalog.Inconsistent msg -> fail st "deep check: catalog inconsistent: %s" msg);
  List.iter
    (fun (r, tbl) ->
      let d = Check.diff_multiset ~expected:(shadow_tuples tbl) ~actual:(heap_tuples st.catalog r) in
      if not (Check.diff_is_empty d) then
        fail st "deep check: shadow mismatch on %s: %a" r Check.pp_diff d)
    st.shadow;
  (match Check.check_view st.view st.catalog with
  | [] -> note st "deep check clean"
  | vs -> List.iter (fun v -> fail st "deep check: view invariant: %s" v) vs)

let pick st =
  let r = SM.int st.w.rng ~bound:100 in
  if r < 38 then `Query
  else if r < 62 then `Txn
  else if r < 72 then `Crash
  else if r < 80 then `Lock_fault
  else if r < 88 then `Io_fault
  else if r < 94 then `Maint_fault
  else `Defer

(* --- campaign ---------------------------------------------------------- *)

let run cfg =
  let params = Tpcr.params_for_scale ~seed:cfg.seed ~pad:false cfg.scale in
  let pool = Buffer_pool.create ~capacity:20_000 () in
  let catalog = Catalog.create pool in
  let counts = Tpcr.generate catalog params in
  let t1 = Template.compile catalog Querygen.t1_spec in
  let snapshot_file, wal_file, cleanup =
    match cfg.dir with
    | Some d -> (Filename.concat d "torture.snap", Filename.concat d "torture.wal", false)
    | None ->
        (Filename.temp_file "pmv_torture" ".snap", Filename.temp_file "pmv_torture" ".wal", true)
  in
  Snapshot.save catalog ~filename:snapshot_file;
  if Sys.file_exists wal_file then Sys.remove wal_file;
  let wal = Wal.open_log ~filename:wal_file () in
  let mgr = Txn.create catalog in
  let st =
    {
      cfg;
      w = make_wctx ~seed:cfg.seed ~params ~counts;
      snapshot_file;
      wal_file;
      catalog;
      t1;
      mgr;
      wal;
      view =
        (let v = Pmv.View.create ~capacity:96 ~name:"torture" t1 in
         if cfg.adaptive then Pmv.View.set_adaptive v (Some (Pmv.Adaptive.create ()));
         v);
      shadow = snapshot_shadow catalog;
      digest = 0xcbf29ce484222325L;
      qid = 0;
      queries = 0;
      txns = 0;
      crashes = 0;
      recoveries = 0;
      deferrals = 0;
      lock_rejects = 0;
      io_faults = 0;
      rebuilds = 0;
      deep_checks = 0;
      failures = [];
    }
  in
  attach_hooks st;
  Fault.reset ();
  Fault.enable ~seed:cfg.seed ();
  Fault.arm "maintain.defer" (Fault.Prob defer_prob);
  let finally () =
    Fault.reset ();
    Fault.disable ();
    (try Wal.close st.wal with _ -> ());
    if cleanup then
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ snapshot_file; wal_file ]
  in
  Fun.protect ~finally @@ fun () ->
  note st
    (Fmt.str "torture seed=%d events=%d scale=%g (%d customers, %d orders, %d lineitems)"
       cfg.seed cfg.events cfg.scale counts.Tpcr.customers counts.Tpcr.orders
       counts.Tpcr.lineitems);
  for i = 1 to cfg.events do
    if cfg.check_every > 0 && i mod cfg.check_every = 0 then deep_check st;
    match pick st with
    | `Query -> run_checked_query st
    | `Txn -> txn_event st
    | `Crash -> crash_event st
    | `Lock_fault -> lock_fault_event st
    | `Io_fault -> io_fault_event st
    | `Maint_fault -> maint_fault_event st
    | `Defer -> defer_event st
  done;
  deep_check st;
  {
    events = cfg.events;
    queries = st.queries;
    txns = st.txns;
    crashes = st.crashes;
    recoveries = st.recoveries;
    deferrals = st.deferrals;
    lock_rejects = st.lock_rejects;
    io_faults = st.io_faults;
    rebuilds = st.rebuilds;
    deep_checks = st.deep_checks;
    failures = List.rev st.failures;
    digest = Fmt.str "%016Lx" st.digest;
  }

(* --- sharded campaign --------------------------------------------------- *)

(* A leaner campaign across [cfg.shards] hash-partitioned engines
   (orders/lineitem by orderkey, customer replicated), driven by the
   same seeded workload generators and oracle-checked against one
   unsharded reference catalog replaying the identical change stream.
   No WAL crash events — recovery is the single-engine campaign's
   subject — but lock, I/O, deferral and lost-maintenance faults all
   fire inside individual shards' private fault scopes. The oracle
   checks every merged answer (including the DS identity under
   summation), the union-of-shards heaps against the reference,
   partition placement, and replica agreement. *)

module Router = Minirel_engine.Shard_router
module Engine = Minirel_engine.Engine

type sst = {
  cfg : cfg;
  w : wctx;
  router : Router.t;
  ref_catalog : Catalog.t;  (* the unsharded oracle *)
  ref_mgr : Txn.t;
  t1 : Template.compiled;
  mutable digest : int64;
  mutable qid : int;
  mutable queries : int;
  mutable txns : int;
  mutable deferrals : int;
  mutable lock_rejects : int;
  mutable io_faults : int;
  mutable rebuilds : int;
  mutable deep_checks : int;
  mutable failures : string list;
}

let snote st line =
  st.digest <- fnv_string st.digest line;
  match st.cfg.log with Some f -> f line | None -> ()

let sfail st fmt =
  Fmt.kstr
    (fun s ->
      st.failures <- s :: st.failures;
      snote st ("FAIL: " ^ s))
    fmt

let spending st =
  List.exists
    (fun e ->
      List.exists
        (fun v -> Pmv.Maintain.n_pending v > 0)
        (Pmv.Manager.views (Engine.manager e)))
    (Router.shards st.router)

(* A shard whose view lost a maintenance step rebuilds it — the same
   owner obligation as in the single-engine campaign. *)
let srebuild st i =
  let e = Router.shard st.router i in
  let template = st.t1.Template.spec.Template.name in
  Pmv.Manager.drop_view (Engine.manager e) ~template;
  let v = Engine.ensure_view ~capacity:96 e st.t1 in
  if st.cfg.adaptive then Pmv.View.set_adaptive v (Some (Pmv.Adaptive.create ()));
  st.rebuilds <- st.rebuilds + 1;
  snote st (Fmt.str "shard%d view rebuilt after lost maintenance" i)

(* Drain every shard's pending queue with its defer failpoint
   suspended. *)
let sflush st =
  List.iteri
    (fun i e ->
      let reg = Engine.fault e in
      Fault.disarm_in reg "maintain.defer";
      List.iter
        (fun v ->
          match Pmv.Maintain.flush_pending v (Engine.txn_mgr e) with
          | () -> ()
          | exception Fault.Injected "maintain.apply" -> srebuild st i)
        (Pmv.Manager.views (Engine.manager e));
      Fault.arm_in reg "maintain.defer" (Fault.Prob defer_prob))
    (Router.shards st.router)

(* One non-plain shape through the router, oracle-checked against the
   unsharded reference catalog. Sharded GROUP BY merges the shards'
   partial accumulators, so this is the end-to-end check that the merge
   reproduces what one engine over the whole data would compute. *)
let sshape_query st shape inst =
  let sname = Querygen.shape_name shape in
  let shape_fail fmt =
    Fmt.kstr
      (fun s ->
        sfail st "query %d template=t1 shape=%s (%s): %s" st.qid sname
          (describe_inst inst) s)
      fmt
  in
  (match shape with
  | Querygen.Plain -> assert false (* routed through check_answer_via *)
  | Querygen.Distinct ->
      let seen = Tuple.Table.create 64 and delivered = ref [] in
      let _stats =
        Router.answer st.router inst ~on_tuple:(fun _ t ->
            if not (Tuple.Table.mem seen t) then begin
              Tuple.Table.replace seen t ();
              delivered := t :: !delivered
            end)
      in
      let d =
        Check.diff_multiset
          ~expected:(Check.ground_truth_distinct st.ref_catalog inst)
          ~actual:(List.rev !delivered)
      in
      if not (Check.diff_is_empty d) then shape_fail "%a" Check.pp_diff d
      else
        snote st
          (Fmt.str "query %d (%s) %s: %d rows" st.qid (describe_inst inst) sname
             (List.length !delivered))
  | Querygen.Grouped { key; aggs } ->
      let g, _merged = Router.answer_grouped st.router inst ~key ~aggs in
      let expected = Check.ground_truth_grouped st.ref_catalog inst ~key ~aggs in
      let actual = Pmv.Extensions.finalize_groups ~aggs g.Pmv.Extensions.g_groups in
      if not (groups_agree expected actual) then
        shape_fail "%d merged groups vs %d oracle groups" (List.length actual)
          (List.length expected)
      else
        snote st
          (Fmt.str "query %d (%s) %s: %d groups" st.qid (describe_inst inst) sname
             (List.length actual))
  | Querygen.Ordered { order; k } ->
      let rows, _stats = Router.answer_ordered_k st.router inst ~order ~k in
      let expected = Check.ground_truth_ordered st.ref_catalog inst ~order ~limit:k () in
      if not (rows_equal expected rows) then
        shape_fail "first-%d prefix diverges from the oracle order" k
      else
        snote st
          (Fmt.str "query %d (%s) %s: first %d of %d" st.qid (describe_inst inst) sname
             (List.length rows) k)
  | Querygen.Exists ->
      let got, how = Router.exists_ st.router inst in
      let want = Check.ground_truth_exists st.ref_catalog inst in
      if got <> want then shape_fail "answered %b, oracle says %b" got want
      else
        snote st
          (Fmt.str "query %d (%s) %s: %b (%s)" st.qid (describe_inst inst) sname got
             (match how with `From_pmv -> "witness" | `Executed -> "executed")));
  st.queries <- st.queries + 1

let squery st =
  let e = 1 + SM.int st.w.rng ~bound:3 and f = 1 + SM.int st.w.rng ~bound:2 in
  let inst =
    Querygen.gen_t1 st.t1 ~dates_zipf:st.w.dates_zipf ~supp_zipf:st.w.supp_zipf ~e ~f
      st.w.rng
  in
  st.qid <- st.qid + 1;
  let pending = spending st in
  match draw_shape st.w st.t1 ~pending with
  | Querygen.Plain -> (
      match
        Check.check_answer_via ~template:"t1" ~shape:"plain"
          ~expected:(Check.ground_truth st.ref_catalog inst)
          (fun ~on_tuple -> fst (Router.answer st.router inst ~on_tuple))
      with
      | r ->
          st.queries <- st.queries + 1;
          let verdict =
            if pending then Check.report_ok_allowing_stale r else Check.report_ok r
          in
          if not verdict then
            sfail st "query %d (%s)%s: %a" st.qid (describe_inst inst)
              (if pending then " [pending maintenance]" else "")
              Check.pp_report r
          else
            snote st
              (Fmt.str "query %d (%s): %d rows, %d partial, %d stale" st.qid
                 (describe_inst inst) r.Check.delivered r.Check.partials
                 r.Check.stats.Pmv.Answer.stale_purged)
      | exception Failure msg when lock_conflict msg ->
          st.lock_rejects <- st.lock_rejects + 1;
          snote st (Fmt.str "query %d: lock rejected" st.qid)
      | exception Fault.Injected site ->
          st.io_faults <- st.io_faults + 1;
          snote st (Fmt.str "query %d: injected %s" st.qid site))
  | shape -> (
      match sshape_query st shape inst with
      | () -> ()
      | exception Failure msg when lock_conflict msg ->
          st.lock_rejects <- st.lock_rejects + 1;
          snote st (Fmt.str "query %d: lock rejected" st.qid)
      | exception Fault.Injected site ->
          st.io_faults <- st.io_faults + 1;
          snote st (Fmt.str "query %d: injected %s" st.qid site))

(* Run the change on the shards, then mirror it into the reference
   catalog: the same seeded stream drives both sides, and every change
   here pins orderkey, so routing touches exactly the owning shard. *)
let stxn st =
  let change = gen_change st.w in
  snote st (Fmt.str "txn: %s" (describe_change change));
  match Router.run st.router [ change ] with
  | routed ->
      ignore (Txn.run st.ref_mgr [ change ]);
      st.txns <- st.txns + 1;
      snote st
        (Fmt.str "routed to [%s]"
           (String.concat ";" (List.map (fun (i, _) -> string_of_int i) routed)))
  | exception Failure msg when lock_conflict msg ->
      st.lock_rejects <- st.lock_rejects + 1;
      snote st "txn: lock rejected"

(* Lost maintenance on the owning shard of one insert: the insert is
   durable on that shard, only its view missed the delta. *)
let smaint_fault st =
  let ok = st.w.next_orderkey in
  st.w.next_orderkey <- st.w.next_orderkey + 1;
  let change =
    Txn.Insert
      {
        rel = "orders";
        tuple =
          [|
            Value.Int ok;
            Value.Int (1 + SM.int st.w.rng ~bound:st.w.counts.Tpcr.customers);
            zipf_date st.w;
            rand_price st.w;
            Value.Str "";
          |];
      }
  in
  let owner = match Router.targets st.router change with [ i ] -> i | _ -> 0 in
  let reg = Engine.fault (Router.shard st.router owner) in
  Fault.arm_in reg "maintain.apply" Fault.Once;
  snote st (Fmt.str "maint-fault txn on shard%d: %s" owner (describe_change change));
  (match Router.run st.router [ change ] with
  | _ ->
      st.txns <- st.txns + 1;
      snote st "maintain.apply pending past this txn"
  | exception Fault.Injected "maintain.apply" ->
      st.txns <- st.txns + 1;
      srebuild st owner);
  ignore (Txn.run st.ref_mgr [ change ]);
  Fault.disarm_in reg "maintain.apply"

let slock_fault st =
  let i = SM.int st.w.rng ~bound:(Router.n_shards st.router) in
  let reg = Engine.fault (Router.shard st.router i) in
  Fault.arm_in reg "lockmgr.acquire" Fault.Once;
  snote st (Fmt.str "lock fault armed on shard%d" i);
  squery st;
  Fault.disarm_in reg "lockmgr.acquire"

let sio_fault st =
  let i = SM.int st.w.rng ~bound:(Router.n_shards st.router) in
  let reg = Engine.fault (Router.shard st.router i) in
  Fault.arm_in reg "bufferpool.read" (Fault.Nth (1 + SM.int st.w.rng ~bound:100));
  snote st (Fmt.str "io fault armed on shard%d" i);
  squery st;
  Fault.disarm_in reg "bufferpool.read";
  (* an aborted merged answer must not have corrupted any shard *)
  squery st

let sdefer st =
  let change = gen_change st.w in
  let regs = List.map Engine.fault (Router.shards st.router) in
  List.iter (fun r -> Fault.arm_in r "maintain.defer" Fault.Always) regs;
  snote st (Fmt.str "defer txn: %s" (describe_change change));
  (match Router.run st.router [ change ] with
  | _ ->
      ignore (Txn.run st.ref_mgr [ change ]);
      st.txns <- st.txns + 1;
      st.deferrals <- st.deferrals + 1;
      snote st "deferred on the owning shard";
      (* answer under pending maintenance: the lenient verdict applies *)
      squery st
  | exception Failure msg when lock_conflict msg ->
      st.lock_rejects <- st.lock_rejects + 1);
  List.iter (fun r -> Fault.arm_in r "maintain.defer" (Fault.Prob defer_prob)) regs;
  sflush st

(* Union-of-shards vs the reference catalog, partition placement,
   replica agreement, per-shard catalog and view invariants. *)
let sdeep st =
  st.deep_checks <- st.deep_checks + 1;
  sflush st;
  List.iter
    (fun rel ->
      let expected = heap_tuples st.ref_catalog rel in
      let actual =
        match Router.partitioning st.router ~rel with
        | Some Router.Replicated | None ->
            heap_tuples (Engine.catalog (Router.shard st.router 0)) rel
        | Some (Router.Hash pos) ->
            List.concat
              (List.mapi
                 (fun i e ->
                   let mine = heap_tuples (Engine.catalog e) rel in
                   List.iter
                     (fun t ->
                       let owner = Router.shard_of_value st.router t.(pos) in
                       if owner <> i then
                         sfail st "deep check: %s row %a on shard%d, owner shard%d" rel
                           Tuple.pp t i owner)
                     mine;
                   mine)
                 (Router.shards st.router))
      in
      let d = Check.diff_multiset ~expected ~actual in
      if not (Check.diff_is_empty d) then
        sfail st "deep check: %s union-of-shards mismatch: %a" rel Check.pp_diff d;
      match Router.partitioning st.router ~rel with
      | Some (Router.Hash _) -> ()
      | Some Router.Replicated | None ->
          let sh0 = heap_tuples (Engine.catalog (Router.shard st.router 0)) rel in
          List.iteri
            (fun i e ->
              if i > 0 then
                let d =
                  Check.diff_multiset ~expected:sh0
                    ~actual:(heap_tuples (Engine.catalog e) rel)
                in
                if not (Check.diff_is_empty d) then
                  sfail st "deep check: replica %s diverged on shard%d: %a" rel i
                    Check.pp_diff d)
            (Router.shards st.router))
    rels;
  List.iteri
    (fun i e ->
      (try Catalog.validate (Engine.catalog e)
       with Catalog.Inconsistent msg -> sfail st "deep check: shard%d catalog: %s" i msg);
      List.iter
        (fun v ->
          match Check.check_view v (Engine.catalog e) with
          | [] -> ()
          | vs -> List.iter (fun m -> sfail st "deep check: shard%d view: %s" i m) vs)
        (Pmv.Manager.views (Engine.manager e)))
    (Router.shards st.router);
  snote st "deep check done"

let spick w =
  let r = SM.int w.rng ~bound:100 in
  if r < 42 then `Query
  else if r < 70 then `Txn
  else if r < 78 then `Lock_fault
  else if r < 86 then `Io_fault
  else if r < 93 then `Maint_fault
  else `Defer

let run_sharded cfg =
  let shards = max 1 cfg.shards in
  let domains = max 1 cfg.domains in
  let params = Tpcr.params_for_scale ~seed:cfg.seed ~pad:false cfg.scale in
  let pool = Buffer_pool.create ~capacity:20_000 () in
  let ref_catalog = Catalog.create pool in
  let counts = Tpcr.generate ref_catalog params in
  let t1 = Template.compile ref_catalog Querygen.t1_spec in
  let router = Router.create ~shards () in
  List.iter
    (fun rel ->
      Router.declare router (Catalog.schema ref_catalog rel) ~part:(`Hash "orderkey"))
    [ "orders"; "lineitem" ];
  Router.declare router (Catalog.schema ref_catalog "customer") ~part:`Replicated;
  Router.load_from router ref_catalog;
  ignore (Router.create_view ~capacity:96 ~adaptive:cfg.adaptive router t1);
  Router.set_probe_path router cfg.probe_path;
  let st =
    {
      cfg;
      w = make_wctx ~seed:cfg.seed ~params ~counts;
      router;
      ref_catalog;
      ref_mgr = Txn.create ref_catalog;
      t1;
      digest = 0xcbf29ce484222325L;
      qid = 0;
      queries = 0;
      txns = 0;
      deferrals = 0;
      lock_rejects = 0;
      io_faults = 0;
      rebuilds = 0;
      deep_checks = 0;
      failures = [];
    }
  in
  List.iteri
    (fun i e ->
      let reg = Engine.fault e in
      Fault.enable_in ~seed:(cfg.seed + i) reg;
      Fault.arm_in reg "maintain.defer" (Fault.Prob defer_prob))
    (Router.shards st.router);
  (* Attach the fan-out pool (campaign-owned: torn down on exit). The
     merged stream is order-identical to the sequential one, so the
     digest stays reproducible for a fixed (seed, domains) pair. *)
  let fanout_pool =
    if domains >= 2 then begin
      let p = Minirel_parallel.Pool.create ~domains in
      Router.set_parallel st.router (Some p);
      Some p
    end
    else None
  in
  let finally () =
    Router.set_parallel st.router None;
    Option.iter Minirel_parallel.Pool.shutdown fanout_pool
  in
  Fun.protect ~finally @@ fun () ->
  snote st
    (Fmt.str
       "sharded torture seed=%d events=%d scale=%g shards=%d domains=%d (%d customers, \
        %d orders, %d lineitems)"
       cfg.seed cfg.events cfg.scale shards domains counts.Tpcr.customers
       counts.Tpcr.orders counts.Tpcr.lineitems);
  for i = 1 to cfg.events do
    if cfg.check_every > 0 && i mod cfg.check_every = 0 then sdeep st;
    match spick st.w with
    | `Query -> squery st
    | `Txn -> stxn st
    | `Lock_fault -> slock_fault st
    | `Io_fault -> sio_fault st
    | `Maint_fault -> smaint_fault st
    | `Defer -> sdefer st
  done;
  sdeep st;
  {
    events = cfg.events;
    queries = st.queries;
    txns = st.txns;
    crashes = 0;
    recoveries = 0;
    deferrals = st.deferrals;
    lock_rejects = st.lock_rejects;
    io_faults = st.io_faults;
    rebuilds = st.rebuilds;
    deep_checks = st.deep_checks;
    failures = List.rev st.failures;
    digest = Fmt.str "%016Lx" st.digest;
  }
