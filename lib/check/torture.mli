(** Deterministic torture driver: replays a seeded Zipf workload of
    queries and insert/delete/update transactions against a PMV with
    WAL and deferred maintenance attached, injects faults at the
    {!Minirel_fault.Fault} sites (WAL crashes with recovery from
    snapshot + replay, injected lock conflicts, buffer-pool I/O errors,
    forced maintenance deferral, lost maintenance with view rebuild),
    and oracle-checks every query answer plus periodic deep view and
    recovery invariants.

    Everything — event choice, parameters, fault firing — derives from
    [cfg.seed], so a failing run reproduces exactly from the seed and
    the printed event digest matches run to run. *)

type cfg = {
  seed : int;
  events : int;  (** workload events to replay *)
  scale : float;  (** TPC-R scale factor for the base data *)
  check_every : int;  (** deep view + catalog check every k events *)
  shards : int;  (** engine count for {!run_sharded}; {!run} ignores it *)
  domains : int;
      (** Domain-pool workers for {!run_sharded}'s parallel shard
          fan-out (1 = sequential; {!run} ignores it). The digest is
          reproducible run to run for a fixed (seed, domains) pair. *)
  probe_path : Pmv.Answer.probe_path;
      (** read path queries take (default [Locked], which keeps the
          lock-manager fault sites on the query path hot; [Epoch]
          exercises the lock-free probe fast path instead). Each path
          has its own reproducible digest for a fixed seed. *)
  adaptive : bool;
      (** heavy-light adaptive maintenance (DESIGN.md Section 17) on
          every view, default false: deltas touching only light update
          keys lapse their entries instead of eager victim removal.
          Every oracle check must stay exact either way — this is the
          lapse protocol's correctness gate. *)
  dir : string option;  (** snapshot/WAL directory; default a temp dir *)
  log : (string -> unit) option;  (** per-event trace sink *)
}

val default_cfg : seed:int -> cfg

type outcome = {
  events : int;
  queries : int;  (** answered and oracle-checked *)
  txns : int;  (** committed transactions *)
  crashes : int;  (** WAL crash injections *)
  recoveries : int;  (** successful snapshot+replay recoveries *)
  deferrals : int;  (** maintenance deltas forced through the pending queue *)
  lock_rejects : int;  (** injected lock conflicts observed *)
  io_faults : int;  (** injected buffer-pool errors observed *)
  rebuilds : int;  (** views rebuilt after lost maintenance *)
  deep_checks : int;
  failures : string list;  (** oracle violations; [] means a clean run *)
  digest : string;  (** order-sensitive hash of the event trace *)
}

val ok : outcome -> bool
val pp_outcome : outcome Fmt.t

(** Run one torture campaign. Never raises on oracle violations — they
    are collected in [failures]; infrastructure errors (I/O, corrupt
    snapshot) do escape. *)
val run : cfg -> outcome

(** Run a sharded torture campaign across [cfg.shards] (at least 1)
    hash-partitioned engines — orders/lineitem partitioned by orderkey,
    customer replicated — driven by the same seeded workload generators
    as {!run} and oracle-checked against one unsharded reference
    catalog that replays the identical change stream. Lock, I/O,
    deferral and lost-maintenance faults fire inside individual shards'
    private scopes; WAL crash/recovery events are the single-engine
    campaign's subject and do not occur here ([crashes] and
    [recoveries] are 0). The oracle additionally checks that the merged
    answer stream keeps the DS exactly-once identity under summation,
    that the union of the shard heaps equals the reference catalog,
    that every row of a partitioned relation sits on its owning shard,
    and that replicas stay identical. *)
val run_sharded : cfg -> outcome
