(** Span trees: one trace per answered query, built with an explicit
    enter/leave stack. Times are absolute monotonic nanoseconds;
    inclusive time is [stop - start], exclusive time subtracts the
    children's inclusive times. *)

type t = {
  name : string;
  start_ns : int64;
  mutable stop_ns : int64;  (** equal to [start_ns] while still open *)
  mutable kvs : (string * string) list;  (** newest first *)
  mutable rev_children : t list;  (** newest first *)
}

type trace

val root : trace -> t

(** Start a trace whose root span is open. [at] reuses a monotonic
    timestamp the caller already read (serving surfaces time the query
    anyway; always-on tracing must not read the clock twice). *)
val start : ?at:int64 -> string -> trace

(** Open a child of the innermost open span. *)
val enter : trace -> string -> unit

(** Close the innermost open span (never the root). *)
val leave : trace -> unit

(** Attach a key/value annotation to the innermost open span. *)
val kv : trace -> string -> string -> unit

(** Add an already-timed leaf child (duration [ns]) to the innermost
    open span — for aggregate costs measured out-of-band, e.g. summed
    per-tuple bookkeeping. *)
val leaf : trace -> string -> int64 -> unit

(** Graft a finished subtree (built on another domain, absolute
    monotonic timestamps) under the innermost open span. *)
val attach : trace -> t -> unit

(** Close every open span, the root last. Idempotent. [at] as in
    {!start}. *)
val finish : ?at:int64 -> trace -> unit

val children : t -> t list

(** First span with the given name, pre-order, subtree root included. *)
val find : t -> string -> t option

(** Oldest value recorded for [key] on this span. *)
val find_kv : t -> string -> string option
val inclusive_ns : t -> int64
val exclusive_ns : t -> int64

(** Pre-order walk with depth. *)
val iter : (depth:int -> t -> unit) -> t -> unit

(** The span tree as an indented table of inclusive/exclusive times. *)
val pp : Format.formatter -> t -> unit

val pp_trace : Format.formatter -> trace -> unit
