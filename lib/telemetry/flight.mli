(** Flight recorder: always-on per-domain ring buffers of fixed-size
    low-level event records (probe hits/misses, version publishes,
    epoch advances, lock waits, fault hits, maintenance decisions).
    Recording is allocation-free and a few stores cheap; dumps merge
    all rings into one globally-ordered timeline whose digest is
    reproducible whenever event production is deterministic. *)

type kind =
  | Probe_hit
  | Probe_miss
  | Version_publish
  | Version_distrust
  | Epoch_advance
  | Epoch_reclaim
  | Stale_purge
  | Lock_wait
  | Fault_hit
  | Maint_defer
  | Maint_apply
  | Maint_lapse  (** light-key lapse mark: [a]=tuples left in the entry *)
  | Maint_recompute  (** lapsed entry purged at reference: [a]=tuples dropped *)
  | Budget_rebalance  (** arbiter resized a view: [a]=template id, [b]=new L *)
  | Slo_breach
  | Dump_trigger
  | Sched_steal  (** a pool worker stole a task: [a]=thief ix, [b]=victim ix *)
  | Task_exn  (** a fire-and-forget pool task raised: [a]=worker ix *)

val kind_to_string : kind -> string

(** Number of per-domain rings (writers hash by domain id). *)
val n_rings : int

(** Events retained per ring before overwrite. *)
val ring_capacity : int

val set_enabled : bool -> unit
val is_enabled : unit -> bool

(** Record one event in the current domain's ring. [a]/[b] are
    kind-specific payloads; for site-labelled kinds [a] is an
    [intern]ed string id. [ts] reuses a monotonic timestamp the caller
    already read (hot paths avoid a second clock read); default is
    now. No-op when disabled. *)
val record : ?a:int -> ?b:int -> ?ts:int64 -> kind -> unit

(** Intern a short label (failpoint site, relation name) into a stable
    small id usable as an event payload. *)
val intern : string -> int

(** Reverse of [intern]; falls back to the numeric id. *)
val label_of : int -> string

type event = { e_seq : int; e_ts : int64; e_kind : kind; e_a : int; e_b : int }

(** Merge every ring into one list ordered by global sequence. *)
val dump : unit -> event list

(** Clear all rings and restart the sequence counter. *)
val reset : unit -> unit

(** FNV-1a over the (kind, a, b) stream — timestamps excluded, so the
    digest depends only on what happened. *)
val digest : event list -> string

val pp_event : Format.formatter -> event -> unit
val pp_dump : Format.formatter -> event list -> unit
