(* The metrics registry. Counters and histograms are owned here
   (get-or-create, so callers can cache the returned handle and pay one
   mutable-field update per event); gauges and sources are callbacks
   evaluated at snapshot time. Sources replace on name collision —
   when a fresh buffer pool or plan cache takes over a name, the
   registry follows the live instance. *)

type counter = { mutable v : int }

let incr c = c.v <- c.v + 1
let add c n = c.v <- c.v + n
let counter_value c = c.v

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.summary

type source = { read : unit -> (string * value) list; src_reset : unit -> unit }

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  gauges : (string, unit -> float) Hashtbl.t;
  mutable sources : (string * source) list;  (* registration order, oldest first *)
}

let create () =
  {
    counters = Hashtbl.create 64;
    histograms = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    sources = [];
  }

let default = create ()

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      if Hashtbl.mem t.histograms name then
        invalid_arg (Fmt.str "Registry.counter: %s is already a histogram" name);
      let c = { v = 0 } in
      Hashtbl.replace t.counters name c;
      c

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      if Hashtbl.mem t.counters name then
        invalid_arg (Fmt.str "Registry.histogram: %s is already a counter" name);
      let h = Histogram.create () in
      Hashtbl.replace t.histograms name h;
      h

let register_gauge t name f = Hashtbl.replace t.gauges name f

let register_source t ~name ?(reset = fun () -> ()) read =
  t.sources <-
    List.filter (fun (n, _) -> n <> name) t.sources @ [ (name, { read; src_reset = reset }) ]

let unregister_source t ~name = t.sources <- List.filter (fun (n, _) -> n <> name) t.sources

let source_names t = List.sort String.compare (List.map fst t.sources)

let snapshot t =
  let own =
    Hashtbl.fold (fun name c acc -> (name, Counter c.v) :: acc) t.counters []
    |> Hashtbl.fold (fun name h acc -> (name, Histogram (Histogram.summary h)) :: acc)
         t.histograms
    |> Hashtbl.fold (fun name g acc -> (name, Gauge (g ())) :: acc) t.gauges
  in
  let sourced =
    List.concat_map
      (fun (src, { read; _ }) ->
        List.map (fun (name, v) -> (src ^ "." ^ name, v)) (read ()))
      t.sources
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (own @ sourced)

let reset t =
  Hashtbl.iter (fun _ c -> c.v <- 0) t.counters;
  Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms;
  List.iter (fun (_, s) -> s.src_reset ()) t.sources

let find snapshot name = List.assoc_opt name snapshot

let pp_value ppf = function
  | Counter n -> Fmt.int ppf n
  | Gauge g -> Fmt.pf ppf "%.3f" g
  | Histogram s -> Histogram.pp_summary ppf s

let pp_snapshot ppf snap =
  List.iter (fun (name, v) -> Fmt.pf ppf "%-44s %a@." name pp_value v) snap
