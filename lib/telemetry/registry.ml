(* The metrics registry. Counters and histograms are owned here
   (get-or-create, so callers can cache the returned handle and pay one
   atomic or briefly-locked update per event); gauges and sources are
   callbacks evaluated at snapshot time. Sources replace on name
   collision — when a fresh buffer pool or plan cache takes over a
   name, the registry follows the live instance. *)

(* Atomic so domains can bump a shared counter handle lock-free; the
   handle is cached by call sites, so an event costs one fetch-and-add. *)
type counter = int Atomic.t

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.summary

type source = { read : unit -> (string * value) list; src_reset : unit -> unit }

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  gauges : (string, unit -> float) Hashtbl.t;
  mutable sources : (string * source) list;  (* registration order, oldest first *)
  (* Guards the tables and the source list, not the metric values:
     registration/lookup is rare, so one mutex suffices; the per-event
     paths go through the returned handles (atomic counters, internally
     locked histograms) without touching this lock. *)
  lock : Mutex.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    histograms = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    sources = [];
    lock = Mutex.create ();
  }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
          if Hashtbl.mem t.histograms name then
            invalid_arg (Fmt.str "Registry.counter: %s is already a histogram" name);
          let c = Atomic.make 0 in
          Hashtbl.replace t.counters name c;
          c)

let histogram t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          if Hashtbl.mem t.counters name then
            invalid_arg (Fmt.str "Registry.histogram: %s is already a counter" name);
          let h = Histogram.create () in
          Hashtbl.replace t.histograms name h;
          h)

let register_gauge t name f = locked t (fun () -> Hashtbl.replace t.gauges name f)

let register_source t ~name ?(reset = fun () -> ()) read =
  locked t (fun () ->
      t.sources <-
        List.filter (fun (n, _) -> n <> name) t.sources
        @ [ (name, { read; src_reset = reset }) ])

let unregister_source t ~name =
  locked t (fun () -> t.sources <- List.filter (fun (n, _) -> n <> name) t.sources)

let source_names t =
  locked t (fun () -> List.sort String.compare (List.map fst t.sources))

let snapshot t =
  (* Collect handles under the lock, evaluate callbacks outside it: a
     gauge or source read may itself touch the registry. *)
  let counters, histograms, gauges, sources =
    locked t (fun () ->
        ( Hashtbl.fold (fun name c acc -> (name, c) :: acc) t.counters [],
          Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms [],
          Hashtbl.fold (fun name g acc -> (name, g) :: acc) t.gauges [],
          t.sources ))
  in
  let own =
    List.map (fun (name, c) -> (name, Counter (Atomic.get c))) counters
    @ List.map (fun (name, h) -> (name, Histogram (Histogram.summary h))) histograms
    @ List.map (fun (name, g) -> (name, Gauge (g ()))) gauges
  in
  let sourced =
    List.concat_map
      (fun (src, { read; _ }) ->
        List.map (fun (name, v) -> (src ^ "." ^ name, v)) (read ()))
      sources
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (own @ sourced)

let reset t =
  let counters, histograms, sources =
    locked t (fun () ->
        ( Hashtbl.fold (fun _ c acc -> c :: acc) t.counters [],
          Hashtbl.fold (fun _ h acc -> h :: acc) t.histograms [],
          t.sources ))
  in
  List.iter (fun c -> Atomic.set c 0) counters;
  List.iter Histogram.reset histograms;
  List.iter (fun (_, s) -> s.src_reset ()) sources

let find snapshot name = List.assoc_opt name snapshot

let pp_value ppf = function
  | Counter n -> Fmt.int ppf n
  | Gauge g -> Fmt.pf ppf "%.3f" g
  | Histogram s -> Histogram.pp_summary ppf s

let pp_snapshot ppf snap =
  List.iter (fun (name, v) -> Fmt.pf ppf "%-44s %a@." name pp_value v) snap
