(** High-resolution log-linear histogram (HDR style): each power-of-two
    range is split into 32 linear subbuckets, bounding relative quantile
    error by 1/32 (3.125%). Bucket counts are retained, so [merge_into]
    is exact, associative and commutative — merged quantiles equal the
    quantiles of the concatenated sample streams. *)

type t

val create : unit -> t

(** Total bucket count (fixed). *)
val n_buckets : int

(** Bucket index a sample lands in (negative samples clamp to 0). *)
val index_of_ns : int64 -> int

(** Largest value mapping to bucket [i] — the quantile readout, hence
    quantiles over-estimate by at most one subbucket width. *)
val bucket_upper_ns : int -> int64

val record : t -> int64 -> unit
val count : t -> int
val sum_ns : t -> int64

(** [quantile t p] for [p] in (0, 1]: upper bound of the bucket holding
    the rank-[ceil (p * count)] sample; 0 when empty; relative error
    vs. the exact order statistic is at most 1/32. *)
val quantile : t -> float -> int64

(** Exact bucket-wise merge of [src] into [dst]. *)
val merge_into : dst:t -> t -> unit

val reset : t -> unit

(** p50/p95/p99/p999 summary in the registry's common shape. *)
val summary : t -> Histogram.summary
