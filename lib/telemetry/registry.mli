(** Process-wide metrics registry: named counters, gauges, histograms,
    plus {e sources} — callbacks that render an existing stats object
    (buffer pool, cache policy, plan cache, ...) into metrics at
    snapshot time, so subsystems keep their own counter structs and
    register a view of them here.

    Naming scheme (see DESIGN.md): dot-separated
    [subsystem.metric] or [subsystem.instance.metric]; source metrics
    are emitted under [<source name>.<metric>]. *)

type counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.summary

type t

val create : unit -> t

(** The process-wide registry every convenience function in
    {!Telemetry} uses. *)
val default : t

(** Get or create; the same name always yields the same counter.
    @raise Invalid_argument when the name is already a histogram. *)
val counter : t -> string -> counter

(** Get or create.
    @raise Invalid_argument when the name is already a counter. *)
val histogram : t -> string -> Histogram.t

(** Register (or replace) a gauge callback. Gauges are read at snapshot
    time and are not affected by {!reset}. *)
val register_gauge : t -> string -> (unit -> float) -> unit

(** Register a source under [name]. A second registration under the
    same name replaces the first (an instance superseding another).
    [reset] participates in {!reset}, giving every underlying stats
    struct one shared reset path. *)
val register_source :
  t -> name:string -> ?reset:(unit -> unit) -> (unit -> (string * value) list) -> unit

val unregister_source : t -> name:string -> unit

(** Registered source names, sorted. *)
val source_names : t -> string list

(** Every metric, sorted by name: own counters/gauges/histograms plus
    each source's metrics prefixed with the source name. *)
val snapshot : t -> (string * value) list

(** Zero every counter and histogram and run every source's reset
    callback. Registrations (counters, histograms, gauges, sources)
    survive. *)
val reset : t -> unit

(** Lookup helper over a snapshot. *)
val find : (string * value) list -> string -> value option

val pp_value : Format.formatter -> value -> unit
val pp_snapshot : Format.formatter -> (string * value) list -> unit
