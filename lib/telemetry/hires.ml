(* High-resolution log-linear histogram (HDR style). Each power-of-two
   range [2^e, 2^(e+1)) is split into [sub] linear subbuckets, so the
   value reconstructed for a bucket is within a factor of (1 + 1/sub)
   of every sample it holds: with sub = 32 the relative quantile error
   is bounded by 1/32 = 3.125%. Bucket counts are retained (unlike
   Histogram.summary), which makes merging *exact* and associative —
   merged quantiles are identical to recording both streams into one
   histogram, the property the shard snapshot merge relies on.

   Layout: values < sub land in an exact linear prefix (one bucket per
   integer), larger values in (exponent, subbucket) cells. A per-
   histogram mutex keeps count/sum/min/max and the bucket array
   mutually consistent across domains; recording is a few shifts plus
   an uncontended lock, same budget as Histogram.record. *)

let sub_bits = 5
let sub = 1 lsl sub_bits (* 32 subbuckets per power of two *)

(* Exponents 0..62 cover the full non-negative int64 range; exponents
   below sub_bits are the exact prefix. *)
let n_buckets = (63 - sub_bits) * sub + sub

let index_of_ns ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let v = Int64.to_int (Int64.shift_right_logical ns 0) in
  (* int64 -> int is safe: monotonic-clock deltas fit 62 bits *)
  let v = if v < 0 then max_int else v in
  if v < sub then v
  else begin
    (* exponent = position of the highest set bit *)
    let e = ref 0 and w = ref (v lsr 1) in
    while !w > 0 do
      incr e;
      w := !w lsr 1
    done;
    let e = min !e 62 in
    let sb = (v lsr (e - sub_bits)) land (sub - 1) in
    ((e - sub_bits) * sub) + sub + sb
  end

(* Upper bound of bucket [i]: the largest value mapping to it. Used as
   the quantile readout, so the reported quantile over-estimates by at
   most one subbucket width (relative error <= 1/sub). *)
let bucket_upper_ns i =
  if i < sub then Int64.of_int i
  else begin
    let cell = i - sub in
    let e = (cell / sub) + sub_bits in
    let sb = cell mod sub in
    if e >= 62 then Int64.max_int
    else
      let base = Int64.shift_left 1L e in
      let width = Int64.shift_left 1L (e - sub_bits) in
      Int64.sub (Int64.add base (Int64.mul width (Int64.of_int (sb + 1)))) 1L
  end

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : int64;
  mutable min : int64;
  mutable max : int64;
  lock : Mutex.t;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    count = 0;
    sum = 0L;
    min = 0L;
    max = 0L;
    lock = Mutex.create ();
  }

let record t ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let i = index_of_ns ns in
  Mutex.lock t.lock;
  t.counts.(i) <- t.counts.(i) + 1;
  t.sum <- Int64.add t.sum ns;
  if t.count = 0 || Int64.compare ns t.min < 0 then t.min <- ns;
  if Int64.compare ns t.max > 0 then t.max <- ns;
  t.count <- t.count + 1;
  Mutex.unlock t.lock

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count t = locked t (fun () -> t.count)
let sum_ns t = locked t (fun () -> t.sum)

let quantile_of ~counts ~count p =
  if count = 0 then 0L
  else begin
    let rank = int_of_float (ceil (p *. float_of_int count)) in
    let rank = max 1 (min count rank) in
    let cum = ref 0 and result = ref Int64.max_int in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + counts.(i);
         if !cum >= rank then begin
           result := bucket_upper_ns i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let quantile t p =
  locked t (fun () -> quantile_of ~counts:t.counts ~count:t.count p)

(* Merge [src] into [dst] bucket-wise. Exact: the result is
   indistinguishable from having recorded both sample streams into
   [dst], hence merging is associative and commutative. Locks are
   taken in allocation order via Mutex.lock on dst then a copied src
   snapshot, so no lock-order cycle is possible. *)
let merge_into ~dst src =
  let scounts, scount, ssum, smin, smax =
    locked src (fun () -> (Array.copy src.counts, src.count, src.sum, src.min, src.max))
  in
  if scount > 0 then
    locked dst (fun () ->
        for i = 0 to n_buckets - 1 do
          dst.counts.(i) <- dst.counts.(i) + scounts.(i)
        done;
        if dst.count = 0 || Int64.compare smin dst.min < 0 then dst.min <- smin;
        if Int64.compare smax dst.max > 0 then dst.max <- smax;
        dst.count <- dst.count + scount;
        dst.sum <- Int64.add dst.sum ssum)

let reset t =
  locked t (fun () ->
      Array.fill t.counts 0 n_buckets 0;
      t.count <- 0;
      t.sum <- 0L;
      t.min <- 0L;
      t.max <- 0L)

(* Summarize into the registry's common summary shape so hires
   histograms export through the same Prometheus/JSON path. *)
let summary t : Histogram.summary =
  locked t (fun () ->
      let q = quantile_of ~counts:t.counts ~count:t.count in
      {
        Histogram.count = t.count;
        sum = t.sum;
        min = t.min;
        max = t.max;
        p50 = q 0.5;
        p95 = q 0.95;
        p99 = q 0.99;
        p999 = q 0.999;
      })
