(* The process-wide telemetry facade. *)

(* Atomic, not a ref: the flag is read on every event from every
   domain, and a plain ref write would be unsynchronised. *)
let enabled = Atomic.make true
let set_enabled on = Atomic.set enabled on
let is_enabled () = Atomic.get enabled

let now_ns () = Monotonic_clock.now ()

let counter name = Registry.counter Registry.default name
let histogram name = Registry.histogram Registry.default name
let snapshot () = Registry.snapshot Registry.default
let reset () =
  Registry.reset Registry.default;
  Tracer.clear Tracer.default

let trace_start name =
  if Atomic.get enabled then Tracer.start Tracer.default name else None
let trace_finish trace = Tracer.finish Tracer.default trace
let force_next_trace () = Tracer.force_next Tracer.default
let last_trace () = Tracer.last Tracer.default
let set_trace_sampling ~every = Tracer.set_sampling Tracer.default ~every

let pp_snapshot = Registry.pp_snapshot
