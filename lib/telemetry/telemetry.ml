(* The process-wide telemetry facade. *)

(* Atomic, not a ref: the flag is read on every event from every
   domain, and a plain ref write would be unsynchronised. *)
let enabled = Atomic.make true
let set_enabled on = Atomic.set enabled on
let is_enabled () = Atomic.get enabled

let now_ns () = Monotonic_clock.now ()

let counter name = Registry.counter Registry.default name
let histogram name = Registry.histogram Registry.default name
let snapshot () = Registry.snapshot Registry.default
let reset () =
  Registry.reset Registry.default;
  Tracer.clear Tracer.default

let trace_start name =
  if Atomic.get enabled then Tracer.start Tracer.default name else None
let trace_finish trace = Tracer.finish Tracer.default trace
let force_next_trace () = Tracer.force_next Tracer.default
let last_trace () = Tracer.last Tracer.default
let set_trace_sampling ?seed ~every () = Tracer.set_sampling ?seed Tracer.default ~every

(* Environment overrides, read once at startup: PMV_TRACE_SAMPLE sets
   the 1-in-k rate (1 = always-on tracing), PMV_TRACE_SEED the
   sampling-offset seed. CLI flags (--trace-sample) take precedence by
   calling {!set_trace_sampling} later. *)
let () =
  let ienv name =
    match Sys.getenv_opt name with
    | None -> None
    | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> Some v | None -> None)
  in
  let seed = Option.map Int64.of_int (ienv "PMV_TRACE_SEED") in
  match (ienv "PMV_TRACE_SAMPLE", seed) with
  | Some every, _ -> set_trace_sampling ?seed ~every ()
  | None, Some _ -> Tracer.set_sampling ?seed Tracer.default ~every:(Tracer.sampling Tracer.default)
  | None, None -> ()

let pp_snapshot = Registry.pp_snapshot
