(* Tail-latency SLO watchdog. High-resolution (1/32 relative error)
   histograms keyed by free-form strings — the convention across the
   stack is "<template>.<phase>" for per-phase samples and
   "<template>.total" for end-to-end latencies recorded via
   [note_query]. A query over the configured threshold is a breach:
   the watchdog counts it, keeps the query's full span tree in a
   bounded slow-query log, emits a flight-recorder event, and
   auto-snapshots the flight recorder every [snapshot_after] breaches
   so the events leading up to the tail are preserved even after the
   rings wrap. *)

type slow = { sq_template : string; sq_ns : int64; sq_trace : Span.t option }

type t = {
  hists : (string, Hires.t) Hashtbl.t;
  lock : Mutex.t;
  threshold_ns : int64 Atomic.t;
  breaches : int Atomic.t;
  slow_keep : int;
  mutable slow : slow list; (* newest first, length <= slow_keep *)
  snapshot_after : int;
  mutable snapshot : Flight.event list option;
}

let create ?(threshold_ns = Int64.max_int) ?(slow_keep = 8) ?(snapshot_after = 1) () =
  {
    hists = Hashtbl.create 32;
    lock = Mutex.create ();
    threshold_ns = Atomic.make threshold_ns;
    breaches = Atomic.make 0;
    slow_keep;
    slow = [];
    snapshot_after;
    snapshot = None;
  }

let set_threshold t ns = Atomic.set t.threshold_ns ns
let threshold_ns t = Atomic.get t.threshold_ns
let breaches t = Atomic.get t.breaches

let hist t key =
  Mutex.lock t.lock;
  let h =
    match Hashtbl.find_opt t.hists key with
    | Some h -> h
    | None ->
        let h = Hires.create () in
        Hashtbl.add t.hists key h;
        h
  in
  Mutex.unlock t.lock;
  h

let observe t ~key ns = Hires.record (hist t key) ns

let take n xs =
  let rec go n = function x :: rest when n > 0 -> x :: go (n - 1) rest | _ -> [] in
  go n xs

let note_query t ~template ?trace ns =
  observe t ~key:(template ^ ".total") ns;
  if Int64.compare ns (Atomic.get t.threshold_ns) > 0 then begin
    let n = Atomic.fetch_and_add t.breaches 1 + 1 in
    Flight.record Slo_breach ~a:(Flight.intern template)
      ~b:(Int64.to_int (Int64.div ns 1000L));
    Mutex.lock t.lock;
    t.slow <- take t.slow_keep ({ sq_template = template; sq_ns = ns; sq_trace = trace } :: t.slow);
    Mutex.unlock t.lock;
    if n mod t.snapshot_after = 0 then begin
      Flight.record Dump_trigger ~a:(Flight.intern "slo.breach");
      let events = Flight.dump () in
      Mutex.lock t.lock;
      t.snapshot <- Some events;
      Mutex.unlock t.lock
    end
  end

let slow_queries t =
  Mutex.lock t.lock;
  let s = t.slow in
  Mutex.unlock t.lock;
  s

let last_snapshot t =
  Mutex.lock t.lock;
  let s = t.snapshot in
  Mutex.unlock t.lock;
  s

let summaries t =
  Mutex.lock t.lock;
  let keyed = Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hists [] in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) keyed
  |> List.map (fun (k, h) -> (k, Hires.summary h))

let reset t =
  Mutex.lock t.lock;
  Hashtbl.reset t.hists;
  t.slow <- [];
  t.snapshot <- None;
  Mutex.unlock t.lock;
  Atomic.set t.breaches 0

let us ns = Int64.to_float ns /. 1e3

let report t =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  let thr = Atomic.get t.threshold_ns in
  if Int64.equal thr Int64.max_int then
    Fmt.pf ppf "slo: threshold unset (SLO THRESHOLD <us>), breaches=%d@."
      (Atomic.get t.breaches)
  else
    Fmt.pf ppf "slo: threshold=%.1fus breaches=%d@." (us thr) (Atomic.get t.breaches);
  (match summaries t with
  | [] -> Fmt.pf ppf "no latency samples recorded@."
  | rows ->
      Fmt.pf ppf "%-32s %8s %10s %10s %10s %10s@." "key" "count" "p50(us)"
        "p95(us)" "p99(us)" "p999(us)";
      List.iter
        (fun (k, (s : Histogram.summary)) ->
          Fmt.pf ppf "%-32s %8d %10.1f %10.1f %10.1f %10.1f@." k s.count
            (us s.p50) (us s.p95) (us s.p99) (us s.p999))
        rows);
  (match slow_queries t with
  | [] -> ()
  | slow ->
      Fmt.pf ppf "slow queries (newest first):@.";
      List.iter
        (fun sq ->
          Fmt.pf ppf "- %s %.1fus@." sq.sq_template (us sq.sq_ns);
          match sq.sq_trace with
          | None -> ()
          | Some root -> Fmt.pf ppf "%a" Span.pp root)
        slow);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let default = create ()

(* Export the watchdog's histograms through the shared registry so
   `pmvctl metrics` and the Prometheus endpoint pick up p50..p999
   series without a dedicated code path. *)
let () =
  Registry.register_source Registry.default ~name:"slo"
    ~reset:(fun () -> reset default)
    (fun () ->
      List.map (fun (k, s) -> (k ^ "_ns", Registry.Histogram s)) (summaries default))
