(** Log-bucketed latency histograms. Bucket [i] holds samples in
    [[2^i, 2^(i+1))] nanoseconds (bucket 0 also absorbs 0 and negative
    samples), so recording is a handful of shifts and quantile readouts
    are exact at bucket granularity: the reported quantile is the upper
    bound of the bucket holding the rank-[ceil(p*n)] sample. *)

type t

val create : unit -> t

(** Number of buckets (fixed). *)
val n_buckets : int

(** Bucket index a sample lands in. *)
val bucket_of_ns : int64 -> int

(** Largest value of bucket [i], i.e. [2^(i+1) - 1]. *)
val bucket_upper_ns : int -> int64

val record : t -> int64 -> unit
val count : t -> int
val sum_ns : t -> int64

(** 0 when empty. *)
val max_ns : t -> int64

(** 0 when empty. *)
val min_ns : t -> int64

val bucket_counts : t -> int array

(** [quantile t p] for [p] in (0, 1]: the upper bound of the bucket
    containing the sample of rank [ceil (p * count)]; 0 when empty. *)
val quantile : t -> float -> int64

val reset : t -> unit

type summary = {
  count : int;
  sum : int64;
  min : int64;
  max : int64;
  p50 : int64;
  p95 : int64;
  p99 : int64;
  p999 : int64;
}

val summary : t -> summary
val pp_summary : Format.formatter -> summary -> unit

(** Merge two summaries (the same histogram across shards): counts and
    sums add, min/max combine, quantiles take the max — an upper-bound
    approximation, exact re-ranking being impossible without buckets. *)
val merge_summaries : summary -> summary -> summary
