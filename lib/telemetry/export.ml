(* Edge formats for a registry snapshot. Both render from the same
   [(name, value)] list, so the shell, pmvctl and the benches cannot
   drift apart on what a metric is called. *)

let prom_name name =
  String.map (function '.' | '-' | ' ' -> '_' | c -> c) (String.lowercase_ascii name)

let prometheus ppf snap =
  List.iter
    (fun (name, value) ->
      let n = prom_name name in
      match (value : Registry.value) with
      | Registry.Counter c ->
          Fmt.pf ppf "# TYPE %s counter@.%s %d@." n n c
      | Registry.Gauge g -> Fmt.pf ppf "# TYPE %s gauge@.%s %.6f@." n n g
      | Registry.Histogram s ->
          Fmt.pf ppf "# TYPE %s summary@." n;
          Fmt.pf ppf "%s{quantile=\"0.5\"} %Ld@." n s.Histogram.p50;
          Fmt.pf ppf "%s{quantile=\"0.95\"} %Ld@." n s.Histogram.p95;
          Fmt.pf ppf "%s{quantile=\"0.99\"} %Ld@." n s.Histogram.p99;
          Fmt.pf ppf "%s_sum %Ld@.%s_count %d@." n s.Histogram.sum n s.Histogram.count)
    snap

let prometheus_string snap = Fmt.str "%a" prometheus snap

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json ppf snap =
  Fmt.pf ppf "{";
  List.iteri
    (fun i (name, value) ->
      if i > 0 then Fmt.pf ppf ", ";
      Fmt.pf ppf "\"%s\": " (json_escape name);
      match (value : Registry.value) with
      | Registry.Counter c -> Fmt.pf ppf "%d" c
      | Registry.Gauge g -> Fmt.pf ppf "%.6f" g
      | Registry.Histogram s ->
          Fmt.pf ppf
            {|{"count": %d, "sum_ns": %Ld, "min_ns": %Ld, "max_ns": %Ld, "p50_ns": %Ld, "p95_ns": %Ld, "p99_ns": %Ld}|}
            s.Histogram.count s.Histogram.sum s.Histogram.min s.Histogram.max
            s.Histogram.p50 s.Histogram.p95 s.Histogram.p99)
    snap;
  Fmt.pf ppf "}"

let json_string snap = Fmt.str "%a" json snap
