(* Edge formats for a registry snapshot. Both render from the same
   [(name, value)] list, so the shell, pmvctl and the benches cannot
   drift apart on what a metric is called. *)

let prom_name name =
  String.map (function '.' | '-' | ' ' -> '_' | c -> c) (String.lowercase_ascii name)

(* Render a label set as [{k="v",...}]; extra labels (e.g. quantile)
   are appended after the fixed ones. *)
let prom_labels labels extra =
  match labels @ extra with
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Fmt.str "%s=%S" k v) kvs)
      ^ "}"

let prometheus ?(labels = []) ppf snap =
  let base = prom_labels labels [] in
  List.iter
    (fun (name, value) ->
      let n = prom_name name in
      match (value : Registry.value) with
      | Registry.Counter c -> Fmt.pf ppf "# TYPE %s counter@.%s%s %d@." n n base c
      | Registry.Gauge g -> Fmt.pf ppf "# TYPE %s gauge@.%s%s %.6f@." n n base g
      | Registry.Histogram s ->
          let q p = prom_labels labels [ ("quantile", p) ] in
          Fmt.pf ppf "# TYPE %s summary@." n;
          Fmt.pf ppf "%s%s %Ld@." n (q "0.5") s.Histogram.p50;
          Fmt.pf ppf "%s%s %Ld@." n (q "0.95") s.Histogram.p95;
          Fmt.pf ppf "%s%s %Ld@." n (q "0.99") s.Histogram.p99;
          Fmt.pf ppf "%s%s %Ld@." n (q "0.999") s.Histogram.p999;
          Fmt.pf ppf "%s_sum%s %Ld@.%s_count%s %d@." n base s.Histogram.sum n base
            s.Histogram.count)
    snap

let prometheus_string ?labels snap = Fmt.str "%a" (prometheus ?labels) snap

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json ppf snap =
  Fmt.pf ppf "{";
  List.iteri
    (fun i (name, value) ->
      if i > 0 then Fmt.pf ppf ", ";
      Fmt.pf ppf "\"%s\": " (json_escape name);
      match (value : Registry.value) with
      | Registry.Counter c -> Fmt.pf ppf "%d" c
      | Registry.Gauge g -> Fmt.pf ppf "%.6f" g
      | Registry.Histogram s ->
          Fmt.pf ppf
            {|{"count": %d, "sum_ns": %Ld, "min_ns": %Ld, "max_ns": %Ld, "p50_ns": %Ld, "p95_ns": %Ld, "p99_ns": %Ld, "p999_ns": %Ld}|}
            s.Histogram.count s.Histogram.sum s.Histogram.min s.Histogram.max
            s.Histogram.p50 s.Histogram.p95 s.Histogram.p99 s.Histogram.p999)
    snap;
  Fmt.pf ppf "}"

let json_string snap = Fmt.str "%a" json snap

(* Aggregate per-shard snapshots into one merged view: counters add,
   gauges add (residency/bytes-style gauges sum across shards; ratios
   are better read per shard), histograms merge by summary — counts
   and sums add, min/max combine, quantiles take the max across shards
   (a documented upper-bound approximation: log-bucketed summaries
   cannot be re-ranked without the buckets). *)
let merge_snapshots snaps =
  let tbl : (string, Registry.value) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let merge a b =
    match ((a : Registry.value), (b : Registry.value)) with
    | Registry.Counter x, Registry.Counter y -> Registry.Counter (x + y)
    | Registry.Gauge x, Registry.Gauge y -> Registry.Gauge (x +. y)
    | Registry.Histogram x, Registry.Histogram y ->
        Registry.Histogram (Histogram.merge_summaries x y)
    | _ -> b (* type clash across shards: keep the latest *)
  in
  List.iter
    (List.iter (fun (name, v) ->
         match Hashtbl.find_opt tbl name with
         | None ->
             Hashtbl.replace tbl name v;
             order := name :: !order
         | Some prev -> Hashtbl.replace tbl name (merge prev v)))
    snaps;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
