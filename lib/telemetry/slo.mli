(** Tail-latency SLO watchdog: high-resolution per-key latency
    histograms (convention: ["<template>.<phase>"], with
    ["<template>.total"] recorded by {!note_query}), a breach counter
    against a configurable threshold, a bounded slow-query log keeping
    each breaching query's full span tree, and automatic flight-
    recorder snapshots on breach. *)

type slow = { sq_template : string; sq_ns : int64; sq_trace : Span.t option }

type t

(** [threshold_ns] defaults to [Int64.max_int] (watchdog armed but
    never breached until configured); [snapshot_after] is how many
    breaches trigger one flight-recorder snapshot. *)
val create : ?threshold_ns:int64 -> ?slow_keep:int -> ?snapshot_after:int -> unit -> t

(** Process-wide instance; its histograms export through
    {!Registry.default} under the ["slo."] prefix. *)
val default : t

val set_threshold : t -> int64 -> unit
val threshold_ns : t -> int64
val breaches : t -> int

(** Record a phase latency sample under [key]. *)
val observe : t -> key:string -> int64 -> unit

(** Record a completed query's end-to-end latency (into
    ["<template>.total"]); over-threshold queries count as breaches,
    land in the slow-query log with their span tree, and may snapshot
    the flight recorder. *)
val note_query : t -> template:string -> ?trace:Span.t -> int64 -> unit

(** Breaching queries, newest first. *)
val slow_queries : t -> slow list

(** The flight-recorder events captured at the most recent
    auto-snapshot. *)
val last_snapshot : t -> Flight.event list option

(** Per-key p50/p95/p99/p999 summaries, key-sorted. *)
val summaries : t -> (string * Histogram.summary) list

(** Human-readable report: quantile table, breach count, slow-query
    log with span trees. *)
val report : t -> string

val reset : t -> unit
