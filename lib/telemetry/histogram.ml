(* Log-bucketed latency histogram: bucket i covers [2^i, 2^(i+1)) ns,
   bucket 0 additionally absorbs <= 0. 63 buckets cover the whole
   non-negative int64 range a monotonic clock can produce, so recording
   never branches on range. Exactness contract: quantile readouts are
   exact at bucket granularity (they return the upper bound of the
   bucket holding the requested rank), which the tests check against a
   reference sort. *)

let n_buckets = 63

type t = {
  counts : int array;  (* length n_buckets *)
  mutable count : int;
  mutable sum : int64;
  mutable min : int64;
  mutable max : int64;
  (* Recording touches five fields; a per-histogram mutex keeps them
     mutually consistent when domains share a histogram. Uncontended
     lock/unlock is tens of ns against the µs-scale events recorded. *)
  lock : Mutex.t;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    count = 0;
    sum = 0L;
    min = 0L;
    max = 0L;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bucket_of_ns ns =
  if Int64.compare ns 2L < 0 then 0
  else begin
    (* floor(log2 ns): position of the highest set bit *)
    let v = ref (Int64.to_int (Int64.shift_right_logical ns 1)) in
    let i = ref 0 in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (n_buckets - 1)
  end

let bucket_upper_ns i =
  if i >= 62 then Int64.max_int else Int64.sub (Int64.shift_left 1L (i + 1)) 1L

let record t ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let i = bucket_of_ns ns in
  (* per-event path: the body cannot raise (i is in bounds by
     construction), so skip the Fun.protect closure and pair the
     lock/unlock directly *)
  Mutex.lock t.lock;
  t.counts.(i) <- t.counts.(i) + 1;
  t.sum <- Int64.add t.sum ns;
  if t.count = 0 || Int64.compare ns t.min < 0 then t.min <- ns;
  if Int64.compare ns t.max > 0 then t.max <- ns;
  t.count <- t.count + 1;
  Mutex.unlock t.lock

let count t = locked t (fun () -> t.count)
let sum_ns t = locked t (fun () -> t.sum)
let max_ns t = locked t (fun () -> t.max)
let min_ns t = locked t (fun () -> t.min)
let bucket_counts t = locked t (fun () -> Array.copy t.counts)

(* Quantile over a consistent (counts, count) pair read under the lock. *)
let quantile_of ~counts ~count p =
  if count = 0 then 0L
  else begin
    let rank = int_of_float (ceil (p *. float_of_int count)) in
    let rank = max 1 (min count rank) in
    let cum = ref 0 and result = ref (bucket_upper_ns (n_buckets - 1)) in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + counts.(i);
         if !cum >= rank then begin
           result := bucket_upper_ns i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let quantile t p =
  locked t (fun () -> quantile_of ~counts:t.counts ~count:t.count p)

let reset t =
  locked t (fun () ->
      Array.fill t.counts 0 n_buckets 0;
      t.count <- 0;
      t.sum <- 0L;
      t.min <- 0L;
      t.max <- 0L)

type summary = {
  count : int;
  sum : int64;
  min : int64;
  max : int64;
  p50 : int64;
  p95 : int64;
  p99 : int64;
  p999 : int64;
}

let summary (t : t) =
  locked t (fun () ->
      let q = quantile_of ~counts:t.counts ~count:t.count in
      {
        count = t.count;
        sum = t.sum;
        min = t.min;
        max = t.max;
        p50 = q 0.5;
        p95 = q 0.95;
        p99 = q 0.99;
        p999 = q 0.999;
      })

(* Merge two summaries (e.g. the same histogram across two shards).
   Counts and sums add; min/max combine (a 0 min means "empty side",
   so take the other's); quantiles take the max — an upper bound,
   since the bucket data needed for exact re-ranking is gone. *)
let merge_summaries a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      count = a.count + b.count;
      sum = Int64.add a.sum b.sum;
      min = (if Int64.compare a.min b.min <= 0 then a.min else b.min);
      max = (if Int64.compare a.max b.max >= 0 then a.max else b.max);
      p50 = (if Int64.compare a.p50 b.p50 >= 0 then a.p50 else b.p50);
      p95 = (if Int64.compare a.p95 b.p95 >= 0 then a.p95 else b.p95);
      p99 = (if Int64.compare a.p99 b.p99 >= 0 then a.p99 else b.p99);
      p999 = (if Int64.compare a.p999 b.p999 >= 0 then a.p999 else b.p999);
    }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d p50=%Ldns p95=%Ldns p99=%Ldns max=%Ldns" s.count s.p50 s.p95 s.p99
    s.max
