(* Flight recorder: an always-on black box of recent low-level events.
   Records land in one of [n_rings] per-domain ring buffers (selected
   by domain id, so concurrent writers almost never share a ring) laid
   out as flat parallel arrays of fixed-size records — recording is a
   handful of array stores, one fetch-and-add on the global sequence
   counter, and no allocation. The global sequence gives dumps a total
   order that is deterministic whenever event production is (the
   single-domain torture path), which is what makes dump digests
   reproducible across runs.

   Rings overwrite: a dump shows the most recent [ring_capacity] events
   per ring. Writers take the ring's mutex only to claim a slot (two
   stores); readers copy whole rings under the same mutex, so a dump
   never observes a half-written record. *)

let now () = Monotonic_clock.now ()

type kind =
  | Probe_hit
  | Probe_miss
  | Version_publish
  | Version_distrust
  | Epoch_advance
  | Epoch_reclaim
  | Stale_purge
  | Lock_wait
  | Fault_hit
  | Maint_defer
  | Maint_apply
  | Maint_lapse
  | Maint_recompute
  | Budget_rebalance
  | Slo_breach
  | Dump_trigger
  | Sched_steal
  | Task_exn

let kind_to_string = function
  | Probe_hit -> "probe.hit"
  | Probe_miss -> "probe.miss"
  | Version_publish -> "version.publish"
  | Version_distrust -> "version.distrust"
  | Epoch_advance -> "epoch.advance"
  | Epoch_reclaim -> "epoch.reclaim"
  | Stale_purge -> "stale.purge"
  | Lock_wait -> "lock.wait"
  | Fault_hit -> "fault.hit"
  | Maint_defer -> "maint.defer"
  | Maint_apply -> "maint.apply"
  | Maint_lapse -> "maint.lapse"
  | Maint_recompute -> "maint.recompute"
  | Budget_rebalance -> "budget.rebalance"
  | Slo_breach -> "slo.breach"
  | Dump_trigger -> "dump.trigger"
  | Sched_steal -> "sched.steal"
  | Task_exn -> "task.exn"

let kind_code = function
  | Probe_hit -> 0
  | Probe_miss -> 1
  | Version_publish -> 2
  | Version_distrust -> 3
  | Epoch_advance -> 4
  | Epoch_reclaim -> 5
  | Stale_purge -> 6
  | Lock_wait -> 7
  | Fault_hit -> 8
  | Maint_defer -> 9
  | Maint_apply -> 10
  | Maint_lapse -> 11
  | Maint_recompute -> 12
  | Budget_rebalance -> 13
  | Slo_breach -> 14
  | Dump_trigger -> 15
  | Sched_steal -> 16
  | Task_exn -> 17

let n_rings = 8

(* 1024 × 8 rings = 8k recent events retained. Bigger rings remember
   further back but stream through proportionally more cache on the
   always-on record path (one line per record); 64KB per ring keeps
   the recorder invisible next to the probe working set. *)
let ring_capacity = 1024

(* One record = [stride] consecutive ints (seq, ts, kind, a, b + pad to
   a cache line): a single interleaved array instead of five parallel
   ones, so recording touches one cache line, not five — the recorder
   is always on, and its cache footprint is what the overhead gate
   (bench/exp_observability) actually measures. Timestamps are
   monotonic ns since boot, well inside OCaml's 63-bit int. *)
let stride = 8

type ring = {
  slots : int array;  (* ring_capacity records of [stride] ints *)
  mutable next : int;  (* total records ever written to this ring *)
  lock : Mutex.t;
}

let make_ring () =
  let slots = Array.make (ring_capacity * stride) 0 in
  for i = 0 to ring_capacity - 1 do
    slots.(i * stride) <- -1  (* seq < 0 = slot never written *)
  done;
  { slots; next = 0; lock = Mutex.create () }

let rings = Array.init n_rings (fun _ -> make_ring ())
let seq = Atomic.make 0
let enabled = Atomic.make true
let set_enabled on = Atomic.set enabled on
let is_enabled () = Atomic.get enabled

(* Small-string intern table so fixed-size int records can name
   failpoint sites and relations. Interning happens on rare event
   kinds (faults, lock waits), not the probe hot path. *)
let intern_lock = Mutex.create ()
let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 16
let intern_rev : (int, string) Hashtbl.t = Hashtbl.create 16

let intern s =
  Mutex.lock intern_lock;
  let id =
    match Hashtbl.find_opt intern_tbl s with
    | Some id -> id
    | None ->
        let id = Hashtbl.length intern_tbl + 1 in
        Hashtbl.add intern_tbl s id;
        Hashtbl.add intern_rev id s;
        id
  in
  Mutex.unlock intern_lock;
  id

let label_of id =
  Mutex.lock intern_lock;
  let s = Hashtbl.find_opt intern_rev id in
  Mutex.unlock intern_lock;
  match s with Some s -> s | None -> string_of_int id

let kinds_by_code =
  [|
    Probe_hit; Probe_miss; Version_publish; Version_distrust; Epoch_advance;
    Epoch_reclaim; Stale_purge; Lock_wait; Fault_hit; Maint_defer; Maint_apply;
    Maint_lapse; Maint_recompute; Budget_rebalance; Slo_breach; Dump_trigger;
    Sched_steal; Task_exn;
  |]

let record ?(a = 0) ?(b = 0) ?ts kind =
  if Atomic.get enabled then begin
    let ring = rings.((Domain.self () :> int) land (n_rings - 1)) in
    let s = Atomic.fetch_and_add seq 1 in
    let t = Int64.to_int (match ts with Some t -> t | None -> now ()) in
    Mutex.lock ring.lock;
    let i = ring.next mod ring_capacity * stride in  (* = (next mod cap) * stride *)
    ring.next <- ring.next + 1;
    ring.slots.(i) <- s;
    ring.slots.(i + 1) <- t;
    ring.slots.(i + 2) <- kind_code kind;
    ring.slots.(i + 3) <- a;
    ring.slots.(i + 4) <- b;
    Mutex.unlock ring.lock
  end

type event = { e_seq : int; e_ts : int64; e_kind : kind; e_a : int; e_b : int }

let dump () =
  let events = ref [] in
  Array.iter
    (fun ring ->
      Mutex.lock ring.lock;
      let filled = min ring.next ring_capacity in
      for i = 0 to filled - 1 do
        let o = i * stride in
        if ring.slots.(o) >= 0 then
          events :=
            {
              e_seq = ring.slots.(o);
              e_ts = Int64.of_int ring.slots.(o + 1);
              e_kind = kinds_by_code.(ring.slots.(o + 2));
              e_a = ring.slots.(o + 3);
              e_b = ring.slots.(o + 4);
            }
            :: !events
      done;
      Mutex.unlock ring.lock)
    rings;
  (* Global sequence order == claim order; within one domain that is
     also timestamp order, so the merged log reads as a timeline. *)
  List.sort (fun x y -> compare x.e_seq y.e_seq) !events

let reset () =
  Array.iter
    (fun ring ->
      Mutex.lock ring.lock;
      for i = 0 to ring_capacity - 1 do
        ring.slots.(i * stride) <- -1
      done;
      ring.next <- 0;
      Mutex.unlock ring.lock)
    rings;
  Atomic.set seq 0

(* FNV-1a over the (kind, a, b) stream in sequence order. Timestamps
   are excluded so the digest only depends on what happened, not when —
   reproducible across runs of a deterministic campaign. *)
let digest events =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (v land 0xff))) 0x100000001b3L
  in
  let mix_int v =
    mix v;
    mix (v lsr 8);
    mix (v lsr 16);
    mix (v lsr 24)
  in
  List.iter
    (fun e ->
      mix_int (kind_code e.e_kind);
      mix_int e.e_a;
      mix_int e.e_b)
    events;
  Fmt.str "%016Lx" !h

let pp_event ppf e =
  let label =
    match e.e_kind with
    | Fault_hit | Lock_wait | Maint_defer | Maint_apply ->
        Fmt.str " site=%s" (label_of e.e_a)
    | _ when e.e_a <> 0 || e.e_b <> 0 -> Fmt.str " a=%d b=%d" e.e_a e.e_b
    | _ -> ""
  in
  Fmt.pf ppf "#%-6d %14Ld %-16s%s" e.e_seq e.e_ts (kind_to_string e.e_kind) label

let pp_dump ppf events =
  match events with
  | [] -> Fmt.pf ppf "flight recorder: no events@."
  | es ->
      Fmt.pf ppf "flight recorder: %d events (digest %s)@." (List.length es)
        (digest es);
      List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) es
