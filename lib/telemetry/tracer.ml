(* Span-tree sampling. Recording every query's tree would make the
   tracer the hottest allocator in the engine; 1-in-k sampling keeps the
   distribution-shaped metrics in the histograms (always on) and the
   microscope (the tree) cheap enough to leave enabled.

   Sampling is stratified and seeded: each consecutive window of
   [every] ticks records exactly one trace, at an offset drawn from a
   SplitMix64 stream over (seed, window). The rate guarantee of plain
   modulo sampling is kept (exactly 1-in-k), but which queries are
   sampled is a pure function of the seed — reproducible in tests and
   torture runs, and decorrelated from any workload periodicity. *)

module Sm = Minirel_prng.Split_mix

type t = {
  every : int Atomic.t;
  seed : int64 Atomic.t;
  tick : int Atomic.t;
  force : bool Atomic.t;
  (* Retention is a circular array, not a consed list: with always-on
     sampling (every=1) a finish happens per query, and one overwriting
     store keeps the hot path allocation-free while letting displaced
     traces die young instead of churning through a [take]. The whole
     tracer is lock-free — the default tracer is shared by every engine
     scope, and parallel shard tasks would otherwise serialise their
     finishes on a tracer mutex. A reader racing a writer observes
     either the old or the new trace in a slot, which is all a debug
     ring promises. *)
  retained : Span.trace option array;  (* slot (finished-1) mod keep = newest *)
  finished : int Atomic.t;  (* total traces ever retained *)
}

let create ?(sample_every = 16) ?(seed = 0L) ?(keep = 8) () =
  {
    every = Atomic.make (max 1 sample_every);
    seed = Atomic.make seed;
    tick = Atomic.make 0;
    force = Atomic.make false;
    retained = Array.make (max 1 keep) None;
    finished = Atomic.make 0;
  }

let default = create ()

let set_sampling ?seed t ~every =
  Atomic.set t.every (max 1 every);
  match seed with None -> () | Some s -> Atomic.set t.seed s

let sampling t = Atomic.get t.every
let seed t = Atomic.get t.seed
let force_next t = Atomic.set t.force true

(* Exactly one tick is sampled per window of [every]; the offset is the
   SplitMix output for (seed, window), so the sampled set replays for a
   fixed seed. *)
let sampled t tick =
  let every = Atomic.get t.every in
  every <= 1
  ||
  let window = (tick - 1) / every in
  let g =
    Sm.of_int64
      (Int64.logxor (Atomic.get t.seed)
         (Int64.mul (Int64.of_int window) 0x9E3779B97F4A7C15L))
  in
  (tick - 1) mod every = Sm.int g ~bound:every

let start ?at t name =
  let tick = Atomic.fetch_and_add t.tick 1 + 1 in
  let forced =
    (* the get is the common no-force path; the CAS makes a pending
       force fire exactly once under contention *)
    Atomic.get t.force && Atomic.compare_and_set t.force true false
  in
  if forced || sampled t tick then begin
    let trace = Span.start ?at name in
    (* the tick doubles as the query's trace id *)
    Span.kv trace "trace_id" (string_of_int tick);
    Some trace
  end
  else None

let finish ?at t trace =
  Span.finish ?at trace;
  let i = Atomic.fetch_and_add t.finished 1 in
  t.retained.(i mod Array.length t.retained) <- Some trace

let last t =
  let n = Atomic.get t.finished in
  if n = 0 then None else t.retained.((n - 1) mod Array.length t.retained)

let recent t =
  let n = Atomic.get t.finished in
  let keep = Array.length t.retained in
  List.filter_map
    (fun i -> t.retained.((n - 1 - i) mod keep))
    (List.init (min n keep) Fun.id)

let clear t =
  Atomic.set t.tick 0;
  Atomic.set t.force false;
  Atomic.set t.finished 0;
  Array.fill t.retained 0 (Array.length t.retained) None
