(* Span-tree sampling. Recording every query's tree would make the
   tracer the hottest allocator in the engine; 1-in-k sampling keeps the
   distribution-shaped metrics in the histograms (always on) and the
   microscope (the tree) cheap enough to leave enabled. *)

type t = {
  every : int Atomic.t;
  tick : int Atomic.t;
  force : bool Atomic.t;
  mutable keep : int;
  mutable retained : Span.trace list;  (* most recent first, length <= keep *)
  (* The default tracer is shared by every engine scope, so parallel
     shard tasks race on the retained ring; the sampling decision in
     {!start} is the per-span hot path and stays lock-free on atomics
     so concurrent spans never serialise on a tracer mutex. *)
  lock : Mutex.t;
}

let create ?(sample_every = 16) ?(keep = 8) () =
  {
    every = Atomic.make (max 1 sample_every);
    tick = Atomic.make 0;
    force = Atomic.make false;
    keep = max 1 keep;
    retained = [];
    lock = Mutex.create ();
  }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_sampling t ~every = Atomic.set t.every (max 1 every)
let sampling t = Atomic.get t.every
let force_next t = Atomic.set t.force true

let start t name =
  let tick = Atomic.fetch_and_add t.tick 1 + 1 in
  let forced =
    (* the get is the common no-force path; the CAS makes a pending
       force fire exactly once under contention *)
    Atomic.get t.force && Atomic.compare_and_set t.force true false
  in
  if forced || tick mod Atomic.get t.every = 0 then Some (Span.start name)
  else None

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let finish t trace =
  Span.finish trace;
  locked t (fun () -> t.retained <- take t.keep (trace :: t.retained))

let last t =
  locked t (fun () -> match t.retained with [] -> None | tr :: _ -> Some tr)

let recent t = locked t (fun () -> t.retained)

let clear t =
  Atomic.set t.tick 0;
  Atomic.set t.force false;
  locked t (fun () -> t.retained <- [])
