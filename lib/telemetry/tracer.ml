(* Span-tree sampling. Recording every query's tree would make the
   tracer the hottest allocator in the engine; 1-in-k sampling keeps the
   distribution-shaped metrics in the histograms (always on) and the
   microscope (the tree) cheap enough to leave enabled. *)

type t = {
  mutable every : int;
  mutable tick : int;
  mutable force : bool;
  mutable keep : int;
  mutable retained : Span.trace list;  (* most recent first, length <= keep *)
}

let create ?(sample_every = 16) ?(keep = 8) () =
  { every = max 1 sample_every; tick = 0; force = false; keep = max 1 keep; retained = [] }

let default = create ()

let set_sampling t ~every = t.every <- max 1 every
let sampling t = t.every
let force_next t = t.force <- true

let start t name =
  t.tick <- t.tick + 1;
  if t.force || t.tick mod t.every = 0 then begin
    t.force <- false;
    Some (Span.start name)
  end
  else None

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let finish t trace =
  Span.finish trace;
  t.retained <- take t.keep (trace :: t.retained)

let last t = match t.retained with [] -> None | tr :: _ -> Some tr
let recent t = t.retained

let clear t =
  t.tick <- 0;
  t.force <- false;
  t.retained <- []
