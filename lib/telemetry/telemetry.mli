(** Facade over the default registry and tracer: the one-stop API the
    engine layers use. Counters and histograms are always-on while
    telemetry is enabled; span trees are sampled (see {!Tracer}).
    Disabling telemetry reduces every instrumentation site to one
    boolean load. *)

(** Globally enable/disable recording. Registrations persist either
    way; only recording stops. Default: enabled. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** Monotonic nanoseconds; the clock every histogram and span uses. *)
val now_ns : unit -> int64

(** Handles into {!Registry.default}; cache them at module init and pay
    a field update per event. *)
val counter : string -> Registry.counter

val histogram : string -> Histogram.t

(** A full reading of {!Registry.default}. *)
val snapshot : unit -> (string * Registry.value) list

(** Zero counters and histograms, run source resets, drop retained
    traces; keep every registration (see {!Registry.reset}). *)
val reset : unit -> unit

(** [None] when disabled or sampled out. *)
val trace_start : string -> Span.trace option

val trace_finish : Span.trace -> unit

(** Record the next trace regardless of sampling (shell [TRACE]). *)
val force_next_trace : unit -> unit

val last_trace : unit -> Span.trace option

(** Set the default tracer's 1-in-[every] rate, optionally reseeding
    the stratified sampling stream (see {!Tracer.set_sampling}). Also
    settable via the [PMV_TRACE_SAMPLE] / [PMV_TRACE_SEED] environment
    variables, read once at startup. *)
val set_trace_sampling : ?seed:int64 -> every:int -> unit -> unit
val pp_snapshot : Format.formatter -> (string * Registry.value) list -> unit
