(** Sampling span recorder: counters stay always-on, span trees are
    recorded 1-in-[every] queries (plus on demand via {!force_next}),
    and a small ring of recent traces is retained for inspection.

    Sampling is stratified and seeded: every window of [every] ticks
    records exactly one trace at a SplitMix64-drawn offset, so the
    sampled span set is a reproducible function of the seed. *)

type t

val create : ?sample_every:int -> ?seed:int64 -> ?keep:int -> unit -> t

(** The tracer {!Telemetry} routes through. *)
val default : t

(** Change the sampling rate, and optionally re-seed the offset
    stream. [every <= 1] records every trace. *)
val set_sampling : ?seed:int64 -> t -> every:int -> unit

val sampling : t -> int
val seed : t -> int64

(** Record the next trace regardless of sampling. *)
val force_next : t -> unit

(** [None] when this query is sampled out. The root span of a sampled
    trace carries a ["trace_id"] kv (the tracer tick). [at] reuses a
    monotonic timestamp the caller already read ({!Span.start}). *)
val start : ?at:int64 -> t -> string -> Span.trace option

(** Close the trace and retain it. [at] as in {!start}. *)
val finish : ?at:int64 -> t -> Span.trace -> unit

(** Most recently finished trace. *)
val last : t -> Span.trace option

(** Retained traces, most recent first. *)
val recent : t -> Span.trace list

val clear : t -> unit
