(** Sampling span recorder: counters stay always-on, span trees are
    recorded 1-in-[every] queries (plus on demand via {!force_next}),
    and a small ring of recent traces is retained for inspection. *)

type t

val create : ?sample_every:int -> ?keep:int -> unit -> t

(** The tracer {!Telemetry} routes through. *)
val default : t

val set_sampling : t -> every:int -> unit
val sampling : t -> int

(** Record the next trace regardless of sampling. *)
val force_next : t -> unit

(** [None] when this query is sampled out. *)
val start : t -> string -> Span.trace option

(** Close the trace and retain it. *)
val finish : t -> Span.trace -> unit

(** Most recently finished trace. *)
val last : t -> Span.trace option

(** Retained traces, most recent first. *)
val recent : t -> Span.trace list

val clear : t -> unit
