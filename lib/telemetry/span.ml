(* Span trees. A trace keeps a stack of open spans (innermost first,
   root always last); children attach to their parent on [leave], so a
   finished trace is a plain tree with no back pointers. *)

let now () = Monotonic_clock.now ()

type t = {
  name : string;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable kvs : (string * string) list;
  mutable rev_children : t list;
}

type trace = { troot : t; mutable open_spans : t list (* innermost first *) }

let root tr = tr.troot

let make_span ?at name =
  let t0 = match at with Some t -> t | None -> now () in
  { name; start_ns = t0; stop_ns = t0; kvs = []; rev_children = [] }

let start ?at name =
  let root = make_span ?at name in
  { troot = root; open_spans = [ root ] }

let innermost tr =
  match tr.open_spans with [] -> tr.troot | span :: _ -> span

let enter tr name =
  let span = make_span name in
  (innermost tr).rev_children <- span :: (innermost tr).rev_children;
  tr.open_spans <- span :: tr.open_spans

let leave tr =
  match tr.open_spans with
  | [] | [ _ ] -> ()  (* the root only closes through [finish] *)
  | span :: rest ->
      span.stop_ns <- now ();
      tr.open_spans <- rest

let kv tr key value = (innermost tr).kvs <- (key, value) :: (innermost tr).kvs

let leaf tr name ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let stop = now () in
  let span =
    { name; start_ns = Int64.sub stop ns; stop_ns = stop; kvs = []; rev_children = [] }
  in
  (innermost tr).rev_children <- span :: (innermost tr).rev_children

(* Graft a finished subtree built on another domain under the innermost
   open span. Timestamps are absolute monotonic ns from the same clock,
   so the merged tree stays time-coherent without rebasing. *)
let attach tr child = (innermost tr).rev_children <- child :: (innermost tr).rev_children

let finish ?at tr =
  let stop = match at with Some t -> t | None -> now () in
  List.iter (fun span -> span.stop_ns <- stop) tr.open_spans;
  tr.open_spans <- []

let children t = List.rev t.rev_children

(* First span named [name] in pre-order, the subtree root included. *)
let rec find t name =
  if String.equal t.name name then Some t
  else
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> find c name)
      None (children t)

let find_kv t key =
  List.fold_left
    (fun acc (k, v) -> match acc with Some _ -> acc | None when String.equal k key -> Some v | None -> None)
    None (List.rev t.kvs)

let inclusive_ns t =
  let d = Int64.sub t.stop_ns t.start_ns in
  if Int64.compare d 0L < 0 then 0L else d

let exclusive_ns t =
  let kids =
    List.fold_left (fun acc c -> Int64.add acc (inclusive_ns c)) 0L t.rev_children
  in
  let d = Int64.sub (inclusive_ns t) kids in
  if Int64.compare d 0L < 0 then 0L else d

let iter f t =
  let rec go depth t =
    f ~depth t;
    List.iter (go (depth + 1)) (children t)
  in
  go 0 t

let us ns = Int64.to_float ns /. 1e3

let pp ppf t =
  Fmt.pf ppf "%-38s %12s %12s@." "span" "incl (us)" "excl (us)";
  iter
    (fun ~depth span ->
      let label = String.make (2 * depth) ' ' ^ span.name in
      Fmt.pf ppf "%-38s %12.1f %12.1f" label
        (us (inclusive_ns span))
        (us (exclusive_ns span));
      (match List.rev span.kvs with
      | [] -> ()
      | kvs ->
          (* literal spaces, not break hints: kvs must stay on the row *)
          Fmt.pf ppf "  [%a]"
            Fmt.(list ~sep:(any " ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
            kvs);
      Fmt.pf ppf "@.")
    t

let pp_trace ppf tr = pp ppf tr.troot
