(** Snapshot exporters: Prometheus text exposition format and JSON.
    Metric names are sanitised for Prometheus ([.] and [-] become
    [_]); histograms export [_count], [_sum] and quantile series. *)

val prometheus : Format.formatter -> (string * Registry.value) list -> unit
val prometheus_string : (string * Registry.value) list -> string
val json : Format.formatter -> (string * Registry.value) list -> unit
val json_string : (string * Registry.value) list -> string
