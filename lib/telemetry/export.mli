(** Snapshot exporters: Prometheus text exposition format and JSON.
    Metric names are sanitised for Prometheus ([.] and [-] become
    [_]); histograms export [_count], [_sum] and quantile series.
    [labels] adds a fixed label set to every Prometheus series, e.g.
    [["shard", "2"]] renders [name{shard="2"}]. *)

val prometheus :
  ?labels:(string * string) list ->
  Format.formatter ->
  (string * Registry.value) list ->
  unit

val prometheus_string :
  ?labels:(string * string) list -> (string * Registry.value) list -> string

val json : Format.formatter -> (string * Registry.value) list -> unit
val json_string : (string * Registry.value) list -> string

(** Aggregate per-shard snapshots into one merged view: counters and
    gauges add, histogram summaries merge (counts/sums add, min/max
    combine, quantiles take the per-shard max — an upper bound, since
    bucket data is gone by summary time). Result is sorted by name. *)
val merge_snapshots :
  (string * Registry.value) list list -> (string * Registry.value) list
