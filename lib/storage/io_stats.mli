(** Logical I/O counters. The engine keeps all data in memory; the
    buffer pool decides which page accesses {e would} have touched the
    disk and charges them here. The overhead and maintenance
    experiments report these counters. *)

type t = { mutable reads : int; mutable writes : int }

val create : unit -> t
val reset : t -> unit
val total : t -> int

(** An independent copy of the current counters. *)
val snapshot : t -> t

(** [diff ~before t] is the I/O performed since [before] was captured. *)
val diff : before:t -> t -> t

val add_read : t -> unit
val add_write : t -> unit

(** Stable name/value pairs for telemetry registration. *)
val to_list : t -> (string * int) list
val pp : t Fmt.t
