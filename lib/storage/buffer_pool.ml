(* A simulated buffer pool. All page contents live in memory; the pool
   only tracks which (file, page) pairs are resident and charges logical
   I/Os for the accesses that would have missed. Replacement is
   pluggable (CLOCK by default, matching common engine defaults).

   Simplification, documented in DESIGN.md: a write miss admits the page
   without charging a read (covers appends); a read miss charges one
   read; evicting or flushing a dirty page charges one write. *)

type key = int * int (* file id, page number *)

type t = {
  policy : key Minirel_cache.Policy.t;
  dirty : (key, unit) Hashtbl.t;
  stats : Io_stats.t;
  fault : Minirel_fault.Fault.reg;
  mutable next_file_id : int;
  (* Serialises policy/dirty/stats mutation: morsel scans on the Domain
     pool hit one shared pool. Per-page, not per-tuple — a page access
     amortises over every tuple on the page — so the uncontended cost
     stays in the noise of the simulated I/O accounting. *)
  lock : Mutex.t;
}

let create ?(policy = Minirel_cache.Policies.Clock)
    ?(fault = Minirel_fault.Fault.default) ~capacity () =
  let policy = Minirel_cache.Policies.make policy ~capacity in
  let t =
    {
      policy;
      dirty = Hashtbl.create 1024;
      stats = Io_stats.create ();
      fault;
      next_file_id = 0;
      lock = Mutex.create ();
    }
  in
  Minirel_cache.Policy.set_on_evict policy (fun key ->
      if Hashtbl.mem t.dirty key then begin
        Hashtbl.remove t.dirty key;
        Io_stats.add_write t.stats
      end);
  t

let stats t = t.stats
let policy_stats t = Minirel_cache.Policy.stats t.policy
let capacity t = Minirel_cache.Policy.capacity t.policy
let resident t = Minirel_cache.Policy.size t.policy

(* One reset for both counter families: Io_stats.reset alone used to
   leave the policy's hit/miss counters running, skewing back-to-back
   experiment readouts. *)
let reset_stats t =
  Io_stats.reset t.stats;
  Minirel_cache.Cache_stats.reset (policy_stats t)

let register_telemetry ?(registry = Minirel_telemetry.Registry.default)
    ?(name = "bufferpool") t =
  let module R = Minirel_telemetry.Registry in
  R.register_source registry ~name
    ~reset:(fun () -> reset_stats t)
    (fun () ->
      List.map (fun (k, v) -> (k, R.Counter v)) (Io_stats.to_list t.stats)
      @ List.map
          (fun (k, v) -> ("policy." ^ k, R.Counter v))
          (Minirel_cache.Cache_stats.to_list (policy_stats t))
      @ [
          ("resident", R.Gauge (float_of_int (resident t)));
          ("capacity", R.Gauge (float_of_int (capacity t)));
          ("dirty", R.Gauge (float_of_int (Hashtbl.length t.dirty)));
        ])

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Allocate a fresh file id for a heap file or an index. *)
let register_file t =
  locked t (fun () ->
      let id = t.next_file_id in
      t.next_file_id <- id + 1;
      id)

let access t ~file ~page ~mode =
  (* The fault probe stays outside the lock: [Injected] must not leave
     the pool mutex held. *)
  (match mode with
  | `Read -> Minirel_fault.Fault.hit_in t.fault "bufferpool.read"
  | `Write -> Minirel_fault.Fault.hit_in t.fault "bufferpool.write");
  let key = (file, page) in
  locked t (fun () ->
      (match Minirel_cache.Policy.reference t.policy key with
      | `Resident -> ()
      | `Admitted ->
          (* 2Q ghost promotion: the page was not held, so it is fetched now *)
          (match mode with `Read -> Io_stats.add_read t.stats | `Write -> ())
      | `Rejected ->
          (* miss: fetch (reads only; a write miss models an append) and,
             for policies that admit on fill, make the page resident *)
          (match mode with `Read -> Io_stats.add_read t.stats | `Write -> ());
          if Minirel_cache.Policy.admit_on_fill t.policy then
            Minirel_cache.Policy.admit t.policy key);
      match mode with `Write -> Hashtbl.replace t.dirty key () | `Read -> ())

let flush t =
  locked t (fun () ->
      Hashtbl.iter (fun _ () -> Io_stats.add_write t.stats) t.dirty;
      Hashtbl.reset t.dirty)

(* Drop every resident page of [file], without write-back accounting;
   used when a relation is rebuilt from scratch. *)
let invalidate_file t ~file =
  locked t (fun () ->
      let doomed = ref [] in
      Minirel_cache.Policy.iter t.policy (fun ((f, _) as key) ->
          if f = file then doomed := key :: !doomed);
      List.iter
        (fun key ->
          Minirel_cache.Policy.remove t.policy key;
          Hashtbl.remove t.dirty key)
        !doomed)
