(** Relation schemas: ordered, named, typed attributes. *)

type ty = Tint | Tfloat | Tstr

val ty_to_string : ty -> string

(** NULL matches every type. *)
val ty_matches : ty -> Value.t -> bool

type attr = { a_name : string; a_ty : ty }

type t = { name : string; attrs : attr array }

(** [create name attrs] builds a schema.
    @raise Invalid_argument on an empty relation name or duplicate
    attribute names. *)
val create : string -> (string * ty) list -> t

val name : t -> string
val arity : t -> int
val attr_name : t -> int -> string
val attr_ty : t -> int -> ty

(** Position of a named attribute. @raise Not_found if absent. *)
val pos : t -> string -> int

val pos_opt : t -> string -> int option
val mem : t -> string -> bool

(** Whether a tuple has this schema's arity and attribute types. *)
val conforms : t -> Value.t array -> bool

val pp : t Fmt.t
