(** A simulated buffer pool. Page contents stay in memory; the pool
    tracks which (file, page) pairs are resident under a pluggable
    replacement policy (CLOCK by default) and charges logical I/Os for
    the accesses that would have missed: reads on read misses, writes
    when dirty pages are evicted or flushed. A write miss admits the
    page without charging a read (it models an append). *)

type t

(** [fault] is the failpoint scope the pool's probes fire in (default:
    the process-global registry).
    @raise Invalid_argument if [capacity <= 0]. *)
val create :
  ?policy:Minirel_cache.Policies.kind ->
  ?fault:Minirel_fault.Fault.reg ->
  capacity:int ->
  unit ->
  t

val stats : t -> Io_stats.t

(** The replacement policy's hit/miss/eviction counters. *)
val policy_stats : t -> Minirel_cache.Cache_stats.t

val capacity : t -> int

(** Number of currently resident pages. *)
val resident : t -> int

(** Allocate a fresh file id for a heap file or a simulated index file. *)
val register_file : t -> int

(** Record one page access, charging I/O on a miss and marking the page
    dirty on writes. *)
val access : t -> file:int -> page:int -> mode:[ `Read | `Write ] -> unit

(** Write back every dirty page (one write charge each). *)
val flush : t -> unit

(** Drop every resident page of [file] without write-back accounting;
    for relations rebuilt from scratch. *)
val invalidate_file : t -> file:int -> unit

(** Reset the logical I/O counters {e and} the policy's counters in one
    step (historically the two drifted apart between experiment runs). *)
val reset_stats : t -> unit

(** Register this pool as telemetry source [name] (default
    ["bufferpool"]): I/O counters, policy counters, residency and
    capacity gauges. The registry's reset then goes through
    {!reset_stats}. *)
val register_telemetry :
  ?registry:Minirel_telemetry.Registry.t -> ?name:string -> t -> unit
