(* Logical I/O counters. The engine keeps all data in memory; the buffer
   pool decides which page accesses *would* have touched the disk and
   charges them here. This is what the overhead and maintenance
   experiments report. *)

type t = { mutable reads : int; mutable writes : int }

let create () = { reads = 0; writes = 0 }

let reset t =
  t.reads <- 0;
  t.writes <- 0

let total t = t.reads + t.writes

let snapshot t = { reads = t.reads; writes = t.writes }

(* I/Os performed since [before] was captured. *)
let diff ~before t = { reads = t.reads - before.reads; writes = t.writes - before.writes }

let add_read t = t.reads <- t.reads + 1
let add_write t = t.writes <- t.writes + 1

let to_list t = [ ("reads", t.reads); ("writes", t.writes) ]

let pp ppf t = Fmt.pf ppf "reads=%d writes=%d" t.reads t.writes
