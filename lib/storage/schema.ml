(* Relation schemas: ordered, named, typed attributes. *)

type ty = Tint | Tfloat | Tstr

let ty_to_string = function Tint -> "int" | Tfloat -> "float" | Tstr -> "string"

let ty_matches ty v =
  match (ty, v) with
  | _, Value.Null -> true
  | Tint, Value.Int _ -> true
  | Tfloat, Value.Float _ -> true
  | Tstr, Value.Str _ -> true
  | _ -> false

type attr = { a_name : string; a_ty : ty }

type t = { name : string; attrs : attr array }

let create name attrs =
  if name = "" then invalid_arg "Schema.create: empty relation name";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (a_name, _) ->
      if Hashtbl.mem seen a_name then
        invalid_arg (Fmt.str "Schema.create: duplicate attribute %s" a_name);
      Hashtbl.replace seen a_name ())
    attrs;
  {
    name;
    attrs = Array.of_list (List.map (fun (a_name, a_ty) -> { a_name; a_ty }) attrs);
  }

let name t = t.name
let arity t = Array.length t.attrs

let attr_name t i = t.attrs.(i).a_name
let attr_ty t i = t.attrs.(i).a_ty

(* Position of a named attribute. @raise Not_found *)
let pos t name =
  let rec find i =
    if i >= Array.length t.attrs then raise Not_found
    else if t.attrs.(i).a_name = name then i
    else find (i + 1)
  in
  find 0

let pos_opt t name = try Some (pos t name) with Not_found -> None

let mem t name = pos_opt t name <> None

(* Whether [values] is a well-typed tuple for this schema. *)
let conforms t values =
  Array.length values = Array.length t.attrs
  && Array.for_all2 (fun a v -> ty_matches a.a_ty v) t.attrs values

let pp ppf t =
  Fmt.pf ppf "%s(%a)" t.name
    Fmt.(array ~sep:comma (fun ppf a -> pf ppf "%s:%s" a.a_name (ty_to_string a.a_ty)))
    t.attrs
