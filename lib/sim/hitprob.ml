(* The Section 4.1 simulation study, faithfully:

   - a read-only database and a universe of [universe] basic condition
     parts (the paper: 1M);
   - each query's Cselect is broken into [h] bcps, drawn iid from a
     Zipfian with parameter alpha;
   - every bcp has more than F result tuples, so every resident entry is
     full and any residency counts;
   - a query is a *hit* if any of its h bcps is resident when it
     arrives ("partial hit", unlike full-hit caching);
   - CLOCK manages L = 1.02 x N entries; 2Q manages Am = N (CLOCK) plus
     a ghost FIFO A1 = N/2, both under the same storage budget (a bcp
     costs 4% of its F tuples);
   - 1M warm-up queries, then the hit probability over the next 1M.

   Default sizes are scaled down for the in-process sweep; `--full`
   in the bench harness restores the paper's numbers. *)

module Policy = Minirel_cache.Policy
module Policies = Minirel_cache.Policies

type config = {
  universe : int;  (* number of distinct bcps *)
  n : int;  (* the paper's N: 2Q Am capacity; CLOCK gets 1.02N *)
  alpha : float;
  h : int;  (* bcps per query *)
  policy : Policies.kind;
  warmup : int;  (* queries before measurement *)
  measure : int;  (* measured queries *)
  seed : int;
}

let paper_default =
  {
    universe = 1_000_000;
    n = 20_000;
    alpha = 1.07;
    h = 2;
    policy = Policies.Clock;
    warmup = 1_000_000;
    measure = 1_000_000;
    seed = 7;
  }

let scaled_default =
  { paper_default with universe = 100_000; n = 2_000; warmup = 200_000; measure = 200_000 }

type result = {
  config : config;
  hit_prob : float;
  avg_hit_bcps : float;  (* mean resident bcps per query (of its h) *)
  resident : int;  (* entries resident at the end *)
  capacity : int;
  top_ranks_for_90pct : int;  (* how many hottest bcps hold 90% of mass *)
}

let capacity_of config =
  match config.policy with
  | Policies.Two_q | Policies.Two_q_full -> config.n
  | Policies.Clock | Policies.Lru | Policies.Fifo ->
      max 1 (int_of_float (1.02 *. float_of_int config.n))

(* One query: draw h bcps, count how many are resident (the partial-hit
   condition needs >= 1), then process the references (admitting on fill
   where the policy allows, since in this workload every bcp always has
   tuples to cache). Returns the resident count. *)
let step policy zipf rng h =
  let resident = ref 0 in
  for _ = 1 to h do
    let bcp = Minirel_workload.Zipf.sample zipf rng in
    if Policy.mem policy bcp then incr resident;
    match Policy.reference policy bcp with
    | `Resident | `Admitted -> ()
    | `Rejected -> if Policy.admit_on_fill policy then Policy.admit policy bcp
  done;
  !resident

(* Pattern-drift variant: after the warm-up, one window of [every]
   queries is measured as the baseline, then the rank -> bcp mapping
   shifts by [drift] (yesterday's hot bcps go cold) and [windows]
   consecutive windows are measured. The expected picture — a dip right
   after the shift that recovers as the PMV re-learns the pattern — is
   the adaptation story of Section 3.2, measured. *)
let run_drift config ~drift ~every ~windows =
  if config.h < 1 then invalid_arg "Hitprob.run_drift: h must be >= 1";
  if every <= 0 || windows <= 0 || drift < 0 then invalid_arg "Hitprob.run_drift";
  let zipf = Minirel_workload.Zipf.create ~n:config.universe ~alpha:config.alpha in
  let rng = Minirel_prng.Split_mix.create ~seed:config.seed in
  let capacity = capacity_of config in
  let policy = Policies.make config.policy ~capacity in
  let offset = ref 0 in
  let step_shifted () =
    let resident = ref 0 in
    for _ = 1 to config.h do
      let bcp = (!offset + Minirel_workload.Zipf.sample zipf rng) mod config.universe in
      if Policy.mem policy bcp then incr resident;
      match Policy.reference policy bcp with
      | `Resident | `Admitted -> ()
      | `Rejected -> if Policy.admit_on_fill policy then Policy.admit policy bcp
    done;
    !resident > 0
  in
  for _ = 1 to config.warmup do
    ignore (step_shifted ())
  done;
  let window () =
    let hits = ref 0 in
    for _ = 1 to every do
      if step_shifted () then incr hits
    done;
    float_of_int !hits /. float_of_int every
  in
  let baseline = window () in
  offset := drift;
  (baseline, List.init windows (fun _ -> window ()))

let run config =
  if config.h < 1 then invalid_arg "Hitprob.run: h must be >= 1";
  let zipf = Minirel_workload.Zipf.create ~n:config.universe ~alpha:config.alpha in
  let rng = Minirel_prng.Split_mix.create ~seed:config.seed in
  let capacity = capacity_of config in
  let policy = Policies.make config.policy ~capacity in
  for _ = 1 to config.warmup do
    ignore (step policy zipf rng config.h)
  done;
  let hits = ref 0 and hit_bcps = ref 0 in
  for _ = 1 to config.measure do
    let r = step policy zipf rng config.h in
    if r > 0 then incr hits;
    hit_bcps := !hit_bcps + r
  done;
  {
    config;
    hit_prob = float_of_int !hits /. float_of_int config.measure;
    avg_hit_bcps = float_of_int !hit_bcps /. float_of_int config.measure;
    resident = Policy.size policy;
    capacity;
    top_ranks_for_90pct = Minirel_workload.Zipf.ranks_holding zipf ~mass:0.9;
  }
