(* A redo log for the engine: every transaction delta is appended as
   text, so a catalog state can be recovered as
   snapshot + log replay. Updates are logged as delete+insert pairs;
   deletes identify their victim by value (the heaps carry no stable
   external row ids), which is exact under multiset semantics.

     ins <rel> <v1>\t<v2>...
     del <rel> <v1>\t<v2>...

   Values use the snapshot encoding (tagged, escape-safe). *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Snapshot = Minirel_index.Snapshot

type stats = {
  mutable records : int;  (* ins/del lines appended *)
  mutable bytes : int;  (* bytes appended, via pos_out deltas *)
  mutable flushes : int;
}

type t = {
  filename : string;
  mutable oc : out_channel option;
  stats : stats;
  fault : Minirel_fault.Fault.reg;
}

let open_log ?(fault = Minirel_fault.Fault.default) ~filename () =
  {
    filename;
    oc = Some (open_out_gen [ Open_append; Open_creat ] 0o644 filename);
    stats = { records = 0; bytes = 0; flushes = 0 };
    fault;
  }

let stats t = t.stats

let reset_stats t =
  t.stats.records <- 0;
  t.stats.bytes <- 0;
  t.stats.flushes <- 0

let register_telemetry ?(registry = Minirel_telemetry.Registry.default)
    ?(name = "wal") t =
  let module R = Minirel_telemetry.Registry in
  R.register_source registry ~name
    ~reset:(fun () -> reset_stats t)
    (fun () ->
      [
        ("records", R.Counter t.stats.records);
        ("bytes", R.Counter t.stats.bytes);
        ("flushes", R.Counter t.stats.flushes);
      ])

let filename t = t.filename

let close t =
  match t.oc with
  | Some oc ->
      close_out oc;
      t.oc <- None
  | None -> ()

let write_tuple oc tag rel tuple =
  output_string oc tag;
  output_char oc ' ';
  output_string oc rel;
  output_char oc ' ';
  Array.iteri
    (fun i v ->
      if i > 0 then output_char oc '\t';
      output_string oc (Snapshot.encode_value v))
    tuple;
  output_char oc '\n'

(* Append one delta; flushed immediately so a crash after a transaction
   loses nothing that was acknowledged. @raise Failure if closed.

   Crash failpoints, modelling where durability can be torn:
     wal.pre_append   before any record is written — the delta is lost;
     wal.mid_flush    checked before each record — records written so
                      far are flushed (durable prefix) and the rest is
                      lost, a torn append;
     wal.post_commit  after the flush — everything is durable but the
                      caller never learns.
   Each fires as [Fault.Injected]; recovery is snapshot + replay. *)
let log_delta t (delta : Txn.delta) =
  match t.oc with
  | None -> failwith "Wal.log_delta: log is closed"
  | Some oc ->
      Minirel_fault.Fault.hit_in t.fault "wal.pre_append";
      let rel = delta.Txn.rel in
      let pos0 = pos_out oc in
      let write tag tuple =
        if Minirel_fault.Fault.fire_in t.fault "wal.mid_flush" then begin
          (* durable prefix: what was written is flushed, the rest of
             the delta is lost with the "crash" *)
          flush oc;
          raise (Minirel_fault.Fault.Injected "wal.mid_flush")
        end;
        write_tuple oc tag rel tuple;
        t.stats.records <- t.stats.records + 1
      in
      List.iter (fun tuple -> write "ins" tuple) delta.Txn.inserted;
      List.iter (fun tuple -> write "del" tuple) delta.Txn.deleted;
      List.iter
        (fun (old_t, new_t) ->
          write "del" old_t;
          write "ins" new_t)
        delta.Txn.updated;
      flush oc;
      t.stats.flushes <- t.stats.flushes + 1;
      t.stats.bytes <- t.stats.bytes + (pos_out oc - pos0);
      Minirel_fault.Fault.hit_in t.fault "wal.post_commit"

(* Subscribe the log to a transaction manager. *)
let attach t mgr = Txn.register_hook mgr ~name:("wal:" ^ t.filename) (log_delta t)

let detach t mgr = Txn.unregister_hook mgr ~name:("wal:" ^ t.filename)

exception Corrupt of string

let fail fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

(* Find one rid holding exactly [tuple]. *)
let rid_of_value catalog ~rel tuple =
  let heap = Catalog.heap catalog rel in
  let found = ref None in
  (try
     Heap_file.iter heap (fun rid t ->
         if !found = None && Tuple.equal t tuple then begin
           found := Some rid;
           raise Exit
         end)
   with Exit -> ());
  !found

(* Replay a log onto [catalog] (normally one restored from the matching
   snapshot). Returns the number of changes applied.
   @raise Corrupt on malformed lines or when a logged delete cannot
   find its victim (snapshot/log mismatch). *)
let replay catalog ~filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let applied = ref 0 in
      (* split on the first two spaces only: encoded strings may contain
         spaces *)
      let split3 line =
        match String.index_opt line ' ' with
        | None -> None
        | Some i -> (
            let rest = String.sub line (i + 1) (String.length line - i - 1) in
            match String.index_opt rest ' ' with
            | None -> None
            | Some j ->
                Some
                  ( String.sub line 0 i,
                    String.sub rest 0 j,
                    String.sub rest (j + 1) (String.length rest - j - 1) ))
      in
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | "" -> loop ()
        | line ->
            (match split3 line with
            | Some (tag, rel, fields) -> (
                let tuple =
                  Array.of_list
                    (List.map Snapshot.decode_value (String.split_on_char '\t' fields))
                in
                match tag with
                | "ins" ->
                    ignore (Catalog.insert catalog ~rel tuple);
                    incr applied
                | "del" -> (
                    match rid_of_value catalog ~rel tuple with
                    | Some rid ->
                        ignore (Catalog.delete catalog ~rel rid);
                        incr applied
                    | None -> fail "logged delete found no victim in %s" rel)
                | other -> fail "unknown log tag %S" other)
            | None -> fail "malformed log line %S" line);
            loop ()
      in
      loop ();
      !applied)
