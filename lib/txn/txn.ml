(* Transactions over the catalog: batches of inserts/deletes/updates
   that keep heap files and secondary indexes consistent and feed the
   resulting deltas to registered view-maintenance hooks (traditional
   MVs maintain immediately; PMVs defer per Section 3.4). *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog

type change =
  | Insert of { rel : string; tuple : Tuple.t }
  | Delete of { rel : string; pred : Predicate.t }
  | Update of { rel : string; pred : Predicate.t; set : (int * Value.t) list }

type delta = {
  rel : string;
  inserted : Tuple.t list;
  deleted : Tuple.t list;
  updated : (Tuple.t * Tuple.t) list;  (* (old, new) *)
}

let empty_delta rel = { rel; inserted = []; deleted = []; updated = [] }

type hook = { hook_name : string; on_delta : delta -> unit }

type t = {
  catalog : Catalog.t;
  locks : Lock_manager.t;
  fault : Minirel_fault.Fault.reg;
  mutable hooks : hook list;
  mutable next_txn : int;
}

let create ?(fault = Minirel_fault.Fault.default) catalog =
  { catalog; locks = Lock_manager.create ~fault (); fault; hooks = []; next_txn = 1 }

let catalog t = t.catalog
let locks t = t.locks
let fault t = t.fault

let register_hook t ~name on_delta =
  t.hooks <- { hook_name = name; on_delta } :: t.hooks

let unregister_hook t ~name =
  t.hooks <- List.filter (fun h -> h.hook_name <> name) t.hooks

let fresh_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  id

let rel_lock rel = "rel:" ^ rel

let matching_rids catalog ~rel pred =
  let heap = Catalog.heap catalog rel in
  let acc = ref [] in
  Heap_file.iter heap (fun rid tuple -> if Predicate.eval pred tuple then acc := rid :: !acc);
  List.rev !acc

let apply_change catalog change =
  match change with
  | Insert { rel; tuple } ->
      let _rid = Catalog.insert catalog ~rel tuple in
      { (empty_delta rel) with inserted = [ tuple ] }
  | Delete { rel; pred } ->
      let rids = matching_rids catalog ~rel pred in
      let deleted = List.map (fun rid -> Catalog.delete catalog ~rel rid) rids in
      { (empty_delta rel) with deleted }
  | Update { rel; pred; set } ->
      let rids = matching_rids catalog ~rel pred in
      let updated =
        List.map
          (fun rid ->
            let heap = Catalog.heap catalog rel in
            let old =
              match Heap_file.fetch heap rid with
              | Some t -> t
              | None -> assert false (* rid came from a scan moments ago *)
            in
            let fresh = Array.copy old in
            List.iter (fun (pos, v) -> fresh.(pos) <- v) set;
            ignore (Catalog.update catalog ~rel rid fresh);
            (old, fresh))
          rids
      in
      { (empty_delta rel) with updated }

(* Run a transaction. X-locks every touched relation for its duration,
   applies the changes in order, then notifies hooks once per change.
   Returns the deltas. @raise Failure on lock conflict. *)
let run t changes =
  let txn = fresh_txn t in
  let rels =
    List.sort_uniq String.compare
      (List.map
         (function Insert { rel; _ } | Delete { rel; _ } | Update { rel; _ } -> rel)
         changes)
  in
  (* a conflict midway through the lock list must not leak the locks
     already granted — release everything this txn holds and re-raise *)
  Fun.protect
    ~finally:(fun () -> Lock_manager.release_all t.locks ~txn)
    (fun () ->
      List.iter
        (fun rel ->
          Lock_manager.acquire_exn t.locks ~txn ~obj:(rel_lock rel) Lock_manager.X)
        rels;
      List.map
        (fun change ->
          let delta = apply_change t.catalog change in
          List.iter (fun h -> h.on_delta delta) t.hooks;
          delta)
        changes)
