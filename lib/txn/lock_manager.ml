(* A strict S/X lock manager over named objects (relations, views,
   PMVs). The engine is single-threaded, so instead of blocking, a
   conflicting request returns [Error conflict]; callers either give up
   or retry after the holder commits. Section 3.6's protocol — queries
   hold an S lock on the PMV across O2 and O3, maintenance takes X —
   is expressed in these terms and exercised by the tests. *)

type mode = S | X

let mode_to_string = function S -> "S" | X -> "X"

type holders = { mutable mode : mode; mutable owners : int list }

type conflict = { obj : string; holders : int list; held : mode; requested : mode }

let pp_conflict ppf c =
  Fmt.pf ppf "%s held in %s by [%a], requested %s" c.obj (mode_to_string c.held)
    Fmt.(list ~sep:comma int)
    c.holders (mode_to_string c.requested)

type stats = {
  mutable acquires : int;  (* granted requests *)
  mutable conflicts : int;  (* requests answered [Error] *)
  mutable upgrades : int;  (* S -> X promotions *)
  mutable releases : int;
  acquire_ns : Minirel_telemetry.Histogram.t;
      (* time spent inside [acquire]; the single-threaded engine never
         blocks, so this is the whole "wait" a request experiences *)
}

type t = {
  table : (string, holders) Hashtbl.t;
  stats : stats;
  fault : Minirel_fault.Fault.reg;
}

let create ?(fault = Minirel_fault.Fault.default) () =
  {
    table = Hashtbl.create 64;
    fault;
    stats =
      {
        acquires = 0;
        conflicts = 0;
        upgrades = 0;
        releases = 0;
        acquire_ns = Minirel_telemetry.Histogram.create ();
      };
  }

let stats t = t.stats

let reset_stats t =
  t.stats.acquires <- 0;
  t.stats.conflicts <- 0;
  t.stats.upgrades <- 0;
  t.stats.releases <- 0;
  Minirel_telemetry.Histogram.reset t.stats.acquire_ns

let register_telemetry ?(registry = Minirel_telemetry.Registry.default)
    ?(name = "lockmgr") t =
  let module R = Minirel_telemetry.Registry in
  R.register_source registry ~name
    ~reset:(fun () -> reset_stats t)
    (fun () ->
      [
        ("acquires", R.Counter t.stats.acquires);
        ("conflicts", R.Counter t.stats.conflicts);
        ("upgrades", R.Counter t.stats.upgrades);
        ("releases", R.Counter t.stats.releases);
        ("held_objects", R.Gauge (float_of_int (Hashtbl.length t.table)));
        ( "acquire_ns",
          R.Histogram (Minirel_telemetry.Histogram.summary t.stats.acquire_ns) );
      ])

let acquire_unmeasured t ~txn ~obj mode =
  if Minirel_fault.Fault.fire_in t.fault "lockmgr.acquire" then
    (* injected conflict: looks like an anonymous holder refusing the
       request, so callers exercise their give-up/defer paths *)
    Error { obj; holders = []; held = X; requested = mode }
  else
    match Hashtbl.find_opt t.table obj with
    | None ->
        Hashtbl.replace t.table obj { mode; owners = [ txn ] };
        Ok ()
    | Some h -> (
        let holds = List.mem txn h.owners in
        match (h.mode, mode) with
        | S, S ->
            if not holds then h.owners <- txn :: h.owners;
            Ok ()
        | S, X ->
            if holds && List.for_all (fun o -> o = txn) h.owners then begin
              (* sole S holder: upgrade. Normalise owners to exactly
                 [txn] so no stale duplicate can survive a later
                 [release_all] (a refused request from another txn must
                 never have left a trace here). *)
              h.mode <- X;
              h.owners <- [ txn ];
              t.stats.upgrades <- t.stats.upgrades + 1;
              Ok ()
            end
            else Error { obj; holders = h.owners; held = h.mode; requested = mode }
        | X, _ ->
            if holds then Ok () (* X subsumes S; re-entrant *)
            else Error { obj; holders = h.owners; held = h.mode; requested = mode })

(* The engine never blocks on a lock, so a refused request *is* the
   lock wait: record it in the flight recorder with the object name. *)
let record_conflict obj txn =
  Minirel_telemetry.Flight.record Lock_wait ~a:(Minirel_telemetry.Flight.intern obj)
    ~b:txn

let acquire t ~txn ~obj mode =
  if not (Minirel_telemetry.Telemetry.is_enabled ()) then begin
    let r = acquire_unmeasured t ~txn ~obj mode in
    (match r with Error _ -> record_conflict obj txn | Ok () -> ());
    r
  end
  else begin
    let t0 = Minirel_telemetry.Telemetry.now_ns () in
    let r = acquire_unmeasured t ~txn ~obj mode in
    Minirel_telemetry.Histogram.record t.stats.acquire_ns
      (Int64.sub (Minirel_telemetry.Telemetry.now_ns ()) t0);
    (match r with
    | Ok () -> t.stats.acquires <- t.stats.acquires + 1
    | Error _ ->
        t.stats.conflicts <- t.stats.conflicts + 1;
        record_conflict obj txn);
    r
  end

let release t ~txn ~obj =
  match Hashtbl.find_opt t.table obj with
  | None -> ()
  | Some h ->
      if List.mem txn h.owners then begin
        h.owners <- List.filter (fun o -> o <> txn) h.owners;
        t.stats.releases <- t.stats.releases + 1;
        if h.owners = [] then Hashtbl.remove t.table obj
      end

let release_all t ~txn =
  let objs =
    Hashtbl.fold
      (fun obj h acc -> if List.mem txn h.owners then obj :: acc else acc)
      t.table []
  in
  List.iter (fun obj -> release t ~txn ~obj) objs

let held_by t ~obj =
  Option.map (fun h -> (h.mode, h.owners)) (Hashtbl.find_opt t.table obj)

(* @raise Failure when the lock cannot be granted; convenience for
   single-threaded flows where conflict means a protocol bug. *)
let acquire_exn t ~txn ~obj mode =
  match acquire t ~txn ~obj mode with
  | Ok () -> ()
  | Error c -> failwith (Fmt.str "lock conflict: %a" pp_conflict c)
