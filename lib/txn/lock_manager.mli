(** A strict S/X lock manager over named objects (relations, views,
    PMVs). The engine is single-threaded, so a conflicting request
    returns [Error conflict] instead of blocking. Section 3.6's
    protocol — queries hold an S lock on the PMV across O2 and O3,
    maintenance takes X — is expressed in these terms. *)

type mode = S | X

val mode_to_string : mode -> string

type conflict = { obj : string; holders : int list; held : mode; requested : mode }

val pp_conflict : conflict Fmt.t

type t

(** [fault] scopes the injected-conflict failpoint (default: the
    process-global registry). *)
val create : ?fault:Minirel_fault.Fault.reg -> unit -> t

(** Grant rules: S shares with S; a sole S holder may upgrade to X;
    X is exclusive but re-entrant for its holder. *)
val acquire : t -> txn:int -> obj:string -> mode -> (unit, conflict) result

val release : t -> txn:int -> obj:string -> unit
val release_all : t -> txn:int -> unit

(** Current holders of the object, if any. *)
val held_by : t -> obj:string -> (mode * int list) option

(** @raise Failure on conflict; for single-threaded flows where a
    conflict means a protocol bug. *)
val acquire_exn : t -> txn:int -> obj:string -> mode -> unit

type stats = {
  mutable acquires : int;  (** granted requests *)
  mutable conflicts : int;  (** requests answered [Error] *)
  mutable upgrades : int;  (** S -> X promotions *)
  mutable releases : int;
  acquire_ns : Minirel_telemetry.Histogram.t;
      (** time spent inside {!acquire}; the engine never blocks, so this
          is the whole wait a request experiences *)
}

val stats : t -> stats
val reset_stats : t -> unit

(** Register this manager as telemetry source [name] (default
    ["lockmgr"]). *)
val register_telemetry :
  ?registry:Minirel_telemetry.Registry.t -> ?name:string -> t -> unit
