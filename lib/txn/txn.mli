(** Transactions over the catalog: batches of inserts/deletes/updates
    that keep heap files and secondary indexes consistent and feed the
    resulting deltas to registered view-maintenance hooks (traditional
    MVs maintain immediately; PMVs defer per Section 3.4). *)

open Minirel_storage
open Minirel_query

type change =
  | Insert of { rel : string; tuple : Tuple.t }
  | Delete of { rel : string; pred : Predicate.t }  (** all matching rows *)
  | Update of { rel : string; pred : Predicate.t; set : (int * Value.t) list }

type delta = {
  rel : string;
  inserted : Tuple.t list;
  deleted : Tuple.t list;
  updated : (Tuple.t * Tuple.t) list;  (** (old, new) *)
}

type t

(** [fault] scopes the failpoints of the lock manager this creates and
    of downstream consumers (WAL, maintenance) that read it back via
    {!fault}. Default: the process-global registry. *)
val create : ?fault:Minirel_fault.Fault.reg -> Minirel_index.Catalog.t -> t

val catalog : t -> Minirel_index.Catalog.t
val locks : t -> Lock_manager.t

(** The fault scope this manager was created with. *)
val fault : t -> Minirel_fault.Fault.reg

(** Hooks run once per change, after it is applied. *)
val register_hook : t -> name:string -> (delta -> unit) -> unit

val unregister_hook : t -> name:string -> unit

(** Run a transaction: X-lock every touched relation, apply the changes
    in order, notify hooks after each, release locks. Returns the
    deltas. @raise Failure on a lock conflict. *)
val run : t -> change list -> delta list
