(** A redo log: every transaction delta is appended as text, so a
    catalog state is recoverable as snapshot + log replay. Updates are
    logged as delete+insert pairs; deletes identify victims by value,
    which is exact under multiset semantics. Relation names must not
    contain spaces. *)

type t

(** Open (or create) a log file in append mode. [fault] scopes the
    wal.* crash failpoints (default: the process-global registry). *)
val open_log : ?fault:Minirel_fault.Fault.reg -> filename:string -> unit -> t

val filename : t -> string
val close : t -> unit

(** Append one delta, flushing immediately.
    @raise Failure when the log is closed. *)
val log_delta : t -> Txn.delta -> unit

(** Subscribe the log to a transaction manager. *)
val attach : t -> Txn.t -> unit

val detach : t -> Txn.t -> unit

type stats = {
  mutable records : int;  (** ins/del lines appended *)
  mutable bytes : int;  (** bytes appended *)
  mutable flushes : int;
}

val stats : t -> stats
val reset_stats : t -> unit

(** Register this log as telemetry source [name] (default ["wal"]). *)
val register_telemetry :
  ?registry:Minirel_telemetry.Registry.t -> ?name:string -> t -> unit

exception Corrupt of string

(** Replay a log onto a catalog (normally one restored from the
    matching snapshot); returns the number of changes applied.
    @raise Corrupt on malformed lines or snapshot/log mismatches. *)
val replay : Minirel_index.Catalog.t -> filename:string -> int
