(* Torture campaign: deterministic fault injection with full oracle
   checking (DESIGN.md Section 10).

   Each campaign replays a seeded event stream — Zipf-parameterised T1
   queries, single-change transactions, WAL crashes with snapshot+replay
   recovery, injected lock conflicts, buffer-pool I/O errors, forced
   maintenance deferral and lost maintenance — and every query answer is
   diffed against a full-scan ground truth. The experiment runs the
   anchor seed twice to prove the event digest reproduces exactly, then
   sweeps additional seeds; it fails when any campaign reports an oracle
   violation or the digests diverge. tools/check.sh gates on the
   resulting BENCH_torture.json. *)

module Torture = Minirel_check.Torture

type cfg = { full : bool; seed : int; scale : float option }

let run cfg =
  Output.header ~id:"Torture"
    ~title:"seeded fault-injection campaigns with a consistency oracle"
    ~paper:"(extension) crash recovery, deferred maintenance and exactly-once under faults";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.005 else 0.002) in
  let events = if cfg.full then 1_000 else 300 in
  let n_seeds = if cfg.full then 6 else 3 in
  let campaign seed = Torture.run { (Torture.default_cfg ~seed) with Torture.events; scale } in
  (* determinism gate: the anchor seed twice, digests must match *)
  let first = campaign cfg.seed in
  let second = campaign cfg.seed in
  let reproducible = first.Torture.digest = second.Torture.digest in
  let outcomes =
    (cfg.seed, first) :: List.init n_seeds (fun i -> (cfg.seed + 1 + i, campaign (cfg.seed + 1 + i)))
  in
  Output.row "%-7s %-8s %-6s %-8s %-7s %-7s %-7s %-9s %-18s %s@." "seed" "queries" "txns"
    "crashes" "defers" "locks" "io" "failures" "digest" "verdict";
  List.iter
    (fun (seed, (o : Torture.outcome)) ->
      Output.row "%-7d %-8d %-6d %-8d %-7d %-7d %-7d %-9d %-18s %s@." seed o.Torture.queries
        o.Torture.txns o.Torture.crashes o.Torture.deferrals o.Torture.lock_rejects
        o.Torture.io_faults
        (List.length o.Torture.failures)
        o.Torture.digest
        (if Torture.ok o then "clean" else "FAIL"))
    outcomes;
  let all_clean = List.for_all (fun (_, o) -> Torture.ok o) outcomes in
  Output.row "replay determinism: %s (seed %d digest %s)@."
    (if reproducible then "pass" else "FAIL")
    cfg.seed first.Torture.digest;
  let pass = all_clean && reproducible in
  Output.row "torture gate: %s@." (if pass then "pass" else "FAIL");
  let json_of (seed, (o : Torture.outcome)) =
    Fmt.str
      {|{"seed": %d, "events": %d, "queries": %d, "txns": %d, "crashes": %d, "recoveries": %d, "deferrals": %d, "lock_rejects": %d, "io_faults": %d, "rebuilds": %d, "deep_checks": %d, "failures": %d, "digest": "%s"}|}
      seed o.Torture.events o.Torture.queries o.Torture.txns o.Torture.crashes
      o.Torture.recoveries o.Torture.deferrals o.Torture.lock_rejects o.Torture.io_faults
      o.Torture.rebuilds o.Torture.deep_checks
      (List.length o.Torture.failures)
      o.Torture.digest
  in
  let json =
    Fmt.str
      {|{
  "experiment": "torture",
  "scale": %g,
  "events": %d,
  "anchor_seed": %d,
  "reproducible": %b,
  "campaigns": [%s],
  "pass": %b
}
|}
      scale events cfg.seed reproducible
      (String.concat ", " (List.map json_of outcomes))
      pass
  in
  let oc = open_out "BENCH_torture.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_torture.json@."
