(* Bechamel micro-benchmarks of the PMV fast path: one Test.make per
   operation the per-query overhead is built from (O1 decomposition, O2
   probe, DS bookkeeping, entry fill/remove). *)

open Bechamel
open Toolkit
open Minirel_storage
module Rid = Minirel_storage.Rid
module Template = Minirel_query.Template
module Condition_part = Minirel_query.Condition_part
module Entry_store = Pmv.Entry_store
module Catalog = Minirel_index.Catalog
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

let build () =
  let pool = Buffer_pool.create ~capacity:2_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:5 0.005 in
  ignore (Tpcr.generate catalog params);
  let t1 = Template.compile catalog Querygen.t1_spec in
  let view = Pmv.View.create ~capacity:2_000 ~f_max:3 ~name:"micro" t1 in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let rng = SM.create ~seed:6 in
  for _ = 1 to 300 do
    let inst = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
    ignore (Pmv.Answer.answer ~view catalog inst ~on_tuple:(fun _ _ -> ()))
  done;
  (catalog, t1, view, dz, sz)

let tests () =
  let _catalog, t1, view, dz, sz = build () in
  let rng = SM.create ~seed:7 in
  let inst = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
  let store = Pmv.View.store view in
  let cps = Condition_part.decompose inst in
  let some_bcp = Condition_part.bcp (List.hd cps) in
  let ds = Pmv.Ds.create () in
  let sample_tuple = [| Value.Int 1; Value.Float 1.0; Value.Int 1; Value.Int 1; Value.Float 1.0; Value.Int 1; Value.Int 1 |] in
  let bulk_pairs =
    List.init 5_000 (fun i ->
        (([| Value.Int i |] : Tuple.t), [ Rid.make ~page:i ~slot:0 ]))
  in
  Test.make_grouped ~name:"pmv"
    [
      Test.make ~name:"o1-decompose" (Staged.stage (fun () -> Condition_part.decompose inst));
      Test.make ~name:"o2-probe" (Staged.stage (fun () -> Entry_store.find store some_bcp));
      Test.make ~name:"bcp-of-result"
        (Staged.stage (fun () ->
             Condition_part.bcp_of_result t1
               (Array.sub sample_tuple 0 (List.length t1.Template.expanded_select))));
      Test.make ~name:"ds-add-remove"
        (Staged.stage (fun () ->
             Pmv.Ds.add ds sample_tuple;
             ignore (Pmv.Ds.remove_one ds sample_tuple)));
      Test.make ~name:"btree-bulk-load-5k"
        (Staged.stage (fun () -> Minirel_index.Btree.bulk_load bulk_pairs));
      Test.make ~name:"btree-insert-5k"
        (Staged.stage (fun () ->
             let t = Minirel_index.Btree.create () in
             List.iter (fun (k, rids) -> Minirel_index.Btree.insert t k (List.hd rids)) bulk_pairs;
             t));
    ]

let run () =
  Output.header ~id:"Micro" ~title:"Bechamel micro-benchmarks of the PMV fast path"
    ~paper:"(supporting) all operations are sub-microsecond in-memory work";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (tests ()) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Output.row "%-24s %-14s@." "operation" "ns/op";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Output.row "%-24s %-14.1f@." name est
      | Some [] | None -> Output.row "%-24s %-14s@." name "n/a")
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
