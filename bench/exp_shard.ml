(* Shard scaling benchmark (DESIGN.md Sections 11 and 13).

   Answers the same Zipf T1 query stream through the PMV pipeline at
   1/2/4 hash-partitioned shards, plus a plain single-engine baseline.
   The host is single-core, so any speedup is the sharding model
   itself, not parallelism: orders and lineitem are co-partitioned by
   the join key, so each shard's O3 joins its own 1/N partitions and
   the total join work shrinks with the shard count.

   Both join regimes are measured. The scan-bound regime — the
   lineitem_orderkey index dropped (in every configuration alike) and
   the template plan cache off, so the join edge executes as an
   index-nested loop over the suppkey posting lists — has per-probe
   cost proportional to partition size, exactly where co-partitioning
   pays; its speedups are the headline numbers and run under the
   classic Locked read path. The probe-bound regime keeps the join-key
   index, so the inner probe touches only the ~4 matching lineitems
   regardless of partition size; historically sharding it was pure
   fan-out overhead. It now runs under the Epoch read path — the
   router's shard-local probe fast path serves repeat queries straight
   from per-shard probe-cache segments, no fan-out — with a Locked A/B
   run alongside for continuity, and the router's fast-path telemetry
   (hits, fallbacks, probe-latency p50/p99) embedded per run.

   Every configuration answers the identical seeded query stream
   against identically generated data, so the result-multiset checksums
   must agree (across shard counts AND across read paths), and a sample
   of merged answers is judged oracle-clean by lib/check (multiset + DS
   exactly-once identity under summation). Results go to
   BENCH_shard.json. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Instance = Minirel_query.Instance
module Engine = Minirel_engine.Engine
module Router = Minirel_engine.Shard_router
module Histogram = Minirel_telemetry.Histogram
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type cfg = { full : bool; seed : int; scale : float option }

(* Router fast-path telemetry for one timed run (router configs under
   the Epoch path only). *)
type probe_tm = {
  fast_hits : int;  (* queries served without fan-out *)
  fallbacks : int;  (* queries that missed and fanned out *)
  seg_probes : int;  (* per-bcp segment probes *)
  seg_probe_hits : int;
  probe_p50_ns : int64;
  probe_p99_ns : int64;
}

type run_result = {
  label : string;
  shards : int;  (* 0 = plain engine baseline *)
  queries : int;
  wall_ns : int64;
  qps : float;
  pmv_queries : int;  (* every consulted shard answered through its view *)
  total_tuples : int;
  checksum : int;
  oracle_clean : bool;  (* sampled merged answers pass lib/check *)
  probe : probe_tm option;
}

let fresh_tpcr cfg ~scale =
  let pool = Buffer_pool.create ~capacity:8_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  (catalog, params)

(* One live configuration mid-measurement: the answer closure over its
   own fresh data, its precomputed query stream, and the accumulators
   the interleaved segments feed. *)
type live = {
  l_label : string;
  l_shards : int;
  l_catalog : Catalog.t;
  l_answer : Instance.t -> on_tuple:(Pmv.Answer.phase -> Tuple.t -> unit) -> Pmv.Answer.stats * bool;
  l_router : Router.t option;
  l_instances : Instance.t array;
  l_gen : SM.t -> Instance.t;
  mutable l_next : int;  (* cursor into [l_instances] *)
  mutable l_seg_walls : int64 list;
  mutable l_checksum : int;
  mutable l_total_tuples : int;
  mutable l_pmv_queries : int;
}

(* Build and warm one configuration: fresh data, fresh views, same
   query stream. [shards = 0] is the plain-engine baseline; otherwise a
   router over [shards] scoped engines, orders/lineitem
   hash-partitioned by the join key orderkey (co-partitioned, so T1
   joins shard-locally). [probe_path] selects the read path for every
   answered query. *)
let setup_config cfg ~scale ~per_shard_capacity ~probe_bound ~probe_path
    ~n_queries ~shards =
  let catalog, params = fresh_tpcr cfg ~scale in
  (* join-edge regime, identically in every configuration (see the
     header comment): scan-bound drops the join-key index, probe-bound
     keeps it; the skeleton cache is off either way *)
  if not probe_bound then
    Catalog.drop_index catalog ~rel:"lineitem" ~name:"lineitem_orderkey";
  let t1 = Template.compile catalog Querygen.t1_spec in
  (* Scan-bound isolates join-work scaling, so the skeleton cache is
     off and every query replans. Probe-bound measures the steady-state
     serving regime, where the template cache is on in any real
     deployment — identically for the engine baseline and every router,
     so the ratios stay apples-to-apples. *)
  let uncache e =
    Minirel_exec.Plan_cache.set_enabled (Engine.plan_cache e) probe_bound
  in
  let label, answer, router =
    if shards = 0 then begin
      let engine = Engine.scoped ~catalog () in
      uncache engine;
      ignore (Engine.ensure_view ~capacity:per_shard_capacity ~f_max:3 engine t1);
      Engine.set_probe_path engine probe_path;
      ("engine", (fun inst ~on_tuple -> Engine.answer engine inst ~on_tuple), None)
    end
    else begin
      let router = Router.create ~shards () in
      List.iter
        (fun rel ->
          Router.declare router (Catalog.schema catalog rel)
            ~part:(`Hash "orderkey"))
        [ "orders"; "lineitem" ];
      Router.declare router (Catalog.schema catalog "customer") ~part:`Replicated;
      Router.load_from router catalog;
      List.iter uncache (Router.shards router);
      ignore (Router.create_view ~capacity:per_shard_capacity ~f_max:3 router t1);
      Router.set_probe_path router probe_path;
      ( Fmt.str "router%d" shards,
        (fun inst ~on_tuple -> Router.answer router inst ~on_tuple),
        Some router )
    end
  in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let gen rng i =
    ignore i;
    Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng
  in
  (* warmup: populate the views (and probe caches) with the hot
     working set. The probe-bound regime measures steady-state serving,
     and the fast path only fires when every one of a query's h bcps is
     resident — a joint probability that decays as hit_ratio^h — so it
     warms until the bcp working set is fully seeded; a 100-query warmup
     would measure cold-cache behaviour, not the serving regime. *)
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  let sink = ref 0 in
  let n_warm =
    if probe_bound then if cfg.full then 2_000 else 1_000
    else if cfg.full then 400
    else 100
  in
  for i = 0 to n_warm - 1 do
    ignore (answer (gen warm_rng i) ~on_tuple:(fun _ _ -> incr sink))
  done;
  Option.iter Router.reset_probe_stats router;
  let rng = SM.create ~seed:(cfg.seed + 2) in
  {
    l_label = label;
    l_shards = shards;
    l_catalog = catalog;
    l_answer = answer;
    l_router = router;
    l_instances = Array.init n_queries (fun _ -> gen rng 0);
    l_gen = (fun rng -> gen rng 0);
    l_next = 0;
    l_seg_walls = [];
    l_checksum = 0;
    l_total_tuples = 0;
    l_pmv_queries = 0;
  }

(* Answer the next [seg_queries] of [l]'s stream, timed as one
   segment. *)
let run_segment l ~seg_queries =
  let t0 = Monotonic_clock.now () in
  for _ = 1 to seg_queries do
    let inst = l.l_instances.(l.l_next) in
    l.l_next <- l.l_next + 1;
    let _, via_view =
      l.l_answer inst ~on_tuple:(fun _ tuple ->
          l.l_total_tuples <- l.l_total_tuples + 1;
          l.l_checksum <- l.l_checksum + Tuple.hash tuple)
    in
    if via_view then l.l_pmv_queries <- l.l_pmv_queries + 1
  done;
  l.l_seg_walls <- Int64.sub (Monotonic_clock.now ()) t0 :: l.l_seg_walls

(* Close out a configuration: median-segment throughput, fast-path
   telemetry of the timed stream (before the oracle's extra answers
   pollute the counters), and the oracle verdict. *)
let finish_config cfg ~probe_path ~seg_queries l =
  let wall_ns = List.fold_left Int64.add 0L l.l_seg_walls in
  let median_seg_wall =
    let sorted = List.sort Int64.compare l.l_seg_walls in
    List.nth sorted (List.length sorted / 2)
  in
  let qps = float_of_int seg_queries /. (Int64.to_float median_seg_wall /. 1e9) in
  let probe =
    match (l.l_router, probe_path) with
    | Some router, Pmv.Answer.Epoch ->
        let ps = Router.probe_stats router in
        let s = Router.probe_summary router in
        Some
          {
            fast_hits = ps.Router.fast_hits;
            fallbacks = ps.Router.fallbacks;
            seg_probes = ps.Router.probes;
            seg_probe_hits = ps.Router.probe_hits;
            probe_p50_ns = s.Histogram.p50;
            probe_p99_ns = s.Histogram.p99;
          }
    | _ -> None
  in
  (* oracle: a sample of merged answers must be multiset-equal to the
     reference ground truth with the DS identity intact *)
  let oracle_rng = SM.create ~seed:(cfg.seed + 3) in
  let oracle_clean =
    List.for_all
      (fun inst ->
        Minirel_check.Check.report_ok
          (Minirel_check.Check.check_answer_via
             ~expected:(Minirel_check.Check.ground_truth l.l_catalog inst)
             (fun ~on_tuple -> fst (l.l_answer inst ~on_tuple))))
      (List.init 8 (fun _ -> l.l_gen oracle_rng))
  in
  {
    label = l.l_label;
    shards = l.l_shards;
    queries = l.l_next;
    wall_ns;
    qps;
    pmv_queries = l.l_pmv_queries;
    total_tuples = l.l_total_tuples;
    checksum = l.l_checksum;
    oracle_clean;
    probe;
  }

let json_of_run r =
  let probe =
    match r.probe with
    | None -> ""
    | Some p ->
        Fmt.str
          {|, "probe": {"fast_hits": %d, "fallbacks": %d, "seg_probes": %d, "seg_probe_hits": %d, "p50_ns": %Ld, "p99_ns": %Ld}|}
          p.fast_hits p.fallbacks p.seg_probes p.seg_probe_hits p.probe_p50_ns
          p.probe_p99_ns
  in
  Fmt.str
    {|{"label": %S, "shards": %d, "queries": %d, "wall_ns": %Ld, "queries_per_sec": %.1f, "pmv_queries": %d, "total_tuples": %d, "checksum": %d, "oracle_clean": %b%s}|}
    r.label r.shards r.queries r.wall_ns r.qps r.pmv_queries r.total_tuples
    r.checksum r.oracle_clean probe

(* Shaped mix across shard counts: the probe-bound setup (join-key
   index kept, plan cache on, Locked path) answers a deterministic
   rotation of Section 3.6 shapes — plain, GROUP BY, ORDER BY LIMIT
   10, EXISTS — drawn by query index, at 1 and 4 shards. The mixed
   checksum is a function of the data and the stream alone, so the
   shard counts must agree; one answer per shape is judged against the
   unsharded reference. Appended to BENCH_shard.json as its own block
   so the long-standing plain-stream numbers stay comparable. *)

type shaped_run = {
  sh_label : string;
  sh_shards : int;
  sh_queries : int;
  sh_qps : float;
  sh_tuples : int;
  sh_checksum : int;
  sh_oracle : bool;
}

let value_close a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Float.abs (x -. y)
      <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> Value.compare a b = 0

let groups_agree expected actual =
  List.length expected = List.length actual
  && List.for_all2
       (fun (ek, evs) (ak, avs) ->
         Tuple.compare ek ak = 0 && Array.for_all2 value_close evs avs)
       expected actual

let shaped_config cfg ~scale ~per_shard_capacity ~shards =
  let catalog, params = fresh_tpcr cfg ~scale in
  let t1 = Template.compile catalog Querygen.t1_spec in
  let router = Router.create ~shards () in
  List.iter
    (fun rel ->
      Router.declare router (Catalog.schema catalog rel) ~part:(`Hash "orderkey"))
    [ "orders"; "lineitem" ];
  Router.declare router (Catalog.schema catalog "customer") ~part:`Replicated;
  Router.load_from router catalog;
  ignore (Router.create_view ~capacity:per_shard_capacity ~f_max:3 router t1);
  let key, aggs, order =
    match Querygen.shapes_for t1 ~k:10 with
    | _ :: _ :: Querygen.Grouped { key; aggs } :: Querygen.Ordered { order; _ } :: _
      ->
        (key, aggs, order)
    | _ -> failwith "t1 must support the grouped and ordered shapes"
  in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let gen rng = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  let n_warm = if cfg.full then 200 else 60 in
  for _ = 1 to n_warm do
    ignore (Router.answer router (gen warm_rng) ~on_tuple:(fun _ _ -> ()))
  done;
  let n_queries = if cfg.full then 400 else 120 in
  let rng = SM.create ~seed:(cfg.seed + 2) in
  let instances = List.init n_queries (fun _ -> gen rng) in
  let checksum = ref 0 and tuples = ref 0 in
  let t0 = Monotonic_clock.now () in
  List.iteri
    (fun i inst ->
      match i mod 4 with
      | 0 ->
          ignore
            (Router.answer router inst ~on_tuple:(fun _ tuple ->
                 incr tuples;
                 checksum := !checksum + Tuple.hash tuple))
      | 1 ->
          let g, _ = Router.answer_grouped router inst ~key ~aggs in
          List.iter
            (fun (k, (accs : Minirel_query.Aggregate.acc array)) ->
              incr tuples;
              checksum :=
                !checksum + Tuple.hash k + accs.(0).Minirel_query.Aggregate.n)
            g.Pmv.Extensions.g_groups
      | 2 ->
          let rows, _ = Router.answer_ordered_k router inst ~order ~k:10 in
          List.iteri
            (fun j t ->
              incr tuples;
              checksum := !checksum + ((j + 1) * Tuple.hash t))
            rows
      | _ ->
          let b, _ = Router.exists_ router inst in
          checksum := !checksum + (if b then 1 else 0))
    instances;
  let wall_ns = Int64.sub (Monotonic_clock.now ()) t0 in
  let oracle_rng = SM.create ~seed:(cfg.seed + 3) in
  let q = gen oracle_rng in
  let plain_ok =
    Minirel_check.Check.report_ok
      (Minirel_check.Check.check_answer_via
         ~expected:(Minirel_check.Check.ground_truth catalog q)
         (fun ~on_tuple -> fst (Router.answer router q ~on_tuple)))
  in
  let grouped_ok =
    let g, _ = Router.answer_grouped router q ~key ~aggs in
    groups_agree
      (Minirel_check.Check.ground_truth_grouped catalog q ~key ~aggs)
      (Pmv.Extensions.finalize_groups ~aggs g.Pmv.Extensions.g_groups)
  in
  let ordered_ok =
    let rows, _ = Router.answer_ordered_k router q ~order ~k:10 in
    List.equal Tuple.equal rows
      (Minirel_check.Check.ground_truth_ordered catalog q ~order ~limit:10 ())
  in
  let exists_ok =
    fst (Router.exists_ router q)
    = Minirel_check.Check.ground_truth_exists catalog q
  in
  {
    sh_label = Fmt.str "router%d" shards;
    sh_shards = shards;
    sh_queries = n_queries;
    sh_qps = float_of_int n_queries /. (Int64.to_float wall_ns /. 1e9);
    sh_tuples = !tuples;
    sh_checksum = !checksum;
    sh_oracle = plain_ok && grouped_ok && ordered_ok && exists_ok;
  }

let json_of_shaped r =
  Fmt.str
    {|{"label": %S, "shards": %d, "queries": %d, "queries_per_sec": %.1f, "total_tuples": %d, "checksum": %d, "oracle_clean": %b}|}
    r.sh_label r.sh_shards r.sh_queries r.sh_qps r.sh_tuples r.sh_checksum
    r.sh_oracle

let run_shaped cfg ~scale ~per_shard_capacity =
  Output.row "@.shaped mix: plain/grouped/ordered-k/exists by query index@.";
  let runs =
    List.map (fun shards -> shaped_config cfg ~scale ~per_shard_capacity ~shards) [ 1; 4 ]
  in
  Output.row "%-9s %-7s %-9s %-12s %-9s %s@." "config" "shards" "queries"
    "queries/s" "tuples" "oracle";
  List.iter
    (fun r ->
      Output.row "%-9s %-7d %-9d %-12.1f %-9d %s@." r.sh_label r.sh_shards
        r.sh_queries r.sh_qps r.sh_tuples
        (if r.sh_oracle then "clean" else "VIOLATED"))
    runs;
  let identical =
    match runs with
    | a :: rest ->
        List.for_all
          (fun r -> r.sh_checksum = a.sh_checksum && r.sh_tuples = a.sh_tuples)
          rest
    | [] -> true
  in
  if not identical then
    Fmt.epr "WARNING: shaped mix disagrees between shard counts@.";
  (runs, identical)

(* One regime under one read path: all four configurations, the
   checksum cross-check, the printed table, and the regime's speedup
   ratios. *)
let run_regime cfg ~scale ~per_shard_capacity ~probe_bound ~probe_path =
  Output.row "@.regime: %s [%s probes]@."
    (if probe_bound then
       "probe-bound (join-key index kept — fast path serves repeats without fan-out)"
     else "scan-bound (join-key index dropped — co-partitioning shrinks join work)")
    (Pmv.Answer.probe_path_to_string probe_path);
  (* The gated ratios divide throughputs of different configurations,
     so the measurements must be paired: every configuration is built
     and warmed first, then segment k of every configuration runs back
     to back, and each configuration reports its median segment. Slow
     machine drift lands on all configurations alike instead of
     swinging a ratio by whichever config it happened to hit. *)
  let n_segments = if probe_bound then 3 else 1 in
  let seg_queries = if cfg.full then 1_200 else if probe_bound then 600 else 240 in
  let n_queries = n_segments * seg_queries in
  let lives =
    List.map
      (fun shards ->
        setup_config cfg ~scale ~per_shard_capacity ~probe_bound ~probe_path
          ~n_queries ~shards)
      [ 0; 1; 2; 4 ]
  in
  for _ = 1 to n_segments do
    List.iter (fun l -> run_segment l ~seg_queries) lives
  done;
  let runs = List.map (finish_config cfg ~probe_path ~seg_queries) lives in
  let baseline = List.hd runs in
  List.iter
    (fun r ->
      if r.checksum <> baseline.checksum || r.total_tuples <> baseline.total_tuples
      then
        Fmt.epr "WARNING: %s disagrees with the engine baseline (%d/%d tuples, %d/%d checksum)@."
          r.label r.total_tuples baseline.total_tuples r.checksum
          baseline.checksum)
    (List.tl runs);
  Output.row "%-9s %-7s %-9s %-12s %-9s %-9s %-8s %s@." "config" "shards" "queries"
    "queries/s" "via-pmv" "tuples" "oracle" "fast-path";
  List.iter
    (fun r ->
      Output.row "%-9s %-7d %-9d %-12.1f %-9d %-9d %-8s %s@." r.label r.shards
        r.queries r.qps r.pmv_queries r.total_tuples
        (if r.oracle_clean then "clean" else "VIOLATED")
        (match r.probe with
        | None -> "-"
        | Some p ->
            Fmt.str "%d hit / %d fb, probe p50 %Ldns p99 %Ldns" p.fast_hits
              p.fallbacks p.probe_p50_ns p.probe_p99_ns))
    runs;
  let find s = List.find (fun r -> r.shards = s) runs in
  let speedup_4 = (find 4).qps /. (find 1).qps in
  let one_shard_ratio = (find 1).qps /. baseline.qps in
  Output.row "speedup (4 shards vs 1): %.2fx@." speedup_4;
  Output.row "1-shard router vs plain engine: %.2fx@." one_shard_ratio;
  (runs, speedup_4, one_shard_ratio)

let run cfg =
  Output.header ~id:"Shard"
    ~title:"answer() throughput at 1/2/4 hash-partitioned shards"
    ~paper:
      "(extension) co-partitioned shards: each O3 joins its own 1/N \
       partitions, so total join work shrinks with the shard count; the \
       epoch probe fast path makes the probe-bound regime scale too";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.01 else 0.003) in
  let per_shard_capacity = if cfg.full then 400 else 200 in
  let scan_runs, speedup_4, one_shard_ratio =
    run_regime cfg ~scale ~per_shard_capacity ~probe_bound:false
      ~probe_path:Pmv.Answer.Locked
  in
  let probe_runs, probe_speedup_4, probe_one_shard_ratio =
    run_regime cfg ~scale ~per_shard_capacity ~probe_bound:true
      ~probe_path:Pmv.Answer.Epoch
  in
  let locked_runs, locked_speedup_4, locked_one_shard_ratio =
    run_regime cfg ~scale ~per_shard_capacity ~probe_bound:true
      ~probe_path:Pmv.Answer.Locked
  in
  let shaped_runs, shaped_identical = run_shaped cfg ~scale ~per_shard_capacity in
  let find runs s = List.find (fun r -> r.shards = s) runs in
  (* the tentpole ratios: epoch-path routers against the epoch-path
     engine baseline — fan-out must no longer lose to one engine *)
  let router4_vs_engine = (find probe_runs 4).qps /. (find probe_runs 0).qps in
  let router1_vs_engine = (find probe_runs 1).qps /. (find probe_runs 0).qps in
  Output.row "@.probe-bound epoch: router4 vs engine %.2fx, router1 vs engine %.2fx@."
    router4_vs_engine router1_vs_engine;
  let oracle_clean =
    List.for_all (fun r -> r.oracle_clean) (scan_runs @ probe_runs @ locked_runs)
    && List.for_all (fun r -> r.sh_oracle) shaped_runs
  in
  (* the same stream must checksum identically whichever path served it *)
  let checksums_identical =
    List.for_all
      (fun (a, b) -> a.checksum = b.checksum && a.total_tuples = b.total_tuples)
      (List.combine probe_runs locked_runs)
  in
  if not checksums_identical then
    Fmt.epr "WARNING: epoch and locked probe paths disagree on the result stream@.";
  let json =
    Fmt.str
      {|{
  "experiment": "shard",
  "scale": %g,
  "seed": %d,
  "per_shard_view_capacity": %d,
  "host_cores": %d,
  "workload": "t1 zipf alpha=1.07, e=f=2",
  "runs": [%s],
  "speedup_4_shards": %.3f,
  "one_shard_router_vs_engine": %.3f,
  "probe_bound": {
    "probe_path": "epoch",
    "runs": [%s],
    "speedup_4_shards": %.3f,
    "one_shard_router_vs_engine": %.3f,
    "router4_vs_engine": %.3f,
    "router1_vs_engine": %.3f,
    "locked": {
      "runs": [%s],
      "speedup_4_shards": %.3f,
      "one_shard_router_vs_engine": %.3f
    },
    "checksums_identical": %b
  },
  "shaped": {
    "mix": "plain/grouped/ordered-k10/exists by query index",
    "runs": [%s],
    "checksums_identical": %b
  },
  "oracle_clean": %b
}
|}
      scale cfg.seed per_shard_capacity
      (Domain.recommended_domain_count ())
      (String.concat ", " (List.map json_of_run scan_runs))
      speedup_4 one_shard_ratio
      (String.concat ", " (List.map json_of_run probe_runs))
      probe_speedup_4 probe_one_shard_ratio router4_vs_engine router1_vs_engine
      (String.concat ", " (List.map json_of_run locked_runs))
      locked_speedup_4 locked_one_shard_ratio checksums_identical
      (String.concat ", " (List.map json_of_shaped shaped_runs))
      shaped_identical oracle_clean
  in
  let oc = open_out "BENCH_shard.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_shard.json@."
