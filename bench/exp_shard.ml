(* Shard scaling benchmark (DESIGN.md Section 11).

   Answers the same Zipf T1 query stream through the PMV pipeline at
   1/2/4 hash-partitioned shards, plus a plain single-engine baseline.
   The host is single-core, so any speedup is the sharding model
   itself, not parallelism: orders and lineitem are co-partitioned by
   the join key, so each shard's O3 joins its own 1/N partitions and
   the total join work shrinks with the shard count.

   Both join regimes are measured. The scan-bound regime — the
   lineitem_orderkey index dropped (in every configuration alike) and
   the template plan cache off, so the join edge executes as an
   index-nested loop over the suppkey posting lists — has per-probe
   cost proportional to partition size, exactly where co-partitioning
   pays; its speedups are the headline numbers. The probe-bound
   regime keeps the join-key index, so the inner probe touches only
   the ~4 matching lineitems regardless of partition size and sharding
   one core is pure fan-out overhead; it is reported alongside as the
   honest lower bound and backs the 1-shard no-regression gate.

   Every configuration answers the identical seeded query stream
   against identically generated data, so the result-multiset checksums
   must agree, and a sample of merged answers is judged oracle-clean
   by lib/check (multiset + DS exactly-once identity under summation).
   Results go to BENCH_shard.json. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Engine = Minirel_engine.Engine
module Router = Minirel_engine.Shard_router
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type cfg = { full : bool; seed : int; scale : float option }

type run_result = {
  label : string;
  shards : int;  (* 0 = plain engine baseline *)
  queries : int;
  wall_ns : int64;
  qps : float;
  pmv_queries : int;  (* every consulted shard answered through its view *)
  total_tuples : int;
  checksum : int;
  oracle_clean : bool;  (* sampled merged answers pass lib/check *)
}

let fresh_tpcr cfg ~scale =
  let pool = Buffer_pool.create ~capacity:8_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  (catalog, params)

(* One configuration: fresh data, fresh views, same query stream.
   [shards = 0] is the plain-engine baseline; otherwise a router over
   [shards] scoped engines, orders/lineitem hash-partitioned by the
   join key orderkey (co-partitioned, so T1 joins shard-locally). *)
let run_config cfg ~scale ~per_shard_capacity ~probe_bound ~shards =
  let catalog, params = fresh_tpcr cfg ~scale in
  (* join-edge regime, identically in every configuration (see the
     header comment): scan-bound drops the join-key index, probe-bound
     keeps it; the skeleton cache is off either way *)
  if not probe_bound then
    Catalog.drop_index catalog ~rel:"lineitem" ~name:"lineitem_orderkey";
  let t1 = Template.compile catalog Querygen.t1_spec in
  let uncache e =
    Minirel_exec.Plan_cache.set_enabled (Engine.plan_cache e) false
  in
  let label, answer =
    if shards = 0 then begin
      let engine = Engine.scoped ~catalog () in
      uncache engine;
      ignore (Engine.ensure_view ~capacity:per_shard_capacity ~f_max:3 engine t1);
      ("engine", fun inst ~on_tuple -> Engine.answer engine inst ~on_tuple)
    end
    else begin
      let router = Router.create ~shards () in
      List.iter
        (fun rel ->
          Router.declare router (Catalog.schema catalog rel)
            ~part:(`Hash "orderkey"))
        [ "orders"; "lineitem" ];
      Router.declare router (Catalog.schema catalog "customer") ~part:`Replicated;
      Router.load_from router catalog;
      List.iter uncache (Router.shards router);
      ignore (Router.create_view ~capacity:per_shard_capacity ~f_max:3 router t1);
      ( Fmt.str "router%d" shards,
        fun inst ~on_tuple -> Router.answer router inst ~on_tuple )
    end
  in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let gen rng i =
    ignore i;
    Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng
  in
  (* warmup: populate the views with the hot working set *)
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  let sink = ref 0 in
  let n_warm = if cfg.full then 400 else 100 in
  for i = 0 to n_warm - 1 do
    ignore (answer (gen warm_rng i) ~on_tuple:(fun _ _ -> incr sink))
  done;
  (* timed stream *)
  let n_queries = if cfg.full then 1_200 else 240 in
  let rng = SM.create ~seed:(cfg.seed + 2) in
  let instances = List.init n_queries (gen rng) in
  let checksum = ref 0 and total_tuples = ref 0 and pmv_queries = ref 0 in
  let t0 = Monotonic_clock.now () in
  List.iter
    (fun inst ->
      let _, via_view =
        answer inst ~on_tuple:(fun _ tuple ->
            incr total_tuples;
            checksum := !checksum + Tuple.hash tuple)
      in
      if via_view then incr pmv_queries)
    instances;
  let wall_ns = Int64.sub (Monotonic_clock.now ()) t0 in
  (* oracle: a sample of merged answers must be multiset-equal to the
     reference ground truth with the DS identity intact *)
  let oracle_rng = SM.create ~seed:(cfg.seed + 3) in
  let oracle_clean =
    List.for_all
      (fun inst ->
        Minirel_check.Check.report_ok
          (Minirel_check.Check.check_answer_via
             ~expected:(Minirel_check.Check.ground_truth catalog inst)
             (fun ~on_tuple -> fst (answer inst ~on_tuple))))
      (List.init 8 (gen oracle_rng))
  in
  {
    label;
    shards;
    queries = n_queries;
    wall_ns;
    qps = float_of_int n_queries /. (Int64.to_float wall_ns /. 1e9);
    pmv_queries = !pmv_queries;
    total_tuples = !total_tuples;
    checksum = !checksum;
    oracle_clean;
  }

let json_of_run r =
  Fmt.str
    {|{"label": %S, "shards": %d, "queries": %d, "wall_ns": %Ld, "queries_per_sec": %.1f, "pmv_queries": %d, "total_tuples": %d, "checksum": %d, "oracle_clean": %b}|}
    r.label r.shards r.queries r.wall_ns r.qps r.pmv_queries r.total_tuples
    r.checksum r.oracle_clean

(* One regime: all four configurations, the checksum cross-check, the
   printed table, and the regime's speedup ratios. *)
let run_regime cfg ~scale ~per_shard_capacity ~probe_bound =
  Output.row "@.regime: %s@."
    (if probe_bound then
       "probe-bound (join-key index kept — sharding is pure fan-out overhead)"
     else "scan-bound (join-key index dropped — co-partitioning shrinks join work)");
  let runs =
    List.map
      (fun shards -> run_config cfg ~scale ~per_shard_capacity ~probe_bound ~shards)
      [ 0; 1; 2; 4 ]
  in
  let baseline = List.hd runs in
  List.iter
    (fun r ->
      if r.checksum <> baseline.checksum || r.total_tuples <> baseline.total_tuples
      then
        Fmt.epr "WARNING: %s disagrees with the engine baseline (%d/%d tuples, %d/%d checksum)@."
          r.label r.total_tuples baseline.total_tuples r.checksum
          baseline.checksum)
    (List.tl runs);
  Output.row "%-9s %-7s %-9s %-12s %-9s %-9s %-8s@." "config" "shards" "queries"
    "queries/s" "via-pmv" "tuples" "oracle";
  List.iter
    (fun r ->
      Output.row "%-9s %-7d %-9d %-12.1f %-9d %-9d %-8s@." r.label r.shards
        r.queries r.qps r.pmv_queries r.total_tuples
        (if r.oracle_clean then "clean" else "VIOLATED"))
    runs;
  let find s = List.find (fun r -> r.shards = s) runs in
  let speedup_4 = (find 4).qps /. (find 1).qps in
  let one_shard_ratio = (find 1).qps /. baseline.qps in
  Output.row "speedup (4 shards vs 1): %.2fx@." speedup_4;
  Output.row "1-shard router vs plain engine: %.2fx@." one_shard_ratio;
  (runs, speedup_4, one_shard_ratio)

let run cfg =
  Output.header ~id:"Shard"
    ~title:"answer() throughput at 1/2/4 hash-partitioned shards"
    ~paper:
      "(extension) co-partitioned shards: each O3 joins its own 1/N \
       partitions, so total join work shrinks with the shard count";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.01 else 0.003) in
  let per_shard_capacity = if cfg.full then 400 else 200 in
  let scan_runs, speedup_4, one_shard_ratio =
    run_regime cfg ~scale ~per_shard_capacity ~probe_bound:false
  in
  let probe_runs, probe_speedup_4, probe_one_shard_ratio =
    run_regime cfg ~scale ~per_shard_capacity ~probe_bound:true
  in
  let oracle_clean =
    List.for_all (fun r -> r.oracle_clean) (scan_runs @ probe_runs)
  in
  let json =
    Fmt.str
      {|{
  "experiment": "shard",
  "scale": %g,
  "seed": %d,
  "per_shard_view_capacity": %d,
  "workload": "t1 zipf alpha=1.07, e=f=2",
  "runs": [%s],
  "speedup_4_shards": %.3f,
  "one_shard_router_vs_engine": %.3f,
  "probe_bound": {
    "runs": [%s],
    "speedup_4_shards": %.3f,
    "one_shard_router_vs_engine": %.3f
  },
  "oracle_clean": %b
}
|}
      scale cfg.seed per_shard_capacity
      (String.concat ", " (List.map json_of_run scan_runs))
      speedup_4 one_shard_ratio
      (String.concat ", " (List.map json_of_run probe_runs))
      probe_speedup_4 probe_one_shard_ratio oracle_clean
  in
  let oc = open_out "BENCH_shard.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_shard.json@."
