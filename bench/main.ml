(* Experiment harness: regenerates every table and figure of the paper
   plus the extra measured/ablation experiments (DESIGN.md Section 4).

   Usage:
     main.exe                 run everything at scaled-down defaults
     main.exe fig6 fig11      run selected experiments
     main.exe --full          paper-scale simulation/engine parameters
     main.exe --scale 0.05    override the TPC-R scale factor
*)

let experiments ~full ~seed ~scale ~domains =
  let sim = { Exp_sim.full; seed } in
  let ov = { Exp_overhead.full; seed; scale } in
  let mt = { Exp_maintain.full; seed } in
  [
    ("table1", fun () -> Exp_overhead.table1 ov);
    ("fig6", fun () -> Exp_sim.fig6 sim);
    ("fig7", fun () -> Exp_sim.fig7 sim);
    ("fig8", fun () -> Exp_overhead.fig8 ov);
    ("fig9", fun () -> Exp_overhead.fig9 ov);
    ("fig10", fun () -> Exp_overhead.fig10 ov);
    ("fig11", fun () -> Exp_maintain.fig11 mt);
    ("fig12", fun () -> Exp_maintain.fig12 mt);
    ("maintain-measured", fun () -> Exp_maintain.maintain_measured mt);
    ("ablation-policy", fun () -> Exp_sim.ablation_policy sim);
    ("ablation-aux", fun () -> Exp_maintain.ablation_aux mt);
    ("ablation-f", fun () -> Exp_sim.ablation_f sim);
    ("ablation-drift", fun () -> Exp_sim.ablation_drift sim);
    ("ablation-interval", fun () -> Exp_overhead.ablation_interval ov);
    ("sens-warmup", fun () -> Exp_sim.sens_warmup sim);
    ("micro", fun () -> Exp_micro.run ());
    ("plancache", fun () -> Exp_plancache.run { Exp_plancache.full; seed; scale });
    ("telemetry", fun () -> Exp_telemetry.run { Exp_telemetry.full; seed; scale });
    ( "observability",
      fun () -> Exp_observability.run { Exp_observability.full; seed; scale } );
    ("torture", fun () -> Exp_torture.run { Exp_torture.full; seed; scale });
    ("shard", fun () -> Exp_shard.run { Exp_shard.full; seed; scale });
    ("shapes", fun () -> Exp_shapes.run { Exp_shapes.full; seed; scale });
    ("adaptive", fun () -> Exp_adaptive.run { Exp_adaptive.full; seed; scale });
    ("parallel", fun () -> Exp_parallel.run { Exp_parallel.full; seed; scale; domains });
  ]

let run full scale seed domains names =
  let exps = experiments ~full ~seed ~scale ~domains in
  let selected =
    match names with
    | [] -> exps
    | _ ->
        List.map
          (fun n ->
            match List.assoc_opt n exps with
            | Some f -> (n, f)
            | None ->
                Fmt.epr "unknown experiment %S; available: %a@." n
                  Fmt.(list ~sep:comma string)
                  (List.map fst exps);
                exit 2)
          names
  in
  Fmt.pr "Partial Materialized Views (ICDE 2007) — experiment harness@.";
  Fmt.pr "mode: %s, seed %d%a@."
    (if full then "paper-scale (--full)" else "scaled-down defaults")
    seed
    Fmt.(option (fun ppf s -> Fmt.pf ppf ", scale %.3f" s))
    scale;
  List.iter (fun (_, f) -> f ()) selected;
  Fmt.pr "@.done.@."

open Cmdliner

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Run at the paper's simulation/engine sizes.")

let scale =
  Arg.(
    value
    & opt (some float) None
    & info [ "scale" ] ~docv:"S" ~doc:"TPC-R scale factor override for the engine experiments.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let domains =
  Arg.(
    value
    & opt int 4
    & info [ "domains" ] ~docv:"N"
        ~doc:"Largest Domain-pool size the parallel experiment sweeps to.")

let names =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "Experiments to run: table1 fig6 fig7 fig8 fig9 fig10 fig11 fig12 \
           maintain-measured ablation-policy ablation-aux ablation-f ablation-drift ablation-interval sens-warmup micro plancache telemetry observability torture shard shapes adaptive parallel. \
           Default: all.")

let cmd =
  let doc = "Regenerate the tables and figures of 'Partial Materialized Views' (ICDE 2007)" in
  Cmd.v (Cmd.info "pmv-bench" ~doc)
    Term.(const run $ full $ scale $ seed $ domains $ names)

let () = exit (Cmd.eval cmd)
