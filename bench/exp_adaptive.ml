(* Heavy-light adaptive maintenance + global UB budget arbitration
   (DESIGN.md Section 17).

   Experiment 1 — maintenance cost vs update skew. The same seeded
   stream of Zipf-skewed lineitem deletes (alpha = 1.2 on suppkey, the
   paper's skew regime) runs against three identically warmed views:
   eager delta-join (the paper's base maintenance algorithm), eager
   aux-index (the full version's optimisation), and adaptive — a
   count-min classifier keeps hot update keys eager through the aux
   index while deltas touching only light keys lapse their entries
   (recomputed on next probe) instead of walking victims. The base
   delete scan dominates Txn.run wall time, so each mode registers a
   timing hook in place of Maintain.attach and clocks only the
   maintenance call itself; maintenance throughput is changes per
   second of that hook time alone. Under skew most distinct keys are
   light, so adaptive must clear 1.5x the eager delta-join line — the
   check.sh gate — and the answers afterwards must still be
   oracle-exact (the lapse purge at reference time is the correctness
   hinge).

   Experiment 2 — budget arbitration across templates. Two templates
   (T1 hot, T2 cold) share one fixed UB byte pool. The static split
   halves it forever; the arbitrated run arms Manager.set_global_budget
   and lets the EMA hit-value-per-byte arbiter re-split L across the
   entry stores as the popularity skew reveals itself. Aggregate hit
   ratio at the same total budget must not fall below the static split.

   Results go to BENCH_adaptive.json. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Predicate = Minirel_query.Predicate
module Txn = Minirel_txn.Txn
module View = Pmv.View
module Maintain = Pmv.Maintain
module Manager = Pmv.Manager
module Check = Minirel_check.Check
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type cfg = { full : bool; seed : int; scale : float option }

(* --- Experiment 1: eager vs adaptive maintenance under skew --- *)

type mode = { m_label : string; m_strategy : Maintain.strategy; m_adaptive : bool }

let modes =
  [
    { m_label = "eager-dj"; m_strategy = Maintain.Delta_join; m_adaptive = false };
    { m_label = "eager-aux"; m_strategy = Maintain.Aux_index; m_adaptive = false };
    { m_label = "adaptive"; m_strategy = Maintain.Aux_index; m_adaptive = true };
  ]

type mlive = {
  ml_mode : mode;
  ml_catalog : Catalog.t;
  ml_mgr : Txn.t;
  ml_view : View.t;
  ml_t1 : Template.compiled;
  ml_maint_ns : int64 ref;  (* hook time accumulated this segment *)
  mutable ml_next : int;
  mutable ml_seg_walls : int64 list;  (* whole-Txn.run wall per segment *)
  mutable ml_maint_walls : int64 list;  (* maintenance-only wall per segment *)
}

(* Zipf-skewed deletes over lineitem's suppkey/quantity — both in the
   view's Ls', so every delete is maintenance-relevant and its victims'
   update keys follow the suppkey skew. All modes replay the identical
   pre-generated list against identically generated data. *)
let gen_deletes ~seed ~n_suppliers ~alpha ~count =
  let rng = SM.create ~seed:(seed + 13) in
  let zipf = Zipf.create ~n:n_suppliers ~alpha in
  Array.init count (fun _ ->
      Txn.Delete
        {
          rel = "lineitem";
          pred =
            Predicate.And
              [
                Predicate.Cmp (Predicate.Eq, 1, Value.Int (1 + Zipf.sample zipf rng));
                Predicate.Cmp (Predicate.Eq, 3, Value.Int (1 + SM.int rng ~bound:50));
              ];
        })

let setup_mode cfg ~scale mode =
  let pool = Buffer_pool.create ~capacity:8_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  let t1 = Template.compile catalog Querygen.t1_spec in
  let mgr = Txn.create catalog in
  let view = View.create ~capacity:2_000 ~f_max:3 ~name:"t1" t1 in
  if mode.m_adaptive then View.set_adaptive view (Some (Pmv.Adaptive.create ()));
  (* hand-rolled Maintain.attach (lock-free variant) with a stopwatch
     around the maintenance call: the hook does what attach's hook does
     — probe invalidation, then on_delta — but bills the time to
     [ml_maint_ns] so maintenance throughput can be read on its own,
     free of the base delete scan that dominates Txn.run *)
  let maint_ns = ref 0L in
  Minirel_txn.Txn.register_hook mgr ~name:"pmv:t1" (fun delta ->
      let t0 = Monotonic_clock.now () in
      View.invalidate_probe view;
      Maintain.on_delta ~strategy:mode.m_strategy view catalog delta;
      maint_ns := Int64.add !maint_ns (Int64.sub (Monotonic_clock.now ()) t0));
  (* warm the view so maintenance has cached tuples to defend *)
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let rng = SM.create ~seed:(cfg.seed + 7) in
  for _ = 1 to 200 do
    let inst = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
    ignore (Pmv.Answer.answer ~view catalog inst ~on_tuple:(fun _ _ -> ()))
  done;
  {
    ml_mode = mode;
    ml_catalog = catalog;
    ml_mgr = mgr;
    ml_view = view;
    ml_t1 = t1;
    ml_maint_ns = maint_ns;
    ml_next = 0;
    ml_seg_walls = [];
    ml_maint_walls = [];
  }

let run_maint_segment l ~changes ~seg_changes =
  l.ml_maint_ns := 0L;
  let t0 = Monotonic_clock.now () in
  for _ = 1 to seg_changes do
    ignore (Txn.run l.ml_mgr [ changes.(l.ml_next) ]);
    l.ml_next <- l.ml_next + 1
  done;
  l.ml_seg_walls <- Int64.sub (Monotonic_clock.now ()) t0 :: l.ml_seg_walls;
  l.ml_maint_walls <- !(l.ml_maint_ns) :: l.ml_maint_walls

let median_wall_s walls =
  let sorted = List.sort Int64.compare walls in
  Int64.to_float (List.nth sorted (List.length sorted / 2)) /. 1e9

let median_qps walls ~per_seg = float_of_int per_seg /. median_wall_s walls

(* Strict oracle after the churn: answers through the view (lapsed
   entries and all) must equal brute force exactly, and the view
   invariants must hold. *)
let oracle_mode cfg ~scale l =
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let rng = SM.create ~seed:(cfg.seed + 19) in
  List.for_all
    (fun _ ->
      let inst =
        Querygen.gen_t1 l.ml_t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng
      in
      Check.report_ok (Check.check_answer ~view:l.ml_view l.ml_catalog inst))
    (List.init 10 Fun.id)
  && Check.check_view l.ml_view l.ml_catalog = []

(* --- Experiment 2: global UB budget arbitration --- *)

(* One run at a fixed total UB: T1 takes [t1_share] of the query
   stream, T2 the rest. [arbitrated] arms the global budget with
   auto-rebalance; otherwise both templates keep the static half. *)
let budget_run cfg ~scale ~total_ub ~n_queries ~arbitrated =
  let pool = Buffer_pool.create ~capacity:8_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  let mgr = Manager.create ~default_f_max:3 catalog in
  let t1 = Template.compile catalog Querygen.t1_spec in
  let t2 = Template.compile catalog Querygen.t2_spec in
  let v1 = Manager.create_view ~ub_bytes:(total_ub / 2) mgr t1 in
  let v2 = Manager.create_view ~ub_bytes:(total_ub / 2) mgr t2 in
  if arbitrated then Manager.set_global_budget ~auto_every:200 mgr total_ub;
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let nz = Zipf.create ~n:params.Tpcr.n_nations ~alpha:1.07 in
  let rng = SM.create ~seed:(cfg.seed + 23) in
  for _ = 1 to n_queries do
    let inst =
      (* T1 hot (single-bcp queries keep the hit ratio a pure residency
         signal), T2 cold: the skew the arbiter should discover *)
      if SM.int rng ~bound:100 < 85 then
        Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:1 ~f:1 rng
      else
        Querygen.gen_t2 t2 ~dates_zipf:dz ~supp_zipf:sz ~nation_zipf:nz ~e:1 ~f:1
          ~g:1 rng
    in
    ignore (Manager.answer mgr inst ~on_tuple:(fun _ _ -> ()))
  done;
  let hits, queries =
    List.fold_left
      (fun (h, q) v ->
        let s = View.stats v in
        (h + s.View.query_hits, q + s.View.queries))
      (0, 0) [ v1; v2 ]
  in
  let hit_ratio = if queries = 0 then 0.0 else float_of_int hits /. float_of_int queries in
  (hit_ratio, Manager.rebalances mgr, Pmv.Entry_store.capacity (View.store v1),
   Pmv.Entry_store.capacity (View.store v2))

(* --- harness ----------------------------------------------------------- *)

let run cfg =
  Output.header ~id:"Adaptive"
    ~title:"heavy-light adaptive maintenance and global UB budget arbitration"
    ~paper:
      "(extension) skewed update streams leave most distinct update keys light: \
       lapsing their entries beats eager victim maintenance by >= 1.5x over the \
       delta-join baseline while answers stay oracle-exact; one arbitrated UB pool \
       must serve a skewed template mix at least as well as a frozen 50/50 split";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.02 else 0.008) in
  let seg_changes = if cfg.full then 300 else 150 in
  let n_segments = 3 in
  let n_changes = n_segments * seg_changes in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  let changes =
    gen_deletes ~seed:cfg.seed ~n_suppliers:params.Tpcr.n_suppliers ~alpha:1.2
      ~count:n_changes
  in
  let lives = List.map (setup_mode cfg ~scale) modes in
  (* paired interleaved segments: machine drift lands on every mode *)
  for _ = 1 to n_segments do
    List.iter (fun l -> run_maint_segment l ~changes ~seg_changes) lives
  done;
  let qps_of l = median_qps l.ml_seg_walls ~per_seg:seg_changes in
  let find label = List.find (fun l -> l.ml_mode.m_label = label) lives in
  let dj = find "eager-dj" and aux = find "eager-aux" and ad = find "adaptive" in
  let dj_qps = qps_of dj and aux_qps = qps_of aux and ad_qps = qps_of ad in
  (* maintenance-only cost: median per-segment hook time *)
  let maint_cost l = median_wall_s l.ml_maint_walls in
  let maint_qps l = float_of_int seg_changes /. maint_cost l in
  let dj_cost = maint_cost dj and aux_cost = maint_cost aux and ad_cost = maint_cost ad in
  let speedup = dj_cost /. ad_cost in
  let light_share =
    match View.adaptive ad.ml_view with
    | Some a ->
        let h = Pmv.Adaptive.n_heavy a and li = Pmv.Adaptive.n_light a in
        if h + li = 0 then 0.0 else float_of_int li /. float_of_int (h + li)
    | None -> 0.0
  in
  let store = View.store ad.ml_view in
  let lapsed = Pmv.Entry_store.n_lapse_marked store in
  let recomputed = Pmv.Entry_store.n_lapse_recomputed store in
  let oracle_clean = List.for_all (oracle_mode cfg ~scale) lives in
  Output.row "%-10s %-12s %-16s %-16s %-10s@." "mode" "txn/s" "maint ms/seg" "maint changes/s"
    "vs dj";
  List.iter
    (fun l ->
      Output.row "%-10s %-12.1f %-16.3f %-16.1f %-10.2f@." l.ml_mode.m_label (qps_of l)
        (1e3 *. maint_cost l) (maint_qps l)
        (dj_cost /. maint_cost l))
    lives;
  Output.row "light share %.2f, %d lapsed, %d recomputed, oracle %s@." light_share
    lapsed recomputed
    (if oracle_clean then "clean" else "VIOLATED");
  (* budget arbitration at one fixed pool *)
  let total_ub = if cfg.full then 120_000 else 60_000 in
  let n_queries = if cfg.full then 6_000 else 3_000 in
  let hit_static, _, sl1, sl2 =
    budget_run cfg ~scale ~total_ub ~n_queries ~arbitrated:false
  in
  let hit_arb, rebalances, al1, al2 =
    budget_run cfg ~scale ~total_ub ~n_queries ~arbitrated:true
  in
  let gain = hit_arb -. hit_static in
  Output.row
    "budget %d bytes: static hit %.3f (L %d/%d), arbitrated hit %.3f (L %d/%d, %d \
     rebalances)@."
    total_ub hit_static sl1 sl2 hit_arb al1 al2 rebalances;
  let json =
    Fmt.str
      {|{
  "experiment": "adaptive",
  "scale": %g,
  "seed": %d,
  "host_cores": %d,
  "maint_workload": "lineitem deletes, zipf alpha=1.2 on suppkey, %d changes",
  "txn_qps_dj": %.3f,
  "txn_qps_aux": %.3f,
  "txn_qps_adaptive": %.3f,
  "maint_cost_dj_ms": %.3f,
  "maint_cost_aux_ms": %.3f,
  "maint_cost_adaptive_ms": %.3f,
  "maint_qps_dj": %.3f,
  "maint_qps_aux": %.3f,
  "maint_qps_adaptive": %.3f,
  "speedup_adaptive_vs_dj": %.3f,
  "speedup_adaptive_vs_aux": %.3f,
  "light_share": %.4f,
  "lapsed": %d,
  "recomputed": %d,
  "oracle_clean": %b,
  "budget_total_ub": %d,
  "budget_queries": %d,
  "hit_static": %.4f,
  "hit_arbitrated": %.4f,
  "hit_ratio_gain": %.4f,
  "rebalances": %d
}
|}
      scale cfg.seed
      (Domain.recommended_domain_count ())
      n_changes dj_qps aux_qps ad_qps (1e3 *. dj_cost) (1e3 *. aux_cost)
      (1e3 *. ad_cost) (maint_qps dj) (maint_qps aux) (maint_qps ad) speedup
      (aux_cost /. ad_cost) light_share lapsed
      recomputed oracle_clean total_ub n_queries hit_static hit_arb gain rebalances
  in
  let oc = open_out "BENCH_adaptive.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_adaptive.json@."
