(* Telemetry overhead benchmark.

   The telemetry subsystem promises to be cheap enough to leave on:
   counters are single field updates, histograms one bucket increment,
   and span trees are 1-in-k sampled. This experiment measures that
   claim: one stack (fresh data, fresh views) is built and warmed, and
   then the same T1/T2 query stream runs with telemetry enabled and
   disabled under the paired interleaved-slice harness of
   bench/pairing.ml (slice-level pairing, rotating order, overhead
   from per-slice wall-time floors). The run fails its gate when
   enabling telemetry costs more than 5% throughput (tools/check.sh
   enforces this on BENCH_telemetry.json).

   Results are printed and written to BENCH_telemetry.json together
   with the final enabled-mode telemetry snapshot, so the bench output
   doubles as an example of whole-system observability. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Tm = Minirel_telemetry.Telemetry
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type cfg = { full : bool; seed : int; scale : float option }

type mode_result = {
  mode : string;
  queries : int;
  wall_ns : int64;  (* best repetition *)
  qps : float;
  reps : int;
  total_tuples : int;
  checksum : int;
}

let run cfg =
  Output.header ~id:"Telemetry"
    ~title:"answer() throughput with telemetry enabled vs disabled"
    ~paper:"(extension) observability overhead gate: counters+histograms+sampled spans";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.02 else 0.005) in
  (* one shared stack: the full shell-shaped surface (manager + plan
     cache + S locks), built and warmed once so both modes probe the
     same resident working set — rebuilding per mode measured allocator
     and buffer-pool state at least as much as telemetry *)
  let pool = Buffer_pool.create ~capacity:4_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  let t1 = Template.compile catalog Querygen.t1_spec in
  let t2 = Template.compile catalog Querygen.t2_spec in
  let manager = Pmv.Manager.create catalog in
  ignore (Pmv.Manager.create_view ~capacity:2_000 ~f_max:3 manager t1);
  ignore (Pmv.Manager.create_view ~capacity:2_000 ~f_max:3 manager t2);
  let locks = Minirel_txn.Lock_manager.create () in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let nz = Zipf.create ~n:params.Tpcr.n_nations ~alpha:1.07 in
  let gen rng i =
    if i mod 2 = 0 then Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng
    else Querygen.gen_t2 t2 ~dates_zipf:dz ~supp_zipf:sz ~nation_zipf:nz ~e:3 ~f:2 ~g:2 rng
  in
  let checksum = ref 0 and total_tuples = ref 0 in
  let answer inst =
    ignore
      (Pmv.Manager.answer ~locks manager inst ~on_tuple:(fun _ tuple ->
           incr total_tuples;
           checksum := !checksum + Tuple.hash tuple))
  in
  Tm.set_enabled true;
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  let n_warm = if cfg.full then 320 else 160 in
  for i = 0 to n_warm - 1 do
    answer (gen warm_rng i)
  done;
  let n_queries = if cfg.full then 2_560 else 1_280 in
  let rng = SM.create ~seed:(cfg.seed + 2) in
  let instances = Array.init n_queries (gen rng) in
  (* sliced interleaved pairing with contended-repetition rejection —
     the methodology lives in bench/pairing.ml *)
  let modes = [ "off"; "on" ] in
  let m =
    Pairing.measure ~modes
      ~set_mode:(fun mode -> Tm.set_enabled (mode = "on"))
      ~run:(fun i -> answer instances.(i))
      ~counters:(fun () -> (!total_tuples, !checksum))
      ~n:n_queries ()
  in
  Tm.set_enabled true;
  let result mode =
    let r = List.assoc mode m.Pairing.results in
    {
      mode;
      queries = n_queries;
      wall_ns = r.Pairing.wall_ns;
      qps = float_of_int n_queries /. (Int64.to_float r.Pairing.wall_ns /. 1e9);
      reps = m.Pairing.reps;
      total_tuples = r.Pairing.tuples;
      checksum = r.Pairing.checksum;
    }
  in
  let off = result "off" and on = result "on" in
  if on.checksum <> off.checksum || on.total_tuples <> off.total_tuples then
    Fmt.epr "WARNING: telemetry on/off runs disagree (%d/%d tuples, %d/%d checksum)@."
      on.total_tuples off.total_tuples on.checksum off.checksum;
  let regression_pct = m.Pairing.overhead_pct "on" in
  let pass = regression_pct < 5.0 in
  Output.row "%-10s %-9s %-12s %-9s@." "telemetry" "queries" "queries/s" "reps";
  List.iter
    (fun r -> Output.row "%-10s %-9d %-12.1f %-9d@." r.mode r.queries r.qps r.reps)
    [ off; on ];
  Output.row "overhead: %.2f%% throughput (gate: < 5%%, %s; %d/%d paired slices clean)@."
    regression_pct
    (if pass then "pass" else "FAIL")
    m.Pairing.clean_groups m.Pairing.groups;
  let json_of_mode r =
    Fmt.str
      {|{"queries": %d, "wall_ns": %Ld, "queries_per_sec": %.1f, "reps": %d, "total_tuples": %d, "checksum": %d}|}
      r.queries r.wall_ns r.qps r.reps r.total_tuples r.checksum
  in
  let json =
    Fmt.str
      {|{
  "experiment": "telemetry",
  "scale": %g,
  "seed": %d,
  "mix": "1:1 t1:t2 alternating, t1 e=f=2, t2 e=3 f=g=2",
  "off": %s,
  "on": %s,
  "regression_pct": %.3f,
  "clean_slices": %d,
  "pass": %b,
  "snapshot": %s
}
|}
      scale cfg.seed (json_of_mode off) (json_of_mode on) regression_pct
      m.Pairing.clean_groups pass
      (Minirel_telemetry.Export.json_string (Tm.snapshot ()))
  in
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_telemetry.json@."
