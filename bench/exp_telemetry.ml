(* Telemetry overhead benchmark.

   The telemetry subsystem promises to be cheap enough to leave on:
   counters are single field updates, histograms one bucket increment,
   and span trees are 1-in-k sampled. This experiment measures that
   claim: the same T1/T2 query mix (fresh data, fresh views, same
   seeds) runs with telemetry enabled and disabled back to back,
   several repetitions, and the overhead is the median of the
   per-repetition wall-time ratios (robust to host noise).
   The run fails its gate when enabling telemetry costs more than 5%
   throughput (tools/check.sh enforces this on BENCH_telemetry.json).

   Results are printed and written to BENCH_telemetry.json together
   with the final enabled-mode telemetry snapshot, so the bench output
   doubles as an example of whole-system observability. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Tm = Minirel_telemetry.Telemetry
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type cfg = { full : bool; seed : int; scale : float option }

type mode_result = {
  mode : string;
  queries : int;
  wall_ns : int64;  (* best repetition *)
  qps : float;
  reps : int;
  total_tuples : int;
  checksum : int;
}

(* One repetition: fresh data and views, the same query stream, the
   full shell-shaped stack (manager + plan cache + S locks). *)
let run_once cfg ~scale ~enabled =
  Tm.set_enabled enabled;
  let pool = Buffer_pool.create ~capacity:4_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  let t1 = Template.compile catalog Querygen.t1_spec in
  let t2 = Template.compile catalog Querygen.t2_spec in
  let manager = Pmv.Manager.create catalog in
  ignore (Pmv.Manager.create_view ~capacity:2_000 ~f_max:3 manager t1);
  ignore (Pmv.Manager.create_view ~capacity:2_000 ~f_max:3 manager t2);
  let locks = Minirel_txn.Lock_manager.create () in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let nz = Zipf.create ~n:params.Tpcr.n_nations ~alpha:1.07 in
  let gen rng i =
    if i mod 2 = 0 then Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng
    else Querygen.gen_t2 t2 ~dates_zipf:dz ~supp_zipf:sz ~nation_zipf:nz ~e:3 ~f:2 ~g:2 rng
  in
  let checksum = ref 0 and total_tuples = ref 0 in
  let answer inst =
    Pmv.Manager.answer ~locks manager inst ~on_tuple:(fun _ tuple ->
        incr total_tuples;
        checksum := !checksum + Tuple.hash tuple)
  in
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  let n_warm = if cfg.full then 160 else 80 in
  for i = 0 to n_warm - 1 do
    ignore (answer (gen warm_rng i))
  done;
  checksum := 0;
  total_tuples := 0;
  let n_queries = if cfg.full then 1_280 else 640 in
  let rng = SM.create ~seed:(cfg.seed + 2) in
  let instances = List.init n_queries (gen rng) in
  let t0 = Monotonic_clock.now () in
  List.iter (fun inst -> ignore (answer inst)) instances;
  let wall_ns = Int64.sub (Monotonic_clock.now ()) t0 in
  (n_queries, wall_ns, !total_tuples, !checksum)

let run cfg =
  Output.header ~id:"Telemetry"
    ~title:"answer() throughput with telemetry enabled vs disabled"
    ~paper:"(extension) observability overhead gate: counters+histograms+sampled spans";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.02 else 0.005) in
  (* each repetition pair is well under a second even at full scale,
     so a deep sweep is affordable and buys the median real margin *)
  let reps = 9 in
  (* The two modes run back to back within each repetition (order
     alternating across repetitions) so cache/allocator drift and slow
     host phases hit both equally. The overhead estimate is the median
     of the per-repetition wall-time ratios: pairing cancels load
     shifts that outlast a whole best-of sweep, and the median ignores
     a repetition that caught a noise spike in one mode only. The best
     wall per mode is still kept for the absolute-throughput rows. *)
  let best = Hashtbl.create 2 in
  let record mode ((_, wall, _, _) as r) =
    match Hashtbl.find_opt best mode with
    | Some (_, w, _, _) when Int64.compare w wall <= 0 -> ()
    | _ -> Hashtbl.replace best mode r
  in
  let ratios = ref [] in
  for rep = 1 to reps do
    let off_first = rep mod 2 = 1 in
    let r1 = run_once cfg ~scale ~enabled:(not off_first) in
    let r2 = run_once cfg ~scale ~enabled:off_first in
    let off_r, on_r = if off_first then (r1, r2) else (r2, r1) in
    record "off" off_r;
    record "on" on_r;
    let _, off_wall, _, _ = off_r and _, on_wall, _, _ = on_r in
    ratios := (Int64.to_float on_wall /. Int64.to_float off_wall) :: !ratios
  done;
  let median xs =
    let a = Array.of_list (List.sort compare xs) in
    a.(Array.length a / 2)
  in
  Tm.set_enabled true;
  let result mode =
    let q, wall, tuples, sum = Hashtbl.find best mode in
    {
      mode;
      queries = q;
      wall_ns = wall;
      qps = float_of_int q /. (Int64.to_float wall /. 1e9);
      reps;
      total_tuples = tuples;
      checksum = sum;
    }
  in
  let off = result "off" and on = result "on" in
  if on.checksum <> off.checksum || on.total_tuples <> off.total_tuples then
    Fmt.epr "WARNING: telemetry on/off runs disagree (%d/%d tuples, %d/%d checksum)@."
      on.total_tuples off.total_tuples on.checksum off.checksum;
  let regression_pct = (median !ratios -. 1.0) *. 100.0 in
  let pass = regression_pct < 5.0 in
  Output.row "%-10s %-9s %-12s %-9s@." "telemetry" "queries" "queries/s" "reps";
  List.iter
    (fun r -> Output.row "%-10s %-9d %-12.1f %-9d@." r.mode r.queries r.qps r.reps)
    [ off; on ];
  Output.row "overhead: %.2f%% throughput (gate: < 5%%, %s)@." regression_pct
    (if pass then "pass" else "FAIL");
  let json_of_mode r =
    Fmt.str
      {|{"queries": %d, "wall_ns": %Ld, "queries_per_sec": %.1f, "reps": %d, "total_tuples": %d, "checksum": %d}|}
      r.queries r.wall_ns r.qps r.reps r.total_tuples r.checksum
  in
  let json =
    Fmt.str
      {|{
  "experiment": "telemetry",
  "scale": %g,
  "seed": %d,
  "mix": "1:1 t1:t2 alternating, t1 e=f=2, t2 e=3 f=g=2",
  "off": %s,
  "on": %s,
  "regression_pct": %.3f,
  "pass": %b,
  "snapshot": %s
}
|}
      scale cfg.seed (json_of_mode off) (json_of_mode on) regression_pct pass
      (Minirel_telemetry.Export.json_string (Tm.snapshot ()))
  in
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_telemetry.json@."
