(* Parallel execution benchmark (DESIGN.md Section 12).

   Two sweeps over worker-domain counts, each configuration answering
   the identical seeded T1 stream against identically generated data,
   so the result streams must be checksum-identical to the sequential
   baseline:

   - fan-out: a 4-shard router over the exp_shard scan-bound setup
     (join-key index dropped, plan cache off) with a Domain pool of
     1/2/4 workers attached, plus a no-pool sequential baseline.
     Per-shard answers run concurrently on the pool and merge in shard
     order, so the delivered stream is tuple-for-tuple the sequential
     one; a sample of merged answers is judged oracle-clean by
     lib/check (multiset + DS exactly-once identity under summation).

   - morsel: a single catalog with the driver and join indexes
     dropped, so T1 plans as Scan -> Hash_join -> Hash_join and the
     executor runs heap scans and hash-join build/probe
     morsel-parallel on the pool. The parallel cursor's output list
     must equal the sequential one exactly (morsels merge in page
     order), and a sample is diffed against lib/check ground truth.

   - shaped fan-out: the same 4-shard router answers a deterministic
     mix of Section 3.6 shapes — plain, GROUP BY, ORDER BY LIMIT k,
     EXISTS — drawn by query index, so every domain count sees the
     identical shaped stream and the mixed checksums must agree.
     Grouped checksums cover group keys and counts only (AVG floats
     can differ in the last ulp between merge orders); ordered
     checksums fold the delivered prefix in order.

   Each pooled run embeds a snapshot of the work-stealing scheduler's
   counters (submitted / local hits / injector hits / steals / parks /
   task exceptions) so BENCH_parallel.json records how the morsels
   actually moved between domains.

   The host's available core count is recorded in the JSON. On hosts
   with fewer cores than the largest pool, wall-clock speedups are
   still reported but flagged not applicable — a 1-core container
   cannot exhibit multicore scaling and we do not fake it; tools/
   check.sh skips its speedup gate in that case. Checksum identity,
   oracle cleanliness and the sequential-overhead bound at 1 domain
   are asserted regardless of the host.

   Results go to BENCH_parallel.json. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Aggregate = Minirel_query.Aggregate
module Engine = Minirel_engine.Engine
module Router = Minirel_engine.Shard_router
module Pool = Minirel_parallel.Pool
module Check = Minirel_check.Check
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type cfg = { full : bool; seed : int; scale : float option; domains : int }

type run_result = {
  label : string;
  domains : int;  (* 0 = no pool attached (sequential baseline) *)
  queries : int;
  wall_ns : int64;
  qps : float;
  total_tuples : int;
  checksum : int;
  oracle_clean : bool;
  sched : Pool.stats option;  (* scheduler counters, pooled runs only *)
}

let fresh_tpcr cfg ~scale =
  let pool = Buffer_pool.create ~capacity:8_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  (catalog, params)

let gens params t1 =
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  fun rng -> Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng

(* Time [n_queries] answers of the seeded stream through [answer],
   after [n_warm] warmup answers; returns wall time plus the result
   multiset checksum the other configurations must reproduce. *)
let timed_stream cfg ~gen ~answer =
  let n_warm = if cfg.full then 400 else 100 in
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  for _ = 1 to n_warm do
    ignore (answer (gen warm_rng) ~on_tuple:(fun _ _ -> ()))
  done;
  let n_queries = if cfg.full then 1_200 else 240 in
  let rng = SM.create ~seed:(cfg.seed + 2) in
  let instances = List.init n_queries (fun _ -> gen rng) in
  let checksum = ref 0 and total_tuples = ref 0 in
  let t0 = Monotonic_clock.now () in
  List.iter
    (fun inst ->
      ignore
        (answer inst ~on_tuple:(fun _ tuple ->
             incr total_tuples;
             checksum := !checksum + Tuple.hash tuple)))
    instances;
  let wall_ns = Int64.sub (Monotonic_clock.now ()) t0 in
  (n_queries, wall_ns, !total_tuples, !checksum)

(* With a pool of [domains] workers attached to [router] (none when
   [domains = 0]), run the stream and oracle-check a sample of merged
   answers against the reference catalog. *)
let fanout_config cfg ~scale ~capacity ~domains =
  let catalog, params = fresh_tpcr cfg ~scale in
  Catalog.drop_index catalog ~rel:"lineitem" ~name:"lineitem_orderkey";
  let t1 = Template.compile catalog Querygen.t1_spec in
  let router = Router.create ~shards:4 () in
  List.iter
    (fun rel ->
      Router.declare router (Catalog.schema catalog rel) ~part:(`Hash "orderkey"))
    [ "orders"; "lineitem" ];
  Router.declare router (Catalog.schema catalog "customer") ~part:`Replicated;
  Router.load_from router catalog;
  List.iter
    (fun e -> Minirel_exec.Plan_cache.set_enabled (Engine.plan_cache e) false)
    (Router.shards router);
  ignore (Router.create_view ~capacity ~f_max:3 router t1);
  let pool = if domains >= 1 then Some (Pool.create ~domains) else None in
  Router.set_parallel router pool;
  let finally () =
    Router.set_parallel router None;
    Option.iter Pool.shutdown pool
  in
  Fun.protect ~finally @@ fun () ->
  let gen = gens params t1 in
  let answer inst ~on_tuple = Router.answer router inst ~on_tuple in
  let queries, wall_ns, total_tuples, checksum = timed_stream cfg ~gen ~answer in
  let oracle_rng = SM.create ~seed:(cfg.seed + 3) in
  let oracle_clean =
    List.for_all
      (fun inst ->
        Check.report_ok
          (Check.check_answer_via
             ~expected:(Check.ground_truth catalog inst)
             (fun ~on_tuple -> fst (answer inst ~on_tuple))))
      (List.init 8 (fun _ -> gen oracle_rng))
  in
  {
    label = (if domains = 0 then "seq" else Fmt.str "pool%d" domains);
    domains;
    queries;
    wall_ns;
    qps = float_of_int queries /. (Int64.to_float wall_ns /. 1e9);
    total_tuples;
    checksum;
    oracle_clean;
    sched = Option.map Pool.stats pool;
  }

(* Morsel sweep: drop every index T1 can drive or join through, so the
   plan is Scan(orders) -> Hash_join(lineitem) -> Hash_join(customer),
   and run the executor cursor directly with/without a pool. *)
let morsel_config cfg ~scale ~domains =
  let catalog, params = fresh_tpcr cfg ~scale in
  List.iter
    (fun (rel, name) -> Catalog.drop_index catalog ~rel ~name)
    [
      ("orders", "orders_orderdate");
      ("lineitem", "lineitem_suppkey");
      ("lineitem", "lineitem_orderkey");
      ("customer", "customer_custkey");
    ];
  let t1 = Template.compile catalog Querygen.t1_spec in
  let pool = if domains >= 1 then Some (Pool.create ~domains) else None in
  let finally () = Option.iter Pool.shutdown pool in
  Fun.protect ~finally @@ fun () ->
  let gen = gens params t1 in
  let run inst =
    Minirel_exec.Executor.run_to_list ?par:pool catalog
      (Minirel_exec.Planner.plan_query catalog inst)
  in
  let answer inst ~on_tuple =
    List.iter (on_tuple ()) (run inst);
    ()
  in
  let queries, wall_ns, total_tuples, checksum = timed_stream cfg ~gen ~answer in
  (* order identity: the parallel cursor must yield exactly the
     sequential list; plus a ground-truth multiset diff *)
  let oracle_rng = SM.create ~seed:(cfg.seed + 3) in
  let oracle_clean =
    List.for_all
      (fun inst ->
        let actual = run inst in
        let seq =
          Minirel_exec.Executor.run_to_list catalog
            (Minirel_exec.Planner.plan_query catalog inst)
        in
        actual = seq
        && Check.diff_is_empty
             (Check.diff_multiset ~expected:(Check.ground_truth catalog inst)
                ~actual))
      (List.init 8 (fun _ -> gen oracle_rng))
  in
  {
    label = (if domains = 0 then "seq" else Fmt.str "pool%d" domains);
    domains;
    queries;
    wall_ns;
    qps = float_of_int queries /. (Int64.to_float wall_ns /. 1e9);
    total_tuples;
    checksum;
    oracle_clean;
    sched = Option.map Pool.stats pool;
  }

(* Shaped fan-out sweep: the scan-bound 4-shard setup answers a mix of
   Section 3.6 shapes chosen deterministically by query index
   (plain / GROUP BY / ORDER BY LIMIT 10 / EXISTS in rotation), so the
   mixed checksum is a function of the data and the stream alone and
   must agree across domain counts. One answer per shape is judged
   against the unsharded reference. *)

(* AVG sums floats in shard order, so merged values may differ from the
   oracle's fold order in the last ulp: compare with a relative
   epsilon. *)
let value_close a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Float.abs (x -. y)
      <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> Value.compare a b = 0

let groups_agree expected actual =
  List.length expected = List.length actual
  && List.for_all2
       (fun (ek, evs) (ak, avs) ->
         Tuple.compare ek ak = 0 && Array.for_all2 value_close evs avs)
       expected actual

let shaped_config cfg ~scale ~capacity ~domains =
  let catalog, params = fresh_tpcr cfg ~scale in
  Catalog.drop_index catalog ~rel:"lineitem" ~name:"lineitem_orderkey";
  let t1 = Template.compile catalog Querygen.t1_spec in
  let router = Router.create ~shards:4 () in
  List.iter
    (fun rel ->
      Router.declare router (Catalog.schema catalog rel) ~part:(`Hash "orderkey"))
    [ "orders"; "lineitem" ];
  Router.declare router (Catalog.schema catalog "customer") ~part:`Replicated;
  Router.load_from router catalog;
  ignore (Router.create_view ~capacity ~f_max:3 router t1);
  let key, aggs, order =
    match Querygen.shapes_for t1 ~k:10 with
    | _ :: _ :: Querygen.Grouped { key; aggs } :: Querygen.Ordered { order; _ } :: _
      ->
        (key, aggs, order)
    | _ -> failwith "t1 must support the grouped and ordered shapes"
  in
  let pool = if domains >= 1 then Some (Pool.create ~domains) else None in
  Router.set_parallel router pool;
  let finally () =
    Router.set_parallel router None;
    Option.iter Pool.shutdown pool
  in
  Fun.protect ~finally @@ fun () ->
  let gen = gens params t1 in
  let n_warm = if cfg.full then 200 else 60 in
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  for _ = 1 to n_warm do
    ignore (Router.answer router (gen warm_rng) ~on_tuple:(fun _ _ -> ()))
  done;
  let n_queries = if cfg.full then 400 else 120 in
  let rng = SM.create ~seed:(cfg.seed + 2) in
  let instances = List.init n_queries (fun _ -> gen rng) in
  let checksum = ref 0 and total_tuples = ref 0 in
  let t0 = Monotonic_clock.now () in
  List.iteri
    (fun i inst ->
      match i mod 4 with
      | 0 ->
          ignore
            (Router.answer router inst ~on_tuple:(fun _ tuple ->
                 incr total_tuples;
                 checksum := !checksum + Tuple.hash tuple))
      | 1 ->
          let g, _ = Router.answer_grouped router inst ~key ~aggs in
          List.iter
            (fun (k, (accs : Aggregate.acc array)) ->
              incr total_tuples;
              checksum := !checksum + Tuple.hash k + accs.(0).Aggregate.n)
            g.Pmv.Extensions.g_groups
      | 2 ->
          let rows, _ = Router.answer_ordered_k router inst ~order ~k:10 in
          List.iteri
            (fun j t ->
              incr total_tuples;
              checksum := !checksum + ((j + 1) * Tuple.hash t))
            rows
      | _ ->
          let b, _ = Router.exists_ router inst in
          checksum := !checksum + (if b then 1 else 0))
    instances;
  let wall_ns = Int64.sub (Monotonic_clock.now ()) t0 in
  (* oracle: one answer per shape against the unsharded reference *)
  let oracle_rng = SM.create ~seed:(cfg.seed + 3) in
  let q = gen oracle_rng in
  let plain_ok =
    Check.report_ok
      (Check.check_answer_via ~expected:(Check.ground_truth catalog q)
         (fun ~on_tuple -> fst (Router.answer router q ~on_tuple)))
  in
  let grouped_ok =
    let g, _ = Router.answer_grouped router q ~key ~aggs in
    groups_agree
      (Check.ground_truth_grouped catalog q ~key ~aggs)
      (Pmv.Extensions.finalize_groups ~aggs g.Pmv.Extensions.g_groups)
  in
  let ordered_ok =
    let rows, _ = Router.answer_ordered_k router q ~order ~k:10 in
    List.equal Tuple.equal rows
      (Check.ground_truth_ordered catalog q ~order ~limit:10 ())
  in
  let exists_ok =
    fst (Router.exists_ router q) = Check.ground_truth_exists catalog q
  in
  {
    label = (if domains = 0 then "seq" else Fmt.str "pool%d" domains);
    domains;
    queries = n_queries;
    wall_ns;
    qps = float_of_int n_queries /. (Int64.to_float wall_ns /. 1e9);
    total_tuples = !total_tuples;
    checksum = !checksum;
    oracle_clean = plain_ok && grouped_ok && ordered_ok && exists_ok;
    sched = Option.map Pool.stats pool;
  }

let json_of_run r =
  let sched =
    match r.sched with
    | None -> ""
    | Some (s : Pool.stats) ->
        Fmt.str
          {|, "sched": {"submitted": %d, "local_hits": %d, "injector_hits": %d, "steals": %d, "parks": %d, "task_exns": %d}|}
          s.Pool.submitted s.Pool.local_hits s.Pool.injector_hits s.Pool.steals
          s.Pool.parks s.Pool.task_exns
  in
  Fmt.str
    {|{"label": %S, "domains": %d, "queries": %d, "wall_ns": %Ld, "queries_per_sec": %.1f, "total_tuples": %d, "checksum": %d, "oracle_clean": %b%s}|}
    r.label r.domains r.queries r.wall_ns r.qps r.total_tuples r.checksum
    r.oracle_clean sched

let print_sweep title runs =
  Output.row "@.%s@." title;
  Output.row "%-7s %-8s %-9s %-12s %-9s %-8s@." "config" "domains" "queries"
    "queries/s" "tuples" "oracle";
  List.iter
    (fun r ->
      Output.row "%-7s %-8d %-9d %-12.1f %-9d %-8s@." r.label r.domains r.queries
        r.qps r.total_tuples
        (if r.oracle_clean then "clean" else "VIOLATED"))
    runs;
  let baseline = List.hd runs in
  List.iter
    (fun r ->
      if r.checksum <> baseline.checksum || r.total_tuples <> baseline.total_tuples
      then
        Fmt.epr
          "WARNING: %s disagrees with the sequential baseline (%d/%d tuples, %d/%d checksum)@."
          r.label r.total_tuples baseline.total_tuples r.checksum baseline.checksum)
    (List.tl runs)

let run cfg =
  Output.header ~id:"Parallel"
    ~title:"Domain-pool speedups: shard fan-out and morsel-driven O3"
    ~paper:
      "(extension) true multicore: per-shard answers on worker domains with an \
       order-preserving merge; O3 heap scans and hash joins split into page \
       morsels";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.01 else 0.003) in
  let capacity = if cfg.full then 400 else 200 in
  let max_domains = max 1 cfg.domains in
  let domain_counts =
    (* 0 = no pool; 1 = pool attached but sequential (overhead bound) *)
    List.sort_uniq compare [ 0; 1; 2; max_domains ]
  in
  let cores = Domain.recommended_domain_count () in
  Output.row "host cores: %d (largest pool: %d)@." cores max_domains;
  let fanout =
    List.map (fun domains -> fanout_config cfg ~scale ~capacity ~domains) domain_counts
  in
  print_sweep "fan-out: 4 shards, scan-bound T1 stream" fanout;
  let morsel =
    List.map (fun domains -> morsel_config cfg ~scale ~domains) domain_counts
  in
  print_sweep "morsel: single catalog, Scan -> Hash_join x2 plan" morsel;
  let shaped =
    List.map (fun domains -> shaped_config cfg ~scale ~capacity ~domains) domain_counts
  in
  print_sweep "shaped: 4 shards, plain/grouped/ordered-k/exists mix" shaped;
  let find runs d = List.find (fun r -> r.domains = d) runs in
  let speedup runs d = (find runs d).qps /. (find runs 0).qps in
  let fanout_speedup = speedup fanout max_domains in
  let morsel_speedup = speedup morsel max_domains in
  let shaped_speedup = speedup shaped max_domains in
  let fanout_overhead_1 = speedup fanout 1 in
  let morsel_overhead_1 = speedup morsel 1 in
  let shaped_overhead_1 = speedup shaped 1 in
  let speedup_applicable = cores >= max_domains && max_domains >= 2 in
  let all = fanout @ morsel @ shaped in
  let oracle_clean = List.for_all (fun r -> r.oracle_clean) all in
  let checksums_identical =
    List.for_all (fun r -> r.checksum = (find fanout 0).checksum) fanout
    && List.for_all (fun r -> r.checksum = (find morsel 0).checksum) morsel
    && List.for_all (fun r -> r.checksum = (find shaped 0).checksum) shaped
  in
  Output.row "@.fan-out speedup (%d domains vs sequential): %.2fx@." max_domains
    fanout_speedup;
  Output.row "morsel speedup (%d domains vs sequential): %.2fx@." max_domains
    morsel_speedup;
  Output.row "shaped-mix speedup (%d domains vs sequential): %.2fx@." max_domains
    shaped_speedup;
  Output.row "1-domain pool vs no pool: fan-out %.2fx, morsel %.2fx, shaped %.2fx@."
    fanout_overhead_1 morsel_overhead_1 shaped_overhead_1;
  if not speedup_applicable then
    Output.row
      "(host has %d core(s) — speedups not applicable, reported for the record)@."
      cores;
  let json =
    Fmt.str
      {|{
  "experiment": "parallel",
  "scale": %g,
  "seed": %d,
  "workload": "t1 zipf alpha=1.07, e=f=2",
  "host_cores": %d,
  "max_domains": %d,
  "speedup_applicable": %b,
  "fanout": {
    "shards": 4,
    "spsc_tuple_batch": %d,
    "runs": [%s],
    "speedup_max_domains": %.3f,
    "overhead_1_domain": %.3f
  },
  "morsel": {
    "runs": [%s],
    "speedup_max_domains": %.3f,
    "overhead_1_domain": %.3f
  },
  "shaped": {
    "shards": 4,
    "mix": "plain/grouped/ordered-k10/exists by query index",
    "runs": [%s],
    "speedup_max_domains": %.3f,
    "overhead_1_domain": %.3f
  },
  "checksums_identical": %b,
  "oracle_clean": %b
}
|}
      scale cfg.seed cores max_domains speedup_applicable Router.tuple_batch
      (String.concat ", " (List.map json_of_run fanout))
      fanout_speedup fanout_overhead_1
      (String.concat ", " (List.map json_of_run morsel))
      morsel_speedup morsel_overhead_1
      (String.concat ", " (List.map json_of_run shaped))
      shaped_speedup shaped_overhead_1 checksums_identical oracle_clean
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_parallel.json@."
