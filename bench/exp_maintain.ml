(* Figures 11-12 (analytical maintenance model), the measured
   maintenance counterpart (extra A), and the aux-index ablation
   (extra C). *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Predicate = Minirel_query.Predicate
module Mv_cost = Minirel_matview.Mv_cost
module Matview = Minirel_matview.Matview
module Txn = Minirel_txn.Txn
module View = Pmv.View
module Maintain = Pmv.Maintain
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type config = { full : bool; seed : int }

let p_grid = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

(* --- Figure 11: total maintenance workload, analytical --- *)

let fig11 (_ : config) =
  let m = Mv_cost.default in
  Output.header ~id:"Figure 11" ~title:"maintenance workload TW vs insert fraction p (|ΔR|=1000)"
    ~paper:
      "log-scale: MV in the thousands of I/Os, PMV >= 2 orders of magnitude below; both \
       decrease as p grows; PMV reaches 0 at p=100% (idealized)";
  Output.row "%-6s %-14s %-14s %-18s@." "p" "MV (I/Os)" "PMV (I/Os)" "PMV idealized";
  List.iter
    (fun p ->
      Output.row "%-6.0f %-14.1f %-14.2f %-18.2f@." (100. *. p) (Mv_cost.tw_mv m ~p)
        (Mv_cost.tw_pmv m ~p)
        (Mv_cost.tw_pmv ~idealized:true m ~p))
    p_grid

(* --- Figure 12: speedup ratio, analytical --- *)

let fig12 (_ : config) =
  let m = Mv_cost.default in
  Output.header ~id:"Figure 12" ~title:"speedup of PMV over MV maintenance vs p"
    ~paper:"speedup increases with p, reaching several hundred as p -> 100%";
  Output.row "%-6s %-12s@." "p" "speedup";
  List.iter
    (fun p -> Output.row "%-6.0f %-12.1f@." (100. *. p) (Mv_cost.speedup m ~p))
    p_grid

(* --- Extra A: measured maintenance on the engine --- *)

(* Apply |ΔR| changes to lineitem with insert fraction p, returning the
   engine I/Os charged while the given view-maintenance mode is active,
   minus the cost of the base-table work itself (measured with no view). *)
let run_workload ~mode ~seed ~delta_size ~p scale =
  let pool = Buffer_pool.create ~capacity:4_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed scale in
  ignore (Tpcr.generate catalog params);
  let t1 = Template.compile catalog Querygen.t1_spec in
  let mgr = Txn.create catalog in
  (match mode with
  | `None -> ()
  | `Mv ->
      let mv = Matview.create catalog ~name:"t1" t1 in
      Matview.attach mv mgr
  | `Pmv strategy ->
      let view = View.create ~capacity:2_000 ~f_max:3 ~name:"t1" t1 in
      Maintain.attach ~strategy ~use_locks:false view mgr;
      (* warm the PMV so maintenance has something to do — through the
         Section 3.6 shape mix, not just plain probes: grouped and
         ordered traffic leaves aggregate memos and popularity state on
         the entries, so the delta stream is maintained against the
         same store a shaped workload would leave behind *)
      let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
      let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
      let rng = SM.create ~seed:(seed + 7) in
      for i = 1 to 150 do
        let inst = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
        match i mod 5 with
        | 1 ->
            ignore
              (Pmv.Extensions.answer_distinct ~view catalog inst
                 ~on_tuple:(fun _ _ -> ()))
        | 2 ->
            ignore
              (Pmv.Extensions.answer_grouped ~view catalog inst ~group_by:[| 0 |]
                 ~agg:Pmv.Extensions.Count)
        | 3 ->
            ignore
              (Pmv.Extensions.answer_ordered ~view catalog inst ~order_by:[| 0 |] ())
        | _ -> ignore (Pmv.Answer.answer ~view catalog inst ~on_tuple:(fun _ _ -> ()))
      done);
  let n_orders = (Tpcr.counts_of_scale scale).Tpcr.orders in
  let rng = SM.create ~seed:(seed + 13) in
  let stats = Buffer_pool.stats pool in
  let before = Io_stats.snapshot stats in
  let t0 = Monotonic_clock.now () in
  let next = ref 50_000_000 in
  for _ = 1 to delta_size do
    incr next;
    let change =
      if SM.float rng < p then
        Txn.Insert
          {
            rel = "lineitem";
            tuple =
              [|
                Value.Int (1 + SM.int rng ~bound:n_orders);
                Value.Int (1 + SM.int rng ~bound:params.Tpcr.n_suppliers);
                Value.Int 9;
                Value.Int 1;
                Value.Float 1.0;
                Value.Str "";
              |];
          }
      else
        Txn.Delete
          {
            rel = "lineitem";
            pred =
              Predicate.And
                [
                  Predicate.Cmp
                    (Predicate.Eq, 1, Value.Int (1 + SM.int rng ~bound:params.Tpcr.n_suppliers));
                  Predicate.Cmp (Predicate.Eq, 3, Value.Int (1 + SM.int rng ~bound:50));
                ];
          }
    in
    ignore (Txn.run mgr [ change ])
  done;
  let elapsed = Output.sec_of_ns (Int64.sub (Monotonic_clock.now ()) t0) in
  let io = Io_stats.diff ~before stats in
  (Io_stats.total io, elapsed)

let maintain_measured cfg =
  let scale = if cfg.full then 0.02 else 0.008 in
  let delta_size = if cfg.full then 600 else 250 in
  Output.header ~id:"Extra A"
    ~title:
      (Fmt.str "measured maintenance on the engine (|ΔR|=%d lineitem changes)" delta_size)
    ~paper:
      "validates Figure 11's shape: MV maintenance I/Os far above PMV's; both shrink as p \
       grows; PMV insert-only maintenance is free";
  Output.row "%-6s %-12s %-12s %-12s %-12s %-12s@." "p" "base I/Os" "MV extra" "PMV extra"
    "MV time(s)" "PMV time(s)";
  List.iter
    (fun p ->
      let base_io, base_t = run_workload ~mode:`None ~seed:cfg.seed ~delta_size ~p scale in
      let mv_io, mv_t = run_workload ~mode:`Mv ~seed:cfg.seed ~delta_size ~p scale in
      let pmv_io, pmv_t =
        run_workload ~mode:(`Pmv Maintain.Aux_index) ~seed:cfg.seed ~delta_size ~p scale
      in
      Output.row "%-6.0f %-12d %-12d %-12d %-12.4f %-12.4f@." (100. *. p) base_io
        (max 0 (mv_io - base_io))
        (max 0 (pmv_io - base_io))
        (Float.max 0. (mv_t -. base_t))
        (Float.max 0. (pmv_t -. base_t)))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

(* --- Extra C: aux-index vs delta-join deferred maintenance --- *)

let ablation_aux cfg =
  let scale = if cfg.full then 0.02 else 0.008 in
  let delta_size = if cfg.full then 400 else 150 in
  Output.header ~id:"Ablation C" ~title:"deferred maintenance strategy (deletes only, p=0)"
    ~paper:
      "(extra, full version's optimisation) aux-index avoids the delta join: fewer I/Os \
       and less time than delta-join maintenance";
  Output.row "%-12s %-12s %-12s@." "strategy" "extra I/Os" "time (s)";
  let base_io, base_t = run_workload ~mode:`None ~seed:cfg.seed ~delta_size ~p:0.0 scale in
  List.iter
    (fun (label, strategy) ->
      let io, t = run_workload ~mode:(`Pmv strategy) ~seed:cfg.seed ~delta_size ~p:0.0 scale in
      Output.row "%-12s %-12d %-12.4f@." label (max 0 (io - base_io)) (Float.max 0. (t -. base_t)))
    [ ("aux-index", Maintain.Aux_index); ("delta-join", Maintain.Delta_join) ]
