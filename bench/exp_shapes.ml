(* Section 3.6 query-shape benchmark: grouped-probe throughput at 1
   and 4 hash-partitioned shards.

   The measured loop asks the same Zipf T1 stream in grouped form
   (GROUP BY orderkey with COUNT/SUM/MIN/MAX/AVG over the money
   columns) under the Epoch read path. After warmup the router-level
   probe cache holds every hot bcp's merged answer, so a grouped query
   folds its groups straight out of the cache segments
   ([Router.probe_grouped]) without touching any shard engine; misses
   fall back to the fan-out merge ([Router.answer_grouped]), which is
   how the cache fills. Per-query fast-path work is proportional to
   the result size, not the shard count, so 4-shard throughput must
   hold the 1-shard line — that ratio is the gate in check.sh.

   Both configurations answer the identical seeded stream over
   identically generated data; group-key checksums must agree, and a
   sample of merged grouped answers (plus one answer per remaining
   shape) is judged against the brute-force oracle. Results go to
   BENCH_shapes.json. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Instance = Minirel_query.Instance
module Aggregate = Minirel_query.Aggregate
module Ordering = Minirel_query.Ordering
module Router = Minirel_engine.Shard_router
module Check = Minirel_check.Check
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type cfg = { full : bool; seed : int; scale : float option }

type run_result = {
  label : string;
  shards : int;
  queries : int;
  qps : float;
  fast_hits : int;  (* grouped answers folded from the router cache *)
  fallbacks : int;  (* grouped answers that fanned out and merged *)
  groups_checksum : int;
  oracle_clean : bool;
}

(* AVG sums floats in shard order, so merged values may differ from the
   oracle's fold order in the last ulp: compare with a relative
   epsilon. *)
let value_close a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Float.abs (x -. y)
      <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> Value.compare a b = 0

let groups_agree expected actual =
  List.length expected = List.length actual
  && List.for_all2
       (fun (ek, evs) (ak, avs) ->
         Tuple.compare ek ak = 0 && Array.for_all2 value_close evs avs)
       expected actual

type live = {
  l_label : string;
  l_shards : int;
  l_catalog : Catalog.t;  (* unsharded reference, the oracle's input *)
  l_router : Router.t;
  l_t1 : Template.compiled;
  l_key : int array;
  l_aggs : Aggregate.spec array;
  l_order : Ordering.key array;
  l_instances : Instance.t array;
  l_gen : SM.t -> Instance.t;
  mutable l_next : int;
  mutable l_seg_walls : int64 list;
  mutable l_fast_hits : int;
  mutable l_fallbacks : int;
  mutable l_checksum : int;
}

(* The grouped answer one way or the other: cache fold when every bcp
   holds a trusted version, fan-out merge otherwise. *)
let grouped_once l inst =
  match Router.probe_grouped l.l_router inst ~key:l.l_key ~aggs:l.l_aggs with
  | Some acc ->
      l.l_fast_hits <- l.l_fast_hits + 1;
      acc
  | None ->
      l.l_fallbacks <- l.l_fallbacks + 1;
      let g, _ = Router.answer_grouped l.l_router inst ~key:l.l_key ~aggs:l.l_aggs in
      g.Pmv.Extensions.g_groups

let setup_config cfg ~scale ~per_shard_capacity ~n_queries ~shards =
  let pool = Buffer_pool.create ~capacity:8_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  let t1 = Template.compile catalog Querygen.t1_spec in
  let router = Router.create ~shards () in
  List.iter
    (fun rel ->
      Router.declare router (Catalog.schema catalog rel) ~part:(`Hash "orderkey"))
    [ "orders"; "lineitem" ];
  Router.declare router (Catalog.schema catalog "customer") ~part:`Replicated;
  Router.load_from router catalog;
  ignore (Router.create_view ~capacity:per_shard_capacity ~f_max:3 router t1);
  Router.set_probe_path router Pmv.Answer.Epoch;
  let key, aggs, order =
    match Querygen.shapes_for t1 ~k:10 with
    | _ :: _ :: Querygen.Grouped { key; aggs } :: Querygen.Ordered { order; _ } :: _ ->
        (key, aggs, order)
    | _ -> failwith "t1 must support the grouped and ordered shapes"
  in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let gen rng = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
  (* warm through the plain epoch answer: fallbacks install each exact
     bcp's merged answer into the router cache, and the grouped probe
     reads the same segments. Warm until the hot bcp set is resident —
     the fast path needs every one of a query's h bcps present. *)
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  let n_warm = if cfg.full then 2_000 else 1_000 in
  for _ = 1 to n_warm do
    ignore (Router.answer router (gen warm_rng) ~on_tuple:(fun _ _ -> ()))
  done;
  let rng = SM.create ~seed:(cfg.seed + 2) in
  {
    l_label = Fmt.str "router%d" shards;
    l_shards = shards;
    l_catalog = catalog;
    l_router = router;
    l_t1 = t1;
    l_key = key;
    l_aggs = aggs;
    l_order = order;
    l_instances = Array.init n_queries (fun _ -> gen rng);
    l_gen = gen;
    l_next = 0;
    l_seg_walls = [];
    l_fast_hits = 0;
    l_fallbacks = 0;
    l_checksum = 0;
  }

(* Answer the next [seg_queries] grouped queries, timed as one
   segment. The checksum covers group keys and counts only — AVG
   floats may differ in the last ulp between shard counts. *)
let run_segment l ~seg_queries =
  let t0 = Monotonic_clock.now () in
  for _ = 1 to seg_queries do
    let inst = l.l_instances.(l.l_next) in
    l.l_next <- l.l_next + 1;
    let groups = grouped_once l inst in
    List.iter
      (fun (k, (accs : Aggregate.acc array)) ->
        l.l_checksum <- l.l_checksum + Tuple.hash k + accs.(0).Aggregate.n)
      groups
  done;
  l.l_seg_walls <- Int64.sub (Monotonic_clock.now ()) t0 :: l.l_seg_walls

(* Oracle the shapes end to end on this configuration: a sample of
   grouped answers plus one DISTINCT, one ORDER BY first-k and one
   EXISTS, all against the unsharded reference. *)
let oracle_shapes cfg l =
  let rng = SM.create ~seed:(cfg.seed + 3) in
  let grouped_ok =
    List.for_all
      (fun inst ->
        let groups = grouped_once l inst in
        groups_agree
          (Check.ground_truth_grouped l.l_catalog inst ~key:l.l_key ~aggs:l.l_aggs)
          (Pmv.Extensions.finalize_groups ~aggs:l.l_aggs groups))
      (List.init 8 (fun _ -> l.l_gen rng))
  in
  let q = l.l_gen rng in
  let distinct_ok =
    let seen = Tuple.Table.create 64 and out = ref [] in
    ignore
      (Router.answer l.l_router q ~on_tuple:(fun _ t ->
           if not (Tuple.Table.mem seen t) then begin
             Tuple.Table.replace seen t ();
             out := t :: !out
           end));
    let expect = Check.ground_truth_distinct l.l_catalog q in
    List.length !out = List.length expect
    && List.equal Tuple.equal
         (List.sort Tuple.compare !out)
         (List.sort Tuple.compare expect)
  in
  let ordered_ok =
    let k = 10 in
    let rows, _ = Router.answer_ordered_k l.l_router q ~order:l.l_order ~k in
    List.equal Tuple.equal rows
      (Check.ground_truth_ordered l.l_catalog q ~order:l.l_order ~limit:k ())
  in
  let exists_ok = fst (Router.exists_ l.l_router q) = Check.ground_truth_exists l.l_catalog q in
  grouped_ok && distinct_ok && ordered_ok && exists_ok

let finish_config cfg ~seg_queries l =
  let median_seg_wall =
    let sorted = List.sort Int64.compare l.l_seg_walls in
    List.nth sorted (List.length sorted / 2)
  in
  let qps = float_of_int seg_queries /. (Int64.to_float median_seg_wall /. 1e9) in
  {
    label = l.l_label;
    shards = l.l_shards;
    queries = l.l_next;
    qps;
    fast_hits = l.l_fast_hits;
    fallbacks = l.l_fallbacks;
    groups_checksum = l.l_checksum;
    oracle_clean = oracle_shapes cfg l;
  }

let json_of_run r =
  Fmt.str
    {|{"label": %S, "shards": %d, "queries": %d, "queries_per_sec": %.1f, "fast_hits": %d, "fallbacks": %d, "groups_checksum": %d, "oracle_clean": %b}|}
    r.label r.shards r.queries r.qps r.fast_hits r.fallbacks r.groups_checksum
    r.oracle_clean

let run cfg =
  Output.header ~id:"Shapes"
    ~title:"grouped-probe throughput at 1 and 4 shards (Section 3.6 shapes)"
    ~paper:
      "(extension) grouped answers fold per-group accumulators out of the \
       router's probe-cache segments; fan-out merges shard partials on a miss, \
       so shard count must not tax the grouped serving path";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.01 else 0.003) in
  let per_shard_capacity = if cfg.full then 400 else 200 in
  (* paired interleaved segments, median per configuration: machine
     drift lands on both shard counts alike *)
  let n_segments = 3 in
  let seg_queries = if cfg.full then 1_200 else 600 in
  let n_queries = n_segments * seg_queries in
  let lives =
    List.map
      (fun shards -> setup_config cfg ~scale ~per_shard_capacity ~n_queries ~shards)
      [ 1; 4 ]
  in
  for _ = 1 to n_segments do
    List.iter (fun l -> run_segment l ~seg_queries) lives
  done;
  let runs = List.map (finish_config cfg ~seg_queries) lives in
  (match runs with
  | [ a; b ] ->
      if a.groups_checksum <> b.groups_checksum then
        Fmt.epr "WARNING: 1-shard and 4-shard grouped streams disagree (%d vs %d)@."
          a.groups_checksum b.groups_checksum
  | _ -> ());
  Output.row "%-9s %-7s %-9s %-12s %-10s %-10s %s@." "config" "shards" "queries"
    "queries/s" "fast-hits" "fallbacks" "oracle";
  List.iter
    (fun r ->
      Output.row "%-9s %-7d %-9d %-12.1f %-10d %-10d %s@." r.label r.shards r.queries
        r.qps r.fast_hits r.fallbacks
        (if r.oracle_clean then "clean" else "VIOLATED"))
    runs;
  let find s = List.find (fun r -> r.shards = s) runs in
  let qps1 = (find 1).qps and qps4 = (find 4).qps in
  let speedup = qps4 /. qps1 in
  Output.row "grouped-probe qps: 1 shard %.1f, 4 shards %.1f (%.2fx)@." qps1 qps4 speedup;
  let oracle_clean = List.for_all (fun r -> r.oracle_clean) runs in
  let json =
    Fmt.str
      {|{
  "experiment": "shapes",
  "scale": %g,
  "seed": %d,
  "per_shard_view_capacity": %d,
  "host_cores": %d,
  "workload": "t1 zipf alpha=1.07, e=f=2, grouped by orderkey: count/sum/min/max/avg",
  "runs": [%s],
  "qps_1_shard": %.3f,
  "qps_4_shard": %.3f,
  "speedup_4_vs_1": %.3f,
  "oracle_clean": %b
}
|}
      scale cfg.seed per_shard_capacity
      (Domain.recommended_domain_count ())
      (String.concat ", " (List.map json_of_run runs))
      qps1 qps4 speedup oracle_clean
  in
  let oc = open_out "BENCH_shapes.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_shapes.json@."
