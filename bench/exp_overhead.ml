(* Table 1 and Figures 8-10: the engine experiments of Section 4.2 —
   PMV overhead vs F, vs combination factor h, and vs database scale,
   on TPC-R-shaped data with templates T1 and T2. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Instance = Minirel_query.Instance
module View = Pmv.View
module Answer = Pmv.Answer
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type config = { full : bool; seed : int; scale : float option }

let base_scale cfg =
  match cfg.scale with Some s -> s | None -> if cfg.full then 0.1 else 0.02

let pmv_capacity cfg = if cfg.full then 20_000 else 2_000
let n_warm cfg = if cfg.full then 1_500 else 400
let n_measure cfg = if cfg.full then 600 else 200

type env = {
  catalog : Catalog.t;
  params : Tpcr.params;
  t1 : Template.compiled;
  t2 : Template.compiled;
  dates_zipf : Zipf.t;
  supp_zipf : Zipf.t;
  nation_zipf : Zipf.t;
}

let build_env ?pool_pages ~seed scale =
  (* the paper's 1000-page buffer pool is small relative to its data;
     keep the same relationship at any scale: the pool holds roughly
     half of the heap pages, so cold access paths actually miss *)
  let pool_pages =
    match pool_pages with
    | Some p -> p
    | None ->
        let c = Tpcr.counts_of_scale scale in
        let data_pages = (c.Tpcr.lineitems + c.Tpcr.orders + c.Tpcr.customers) / 64 in
        max 200 (data_pages / 2)
  in
  let pool = Buffer_pool.create ~capacity:pool_pages () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed scale in
  let _counts = Tpcr.generate catalog params in
  {
    catalog;
    params;
    t1 = Template.compile catalog Querygen.t1_spec;
    t2 = Template.compile catalog Querygen.t2_spec;
    dates_zipf = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07;
    supp_zipf = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07;
    nation_zipf = Zipf.create ~n:params.Tpcr.n_nations ~alpha:1.01;
  }

type which = T1 | T2

let which_to_string = function T1 -> "T1" | T2 -> "T2"

type averages = {
  overhead_s : float;  (* mean per-query PMV overhead, seconds *)
  exec_s : float;  (* mean engine CPU execution time, seconds *)
  io : float;  (* mean logical I/Os per query *)
  hit : float;  (* fraction of measured queries with a PMV hit *)
  partials : float;  (* mean partial tuples per query *)
  results : float;  (* mean result tuples per query *)
  first_partial_s : float option;  (* mean time to first PMV tuple *)
}

(* Disk seek+read cost used to price a logical I/O when modelling the
   paper's 2005-era disk-bound execution times. *)
let io_cost_s = 5e-3

let modeled_exec_s r = r.exec_s +. (io_cost_s *. r.io)

(* The paper's controlled protocol (Section 4.2): the PMV holds entries
   with F result tuples each, and "one of these h basic condition parts
   exists in the PMV". We realise it in two phases:

   1. warm: issue single-bcp queries for candidate parameter combos;
      remember the combos whose bcp ended up cached with tuples;
   2. measure: per query, embed one warm combo plus cold disjuncts so
      the combination factor is exactly h = e * f * g. *)

let instance_of env which dates supps nations =
  let values xs = Instance.Dvalues (List.map (fun i -> Value.Int i) xs) in
  match which with
  | T1 -> Instance.make env.t1 [| values dates; values supps |]
  | T2 -> Instance.make env.t2 [| values dates; values supps; values nations |]

let bcp_of_combo which (d, s, n) : Minirel_query.Bcp.t =
  match which with
  | T1 -> [| Value.Int d; Value.Int s |]
  | T2 -> [| Value.Int d; Value.Int s; Value.Int n |]

let warm_hot_combos env which view ~n_hot ~seed =
  let rng = SM.create ~seed in
  let store = View.store view in
  let hot = ref [] and found = ref 0 and tries = ref 0 in
  while !found < n_hot && !tries < 60 * n_hot do
    incr tries;
    let d = 1 + Zipf.sample env.dates_zipf rng in
    let s = 1 + Zipf.sample env.supp_zipf rng in
    let n = Zipf.sample env.nation_zipf rng in
    let inst = instance_of env which [ d ] [ s ] [ n ] in
    ignore (Answer.answer ~view env.catalog inst ~on_tuple:(fun _ _ -> ()));
    match Pmv.Entry_store.find store (bcp_of_combo which (d, s, n)) with
    | Some entry when entry.Pmv.Entry_store.n > 0 ->
        if not (List.mem (d, s, n) !hot) then begin
          hot := (d, s, n) :: !hot;
          incr found
        end
    | Some _ | None -> ()
  done;
  Array.of_list !hot

(* [k] values drawn uniformly from [1, bound] (or [0, bound) when
   [zero_based]), all distinct and different from [avoid]. *)
let cold_values rng ~bound ~avoid ~k ~zero_based =
  let lo = if zero_based then 0 else 1 in
  let hi = if zero_based then bound - 1 else bound in
  let rec go acc got tries =
    if got >= k || tries > 500 * (k + 1) then acc
    else
      let v = SM.int_range rng ~lo ~hi in
      if v = avoid || List.mem v acc then go acc got (tries + 1)
      else go (v :: acc) (got + 1) (tries + 1)
  in
  go [] 0 0

let run_shape env which ~e ~f ~g ~f_max ~capacity ~warm ~measure ~seed =
  let compiled = match which with T1 -> env.t1 | T2 -> env.t2 in
  let view =
    View.create ~f_max ~capacity
      ~name:(Fmt.str "%s_F%d_h%d" (which_to_string which) f_max (e * f * g))
      compiled
  in
  let n_hot = min capacity (max 16 (warm / 4)) in
  let hot = warm_hot_combos env which view ~n_hot ~seed in
  if Array.length hot = 0 then
    invalid_arg "run_shape: no hot bcps could be warmed; scale too small";
  let rng = SM.create ~seed:(seed + 1) in
  let acc_overhead = ref 0.0
  and acc_exec = ref 0.0
  and acc_io = ref 0
  and acc_hits = ref 0
  and acc_partials = ref 0
  and acc_results = ref 0
  and acc_first = ref 0.0
  and n_first = ref 0 in
  for _ = 1 to measure do
    let d, s, n = hot.(SM.int rng ~bound:(Array.length hot)) in
    let dates = d :: cold_values rng ~bound:env.params.Tpcr.n_dates ~avoid:d ~k:(e - 1) ~zero_based:false in
    let supps = s :: cold_values rng ~bound:env.params.Tpcr.n_suppliers ~avoid:s ~k:(f - 1) ~zero_based:false in
    let nations = n :: cold_values rng ~bound:env.params.Tpcr.n_nations ~avoid:n ~k:(g - 1) ~zero_based:true in
    let inst = instance_of env which dates supps nations in
    let st = Answer.answer ~view env.catalog inst ~on_tuple:(fun _ _ -> ()) in
    acc_overhead := !acc_overhead +. Output.sec_of_ns st.Answer.overhead_ns;
    acc_exec := !acc_exec +. Output.sec_of_ns st.Answer.exec_ns;
    acc_io := !acc_io + st.Answer.io_reads + st.Answer.io_writes;
    if st.Answer.probe_hits > 0 then incr acc_hits;
    acc_partials := !acc_partials + st.Answer.partial_count;
    acc_results := !acc_results + st.Answer.total_count;
    match st.Answer.first_partial_ns with
    | Some ns ->
        acc_first := !acc_first +. Output.sec_of_ns ns;
        incr n_first
    | None -> ()
  done;
  ignore compiled;
  let m = float_of_int measure in
  {
    overhead_s = !acc_overhead /. m;
    exec_s = !acc_exec /. m;
    io = float_of_int !acc_io /. m;
    hit = float_of_int !acc_hits /. m;
    partials = float_of_int !acc_partials /. m;
    results = float_of_int !acc_results /. m;
    first_partial_s = (if !n_first = 0 then None else Some (!acc_first /. float_of_int !n_first));
  }

(* --- Table 1 --- *)

let table1 cfg =
  let s = base_scale cfg in
  Output.header ~id:"Table 1" ~title:"test data set"
    ~paper:"customer 0.15M*s / 23s MB, orders 1.5M*s / 114s MB, lineitem 6M*s / 755s MB";
  Output.row "%-10s %-14s %-12s (paper formula at s=1)@." "relation" "tuples" "MB";
  List.iter
    (fun r ->
      Output.row "%-10s %-14d %-12.1f@." r.Tpcr.relation r.Tpcr.tuples r.Tpcr.nominal_mb)
    (Tpcr.table1 ~scale:1.0 ());
  Fmt.pr "@.generated at this run's scale s=%.3f:@." s;
  let env = build_env ~seed:cfg.seed s in
  Output.row "%-10s %-14s %-12s@." "relation" "tuples" "MB (measured)";
  List.iter
    (fun r ->
      Output.row "%-10s %-14d %-12.2f@." r.Tpcr.relation r.Tpcr.tuples
        (match r.Tpcr.actual_bytes with
        | Some b -> float_of_int b /. 1e6
        | None -> 0.0))
    (Tpcr.table1 ~catalog:env.catalog ~scale:s ());
  Fmt.pr "selection domains: %d orderdates, %d suppliers, %d nations@."
    env.params.Tpcr.n_dates env.params.Tpcr.n_suppliers env.params.Tpcr.n_nations

(* --- Figure 8: overhead vs F (h = 4, s fixed) --- *)

let fig8 cfg =
  let env = build_env ~seed:cfg.seed (base_scale cfg) in
  Output.header ~id:"Figure 8" ~title:"PMV overhead vs tuples-per-bcp F (h=4)"
    ~paper:"overhead grows with F; T2 above T1; magnitude ~1e-5..5e-5 s";
  Output.row "%-4s %-15s %-15s %-8s %-8s %-12s %-12s@." "F" "T1 ovh(s)" "T2 ovh(s)"
    "T1 res" "T2 res" "T1 ns/res" "T2 ns/res";
  List.iter
    (fun f_max ->
      let r1 =
        run_shape env T1 ~e:2 ~f:2 ~g:1 ~f_max ~capacity:(pmv_capacity cfg)
          ~warm:(n_warm cfg) ~measure:(n_measure cfg) ~seed:(cfg.seed + f_max)
      in
      let r2 =
        run_shape env T2 ~e:2 ~f:2 ~g:1 ~f_max ~capacity:(pmv_capacity cfg)
          ~warm:(n_warm cfg) ~measure:(n_measure cfg) ~seed:(cfg.seed + 50 + f_max)
      in
      let per_res r = 1e9 *. r.overhead_s /. Float.max 1.0 r.results in
      Output.row "%-4d %-15.7f %-15.7f %-8.1f %-8.1f %-12.0f %-12.0f@." f_max r1.overhead_s
        r2.overhead_s r1.results r2.results (per_res r1) (per_res r2))
    [ 1; 2; 3; 4; 5 ]

(* --- Figure 9: overhead vs combination factor h (F = 3) --- *)

(* h decompositions into (e, f) for T1 and (e, f, g) for T2 *)
let t1_shapes = [ (1, 1); (2, 1); (3, 1); (2, 2); (5, 1); (3, 2); (7, 1); (4, 2); (3, 3); (5, 2) ]
let t2_shapes =
  [
    (1, 1, 1); (2, 1, 1); (3, 1, 1); (2, 2, 1); (5, 1, 1);
    (3, 2, 1); (7, 1, 1); (2, 2, 2); (3, 3, 1); (5, 2, 1);
  ]

let fig9 cfg =
  let env = build_env ~seed:cfg.seed (base_scale cfg) in
  Output.header ~id:"Figure 9" ~title:"PMV overhead vs combination factor h (F=3)"
    ~paper:"overhead grows with h; T2 above T1";
  Output.row "%-4s %-16s %-16s@." "h" "T1 overhead(s)" "T2 overhead(s)";
  List.iter2
    (fun (e1, f1) (e2, f2, g2) ->
      let h = e1 * f1 in
      let r1 =
        run_shape env T1 ~e:e1 ~f:f1 ~g:1 ~f_max:3 ~capacity:(pmv_capacity cfg)
          ~warm:(n_warm cfg) ~measure:(n_measure cfg) ~seed:(cfg.seed + h)
      in
      let r2 =
        run_shape env T2 ~e:e2 ~f:f2 ~g:g2 ~f_max:3 ~capacity:(pmv_capacity cfg)
          ~warm:(n_warm cfg) ~measure:(n_measure cfg) ~seed:(cfg.seed + 100 + h)
      in
      Output.row "%-4d %-16.7f %-16.7f@." h r1.overhead_s r2.overhead_s)
    t1_shapes t2_shapes

(* --- interval-form ablation: overhead vs query span --- *)

(* T1 with an interval-form orderdate condition over an equal-width
   grid of basic intervals (Section 3.1's discretisation). The paper's
   engine experiments use equality-form conditions only; this ablation
   exercises the O1 interval decomposition on the engine: a query
   spanning [span] basic intervals generates h = span condition parts
   (partially-covered edge intervals exercise the non-exact cp checks). *)
let ablation_interval cfg =
  let env = build_env ~seed:cfg.seed (base_scale cfg) in
  let bins = max 4 (env.params.Tpcr.n_dates / 8) in
  let grid = Minirel_query.Discretize.equal_width ~lo:1 ~hi:(env.params.Tpcr.n_dates + 1) ~bins in
  let spec =
    {
      Querygen.t1_spec with
      Template.name = "t1_interval";
      selections =
        [|
          Template.Range_sel (Template.attr_ref ~rel:0 ~attr:"orderdate", grid);
          Template.Eq_sel (Template.attr_ref ~rel:1 ~attr:"suppkey");
        |];
    }
  in
  let compiled = Template.compile env.catalog spec in
  let view = View.create ~capacity:(pmv_capacity cfg) ~f_max:3 ~name:"t1_iv" compiled in
  Output.header ~id:"Ablation Interval"
    ~title:"PMV overhead vs interval span (interval-form orderdate, F=3)"
    ~paper:
      "(supporting §3.1/O1) overhead grows with the number of basic intervals the query \
       spans; hits persist across differently-shaped overlapping queries";
  let rng = SM.create ~seed:(cfg.seed + 3) in
  let width = (env.params.Tpcr.n_dates + bins - 1) / bins in
  Output.row "grid: %d basic intervals of width ~%d days@." (Minirel_query.Discretize.n_intervals grid) width;
  Output.row "%-6s %-8s %-14s %-10s %-10s@." "span" "h" "overhead(s)" "hit" "partials/q";
  List.iter
    (fun span ->
      let acc_ovh = ref 0.0 and acc_h = ref 0 and hits = ref 0 and partials = ref 0 in
      let n_q = n_measure cfg in
      for _ = 1 to n_q do
        let start = 1 + SM.int rng ~bound:(max 1 (env.params.Tpcr.n_dates - (span * width))) in
        let supp = 1 + Zipf.sample env.supp_zipf rng in
        let inst =
          Instance.make compiled
            [|
              Instance.Dintervals
                [
                  Minirel_query.Interval.half_open ~lo:(Value.Int start)
                    ~hi:(Value.Int (start + (span * width)));
                ];
              Instance.Dvalues [ Value.Int supp ];
            |]
        in
        let st = Answer.answer ~view env.catalog inst ~on_tuple:(fun _ _ -> ()) in
        acc_ovh := !acc_ovh +. Output.sec_of_ns st.Answer.overhead_ns;
        acc_h := !acc_h + st.Answer.h;
        if st.Answer.probe_hits > 0 then incr hits;
        partials := !partials + st.Answer.partial_count
      done;
      let m = float_of_int n_q in
      Output.row "%-6d %-8.1f %-14.7f %-10.2f %-10.2f@." span
        (float_of_int !acc_h /. m)
        (!acc_ovh /. m)
        (float_of_int !hits /. m)
        (float_of_int !partials /. m))
    [ 1; 2; 4; 6; 8 ]

(* --- Figure 10: execution time vs overhead across database scale --- *)

let fig10 cfg =
  let base = base_scale cfg in
  Output.header ~id:"Figure 10" ~title:"query execution time vs PMV overhead across scale s"
    ~paper:
      "execution time grows with s and dwarfs the (roughly flat) overhead by >= 5 orders \
       of magnitude (modeled column prices each logical I/O at 5 ms of 2005-era disk)";
  Output.row "%-8s %-13s %-13s %-13s %-13s %-13s %-10s@." "s" "exec T1(s)" "model T1(s)"
    "pmv T1(s)" "model T2(s)" "pmv T2(s)" "ratio T1";
  List.iter
    (fun mult ->
      let s = base *. mult in
      let env = build_env ~seed:cfg.seed s in
      let r1 =
        run_shape env T1 ~e:2 ~f:2 ~g:1 ~f_max:3 ~capacity:(pmv_capacity cfg)
          ~warm:(n_warm cfg) ~measure:(n_measure cfg) ~seed:cfg.seed
      in
      let r2 =
        run_shape env T2 ~e:2 ~f:2 ~g:1 ~f_max:3 ~capacity:(pmv_capacity cfg)
          ~warm:(n_warm cfg) ~measure:(n_measure cfg) ~seed:(cfg.seed + 1)
      in
      Output.row "%-8.3f %-13.6f %-13.4f %-13.7f %-13.4f %-13.7f %-10.0f@." s r1.exec_s
        (modeled_exec_s r1) r1.overhead_s (modeled_exec_s r2) r2.overhead_s
        (modeled_exec_s r1 /. Float.max 1e-9 r1.overhead_s))
    [ 0.5; 1.0; 1.5; 2.0 ]
