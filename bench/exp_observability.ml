(* Observability overhead benchmark (DESIGN.md Section 14).

   The tracing/flight-recorder/SLO stack promises to be cheap enough to
   leave on in the hottest serving regime: every query opens a root
   span (sampling every=1), the flight recorder logs each probe, and
   the end-to-end latency lands in the watchdog's high-resolution
   histogram. This experiment measures that claim on the probe-bound
   regime — a single warmed engine under the Epoch read path, repeat
   Zipf T1 queries served straight from the view — the regime where
   per-query work is smallest and any fixed observability cost is
   proportionally largest.

   One engine is built and warmed once; then the identical query
   stream runs with the new stack on (span-per-query recording +
   flight recorder) and off (counters and histograms stay enabled
   either way — their cost is gated separately by exp_telemetry — so
   the ratio isolates the marginal cost of tracing + recording) under
   the paired interleaved-slice harness of bench/pairing.ml, which
   estimates the overhead from per-slice wall-time floors.
   tools/check.sh fails the gate when the stack costs more than 5%
   throughput (BENCH_observability.json, "regression_pct").

   The result streams must be identical in both modes — observability
   may slow a query down but never change its answer — so the tuple
   counts and checksums are cross-checked per mode. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Engine = Minirel_engine.Engine
module Tm = Minirel_telemetry.Telemetry
module Tracer = Minirel_telemetry.Tracer
module Flight = Minirel_telemetry.Flight
module Slo = Minirel_telemetry.Slo
module Span = Minirel_telemetry.Span
module Histogram = Minirel_telemetry.Histogram
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type cfg = { full : bool; seed : int; scale : float option }

type mode_result = {
  mode : string;
  queries : int;
  wall_ns : int64;  (* best repetition segment *)
  qps : float;
  reps : int;
  total_tuples : int;  (* per segment *)
  checksum : int;  (* per segment *)
}

let run cfg =
  Output.header ~id:"Observability"
    ~title:"probe-bound answer() with recorder + always-on tracing vs all off"
    ~paper:
      "(extension) observability overhead gate: root span per query, flight \
       recorder, SLO histogram";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.01 else 0.003) in
  let pool = Buffer_pool.create ~capacity:8_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  let t1 = Template.compile catalog Querygen.t1_spec in
  let engine = Engine.scoped ~catalog () in
  ignore (Engine.ensure_view ~capacity:2_000 ~f_max:3 engine t1);
  Engine.set_probe_path engine Pmv.Answer.Epoch;
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let gen rng = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
  let slo = Slo.create () in
  (* the full serving surface per query, exactly as the shell runs it:
     root span (sampled), trace threaded through answer, latency into
     the watchdog — in BOTH modes, so the off mode measures the same
     code path with the stack disabled, not a stripped loop *)
  let tuples = ref 0 and checksum = ref 0 in
  let answer inst =
    let t0 = Monotonic_clock.now () in
    let trace = Engine.trace_start ~at:t0 engine "select:t1" in
    ignore
      (Engine.answer ?trace engine inst ~on_tuple:(fun _ tuple ->
           incr tuples;
           checksum := !checksum + Tuple.hash tuple));
    let t1 = Monotonic_clock.now () in
    Option.iter (Engine.trace_finish ~at:t1 engine) trace;
    Slo.note_query slo ~template:"t1"
      ?trace:(Option.map Span.root trace)
      (Int64.sub t1 t0)
  in
  (* four stack configurations, so a regression is attributable: the
     gated "on" plus its two halves. [every] huge = sampled out, so the
     off modes still pay the real production cost of the sampling
     decision itself. *)
  let configure ~flight ~spans =
    Tm.set_enabled true;
    Flight.set_enabled flight;
    Tracer.set_sampling (Engine.tracer engine)
      ~every:(if spans then 1 else 1_000_000_000)
  in
  let modes = [ "off"; "flight"; "trace"; "on" ] in
  let set_observability = function
    | "off" -> configure ~flight:false ~spans:false
    | "flight" -> configure ~flight:true ~spans:false
    | "trace" -> configure ~flight:false ~spans:true
    | _ -> configure ~flight:true ~spans:true
  in
  (* warm until the bcp working set is resident so the epoch fast path
     serves steady-state repeats, not cold misses (see exp_shard) *)
  set_observability "on";
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  let n_warm = if cfg.full then 2_000 else 1_000 in
  for _ = 1 to n_warm do
    answer (gen warm_rng)
  done;
  (* the modes differ by a few hundred ns per query, so each slice
     must stay long enough (hundreds of queries) that the per-slice
     floors are not dominated by timer granularity *)
  let n_queries = if cfg.full then 4_000 else 2_000 in
  let rng = SM.create ~seed:(cfg.seed + 2) in
  let instances = Array.init n_queries (fun _ -> gen rng) in
  (* sliced interleaved pairing with contended-repetition rejection —
     the methodology lives in bench/pairing.ml *)
  let m =
    Pairing.measure ~modes ~set_mode:set_observability
      ~run:(fun i -> answer instances.(i))
      ~counters:(fun () -> (!tuples, !checksum))
      ~n:n_queries ()
  in
  set_observability "on";
  let overhead_pct = m.Pairing.overhead_pct in
  let result mode =
    let r = List.assoc mode m.Pairing.results in
    {
      mode;
      queries = n_queries;
      wall_ns = r.Pairing.wall_ns;
      qps = float_of_int n_queries /. (Int64.to_float r.Pairing.wall_ns /. 1e9);
      reps = m.Pairing.reps;
      total_tuples = r.Pairing.tuples;
      checksum = r.Pairing.checksum;
    }
  in
  let off = result "off" and on = result "on" in
  if on.checksum <> off.checksum || on.total_tuples <> off.total_tuples then
    Fmt.epr
      "WARNING: observability on/off runs disagree (%d/%d tuples, %d/%d checksum)@."
      on.total_tuples off.total_tuples on.checksum off.checksum;
  let regression_pct = overhead_pct "on" in
  let pass = regression_pct < 5.0 in
  Output.row "%-14s %-9s %-12s %-9s %s@." "observability" "queries" "queries/s"
    "reps" "overhead";
  List.iter
    (fun mode ->
      let r = result mode in
      Output.row "%-14s %-9d %-12.1f %-9d %+.2f%%@." r.mode r.queries r.qps r.reps
        (overhead_pct mode))
    modes;
  Output.row "overhead: %.2f%% throughput (gate: < 5%%, %s; %d/%d paired slices clean)@."
    regression_pct
    (if pass then "pass" else "FAIL")
    m.Pairing.clean_groups m.Pairing.groups;
  (* evidence the stack was actually live in the on segments: the
     flight timeline (count + reproducible digest) and the watchdog's
     end-to-end quantiles over everything answered above *)
  let events = Flight.dump () in
  let digest = Flight.digest events in
  let slo_json =
    match List.assoc_opt "t1.total" (Slo.summaries slo) with
    | None -> "null"
    | Some s ->
        Fmt.str
          {|{"count": %d, "p50_ns": %Ld, "p95_ns": %Ld, "p99_ns": %Ld, "p999_ns": %Ld}|}
          s.Histogram.count s.Histogram.p50 s.Histogram.p95 s.Histogram.p99
          s.Histogram.p999
  in
  Output.row "flight recorder: %d events, digest %s@." (List.length events) digest;
  let json_of_mode r =
    Fmt.str
      {|{"queries": %d, "wall_ns": %Ld, "queries_per_sec": %.1f, "reps": %d, "total_tuples": %d, "checksum": %d}|}
      r.queries r.wall_ns r.qps r.reps r.total_tuples r.checksum
  in
  let json =
    Fmt.str
      {|{
  "experiment": "observability",
  "scale": %g,
  "seed": %d,
  "host_cores": %d,
  "regime": "probe-bound epoch, t1 zipf alpha=1.07 e=f=2, plan cache on",
  "baseline": "counters + histograms on, spans sampled out, flight recorder off",
  "on_stack": "span-per-query (every=1) + flight recorder",
  "off": %s,
  "on": %s,
  "flight_only_pct": %.3f,
  "trace_only_pct": %.3f,
  "regression_pct": %.3f,
  "clean_slices": %d,
  "pass": %b,
  "flight": {"events": %d, "digest": %S},
  "slo_total": %s
}
|}
      scale cfg.seed
      (Domain.recommended_domain_count ())
      (json_of_mode off) (json_of_mode on) (overhead_pct "flight")
      (overhead_pct "trace") regression_pct m.Pairing.clean_groups pass
      (List.length events) digest slo_json
  in
  let oc = open_out "BENCH_observability.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_observability.json@."
