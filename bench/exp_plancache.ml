(* Plan cache + executor fast path benchmark.

   Measures answer() throughput and first-partial latency over a TPC-R
   template mix (T1: orders ⋈ lineitem, T2: + customer) with the
   template plan cache on vs off. To expose the fast path the
   customer_custkey index is dropped after data generation: with the
   cache off the orders→customer edge of T2 plans as a naive nested
   loop (full customer heap scan per outer tuple); with the cache on
   the bound skeleton emits a hash join whose build side is read once
   per query. T1 plans identically in both modes, so the mix measures
   an honest blend, not a pure worst case.

   Both modes run the same seeds against freshly generated data; the
   result-multiset checksums must agree. Results are printed and written
   to BENCH_plancache.json in the working directory. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Plan_cache = Minirel_exec.Plan_cache
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

type cfg = { full : bool; seed : int; scale : float option }

type mode_result = {
  mode : string;
  queries : int;
  wall_ns : int64;
  qps : float;
  p50_first_partial_ns : int64;  (* -1 when no query produced partials *)
  p99_first_partial_ns : int64;
  partial_queries : int;  (* queries that streamed >= 1 tuple from the PMV *)
  total_tuples : int;
  checksum : int;  (* order-independent result-multiset hash *)
  cache : Plan_cache.counters;
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> -1L
  | n ->
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))

(* One full pass: fresh data, fresh views, same query stream. *)
let run_mode cfg ~scale ~enabled =
  let pool = Buffer_pool.create ~capacity:4_000 () in
  let catalog = Catalog.create pool in
  let params = Tpcr.params_for_scale ~seed:cfg.seed scale in
  ignore (Tpcr.generate catalog params);
  (* no index on the T2 orders→customer join edge: the uncached planner
     must fall back to a naive nested loop there *)
  Catalog.drop_index catalog ~rel:"customer" ~name:"customer_custkey";
  let t1 = Template.compile catalog Querygen.t1_spec in
  let t2 = Template.compile catalog Querygen.t2_spec in
  let manager = Pmv.Manager.create catalog in
  Plan_cache.set_enabled (Pmv.Manager.plan_cache manager) enabled;
  ignore (Pmv.Manager.create_view ~capacity:2_000 ~f_max:3 manager t1);
  ignore (Pmv.Manager.create_view ~capacity:2_000 ~f_max:3 manager t2);
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let nz = Zipf.create ~n:params.Tpcr.n_nations ~alpha:1.07 in
  let gen rng i =
    (* alternate T1 and T2 *)
    if i mod 2 = 0 then Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng
    else Querygen.gen_t2 t2 ~dates_zipf:dz ~supp_zipf:sz ~nation_zipf:nz ~e:3 ~f:2 ~g:2 rng
  in
  let answer inst ~checksum ~tuples =
    Pmv.Manager.answer manager inst ~on_tuple:(fun _ tuple ->
        incr tuples;
        checksum := !checksum + Tuple.hash tuple)
  in
  (* warmup: fill the PMVs (and the plan cache, when enabled) *)
  let warm_rng = SM.create ~seed:(cfg.seed + 1) in
  let sink = ref 0 and nsink = ref 0 in
  let n_warm = if cfg.full then 160 else 80 in
  for i = 0 to n_warm - 1 do
    ignore (answer (gen warm_rng i) ~checksum:sink ~tuples:nsink)
  done;
  (* timed mix *)
  let n_queries = if cfg.full then 1_280 else 640 in
  let rng = SM.create ~seed:(cfg.seed + 2) in
  let instances = List.init n_queries (gen rng) in
  let checksum = ref 0 and total_tuples = ref 0 and partial_queries = ref 0 in
  let first_partials = ref [] in
  let t0 = Monotonic_clock.now () in
  List.iter
    (fun inst ->
      let stats, _ = answer inst ~checksum ~tuples:total_tuples in
      match stats.Pmv.Answer.first_partial_ns with
      | Some ns ->
          incr partial_queries;
          first_partials := ns :: !first_partials
      | None -> ())
    instances;
  let wall_ns = Int64.sub (Monotonic_clock.now ()) t0 in
  let sorted = Array.of_list !first_partials in
  Array.sort Int64.compare sorted;
  {
    mode = (if enabled then "on" else "off");
    queries = n_queries;
    wall_ns;
    qps = float_of_int n_queries /. (Int64.to_float wall_ns /. 1e9);
    p50_first_partial_ns = percentile sorted 50.0;
    p99_first_partial_ns = percentile sorted 99.0;
    partial_queries = !partial_queries;
    total_tuples = !total_tuples;
    checksum = !checksum;
    cache = Plan_cache.counters (Pmv.Manager.plan_cache manager);
  }

let json_of_mode r =
  Fmt.str
    {|{"queries": %d, "wall_ns": %Ld, "queries_per_sec": %.1f, "p50_first_partial_ns": %Ld, "p99_first_partial_ns": %Ld, "partial_queries": %d, "total_tuples": %d, "checksum": %d, "cache": {"hits": %d, "misses": %d, "invalidations": %d, "fallbacks": %d}}|}
    r.queries r.wall_ns r.qps r.p50_first_partial_ns r.p99_first_partial_ns
    r.partial_queries r.total_tuples r.checksum r.cache.Plan_cache.hits
    r.cache.Plan_cache.misses r.cache.Plan_cache.invalidations r.cache.Plan_cache.fallbacks

let run cfg =
  Output.header ~id:"Plancache"
    ~title:"answer() throughput with the template plan cache on vs off"
    ~paper:"(extension) O2/O3 fast path: skeleton binding + hash-join fallback";
  let scale = Option.value cfg.scale ~default:(if cfg.full then 0.02 else 0.005) in
  let off = run_mode cfg ~scale ~enabled:false in
  let on = run_mode cfg ~scale ~enabled:true in
  if on.checksum <> off.checksum || on.total_tuples <> off.total_tuples then
    Fmt.epr "WARNING: cached and uncached runs disagree (%d/%d tuples, %d/%d checksum)@."
      on.total_tuples off.total_tuples on.checksum off.checksum;
  let speedup = on.qps /. off.qps in
  Output.row "%-6s %-9s %-12s %-14s %-14s %-18s@." "cache" "queries" "queries/s"
    "p50 1st-part" "p99 1st-part" "hits/misses";
  List.iter
    (fun r ->
      Output.row "%-6s %-9d %-12.1f %-14s %-14s %d/%d@." r.mode r.queries r.qps
        (Fmt.str "%.1f µs" (Int64.to_float r.p50_first_partial_ns /. 1e3))
        (Fmt.str "%.1f µs" (Int64.to_float r.p99_first_partial_ns /. 1e3))
        r.cache.Plan_cache.hits r.cache.Plan_cache.misses)
    [ off; on ];
  Output.row "speedup (mix throughput, on/off): %.2fx@." speedup;
  let json =
    Fmt.str
      {|{
  "experiment": "plancache",
  "scale": %g,
  "seed": %d,
  "mix": "1:1 t1:t2 alternating, t1 e=f=2, t2 e=3 f=g=2",
  "off": %s,
  "on": %s,
  "speedup": %.3f,
  "telemetry": %s
}
|}
      scale cfg.seed (json_of_mode off) (json_of_mode on) speedup
      (Minirel_telemetry.Export.json_string (Minirel_telemetry.Telemetry.snapshot ()))
  in
  let oc = open_out "BENCH_plancache.json" in
  output_string oc json;
  close_out oc;
  Output.row "wrote BENCH_plancache.json@."
