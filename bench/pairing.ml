(* Paired interleaved-slice A/B overhead measurement (DESIGN.md §14).

   Whole-segment pairing ("run mode A, then mode B, repeat") is not
   enough on a shared host: a few milliseconds of CPU steal landing
   inside one mode's segment swings the per-repetition ratio by more
   than the effect being measured. This harness hardens the pairing
   three ways:

   - each repetition cuts the identical work stream into slices, and
     within a slice every mode runs the same items back to back, so
     every (mode, slice) cell is sampled [reps] times spread across
     the whole sweep;
   - the mode order rotates cyclically per slice and per repetition, so
     monotone drift (frequency ramp, allocator growth) cannot
     systematically favour one mode;
   - the estimate is built from wall-time floors: a slice's wall has a
     hard lower bound at its true compute time — deterministic costs
     (the stack under test, the extra GC work its allocation causes)
     are in every sample, while scheduler noise only ever adds — so
     the minimum over the [reps] samples of each (mode, slice) cell
     converges on the clean wall. The overhead is the ratio of
     floor sums, mode vs baseline, which a noise burst cannot inflate
     unless it lands on all [reps] samples of a cell.

   The first mode in [modes] is the baseline. [clean_groups] reports
   how many of the reps * slices interleaved groups ran within 10% of
   the cleanest group's total wall — a host-contention diagnostic, not
   part of the estimate. *)

type mode_result = {
  wall_ns : int64;  (* best repetition wall *)
  tuples : int;  (* work fingerprint of that repetition... *)
  checksum : int;  (* ...for cross-mode identity checks *)
}

type t = {
  results : (string * mode_result) list;  (* in [modes] order *)
  overhead_pct : string -> float;
      (* floor-sum wall ratio vs the baseline mode, as a percentage
         over 1.0 *)
  clean_groups : int;  (* groups within 10% of the cleanest's total *)
  groups : int;  (* reps * slices *)
  reps : int;
}

(* [measure ~modes ~set_mode ~run ~counters ~n] times [run i] for every
   i in [0, n) under each mode. [set_mode] switches the stack under
   test; [counters] reads the caller's cumulative (tuples, checksum)
   cells so each slice's delta can be attributed to its mode. *)
let measure ~modes ~set_mode ~run ~counters ~n ?(slices = 4) ?(reps = 12) () =
  let k = List.length modes in
  let baseline = List.hd modes in
  let slice_len = n / slices in
  let time_slice mode ~slice =
    set_mode mode;
    let t0 = Monotonic_clock.now () in
    for i = slice * slice_len to ((slice + 1) * slice_len) - 1 do
      run i
    done;
    Int64.sub (Monotonic_clock.now ()) t0
  in
  let best = Hashtbl.create k in
  let record mode ((wall, _, _) as r) =
    match Hashtbl.find_opt best mode with
    | Some (w, _, _) when Int64.compare w wall <= 0 -> ()
    | _ -> Hashtbl.replace best mode r
  in
  (* (mode, slice) -> minimum wall seen across repetitions *)
  let floors = Hashtbl.create (k * slices) in
  let note_floor mode slice w =
    match Hashtbl.find_opt floors (mode, slice) with
    | Some f when Int64.compare f w <= 0 -> ()
    | _ -> Hashtbl.replace floors (mode, slice) w
  in
  let group_totals = ref [] in
  for rep = 1 to reps do
    let rep_walls = Hashtbl.create k in
    let counts = Hashtbl.create k in
    for slice = 0 to slices - 1 do
      let order = List.init k (fun i -> List.nth modes ((i + rep + slice) mod k)) in
      let group_total = ref 0.0 in
      List.iter
        (fun mode ->
          let t0, c0 = counters () in
          let w = time_slice mode ~slice in
          let t1, c1 = counters () in
          note_floor mode slice w;
          group_total := !group_total +. Int64.to_float w;
          let pw = Option.value (Hashtbl.find_opt rep_walls mode) ~default:0L in
          Hashtbl.replace rep_walls mode (Int64.add pw w);
          let pt, pc = Option.value (Hashtbl.find_opt counts mode) ~default:(0, 0) in
          Hashtbl.replace counts mode (pt + t1 - t0, pc + c1 - c0))
        order;
      group_totals := !group_total :: !group_totals
    done;
    List.iter
      (fun mode ->
        let wall = Hashtbl.find rep_walls mode in
        let tu, ck = Hashtbl.find counts mode in
        record mode (wall, tu, ck))
      modes
  done;
  let floor_sum mode =
    let s = ref 0L in
    for slice = 0 to slices - 1 do
      s := Int64.add !s (Hashtbl.find floors (mode, slice))
    done;
    Int64.to_float !s
  in
  let base_floor = floor_sum baseline in
  let overhead_pct mode = (floor_sum mode /. base_floor -. 1.0) *. 100.0 in
  let clean_groups =
    let min_total = List.fold_left Float.min Float.max_float !group_totals in
    List.length (List.filter (fun t -> t <= min_total *. 1.10) !group_totals)
  in
  {
    results =
      List.map
        (fun mode ->
          let wall, tuples, checksum = Hashtbl.find best mode in
          (mode, { wall_ns = wall; tuples; checksum }))
        modes;
    overhead_pct;
    clean_groups;
    groups = reps * slices;
    reps;
  }
