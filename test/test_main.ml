let () =
  Alcotest.run "pmv"
    [
      ("value", Test_value.suite);
      ("schema+tuple", Test_schema_tuple.suite);
      ("heap", Test_heap.suite);
      ("cache", Test_cache.suite);
      ("btree", Test_btree.suite);
      ("buffer-pool", Test_buffer_pool.suite);
      ("index+catalog", Test_index_catalog.suite);
      ("interval", Test_interval.suite);
      ("discretize", Test_discretize.suite);
      ("predicate", Test_predicate.suite);
      ("template", Test_template.suite);
      ("condition-part", Test_condition_part.suite);
      ("exec", Test_exec.suite);
      ("txn", Test_txn.suite);
      ("matview", Test_matview.suite);
      ("workload", Test_workload.suite);
      ("entry-store", Test_entry_store.suite);
      ("view+answer", Test_view_answer.suite);
      ("extensions", Test_extensions.suite);
      ("sizing+sim", Test_sizing_sim.suite);
      ("exec-extra", Test_exec_extra.suite);
      ("snapshot", Test_snapshot.suite);
      ("wal", Test_wal.suite);
      ("advisor", Test_advisor.suite);
      ("ds+faults", Test_ds_faults.suite);
      ("stats", Test_stats.suite);
      ("plan-cache", Test_plan_cache.suite);
      ("manager", Test_manager.suite);
      ("sql", Test_sql.suite);
      ("shell", Test_shell.suite);
      ("telemetry", Test_telemetry.suite);
      ("trace", Test_trace.suite);
      ("coverage-extra", Test_coverage_extra.suite);
      ("integration", Test_integration.suite);
    ]
