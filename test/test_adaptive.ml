(* Heavy-light adaptive maintenance (DESIGN.md Section 17): the
   frequency sketch's safety properties, the lapse path's answer
   equivalence with eager maintenance — single engine and sharded,
   locked and epoch probe paths — the flush_pending interaction with
   lapsed keys, and the budget arbiter's resize machinery. *)

open Minirel_storage
open Minirel_query
module View = Pmv.View
module Manager = Pmv.Manager
module Maintain = Pmv.Maintain
module Txn = Minirel_txn.Txn
module Torture = Minirel_check.Torture
module Policy = Minirel_cache.Policy

let check = Alcotest.check
let vi i = Value.Int i

(* --- frequency sketch properties --- *)

(* Count-min never under-counts: min-over-rows only over-approximates,
   so with decay off every key estimates at or above its true count. *)
let qcheck_sketch_overcounts =
  QCheck2.Test.make ~name:"sketch never under-counts (decay off)" ~count:200
    QCheck2.Gen.(list_size (int_bound 300) (int_bound 25))
    (fun keys ->
      let s = Pmv.Freq_sketch.create ~rows:2 ~width:32 ~decay_every:1_000_000 () in
      List.iter (fun k -> ignore (Pmv.Freq_sketch.observe s k)) keys;
      let truth = Hashtbl.create 16 in
      List.iter
        (fun k ->
          Hashtbl.replace truth k (1 + Option.value ~default:0 (Hashtbl.find_opt truth k)))
        keys;
      Hashtbl.fold
        (fun k n ok -> ok && Pmv.Freq_sketch.estimate s k >= n)
        truth true)

(* Decay halves: every estimate lands in [est/2, est] — monotone
   non-increasing, and never below the floor of the halving. *)
let qcheck_sketch_decay_monotone =
  QCheck2.Test.make ~name:"sketch decay is monotone halving" ~count:200
    QCheck2.Gen.(list_size (int_bound 300) (int_bound 25))
    (fun keys ->
      let s = Pmv.Freq_sketch.create ~rows:3 ~width:32 ~decay_every:1_000_000 () in
      List.iter (fun k -> ignore (Pmv.Freq_sketch.observe s k)) keys;
      let before = List.init 26 (fun k -> Pmv.Freq_sketch.estimate s k) in
      let total_before = Pmv.Freq_sketch.total s in
      Pmv.Freq_sketch.decay s;
      Pmv.Freq_sketch.total s <= total_before
      && List.for_all2
           (fun b k ->
             let a = Pmv.Freq_sketch.estimate s k in
             a <= b && a >= b / 2)
           before
           (List.init 26 Fun.id))

(* No false-light: a key whose true count reaches the classifier's
   threshold can never estimate below it, so it is never light. *)
let qcheck_no_false_light =
  QCheck2.Test.make ~name:"no false-light above the heavy threshold" ~count:200
    QCheck2.Gen.(list_size (int_bound 400) (int_bound 25))
    (fun keys ->
      let a =
        Pmv.Adaptive.create ~rows:2 ~width:32 ~decay_every:1_000_000 ~heavy_min:4 ()
      in
      List.iter (fun k -> ignore (Pmv.Adaptive.observe a k)) keys;
      let truth = Hashtbl.create 16 in
      List.iter
        (fun k ->
          Hashtbl.replace truth k (1 + Option.value ~default:0 (Hashtbl.find_opt truth k)))
        keys;
      let thr = Pmv.Adaptive.threshold a in
      let sk = Pmv.Adaptive.sketch a in
      Hashtbl.fold
        (fun k n ok -> ok && (n < thr || Pmv.Freq_sketch.estimate sk k >= thr))
        truth true)

let test_classifier_heavy_light () =
  let a = Pmv.Adaptive.create ~heavy_min:4 ~decay_every:1_000_000 () in
  let heavy_at = ref 0 in
  for i = 1 to 10 do
    if Pmv.Adaptive.observe a "hot" && !heavy_at = 0 then heavy_at := i
  done;
  check Alcotest.bool "hot key turns heavy" true (!heavy_at > 0 && !heavy_at <= 4);
  check Alcotest.bool "fresh key is light" false (Pmv.Adaptive.observe a "cold");
  check Alcotest.bool "both classes counted" true
    (Pmv.Adaptive.n_heavy a > 0 && Pmv.Adaptive.n_light a > 0);
  Pmv.Adaptive.reset_counters a;
  check Alcotest.int "counters reset" 0 (Pmv.Adaptive.n_heavy a + Pmv.Adaptive.n_light a)

(* --- differential: adaptive == eager answers --- *)

(* Two identical engines, one eager aux-index and one adaptive, replay
   the same delete stream; every instance must answer exactly like
   brute force on both, under both probe paths. *)
let test_adaptive_matches_eager () =
  let build () =
    let catalog = Helpers.fresh_catalog () in
    Helpers.build_rs catalog;
    let c = Template.compile catalog Helpers.eqt_spec in
    let view = View.create ~capacity:30 ~f_max:3 ~name:"eqt" c in
    let mgr = Txn.create catalog in
    (catalog, c, view, mgr)
  in
  let catalog_e, c_e, view_e, mgr_e = build () in
  let catalog_a, c_a, view_a, mgr_a = build () in
  View.set_adaptive view_a (Some (Pmv.Adaptive.create ~heavy_min:3 ()));
  Maintain.attach ~strategy:Maintain.Aux_index ~use_locks:false view_e mgr_e;
  Maintain.attach ~strategy:Maintain.Aux_index ~use_locks:false view_a mgr_a;
  let inst c f g = Instance.make c [| Instance.Dvalues [ vi f ]; Instance.Dvalues [ vi g ] |] in
  (* warm both views over the same probe grid *)
  for f = 0 to 4 do
    for g = 0 to 3 do
      ignore (Helpers.collect_answer ~view:view_e catalog_e (inst c_e f g));
      ignore (Helpers.collect_answer ~view:view_a catalog_a (inst c_a f g))
    done
  done;
  (* the same churn on both: skewed s.g deletes (heavy) and scattered
     r.f deletes (light) *)
  let deletes =
    [ ("s", 1, 1); ("s", 1, 1); ("s", 1, 2); ("r", 2, 3); ("r", 2, 7); ("s", 1, 0) ]
  in
  List.iter
    (fun (rel, pos, v) ->
      let ch = Txn.Delete { rel; pred = Predicate.Cmp (Predicate.Eq, pos, vi v) } in
      ignore (Txn.run mgr_e [ ch ]);
      ignore (Txn.run mgr_a [ ch ]))
    deletes;
  List.iter
    (fun probe_path ->
      for f = 0 to 4 do
        for g = 0 to 3 do
          let truth = Helpers.brute_force_answer catalog_e (inst c_e f g) in
          let got_e = ref [] and got_a = ref [] in
          let _ =
            Pmv.Answer.answer ~probe_path ~view:view_e catalog_e (inst c_e f g)
              ~on_tuple:(fun _ t -> got_e := t :: !got_e)
          in
          let _ =
            Pmv.Answer.answer ~probe_path ~view:view_a catalog_a (inst c_a f g)
              ~on_tuple:(fun _ t -> got_a := t :: !got_a)
          in
          check Alcotest.bool "eager exact" true (Helpers.same_multiset !got_e truth);
          check Alcotest.bool "adaptive exact" true (Helpers.same_multiset !got_a truth)
        done
      done)
    [ Pmv.Answer.Locked; Pmv.Answer.Epoch ];
  check Alcotest.bool "the light path actually ran" true
    (Pmv.Entry_store.n_lapse_marked (View.store view_a) > 0
    || match View.adaptive view_a with
       | Some a -> Pmv.Adaptive.n_light a > 0
       | None -> false)

(* Torture campaigns with adaptive maintenance on: oracle-exact across
   shard counts and both probe paths. *)
let test_torture_adaptive () =
  List.iter
    (fun (shards, probe_path) ->
      let cfg =
        {
          (Torture.default_cfg ~seed:7) with
          Torture.events = 60;
          scale = 0.0003;
          check_every = 20;
          shards;
          probe_path;
          adaptive = true;
        }
      in
      let o = if shards = 1 then Torture.run cfg else Torture.run_sharded cfg in
      if not (Torture.ok o) then
        Alcotest.failf "shards=%d %s: %a" shards
          (match probe_path with Pmv.Answer.Locked -> "locked" | Pmv.Answer.Epoch -> "epoch")
          Torture.pp_outcome o)
    [
      (1, Pmv.Answer.Locked);
      (1, Pmv.Answer.Epoch);
      (2, Pmv.Answer.Locked);
      (4, Pmv.Answer.Epoch);
    ]

(* --- flush_pending with the lapse path (satellite regression) --- *)

(* A delta queued behind a reader's S lock whose keys all lapse must
   still clear n_pending when flushed, and answers stay exact. *)
let test_flush_pending_lapsed () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:20 ~f_max:2 ~name:"lapse" c in
  (* heavy_min high: every key classifies light, forcing the lapse path *)
  View.set_adaptive view (Some (Pmv.Adaptive.create ~heavy_min:1_000 ()));
  let mgr = Txn.create catalog in
  Maintain.attach ~use_locks:true view mgr;
  let locks = Minirel_txn.Txn.locks mgr in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  let _ = Helpers.collect_answer ~view catalog inst in
  check Alcotest.bool "warmed" true (View.n_tuples view > 0);
  let pending_inside = ref (-1) and fired = ref false in
  let _ =
    Pmv.Answer.answer ~locks ~txn:7 ~view catalog inst ~on_tuple:(fun _ _ ->
        if not !fired then begin
          fired := true;
          ignore
            (Txn.run mgr
               [ Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 1, vi 1) } ]);
          pending_inside := Maintain.n_pending view
        end)
  in
  check Alcotest.int "delta queued behind the S lock" 1 !pending_inside;
  Maintain.flush_pending view mgr;
  check Alcotest.int "lapse-only flush clears the queue" 0 (Maintain.n_pending view);
  let got, _, _ = Helpers.collect_answer ~view catalog inst in
  check Alcotest.bool "exact after lapse flush" true
    (Helpers.same_multiset got (Helpers.brute_force_answer catalog inst));
  check Alcotest.bool "answers keep coming exact" true
    (let got2, _, _ = Helpers.collect_answer ~view catalog inst in
     Helpers.same_multiset got2 (Helpers.brute_force_answer catalog inst))

(* --- resize machinery for the budget arbiter --- *)

let test_policy_resize () =
  List.iter
    (fun (label, (create : capacity:int -> int Policy.t)) ->
      let p = create ~capacity:8 in
      let evicted = ref [] in
      Policy.set_on_evict p (fun k -> evicted := k :: !evicted);
      for k = 1 to 8 do
        Policy.admit p k;
        (* a second touch promotes staged keys under the 2Q variants *)
        ignore (Policy.reference p k)
      done;
      let before = Policy.size p in
      Policy.resize p 3;
      check Alcotest.int (label ^ ": capacity follows") 3 (Policy.capacity p);
      check Alcotest.bool (label ^ ": shrunk to bound") true (Policy.size p <= 3);
      check Alcotest.bool (label ^ ": eviction callback saw the victims") true
        (List.length !evicted >= before - 3);
      Policy.resize p 10;
      check Alcotest.int (label ^ ": grow raises the bound") 10 (Policy.capacity p);
      check Alcotest.bool (label ^ ": grow evicts nothing") true (Policy.size p <= 3);
      check Alcotest.bool (label ^ ": rejects non-positive") true
        (match Policy.resize p 0 with
        | () -> false
        | exception Invalid_argument _ -> true))
    [
      ("clock", Minirel_cache.Clock.create);
      ("lru", Minirel_cache.Lru.create);
      ("fifo", Minirel_cache.Fifo.create);
      ("2q", Minirel_cache.Two_q.create);
      ("2q-full", Minirel_cache.Two_q_full.create);
    ]

let test_manager_rebalance () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c_eqt = Template.compile catalog Helpers.eqt_spec in
  let grid = Discretize.of_cuts (List.init 11 (fun i -> vi (i * 10))) in
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_e" ~attrs:[ "e" ] ());
  let c_iv = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  let m = Manager.create ~default_f_max:2 catalog in
  let v1 = Manager.create_view ~ub_bytes:40_000 m c_eqt in
  let v2 = Manager.create_view ~ub_bytes:40_000 m c_iv in
  check Alcotest.bool "no budget, no rebalance" true (Manager.rebalance m = []);
  Manager.set_global_budget m 80_000;
  check Alcotest.bool "budget armed" true (Manager.global_budget m = Some 80_000);
  (* all traffic to v1: its hit value per byte should dominate *)
  for f = 0 to 4 do
    for g = 0 to 3 do
      let inst =
        Instance.make c_eqt [| Instance.Dvalues [ vi f ]; Instance.Dvalues [ vi g ] |]
      in
      for _ = 1 to 3 do
        ignore (Manager.answer m inst ~on_tuple:(fun _ _ -> ()))
      done
    done
  done;
  let ls = Manager.rebalance m in
  check Alcotest.int "both views re-sized" 2 (List.length ls);
  check Alcotest.int "rebalance counted" 1 (Manager.rebalances m);
  let l_of name = List.assoc name ls in
  check Alcotest.bool "hot view grows past the cold one" true (l_of "eqt" > l_of "eqt_iv");
  check Alcotest.bool "cold view keeps its floored share" true (l_of "eqt_iv" > 0);
  check Alcotest.int "capacity applied to the hot store" (l_of "eqt")
    (Pmv.Entry_store.capacity (View.store v1));
  check Alcotest.int "capacity applied to the cold store" (l_of "eqt_iv")
    (Pmv.Entry_store.capacity (View.store v2));
  (* answers stay exact after the resize *)
  let inst =
    Instance.make c_eqt [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |]
  in
  let got = ref [] in
  let _ = Manager.answer m inst ~on_tuple:(fun _ t -> got := t :: !got) in
  check Alcotest.bool "exact after rebalance" true
    (Helpers.same_multiset !got (Helpers.brute_force_answer catalog inst))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_sketch_overcounts;
    QCheck_alcotest.to_alcotest qcheck_sketch_decay_monotone;
    QCheck_alcotest.to_alcotest qcheck_no_false_light;
    Alcotest.test_case "classifier heavy/light" `Quick test_classifier_heavy_light;
    Alcotest.test_case "adaptive == eager answers (both probe paths)" `Quick
      test_adaptive_matches_eager;
    Alcotest.test_case "torture oracle clean, shards x probe paths" `Slow
      test_torture_adaptive;
    Alcotest.test_case "flush_pending clears lapse-only deltas" `Quick
      test_flush_pending_lapsed;
    Alcotest.test_case "policy resize across all policies" `Quick test_policy_resize;
    Alcotest.test_case "manager budget rebalance" `Quick test_manager_rebalance;
  ]
