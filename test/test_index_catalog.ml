open Minirel_storage
module Catalog = Minirel_index.Catalog
module Index = Minirel_index.Index
module Hash_index = Minirel_index.Hash_index

let check = Alcotest.check

let test_hash_index () =
  let h = Hash_index.create () in
  let k i : Tuple.t = [| Value.Int i |] in
  let rid i = Rid.make ~page:i ~slot:0 in
  Hash_index.insert h (k 1) (rid 1);
  Hash_index.insert h (k 1) (rid 2);
  Hash_index.insert h (k 2) (rid 3);
  check Alcotest.int "n_keys" 2 (Hash_index.n_keys h);
  check Alcotest.int "n_entries" 3 (Hash_index.n_entries h);
  check Alcotest.int "find dup" 2 (List.length (Hash_index.find h (k 1)));
  check Alcotest.bool "delete" true (Hash_index.delete h (k 1) (rid 1));
  check Alcotest.bool "delete gone" false (Hash_index.delete h (k 1) (rid 1));
  check Alcotest.int "after delete" 1 (List.length (Hash_index.find h (k 1)));
  check (Alcotest.list Alcotest.int) "missing" []
    (List.map (fun (r : Rid.t) -> r.Rid.page) (Hash_index.find h (k 42)))

let test_catalog_basics () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  check Alcotest.bool "relation exists" true (Catalog.mem catalog "r");
  check Alcotest.bool "unknown relation" false (Catalog.mem catalog "zzz");
  check Alcotest.int "two relations" 2 (List.length (Catalog.relations catalog));
  check Alcotest.int "r indexes" 2 (List.length (Catalog.indexes catalog "r"));
  (match Catalog.index_on catalog ~rel:"r" ~attrs:[ "f" ] with
  | Some ix -> check Alcotest.string "index_on finds r_f" "r_f" (Index.name ix)
  | None -> Alcotest.fail "index_on r.f");
  check Alcotest.bool "index_on missing" true
    (Catalog.index_on catalog ~rel:"r" ~attrs:[ "payload" ] = None)

let test_index_backfill () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:50 catalog;
  (* a new index over existing data must see every tuple *)
  let ix = Catalog.create_index catalog ~rel:"r" ~name:"r_rkey" ~attrs:[ "rkey" ] () in
  check Alcotest.int "backfilled entries" 50 (Index.n_entries ix);
  check Alcotest.int "lookup" 1 (List.length (Index.find ix [| Value.Int 17 |]))

let test_catalog_mutations_keep_indexes () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:30 catalog;
  let ix =
    match Catalog.index_on catalog ~rel:"r" ~attrs:[ "f" ] with
    | Some ix -> ix
    | None -> Alcotest.fail "no index"
  in
  let before = Index.n_entries ix in
  let rid =
    Catalog.insert catalog ~rel:"r"
      [| Value.Int 1000; Value.Int 5; Value.Int 3; Value.Str "p" |]
  in
  check Alcotest.int "insert indexed" (before + 1) (Index.n_entries ix);
  let _old =
    Catalog.update catalog ~rel:"r" rid
      [| Value.Int 1000; Value.Int 5; Value.Int 7; Value.Str "p" |]
  in
  check Alcotest.bool "update moved key" true
    (List.exists
       (fun r -> Rid.equal r rid)
       (Index.find ix [| Value.Int 7 |]))
  ;
  check Alcotest.bool "old key gone" true
    (not (List.exists (fun r -> Rid.equal r rid) (Index.find ix [| Value.Int 3 |])));
  let _t = Catalog.delete catalog ~rel:"r" rid in
  check Alcotest.int "delete unindexed" before (Index.n_entries ix)

let test_duplicate_names_rejected () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  (match Catalog.create_relation catalog Helpers.r_schema with
  | _ -> Alcotest.fail "duplicate relation accepted"
  | exception Invalid_argument _ -> ());
  match Catalog.create_index catalog ~rel:"r" ~name:"r_f" ~attrs:[ "f" ] () with
  | _ -> Alcotest.fail "duplicate index accepted"
  | exception Invalid_argument _ -> ()

let prop_index_consistent_with_heap =
  QCheck2.Test.make ~name:"secondary index always mirrors the heap" ~count:60
    QCheck2.Gen.(list_size (int_range 1 80) (pair (int_range 0 2) (int_range 0 9)))
    (fun ops ->
      let catalog = Helpers.fresh_catalog () in
      let sch = Schema.create "x" [ ("k", Schema.Tint); ("v", Schema.Tint) ] in
      let _ = Catalog.create_relation catalog sch in
      let ix = Catalog.create_index catalog ~rel:"x" ~name:"x_k" ~attrs:[ "k" ] () in
      let live = ref [] in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
              let rid = Catalog.insert catalog ~rel:"x" [| Value.Int k; Value.Int 0 |] in
              live := (rid, k) :: !live
          | 1 -> (
              match !live with
              | (rid, _) :: rest ->
                  live := rest;
                  ignore (Catalog.delete catalog ~rel:"x" rid)
              | [] -> ())
          | _ -> (
              match !live with
              | (rid, _) :: rest ->
                  ignore (Catalog.update catalog ~rel:"x" rid [| Value.Int k; Value.Int 1 |]);
                  live := (rid, k) :: rest
              | [] -> ()))
        ops;
      (* every live rid must be findable under its current key *)
      List.for_all
        (fun (rid, k) ->
          List.exists (fun r -> Rid.equal r rid) (Index.find ix [| Value.Int k |]))
        !live
      && Index.n_entries ix = List.length !live)

let test_catalog_validate () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  (* a healthy catalog validates *)
  Catalog.validate catalog;
  (* random mutations keep it healthy *)
  let rng = Minirel_prng.Split_mix.create ~seed:9 in
  let module SM = Minirel_prng.Split_mix in
  for _ = 1 to 60 do
    (match SM.int rng ~bound:3 with
    | 0 ->
        ignore
          (Catalog.insert catalog ~rel:"r"
             [| Value.Int (2000 + SM.int rng ~bound:500); Value.Int 1; Value.Int 1; Value.Str "x" |])
    | 1 -> (
        let heap = Catalog.heap catalog "r" in
        let victim = ref None in
        (try
           Heap_file.iter heap (fun rid _ ->
               victim := Some rid;
               raise Exit)
         with Exit -> ());
        match !victim with Some rid -> ignore (Catalog.delete catalog ~rel:"r" rid) | None -> ())
    | _ -> ());
    ()
  done;
  Catalog.validate catalog;
  (* sabotage: desync an index and expect detection *)
  let ix =
    match Catalog.index_on catalog ~rel:"r" ~attrs:[ "f" ] with
    | Some ix -> ix
    | None -> Alcotest.fail "index"
  in
  Index.insert ix [| Value.Int 0; Value.Int 0; Value.Int 77; Value.Str "ghost" |] (Rid.make ~page:9999 ~slot:0);
  match Catalog.validate catalog with
  | () -> Alcotest.fail "desynchronised index not detected"
  | exception Catalog.Inconsistent _ -> ()

let suite =
  [
    Alcotest.test_case "hash index" `Quick test_hash_index;
    Alcotest.test_case "catalog validate (fsck)" `Quick test_catalog_validate;
    Alcotest.test_case "catalog basics" `Quick test_catalog_basics;
    Alcotest.test_case "index backfill" `Quick test_index_backfill;
    Alcotest.test_case "mutations keep indexes" `Quick test_catalog_mutations_keep_indexes;
    Alcotest.test_case "duplicate names rejected" `Quick test_duplicate_names_rejected;
    QCheck_alcotest.to_alcotest prop_index_consistent_with_heap;
  ]
