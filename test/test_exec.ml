open Minirel_storage
open Minirel_query
module Plan = Minirel_exec.Plan
module Executor = Minirel_exec.Executor
module Planner = Minirel_exec.Planner
module Cursor = Minirel_exec.Cursor
module Btree = Minirel_index.Btree

let check = Alcotest.check
let vi i = Value.Int i

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  catalog

let test_cursor_combinators () =
  let c = Cursor.of_list [ 1; 2; 3; 4 ] in
  check (Alcotest.list Alcotest.int) "map/filter"
    [ 4; 8 ]
    (Cursor.to_list (Cursor.map (fun x -> x * 2) (Cursor.filter (fun x -> x mod 2 = 0) c)));
  let c2 = Cursor.concat_map_list (fun x -> [ x; x * 10 ]) (Cursor.of_list [ 1; 2 ]) in
  check (Alcotest.list Alcotest.int) "concat_map" [ 1; 10; 2; 20 ] (Cursor.to_list c2);
  let c3 = Cursor.append (Cursor.of_list [ 1 ]) (Cursor.of_list [ 2 ]) in
  check (Alcotest.list Alcotest.int) "append" [ 1; 2 ] (Cursor.to_list c3);
  check Alcotest.int "count" 3 (Cursor.count (Cursor.of_list [ (); (); () ]));
  check (Alcotest.list Alcotest.int) "empty" [] (Cursor.to_list Cursor.empty);
  (* cursors are exhausted once drained *)
  let c4 = Cursor.of_list [ 7 ] in
  ignore (Cursor.to_list c4);
  check (Alcotest.option Alcotest.int) "stays exhausted" None (c4 ())

let test_scan_with_filter () =
  let catalog = setup () in
  let plan = Plan.Scan { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 3) } in
  let rows = Executor.run_to_list catalog plan in
  (* rkey mod 10 = 3 -> rkeys 3, 13, ..., 193 *)
  check Alcotest.int "filtered scan count" 20 (List.length rows);
  check Alcotest.bool "all satisfy" true
    (List.for_all (fun t -> Value.equal t.(2) (vi 3)) rows)

let test_index_lookup () =
  let catalog = setup () in
  let plan =
    Plan.Index_lookup
      { rel = "r"; index = "r_f"; keys = [ [| vi 3 |]; [| vi 5 |] ]; pred = Predicate.True }
  in
  let rows = Executor.run_to_list catalog plan in
  let expect =
    Executor.run_to_list catalog
      (Plan.Scan { rel = "r"; pred = Predicate.In_set (2, [ vi 3; vi 5 ]) })
  in
  check Alcotest.bool "index lookup = filtered scan" true (Helpers.same_multiset rows expect)

let test_index_range () =
  let catalog = setup () in
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_e" ~attrs:[ "e" ] ());
  let plan =
    Plan.Index_range
      {
        rel = "s";
        index = "s_e";
        ranges = [ (Btree.Inclusive [| vi 10 |], Btree.Exclusive [| vi 20 |]) ];
        pred = Predicate.True;
      }
  in
  let rows = Executor.run_to_list catalog plan in
  let expect =
    Executor.run_to_list catalog
      (Plan.Scan
         {
           rel = "s";
           pred = Predicate.In_interval (2, Interval.half_open ~lo:(vi 10) ~hi:(vi 20));
         })
  in
  check Alcotest.bool "range = filtered scan" true (Helpers.same_multiset rows expect);
  check Alcotest.int "ten rows" 10 (List.length rows)

let test_inlj_vs_nlj () =
  let catalog = setup () in
  let outer = Plan.Scan { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 1) } in
  let inlj =
    Plan.Inlj { outer; rel = "s"; index = "s_d"; outer_key = [| 1 |]; pred = Predicate.True }
  in
  let nlj = Plan.Nlj { outer; rel = "s"; eq = [ (1, 0) ]; pred = Predicate.True } in
  let a = Executor.run_to_list catalog inlj in
  let b = Executor.run_to_list catalog nlj in
  check Alcotest.bool "INLJ = NLJ" true (Helpers.same_multiset a b);
  check Alcotest.bool "join produced rows" true (a <> [])

let test_project () =
  let catalog = setup () in
  let plan =
    Plan.Project
      ([| 0 |], Plan.Scan { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 7) })
  in
  match Executor.run_to_list catalog plan with
  | [ t ] -> check Alcotest.int "projected arity" 1 (Tuple.arity t)
  | other -> Alcotest.failf "expected 1 row, got %d" (List.length other)

let test_planner_vs_brute_force () =
  let catalog = setup () in
  let c = Template.compile catalog Helpers.eqt_spec in
  let rng = Minirel_prng.Split_mix.create ~seed:3 in
  for _ = 1 to 25 do
    let f1 = Minirel_prng.Split_mix.int rng ~bound:10 in
    let f2 = (f1 + 1 + Minirel_prng.Split_mix.int rng ~bound:8) mod 10 in
    let g1 = Minirel_prng.Split_mix.int rng ~bound:8 in
    let inst =
      Instance.make c [| Instance.Dvalues [ vi f1; vi f2 ]; Instance.Dvalues [ vi g1 ] |]
    in
    let plan = Planner.plan_query catalog inst in
    let got = Executor.run_to_list catalog plan in
    let expect = Helpers.brute_force_answer catalog inst in
    if not (Helpers.same_multiset got expect) then
      Alcotest.failf "planner mismatch: got %d, expected %d rows" (List.length got)
        (List.length expect)
  done

let test_planner_interval_template () =
  let catalog = setup () in
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_e" ~attrs:[ "e" ] ());
  let grid = Discretize.of_cuts [ vi 20; vi 40; vi 60; vi 80; vi 100 ] in
  let c = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  let inst =
    Instance.make c
      [|
        Instance.Dvalues [ vi 1; vi 4 ];
        Instance.Dintervals
          [
            Interval.half_open ~lo:(vi 15) ~hi:(vi 45);
            Interval.half_open ~lo:(vi 70) ~hi:(vi 75);
          ];
      |]
  in
  let got = Executor.run_to_list catalog (Planner.plan_query catalog inst) in
  let expect = Helpers.brute_force_answer catalog inst in
  check Alcotest.bool "interval planner = brute force" true (Helpers.same_multiset got expect);
  check Alcotest.bool "nonempty" true (got <> [])

let test_plan_delta_join () =
  let catalog = setup () in
  let c = Template.compile catalog Helpers.eqt_spec in
  (* pretend tuple (rkey=500, c=7, f=3, pay) was deleted from r: its join
     results must be exactly the s rows with d = 7 *)
  let delta = [ [| vi 500; vi 7; vi 3; Value.Str "p" |] ] in
  let plan = Planner.plan_delta_join catalog c ~delta_rel:0 delta in
  let rows = Executor.run_to_list catalog plan in
  let s_matches =
    Executor.run_to_list catalog
      (Plan.Scan { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 0, vi 7) })
  in
  check Alcotest.int "delta join fanout" (List.length s_matches) (List.length rows);
  check Alcotest.bool "all results carry the delta's f" true
    (List.for_all (fun t -> Value.equal t.(2) (vi 3)) rows)

let test_plan_full_join () =
  let catalog = setup () in
  let c = Template.compile catalog Helpers.eqt_spec in
  let rows = Executor.run_to_list catalog (Planner.plan_full_join catalog c) in
  (* brute force full join, no Cselect *)
  let all =
    List.concat_map
      (fun rt ->
        List.filter_map
          (fun st ->
            if Value.equal rt.(1) st.(0) then
              Some (Template.result_of_joined c (Tuple.concat rt st))
            else None)
          (Heap_file.fold (Minirel_index.Catalog.heap catalog "s") (fun a _ t -> t :: a) []))
      (Heap_file.fold (Minirel_index.Catalog.heap catalog "r") (fun a _ t -> t :: a) [])
  in
  check Alcotest.bool "full join matches" true (Helpers.same_multiset rows all)

let test_time_to_first_tuple_is_pipelined () =
  (* pulling one tuple from an index-driven plan must not drain it *)
  let catalog = setup () in
  let c = Template.compile catalog Helpers.eqt_spec in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 2 ] |] in
  let cursor = Executor.cursor catalog (Planner.plan_query catalog inst) in
  match cursor () with
  | Some _ -> () (* first tuple came without exhausting the cursor *)
  | None ->
      (* acceptable only if the query is genuinely empty *)
      check Alcotest.int "query truly empty" 0
        (List.length (Helpers.brute_force_answer catalog inst))

let suite =
  [
    Alcotest.test_case "cursor combinators" `Quick test_cursor_combinators;
    Alcotest.test_case "scan with filter" `Quick test_scan_with_filter;
    Alcotest.test_case "index lookup" `Quick test_index_lookup;
    Alcotest.test_case "index range" `Quick test_index_range;
    Alcotest.test_case "inlj = nlj" `Quick test_inlj_vs_nlj;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "planner vs brute force" `Quick test_planner_vs_brute_force;
    Alcotest.test_case "planner interval template" `Quick test_planner_interval_template;
    Alcotest.test_case "delta join plan" `Quick test_plan_delta_join;
    Alcotest.test_case "full join plan" `Quick test_plan_full_join;
    Alcotest.test_case "pipelined first tuple" `Quick test_time_to_first_tuple_is_pipelined;
  ]
