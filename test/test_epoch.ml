(* Epoch-based reclamation and the lock-free entry-store read side:
   guard lifecycle, deferred reclamation, version-chain retirement and
   shutdown drain; a multi-domain storm proving probes never observe
   torn or uncommitted versions under concurrent maintenance; and a
   qcheck property that the epoch read path's answers match the
   S/X-locked oracle across interleaved DML. *)

open Minirel_storage
open Minirel_query
module Epoch = Minirel_parallel.Epoch
module Entry_store = Pmv.Entry_store
module Engine = Minirel_engine.Engine
module Txn = Minirel_txn.Txn

let check = Alcotest.check
let vi i = Value.Int i
let bcp i : Bcp.t = [| vi i |]
let tup i j : Tuple.t = [| vi i; vi j |]

let test_enter_leave () =
  let e = Epoch.create () in
  check Alcotest.int "idle" 0 (Epoch.active_readers e);
  let g1 = Epoch.enter e in
  let g2 = Epoch.enter e in
  check Alcotest.int "two readers" 2 (Epoch.active_readers e);
  Epoch.leave e g1;
  check Alcotest.int "one left" 1 (Epoch.active_readers e);
  Epoch.leave e g2;
  check Alcotest.int "idle again" 0 (Epoch.active_readers e);
  check Alcotest.bool "epoch counts up" true (Epoch.current_epoch e >= 1)

let test_deferred_reclaim () =
  let e = Epoch.create () in
  let released = ref false in
  let g = Epoch.enter e in
  Epoch.retire e (fun () -> released := true);
  (* the active reader entered before retirement, so the version must
     survive every reclaim attempt until it leaves *)
  check Alcotest.int "nothing reclaimable yet" 0 (Epoch.reclaim e);
  check Alcotest.bool "not released under a reader" false !released;
  let s = Epoch.stats e in
  check Alcotest.int "retired" 1 s.Epoch.retired;
  check Alcotest.int "in flight" 1 s.Epoch.in_flight;
  Epoch.leave e g;
  check Alcotest.int "released after leave" 1 (Epoch.reclaim e);
  check Alcotest.bool "release ran" true !released;
  let s = Epoch.stats e in
  check Alcotest.int "reclaimed" 1 s.Epoch.reclaimed;
  check Alcotest.int "chain empty" 0 s.Epoch.in_flight

let test_late_reader_does_not_pin () =
  (* a reader that enters after retirement must not keep the version
     alive: it can only observe the new pointer *)
  let e = Epoch.create () in
  Epoch.retire e (fun () -> ());
  let g = Epoch.enter e in
  check Alcotest.bool "late reader does not pin" true (Epoch.reclaim e >= 0);
  check Alcotest.int "chain empty despite reader" 0 (Epoch.stats e).Epoch.in_flight;
  Epoch.leave e g

let test_drain () =
  let e = Epoch.create () in
  let n = ref 0 in
  let _g = Epoch.enter e in
  for _ = 1 to 5 do
    Epoch.retire e (fun () -> incr n)
  done;
  (* shutdown path: unconditional, even with a reader never leaving *)
  check Alcotest.int "drain releases everything" 5 (Epoch.drain e);
  check Alcotest.int "all releases ran" 5 !n;
  check Alcotest.int "nothing in flight" 0 (Epoch.stats e).Epoch.in_flight

let test_version_chain_retirement () =
  let s = Entry_store.create ~capacity:4 ~f_max:8 () in
  let e = Entry_store.admit_for_fill s (bcp 1) in
  for j = 1 to 3 do
    ignore (Entry_store.add_tuple s e (tup 1 j))
  done;
  (* every fill republished the entry, retiring its predecessor *)
  check Alcotest.bool "publishes retired predecessors" true
    ((Entry_store.epoch_stats s).Epoch.retired >= 3);
  ignore
    (Entry_store.install_complete s (bcp 1) [ tup 1 9 ]
       ~stamp:(Entry_store.current_stamp s));
  Entry_store.shutdown s;
  check Alcotest.int "shutdown drains the chain" 0
    (Entry_store.epoch_stats s).Epoch.in_flight

let test_stamp_lifecycle () =
  let s = Entry_store.create ~capacity:4 ~f_max:4 () in
  let s0 = Entry_store.current_stamp s in
  ignore (Entry_store.install_complete s (bcp 1) [ tup 1 1 ] ~stamp:s0);
  (match Entry_store.probe s (bcp 1) with
  | Some v ->
      check Alcotest.bool "fresh install trusted" true
        (Entry_store.version_trusted s v)
  | None -> Alcotest.fail "installed bcp must be resident");
  Entry_store.invalidate_complete s;
  check Alcotest.bool "stamp moved" true (Entry_store.current_stamp s > s0);
  (match Entry_store.probe s (bcp 1) with
  | Some v ->
      check Alcotest.bool "stale install untrusted" false
        (Entry_store.version_trusted s v)
  | None -> Alcotest.fail "bcp still resident");
  (* an install raced by a delta (captured stamp is old) publishes
     already-untrusted: soundness never depends on winning the race *)
  ignore (Entry_store.install_complete s (bcp 2) [ tup 2 1 ] ~stamp:s0);
  match Entry_store.probe s (bcp 2) with
  | Some v ->
      check Alcotest.bool "lost install race untrusted" false
        (Entry_store.version_trusted s v)
  | None -> Alcotest.fail "bcp 2 must be resident"

(* Four reader domains hammer [probe] while the test domain plays the
   maintenance writer: installs, partial fills, invalidations and
   capacity evictions. Every version a reader observes must be
   internally consistent — its count matches its tuple list, and every
   tuple belongs to the probed bcp and to one single committed
   publication (the writer never commits a mixed-generation set). *)
let test_multi_domain_storm () =
  let s = Entry_store.create ~capacity:16 ~f_max:8 () in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let observed = Atomic.make 0 in
  let universe = 24 in
  let reader seed =
    Domain.spawn (fun () ->
        let x = ref (seed + 1) in
        while not (Atomic.get stop) do
          x := (!x * 1103515245) + 12345;
          let b = abs !x mod universe in
          match Entry_store.probe s (bcp b) with
          | None -> ()
          | Some v ->
              Atomic.incr observed;
              if v.Entry_store.v_n <> List.length v.Entry_store.v_tuples then
                Atomic.incr torn;
              (match v.Entry_store.v_tuples with
              | [] -> ()
              | t0 :: _ ->
                  if
                    not
                      (List.for_all
                         (fun (t : Tuple.t) ->
                           Value.equal t.(0) (vi b) && Value.equal t.(1) t0.(1))
                         v.Entry_store.v_tuples)
                  then Atomic.incr torn)
        done)
  in
  let readers = List.init 4 reader in
  for g = 1 to 2_000 do
    let b = g mod universe in
    let n = 1 + (g mod 4) in
    ignore
      (Entry_store.install_complete s (bcp b)
         (List.init n (fun _ -> tup b g))
         ~stamp:(Entry_store.current_stamp s));
    if g mod 7 = 0 then ignore (Entry_store.remove_tuple s (bcp b) (tup b g));
    if g mod 64 = 0 then Entry_store.invalidate_complete s;
    if g mod 512 = 0 then ignore (Entry_store.reclaim s)
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  check Alcotest.int "no torn or uncommitted version observed" 0
    (Atomic.get torn);
  check Alcotest.bool "readers actually observed versions" true
    (Atomic.get observed > 0);
  check Alcotest.bool "store invariants survive the storm" true
    (Entry_store.invariants_ok s);
  Entry_store.shutdown s;
  check Alcotest.int "retire chain drained at shutdown" 0
    (Entry_store.epoch_stats s).Epoch.in_flight

(* A removed tuple (partial republication) must leave probes a
   version that is merely no longer trusted as complete — torn-ness is
   impossible, staleness is detected by the stamp. *)
let prop_epoch_matches_locked =
  QCheck2.Test.make ~name:"epoch answers == locked oracle across DML" ~count:25
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8) (pair (int_range 0 7) (int_range 0 7)))
        (list_size (int_range 0 5) (int_range 0 39)))
    (fun (queries, inserts) ->
      let e = Engine.scoped () in
      Helpers.build_rs (Engine.catalog e);
      let c = Template.compile (Engine.catalog e) Helpers.eqt_spec in
      ignore (Engine.ensure_view ~capacity:32 e c);
      let answer path q =
        let out = ref [] in
        ignore
          (Engine.answer ~probe_path:path e q ~on_tuple:(fun _ t -> out := t :: !out));
        List.sort Tuple.compare !out
      in
      let agree q =
        (* epoch first (cold: fallback + install), epoch again (fast
           path), then the locked oracle — all three must agree *)
        let cold = answer Pmv.Answer.Epoch q in
        let warm = answer Pmv.Answer.Epoch q in
        let oracle = answer Pmv.Answer.Locked q in
        List.equal Tuple.equal cold oracle && List.equal Tuple.equal warm oracle
      in
      let q_of (f, g) =
        Instance.make c
          [| Instance.Dvalues [ vi f ]; Instance.Dvalues [ vi g ] |]
      in
      List.for_all (fun fg -> agree (q_of fg)) queries
      && begin
           (* interleave maintenance, then re-judge: installs made
              before the DML must be invalidated, not served stale *)
           List.iteri
             (fun i c ->
               ignore
                 (Engine.run e
                    [
                      Txn.Insert
                        {
                          rel = "r";
                          tuple = [| vi (2000 + i); vi c; vi (c mod 10); Value.Str "y" |];
                        };
                    ]))
             inserts;
           let survived = List.for_all (fun fg -> agree (q_of fg)) queries in
           Engine.shutdown e;
           survived
           && (Pmv.View.probe_store
                 (Option.get
                    (Engine.find_view e ~template:c.Template.spec.Template.name))
              |> Entry_store.epoch_stats)
                .Epoch.in_flight = 0
         end)

let suite =
  [
    Alcotest.test_case "enter/leave lifecycle" `Quick test_enter_leave;
    Alcotest.test_case "reclaim defers to active readers" `Quick
      test_deferred_reclaim;
    Alcotest.test_case "late reader does not pin" `Quick
      test_late_reader_does_not_pin;
    Alcotest.test_case "drain releases unconditionally" `Quick test_drain;
    Alcotest.test_case "version chains retire and drain" `Quick
      test_version_chain_retirement;
    Alcotest.test_case "stamp trust lifecycle" `Quick test_stamp_lifecycle;
    Alcotest.test_case "multi-domain probe storm" `Slow test_multi_domain_storm;
    QCheck_alcotest.to_alcotest prop_epoch_matches_locked;
  ]
