(* The template plan cache: skeleton binding equals the full planner,
   hits/misses/invalidations behave, the fast path's hash join matches
   the naive-nested-loop fallback, and TRACE surfaces the counters. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog
module Template = Minirel_query.Template
module Instance = Minirel_query.Instance
module Plan = Minirel_exec.Plan
module Planner = Minirel_exec.Planner
module Plan_cache = Minirel_exec.Plan_cache
module Executor = Minirel_exec.Executor
module Shell = Minirel_shell.Shell

let check = Alcotest.check
let vi i = Value.Int i

let plan_str plan = Fmt.str "%a" Plan.pp plan

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let eqt_catalog () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  (catalog, Template.compile catalog Helpers.eqt_spec)

let inst compiled ~f ~g =
  Instance.make compiled
    [| Instance.Dvalues (List.map vi f); Instance.Dvalues (List.map vi g) |]

let run catalog plan = Executor.run_to_list catalog plan

(* bind (compile_skeleton c i) (params i) reproduces plan_query c i
   byte for byte, values and intervals alike. *)
let test_bind_equals_plan_query () =
  let catalog, compiled = eqt_catalog () in
  let cases =
    [ inst compiled ~f:[ 3 ] ~g:[ 2 ]; inst compiled ~f:[ 1; 4; 7 ] ~g:[ 0; 5 ] ]
  in
  List.iter
    (fun i ->
      let fresh = Planner.plan_query catalog i in
      let bound = Planner.bind (Planner.compile_skeleton catalog i) (Instance.params i) in
      check Alcotest.string "same plan" (plan_str fresh) (plan_str bound))
    cases;
  let grid = Minirel_query.Discretize.of_cuts [ vi 0; vi 40; vi 80; vi 120 ] in
  let civ = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  let iv =
    Instance.make civ
      [|
        Instance.Dvalues [ vi 2 ];
        Instance.Dintervals [ Minirel_query.Discretize.interval_of_id grid 1 ];
      |]
  in
  check Alcotest.string "same interval plan"
    (plan_str (Planner.plan_query catalog iv))
    (plan_str (Planner.bind (Planner.compile_skeleton catalog iv) (Instance.params iv)))

(* First query per (template, driver) misses, later ones hit; both
   deliver the brute-force multiset. *)
let test_hit_miss_and_results () =
  let catalog, compiled = eqt_catalog () in
  let pc = Plan_cache.create catalog in
  let q1 = inst compiled ~f:[ 3 ] ~g:[ 2 ] and q2 = inst compiled ~f:[ 5; 8 ] ~g:[ 1 ] in
  List.iter
    (fun q ->
      check Alcotest.bool "cached results correct" true
        (Helpers.same_multiset (run catalog (Plan_cache.plan pc q))
           (Helpers.brute_force_answer catalog q)))
    [ q1; q2; q1 ];
  let c = Plan_cache.counters pc in
  check Alcotest.int "one miss" 1 c.Plan_cache.misses;
  check Alcotest.int "then hits" 2 c.Plan_cache.hits;
  check Alcotest.int "one skeleton" 1 (Plan_cache.size pc);
  check Alcotest.int "no fallbacks" 0 c.Plan_cache.fallbacks

(* Index DDL bumps the catalog version: the stale skeleton is
   recompiled against the new indexes, never served as-is. *)
let test_invalidation_on_index_ddl () =
  let catalog, compiled = eqt_catalog () in
  let pc = Plan_cache.create catalog in
  let q = inst compiled ~f:[ 3 ] ~g:[ 2 ] in
  let before = plan_str (Plan_cache.plan pc q) in
  check Alcotest.bool "uses s_d inlj before drop" true (contains before "⋈ s.s_d)");
  Catalog.drop_index catalog ~rel:"s" ~name:"s_d";
  let after = plan_str (Plan_cache.plan pc q) in
  let c = Plan_cache.counters pc in
  check Alcotest.int "drop invalidates" 1 c.Plan_cache.invalidations;
  check Alcotest.bool "dropped index gone from plan" false (contains after "s_d");
  check Alcotest.bool "fast path hash join replaces it" true (contains after "hashjoin");
  check Alcotest.bool "post-drop results correct" true
    (Helpers.same_multiset (run catalog (Plan_cache.plan pc q))
       (Helpers.brute_force_answer catalog q));
  ignore (Catalog.create_index catalog ~rel:"s" ~name:"s_d2" ~attrs:[ "d" ] ());
  let rebuilt = plan_str (Plan_cache.plan pc q) in
  check Alcotest.int "create invalidates too" 2 (Plan_cache.counters pc).Plan_cache.invalidations;
  check Alcotest.bool "new index picked up" true (contains rebuilt "⋈ s.s_d2)")

(* A statistics refresh invalidates every cached skeleton. The data
   keeps r.f the most selective driver (5 rows per f class vs 15 per g
   class) so the refreshed plan lands on the same cache key and must go
   through the invalidation path, not a fresh miss. *)
let test_invalidation_on_stats_refresh () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:100 ~n_f:20 catalog;
  let compiled = Template.compile catalog Helpers.eqt_spec in
  let pc = Plan_cache.create catalog in
  let q = inst compiled ~f:[ 3 ] ~g:[ 2 ] in
  ignore (Plan_cache.plan pc q);
  ignore (Plan_cache.plan pc q);
  Plan_cache.set_stats pc (Some (Minirel_exec.Stats.analyze catalog));
  ignore (Plan_cache.plan pc q);
  let c = Plan_cache.counters pc in
  check Alcotest.int "stats refresh invalidates" 1 c.Plan_cache.invalidations;
  check Alcotest.int "hit before the refresh" 1 c.Plan_cache.hits;
  check Alcotest.bool "results survive refresh" true
    (Helpers.same_multiset (run catalog (Plan_cache.plan pc q))
       (Helpers.brute_force_answer catalog q))

(* Disabled cache = pure pass-through: no entries, no counter motion. *)
let test_disabled_passthrough () =
  let catalog, compiled = eqt_catalog () in
  let pc = Plan_cache.create catalog in
  Plan_cache.set_enabled pc false;
  let q = inst compiled ~f:[ 3 ] ~g:[ 2 ] in
  check Alcotest.string "delegates to plan_query"
    (plan_str (Planner.plan_query catalog q))
    (plan_str (Plan_cache.plan pc q));
  check Alcotest.int "no entries" 0 (Plan_cache.size pc);
  let c = Plan_cache.counters pc in
  check Alcotest.int "no misses" 0 c.Plan_cache.misses;
  check Alcotest.int "no hits" 0 c.Plan_cache.hits

(* With the join index gone, the legacy plan is a naive nested loop and
   the fast skeleton a hash join — same multiset either way. *)
let test_hash_join_matches_nlj () =
  let catalog, compiled = eqt_catalog () in
  Catalog.drop_index catalog ~rel:"s" ~name:"s_d";
  List.iter
    (fun q ->
      let slow = Planner.plan_query catalog q in
      let fast =
        Planner.bind (Planner.compile_skeleton ~fast:true catalog q) (Instance.params q)
      in
      check Alcotest.bool "legacy falls back to nlj" true (contains (plan_str slow) "nlj(");
      check Alcotest.bool "fast path hash joins" true (contains (plan_str fast) "hashjoin(");
      let expect = Helpers.brute_force_answer catalog q in
      check Alcotest.bool "nlj matches brute force" true
        (Helpers.same_multiset (run catalog slow) expect);
      check Alcotest.bool "hash join matches nlj" true
        (Helpers.same_multiset (run catalog fast) expect))
    [ inst compiled ~f:[ 3 ] ~g:[ 2 ]; inst compiled ~f:[ 1; 6 ] ~g:[ 0; 3; 7 ] ]

(* Property: over random parameter sets, cached and fresh plans deliver
   the brute-force multiset. *)
let prop_cached_equals_fresh =
  let catalog, compiled = eqt_catalog () in
  let pc = Plan_cache.create catalog in
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 3) (int_range 0 9))
        (list_size (int_range 1 3) (int_range 0 7)))
  in
  QCheck2.Test.make ~name:"plan cache: cached = fresh = brute force" ~count:60 gen
    (fun (fs, gs) ->
      let dedup xs = List.sort_uniq compare xs in
      let q = inst compiled ~f:(dedup fs) ~g:(dedup gs) in
      let expect = Helpers.brute_force_answer catalog q in
      Helpers.same_multiset (run catalog (Plan_cache.plan pc q)) expect
      && Helpers.same_multiset (run catalog (Planner.plan_query catalog q)) expect)

(* TRACE in the shell: per-operator rows/time plus the cache counters. *)
let test_shell_trace () =
  let shell = Shell.create (Helpers.fresh_catalog ()) in
  let run sql = Shell.exec shell sql in
  ignore (run "create table items (ik int, category int, qty int)");
  ignore (run "create index items_category on items (category)");
  for ik = 1 to 20 do
    ignore
      (run (Fmt.str "insert into items values (%d, %d, %d)" ik (ik mod 4) (ik * 2)))
  done;
  let sql = "trace select i.ik from items i where (i.category = 2)" in
  match run sql with
  | Shell.Traced text ->
      check Alcotest.bool "names an operator" true (contains text "ixlookup(items.items_category)");
      check Alcotest.bool "shows rows column" true (contains text "rows out");
      check Alcotest.bool "shows the plan cache" true (contains text "plan cache:");
      (* first trace misses, a repeat hits *)
      (match run sql with
      | Shell.Traced text2 -> check Alcotest.bool "repeat hits" true (contains text2 "hits 1")
      | _ -> Alcotest.fail "second trace")
  | _ -> Alcotest.fail "expected a Traced result"

let suite =
  [
    Alcotest.test_case "bind = plan_query" `Quick test_bind_equals_plan_query;
    Alcotest.test_case "hits, misses, results" `Quick test_hit_miss_and_results;
    Alcotest.test_case "index DDL invalidates" `Quick test_invalidation_on_index_ddl;
    Alcotest.test_case "stats refresh invalidates" `Quick test_invalidation_on_stats_refresh;
    Alcotest.test_case "disabled = pass-through" `Quick test_disabled_passthrough;
    Alcotest.test_case "hash join = nlj" `Quick test_hash_join_matches_nlj;
    QCheck_alcotest.to_alcotest prop_cached_equals_fresh;
    Alcotest.test_case "shell trace" `Quick test_shell_trace;
  ]
