(* Work-stealing pool and SPSC queue semantics — the deque owner/thief
   protocol under steal storms, nested submit/map from workers, task
   exceptions counted instead of swallowed — plus the parallel shard
   fan-out against the sequential oracle (multiset + DS identity and
   tuple-for-tuple order identity: the non-starvation property that
   replaced the FIFO-dispatch invariant), morsel-parallel executor
   cursors against sequential ones, and domain-safety of the shared
   telemetry and PRNG touchpoints under real contention. *)

open Minirel_storage
open Minirel_query
module Pool = Minirel_parallel.Pool
module Spsc = Minirel_parallel.Spsc
module Flight = Minirel_telemetry.Flight
module Router = Minirel_engine.Shard_router
module Check = Minirel_check.Check
module Registry = Minirel_telemetry.Registry
module Histogram = Minirel_telemetry.Histogram
module Plan = Minirel_exec.Plan
module Executor = Minirel_exec.Executor
module SM = Minirel_prng.Split_mix

let check = Alcotest.check
let vi i = Value.Int i

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* --- pool --- *)

let test_pool_map () =
  with_pool ~domains:3 @@ fun pool ->
  let input = Array.init 50 Fun.id in
  check
    (Alcotest.array Alcotest.int)
    "results keep their index"
    (Array.map (fun x -> x * x) input)
    (Pool.map pool (fun x -> x * x) input);
  check (Alcotest.array Alcotest.int) "empty input" [||] (Pool.map pool Fun.id [||]);
  check Alcotest.int "size" 3 (Pool.size pool)

let test_pool_map_exn () =
  with_pool ~domains:2 @@ fun pool ->
  let f x = if x = 4 || x = 7 then failwith (string_of_int x) else x in
  check Alcotest.bool "lowest-index exception re-raises" true
    (match Pool.map pool f (Array.init 10 Fun.id) with
    | _ -> false
    | exception Failure m -> m = "4")

let test_pool_nested_map () =
  (* map from inside a worker runs inline instead of deadlocking on a
     queue only this worker could drain *)
  with_pool ~domains:1 @@ fun pool ->
  let outer =
    Pool.map pool
      (fun x -> Array.fold_left ( + ) 0 (Pool.map pool (fun y -> x * y) [| 1; 2; 3 |]))
      [| 1; 10 |]
  in
  check (Alcotest.array Alcotest.int) "nested totals" [| 6; 60 |] outer

let test_pool_run_all () =
  with_pool ~domains:4 @@ fun pool ->
  let hits = Atomic.make 0 in
  Pool.run_all pool (List.init 32 (fun _ () -> Atomic.incr hits));
  check Alcotest.int "every thunk ran" 32 (Atomic.get hits)

let test_pool_shutdown () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  check Alcotest.int "size after shutdown" 0 (Pool.size pool);
  check Alcotest.bool "submit after shutdown raises" true
    (match Pool.submit pool (fun () -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Satellite fix: a fire-and-forget task that raises is counted (and
   leaves a flight event) instead of vanishing in a catch-all. *)
let test_task_exn_counted () =
  let pool = Pool.create ~domains:2 in
  let ok = Atomic.make 0 in
  for i = 1 to 8 do
    Pool.submit pool (fun () ->
        if i mod 2 = 0 then failwith "boom" else Atomic.incr ok)
  done;
  Pool.shutdown pool;  (* drains every queued task *)
  let s = Pool.stats pool in
  check Alcotest.int "healthy tasks ran" 4 (Atomic.get ok);
  check Alcotest.int "raising tasks counted" 4 s.Pool.task_exns;
  check Alcotest.bool "flight recorded the escapes" true
    (List.exists (fun e -> e.Flight.e_kind = Flight.Task_exn) (Flight.dump ()))

(* Satellite (c): submit from inside a worker runs inline — the task
   has already run when submit returns, so a worker can never deadlock
   waiting on scheduling only it could provide. *)
let test_nested_submit_inline () =
  with_pool ~domains:2 @@ fun pool ->
  let inline_ok = Atomic.make true in
  let nested_ran = Atomic.make 0 in
  let results =
    Pool.map pool
      (fun x ->
        let ran = ref false in
        Pool.submit pool (fun () ->
            Atomic.incr nested_ran;
            ran := true);
        if not !ran then Atomic.set inline_ok false;
        x * 2)
      (Array.init 12 Fun.id)
  in
  check Alcotest.bool "nested submit completed before returning" true
    (Atomic.get inline_ok);
  check Alcotest.int "every nested submit ran" 12 (Atomic.get nested_ran);
  check
    (Alcotest.array Alcotest.int)
    "outer results intact"
    (Array.init 12 (fun x -> x * 2))
    results

(* Nested map from a worker forks onto the worker's own deque
   (stealable by idle workers) instead of running inline — a fork-join
   storm across many concurrent outer tasks must still produce exact
   results, and every subtask must run exactly once. *)
let test_fork_join_storm () =
  with_pool ~domains:4 @@ fun pool ->
  let subtasks = Atomic.make 0 in
  let results =
    Pool.map pool
      (fun x ->
        Array.fold_left ( + ) 0
          (Pool.map pool
             (fun y ->
               Atomic.incr subtasks;
               x * y)
             (Array.init 20 Fun.id)))
      (Array.init 16 Fun.id)
  in
  check
    (Alcotest.array Alcotest.int)
    "fork-join sums exact"
    (Array.init 16 (fun x -> 190 * x))
    results;
  check Alcotest.int "every subtask ran exactly once" (16 * 20)
    (Atomic.get subtasks);
  let s = Pool.stats pool in
  check Alcotest.bool "forked subtasks went through the deques" true
    (s.Pool.local_hits > 0)

(* --- deque owner/thief protocol --- *)

(* Satellite (b): under a multi-domain steal storm interleaved with
   owner pushes and pops (including wraparound refills when the ring
   fills), the multiset of items taken — by owner or thieves — is
   exactly the multiset pushed: nothing lost, nothing duplicated. *)
let prop_deque_steal_storm =
  QCheck2.Test.make ~name:"deque steal storm: no task lost or duplicated"
    ~count:12
    QCheck2.Gen.(pair (int_range 1 4) (int_range 50 400))
    (fun (thieves, items) ->
      let dq = Pool.Deque.create ~capacity:64 in
      let stolen = Array.make thieves [] in
      let stop = Atomic.make false in
      let doms =
        Array.init thieves (fun k ->
            Domain.spawn (fun () ->
                let rec go acc =
                  match Pool.Deque.steal dq with
                  | Some v -> go (v :: acc)
                  | None ->
                      if Atomic.get stop then acc
                      else begin
                        Domain.cpu_relax ();
                        go acc
                      end
                in
                stolen.(k) <- go []))
      in
      let popped = ref [] in
      let note = function Some v -> popped := v :: !popped | None -> () in
      for i = 0 to items - 1 do
        while not (Pool.Deque.push dq i) do
          (* ring full: make room as the owner would (run one task) *)
          note (Pool.Deque.pop dq)
        done;
        if i mod 7 = 0 then note (Pool.Deque.pop dq)
      done;
      let rec drain () =
        match Pool.Deque.pop dq with
        | Some v ->
            popped := v :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      Atomic.set stop true;
      Array.iter Domain.join doms;
      let taken = !popped @ List.concat (Array.to_list stolen) in
      List.sort compare taken = List.init items Fun.id)

(* --- spsc --- *)

let test_spsc_order () =
  (* capacity far below the item count: the producer domain blocks on
     full, the consumer on empty; FIFO order survives both *)
  let q = Spsc.create ~capacity:4 in
  check Alcotest.int "capacity" 4 (Spsc.capacity q);
  let n = 500 in
  let producer = Domain.spawn (fun () -> for i = 0 to n - 1 do Spsc.push q i done) in
  let out = List.init n (fun _ -> Spsc.pop q) in
  Domain.join producer;
  check (Alcotest.list Alcotest.int) "fifo" (List.init n Fun.id) out;
  check Alcotest.int "drained" 0 (Spsc.length q)

(* --- parallel fan-out vs the sequential oracle --- *)

let make_router ~shards =
  let reference = Helpers.fresh_catalog () in
  Helpers.build_rs reference;
  let router = Router.create ~shards () in
  Router.declare router Helpers.r_schema ~part:(`Hash "c");
  Router.declare router Helpers.s_schema ~part:(`Hash "d");
  Router.load_from router reference;
  let compiled = Template.compile reference Helpers.eqt_spec in
  ignore (Router.create_view ~capacity:64 router compiled);
  (reference, router, compiled)

let inst c ~fs ~gs =
  let dvs l = Instance.Dvalues (List.map vi (List.sort_uniq compare l)) in
  Instance.make c [| dvs fs; dvs gs |]

let stream router q =
  let out = ref [] in
  let stats, _ = Router.answer router q ~on_tuple:(fun p t -> out := (p, t) :: !out) in
  (List.rev !out, stats)

let same_stream a b =
  List.equal (fun (p1, t1) (p2, t2) -> p1 = p2 && Tuple.equal t1 t2) a b

(* Cold then warm: the parallel merged stream must be tuple-for-tuple
   (and phase-for-phase) the sequential router's, oracle-clean with
   the DS identity intact under summation. This is satellite (a): the
   work-stealing scheduler may claim, steal and interleave shard tasks
   and their morsel forks any way it likes across 1-4 shards x 1-4
   domains — the merged stream contents and order must not move. The
   warm round also exercises the router's engine-affinity slots. *)
let prop_parallel_fanout =
  QCheck2.Test.make ~name:"parallel fan-out == sequential oracle under stealing"
    ~count:20
    QCheck2.Gen.(
      quad (int_range 1 4) (int_range 1 4)
        (list_size (int_range 1 3) (int_range 0 9))
        (list_size (int_range 1 3) (int_range 0 7)))
    (fun (shards, domains, fs, gs) ->
      let reference, seq_router, seq_c = make_router ~shards in
      let _, par_router, par_c = make_router ~shards in
      with_pool ~domains @@ fun pool ->
      Router.set_parallel par_router (Some pool);
      let rounds =
        List.for_all
          (fun () ->
            let seq_out, _ = stream seq_router (inst seq_c ~fs ~gs) in
            let q = inst par_c ~fs ~gs in
            let par_out, _ = stream par_router q in
            same_stream seq_out par_out
            && Check.report_ok
                 (Check.check_answer_via
                    ~expected:(Check.ground_truth reference q)
                    (fun ~on_tuple -> fst (Router.answer par_router q ~on_tuple))))
          [ (); () ]
      in
      rounds)

(* --- morsel-parallel executor cursors --- *)

let test_morsel_cursors () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:600 ~n_s:300 catalog;
  with_pool ~domains:3 @@ fun pool ->
  let plans =
    [
      ("scan", Plan.Scan { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 3) });
      ("scan-all", Plan.Scan { rel = "s"; pred = Predicate.True });
      ( "hash-join over scan",
        Plan.Hash_join
          {
            outer = Plan.Scan { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 1) };
            rel = "s";
            outer_key = [| 1 |];
            inner_key = [| 0 |];
            pred = Predicate.True;
          } );
      ( "projected join",
        Plan.Project
          ( [| 0; 4 |],
            Plan.Hash_join
              {
                outer = Plan.Scan { rel = "r"; pred = Predicate.True };
                rel = "s";
                outer_key = [| 1 |];
                inner_key = [| 0 |];
                pred = Predicate.Cmp (Predicate.Eq, 1, vi 2);
              } ) );
    ]
  in
  List.iter
    (fun (name, plan) ->
      let seq = Executor.run_to_list catalog plan in
      let par = Executor.run_to_list ~par:pool catalog plan in
      check Alcotest.bool (name ^ ": non-trivial") true (seq <> []);
      check Alcotest.bool (name ^ ": identical order") true
        (List.equal Tuple.equal seq par))
    plans

(* --- domain-safety of shared touchpoints --- *)

let test_telemetry_contention () =
  with_pool ~domains:4 @@ fun pool ->
  let reg = Registry.create () in
  let c = Registry.counter reg "hammered" in
  let h = Registry.histogram reg "latency" in
  let per_task = 20_000 in
  Pool.run_all pool
    (List.init 4 (fun k () ->
         for i = 1 to per_task do
           Registry.incr c;
           if i mod 100 = 0 then Registry.add c 2;
           Histogram.record h (Int64.of_int ((k * per_task) + i));
           if i mod 1_000 = 0 then ignore (Histogram.quantile h 0.5)
         done));
  check Alcotest.int "counter exact" (4 * (per_task + (per_task / 100 * 2)))
    (Registry.counter_value c);
  check Alcotest.int "histogram count exact" (4 * per_task) (Histogram.count h)

let test_prng_split () =
  let a = SM.create ~seed:7 and b = SM.create ~seed:7 in
  let ca = SM.split a and cb = SM.split b in
  check Alcotest.bool "split streams deterministic" true
    (List.init 20 (fun _ -> SM.next_int64 ca)
    = List.init 20 (fun _ -> SM.next_int64 cb));
  (* parent advanced identically on both sides, and the child stream
     is not the parent's *)
  check Alcotest.bool "parents stay in lockstep" true
    (SM.next_int64 a = SM.next_int64 b);
  let p = SM.create ~seed:7 in
  let child = SM.split p in
  check Alcotest.bool "child differs from parent" true
    (List.init 8 (fun _ -> SM.next_int64 child)
    <> List.init 8 (fun _ -> SM.next_int64 p))

let suite =
  [
    Alcotest.test_case "pool map" `Quick test_pool_map;
    Alcotest.test_case "pool map exception" `Quick test_pool_map_exn;
    Alcotest.test_case "pool nested map" `Quick test_pool_nested_map;
    Alcotest.test_case "pool run_all" `Quick test_pool_run_all;
    Alcotest.test_case "pool shutdown" `Quick test_pool_shutdown;
    Alcotest.test_case "pool task exceptions counted" `Quick test_task_exn_counted;
    Alcotest.test_case "nested submit runs inline" `Quick test_nested_submit_inline;
    Alcotest.test_case "fork-join storm exact" `Quick test_fork_join_storm;
    QCheck_alcotest.to_alcotest prop_deque_steal_storm;
    Alcotest.test_case "spsc order across domains" `Quick test_spsc_order;
    QCheck_alcotest.to_alcotest prop_parallel_fanout;
    Alcotest.test_case "morsel cursors == sequential" `Quick test_morsel_cursors;
    Alcotest.test_case "telemetry exact under contention" `Quick
      test_telemetry_contention;
    Alcotest.test_case "prng split determinism" `Quick test_prng_split;
  ]
