open Minirel_storage
open Minirel_query
module Entry_store = Pmv.Entry_store
module Policies = Minirel_cache.Policies

let check = Alcotest.check
let vi i = Value.Int i
let bcp i : Bcp.t = [| vi i |]
let tup i j : Tuple.t = [| vi i; vi j |]

let test_reference_then_fill () =
  let s = Entry_store.create ~capacity:4 ~f_max:2 () in
  (* CLOCK: cold reference is rejected but storable *)
  (match Entry_store.reference s (bcp 1) with
  | `Rejected true -> ()
  | `Rejected false -> Alcotest.fail "clock must be storable"
  | `Resident _ | `Admitted _ -> Alcotest.fail "cold bcp cannot be resident");
  let e = Entry_store.admit_for_fill s (bcp 1) in
  check Alcotest.bool "fill 1" true (Entry_store.add_tuple s e (tup 1 1));
  check Alcotest.bool "fill 2" true (Entry_store.add_tuple s e (tup 1 2));
  check Alcotest.bool "F bound" false (Entry_store.add_tuple s e (tup 1 3));
  check Alcotest.int "n_tuples" 2 (Entry_store.n_tuples s);
  match Entry_store.reference s (bcp 1) with
  | `Resident e' -> check Alcotest.int "entry found with tuples" 2 e'.Entry_store.n
  | _ -> Alcotest.fail "bcp 1 should be resident"

let test_two_q_storability () =
  let s = Entry_store.create ~policy:Policies.Two_q ~capacity:4 ~f_max:2 () in
  (match Entry_store.reference s (bcp 1) with
  | `Rejected false -> () (* ghost staged: no storage this time *)
  | _ -> Alcotest.fail "2q first reference must reject without storability");
  match Entry_store.reference s (bcp 1) with
  | `Admitted e ->
      check Alcotest.bool "promoted entry fillable" true (Entry_store.add_tuple s e (tup 1 1))
  | _ -> Alcotest.fail "2q second reference must promote"

let test_eviction_drops_tuples () =
  let s = Entry_store.create ~capacity:2 ~f_max:1 () in
  let removed = ref [] in
  Entry_store.set_on_change s (fun change b t ->
      match change with
      | Entry_store.Removed -> removed := (b, t) :: !removed
      | Entry_store.Added -> ());
  List.iter
    (fun i ->
      let e = Entry_store.admit_for_fill s (bcp i) in
      ignore (Entry_store.add_tuple s e (tup i 0)))
    [ 1; 2; 3 ];
  check Alcotest.int "capacity respected" 2 (Entry_store.n_entries s);
  check Alcotest.int "tuples follow entries" 2 (Entry_store.n_tuples s);
  check Alcotest.int "eviction reported" 1 (List.length !removed);
  check Alcotest.bool "invariants" true (Entry_store.invariants_ok s)

let test_remove_tuple () =
  let s = Entry_store.create ~capacity:4 ~f_max:3 () in
  let e = Entry_store.admit_for_fill s (bcp 1) in
  ignore (Entry_store.add_tuple s e (tup 1 1));
  ignore (Entry_store.add_tuple s e (tup 1 1));
  (* duplicates allowed *)
  ignore (Entry_store.add_tuple s e (tup 1 2));
  check Alcotest.bool "remove one occurrence" true (Entry_store.remove_tuple s (bcp 1) (tup 1 1));
  check Alcotest.int "one copy left" 2 (Entry_store.n_tuples s);
  check Alcotest.bool "remove second" true (Entry_store.remove_tuple s (bcp 1) (tup 1 1));
  check Alcotest.bool "absent now" false (Entry_store.remove_tuple s (bcp 1) (tup 1 1));
  check Alcotest.bool "unknown bcp" false (Entry_store.remove_tuple s (bcp 9) (tup 9 9));
  (* empty entries keep their residency *)
  check Alcotest.bool "still resident" true (Entry_store.find s (bcp 1) <> None)

let test_remove_matching () =
  let s = Entry_store.create ~capacity:4 ~f_max:3 () in
  List.iter
    (fun (b, j) ->
      let e = Entry_store.admit_for_fill s (bcp b) in
      ignore (Entry_store.add_tuple s e (tup b j)))
    [ (1, 1); (1, 2); (2, 1); (3, 5) ];
  let n = Entry_store.remove_matching s (fun t -> Value.equal t.(1) (vi 1)) in
  check Alcotest.int "two victims" 2 n;
  check Alcotest.int "left" 2 (Entry_store.n_tuples s);
  check Alcotest.bool "invariants" true (Entry_store.invariants_ok s)

let test_tuple_bytes_accounting () =
  let s = Entry_store.create ~capacity:4 ~f_max:2 () in
  let e = Entry_store.admit_for_fill s (bcp 1) in
  ignore (Entry_store.add_tuple s e (tup 1 1));
  let b1 = Entry_store.tuple_bytes s in
  check Alcotest.int "bytes of one tuple" (Tuple.size_bytes (tup 1 1)) b1;
  ignore (Entry_store.remove_tuple s (bcp 1) (tup 1 1));
  check Alcotest.int "bytes back to zero" 0 (Entry_store.tuple_bytes s)

let test_drop_entry () =
  let s = Entry_store.create ~capacity:4 ~f_max:2 () in
  let e = Entry_store.admit_for_fill s (bcp 1) in
  ignore (Entry_store.add_tuple s e (tup 1 1));
  Entry_store.drop_entry s (bcp 1);
  check Alcotest.int "gone" 0 (Entry_store.n_entries s);
  check Alcotest.int "tuples gone" 0 (Entry_store.n_tuples s);
  (match Entry_store.reference s (bcp 1) with
  | `Rejected _ -> ()
  | _ -> Alcotest.fail "dropped bcp must be cold")

let test_probe_tracks_fills () =
  let s = Entry_store.create ~capacity:4 ~f_max:2 () in
  check Alcotest.bool "cold probe misses" true (Entry_store.probe s (bcp 1) = None);
  let e = Entry_store.admit_for_fill s (bcp 1) in
  ignore (Entry_store.add_tuple s e (tup 1 1));
  (match Entry_store.probe s (bcp 1) with
  | Some v ->
      check Alcotest.int "published count" 1 v.Entry_store.v_n;
      check Alcotest.bool "partial fill is not complete" false
        v.Entry_store.v_complete;
      check Alcotest.bool "incomplete is never trusted" false
        (Entry_store.version_trusted s v)
  | None -> Alcotest.fail "filled bcp must probe");
  Entry_store.drop_entry s (bcp 1);
  check Alcotest.bool "dropped bcp unroutable" true
    (Entry_store.probe s (bcp 1) = None)

let test_install_respects_f_bound () =
  let s = Entry_store.create ~capacity:4 ~f_max:2 () in
  let stamp = Entry_store.current_stamp s in
  check Alcotest.bool "over-F install refused" false
    (Entry_store.install_complete s (bcp 1) [ tup 1 1; tup 1 2; tup 1 3 ] ~stamp);
  check Alcotest.bool "refused install leaves no entry" true
    (Entry_store.probe s (bcp 1) = None);
  check Alcotest.bool "bounded install lands" true
    (Entry_store.install_complete s (bcp 1) [ tup 1 1; tup 1 2 ] ~stamp);
  (match Entry_store.probe s (bcp 1) with
  | Some v ->
      check Alcotest.bool "complete and current: trusted" true
        (Entry_store.version_trusted s v)
  | None -> Alcotest.fail "installed bcp must probe");
  check Alcotest.bool "invariants" true (Entry_store.invariants_ok s);
  Entry_store.shutdown s

let prop_invariants_under_random_ops =
  QCheck2.Test.make ~name:"entry store invariants under random ops" ~count:100
    QCheck2.Gen.(
      triple (int_range 1 6) (int_range 1 3)
        (list_size (int_range 1 150) (triple (int_range 0 2) (int_range 0 9) (int_range 0 5))))
    (fun (capacity, f_max, ops) ->
      let s = Entry_store.create ~capacity ~f_max () in
      List.iter
        (fun (op, b, j) ->
          match op with
          | 0 -> (
              match Entry_store.reference s (bcp b) with
              | `Resident e | `Admitted e -> ignore (Entry_store.add_tuple s e (tup b j))
              | `Rejected true ->
                  let e = Entry_store.admit_for_fill s (bcp b) in
                  ignore (Entry_store.add_tuple s e (tup b j))
              | `Rejected false -> ())
          | 1 -> ignore (Entry_store.remove_tuple s (bcp b) (tup b j))
          | _ -> if j = 0 then Entry_store.drop_entry s (bcp b))
        ops;
      Entry_store.invariants_ok s)

let suite =
  [
    Alcotest.test_case "reference then fill" `Quick test_reference_then_fill;
    Alcotest.test_case "2q storability" `Quick test_two_q_storability;
    Alcotest.test_case "eviction drops tuples" `Quick test_eviction_drops_tuples;
    Alcotest.test_case "remove tuple" `Quick test_remove_tuple;
    Alcotest.test_case "remove matching" `Quick test_remove_matching;
    Alcotest.test_case "byte accounting" `Quick test_tuple_bytes_accounting;
    Alcotest.test_case "drop entry" `Quick test_drop_entry;
    Alcotest.test_case "probe tracks fills" `Quick test_probe_tracks_fills;
    Alcotest.test_case "install respects F bound" `Quick
      test_install_respects_f_bound;
    QCheck_alcotest.to_alcotest prop_invariants_under_random_ops;
  ]
