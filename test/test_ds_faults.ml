(* Direct DS unit tests plus failure-injection scenarios: stale cache
   content when maintenance is not attached, and self-eviction of a
   query's own entries mid-answer. *)

open Minirel_storage
open Minirel_query
module Ds = Pmv.Ds
module View = Pmv.View
module Txn = Minirel_txn.Txn

let check = Alcotest.check
let vi i = Value.Int i

let t1 = [| vi 1; vi 2 |]
let t2 = [| vi 3; vi 4 |]

let test_ds_multiset () =
  let ds = Ds.create () in
  check Alcotest.bool "empty" true (Ds.is_empty ds);
  Ds.add ds t1;
  Ds.add ds t1;
  Ds.add ds t2;
  check Alcotest.int "size counts duplicates" 3 (Ds.size ds);
  check Alcotest.bool "mem" true (Ds.mem ds t1);
  check Alcotest.bool "remove one copy" true (Ds.remove_one ds t1);
  check Alcotest.bool "still a copy left" true (Ds.mem ds t1);
  check Alcotest.bool "remove second copy" true (Ds.remove_one ds t1);
  check Alcotest.bool "gone" false (Ds.mem ds t1);
  check Alcotest.bool "absent remove" false (Ds.remove_one ds t1);
  check Alcotest.int "one left" 1 (Ds.size ds);
  Ds.clear ds;
  check Alcotest.bool "cleared" true (Ds.is_empty ds);
  (* structural keys: a fresh array with equal contents matches *)
  Ds.add ds [| vi 9 |];
  check Alcotest.bool "structural equality" true (Ds.remove_one ds [| vi 9 |])

(* Failure injection: maintenance NOT attached. After a delete, the PMV
   serves a stale tuple once; the answer layer must detect it (leftover
   DS), purge it, and never serve it again. *)
let test_stale_purge_without_maintenance () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:20 ~f_max:3 ~name:"noattach" c in
  let mgr = Txn.create catalog in
  (* note: no Maintain.attach *)
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  ignore (Helpers.collect_answer ~view catalog inst);
  check Alcotest.bool "warmed" true (View.n_tuples view > 0);
  (* destroy every derivation of the cached tuples *)
  ignore (Txn.run mgr [ Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 1, vi 1) } ]);
  let delivered, _, stats = Helpers.collect_answer ~view catalog inst in
  check Alcotest.bool "stale detected and purged" true (stats.Pmv.Answer.stale_purged > 0);
  (* the user never received the stale tuples as the final answer:
     execution returned nothing, and the purged tuples were the O2 ones *)
  check Alcotest.int "execution returned nothing" 0 stats.Pmv.Answer.total_count;
  ignore delivered;
  (* the lie does not repeat *)
  let _, partial2, stats2 = Helpers.collect_answer ~view catalog inst in
  check Alcotest.int "no partials on retry" 0 (List.length partial2);
  check Alcotest.int "no stale on retry" 0 stats2.Pmv.Answer.stale_purged

(* Self-eviction: a tiny PMV whose capacity is below a single query's h
   may evict entries it admitted for the same query. Answers must stay
   exact and bounds must hold. *)
let test_self_eviction_tiny_capacity () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:2 ~f_max:1 ~name:"tiny" c in
  let rng = Minirel_prng.Split_mix.create ~seed:5 in
  for _ = 1 to 40 do
    let module SM = Minirel_prng.Split_mix in
    let fs = SM.distinct rng ~n:3 (fun r -> SM.int r ~bound:10) in
    let gs = SM.distinct rng ~n:3 (fun r -> SM.int r ~bound:8) in
    let inst =
      Instance.make c
        [|
          Instance.Dvalues (List.map (fun i -> vi i) fs);
          Instance.Dvalues (List.map (fun i -> vi i) gs);
        |]
    in
    (* h = 9 >> capacity 2 *)
    let got, _, stats = Helpers.collect_answer ~view catalog inst in
    if not (Helpers.same_multiset got (Helpers.brute_force_answer catalog inst)) then
      Alcotest.fail "tiny-capacity answers diverged";
    check Alcotest.int "no stale" 0 stats.Pmv.Answer.stale_purged;
    check Alcotest.bool "bounds hold" true (View.n_entries view <= 2)
  done;
  check Alcotest.bool "invariants" true (View.invariants_ok view)

(* Detach mid-stream: maintenance attached, then detached; afterwards
   the stale-purge safety net takes over. *)
let test_detach_then_stale () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:20 ~f_max:3 ~name:"detach" c in
  let mgr = Txn.create catalog in
  Pmv.Maintain.attach ~use_locks:false view mgr;
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  ignore (Helpers.collect_answer ~view catalog inst);
  (* while attached, deletes are maintained *)
  ignore (Txn.run mgr [ Txn.Delete { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 0, vi 1) } ]);
  let _, _, st1 = Helpers.collect_answer ~view catalog inst in
  check Alcotest.int "maintained: no stale" 0 st1.Pmv.Answer.stale_purged;
  Pmv.Maintain.detach view mgr;
  ignore (Txn.run mgr [ Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 1, vi 1) } ]);
  let _, _, st2 = Helpers.collect_answer ~view catalog inst in
  (* after detach the view may have gone stale, but the safety net
     catches it and the answer is still exact *)
  check Alcotest.int "execution result exact" 0 st2.Pmv.Answer.total_count;
  let _, _, st3 = Helpers.collect_answer ~view catalog inst in
  check Alcotest.int "stable afterwards" 0 st3.Pmv.Answer.stale_purged

let suite =
  [
    Alcotest.test_case "ds multiset" `Quick test_ds_multiset;
    Alcotest.test_case "stale purge without maintenance" `Quick
      test_stale_purge_without_maintenance;
    Alcotest.test_case "self eviction at tiny capacity" `Quick test_self_eviction_tiny_capacity;
    Alcotest.test_case "detach then stale" `Quick test_detach_then_stale;
  ]
