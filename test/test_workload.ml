open Minirel_storage
open Minirel_query
module Split_mix = Minirel_prng.Split_mix
module Zipf = Minirel_workload.Zipf
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Catalog = Minirel_index.Catalog

let check = Alcotest.check

let test_split_mix_deterministic () =
  let a = Split_mix.create ~seed:1 and b = Split_mix.create ~seed:1 in
  for _ = 1 to 50 do
    check Alcotest.int "same stream" (Split_mix.int a ~bound:1000) (Split_mix.int b ~bound:1000)
  done;
  let c = Split_mix.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Split_mix.int a ~bound:1000 <> Split_mix.int c ~bound:1000 then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_split_mix_ranges () =
  let rng = Split_mix.create ~seed:3 in
  for _ = 1 to 500 do
    let x = Split_mix.int rng ~bound:10 in
    check Alcotest.bool "bound respected" true (x >= 0 && x < 10);
    let y = Split_mix.int_range rng ~lo:5 ~hi:7 in
    check Alcotest.bool "range respected" true (y >= 5 && y <= 7);
    let f = Split_mix.float rng in
    check Alcotest.bool "unit float" true (f >= 0.0 && f < 1.0)
  done

let test_distinct () =
  let rng = Split_mix.create ~seed:4 in
  let xs = Split_mix.distinct rng ~n:20 (fun r -> Split_mix.int r ~bound:25) in
  check Alcotest.int "got n" 20 (List.length xs);
  check Alcotest.int "distinct" 20 (List.length (List.sort_uniq Int.compare xs))

let test_zipf_pmf () =
  let z = Zipf.create ~n:1000 ~alpha:1.07 in
  let total = ref 0.0 in
  for i = 0 to 999 do
    total := !total +. Zipf.pmf z i
  done;
  check Alcotest.bool "pmf sums to 1" true (abs_float (!total -. 1.0) < 1e-9);
  check Alcotest.bool "monotone decreasing" true (Zipf.pmf z 0 > Zipf.pmf z 1);
  check Alcotest.bool "rank 0 heaviest" true (Zipf.pmf z 0 > Zipf.pmf z 500)

let test_zipf_skew_matches_paper () =
  (* Section 4.1: alpha = 1.07 -> ~10% of 1M bcps hold 90% of the mass;
     alpha = 1.01 -> ~21%. Tolerances are loose: the statement is about
     orders of concentration, and we run it at the paper's n. *)
  let hot_frac alpha =
    let z = Zipf.create ~n:1_000_000 ~alpha in
    float_of_int (Zipf.ranks_holding z ~mass:0.9) /. 1_000_000.0
  in
  let f107 = hot_frac 1.07 and f101 = hot_frac 1.01 in
  check Alcotest.bool "alpha=1.07 around 10%" true (f107 > 0.05 && f107 < 0.16);
  check Alcotest.bool "alpha=1.01 around 21%" true (f101 > 0.14 && f101 < 0.30);
  check Alcotest.bool "higher skew concentrates more" true (f107 < f101)

let test_zipf_sampling () =
  let z = Zipf.create ~n:100 ~alpha:1.07 in
  let rng = Split_mix.create ~seed:5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  check Alcotest.bool "rank 0 sampled most" true
    (counts.(0) > counts.(10) && counts.(0) > counts.(50));
  (* empirical mass of rank 0 within 20% of pmf *)
  let emp = float_of_int counts.(0) /. 20_000.0 in
  check Alcotest.bool "empirical close to pmf" true
    (abs_float (emp -. Zipf.pmf z 0) < 0.2 *. Zipf.pmf z 0)

let test_tpcr_generation () =
  let catalog = Helpers.fresh_catalog () in
  let params = Tpcr.params_for_scale 0.002 in
  let counts = Tpcr.generate catalog params in
  check Alcotest.int "customers" 300 counts.Tpcr.customers;
  check Alcotest.int "orders = 10x" 3000 counts.Tpcr.orders;
  check Alcotest.int "lineitems = 4x orders" 12_000 counts.Tpcr.lineitems;
  check Alcotest.int "customer heap" 300
    (Heap_file.n_tuples (Catalog.heap catalog "customer"));
  check Alcotest.int "lineitem heap" 12_000
    (Heap_file.n_tuples (Catalog.heap catalog "lineitem"));
  (* join fanouts are exact in this generator *)
  let orders_per_cust = Hashtbl.create 64 in
  Heap_file.iter (Catalog.heap catalog "orders") (fun _ t ->
      let ck = Value.int_exn t.(1) in
      Hashtbl.replace orders_per_cust ck (1 + Option.value ~default:0 (Hashtbl.find_opt orders_per_cust ck)));
  Hashtbl.iter (fun _ n -> check Alcotest.int "10 orders per customer" 10 n) orders_per_cust;
  (* every selection/join attribute is indexed *)
  List.iter
    (fun (rel, attr) ->
      check Alcotest.bool (rel ^ "." ^ attr ^ " indexed") true
        (Catalog.index_on catalog ~rel ~attrs:[ attr ] <> None))
    [
      ("orders", "orderkey"); ("orders", "orderdate"); ("orders", "custkey");
      ("lineitem", "orderkey"); ("lineitem", "suppkey");
      ("customer", "custkey"); ("customer", "nationkey");
    ]

let test_table1 () =
  let rows = Tpcr.table1 ~scale:1.0 () in
  (match rows with
  | [ c; o; l ] ->
      check Alcotest.int "customer tuples" 150_000 c.Tpcr.tuples;
      check Alcotest.int "orders tuples" 1_500_000 o.Tpcr.tuples;
      check Alcotest.int "lineitem tuples" 6_000_000 l.Tpcr.tuples;
      check (Alcotest.float 1e-6) "customer MB" 23.0 c.Tpcr.nominal_mb;
      check (Alcotest.float 1e-6) "orders MB" 114.0 o.Tpcr.nominal_mb;
      check (Alcotest.float 1e-6) "lineitem MB" 755.0 l.Tpcr.nominal_mb
  | _ -> Alcotest.fail "three rows");
  (* scale 0.5 and 2 from the paper's sweep *)
  let half = List.hd (Tpcr.table1 ~scale:0.5 ()) in
  check Alcotest.int "s=0.5 customers" 75_000 half.Tpcr.tuples

let test_querygen_t1 () =
  let catalog = Helpers.fresh_catalog () in
  let params = Tpcr.params_for_scale 0.002 in
  ignore (Tpcr.generate catalog params);
  let c = Template.compile catalog Querygen.t1_spec in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let rng = Split_mix.create ~seed:6 in
  let inst = Querygen.gen_t1 c ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:3 rng in
  check Alcotest.int "h = e*f" 6 (Condition_part.combination_factor inst);
  match Instance.params inst with
  | [| Instance.Dvalues dates; Instance.Dvalues supps |] ->
      check Alcotest.int "e dates" 2 (List.length dates);
      check Alcotest.int "f suppliers" 3 (List.length supps);
      List.iter
        (fun v ->
          let d = Value.int_exn v in
          check Alcotest.bool "date in domain" true (d >= 1 && d <= params.Tpcr.n_dates))
        dates
  | _ -> Alcotest.fail "parameter shape"

let test_querygen_t2 () =
  let catalog = Helpers.fresh_catalog () in
  let params = Tpcr.params_for_scale 0.002 in
  ignore (Tpcr.generate catalog params);
  let c = Template.compile catalog Querygen.t2_spec in
  let z n = Zipf.create ~n ~alpha:1.07 in
  let rng = Split_mix.create ~seed:7 in
  let inst =
    Querygen.gen_t2 c ~dates_zipf:(z params.Tpcr.n_dates)
      ~supp_zipf:(z params.Tpcr.n_suppliers) ~nation_zipf:(z params.Tpcr.n_nations) ~e:2
      ~f:2 ~g:2 rng
  in
  check Alcotest.int "h = e*f*g" 8 (Condition_part.combination_factor inst)

let test_draw_intervals_disjoint () =
  let grid = Discretize.equal_width ~lo:0 ~hi:1000 ~bins:50 in
  let z = Zipf.create ~n:50 ~alpha:1.07 in
  let rng = Split_mix.create ~seed:8 in
  for _ = 1 to 30 do
    let ivs = Querygen.draw_intervals grid z rng ~count:4 ~span:2 in
    check Alcotest.int "four intervals" 4 (List.length ivs);
    check Alcotest.bool "disjoint" true (Interval.pairwise_disjoint ivs)
  done

let suite =
  [
    Alcotest.test_case "splitmix deterministic" `Quick test_split_mix_deterministic;
    Alcotest.test_case "splitmix ranges" `Quick test_split_mix_ranges;
    Alcotest.test_case "distinct draws" `Quick test_distinct;
    Alcotest.test_case "zipf pmf" `Quick test_zipf_pmf;
    Alcotest.test_case "zipf skew (paper numbers)" `Slow test_zipf_skew_matches_paper;
    Alcotest.test_case "zipf sampling" `Quick test_zipf_sampling;
    Alcotest.test_case "tpcr generation" `Quick test_tpcr_generation;
    Alcotest.test_case "table 1" `Quick test_table1;
    Alcotest.test_case "querygen t1" `Quick test_querygen_t1;
    Alcotest.test_case "querygen t2" `Quick test_querygen_t2;
    Alcotest.test_case "interval drawing disjoint" `Quick test_draw_intervals_disjoint;
  ]
