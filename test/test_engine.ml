(* Engine.t as a first-class instance: scoped engines coexist in one
   process with fully independent fault scopes (failpoints and seeds)
   and telemetry registries, and answering through an engine still
   matches the oracle. *)

open Minirel_storage
open Minirel_query
module Engine = Minirel_engine.Engine
module Fault = Minirel_fault.Fault

let check = Alcotest.check
let vi i = Value.Int i

(* A scoped engine whose pool/catalog live in its own fault scope,
   populated with the r/s fixture. *)
let scoped_rs ?name () =
  let e = Engine.scoped ?name () in
  Helpers.build_rs (Engine.catalog e);
  e

let eqt e = Template.compile (Engine.catalog e) Helpers.eqt_spec

let inst c ~f ~g =
  Instance.make c [| Instance.Dvalues [ vi f ]; Instance.Dvalues [ vi g ] |]

let collect e q =
  let out = ref [] in
  let stats, _ = Engine.answer e q ~on_tuple:(fun _ t -> out := t :: !out) in
  (!out, stats)

let test_answer_matches_oracle () =
  let e = scoped_rs () in
  let c = eqt e in
  ignore (Engine.ensure_view ~capacity:100 e c);
  for f = 0 to 3 do
    let q = inst c ~f ~g:(f + 1) in
    (* cold, then warm through the PMV *)
    let cold, _ = collect e q in
    let warm, _ = collect e q in
    let truth = Helpers.brute_force_answer (Engine.catalog e) q in
    check Helpers.tuples (Fmt.str "cold f=%d" f) truth cold;
    check Helpers.tuples (Fmt.str "warm f=%d" f) truth warm
  done

let test_independent_failpoints () =
  let global_hits = Fault.hits "bufferpool.read" in
  let ea = scoped_rs ~name:"a" () and eb = scoped_rs ~name:"b" () in
  Fault.enable_in ~seed:1 (Engine.fault ea);
  Fault.enable_in ~seed:1 (Engine.fault eb);
  Fault.arm_in (Engine.fault ea) "bufferpool.read" Fault.Always;
  let qa = inst (eqt ea) ~f:1 ~g:1 and qb = inst (eqt eb) ~f:1 ~g:1 in
  (match collect ea qa with
  | _ -> Alcotest.fail "engine a: armed bufferpool.read did not fire"
  | exception Fault.Injected "bufferpool.read" -> ());
  (* the same site in engine b is untouched *)
  let rows, _ = collect eb qb in
  check Alcotest.bool "b still answers" true (rows <> []);
  check Alcotest.int "b never hit the site" 0
    (Fault.hits_in (Engine.fault eb) "bufferpool.read");
  check Alcotest.bool "a recorded the hit" true
    (Fault.hits_in (Engine.fault ea) "bufferpool.read" > 0);
  (* nothing leaked into the process-global scope *)
  check Alcotest.int "global scope untouched" global_hits
    (Fault.hits "bufferpool.read");
  Fault.disable_in (Engine.fault ea);
  Fault.disable_in (Engine.fault eb)

(* Deterministic Prob firing pattern of a scope under a given seed. *)
let fire_pattern ~seed =
  let reg = Fault.create () in
  Fault.enable_in ~seed reg;
  Fault.arm_in reg "site.x" (Fault.Prob 0.5);
  List.init 64 (fun _ -> Fault.fire_in reg "site.x")

let test_independent_seeds () =
  check
    Alcotest.(list bool)
    "same seed reproduces" (fire_pattern ~seed:7) (fire_pattern ~seed:7);
  check Alcotest.bool "different seeds diverge" true
    (fire_pattern ~seed:7 <> fire_pattern ~seed:8);
  (* two live engines draw from their own seeded streams *)
  let ea = Engine.scoped ~name:"a" () and eb = Engine.scoped ~name:"b" () in
  Fault.enable_in ~seed:7 (Engine.fault ea);
  Fault.enable_in ~seed:8 (Engine.fault eb);
  Fault.arm_in (Engine.fault ea) "site.y" (Fault.Prob 0.5);
  Fault.arm_in (Engine.fault eb) "site.y" (Fault.Prob 0.5);
  let pa = List.init 64 (fun _ -> Fault.fire_in (Engine.fault ea) "site.y") in
  let pb = List.init 64 (fun _ -> Fault.fire_in (Engine.fault eb) "site.y") in
  check Alcotest.bool "engines draw independent streams" true (pa <> pb)

let test_independent_telemetry () =
  let ea = scoped_rs ~name:"a" () and eb = scoped_rs ~name:"b" () in
  let ca = eqt ea in
  ignore (Engine.ensure_view ~capacity:50 ea ca);
  let b_before = Engine.snapshot eb in
  let a_before = Engine.snapshot ea in
  ignore (collect ea (inst ca ~f:1 ~g:1));
  ignore (collect ea (inst ca ~f:1 ~g:1));
  check Alcotest.bool "a's metrics moved" true (Engine.snapshot ea <> a_before);
  check Alcotest.bool "b's metrics did not" true (Engine.snapshot eb = b_before);
  (* resetting a leaves b alone *)
  ignore (collect eb (inst (eqt eb) ~f:1 ~g:1));
  let b_active = Engine.snapshot eb in
  Engine.reset_telemetry ea;
  check Alcotest.bool "reset a leaves b" true (Engine.snapshot eb = b_active)

let test_engine_run_feeds_own_view () =
  let ea = scoped_rs ~name:"a" () and eb = scoped_rs ~name:"b" () in
  let ca = eqt ea and cb = eqt eb in
  let va = Engine.ensure_view ~capacity:100 ea ca in
  let vb = Engine.ensure_view ~capacity:100 eb cb in
  ignore (collect ea (inst ca ~f:1 ~g:1));
  ignore (collect eb (inst cb ~f:1 ~g:1));
  let nb = Pmv.View.n_tuples vb in
  (* a DML through engine a maintains a's view and never touches b's *)
  ignore
    (Engine.run ea
       [
         Minirel_txn.Txn.Insert
           { rel = "r"; tuple = [| vi 1001; vi 1; vi 1; Value.Str "x" |] };
       ]);
  check Alcotest.int "b's view untouched" nb (Pmv.View.n_tuples vb);
  ignore va;
  let q = inst ca ~f:1 ~g:1 in
  let rows, _ = collect ea q in
  check Helpers.tuples "a consistent after DML"
    (Helpers.brute_force_answer (Engine.catalog ea) q)
    rows

let test_shutdown_reclaims_versions () =
  (* repeated scoped-engine cycles with epoch-path answers must not
     accumulate retired version chains: shutdown drains both stores *)
  for _ = 1 to 3 do
    let e = scoped_rs () in
    let c = eqt e in
    ignore (Engine.ensure_view ~capacity:50 e c);
    Engine.set_probe_path e Pmv.Answer.Epoch;
    for f = 0 to 3 do
      ignore (collect e (inst c ~f ~g:f));
      ignore (collect e (inst c ~f ~g:f))
    done;
    let v =
      Option.get (Engine.find_view e ~template:c.Template.spec.Template.name)
    in
    Engine.shutdown e;
    List.iter
      (fun store ->
        check Alcotest.int "no version in flight after shutdown" 0
          (Pmv.Entry_store.epoch_stats store).Minirel_parallel.Epoch.in_flight)
      [ Pmv.View.store v; Pmv.View.probe_store v ]
  done

let suite =
  [
    Alcotest.test_case "answer matches oracle" `Quick test_answer_matches_oracle;
    Alcotest.test_case "shutdown reclaims version chains" `Quick
      test_shutdown_reclaims_versions;
    Alcotest.test_case "independent failpoints" `Quick test_independent_failpoints;
    Alcotest.test_case "independent fault seeds" `Quick test_independent_seeds;
    Alcotest.test_case "independent telemetry" `Quick test_independent_telemetry;
    Alcotest.test_case "DML maintains own engine's view" `Quick
      test_engine_run_feeds_own_view;
  ]
