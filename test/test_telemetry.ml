(* The telemetry subsystem: log-bucketed histograms, the metrics
   registry (get-or-create, source registration, reset semantics), span
   trees, and the shell's METRICS statement over a real T1/T2 mix. *)

open Minirel_telemetry
module Shell = Minirel_shell.Shell

let check = Alcotest.check

(* substring containment, for asserting over rendered reports *)
let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* --- histograms --- *)

let test_bucket_boundaries () =
  check Alcotest.int "0 -> bucket 0" 0 (Histogram.bucket_of_ns 0L);
  check Alcotest.int "1 -> bucket 0" 0 (Histogram.bucket_of_ns 1L);
  check Alcotest.int "negative -> bucket 0" 0 (Histogram.bucket_of_ns (-5L));
  (* each power of two opens its own bucket; the predecessor closes it *)
  for i = 1 to 40 do
    let lo = Int64.shift_left 1L i in
    check Alcotest.int (Fmt.str "2^%d" i) i (Histogram.bucket_of_ns lo);
    check Alcotest.int (Fmt.str "2^%d - 1" i) (i - 1)
      (Histogram.bucket_of_ns (Int64.sub lo 1L));
    check Alcotest.bool
      (Fmt.str "upper bound of bucket %d" (i - 1))
      true
      (Histogram.bucket_upper_ns (i - 1) = Int64.sub lo 1L)
  done;
  check Alcotest.int "max_int lands in the last bucket" (Histogram.n_buckets - 1)
    (Histogram.bucket_of_ns Int64.max_int)

(* reference quantile: the bucket upper bound of the rank-ceil(p*n)
   sample in a plain sort *)
let reference_quantile samples p =
  let sorted = List.sort Int64.compare (List.map (Int64.max 0L) samples) in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
  let v = List.nth sorted (min (n - 1) (rank - 1)) in
  Histogram.bucket_upper_ns (Histogram.bucket_of_ns v)

let test_quantiles_vs_sort () =
  let samples = [ 3L; 17L; 1_000L; 1_024L; 1_025L; 90_000L; 5L; 64L; 63L; 2L ] in
  let h = Histogram.create () in
  List.iter (Histogram.record h) samples;
  check Alcotest.int "count" (List.length samples) (Histogram.count h);
  List.iter
    (fun p ->
      check
        (Alcotest.testable (fun ppf -> Fmt.pf ppf "%Ld") Int64.equal)
        (Fmt.str "p%.0f" (p *. 100.0))
        (reference_quantile samples p) (Histogram.quantile h p))
    [ 0.5; 0.9; 0.95; 0.99; 1.0 ];
  Histogram.reset h;
  check Alcotest.int "reset empties" 0 (Histogram.count h);
  check Alcotest.bool "reset zeroes quantiles" true (Histogram.quantile h 0.5 = 0L)

let prop_quantile_matches_reference =
  QCheck2.Test.make ~name:"histogram quantile = reference sort at bucket granularity"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (map Int64.of_int (int_range 0 10_000_000)))
        (map (fun i -> float_of_int i /. 100.0) (int_range 1 100)))
    (fun (samples, p) ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) samples;
      Histogram.quantile h p = reference_quantile samples p)

(* --- registry --- *)

let test_registry_basics () =
  let r = Registry.create () in
  let c = Registry.counter r "a.count" in
  Registry.incr c;
  Registry.add c 4;
  check Alcotest.int "counter accumulates" 5 (Registry.counter_value c);
  (* get-or-create: same name, same cell *)
  Registry.incr (Registry.counter r "a.count");
  check Alcotest.int "same handle" 6 (Registry.counter_value c);
  let h = Registry.histogram r "a.lat_ns" in
  Histogram.record h 100L;
  (* cross-kind name collisions are bugs, loudly *)
  (try
     ignore (Registry.histogram r "a.count");
     Alcotest.fail "histogram under a counter name must raise"
   with Invalid_argument _ -> ());
  (try
     ignore (Registry.counter r "a.lat_ns");
     Alcotest.fail "counter under a histogram name must raise"
   with Invalid_argument _ -> ());
  Registry.register_gauge r "a.level" (fun () -> 3.5);
  let snap = Registry.snapshot r in
  (match Registry.find snap "a.level" with
  | Some (Registry.Gauge g) -> check (Alcotest.float 0.0) "gauge read" 3.5 g
  | _ -> Alcotest.fail "gauge missing");
  match Registry.find snap "a.lat_ns" with
  | Some (Registry.Histogram s) -> check Alcotest.int "histogram in snapshot" 1 s.Histogram.count
  | _ -> Alcotest.fail "histogram missing"

let test_registry_sources_and_reset () =
  let r = Registry.create () in
  let c = Registry.counter r "own.count" in
  Registry.incr c;
  let backing = ref 7 in
  Registry.register_source r ~name:"src"
    ~reset:(fun () -> backing := 0)
    (fun () -> [ ("v", Registry.Counter !backing) ]);
  (* replace-on-collision: the latest instance wins, no duplicates *)
  let backing2 = ref 40 in
  Registry.register_source r ~name:"src"
    ~reset:(fun () -> backing2 := 0)
    (fun () -> [ ("v", Registry.Counter !backing2) ]);
  check (Alcotest.list Alcotest.string) "one source" [ "src" ] (Registry.source_names r);
  (match Registry.find (Registry.snapshot r) "src.v" with
  | Some (Registry.Counter 40) -> ()
  | _ -> Alcotest.fail "replacement source must serve the snapshot");
  Registry.reset r;
  check Alcotest.int "reset zeroes own counters" 0 (Registry.counter_value c);
  check Alcotest.int "reset reaches replacement source" 0 !backing2;
  check Alcotest.int "reset skips the replaced source" 7 !backing;
  (* registrations survive reset *)
  check (Alcotest.list Alcotest.string) "source still there" [ "src" ]
    (Registry.source_names r);
  Registry.unregister_source r ~name:"src";
  check (Alcotest.list Alcotest.string) "unregistered" [] (Registry.source_names r)

(* --- spans --- *)

let test_span_tree () =
  let tr = Span.start "root" in
  Span.enter tr "a";
  Span.enter tr "a1";
  Span.kv tr "k" "v";
  Span.leave tr;
  Span.leave tr;
  Span.enter tr "b";
  Span.leave tr;
  Span.leaf tr "pre-timed" 1_000L;
  Span.finish tr;
  let root = Span.root tr in
  check (Alcotest.list Alcotest.string) "children in order" [ "a"; "b"; "pre-timed" ]
    (List.map (fun (s : Span.t) -> s.Span.name) (Span.children root));
  let a = List.hd (Span.children root) in
  check (Alcotest.list Alcotest.string) "nesting" [ "a1" ]
    (List.map (fun (s : Span.t) -> s.Span.name) (Span.children a));
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "kv lands on the open span" [ ("k", "v") ]
    (List.hd (Span.children a)).Span.kvs;
  (* exclusive = inclusive - sum of children, for every node *)
  let rec walk s =
    let child_sum =
      List.fold_left (fun acc c -> Int64.add acc (Span.inclusive_ns c)) 0L (Span.children s)
    in
    check Alcotest.bool
      (Fmt.str "exclusive arithmetic at %s" s.Span.name)
      true
      (Span.exclusive_ns s = Int64.max 0L (Int64.sub (Span.inclusive_ns s) child_sum));
    List.iter walk (Span.children s)
  in
  walk root;
  (* a second finish is a no-op *)
  let stop = root.Span.stop_ns in
  Span.finish tr;
  check Alcotest.bool "finish idempotent" true (root.Span.stop_ns = stop)

let prop_span_durations =
  QCheck2.Test.make
    ~name:"span durations non-negative, children sum <= parent inclusive" ~count:150
    (* a random walk of enter/leave ops plus some busy work per step *)
    QCheck2.Gen.(list_size (int_range 0 60) (pair bool (int_range 0 30)))
    (fun ops ->
      let tr = Span.start "root" in
      let depth = ref 0 in
      List.iter
        (fun (enter, spin) ->
          ignore (Sys.opaque_identity (Array.init (spin * 8) (fun i -> i * i)));
          if enter then begin
            Span.enter tr (Fmt.str "s%d" !depth);
            incr depth
          end
          else if !depth > 0 then begin
            Span.leave tr;
            decr depth
          end)
        ops;
      Span.finish tr;
      let ok = ref true in
      let rec walk s =
        let incl = Span.inclusive_ns s in
        let excl = Span.exclusive_ns s in
        let child_sum =
          List.fold_left
            (fun acc c -> Int64.add acc (Span.inclusive_ns c))
            0L (Span.children s)
        in
        if incl < 0L || excl < 0L || Int64.compare child_sum incl > 0 then ok := false;
        List.iter walk (Span.children s)
      in
      walk (Span.root tr);
      !ok)

let test_tracer_sampling () =
  let tr = Tracer.create ~sample_every:4 ~keep:2 () in
  let recorded = ref 0 in
  for _ = 1 to 16 do
    match Tracer.start tr "q" with
    | Some t ->
        incr recorded;
        Tracer.finish tr t
    | None -> ()
  done;
  check Alcotest.int "1-in-4 sampling" 4 !recorded;
  check Alcotest.int "ring keeps at most 2" 2 (List.length (Tracer.recent tr));
  Tracer.force_next tr;
  (match Tracer.start tr "forced" with
  | Some t -> Tracer.finish tr t
  | None -> Alcotest.fail "force_next must bypass sampling");
  match Tracer.last tr with
  | Some t -> check Alcotest.string "forced trace retained" "forced" (Span.root t).Span.name
  | None -> Alcotest.fail "no last trace"

(* --- the whole engine through the shell --- *)

let build_shell () =
  let shell = Shell.create (Helpers.fresh_catalog ()) in
  let run sql =
    match Shell.exec shell sql with
    | r -> r
    | exception e -> Alcotest.failf "statement failed: %s (%s)" sql (Printexc.to_string e)
  in
  ignore (run "create table items (ik int, category int, price float, label string)");
  ignore (run "create table stock (ik int, store int, qty int)");
  ignore (run "create index items_ik on items (ik)");
  ignore (run "create index items_category on items (category)");
  ignore (run "create index stock_ik on stock (ik)");
  ignore (run "create index stock_store on stock (store)");
  for ik = 1 to 40 do
    ignore
      (run
         (Fmt.str "insert into items values (%d, %d, %d.5, 'item %d')" ik (ik mod 5)
            (ik * 10) ik));
    ignore (run (Fmt.str "insert into stock values (%d, %d, %d)" ik (ik mod 4) (ik mod 7)))
  done;
  (shell, run)

let counter_of snap name =
  match Registry.find snap name with
  | Some (Registry.Counter n) -> n
  | _ -> Alcotest.failf "counter %s missing from snapshot" name

let test_shell_metrics () =
  Telemetry.reset ();
  let _shell, run = build_shell () in
  (* a T1/T2-shaped mix, twice each so the second round probes hot *)
  let q1 = "select i.label, s.qty from items i, stock s where i.ik = s.ik and (i.category = 2) and (s.store = 1)" in
  let q2 = "select i.label from items i where (i.category = 1)" in
  List.iter (fun q -> ignore (run q)) [ q1; q2; q1; q2; q1 ];
  let snap = Telemetry.snapshot () in
  check Alcotest.bool "answer.queries counted" true (counter_of snap "answer.queries" >= 5);
  check Alcotest.bool "O2 probes hit" true (counter_of snap "answer.probe_hits" > 0);
  check Alcotest.bool "partials served" true (counter_of snap "answer.partial_tuples" > 0);
  check Alcotest.bool "locks taken" true (counter_of snap "lockmgr.acquires" > 0);
  (match Registry.find snap "answer.ttft_ns" with
  | Some (Registry.Histogram s) ->
      check Alcotest.bool "ttft sampled" true (s.Histogram.count >= 1)
  | _ -> Alcotest.fail "answer.ttft_ns missing");
  (* METRICS renders the same snapshot *)
  (match run "metrics" with
  | Shell.Metrics text ->
      check Alcotest.bool "METRICS shows probe hits" true
        (contains ~affix:"answer.probe_hits" text)
  | _ -> Alcotest.fail "METRICS result expected");
  (* METRICS RESET zeroes counters but keeps every registration *)
  let sources_before = Registry.source_names Registry.default in
  (match run "metrics reset" with Shell.Metrics _ -> () | _ -> Alcotest.fail "reset result");
  let snap = Telemetry.snapshot () in
  check Alcotest.int "counters zeroed" 0 (counter_of snap "answer.queries");
  check Alcotest.int "source counters zeroed" 0 (counter_of snap "lockmgr.acquires");
  check (Alcotest.list Alcotest.string) "registrations survive" sources_before
    (Registry.source_names Registry.default);
  (* and the engine keeps counting after the reset *)
  ignore (run q1);
  check Alcotest.int "counting resumes" 1
    (counter_of (Telemetry.snapshot ()) "answer.queries")

let test_trace_spans () =
  Telemetry.reset ();
  let _shell, run = build_shell () in
  let q = "select i.label, s.qty from items i, stock s where i.ik = s.ik and (i.category = 3) and (s.store = 2)" in
  ignore (run q);
  match run ("trace " ^ q) with
  | Shell.Traced text ->
      List.iter
        (fun affix ->
          check Alcotest.bool (Fmt.str "trace mentions %s" affix) true
            (contains ~affix text))
        [ "answer:"; "o1.decompose"; "o2.probe"; "o3.execute"; "lock.acquire" ]
  | _ -> Alcotest.fail "Traced result expected"

let test_disabled_mode () =
  Telemetry.reset ();
  Telemetry.set_enabled false;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled true) @@ fun () ->
  let _shell, run = build_shell () in
  ignore (run "select i.label from items i where (i.category = 1)");
  let snap = Telemetry.snapshot () in
  check Alcotest.int "no queries recorded while disabled" 0
    (counter_of snap "answer.queries");
  check Alcotest.bool "no trace recorded while disabled" true
    (Telemetry.last_trace () = None)

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "histogram quantiles vs reference sort" `Quick test_quantiles_vs_sort;
    QCheck_alcotest.to_alcotest prop_quantile_matches_reference;
    Alcotest.test_case "registry get-or-create + collisions" `Quick test_registry_basics;
    Alcotest.test_case "registry sources + reset semantics" `Quick
      test_registry_sources_and_reset;
    Alcotest.test_case "span tree nesting + exclusive times" `Quick test_span_tree;
    QCheck_alcotest.to_alcotest prop_span_durations;
    Alcotest.test_case "tracer sampling + force + ring" `Quick test_tracer_sampling;
    Alcotest.test_case "shell METRICS + METRICS RESET" `Quick test_shell_metrics;
    Alcotest.test_case "TRACE prints the span tree" `Quick test_trace_spans;
    Alcotest.test_case "disabled mode records nothing" `Quick test_disabled_mode;
  ]
