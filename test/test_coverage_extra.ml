(* Cross-cutting coverage: answer statistics fields, WAL recovery as a
   property, interval-form maintenance, drift simulation sanity, and
   printer error cases. *)

open Minirel_storage
open Minirel_query
module View = Pmv.View
module Answer = Pmv.Answer
module Txn = Minirel_txn.Txn
module Wal = Minirel_txn.Wal
module Catalog = Minirel_index.Catalog
module Snapshot = Minirel_index.Snapshot

let check = Alcotest.check
let vi i = Value.Int i
let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_answer_stats_fields () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:20 ~f_max:2 ~name:"stats" c in
  let inst =
    Instance.make c [| Instance.Dvalues [ vi 1; vi 2 ]; Instance.Dvalues [ vi 1; vi 3 ] |]
  in
  let _, _, st1 = Helpers.collect_answer ~view catalog inst in
  check Alcotest.int "h = 4" 4 st1.Answer.h;
  check Alcotest.int "4 probes" 4 st1.Answer.probes;
  check Alcotest.int "cold: no probe hits" 0 st1.Answer.probe_hits;
  check Alcotest.bool "cold run filled the view" true (st1.Answer.filled > 0);
  check Alcotest.int "filled = view tuples" (View.n_tuples view) st1.Answer.filled;
  check Alcotest.bool "first exec time recorded" true (st1.Answer.first_exec_ns <> None);
  check Alcotest.bool "overhead positive" true (st1.Answer.overhead_ns > 0L);
  (* warm run: exactly the bcps that had results are resident (CLOCK
     admits on fill, so empty bcps stay cold) *)
  let result_bcps =
    List.sort_uniq Bcp.compare
      (List.map (Condition_part.bcp_of_result c) (Helpers.brute_force_answer catalog inst))
  in
  let _, _, st2 = Helpers.collect_answer ~view catalog inst in
  check Alcotest.int "warm: filled bcps hit" (List.length result_bcps) st2.Answer.probe_hits;
  check Alcotest.bool "some probes hit" true (st2.Answer.probe_hits >= 1);
  check Alcotest.bool "first partial time recorded" true (st2.Answer.first_partial_ns <> None);
  check Alcotest.bool "partial before exec tuple" true
    (match (st2.Answer.first_partial_ns, st2.Answer.first_exec_ns) with
    | Some p, Some e -> p <= e
    | Some _, None -> true
    | _ -> false)

let test_cold_run_charges_io () =
  (* a small pool forces misses; the stats must show them *)
  let catalog = Helpers.fresh_catalog ~pool_pages:2 () in
  Helpers.build_rs ~n_r:300 ~n_s:200 catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:10 ~f_max:2 ~name:"io" c in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  let _, _, st = Helpers.collect_answer ~view catalog inst in
  check Alcotest.bool "io charged" true (st.Answer.io_reads > 0)

(* WAL recovery as a property: any random transaction sequence recovers
   exactly from snapshot + log. *)
let prop_wal_recovery =
  QCheck2.Test.make ~name:"snapshot + log replay recovers any txn sequence" ~count:30
    QCheck2.Gen.(list_size (int_range 1 15) (triple (int_range 0 2) (int_range 0 30) bool))
    (fun ops ->
      let snap = tmp "pmv_prop_snap.db" and log = tmp "pmv_prop_log.db" in
      if Sys.file_exists log then Sys.remove log;
      let catalog = Helpers.fresh_catalog () in
      Helpers.build_rs ~n_r:30 ~n_s:20 catalog;
      Snapshot.save catalog ~filename:snap;
      let mgr = Txn.create catalog in
      let wal = Wal.open_log ~filename:log () in
      Wal.attach wal mgr;
      let fresh = ref 5000 in
      List.iter
        (fun (op, k, on_r) ->
          incr fresh;
          let change =
            match op with
            | 0 ->
                if on_r then
                  Txn.Insert
                    { rel = "r"; tuple = [| vi !fresh; vi (k mod 40); vi (k mod 10); Value.Str "w" |] }
                else Txn.Insert { rel = "s"; tuple = [| vi (k mod 40); vi (k mod 8); vi !fresh |] }
            | 1 ->
                Txn.Delete
                  {
                    rel = (if on_r then "r" else "s");
                    pred = Predicate.Cmp (Predicate.Eq, (if on_r then 2 else 1), vi (k mod 8));
                  }
            | _ ->
                Txn.Update
                  {
                    rel = "s";
                    pred = Predicate.Cmp (Predicate.Eq, 1, vi (k mod 8));
                    set = [ (2, vi !fresh) ];
                  }
          in
          ignore (Txn.run mgr [ change ]))
        ops;
      Wal.close wal;
      let pool = Buffer_pool.create ~capacity:1_000 () in
      let recovered = Snapshot.load ~pool ~filename:snap in
      ignore (Wal.replay recovered ~filename:log);
      let contents cat rel =
        Heap_file.fold (Catalog.heap cat rel) (fun acc _ t -> t :: acc) []
      in
      let ok =
        Helpers.same_multiset (contents catalog "r") (contents recovered "r")
        && Helpers.same_multiset (contents catalog "s") (contents recovered "s")
      in
      Sys.remove snap;
      Sys.remove log;
      ok)

let test_interval_template_maintenance () =
  (* deferred maintenance on an interval-form template: the bcp of a
     cached tuple is a basic-interval id, and deletes must find it *)
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  ignore (Catalog.create_index catalog ~rel:"s" ~name:"s_e" ~attrs:[ "e" ] ());
  let grid = Discretize.of_cuts (List.init 11 (fun i -> vi (i * 12))) in
  let c = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  List.iter
    (fun strategy ->
      let view =
        View.create ~capacity:40 ~f_max:3
          ~name:("iv_" ^ Pmv.Maintain.strategy_to_string strategy)
          c
      in
      let mgr = Txn.create catalog in
      Pmv.Maintain.attach ~strategy ~use_locks:false view mgr;
      let inst =
        Instance.make c
          [|
            Instance.Dvalues [ vi 1 ];
            Instance.Dintervals [ Interval.half_open ~lo:(vi 0) ~hi:(vi 120) ];
          |]
      in
      ignore (Helpers.collect_answer ~view catalog inst);
      check Alcotest.bool "warmed" true (View.n_tuples view > 0);
      ignore
        (Txn.run mgr [ Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Le, 2, vi 40) } ]);
      let got, _, st = Helpers.collect_answer ~view catalog inst in
      check Alcotest.int "no stale" 0 st.Answer.stale_purged;
      check Alcotest.bool "consistent" true
        (Helpers.same_multiset got (Helpers.brute_force_answer catalog inst));
      (* undo for the next strategy round: rebuild s rows below 40 *)
      for row = 1 to 40 do
        ignore
          (Txn.run mgr
             [ Txn.Insert { rel = "s"; tuple = [| vi (row mod 40); vi (row mod 8); vi row |] } ])
      done;
      Pmv.Maintain.detach view mgr)
    [ Pmv.Maintain.Aux_index; Pmv.Maintain.Delta_join ]

let test_drift_sim_sanity () =
  let cfg =
    { Pmv_sim.Hitprob.scaled_default with universe = 20_000; n = 600; warmup = 20_000 }
  in
  let baseline, windows = Pmv_sim.Hitprob.run_drift cfg ~drift:3_000 ~every:1_500 ~windows:4 in
  (match windows with
  | first :: _ ->
      check Alcotest.bool "dip after the shift" true (first < baseline);
      check Alcotest.bool "recovery" true
        (List.nth windows (List.length windows - 1) > first)
  | [] -> Alcotest.fail "windows");
  (* determinism *)
  let b2, w2 = Pmv_sim.Hitprob.run_drift cfg ~drift:3_000 ~every:1_500 ~windows:4 in
  check (Alcotest.float 1e-12) "deterministic baseline" baseline b2;
  check Alcotest.bool "deterministic windows" true (windows = w2)

let test_print_unsupported () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let grid = Discretize.of_cuts [ vi 10 ] in
  let c = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  (* a bounded open interval is outside the SQL grammar *)
  let inst =
    Instance.make c
      [|
        Instance.Dvalues [ vi 1 ];
        Instance.Dintervals [ Interval.open_ ~lo:(vi 1) ~hi:(vi 9) ];
      |]
  in
  match Minirel_sql.Print.to_sql inst with
  | _ -> Alcotest.fail "unsupported interval printed"
  | exception Minirel_sql.Print.Unsupported _ -> ()

let test_vacuum () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:200 ~n_s:50 catalog;
  (* punch holes: delete every r row with odd rkey *)
  let victims =
    Heap_file.fold (Catalog.heap catalog "r")
      (fun acc rid t -> if Value.int_exn t.(0) mod 2 = 1 then rid :: acc else acc)
      []
  in
  List.iter (fun rid -> ignore (Catalog.delete catalog ~rel:"r" rid)) victims;
  let before = Heap_file.n_pages (Catalog.heap catalog "r") in
  let contents_before =
    Heap_file.fold (Catalog.heap catalog "r") (fun acc _ t -> t :: acc) []
  in
  let reclaimed = Catalog.vacuum catalog ~rel:"r" in
  check Alcotest.bool "pages reclaimed" true (reclaimed > 0);
  check Alcotest.bool "fewer pages" true (Heap_file.n_pages (Catalog.heap catalog "r") < before);
  let contents_after =
    Heap_file.fold (Catalog.heap catalog "r") (fun acc _ t -> t :: acc) []
  in
  check Alcotest.bool "contents preserved" true
    (Helpers.same_multiset contents_before contents_after);
  (* indexes were rebuilt consistently and queries still work *)
  Catalog.validate catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let inst = Instance.make c [| Instance.Dvalues [ vi 2 ]; Instance.Dvalues [ vi 2 ] |] in
  let out = ref [] in
  let _ = Pmv.Answer.answer_plain catalog inst ~on_tuple:(fun _ t -> out := t :: !out) in
  check Alcotest.bool "answers after vacuum" true
    (Helpers.same_multiset !out (Helpers.brute_force_answer catalog inst))

let test_serializability_conflict () =
  (* Section 3.6: while a query holds its S lock across O2-O3, view
     maintenance cannot take the X lock. In the paper's multi-threaded
     setting the writer blocks; in this single-threaded engine the
     delta queues ([Maintain.n_pending]) and is applied at the next
     grantable opportunity, while the answering layer's stale purge
     keeps subsequent answers exact. *)
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:20 ~f_max:2 ~name:"ser" c in
  let mgr = Txn.create catalog in
  Pmv.Maintain.attach ~use_locks:true view mgr;
  let locks = Minirel_txn.Txn.locks mgr in
  (* warm the view so there is something to maintain *)
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  let _ = Helpers.collect_answer ~view catalog inst in
  check Alcotest.bool "warmed" true (View.n_tuples view > 0);
  let pending_inside = ref (-1) and fired = ref false in
  let _ =
    Pmv.Answer.answer ~locks ~txn:42 ~view catalog inst ~on_tuple:(fun _ _ ->
        if not !fired then begin
          fired := true;
          (* a writer deletes mid-query: its maintenance must defer *)
          ignore
            (Txn.run mgr
               [ Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 1, vi 1) } ]);
          pending_inside := Pmv.Maintain.n_pending view
        end)
  in
  check Alcotest.int "delta queued while the S lock was held" 1 !pending_inside;
  (* after the reader commits, the queued delta applies. (The reader's
     own O3 may already have purged the victims as stale — execution ran
     after the delete — so the queue's work can legitimately be empty.) *)
  Pmv.Maintain.flush_pending view mgr;
  check Alcotest.int "queue drained" 0 (Pmv.Maintain.n_pending view);
  (* no cached tuple with the deleted g remains, whoever removed it *)
  Pmv.Entry_store.iter (View.store view) (fun e ->
      List.iter
        (fun t -> check Alcotest.bool "no stale cached tuple" false (Value.equal t.(3) (vi 1)))
        e.Pmv.Entry_store.tuples);
  (* and answers are exact again *)
  let got, _, st = Helpers.collect_answer ~view catalog inst in
  check Alcotest.int "no stale afterwards" 0 st.Pmv.Answer.stale_purged;
  check Alcotest.bool "consistent afterwards" true
    (Helpers.same_multiset got (Helpers.brute_force_answer catalog inst))

let test_buffer_pool_two_q () =
  (* the buffer pool under ghost-staging 2Q: first touch misses and
     stages, second touch misses and promotes, third hits *)
  let pool = Buffer_pool.create ~policy:Minirel_cache.Policies.Two_q ~capacity:4 () in
  let f = Buffer_pool.register_file pool in
  let stats = Buffer_pool.stats pool in
  Buffer_pool.access pool ~file:f ~page:0 ~mode:`Read;
  check Alcotest.int "stage read" 1 stats.Io_stats.reads;
  Buffer_pool.access pool ~file:f ~page:0 ~mode:`Read;
  check Alcotest.int "promotion still fetches" 2 stats.Io_stats.reads;
  Buffer_pool.access pool ~file:f ~page:0 ~mode:`Read;
  check Alcotest.int "now resident" 2 stats.Io_stats.reads

let suite =
  [
    Alcotest.test_case "vacuum" `Quick test_vacuum;
    Alcotest.test_case "serializability conflict (3.6)" `Quick test_serializability_conflict;
    Alcotest.test_case "buffer pool under 2q" `Quick test_buffer_pool_two_q;
    Alcotest.test_case "answer stats fields" `Quick test_answer_stats_fields;
    Alcotest.test_case "cold run charges io" `Quick test_cold_run_charges_io;
    QCheck_alcotest.to_alcotest prop_wal_recovery;
    Alcotest.test_case "interval-form maintenance" `Quick test_interval_template_maintenance;
    Alcotest.test_case "drift sim sanity" `Quick test_drift_sim_sanity;
    Alcotest.test_case "print unsupported" `Quick test_print_unsupported;
  ]
