(* Crash-recovery under injected WAL faults: for each failpoint in the
   append path, crash one transaction there, recover from snapshot +
   log replay, and check exactly what the site's durability contract
   promises. Recovery is also run twice from the same on-disk state to
   prove it is idempotent. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module Snapshot = Minirel_index.Snapshot
module Txn = Minirel_txn.Txn
module Wal = Minirel_txn.Wal
module Fault = Minirel_fault.Fault
module Check = Minirel_check.Check

let check = Alcotest.check
let vi i = Value.Int i

let with_clean f =
  Fault.reset ();
  Fault.disable ();
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      Fault.disable ())
    f

(* r/s data persisted as snapshot + (initially empty) log, with the WAL
   attached to the transaction manager. *)
let setup_persisted () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:30 ~n_s:20 catalog;
  let mgr = Txn.create catalog in
  let snap = Filename.temp_file "pmv_test" ".snap" in
  let walf = Filename.temp_file "pmv_test" ".wal" in
  Snapshot.save catalog ~filename:snap;
  let wal = Wal.open_log ~filename:walf () in
  Wal.attach wal mgr;
  (catalog, mgr, wal, snap, walf)

let cleanup snap walf =
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ snap; walf ]

let tuples_of catalog rel =
  Heap_file.fold (Catalog.heap catalog rel) (fun acc _ t -> t :: acc) []
  |> List.sort Tuple.compare

let recover ~snap ~walf =
  let pool = Buffer_pool.create ~capacity:2_000 () in
  let catalog = Snapshot.load ~pool ~filename:snap in
  let replayed = Wal.replay catalog ~filename:walf in
  Catalog.validate catalog;
  (catalog, replayed)

(* Run [change] expecting the armed WAL failpoint to fire. *)
let crash_txn mgr change site =
  match Txn.run mgr [ change ] with
  | _ -> Alcotest.failf "expected a crash at %s" site
  | exception Fault.Injected s -> check Alcotest.string "crash site" site s

let ins_r k = Txn.Insert { rel = "r"; tuple = [| vi k; vi 1; vi 2; Value.Str "crash" |] }

(* Committed work before the crash must survive; the crashed change
   must vanish entirely. *)
let test_pre_append () =
  with_clean @@ fun () ->
  let _catalog, mgr, wal, snap, walf = setup_persisted () in
  Fun.protect ~finally:(fun () -> cleanup snap walf) @@ fun () ->
  ignore (Txn.run mgr [ ins_r 900 ]);
  let committed =
    let pool = Buffer_pool.create ~capacity:2_000 () in
    let c = Snapshot.load ~pool ~filename:snap in
    ignore (Wal.replay c ~filename:walf);
    tuples_of c "r"
  in
  Fault.enable ~seed:1 ();
  Fault.arm "wal.pre_append" Fault.Once;
  crash_txn mgr (ins_r 901) "wal.pre_append";
  Fault.reset ();
  Fault.disable ();
  Wal.close wal;
  let recovered, replayed = recover ~snap ~walf in
  check Alcotest.int "only the committed change replays" 1 replayed;
  check Helpers.tuples "crashed change fully lost" committed (tuples_of recovered "r");
  (* idempotence: recovering again from the same files gives the same
     state *)
  let recovered2, replayed2 = recover ~snap ~walf in
  check Alcotest.int "same replay count" replayed replayed2;
  check Helpers.tuples "double recovery identical" (tuples_of recovered "r")
    (tuples_of recovered2 "r")

(* A multi-record delta crashed mid-flush leaves a durable prefix:
   recovery holds some of the victims' deletions, never anything
   outside the crashed change. *)
let test_mid_flush () =
  with_clean @@ fun () ->
  let catalog, mgr, wal, snap, walf = setup_persisted () in
  Fun.protect ~finally:(fun () -> cleanup snap walf) @@ fun () ->
  let before = tuples_of catalog "s" in
  (* s rows with g = 1: rows 1, 9, 17 -> three delete records *)
  let victims = List.filter (fun t -> Value.equal t.(1) (vi 1)) before in
  check Alcotest.int "three victims" 3 (List.length victims);
  Fault.enable ~seed:2 ();
  Fault.arm "wal.mid_flush" (Fault.Nth 2);
  crash_txn mgr
    (Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 1, vi 1) })
    "wal.mid_flush";
  Fault.reset ();
  Fault.disable ();
  Wal.close wal;
  let recovered, _ = recover ~snap ~walf in
  let d = Check.diff_multiset ~expected:before ~actual:(tuples_of recovered "s") in
  check Alcotest.int "exactly the durable prefix applied" 1 (List.length d.Check.missing);
  check Alcotest.bool "the lost row is one of the victims" true
    (List.exists (Tuple.equal (List.hd d.Check.missing)) victims);
  check Alcotest.int "nothing extra" 0 (List.length d.Check.extra);
  let recovered2, _ = recover ~snap ~walf in
  check Helpers.tuples "double recovery identical" (tuples_of recovered "s")
    (tuples_of recovered2 "s")

(* Crash after the flush: the whole change is durable even though the
   caller saw an error — recovery equals the live (applied) state. *)
let test_post_commit () =
  with_clean @@ fun () ->
  let catalog, mgr, wal, snap, walf = setup_persisted () in
  Fun.protect ~finally:(fun () -> cleanup snap walf) @@ fun () ->
  Fault.enable ~seed:3 ();
  Fault.arm "wal.post_commit" Fault.Once;
  crash_txn mgr
    (Txn.Update
       { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 1, vi 2); set = [ (1, vi 99) ] })
    "wal.post_commit";
  Fault.reset ();
  Fault.disable ();
  Wal.close wal;
  let recovered, _ = recover ~snap ~walf in
  check Helpers.tuples "whole change durable" (tuples_of catalog "s") (tuples_of recovered "s");
  check Alcotest.bool "update visible after recovery" true
    (List.exists (fun t -> Value.equal t.(1) (vi 99)) (tuples_of recovered "s"));
  let recovered2, _ = recover ~snap ~walf in
  check Helpers.tuples "double recovery identical" (tuples_of recovered "s")
    (tuples_of recovered2 "s")

(* After a crash and recovery the log can keep growing: new commits on
   the recovered catalog replay cleanly on top. *)
let test_recovery_then_continue () =
  with_clean @@ fun () ->
  let _catalog, mgr, wal, snap, walf = setup_persisted () in
  Fun.protect ~finally:(fun () -> cleanup snap walf) @@ fun () ->
  Fault.enable ~seed:4 ();
  Fault.arm "wal.pre_append" Fault.Once;
  crash_txn mgr (ins_r 910) "wal.pre_append";
  Fault.reset ();
  Fault.disable ();
  Wal.close wal;
  let recovered, _ = recover ~snap ~walf in
  (* resume on the recovered catalog with a fresh manager + log *)
  Snapshot.save recovered ~filename:snap;
  Sys.remove walf;
  let wal2 = Wal.open_log ~filename:walf () in
  let mgr2 = Txn.create recovered in
  Wal.attach wal2 mgr2;
  ignore (Txn.run mgr2 [ ins_r 911 ]);
  Wal.close wal2;
  let again, replayed = recover ~snap ~walf in
  check Alcotest.int "new commit replays" 1 replayed;
  check Alcotest.bool "new row present" true
    (List.exists (fun t -> Value.equal t.(0) (vi 911)) (tuples_of again "r"))

let suite =
  [
    Alcotest.test_case "crash at wal.pre_append" `Quick test_pre_append;
    Alcotest.test_case "crash at wal.mid_flush" `Quick test_mid_flush;
    Alcotest.test_case "crash at wal.post_commit" `Quick test_post_commit;
    Alcotest.test_case "recover then continue" `Quick test_recovery_then_continue;
  ]
