(* The core correctness suite: Operations O1/O2/O3 against ground truth,
   exactly-once delivery, bounds, locking, and deferred maintenance. *)

open Minirel_storage
open Minirel_query
module View = Pmv.View
module Answer = Pmv.Answer
module Maintain = Pmv.Maintain
module Entry_store = Pmv.Entry_store
module Txn = Minirel_txn.Txn
module Lock = Minirel_txn.Lock_manager
module Policies = Minirel_cache.Policies

let check = Alcotest.check
let vi i = Value.Int i

let setup ?(policy = Policies.Clock) ?(capacity = 30) ?(f_max = 2) ?(aux = true) () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~policy ~f_max ~aux_maintenance:aux ~capacity ~name:"eqt" c in
  (catalog, c, view)

let random_instance c rng =
  let module SM = Minirel_prng.Split_mix in
  let e = 1 + SM.int rng ~bound:3 and f = 1 + SM.int rng ~bound:3 in
  let fs = SM.distinct rng ~n:e (fun r -> SM.int r ~bound:10) in
  let gs = SM.distinct rng ~n:f (fun r -> SM.int r ~bound:8) in
  Instance.make c
    [|
      Instance.Dvalues (List.map (fun i -> vi i) fs);
      Instance.Dvalues (List.map (fun i -> vi i) gs);
    |]

let test_answer_equals_plain () =
  let catalog, c, view = setup () in
  let rng = Minirel_prng.Split_mix.create ~seed:11 in
  for _ = 1 to 60 do
    let inst = random_instance c rng in
    let got, partial, stats = Helpers.collect_answer ~view catalog inst in
    let expect = Helpers.brute_force_answer catalog inst in
    if not (Helpers.same_multiset got expect) then
      Alcotest.failf "answer mismatch: got %d expected %d" (List.length got)
        (List.length expect);
    check Alcotest.int "stats.total = delivered" (List.length got) stats.Answer.total_count;
    check Alcotest.int "stats.partial = partial" (List.length partial)
      stats.Answer.partial_count;
    check Alcotest.int "no stale" 0 stats.Answer.stale_purged;
    (* every partial tuple satisfies the query *)
    List.iter
      (fun t ->
        check Alcotest.bool "partial satisfies Cselect" true (Instance.accepts_result inst t))
      partial
  done;
  check Alcotest.bool "view invariants" true (View.invariants_ok view);
  check Alcotest.bool "eventually serves partials" true
    ((View.stats view).View.partial_tuples > 0)

let test_answer_interval_template () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_e" ~attrs:[ "e" ] ());
  let grid = Discretize.of_cuts (List.init 11 (fun i -> vi (i * 10))) in
  let c = Template.compile catalog (Helpers.eqt_interval_spec ~grid) in
  let view = View.create ~capacity:40 ~f_max:3 ~name:"eqt_iv" c in
  let rng = Minirel_prng.Split_mix.create ~seed:12 in
  let module SM = Minirel_prng.Split_mix in
  for _ = 1 to 40 do
    let f = SM.int rng ~bound:10 in
    let a = SM.int rng ~bound:110 and len = 1 + SM.int rng ~bound:35 in
    let inst =
      Instance.make c
        [|
          Instance.Dvalues [ vi f ];
          Instance.Dintervals [ Interval.half_open ~lo:(vi a) ~hi:(vi (a + len)) ];
        |]
    in
    let got, partial, stats = Helpers.collect_answer ~view catalog inst in
    let expect = Helpers.brute_force_answer catalog inst in
    if not (Helpers.same_multiset got expect) then
      Alcotest.failf "interval mismatch: got %d expected %d (h=%d)" (List.length got)
        (List.length expect) stats.Answer.h;
    List.iter
      (fun t -> check Alcotest.bool "partial ok" true (Instance.accepts_result inst t))
      partial
  done;
  check Alcotest.bool "invariants" true (View.invariants_ok view)

let test_duplicates_exactly_once () =
  (* force duplicate result tuples: two identical r rows joining the
     same s row produce equal Ls' tuples; both must be delivered *)
  let catalog = Helpers.fresh_catalog () in
  let _ = Minirel_index.Catalog.create_relation catalog Helpers.r_schema in
  let _ = Minirel_index.Catalog.create_relation catalog Helpers.s_schema in
  (* rkey equal as well so the Ls' tuples collide *)
  let row = [| vi 1; vi 1; vi 1; Value.Str "dup" |] in
  ignore (Minirel_index.Catalog.insert catalog ~rel:"r" row);
  ignore (Minirel_index.Catalog.insert catalog ~rel:"r" row);
  ignore (Minirel_index.Catalog.insert catalog ~rel:"s" [| vi 1; vi 1; vi 5 |]);
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"r" ~name:"r_f" ~attrs:[ "f" ] ());
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_d" ~attrs:[ "d" ] ());
  ignore (Minirel_index.Catalog.create_index catalog ~rel:"s" ~name:"s_g" ~attrs:[ "g" ] ());
  let c = Template.compile catalog Helpers.eqt_spec in
  let view = View.create ~capacity:8 ~f_max:4 ~name:"dups" c in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  (* run twice: second time the PMV serves cached copies in O2 and O3
     must still deliver the duplicate exactly the right number of times *)
  let first, _, _ = Helpers.collect_answer ~view catalog inst in
  check Alcotest.int "two copies" 2 (List.length first);
  let second, partial, stats = Helpers.collect_answer ~view catalog inst in
  check Alcotest.int "still two copies" 2 (List.length second);
  check Alcotest.bool "pmv served" true (List.length partial > 0);
  check Alcotest.int "no stale" 0 stats.Answer.stale_purged

let test_f_bound_respected () =
  let catalog, c, view = setup ~capacity:10 ~f_max:1 () in
  let rng = Minirel_prng.Split_mix.create ~seed:13 in
  for _ = 1 to 40 do
    ignore (Helpers.collect_answer ~view catalog (random_instance c rng))
  done;
  Entry_store.iter (View.store view) (fun e ->
      check Alcotest.bool "per-bcp bound" true (e.Entry_store.n <= 1));
  check Alcotest.bool "entry bound" true (View.n_entries view <= 10);
  check Alcotest.bool "invariants" true (View.invariants_ok view)

let test_two_q_view () =
  let catalog, c, view = setup ~policy:Policies.Two_q ~capacity:20 () in
  let rng = Minirel_prng.Split_mix.create ~seed:14 in
  for _ = 1 to 80 do
    let inst = random_instance c rng in
    let got, _, _ = Helpers.collect_answer ~view catalog inst in
    let expect = Helpers.brute_force_answer catalog inst in
    if not (Helpers.same_multiset got expect) then Alcotest.fail "2q answer mismatch"
  done;
  check Alcotest.bool "2q view fills" true (View.n_tuples view > 0);
  check Alcotest.bool "invariants" true (View.invariants_ok view)

let test_locking_protocol () =
  let catalog, c, view = setup () in
  let locks = Lock.create () in
  let inst = Instance.make c [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  let held_during = ref false in
  let delivered = ref 0 in
  let _ =
    Answer.answer ~locks ~txn:7 ~view catalog inst ~on_tuple:(fun _ _ ->
        incr delivered;
        match Lock.held_by locks ~obj:(View.lock_object view) with
        | Some (Lock.S, owners) when List.mem 7 owners -> held_during := true
        | _ -> ())
  in
  check Alcotest.bool "query produced tuples" true (!delivered > 0);
  check Alcotest.bool "S lock held across O2-O3" true !held_during;
  check Alcotest.bool "released after" true
    (Lock.held_by locks ~obj:(View.lock_object view) = None);
  (* an X holder blocks the query *)
  ignore (Lock.acquire locks ~txn:99 ~obj:(View.lock_object view) Lock.X);
  (match Answer.answer ~locks ~txn:7 ~view catalog inst ~on_tuple:(fun _ _ -> ()) with
  | _ -> Alcotest.fail "expected lock conflict"
  | exception Failure _ -> ())

let run_mixed_txns mgr rng n =
  let module SM = Minirel_prng.Split_mix in
  for _ = 1 to n do
    let k = SM.int rng ~bound:40 in
    let change =
      match SM.int rng ~bound:4 with
      | 0 ->
          Txn.Insert
            {
              rel = "r";
              tuple = [| vi (1000 + k); vi (k mod 40); vi (k mod 10); Value.Str "new" |];
            }
      | 1 -> Txn.Delete { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 0, vi (k * 3)) }
      | 2 -> Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 2, vi k) }
      | _ ->
          Txn.Update
            {
              rel = "s";
              pred = Predicate.Cmp (Predicate.Eq, 2, vi k);
              set = [ (1, vi ((k + 1) mod 8)) ];
            }
    in
    ignore (Txn.run mgr [ change ])
  done

let test_consistency_under_maintenance strategy () =
  let catalog, c, view = setup ~capacity:50 ~f_max:3 () in
  let mgr = Txn.create catalog in
  Maintain.attach ~strategy ~use_locks:false view mgr;
  let rng = Minirel_prng.Split_mix.create ~seed:15 in
  for round = 1 to 30 do
    (* warm the PMV *)
    let inst = random_instance c rng in
    ignore (Helpers.collect_answer ~view catalog inst);
    (* mutate the base tables *)
    run_mixed_txns mgr rng 3;
    (* consistency: answers still match ground truth, nothing stale *)
    let inst2 = random_instance c rng in
    let got, _, stats = Helpers.collect_answer ~view catalog inst2 in
    let expect = Helpers.brute_force_answer catalog inst2 in
    if not (Helpers.same_multiset got expect) then
      Alcotest.failf "round %d: maintenance strategy %s broke answers" round
        (Maintain.strategy_to_string strategy);
    check Alcotest.int "no stale tuples served" 0 stats.Answer.stale_purged
  done;
  check Alcotest.bool "inserts were skipped (deferred)" true
    ((View.stats view).View.skipped_inserts > 0);
  check Alcotest.bool "invariants" true (View.invariants_ok view)

let test_update_irrelevant_attr_skips_maintenance () =
  let catalog, c, view = setup ~capacity:50 () in
  let mgr = Txn.create catalog in
  Maintain.attach ~use_locks:false view mgr;
  let rng = Minirel_prng.Split_mix.create ~seed:16 in
  for _ = 1 to 20 do
    ignore (Helpers.collect_answer ~view catalog (random_instance c rng))
  done;
  let tuples_before = View.n_tuples view in
  check Alcotest.bool "warmed" true (tuples_before > 0);
  (* r.payload is in neither Ls' nor Cjoin: updating it must not touch
     the view *)
  ignore
    (Txn.run mgr
       [
         Txn.Update
           { rel = "r"; pred = Predicate.True; set = [ (3, Value.Str "renamed") ] };
       ]);
  check Alcotest.int "no tuples removed" tuples_before (View.n_tuples view);
  check Alcotest.bool "skip counted" true ((View.stats view).View.maint_skipped_updates > 0);
  (* updating the selection attribute r.f IS relevant *)
  ignore
    (Txn.run mgr
       [
         Txn.Update
           { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 1); set = [ (2, vi 99) ] };
       ]);
  check Alcotest.bool "relevant update removed tuples" true
    ((View.stats view).View.maint_removed > 0)

let test_hit_ratio_grows_on_hot_pattern () =
  let catalog, c, view = setup ~capacity:20 () in
  let hot = Instance.make c [| Instance.Dvalues [ vi 1; vi 2 ]; Instance.Dvalues [ vi 3 ] |] in
  ignore (Helpers.collect_answer ~view catalog hot);
  let hits = ref 0 in
  for _ = 1 to 10 do
    let _, partial, stats = Helpers.collect_answer ~view catalog hot in
    if stats.Answer.probe_hits > 0 && partial <> [] then incr hits
  done;
  check Alcotest.int "every repeat is a hit" 10 !hits;
  check Alcotest.bool "first-partial time recorded" true
    ((View.stats view).View.partial_tuples > 0)

let prop_answer_equivalence =
  QCheck2.Test.make ~name:"PMV answer == brute force under random workloads" ~count:30
    QCheck2.Gen.(
      triple (int_range 1 60) (int_range 1 4)
        (list_size (int_range 1 12) (pair (int_range 0 9) (int_range 0 7))))
    (fun (capacity, f_max, queries) ->
      let catalog = Helpers.fresh_catalog () in
      Helpers.build_rs ~n_r:80 ~n_s:60 ~n_join:20 catalog;
      let c = Template.compile catalog Helpers.eqt_spec in
      let view = View.create ~capacity ~f_max ~name:"p" c in
      List.for_all
        (fun (f, g) ->
          let inst =
            Instance.make c [| Instance.Dvalues [ vi f ]; Instance.Dvalues [ vi g ] |]
          in
          let got, _, stats = Helpers.collect_answer ~view catalog inst in
          Helpers.same_multiset got (Helpers.brute_force_answer catalog inst)
          && stats.Answer.stale_purged = 0)
        queries
      && View.invariants_ok view)

let suite =
  [
    Alcotest.test_case "answer equals plain" `Quick test_answer_equals_plain;
    Alcotest.test_case "interval template answers" `Quick test_answer_interval_template;
    Alcotest.test_case "duplicates exactly once" `Quick test_duplicates_exactly_once;
    Alcotest.test_case "F bound respected" `Quick test_f_bound_respected;
    Alcotest.test_case "2Q-managed view" `Quick test_two_q_view;
    Alcotest.test_case "locking protocol" `Quick test_locking_protocol;
    Alcotest.test_case "consistency (aux-index maintenance)" `Quick
      (test_consistency_under_maintenance Maintain.Aux_index);
    Alcotest.test_case "consistency (delta-join maintenance)" `Quick
      (test_consistency_under_maintenance Maintain.Delta_join);
    Alcotest.test_case "irrelevant updates skipped" `Quick
      test_update_irrelevant_attr_skips_maintenance;
    Alcotest.test_case "hot pattern hits" `Quick test_hit_ratio_grows_on_hot_pattern;
    QCheck_alcotest.to_alcotest prop_answer_equivalence;
  ]
