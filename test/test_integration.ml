(* End-to-end scenario on TPC-R-shaped data: two PMVs (T1 and T2) and a
   traditional MV coexisting, interleaved queries and transactions, with
   the MV's immediately-maintained contents as ground truth for the
   PMVs' deferred maintenance. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module View = Pmv.View
module Answer = Pmv.Answer
module Maintain = Pmv.Maintain
module Txn = Minirel_txn.Txn
module Tpcr = Minirel_workload.Tpcr
module Querygen = Minirel_workload.Querygen
module Zipf = Minirel_workload.Zipf
module SM = Minirel_prng.Split_mix

let check = Alcotest.check
let vi i = Value.Int i

let setup () =
  let catalog = Helpers.fresh_catalog ~pool_pages:20_000 () in
  let params = Tpcr.params_for_scale 0.003 in
  let _counts = Tpcr.generate catalog params in
  let t1 = Template.compile catalog Querygen.t1_spec in
  let t2 = Template.compile catalog Querygen.t2_spec in
  let v1 = View.create ~capacity:200 ~f_max:3 ~name:"t1" t1 in
  let v2 = View.create ~capacity:200 ~f_max:2 ~name:"t2" t2 in
  let mgr = Txn.create catalog in
  Maintain.attach ~use_locks:false v1 mgr;
  Maintain.attach ~strategy:Maintain.Delta_join ~use_locks:false v2 mgr;
  (catalog, params, t1, t2, v1, v2, mgr)

let test_full_scenario () =
  let catalog, params, t1, t2, v1, v2, mgr = setup () in
  let rng = SM.create ~seed:21 in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  let nz = Zipf.create ~n:params.Tpcr.n_nations ~alpha:1.01 in
  let mismatches = ref 0 and stale = ref 0 in
  let next_order = ref 10_000_000 in
  for round = 1 to 25 do
    (* T1 query *)
    let q1 = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
    let got1, _, st1 = Helpers.collect_answer ~view:v1 catalog q1 in
    if not (Helpers.same_multiset got1 (Helpers.brute_force_answer catalog q1)) then
      incr mismatches;
    stale := !stale + st1.Answer.stale_purged;
    (* T2 query *)
    let q2 =
      Querygen.gen_t2 t2 ~dates_zipf:dz ~supp_zipf:sz ~nation_zipf:nz ~e:2 ~f:1 ~g:2 rng
    in
    let got2, _, st2 = Helpers.collect_answer ~view:v2 catalog q2 in
    if not (Helpers.same_multiset got2 (Helpers.brute_force_answer catalog q2)) then
      incr mismatches;
    stale := !stale + st2.Answer.stale_purged;
    (* transactions touching all three relations *)
    incr next_order;
    let date = vi (1 + SM.int rng ~bound:params.Tpcr.n_dates) in
    let supp = vi (1 + SM.int rng ~bound:params.Tpcr.n_suppliers) in
    ignore
      (Txn.run mgr
         [
           Txn.Insert
             {
               rel = "orders";
               tuple = [| vi !next_order; vi 1; date; Value.Float 1.0; Value.Str "" |];
             };
           Txn.Insert
             {
               rel = "lineitem";
               tuple = [| vi !next_order; supp; vi 1; vi 1; Value.Float 1.0; Value.Str "" |];
             };
         ]);
    if round mod 5 = 0 then begin
      (* delete a whole supplier's lineitems and a nation's customers *)
      ignore
        (Txn.run mgr
           [
             Txn.Delete { rel = "lineitem"; pred = Predicate.Cmp (Predicate.Eq, 1, supp) };
             Txn.Delete
               {
                 rel = "customer";
                 pred = Predicate.Cmp (Predicate.Eq, 1, vi (SM.int rng ~bound:25));
               };
           ]);
      (* and shift some orders to another date (relevant update) *)
      ignore
        (Txn.run mgr
           [
             Txn.Update
               {
                 rel = "orders";
                 pred = Predicate.Cmp (Predicate.Eq, 2, date);
                 set = [ (2, vi (1 + SM.int rng ~bound:params.Tpcr.n_dates)) ];
               };
           ])
    end
  done;
  check Alcotest.int "no mismatching answers" 0 !mismatches;
  check Alcotest.int "no stale tuples ever served" 0 !stale;
  check Alcotest.bool "v1 invariants" true (View.invariants_ok v1);
  check Alcotest.bool "v2 invariants" true (View.invariants_ok v2);
  check Alcotest.bool "v1 served partials" true ((View.stats v1).View.partial_tuples > 0);
  check Alcotest.bool "deferred inserts counted" true
    ((View.stats v1).View.skipped_inserts > 0)

let test_mv_and_pmv_agree () =
  let catalog, params, t1, _, v1, _, mgr = setup () in
  let mv = Minirel_matview.Matview.create catalog ~name:"t1" t1 in
  Minirel_matview.Matview.attach mv mgr;
  let rng = SM.create ~seed:22 in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  for _ = 1 to 10 do
    let q = Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng in
    let got, _, _ = Helpers.collect_answer ~view:v1 catalog q in
    let from_mv = Minirel_matview.Matview.answer mv q in
    check Alcotest.bool "PMV pipeline = MV answer" true (Helpers.same_multiset got from_mv);
    (* mutate and re-check on the next loop iteration *)
    ignore
      (Txn.run mgr
         [
           Txn.Delete
             {
               rel = "lineitem";
               pred =
                 Predicate.Cmp (Predicate.Eq, 1, vi (1 + SM.int rng ~bound:params.Tpcr.n_suppliers));
             };
         ])
  done

let test_pmv_much_smaller_than_mv () =
  let catalog, params, t1, _, v1, _, _ = setup () in
  let mv = Minirel_matview.Matview.create catalog ~name:"t1" t1 in
  let rng = SM.create ~seed:23 in
  let dz = Zipf.create ~n:params.Tpcr.n_dates ~alpha:1.07 in
  let sz = Zipf.create ~n:params.Tpcr.n_suppliers ~alpha:1.07 in
  for _ = 1 to 60 do
    ignore
      (Helpers.collect_answer ~view:v1 catalog
         (Querygen.gen_t1 t1 ~dates_zipf:dz ~supp_zipf:sz ~e:2 ~f:2 rng))
  done;
  let pmv_bytes = View.size_bytes v1 in
  let mv_bytes = Minirel_matview.Matview.size_bytes mv in
  check Alcotest.bool "PMV serves partials" true ((View.stats v1).View.partial_tuples > 0);
  check Alcotest.bool "PMV is a small fraction of the MV" true
    (float_of_int pmv_bytes < 0.25 *. float_of_int mv_bytes)

let suite =
  [
    Alcotest.test_case "two PMVs + transactions" `Quick test_full_scenario;
    Alcotest.test_case "MV and PMV agree" `Quick test_mv_and_pmv_agree;
    Alcotest.test_case "PMV storage much smaller than MV" `Quick test_pmv_much_smaller_than_mv;
  ]
