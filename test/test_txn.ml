open Minirel_storage
open Minirel_query
module Lock = Minirel_txn.Lock_manager
module Txn = Minirel_txn.Txn
module Catalog = Minirel_index.Catalog

let check = Alcotest.check
let vi i = Value.Int i

(* --- lock manager --- *)

let test_s_locks_share () =
  let lm = Lock.create () in
  check Alcotest.bool "t1 S" true (Lock.acquire lm ~txn:1 ~obj:"v" Lock.S = Ok ());
  check Alcotest.bool "t2 S shares" true (Lock.acquire lm ~txn:2 ~obj:"v" Lock.S = Ok ());
  (match Lock.held_by lm ~obj:"v" with
  | Some (Lock.S, owners) -> check Alcotest.int "two owners" 2 (List.length owners)
  | _ -> Alcotest.fail "expected shared holders");
  (* X conflicts with the S group *)
  check Alcotest.bool "t3 X blocked" true
    (match Lock.acquire lm ~txn:3 ~obj:"v" Lock.X with Error _ -> true | Ok () -> false)

let test_upgrade () =
  let lm = Lock.create () in
  ignore (Lock.acquire lm ~txn:1 ~obj:"v" Lock.S);
  check Alcotest.bool "sole S upgrades to X" true
    (Lock.acquire lm ~txn:1 ~obj:"v" Lock.X = Ok ());
  (match Lock.held_by lm ~obj:"v" with
  | Some (Lock.X, [ 1 ]) -> ()
  | _ -> Alcotest.fail "expected X by txn 1");
  (* with two S holders the upgrade fails *)
  let lm2 = Lock.create () in
  ignore (Lock.acquire lm2 ~txn:1 ~obj:"v" Lock.S);
  ignore (Lock.acquire lm2 ~txn:2 ~obj:"v" Lock.S);
  check Alcotest.bool "upgrade blocked" true
    (match Lock.acquire lm2 ~txn:1 ~obj:"v" Lock.X with Error _ -> true | Ok () -> false)

let test_x_exclusive_and_reentrant () =
  let lm = Lock.create () in
  ignore (Lock.acquire lm ~txn:1 ~obj:"v" Lock.X);
  check Alcotest.bool "other S blocked" true
    (match Lock.acquire lm ~txn:2 ~obj:"v" Lock.S with Error _ -> true | Ok () -> false);
  check Alcotest.bool "own re-acquire ok" true (Lock.acquire lm ~txn:1 ~obj:"v" Lock.S = Ok ());
  Lock.release lm ~txn:1 ~obj:"v";
  check Alcotest.bool "after release" true (Lock.acquire lm ~txn:2 ~obj:"v" Lock.S = Ok ())

let test_release_all () =
  let lm = Lock.create () in
  ignore (Lock.acquire lm ~txn:1 ~obj:"a" Lock.S);
  ignore (Lock.acquire lm ~txn:1 ~obj:"b" Lock.X);
  ignore (Lock.acquire lm ~txn:2 ~obj:"a" Lock.S);
  Lock.release_all lm ~txn:1;
  check Alcotest.bool "b free" true (Lock.held_by lm ~obj:"b" = None);
  match Lock.held_by lm ~obj:"a" with
  | Some (Lock.S, [ 2 ]) -> ()
  | _ -> Alcotest.fail "txn 2 should still hold a"

(* Regression (fault-injection PR): an S holder upgrading to X after
   another transaction's S/X request was refused must leave exactly one
   owner behind, so a later [release_all] frees the object completely
   instead of leaving a stale holder. *)
let test_upgrade_after_refused_request () =
  let lm = Lock.create () in
  ignore (Lock.acquire lm ~txn:1 ~obj:"v" Lock.S);
  check Alcotest.bool "t2 X refused" true
    (match Lock.acquire lm ~txn:2 ~obj:"v" Lock.X with Error _ -> true | Ok () -> false);
  check Alcotest.bool "t1 upgrades" true (Lock.acquire lm ~txn:1 ~obj:"v" Lock.X = Ok ());
  (match Lock.held_by lm ~obj:"v" with
  | Some (Lock.X, [ 1 ]) -> ()
  | Some (_, owners) ->
      Alcotest.failf "owners not normalised: [%a]" Fmt.(list ~sep:comma int) owners
  | None -> Alcotest.fail "lock vanished");
  Lock.release_all lm ~txn:1;
  check Alcotest.bool "fully free after release_all" true (Lock.held_by lm ~obj:"v" = None);
  check Alcotest.bool "t2 can take X now" true (Lock.acquire lm ~txn:2 ~obj:"v" Lock.X = Ok ())

(* Upgrading after a re-entrant S acquire must also leave one owner:
   one release frees the object. *)
let test_upgrade_after_reentrant_s () =
  let lm = Lock.create () in
  ignore (Lock.acquire lm ~txn:1 ~obj:"v" Lock.S);
  ignore (Lock.acquire lm ~txn:1 ~obj:"v" Lock.S);
  check Alcotest.bool "upgrade" true (Lock.acquire lm ~txn:1 ~obj:"v" Lock.X = Ok ());
  Lock.release lm ~txn:1 ~obj:"v";
  check Alcotest.bool "one release frees" true (Lock.held_by lm ~obj:"v" = None)

(* [release]/[release_all] for a non-holder must neither free the
   object nor inflate the release statistics. *)
let test_release_only_owned () =
  let lm = Lock.create () in
  ignore (Lock.acquire lm ~txn:1 ~obj:"a" Lock.S);
  ignore (Lock.acquire lm ~txn:1 ~obj:"b" Lock.X);
  ignore (Lock.acquire lm ~txn:2 ~obj:"a" Lock.S);
  let before = (Lock.stats lm).Lock.releases in
  Lock.release lm ~txn:2 ~obj:"b";
  (match Lock.held_by lm ~obj:"b" with
  | Some (Lock.X, [ 1 ]) -> ()
  | _ -> Alcotest.fail "txn 1 must still hold b");
  Lock.release_all lm ~txn:2;
  check Alcotest.int "only txn 2's own lock counted" (before + 1)
    (Lock.stats lm).Lock.releases;
  match Lock.held_by lm ~obj:"a" with
  | Some (Lock.S, [ 1 ]) -> ()
  | _ -> Alcotest.fail "txn 1 must still hold a"

(* --- transactions --- *)

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:40 ~n_s:30 catalog;
  (catalog, Txn.create catalog)

let test_txn_insert_delete () =
  let catalog, mgr = setup () in
  let before = Heap_file.n_tuples (Catalog.heap catalog "r") in
  let deltas =
    Txn.run mgr
      [
        Txn.Insert { rel = "r"; tuple = [| vi 900; vi 1; vi 2; Value.Str "n" |] };
        Txn.Delete { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 0, vi 1) };
      ]
  in
  check Alcotest.int "two deltas" 2 (List.length deltas);
  check Alcotest.int "net count" before (Heap_file.n_tuples (Catalog.heap catalog "r"));
  (match deltas with
  | [ d1; d2 ] ->
      check Alcotest.int "insert delta" 1 (List.length d1.Txn.inserted);
      check Alcotest.int "delete delta" 1 (List.length d2.Txn.deleted);
      check Helpers.tuple "deleted tuple value"
        [| vi 1; vi 1; vi 1; Value.Str "pay1" |]
        (List.hd d2.Txn.deleted)
  | _ -> Alcotest.fail "deltas")

let test_txn_update () =
  let catalog, mgr = setup () in
  let deltas =
    Txn.run mgr
      [
        Txn.Update
          {
            rel = "s";
            pred = Predicate.Cmp (Predicate.Eq, 2, vi 5);
            set = [ (1, vi 77) ];
          };
      ]
  in
  (match deltas with
  | [ d ] -> (
      match d.Txn.updated with
      | [ (old_t, new_t) ] ->
          check Helpers.value "old g" old_t.(1) (vi (5 mod 8));
          check Helpers.value "new g" (vi 77) new_t.(1);
          check Helpers.value "key unchanged" old_t.(2) new_t.(2)
      | _ -> Alcotest.fail "expected one update")
  | _ -> Alcotest.fail "expected one delta");
  (* the heap reflects it *)
  let updated =
    Heap_file.fold (Catalog.heap catalog "s")
      (fun acc _ t -> if Value.equal t.(2) (vi 5) then t :: acc else acc)
      []
  in
  check Alcotest.int "one row" 1 (List.length updated);
  check Helpers.value "persisted" (vi 77) (List.hd updated).(1)

let test_hooks_invoked () =
  let _, mgr = setup () in
  let log = ref [] in
  Txn.register_hook mgr ~name:"probe" (fun d -> log := d.Txn.rel :: !log);
  ignore
    (Txn.run mgr
       [
         Txn.Insert { rel = "r"; tuple = [| vi 901; vi 1; vi 2; Value.Str "n" |] };
         Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 3) };
       ]);
  check (Alcotest.list Alcotest.string) "hooks saw both" [ "s"; "r" ] !log;
  Txn.unregister_hook mgr ~name:"probe";
  ignore (Txn.run mgr [ Txn.Insert { rel = "r"; tuple = [| vi 902; vi 1; vi 2; Value.Str "n" |] } ]);
  check Alcotest.int "unregistered" 2 (List.length !log)

let test_txn_locks_released () =
  let catalog, mgr = setup () in
  ignore (Txn.run mgr [ Txn.Insert { rel = "r"; tuple = [| vi 903; vi 1; vi 2; Value.Str "n" |] } ]);
  (* relation lock must be free afterwards *)
  check Alcotest.bool "rel lock released" true (Lock.held_by (Txn.locks mgr) ~obj:"rel:r" = None);
  ignore catalog

(* Regression (fault-injection PR): when acquiring the second
   relation's lock fails mid-transaction, the first relation's lock
   must not leak. *)
let test_txn_partial_lock_failure_releases () =
  let catalog, mgr = setup () in
  let lm = Txn.locks mgr in
  ignore (Lock.acquire lm ~txn:77 ~obj:"rel:s" Lock.X);
  (match
     Txn.run mgr
       [
         Txn.Insert { rel = "r"; tuple = [| vi 904; vi 1; vi 2; Value.Str "n" |] };
         Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 1) };
       ]
   with
  | _ -> Alcotest.fail "expected a lock conflict"
  | exception Failure _ -> ());
  check Alcotest.bool "r lock not leaked" true (Lock.held_by lm ~obj:"rel:r" = None);
  (* nothing was applied *)
  let r900 =
    Heap_file.fold (Catalog.heap catalog "r")
      (fun acc _ t -> if Value.equal t.(0) (vi 904) then t :: acc else acc)
      []
  in
  check Alcotest.int "insert not applied" 0 (List.length r900);
  Lock.release_all lm ~txn:77

let suite =
  [
    Alcotest.test_case "S locks share" `Quick test_s_locks_share;
    Alcotest.test_case "upgrade" `Quick test_upgrade;
    Alcotest.test_case "upgrade after refused request" `Quick test_upgrade_after_refused_request;
    Alcotest.test_case "upgrade after re-entrant S" `Quick test_upgrade_after_reentrant_s;
    Alcotest.test_case "release only owned" `Quick test_release_only_owned;
    Alcotest.test_case "partial lock failure releases" `Quick
      test_txn_partial_lock_failure_releases;
    Alcotest.test_case "X exclusive + reentrant" `Quick test_x_exclusive_and_reentrant;
    Alcotest.test_case "release_all" `Quick test_release_all;
    Alcotest.test_case "insert/delete txn" `Quick test_txn_insert_delete;
    Alcotest.test_case "update txn" `Quick test_txn_update;
    Alcotest.test_case "hooks invoked" `Quick test_hooks_invoked;
    Alcotest.test_case "locks released" `Quick test_txn_locks_released;
  ]
