(* The shell: full-statement execution (DDL, DML, SELECT with GROUP
   BY / ORDER BY / LIMIT) over one catalog with automatic PMVs. *)

open Minirel_storage
module Shell = Minirel_shell.Shell

let check = Alcotest.check
let vi i = Value.Int i

let fresh_shell () = Shell.create (Helpers.fresh_catalog ())

let build_inventory shell =
  let run sql =
    match Shell.exec shell sql with
    | r -> r
    | exception e -> Alcotest.failf "statement failed: %s (%s)" sql (Printexc.to_string e)
  in
  ignore (run "create table items (ik int, category int, price float, label string)");
  ignore (run "create table stock (ik int, store int, qty int)");
  ignore (run "create index items_ik on items (ik)");
  ignore (run "create index items_category on items (category)");
  ignore (run "create index stock_ik on stock (ik)");
  ignore (run "create index stock_store on stock (store)");
  for ik = 1 to 40 do
    ignore
      (run
         (Fmt.str "insert into items values (%d, %d, %d.5, 'item %d')" ik (ik mod 5)
            (ik * 10) ik));
    ignore (run (Fmt.str "insert into stock values (%d, %d, %d)" ik (ik mod 4) (ik mod 7)))
  done;
  run

let test_ddl_dml () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  (match run "insert into items values (99, 1, 5, 'cheap')" with
  | Shell.Inserted 1 -> ()
  | _ -> Alcotest.fail "insert result");
  (* type coercion happened: price is a float column *)
  (match run "select i.price from items i where (i.ik = 99)" with
  | Shell.Rows { rows = [ [| Value.Float 5.0 |] ]; _ } -> ()
  | Shell.Rows { rows; _ } -> Alcotest.failf "unexpected rows: %d" (List.length rows)
  | _ -> Alcotest.fail "rows expected");
  match run "delete from items where items.ik = 99" with
  | Shell.Deleted 1 -> ()
  | _ -> Alcotest.fail "delete result"

let test_select_through_pmv () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  let sql = "select i.label, s.qty from items i, stock s where i.ik = s.ik and (i.category = 2) and (s.store = 1)" in
  (match run sql with
  | Shell.Rows { from_pmv = 0; total; _ } -> check Alcotest.bool "has rows" true (total > 0)
  | _ -> Alcotest.fail "first run");
  (* the repeat is served partially from the PMV *)
  match run sql with
  | Shell.Rows { from_pmv; _ } -> check Alcotest.bool "pmv serves repeat" true (from_pmv > 0)
  | _ -> Alcotest.fail "second run"

let test_order_by_and_limit () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  (match run "select i.ik, i.price from items i where (i.category = 2) order by i.price desc limit 3" with
  | Shell.Rows { rows; _ } ->
      check Alcotest.int "limit" 3 (List.length rows);
      let prices = List.map (fun r -> Value.float_exn r.(1)) rows in
      check Alcotest.bool "descending" true (List.sort compare prices = List.rev prices)
  | _ -> Alcotest.fail "rows expected");
  (* LIMIT without ORDER BY terminates early but yields real rows *)
  match run "select i.ik from items i where (i.category = 1) limit 2" with
  | Shell.Rows { rows; _ } -> check Alcotest.int "early stop" 2 (List.length rows)
  | _ -> Alcotest.fail "rows expected"

let test_group_by () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  match
    run
      "select s.store, count(*), sum(s.qty) from items i, stock s where i.ik = s.ik and \
       (i.category in (1, 2, 3)) group by s.store"
  with
  | Shell.Grouped { header; groups; _ } ->
      check (Alcotest.list Alcotest.string) "header" [ "store"; "count(*)"; "sum(qty)" ] header;
      check Alcotest.bool "several groups" true (List.length groups >= 3);
      (* counts add up to the plain total *)
      let plain_total =
        match
          run
            "select s.qty from items i, stock s where i.ik = s.ik and (i.category in (1, 2, 3))"
        with
        | Shell.Rows { total; _ } -> total
        | _ -> -1
      in
      let group_total =
        List.fold_left
          (fun acc (_, aggs) -> acc + Value.int_exn (List.hd aggs))
          0 groups
      in
      check Alcotest.int "group counts = row count" plain_total group_total
  | _ -> Alcotest.fail "grouped expected"

let test_group_partial_preview () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  let sql =
    "select s.store, count(*) from items i, stock s where i.ik = s.ik and (i.category = 2) \
     and (s.store = 1) group by s.store"
  in
  ignore (run sql);
  match run sql with
  | Shell.Grouped { partial_groups; _ } ->
      check Alcotest.bool "early preview appears on the repeat" true (partial_groups <> [])
  | _ -> Alcotest.fail "grouped expected"

let test_update_statement () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  (match run "update items set category = 9 where items.ik between 1 and 5" with
  | Shell.Updated 5 -> ()
  | Shell.Updated n -> Alcotest.failf "updated %d" n
  | _ -> Alcotest.fail "update result");
  (match run "select i.ik from items i where (i.category = 9)" with
  | Shell.Rows { total = 5; _ } -> ()
  | Shell.Rows { total; _ } -> Alcotest.failf "found %d" total
  | _ -> Alcotest.fail "rows");
  (* type coercion in SET against a float column *)
  (match run "update items set price = 1 where items.ik = 1" with
  | Shell.Updated 1 -> ()
  | _ -> Alcotest.fail "float set");
  match run "select i.price from items i where (i.ik = 1)" with
  | Shell.Rows { rows = [ [| Value.Float 1.0 |] ]; _ } -> ()
  | _ -> Alcotest.fail "coerced price"

let test_distinct_select () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  (* categories repeat across items: DISTINCT collapses them *)
  (match run "select i.category from items i where (i.category in (1, 2, 3))" with
  | Shell.Rows { total; _ } -> check Alcotest.bool "duplicates exist" true (total > 3)
  | _ -> Alcotest.fail "rows");
  (match run "select distinct i.category from items i where (i.category in (1, 2, 3))" with
  | Shell.Rows { rows; _ } -> check Alcotest.int "three distinct" 3 (List.length rows)
  | _ -> Alcotest.fail "rows");
  (* distinct + aggregates rejected *)
  match Shell.exec shell "select distinct count(*) from items i where (i.category = 1)" with
  | _ -> Alcotest.fail "distinct aggregate accepted"
  | exception Minirel_sql.Binder.Error _ -> ()

let test_explain () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  match
    run
      "explain select i.label from items i, stock s where i.ik = s.ik and (i.category = 2) \
       and (s.store in (1, 3))"
  with
  | Shell.Explained text ->
      check Alcotest.bool "mentions the template" true
        (String.length text > 0
        &&
        let contains needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
          go 0
        in
        contains "h = 2" && contains "ixlookup" && contains "inlj")
  | _ -> Alcotest.fail "explained expected"

let test_errors () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  let expect_error sql =
    match Shell.exec shell sql with
    | _ -> Alcotest.failf "accepted: %s" sql
    | exception
        ( Shell.Error _ | Minirel_sql.Parser.Error _ | Minirel_sql.Binder.Error _
        | Invalid_argument _ ) ->
        ()
  in
  ignore run;
  expect_error "insert into nope values (1)";
  expect_error "insert into items values (1, 2)";  (* arity *)
  expect_error "create table items (x int)";  (* duplicate *)
  expect_error "select i.ik, count(*) from items i where (i.category = 1)";
  (* plain attr not grouped *)
  expect_error
    "select i.ik from items i where (i.category = 1) group by i.ik";  (* group w/o agg *)
  expect_error "select sum(i.label) from items i where (i.category = 1)"
  (* sum over a string raises at execution *)

(* Model-based property: random insert/delete/select statements against
   one table behave exactly like a list model — across the SQL
   frontend, transactions, deferred PMV maintenance, and the answer
   pipeline. *)
let prop_shell_vs_model =
  QCheck2.Test.make ~name:"shell matches a list model under random statements" ~count:40
    QCheck2.Gen.(list_size (int_range 1 60) (triple (int_range 0 5) (int_range 0 6) (int_range 0 50)))
    (fun ops ->
      let shell = Shell.create (Helpers.fresh_catalog ()) in
      ignore (Shell.exec shell "create table m (k int, v int)");
      ignore (Shell.exec shell "create index m_k on m (k)");
      let model = ref [] in
      List.for_all
        (fun (op, k, v) ->
          match op with
          | 0 | 1 | 2 ->
              ignore (Shell.exec shell (Fmt.str "insert into m values (%d, %d)" k v));
              model := (k, v) :: !model;
              true
          | 3 ->
              (match Shell.exec shell (Fmt.str "delete from m where m.k = %d" k) with
              | Shell.Deleted n ->
                  let expect = List.length (List.filter (fun (mk, _) -> mk = k) !model) in
                  model := List.filter (fun (mk, _) -> mk <> k) !model;
                  n = expect
              | _ -> false)
          | 4 -> (
              match Shell.exec shell (Fmt.str "select m.v from m where (m.k = %d)" k) with
              | Shell.Rows { rows; _ } ->
                  let got = List.sort compare (List.map (fun r -> Value.int_exn r.(0)) rows) in
                  let expect =
                    List.sort compare
                      (List.filter_map (fun (mk, mv) -> if mk = k then Some mv else None) !model)
                  in
                  got = expect
              | _ -> false)
          | _ -> (
              match
                Shell.exec shell
                  (Fmt.str "select count(*) from m where (m.k in (%d, %d))" k ((k + 1) mod 51))
              with
              | Shell.Grouped { groups = [ (_, [ Value.Int n ]) ]; _ } ->
                  n
                  = List.length
                      (List.filter (fun (mk, _) -> mk = k || mk = (k + 1) mod 51) !model)
              | Shell.Grouped { groups = []; _ } ->
                  not (List.exists (fun (mk, _) -> mk = k || mk = (k + 1) mod 51) !model)
              | _ -> false))
        ops)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_maint_budget_verbs () =
  let shell = fresh_shell () in
  let run = build_inventory shell in
  (* a select registers a view to classify and arbitrate over *)
  ignore
    (run
       "select i.label, s.qty from items i, stock s where i.ik = s.ik and (i.category = \
        2) and (s.store = 1)");
  (match run "maint on" with
  | Shell.Maint_report _ -> ()
  | _ -> Alcotest.fail "maint on");
  (* churn under adaptive maintenance, then read the classification *)
  ignore (run "delete from stock where stock.store = 1");
  (match run "maint status" with
  | Shell.Maint_report s ->
      check Alcotest.bool "status reports the view adaptive" true (contains s "on")
  | _ -> Alcotest.fail "maint status");
  (* answers stay exact with lapsed entries in the store *)
  (match
     run
       "select i.label, s.qty from items i, stock s where i.ik = s.ik and (i.category = \
        2) and (s.store = 1)"
   with
  | Shell.Rows { rows; _ } ->
      check Alcotest.int "store-1 stock deleted" 0 (List.length rows)
  | _ -> Alcotest.fail "select after lapse");
  (match run "budget status" with
  | Shell.Budget_report s ->
      check Alcotest.bool "no budget armed yet" true (contains s "not armed")
  | _ -> Alcotest.fail "budget status");
  (match run "budget rebalance" with
  | Shell.Budget_report s ->
      check Alcotest.bool "rebalance without a budget says so" true (contains s "no budget")
  | _ -> Alcotest.fail "budget rebalance unarmed");
  (match run "budget total 100000" with
  | Shell.Budget_report _ -> ()
  | _ -> Alcotest.fail "budget total");
  (match run "budget rebalance" with
  | Shell.Budget_report s -> check Alcotest.bool "rebalance resizes" true (contains s "L=")
  | _ -> Alcotest.fail "budget rebalance");
  (match run "maint off" with
  | Shell.Maint_report _ -> ()
  | _ -> Alcotest.fail "maint off");
  match Shell.exec shell "budget total -3" with
  | _ -> Alcotest.fail "negative budget accepted"
  | exception (Shell.Error _ | Minirel_sql.Parser.Error _ | Invalid_argument _) -> ()

let suite =
  [
    Alcotest.test_case "ddl and dml" `Quick test_ddl_dml;
    QCheck_alcotest.to_alcotest prop_shell_vs_model;
    Alcotest.test_case "select through pmv" `Quick test_select_through_pmv;
    Alcotest.test_case "order by and limit" `Quick test_order_by_and_limit;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "grouped partial preview" `Quick test_group_partial_preview;
    Alcotest.test_case "update statement" `Quick test_update_statement;
    Alcotest.test_case "distinct select" `Quick test_distinct_select;
    Alcotest.test_case "explain" `Quick test_explain;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "maint and budget verbs" `Quick test_maint_budget_verbs;
  ]
