(* Shared fixtures for the test suites. *)

open Minirel_storage
module Catalog = Minirel_index.Catalog

let value = Alcotest.testable Value.pp Value.equal
let tuple = Alcotest.testable Tuple.pp Tuple.equal

let tuples =
  Alcotest.testable (Fmt.Dump.list Tuple.pp) (fun a b ->
      List.equal Tuple.equal (List.sort Tuple.compare a) (List.sort Tuple.compare b))

(* Multiset equality of tuple lists. *)
let same_multiset a b =
  List.equal Tuple.equal (List.sort Tuple.compare a) (List.sort Tuple.compare b)

let fresh_catalog ?(pool_pages = 10_000) () =
  let pool = Buffer_pool.create ~capacity:pool_pages () in
  Catalog.create pool

(* A two-relation schema in the shape of the paper's Eqt (Figure 1):
     r (rkey, c, f, payload)      s (d, g, e)
   joined on r.c = s.d, selections on r.f and s.g. *)
let r_schema =
  Schema.create "r"
    [ ("rkey", Schema.Tint); ("c", Schema.Tint); ("f", Schema.Tint); ("payload", Schema.Tstr) ]

let s_schema =
  Schema.create "s" [ ("d", Schema.Tint); ("g", Schema.Tint); ("e", Schema.Tint) ]

(* Populate r/s deterministically:
   - r: [n_r] rows, rkey = 1..n_r, c = rkey mod n_join, f = rkey mod n_f
   - s: [n_s] rows, d = row mod n_join, g = row mod n_g, e = row
   Every (f, g) pair gets a predictable number of join results. *)
let build_rs ?(n_r = 200) ?(n_s = 120) ?(n_join = 40) ?(n_f = 10) ?(n_g = 8) catalog =
  let _ = Catalog.create_relation catalog r_schema in
  let _ = Catalog.create_relation catalog s_schema in
  for rkey = 1 to n_r do
    ignore
      (Catalog.insert catalog ~rel:"r"
         [|
           Value.Int rkey;
           Value.Int (rkey mod n_join);
           Value.Int (rkey mod n_f);
           Value.Str (Fmt.str "pay%d" rkey);
         |])
  done;
  for row = 1 to n_s do
    ignore
      (Catalog.insert catalog ~rel:"s"
         [| Value.Int (row mod n_join); Value.Int (row mod n_g); Value.Int row |])
  done;
  ignore (Catalog.create_index catalog ~rel:"r" ~name:"r_f" ~attrs:[ "f" ] ());
  ignore (Catalog.create_index catalog ~rel:"r" ~name:"r_c" ~attrs:[ "c" ] ());
  ignore (Catalog.create_index catalog ~rel:"s" ~name:"s_d" ~attrs:[ "d" ] ());
  ignore (Catalog.create_index catalog ~rel:"s" ~name:"s_g" ~attrs:[ "g" ] ())

open Minirel_query

(* The Eqt template over r/s: equality form on both r.f and s.g. *)
let eqt_spec =
  {
    Template.name = "eqt";
    relations = [| "r"; "s" |];
    joins = [ (Template.attr_ref ~rel:0 ~attr:"c", Template.attr_ref ~rel:1 ~attr:"d") ];
    fixed = [];
    select_list =
      [ Template.attr_ref ~rel:0 ~attr:"rkey"; Template.attr_ref ~rel:1 ~attr:"e" ];
    selections =
      [|
        Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"f");
        Template.Eq_sel (Template.attr_ref ~rel:1 ~attr:"g");
      |];
  }

(* Variant with an interval-form selection on s.e over a grid. *)
let eqt_interval_spec ~grid =
  {
    eqt_spec with
    Template.name = "eqt_iv";
    selections =
      [|
        Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"f");
        Template.Range_sel (Template.attr_ref ~rel:1 ~attr:"e", grid);
      |];
  }

(* Ground truth for every executor/PMV answer, independent of the
   planner/executor: delegates to the consistency-oracle library
   (full-scan left-deep hash join + Cselect filtering), so the tests
   exercise the same reference implementation the torture driver
   judges against. *)
let brute_force_answer catalog instance = Minirel_check.Check.ground_truth catalog instance

(* Collect every tuple an answer delivers. *)
let collect_answer ?locks ?txn ~view catalog instance =
  let out = ref [] and partial = ref [] in
  let stats =
    Pmv.Answer.answer ?locks ?txn ~view catalog instance ~on_tuple:(fun phase t ->
        out := t :: !out;
        match phase with Pmv.Answer.Partial -> partial := t :: !partial | _ -> ())
  in
  (!out, !partial, stats)

let collect_plain catalog instance =
  let out = ref [] in
  let stats = Pmv.Answer.answer_plain catalog instance ~on_tuple:(fun _ t -> out := t :: !out) in
  (!out, stats)
