(* Failpoint registry: policy semantics, seed determinism, counter
   bookkeeping, and the disabled-path cost contract (a probe while the
   registry is off is one boolean load — no allocation). *)

module Fault = Minirel_fault.Fault

let check = Alcotest.check
let bools = Alcotest.(list bool)

(* The registry is process-global: every test starts from and returns
   to a clean, disabled state so suites cannot interfere. *)
let with_clean f =
  Fault.reset ();
  Fault.disable ();
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      Fault.disable ())
    f

let pattern name n = List.init n (fun _ -> Fault.fire name)

let test_policies () =
  with_clean @@ fun () ->
  Fault.enable ();
  Fault.arm "t.once" Fault.Once;
  check bools "once fires on the first hit only" [ true; false; false ] (pattern "t.once" 3);
  check Alcotest.int "hits keep counting" 3 (Fault.hits "t.once");
  check Alcotest.int "fired exactly once" 1 (Fault.fired "t.once");
  Fault.arm "t.nth" (Fault.Nth 3);
  check bools "nth fires on the n-th hit" [ false; false; true; false ] (pattern "t.nth" 4);
  Fault.arm "t.first" (Fault.First 2);
  check bools "first-n fires on the first n" [ true; true; false ] (pattern "t.first" 3);
  Fault.arm "t.always" Fault.Always;
  check bools "always fires every hit" [ true; true; true ] (pattern "t.always" 3);
  check bools "unarmed sites never fire" [ false; false ] (pattern "t.unarmed" 2);
  check Alcotest.int "unarmed sites count nothing" 0 (Fault.hits "t.unarmed")

let test_hit_raises () =
  with_clean @@ fun () ->
  Fault.enable ();
  Fault.arm "t.raise" Fault.Once;
  (match Fault.hit "t.raise" with
  | () -> Alcotest.fail "expected Injected"
  | exception Fault.Injected "t.raise" -> ());
  (* second hit: Once is spent, no raise *)
  Fault.hit "t.raise";
  check Alcotest.int "two hits" 2 (Fault.hits "t.raise")

let test_prob_deterministic () =
  with_clean @@ fun () ->
  Fault.enable ~seed:42 ();
  Fault.arm "t.prob" (Fault.Prob 0.3);
  let a = pattern "t.prob" 300 in
  check Alcotest.bool "some hits fire" true (List.mem true a);
  check Alcotest.bool "some hits pass" true (List.mem false a);
  (* same seed, fresh registry: identical firing pattern *)
  Fault.reset ();
  Fault.arm "t.prob" (Fault.Prob 0.3);
  let b = pattern "t.prob" 300 in
  check bools "same seed reproduces the stream" a b;
  (* a different seed diverges *)
  Fault.reset ();
  Fault.enable ~seed:43 ();
  Fault.arm "t.prob" (Fault.Prob 0.3);
  let c = pattern "t.prob" 300 in
  check Alcotest.bool "different seed diverges" true (a <> c)

let test_rearm_resets_and_advances () =
  with_clean @@ fun () ->
  Fault.enable ~seed:7 ();
  Fault.arm "t.prob" (Fault.Prob 0.5);
  let a = pattern "t.prob" 64 in
  Fault.arm "t.prob" (Fault.Prob 0.5);
  check Alcotest.int "re-arming resets counters" 0 (Fault.hits "t.prob");
  let b = pattern "t.prob" 64 in
  check Alcotest.bool "re-arming advances the generation stream" true (a <> b);
  check Alcotest.int "counters track the new arming" 64 (Fault.hits "t.prob")

let test_disarm_and_sites () =
  with_clean @@ fun () ->
  Fault.enable ();
  Fault.arm "t.b" Fault.Always;
  Fault.arm "t.a" Fault.Once;
  ignore (pattern "t.b" 2);
  (match Fault.sites () with
  | [ ("t.a", Fault.Once, 0, 0); ("t.b", Fault.Always, 2, 2) ] -> ()
  | s -> Alcotest.failf "unexpected sites listing (%d entries)" (List.length s));
  Fault.disarm "t.b";
  check Alcotest.bool "disarmed site is silent" false (Fault.fire "t.b");
  check Alcotest.int "one site left" 1 (List.length (Fault.sites ()))

(* Armed sites stay armed across disable/enable, and while disabled
   nothing fires or counts. *)
let test_disable_suspends () =
  with_clean @@ fun () ->
  Fault.enable ();
  Fault.arm "t.s" Fault.Always;
  check Alcotest.bool "fires while enabled" true (Fault.fire "t.s");
  Fault.disable ();
  check Alcotest.bool "silent while disabled" false (Fault.fire "t.s");
  check Alcotest.int "no hit recorded while disabled" 1 (Fault.hits "t.s");
  Fault.enable ();
  check Alcotest.bool "fires again after re-enable" true (Fault.fire "t.s")

let test_disabled_no_alloc () =
  with_clean @@ fun () ->
  Fault.arm "t.cold" Fault.Always;
  (* warm up so any one-time setup is outside the measured window *)
  ignore (Fault.fire "t.cold");
  let w1 = Gc.minor_words () in
  for _ = 1 to 100_000 do
    ignore (Fault.fire "t.cold")
  done;
  let w2 = Gc.minor_words () in
  (* boxing of the two counter reads costs a few words; 100k probes
     must not add to that *)
  check Alcotest.bool
    (Printf.sprintf "disabled probes allocate nothing (%.0f words)" (w2 -. w1))
    true
    (w2 -. w1 < 256.0);
  check Alcotest.int "no hits recorded while disabled" 0 (Fault.hits "t.cold")

let suite =
  [
    Alcotest.test_case "policies" `Quick test_policies;
    Alcotest.test_case "hit raises Injected" `Quick test_hit_raises;
    Alcotest.test_case "prob determinism" `Quick test_prob_deterministic;
    Alcotest.test_case "re-arm resets + advances" `Quick test_rearm_resets_and_advances;
    Alcotest.test_case "disarm + sites" `Quick test_disarm_and_sites;
    Alcotest.test_case "disable suspends" `Quick test_disable_suspends;
    Alcotest.test_case "disabled path allocation-free" `Quick test_disabled_no_alloc;
  ]
