(* The torture driver as a property: across many seeded workloads —
   queries, transactions, WAL crashes + recovery, injected lock
   conflicts and I/O errors, deferred and lost maintenance — the
   consistency oracle must stay silent, and a campaign must reproduce
   its event digest exactly from its seed. *)

module Torture = Minirel_check.Torture

let check = Alcotest.check

(* Small but complete campaigns: every event class enabled, deep checks
   included. *)
let mini seed =
  { (Torture.default_cfg ~seed) with Torture.events = 25; scale = 0.0003; check_every = 12 }

let qcheck_oracle_clean =
  QCheck.Test.make ~count:200 ~name:"torture oracle clean across seeded workloads"
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let o = Torture.run (mini seed) in
      if not (Torture.ok o) then
        QCheck.Test.fail_reportf "seed %d: %a" seed Torture.pp_outcome o;
      true)

(* One larger campaign, run twice: identical digest and counters. *)
let test_digest_reproducible () =
  let cfg =
    { (Torture.default_cfg ~seed:1234) with Torture.events = 120; scale = 0.001 }
  in
  let a = Torture.run cfg in
  let b = Torture.run cfg in
  check Alcotest.string "digest reproduces" a.Torture.digest b.Torture.digest;
  check Alcotest.int "same query count" a.Torture.queries b.Torture.queries;
  check Alcotest.int "same crash count" a.Torture.crashes b.Torture.crashes;
  check Alcotest.int "same txn count" a.Torture.txns b.Torture.txns;
  check Alcotest.bool "clean" true (Torture.ok a)

(* The campaign must actually exercise the machinery it claims to:
   queries answered, transactions committed, crashes recovered, faults
   observed. *)
let test_campaign_coverage () =
  let o =
    Torture.run { (Torture.default_cfg ~seed:99) with Torture.events = 200; scale = 0.001 }
  in
  check Alcotest.bool "clean" true (Torture.ok o);
  check Alcotest.bool "queries answered" true (o.Torture.queries > 0);
  check Alcotest.bool "txns committed" true (o.Torture.txns > 0);
  check Alcotest.bool "crashes injected" true (o.Torture.crashes > 0);
  check Alcotest.int "every crash recovered" o.Torture.crashes o.Torture.recoveries;
  check Alcotest.bool "lock faults observed" true (o.Torture.lock_rejects > 0);
  check Alcotest.bool "io faults observed" true (o.Torture.io_faults > 0);
  check Alcotest.bool "maintenance deferred" true (o.Torture.deferrals > 0);
  check Alcotest.bool "deep checks ran" true (o.Torture.deep_checks > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_oracle_clean;
    Alcotest.test_case "digest reproducible" `Quick test_digest_reproducible;
    Alcotest.test_case "campaign coverage" `Quick test_campaign_coverage;
  ]
