(* End-to-end observability: the stitched cross-shard span tree, the
   hires histogram error/merge contracts behind the SLO watchdog, the
   flight recorder's ordering and digest guarantees, breach capture
   with automatic snapshots, and reproducible stratified sampling. *)

open Minirel_storage
open Minirel_telemetry
module Engine = Minirel_engine.Engine
module Router = Minirel_engine.Shard_router
module Pool = Minirel_parallel.Pool
module Check = Minirel_check.Check
module Template = Minirel_query.Template

let check = Alcotest.check

(* 4 shards over the r/s fixture, co-partitioned on the join key (the
   test_shard fixture, rebuilt here so this suite stands alone). *)
let make_router ~shards =
  let reference = Helpers.fresh_catalog () in
  Helpers.build_rs reference;
  let router = Router.create ~shards () in
  Router.declare router Helpers.r_schema ~part:(`Hash "c");
  Router.declare router Helpers.s_schema ~part:(`Hash "d");
  Router.load_from router reference;
  let compiled = Template.compile reference Helpers.eqt_spec in
  ignore (Router.create_view ~capacity:64 router compiled);
  (reference, router, compiled)

let inst c ~fs ~gs =
  let dvs l =
    Minirel_query.Instance.Dvalues (List.map (fun i -> Value.Int i) (List.sort_uniq compare l))
  in
  Minirel_query.Instance.make c [| dvs fs; dvs gs |]

let collect router ?trace q =
  let out = ref [] in
  ignore (Router.answer ?trace router q ~on_tuple:(fun _ t -> out := t :: !out));
  List.sort Tuple.compare !out

(* --- tentpole acceptance: one stitched span tree per query ---------- *)

let test_stitched_tree_4x4 () =
  let reference, router, compiled = make_router ~shards:4 in
  let tname = compiled.Template.spec.Template.name in
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () ->
      Router.set_parallel router None;
      Pool.shutdown pool;
      Router.shutdown router)
  @@ fun () ->
  Router.set_parallel router (Some pool);
  (* f/g constraints leave the partition key unconstrained: all four
     shards are targeted, each on a pool domain *)
  let q = inst compiled ~fs:[ 0; 1; 2; 3 ] ~gs:[ 0; 1; 2; 3 ] in
  let trace = Span.start ("select:" ^ tname) in
  let parallel_traced = collect router ~trace q in
  Span.finish trace;
  (* tuple-identical to the untraced sequential run and to ground truth *)
  Router.set_parallel router None;
  let sequential = collect router q in
  let truth = List.sort Tuple.compare (Check.ground_truth reference q) in
  check Alcotest.bool "result not empty" true (truth <> []);
  check Alcotest.bool "traced parallel == sequential" true
    (List.equal Tuple.equal parallel_traced sequential);
  check Alcotest.bool "traced parallel == ground truth" true
    (List.equal Tuple.equal parallel_traced truth);
  (* one tree: the root carries the probe path, and exactly one grafted
     child per shard, in shard order *)
  let root = Span.root trace in
  check Alcotest.string "root name" ("select:" ^ tname) root.Span.name;
  check (Alcotest.option Alcotest.string) "root records probe path" (Some "locked")
    (Span.find_kv root "probe_path");
  let shard_spans =
    List.filter
      (fun (s : Span.t) -> String.length s.Span.name > 5 && String.sub s.Span.name 0 5 = "shard")
      (Span.children root)
  in
  check (Alcotest.list Alcotest.string) "one subtree per shard, shard order"
    [ "shard0"; "shard1"; "shard2"; "shard3" ]
    (List.map (fun (s : Span.t) -> s.Span.name) shard_spans);
  List.iteri
    (fun i (s : Span.t) ->
      (* leaf attribution: shard id, executing domain, and the probe
         path the engine actually took *)
      check (Alcotest.option Alcotest.string)
        (Fmt.str "shard%d labels itself" i)
        (Some (string_of_int i)) (Span.find_kv s "shard");
      check Alcotest.bool
        (Fmt.str "shard%d records its domain" i)
        true
        (Span.find_kv s "domain" <> None);
      match Span.find s ("answer:" ^ tname) with
      | None -> Alcotest.failf "shard%d subtree lost the answer span" i
      | Some a ->
          check (Alcotest.option Alcotest.string)
            (Fmt.str "shard%d answer path" i)
            (Some "locked") (Span.find_kv a "path"))
    shard_spans

let test_router_cache_trace_branches () =
  let _, router, compiled = make_router ~shards:2 in
  Fun.protect ~finally:(fun () -> Router.shutdown router) @@ fun () ->
  Router.set_probe_path router Pmv.Answer.Epoch;
  let q = inst compiled ~fs:[ 1 ] ~gs:[ 1 ] in
  (* cold: the router probe misses and the query fans out *)
  let cold = Span.start "select:cold" in
  ignore (collect router ~trace:cold q);
  Span.finish cold;
  let cold_root = Span.root cold in
  (match Span.find cold_root "router.probe" with
  | None -> Alcotest.fail "cold query lost the router.probe span"
  | Some p ->
      check (Alcotest.option Alcotest.string) "cold probe path" (Some "router_fallback")
        (Span.find_kv p "path"));
  check Alcotest.bool "cold query records the fan-out" true
    (Span.find cold_root "router.fallback" <> None);
  (* warm repeat: served from the router's probe cache, no fan-out *)
  let warm = Span.start "select:warm" in
  ignore (collect router ~trace:warm q);
  Span.finish warm;
  let warm_root = Span.root warm in
  (match Span.find warm_root "router.probe" with
  | None -> Alcotest.fail "warm query lost the router.probe span"
  | Some p ->
      check (Alcotest.option Alcotest.string) "warm probe path" (Some "router_cache")
        (Span.find_kv p "path");
      check Alcotest.bool "probe counts recorded" true
        (Span.find_kv p "probes" <> None && Span.find_kv p "probe_hits" <> None));
  check Alcotest.bool "warm query did not fan out" true
    (Span.find warm_root "router.fallback" = None)

(* --- hires histogram: the quantile error bound the SLO quotes ------- *)

(* exact order statistic: rank ceil(p * n) in a plain sort *)
let exact_quantile samples p =
  let sorted = List.sort Int64.compare samples in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
  List.nth sorted (min (n - 1) (rank - 1))

let prop_hires_quantile_bound =
  QCheck2.Test.make
    ~name:"hires quantile within 1/32 of the exact order statistic" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 300) (map Int64.of_int (int_range 1 1_000_000_000)))
        (map (fun i -> float_of_int i /. 1000.0) (int_range 1 1000)))
    (fun (samples, p) ->
      let h = Hires.create () in
      List.iter (Hires.record h) samples;
      let q = Hires.quantile h p in
      let v = exact_quantile samples p in
      (* the readout is the upper bound of the sample's subbucket:
         never below the exact value, and above it by at most one
         subbucket width — max(1, v/32) *)
      Int64.compare q v >= 0
      && Int64.compare (Int64.sub q v) (Int64.max 1L (Int64.div v 32L)) <= 0)

let prop_hires_merge_exact =
  QCheck2.Test.make ~name:"hires merge_into == histogram of concatenated streams"
    ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 200) (map Int64.of_int (int_range 0 100_000_000)))
        (list_size (int_range 0 200) (map Int64.of_int (int_range 0 100_000_000))))
    (fun (s1, s2) ->
      let h1 = Hires.create () and h2 = Hires.create () and all = Hires.create () in
      List.iter (Hires.record h1) s1;
      List.iter (Hires.record h2) s2;
      List.iter (Hires.record all) (s1 @ s2);
      Hires.merge_into ~dst:h1 h2;
      Hires.count h1 = Hires.count all
      && Int64.equal (Hires.sum_ns h1) (Hires.sum_ns all)
      && List.for_all
           (fun p -> Int64.equal (Hires.quantile h1 p) (Hires.quantile all p))
           [ 0.5; 0.9; 0.95; 0.99; 0.999; 1.0 ])

(* --- snapshot merging: the sharded METRICS/Prometheus path ---------- *)

(* Per-shard snapshots of the same registries: a name always carries
   one kind (Registry.snapshot guarantees it), which is the domain on
   which merging is associative — the cross-kind clash fallback
   (keep-latest) deliberately is not. Integer-valued gauges keep float
   addition exact, so structural equality is the right check. *)
let gen_snapshot =
  QCheck2.Gen.(
    let entry =
      oneof
        [
          map2
            (fun name n -> (name, Registry.Counter n))
            (oneofl [ "a.count"; "b.count" ])
            (int_range 0 1000);
          map2
            (fun name n -> (name, Registry.Gauge (float_of_int n)))
            (oneofl [ "c.gauge"; "f.gauge" ])
            (int_range 0 1000);
          map2
            (fun name (c, q) ->
              let q = Int64.of_int q in
              ( name,
                Registry.Histogram
                  {
                    Histogram.count = c;
                    sum = Int64.mul (Int64.of_int c) q;
                    min = q;
                    max = q;
                    p50 = q;
                    p95 = q;
                    p99 = q;
                    p999 = q;
                  } ))
            (oneofl [ "d.lat_ns"; "e.lat_ns" ])
            (pair (int_range 1 100) (int_range 1 1_000_000));
        ]
    in
    list_size (int_range 0 6) entry)

let prop_merge_snapshots_associative =
  QCheck2.Test.make ~name:"Export.merge_snapshots is associative" ~count:200
    QCheck2.Gen.(triple gen_snapshot gen_snapshot gen_snapshot)
    (fun (s1, s2, s3) ->
      let m = Export.merge_snapshots in
      let flat = m [ s1; s2; s3 ] in
      flat = m [ m [ s1; s2 ]; s3 ] && flat = m [ s1; m [ s2; s3 ] ])

(* --- flight recorder: ordering, digest, wrap ------------------------ *)

let with_flight f =
  let was = Flight.is_enabled () in
  Flight.set_enabled true;
  Flight.reset ();
  Fun.protect
    ~finally:(fun () ->
      Flight.reset ();
      Flight.set_enabled was)
    f

(* a deterministic little event stream with varied kinds and payloads *)
let record_stream () =
  for i = 1 to 40 do
    Flight.record Flight.Probe_hit ~a:i ~b:(i * 2);
    if i mod 4 = 0 then Flight.record Flight.Version_publish ~a:1 ~b:i;
    if i mod 8 = 0 then Flight.record Flight.Epoch_advance ~a:i
  done;
  Flight.record Flight.Maint_apply ~a:(Flight.intern "t1")

let test_flight_order_and_digest () =
  with_flight @@ fun () ->
  record_stream ();
  let events = Flight.dump () in
  check Alcotest.bool "dump not empty" true (events <> []);
  (* globally ordered: sequence strictly increasing, time never
     runs backwards *)
  ignore
    (List.fold_left
       (fun prev (e : Flight.event) ->
         (match prev with
         | None -> ()
         | Some (ps, pt) ->
             check Alcotest.bool "seq strictly increasing" true (e.Flight.e_seq > ps);
             check Alcotest.bool "timestamps non-decreasing" true
               (Int64.compare e.Flight.e_ts pt >= 0));
         Some (e.Flight.e_seq, e.Flight.e_ts))
       None events);
  let d1 = Flight.digest events in
  (* the digest covers what happened, never when: the same logical
     stream recorded again (at different timestamps) digests equal *)
  Flight.reset ();
  record_stream ();
  let d2 = Flight.digest (Flight.dump ()) in
  check Alcotest.string "digest timestamp-independent" d1 d2;
  (* and a different stream digests different *)
  Flight.record Flight.Probe_miss ~a:99;
  check Alcotest.bool "digest sees new events" true
    (Flight.digest (Flight.dump ()) <> d1)

let test_flight_wrap () =
  with_flight @@ fun () ->
  (* single-domain writer: one ring, so overrun keeps exactly the last
     ring_capacity events *)
  let n = Flight.ring_capacity + 100 in
  for i = 1 to n do
    Flight.record Flight.Probe_hit ~a:i
  done;
  let events = Flight.dump () in
  check Alcotest.int "wrap keeps ring_capacity events" Flight.ring_capacity
    (List.length events);
  match events with
  | [] -> Alcotest.fail "dump empty after wrap"
  | first :: _ ->
      check Alcotest.int "oldest surviving event" 100 first.Flight.e_seq

(* --- the watchdog: breach capture + automatic snapshot -------------- *)

let test_slo_breach_and_snapshot () =
  with_flight @@ fun () ->
  Flight.record Flight.Probe_hit ~a:1;
  Flight.record Flight.Version_publish ~a:1 ~b:2;
  let slo = Slo.create ~threshold_ns:1_000L ~snapshot_after:1 () in
  let fast = Span.start "q_fast" in
  Span.finish fast;
  Slo.note_query slo ~template:"t9" ~trace:(Span.root fast) 500L;
  check Alcotest.int "under threshold: no breach" 0 (Slo.breaches slo);
  check Alcotest.bool "no snapshot yet" true (Slo.last_snapshot slo = None);
  let slowq = Span.start "q_slow" in
  Span.enter slowq "o2.probe";
  Span.leave slowq;
  Span.finish slowq;
  Slo.note_query slo ~template:"t9" ~trace:(Span.root slowq) 5_000L;
  check Alcotest.int "over threshold: one breach" 1 (Slo.breaches slo);
  (match Slo.slow_queries slo with
  | { Slo.sq_template = "t9"; sq_ns = 5_000L; sq_trace = Some root } :: _ ->
      check Alcotest.bool "slow log keeps the span tree" true
        (Span.find root "o2.probe" <> None)
  | _ -> Alcotest.fail "breaching query missing from the slow log");
  (* the auto snapshot preserved the events leading up to the breach,
     the breach itself, and the trigger *)
  (match Slo.last_snapshot slo with
  | None -> Alcotest.fail "snapshot_after=1 must snapshot on first breach"
  | Some events ->
      let has k = List.exists (fun (e : Flight.event) -> e.Flight.e_kind = k) events in
      check Alcotest.bool "snapshot has the preceding events" true
        (has Flight.Probe_hit && has Flight.Version_publish);
      check Alcotest.bool "snapshot has the breach event" true (has Flight.Slo_breach);
      check Alcotest.bool "snapshot has the dump trigger" true (has Flight.Dump_trigger));
  (* both queries landed in the total histogram *)
  match List.assoc_opt "t9.total" (Slo.summaries slo) with
  | Some s -> check Alcotest.int "total latencies recorded" 2 s.Histogram.count
  | None -> Alcotest.fail "t9.total summary missing"

(* --- stratified sampling: reproducible from the seed ---------------- *)

let sampled_pattern tracer n =
  List.init n (fun _ ->
      match Tracer.start tracer "q" with
      | Some t ->
          Tracer.finish tracer t;
          true
      | None -> false)

let test_sampling_seeded_reproducible () =
  let mk () = Tracer.create ~sample_every:8 ~seed:424242L () in
  let p1 = sampled_pattern (mk ()) 64 in
  let p2 = sampled_pattern (mk ()) 64 in
  check (Alcotest.list Alcotest.bool) "same seed, same sampled ticks" p1 p2;
  (* stratified: exactly one recorded trace in every window of 8 *)
  let arr = Array.of_list p1 in
  for w = 0 to 7 do
    let hits = ref 0 in
    for i = 8 * w to (8 * w) + 7 do
      if arr.(i) then incr hits
    done;
    check Alcotest.int (Fmt.str "window %d samples exactly once" w) 1 !hits
  done;
  (* re-seeding moves the offsets (with overwhelming likelihood over 8
     windows) but keeps the stratification *)
  let p3 = sampled_pattern (Tracer.create ~sample_every:8 ~seed:7L ()) 64 in
  check Alcotest.int "different seed still 1-in-8" 8
    (List.length (List.filter Fun.id p3))

let suite =
  [
    Alcotest.test_case "stitched span tree across 4 shards x 4 domains" `Quick
      test_stitched_tree_4x4;
    Alcotest.test_case "router cache hit and fallback trace branches" `Quick
      test_router_cache_trace_branches;
    QCheck_alcotest.to_alcotest prop_hires_quantile_bound;
    QCheck_alcotest.to_alcotest prop_hires_merge_exact;
    QCheck_alcotest.to_alcotest prop_merge_snapshots_associative;
    Alcotest.test_case "flight dump ordered, digest timestamp-independent" `Quick
      test_flight_order_and_digest;
    Alcotest.test_case "flight ring overrun keeps the newest events" `Quick
      test_flight_wrap;
    Alcotest.test_case "SLO breach capture + automatic flight snapshot" `Quick
      test_slo_breach_and_snapshot;
    Alcotest.test_case "stratified sampling reproducible from seed" `Quick
      test_sampling_seeded_reproducible;
  ]
