(* Aggregate / Sort / Limit plan nodes, and random-template planner
   equivalence. *)

open Minirel_storage
open Minirel_query
module Plan = Minirel_exec.Plan
module Executor = Minirel_exec.Executor
module Planner = Minirel_exec.Planner

let check = Alcotest.check
let vi i = Value.Int i

let setup () =
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs catalog;
  catalog

let s_scan = Plan.Scan { rel = "s"; pred = Predicate.True }

let test_sort () =
  let catalog = setup () in
  let plan = Plan.Sort { keys = [| 2 |]; desc = false; input = s_scan } in
  let rows = Executor.run_to_list catalog plan in
  check Alcotest.int "all rows" 120 (List.length rows);
  let es = List.map (fun t -> Value.int_exn t.(2)) rows in
  check Alcotest.bool "ascending" true (List.sort Int.compare es = es);
  let desc =
    Executor.run_to_list catalog (Plan.Sort { keys = [| 2 |]; desc = true; input = s_scan })
  in
  check Alcotest.int "desc first is max" 120 (Value.int_exn (List.hd desc).(2))

let test_limit () =
  let catalog = setup () in
  let plan = Plan.Limit (5, Plan.Sort { keys = [| 2 |]; desc = true; input = s_scan }) in
  let rows = Executor.run_to_list catalog plan in
  check Alcotest.int "five rows" 5 (List.length rows);
  (* a top-k: the 5 largest e values *)
  check (Alcotest.list Alcotest.int) "top-5"
    [ 120; 119; 118; 117; 116 ]
    (List.map (fun t -> Value.int_exn t.(2)) rows);
  check Alcotest.int "limit 0" 0 (List.length (Executor.run_to_list catalog (Plan.Limit (0, s_scan))))

let test_aggregate_count () =
  let catalog = setup () in
  (* count s rows per g value (s.g = row mod 8) *)
  let plan = Plan.Aggregate { group_by = [| 1 |]; aggs = [ Plan.Count_star ]; input = s_scan } in
  let rows = Executor.run_to_list catalog plan in
  check Alcotest.int "eight groups" 8 (List.length rows);
  let total = List.fold_left (fun acc t -> acc + Value.int_exn t.(1)) 0 rows in
  check Alcotest.int "counts add up" 120 total

let test_aggregate_sum_avg_minmax () =
  let catalog = setup () in
  let plan =
    Plan.Aggregate
      {
        group_by = [||];
        aggs = [ Plan.Sum_of 2; Plan.Avg_of 2; Plan.Min_of 2; Plan.Max_of 2; Plan.Count_star ];
        input = s_scan;
      }
  in
  match Executor.run_to_list catalog plan with
  | [ row ] ->
      (* e = 1..120 *)
      check (Alcotest.float 1e-6) "sum" (float_of_int (120 * 121 / 2)) (Value.float_exn row.(0));
      check (Alcotest.float 1e-6) "avg" 60.5 (Value.float_exn row.(1));
      check Helpers.value "min" (vi 1) row.(2);
      check Helpers.value "max" (vi 120) row.(3);
      check Helpers.value "count" (vi 120) row.(4)
  | rows -> Alcotest.failf "expected one group, got %d" (List.length rows)

let test_aggregate_empty_input () =
  let catalog = setup () in
  let plan =
    Plan.Aggregate
      {
        group_by = [| 0 |];
        aggs = [ Plan.Count_star ];
        input = Plan.Scan { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 9999) };
      }
  in
  check Alcotest.int "no groups" 0 (List.length (Executor.run_to_list catalog plan))

(* Random-template planner equivalence: random chain-join templates
   over randomly populated relations must execute identically to the
   brute-force reference. *)
let prop_random_template_equivalence =
  QCheck2.Test.make ~name:"planner == brute force over random templates" ~count:40
    QCheck2.Gen.(
      tup5 (int_range 2 3)  (* relations in the chain *)
        (int_range 10 60)  (* rows per relation *)
        (int_range 2 8)  (* join-attr domain *)
        (int_range 2 6)  (* selection-attr domain *)
        (pair (int_range 0 9) (list_size (int_range 1 3) (int_range 0 9))))
    (fun (n_rels, rows, n_join, n_sel, (seed, sel_vals)) ->
      let catalog = Helpers.fresh_catalog () in
      let rng = Minirel_prng.Split_mix.create ~seed in
      (* chain schema: rel_i(j_prev, j_next, sel, payload) *)
      for i = 0 to n_rels - 1 do
        let sch =
          Schema.create
            (Fmt.str "rel%d" i)
            [
              ("jp", Schema.Tint); ("jn", Schema.Tint); ("sel", Schema.Tint); ("pay", Schema.Tint);
            ]
        in
        let _ = Minirel_index.Catalog.create_relation catalog sch in
        for r = 1 to rows do
          ignore
            (Minirel_index.Catalog.insert catalog
               ~rel:(Fmt.str "rel%d" i)
               [|
                 vi (Minirel_prng.Split_mix.int rng ~bound:n_join);
                 vi (Minirel_prng.Split_mix.int rng ~bound:n_join);
                 vi (Minirel_prng.Split_mix.int rng ~bound:n_sel);
                 vi r;
               |])
        done;
        (* index only on some relations: exercises the Nlj fallback *)
        if i mod 2 = 0 then begin
          ignore
            (Minirel_index.Catalog.create_index catalog
               ~rel:(Fmt.str "rel%d" i)
               ~name:(Fmt.str "rel%d_sel" i) ~attrs:[ "sel" ] ());
          ignore
            (Minirel_index.Catalog.create_index catalog
               ~rel:(Fmt.str "rel%d" i)
               ~name:(Fmt.str "rel%d_jp" i) ~attrs:[ "jp" ] ())
        end
      done;
      let spec =
        {
          Template.name = "rand";
          relations = Array.init n_rels (Fmt.str "rel%d");
          joins =
            List.init (n_rels - 1) (fun i ->
                (Template.attr_ref ~rel:i ~attr:"jn", Template.attr_ref ~rel:(i + 1) ~attr:"jp"));
          fixed = [];
          select_list =
            [ Template.attr_ref ~rel:0 ~attr:"pay"; Template.attr_ref ~rel:(n_rels - 1) ~attr:"pay" ];
          selections =
            [|
              Template.Eq_sel (Template.attr_ref ~rel:0 ~attr:"sel");
              Template.Eq_sel (Template.attr_ref ~rel:(n_rels - 1) ~attr:"sel");
            |];
        }
      in
      let compiled = Template.compile catalog spec in
      let values = List.sort_uniq Int.compare (List.map (fun v -> v mod n_sel) sel_vals) in
      let inst =
        Instance.make compiled
          [|
            Instance.Dvalues (List.map (fun v -> vi v) values);
            Instance.Dvalues [ vi (seed mod n_sel) ];
          |]
      in
      let got = Executor.run_to_list catalog (Planner.plan_query catalog inst) in
      Helpers.same_multiset got (Helpers.brute_force_answer catalog inst))

let suite =
  [
    Alcotest.test_case "sort" `Quick test_sort;
    Alcotest.test_case "limit / top-k" `Quick test_limit;
    Alcotest.test_case "aggregate count" `Quick test_aggregate_count;
    Alcotest.test_case "aggregate sum/avg/min/max" `Quick test_aggregate_sum_avg_minmax;
    Alcotest.test_case "aggregate empty input" `Quick test_aggregate_empty_input;
    QCheck_alcotest.to_alcotest prop_random_template_equivalence;
  ]
