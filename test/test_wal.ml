(* Snapshot + redo-log recovery: a catalog that crashes after N
   transactions is reconstructed exactly from its last snapshot plus
   the log. *)

open Minirel_storage
open Minirel_query
module Catalog = Minirel_index.Catalog
module Snapshot = Minirel_index.Snapshot
module Txn = Minirel_txn.Txn
module Wal = Minirel_txn.Wal

let check = Alcotest.check
let vi i = Value.Int i
let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let contents catalog rel =
  Heap_file.fold (Catalog.heap catalog rel) (fun acc _ t -> t :: acc) []

let test_recovery () =
  let snap_file = tmp "pmv_wal_snap.db" and log_file = tmp "pmv_wal_log.db" in
  if Sys.file_exists log_file then Sys.remove log_file;
  (* live system: snapshot, then logged transactions *)
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:40 ~n_s:25 catalog;
  Snapshot.save catalog ~filename:snap_file;
  let mgr = Txn.create catalog in
  let wal = Wal.open_log ~filename:log_file () in
  Wal.attach wal mgr;
  ignore
    (Txn.run mgr
       [
         Txn.Insert { rel = "r"; tuple = [| vi 900; vi 3; vi 1; Value.Str "with space" |] };
         Txn.Delete { rel = "s"; pred = Predicate.Cmp (Predicate.Eq, 1, vi 2) };
         Txn.Update
           { rel = "r"; pred = Predicate.Cmp (Predicate.Eq, 2, vi 5); set = [ (2, vi 55) ] };
       ]);
  ignore
    (Txn.run mgr
       [ Txn.Insert { rel = "s"; tuple = [| vi 9; vi 9; vi 999 |] } ]);
  Wal.close wal;
  (* "crash": rebuild from snapshot + log *)
  let pool = Buffer_pool.create ~capacity:2_000 () in
  let recovered = Snapshot.load ~pool ~filename:snap_file in
  let applied = Wal.replay recovered ~filename:log_file in
  check Alcotest.bool "changes replayed" true (applied >= 5);
  List.iter
    (fun rel ->
      check Alcotest.bool (rel ^ " recovered exactly") true
        (Helpers.same_multiset (contents catalog rel) (contents recovered rel)))
    [ "r"; "s" ];
  (* recovered catalog serves PMV queries *)
  let compiled = Template.compile recovered Helpers.eqt_spec in
  let view = Pmv.View.create ~capacity:20 ~f_max:2 ~name:"rec" compiled in
  let inst = Instance.make compiled [| Instance.Dvalues [ vi 1 ]; Instance.Dvalues [ vi 1 ] |] in
  let out = ref [] in
  let _ = Pmv.Answer.answer ~view recovered inst ~on_tuple:(fun _ t -> out := t :: !out) in
  check Alcotest.bool "recovered answers correct" true
    (Helpers.same_multiset !out (Helpers.brute_force_answer recovered inst));
  Sys.remove snap_file;
  Sys.remove log_file

let test_detach_stops_logging () =
  let log_file = tmp "pmv_wal_detach.db" in
  if Sys.file_exists log_file then Sys.remove log_file;
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:5 ~n_s:5 catalog;
  let mgr = Txn.create catalog in
  let wal = Wal.open_log ~filename:log_file () in
  Wal.attach wal mgr;
  ignore (Txn.run mgr [ Txn.Insert { rel = "s"; tuple = [| vi 1; vi 1; vi 500 |] } ]);
  Wal.detach wal mgr;
  ignore (Txn.run mgr [ Txn.Insert { rel = "s"; tuple = [| vi 1; vi 1; vi 501 |] } ]);
  Wal.close wal;
  let ic = open_in log_file in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> close_in ic);
  check Alcotest.int "only the attached txn logged" 1 !lines;
  Sys.remove log_file

let test_corrupt_log () =
  let log_file = tmp "pmv_wal_corrupt.db" in
  let oc = open_out log_file in
  output_string oc "zap r i1\n";
  close_out oc;
  let catalog = Helpers.fresh_catalog () in
  Helpers.build_rs ~n_r:5 ~n_s:5 catalog;
  (match Wal.replay catalog ~filename:log_file with
  | _ -> Alcotest.fail "corrupt log accepted"
  | exception Wal.Corrupt _ -> ());
  (* a delete with no victim is a mismatch *)
  let oc = open_out log_file in
  output_string oc "del s i999\ti999\ti999\n";
  close_out oc;
  (match Wal.replay catalog ~filename:log_file with
  | _ -> Alcotest.fail "mismatched delete accepted"
  | exception Wal.Corrupt _ -> ());
  Sys.remove log_file

let suite =
  [
    Alcotest.test_case "snapshot + log recovery" `Quick test_recovery;
    Alcotest.test_case "detach stops logging" `Quick test_detach_stops_logging;
    Alcotest.test_case "corrupt log rejected" `Quick test_corrupt_log;
  ]
